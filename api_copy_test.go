package scream

// Defensive-copy audit of the public API: everything handed across the API
// boundary — slices returned to callers, slices taken from callers, clones —
// must be owned by exactly one side. The daemon leans on these guarantees
// for session isolation, so each one is pinned here as a table of
// mutate-and-compare probes.

import (
	"reflect"
	"testing"
)

func TestAPIDefensiveCopies(t *testing.T) {
	cases := []struct {
		name  string
		probe func(t *testing.T)
	}{
		{"Mesh.Gateways returns a copy", func(t *testing.T) {
			m := flowTestMesh(t)
			gws := m.Gateways()
			want := append([]int(nil), gws...)
			for i := range gws {
				gws[i] = -1
			}
			if !reflect.DeepEqual(m.Gateways(), want) {
				t.Errorf("mutating Gateways() result changed the mesh: %v", m.Gateways())
			}
		}},
		{"mesh does not alias the caller's gateway slice", func(t *testing.T) {
			gws := []int{0, 15}
			m, err := NewGridMesh(GridMeshConfig{Rows: 4, Cols: 4, StepMeters: 30, Seed: 1, Gateways: gws})
			if err != nil {
				t.Fatal(err)
			}
			gws[0] = 7
			if got := m.Gateways(); got[0] != 0 {
				t.Errorf("mutating the config slice re-routed the mesh gateways: %v", got)
			}
		}},
		{"Schedulers returns a fresh slice", func(t *testing.T) {
			infos := Schedulers()
			want := Schedulers()
			for i := range infos {
				infos[i] = SchedulerInfo{Name: "clobbered"}
			}
			if !reflect.DeepEqual(Schedulers(), want) {
				t.Error("mutating Schedulers() result changed the registry")
			}
		}},
		{"Mesh.Clone isolates links, demands and gateways", func(t *testing.T) {
			m := flowTestMesh(t)
			wantLinks := append([]Link(nil), m.Links...)
			wantDemands := append([]int(nil), m.Demands...)
			wantGws := m.Gateways()
			c := m.Clone()
			c.Links[0] = Link{From: 99, To: 99}
			c.Demands[0] += 1000
			c.gateways[0] = -1
			if !reflect.DeepEqual(m.Links, wantLinks) ||
				!reflect.DeepEqual(m.Demands, wantDemands) ||
				!reflect.DeepEqual(m.Gateways(), wantGws) {
				t.Error("mutating a clone leaked into the source mesh")
			}
		}},
		{"Mesh.Clone isolates the network", func(t *testing.T) {
			m := flowTestMesh(t)
			before := m.Network.Channel.RxPowerMW(0, 1)
			c := m.Clone()
			if c.Network == m.Network {
				t.Fatal("clone shares the network object")
			}
			if err := c.Network.SetNodeDown(1); err != nil {
				t.Fatal(err)
			}
			if m.Network.IsDown(1) {
				t.Error("downing a clone's node downed the source node")
			}
			if got := m.Network.Channel.RxPowerMW(0, 1); got != before {
				t.Errorf("downing a clone's node changed the source channel: %v -> %v", before, got)
			}
		}},
		{"ScenarioSpec.Clone isolates nested pointers", func(t *testing.T) {
			cs := -80.0
			spec := testSpec()
			spec.Topology.Gateways = []int{0, 3}
			spec.Topology.Radio = &RadioSpec{CSThresholdDBm: &cs}
			spec.Dynamics = &DynamicsSpec{FailRate: 1}
			c := spec.Clone()
			c.Topology.Gateways[1] = 9
			*c.Topology.Radio.CSThresholdDBm = 5
			c.Dynamics.Mobility = "drift"
			if spec.Topology.Gateways[1] != 3 || *spec.Topology.Radio.CSThresholdDBm != -80 ||
				spec.Dynamics.Mobility != "" {
				t.Error("mutating a spec clone leaked into the source spec")
			}
		}},
		{"ScenarioSpec.Clone isolates the interference block", func(t *testing.T) {
			spec := testSpec()
			spec.Interference = &InterferenceSpec{Engine: EngineSpatial, CutoffM: 200}
			c := spec.Clone()
			c.Interference.Engine = EngineDense
			c.Interference.CutoffM = 1
			if spec.Interference.Engine != EngineSpatial || spec.Interference.CutoffM != 200 {
				t.Error("mutating a clone's interference block leaked into the source spec")
			}
		}},
		{"Engines returns a fresh slice", func(t *testing.T) {
			infos := Engines()
			want := Engines()
			for i := range infos {
				infos[i] = EngineInfo{Name: "clobbered"}
			}
			if !reflect.DeepEqual(Engines(), want) {
				t.Error("mutating Engines() result changed the registry")
			}
		}},
		{"Mesh.Clone carries the engine selection", func(t *testing.T) {
			m := flowTestMesh(t)
			if err := m.UseEngine(InterferenceSpec{Engine: EngineSpatial}); err != nil {
				t.Fatal(err)
			}
			c := m.Clone()
			if c.EngineName() != EngineSpatial {
				t.Errorf("clone lost the engine selection: %q", c.EngineName())
			}
			if err := c.UseEngine(InterferenceSpec{}); err != nil {
				t.Fatal(err)
			}
			if m.EngineName() != EngineSpatial {
				t.Errorf("re-selecting a clone's engine changed the source mesh: %q", m.EngineName())
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.probe)
	}
}

// TestMeshCloneRunEquivalence: a clone is a full substitute for its source —
// the same flow run on source and clone produces the identical result, and
// running on the clone perturbs nothing in the source.
func TestMeshCloneRunEquivalence(t *testing.T) {
	m := flowTestMesh(t)
	frame, err := m.FlowFrameTime(Timing{})
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.5 / frame.Seconds()
	opts := func() FlowOptions {
		return FlowOptions{
			Arrivals:       flowTestArrivals(t, m, rate),
			Horizon:        300 * Millisecond,
			Seed:           7,
			MaxService:     8,
			FramesPerEpoch: 8,
		}
	}
	a, err := RunFlow(m, opts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFlow(m.Clone(), opts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("clone run diverged:\n got %+v\nwant %+v", b, a)
	}
}
