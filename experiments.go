package scream

import "scream/internal/exp"

// The figure runners regenerate the data behind every figure of the paper's
// evaluation section. Each returns a Figure holding the same series the
// paper plots, with 95% confidence intervals where applicable.

// Fig4 regenerates "Percentage Error in SCREAM detection vs SCREAM size".
func Fig4(opts ExperimentOptions) (*Figure, error) { return exp.Fig4(opts) }

// Fig5 regenerates "Moving Average of RSSI values".
func Fig5(opts ExperimentOptions) (*Figure, error) { return exp.Fig5(opts) }

// Fig6 regenerates "Schedule Length Improvement for Grid".
func Fig6(opts ExperimentOptions) (*Figure, error) { return exp.Fig6(opts) }

// Fig7 regenerates "Schedule Length Improvement for Uniform Random
// Placement".
func Fig7(opts ExperimentOptions) (*Figure, error) { return exp.Fig7(opts) }

// Fig8 regenerates "Execution Time vs. SCREAM size and Interference
// Diameter".
func Fig8(opts ExperimentOptions) (*Figure, error) { return exp.Fig8(opts) }

// Fig9 regenerates "Execution Time vs. Clock Skew".
func Fig9(opts ExperimentOptions) (*Figure, error) { return exp.Fig9(opts) }

// FigFlowLoad sweeps offered load through the flow-level dynamic traffic
// simulator: delivered goodput vs offered load for Centralized, FDD,
// PDD p=0.8 and single-slot TDMA under epoch-based re-scheduling (extension;
// see the "Dynamic traffic" section of DESIGN.md).
func FigFlowLoad(opts ExperimentOptions) (*Figure, error) { return exp.FigFlowLoad(opts) }

// FigChurn sweeps the per-node failure rate through the flow-level
// simulator with the topology-dynamics driver underneath: delivered goodput
// under churn for the adaptive schedulers (Centralized, FDD, PDD p=0.8,
// re-planning on the incrementally repaired forest at epoch boundaries)
// against a static TDMA frame (extension; see the "Topology dynamics"
// section of DESIGN.md).
func FigChurn(opts ExperimentOptions) (*Figure, error) { return exp.FigChurn(opts) }

// FigChannels sweeps the orthogonal channel count through the multi-channel
// schedulers: delivered goodput under saturating load and one-shot schedule
// length for Centralized, FDD, PDD p=0.8 and the TDMA frame, with two radios
// per node (extension; see the "Multi-channel scheduling" section of
// DESIGN.md).
func FigChannels(opts ExperimentOptions) (*Figure, error) { return exp.FigChannels(opts) }

// FigSched sweeps offered load under Zipf hotspot arrivals across grid and
// uniform deployments for the scheduler family: static greedy, queue-aware
// max-weight, the Fan-Zhang length-class approximation and the TDMA floor,
// all at zero control cost so the comparison isolates scheduling quality
// (extension; see the "Scheduler family & optimality gap" section of
// DESIGN.md).
func FigSched(opts ExperimentOptions) (*Figure, error) { return exp.FigSched(opts) }

// FigScale sweeps the node count to 50k and compares the spatial grid-bucket
// interference engine against the dense n*n matrix: engine memory, index
// build time, and per-admission time and allocation (extension; see the
// "Spatial interference index" section of DESIGN.md). Its timing series are
// wall-clock measurements, so unlike every other figure its output is not
// byte-reproducible and it is excluded from figgen's "all" set.
func FigScale(opts ExperimentOptions) (*Figure, error) { return exp.FigScale(opts) }

// Ablations for the design choices called out in DESIGN.md.

// AblationPDDProbability sweeps PDD's activation probability p.
func AblationPDDProbability(opts ExperimentOptions) (*Figure, error) {
	return exp.AblationPDDProbability(opts)
}

// AblationGreedyOrdering compares GreedyPhysical edge orderings.
func AblationGreedyOrdering(opts ExperimentOptions) (*Figure, error) {
	return exp.AblationGreedyOrdering(opts)
}

// AblationScreamK quantifies over-provisioning K beyond ID(G_S).
func AblationScreamK(opts ExperimentOptions) (*Figure, error) {
	return exp.AblationScreamK(opts)
}

// AblationAckModel compares the full interference model against the
// data-only (no ACK sub-slot) physical model.
func AblationAckModel(opts ExperimentOptions) (*Figure, error) {
	return exp.AblationAckModel(opts)
}

// AblationFDDSeal measures the ASAP slot-sealing extension.
func AblationFDDSeal(opts ExperimentOptions) (*Figure, error) {
	return exp.AblationFDDSeal(opts)
}

// AblationBalancedRouting compares random vs load-balanced forest
// tie-breaking.
func AblationBalancedRouting(opts ExperimentOptions) (*Figure, error) {
	return exp.AblationBalancedRouting(opts)
}

// AblationMoteRelays sweeps the mote experiment's relay count, checking
// SCREAM's collision resilience.
func AblationMoteRelays(opts ExperimentOptions) (*Figure, error) {
	return exp.AblationMoteRelays(opts)
}

// AblationShadowing re-runs the scheduling pipeline under log-normal
// shadowing of increasing sigma.
func AblationShadowing(opts ExperimentOptions) (*Figure, error) {
	return exp.AblationShadowing(opts)
}
