package scream

// The benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (there are no numbered tables; the evaluation is Figures 4-9)
// plus one per ablation from DESIGN.md. Each benchmark regenerates its
// figure's series in Quick mode and reports the headline numbers as custom
// metrics, so `go test -bench=.` both exercises the full pipeline and
// reproduces the paper's qualitative results. Use cmd/figgen for the
// full-size sweeps.

import (
	"io"
	"strings"
	"testing"

	"scream/internal/sched"
)

var benchOpts = ExperimentOptions{Quick: true, Seeds: 2}

// metricName turns a series name into a ReportMetric-safe unit string
// (no whitespace allowed).
func metricName(name, suffix string) string {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '(', ')', '=', '%', '/':
			return '_'
		}
		return r
	}, name)
	return clean + "_" + suffix
}

func reportSeries(b *testing.B, fig *Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			continue
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		b.ReportMetric(first.Y, metricName(s.Name, "first"))
		b.ReportMetric(last.Y, metricName(s.Name, "last"))
	}
}

// BenchmarkFig4MoteDetectionError regenerates Figure 4: % error in SCREAM
// detection vs SCREAM size on the Mica2 mote experiment.
func BenchmarkFig4MoteDetectionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Fig4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFig5RSSIMovingAverage regenerates Figure 5: the monitor's RSSI
// moving-average trace for 24-byte screams.
func BenchmarkFig5RSSIMovingAverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Fig5(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			ma := fig.Lookup("RSSI MA")
			above := 0
			for _, p := range ma.Points {
				if p.Y > -60 {
					above++
				}
			}
			b.ReportMetric(float64(len(ma.Points)), "trace_points")
			b.ReportMetric(float64(above), "points_above_threshold")
		}
	}
}

// BenchmarkFig6GridImprovement regenerates Figure 6: schedule-length
// improvement over linear vs density on the planned grid (Centralized, FDD,
// PDD p in {0.2, 0.6, 0.8}).
func BenchmarkFig6GridImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Fig6(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFig7UniformImprovement regenerates Figure 7: the unplanned
// uniform deployment with heterogeneous power (Centralized, FDD, PDD 0.8).
func BenchmarkFig7UniformImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Fig7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFig8ExecutionTime regenerates Figure 8: protocol execution time
// vs SCREAM size and vs interference-diameter bound K (FDD and PDD).
func BenchmarkFig8ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Fig8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFig9ClockSkew regenerates Figure 9: execution time vs clock-skew
// bound (FDD, PDD p=0.2).
func BenchmarkFig9ClockSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Fig9(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkAblationPDDProbability sweeps PDD's activation probability.
func BenchmarkAblationPDDProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := AblationPDDProbability(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkAblationGreedyOrdering compares GreedyPhysical edge orderings.
func BenchmarkAblationGreedyOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := AblationGreedyOrdering(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkAblationScreamK quantifies over-provisioning K beyond ID(G_S).
func BenchmarkAblationScreamK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := AblationScreamK(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkAblationAckModel compares the full (data+ACK) model against the
// classic data-only physical model.
func BenchmarkAblationAckModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := AblationAckModel(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkAblationFDDSeal measures the ASAP slot-sealing extension.
func BenchmarkAblationFDDSeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := AblationFDDSeal(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFigEngineParallel regenerates Figure 6 (quick) with experiment
// cells fanned across all cores by the cell-grid engine; compare against
// BenchmarkFigEngineSerial to read off the parallel speedup. The engine
// guarantees both produce identical series (see TestEngineDeterminism).
func BenchmarkFigEngineParallel(b *testing.B) {
	opts := ExperimentOptions{Quick: true, Seeds: 2, Workers: 0} // 0 = GOMAXPROCS
	for i := 0; i < b.N; i++ {
		if _, err := Fig6(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigEngineSerial is the single-worker baseline for
// BenchmarkFigEngineParallel.
func BenchmarkFigEngineSerial(b *testing.B) {
	opts := ExperimentOptions{Quick: true, Seeds: 2, Workers: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Fig6(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowEpoch exercises the flow-level dynamic traffic simulator: a
// 16-node mesh at 1.0x offered load, greedy epoch re-scheduling with an
// 8-packet quota and 8-frame schedule reuse, 200 ms of simulated time per
// iteration. Reported metrics give the per-second simulation throughput of
// the epoch driver (epochs, delivered packets).
func BenchmarkFlowEpoch(b *testing.B) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 4, Cols: 4, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := m.FlowFrameTime(Timing{})
	if err != nil {
		b.Fatal(err)
	}
	isGW := make(map[int]bool)
	for _, g := range m.Gateways() {
		isGW[g] = true
	}
	rate := 1.0 / frame.Seconds()
	arrivals := make([]Arrival, m.NumNodes())
	for u := range arrivals {
		if isGW[u] {
			continue
		}
		if arrivals[u], err = NewCBR(rate); err != nil {
			b.Fatal(err)
		}
	}
	var last *FlowResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunFlow(m, FlowOptions{
			Scheduler:      FlowGreedy,
			Arrivals:       arrivals,
			Horizon:        200 * Millisecond,
			Seed:           int64(i),
			MaxService:     8,
			FramesPerEpoch: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Epochs), "epochs")
	b.ReportMetric(float64(last.Delivered), "delivered_pkts")
	b.ReportMetric(last.GoodputPps, "goodput_pps")
}

// benchFlowEpochObs is BenchmarkFlowEpoch's scenario with observability in a
// chosen state; the Enabled/Disabled pair quantifies the overhead of the
// metrics substrate on the epoch driver's hot path. Enabled carries the full
// load — a live registry in every layer plus a v2 span tracer emitting to a
// discarded stream. Disabled must stay within the benchguard gate of
// BenchmarkFlowEpoch itself — the nil-check branches are the entire cost of
// shipping the instrumentation.
func benchFlowEpochObs(b *testing.B, enabled bool) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 4, Cols: 4, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := m.FlowFrameTime(Timing{})
	if err != nil {
		b.Fatal(err)
	}
	isGW := make(map[int]bool)
	for _, g := range m.Gateways() {
		isGW[g] = true
	}
	rate := 1.0 / frame.Seconds()
	arrivals := make([]Arrival, m.NumNodes())
	for u := range arrivals {
		if isGW[u] {
			continue
		}
		if arrivals[u], err = NewCBR(rate); err != nil {
			b.Fatal(err)
		}
	}
	var reg *ObsRegistry
	var trace *ObsTracer
	if enabled {
		reg = NewObsRegistry()
		trace = NewObsTracer(io.Discard)
		EnableRuntimeMetrics(reg)
		defer EnableRuntimeMetrics(nil) // detach the process globals for the other benchmarks
	}
	var last *FlowResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunFlow(m, FlowOptions{
			Scheduler:      FlowGreedy,
			Arrivals:       arrivals,
			Horizon:        200 * Millisecond,
			Seed:           int64(i),
			MaxService:     8,
			FramesPerEpoch: 8,
			Metrics:        reg,
			Trace:          trace,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Epochs), "epochs")
	b.ReportMetric(float64(last.Delivered), "delivered_pkts")
}

// BenchmarkFlowEpochObsDisabled is BenchmarkFlowEpoch through the
// observability-aware code paths with no registry attached: the pure cost
// of the disabled-path nil checks.
func BenchmarkFlowEpochObsDisabled(b *testing.B) { benchFlowEpochObs(b, false) }

// BenchmarkFlowEpochObsEnabled runs the same scenario with a live registry
// wired into every layer (flow, core, sched, phys): the full collection
// cost under the heaviest instrumentation.
func BenchmarkFlowEpochObsEnabled(b *testing.B) { benchFlowEpochObs(b, true) }

// Micro-benchmarks for the primitives themselves.

func BenchmarkGreedyPhysical64(b *testing.B) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 8, Cols: 8, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.GreedySchedule(ByHeadIDDesc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDemands64 is the deterministic non-uniform demand vector of the
// one-shot scheduler benchmarks: varied enough that the max-weight ordering
// actually re-ranks and the general (non-unit) scheduling path is exercised.
func benchDemands64(m *Mesh) []int {
	demands := make([]int, len(m.Links))
	for i := range demands {
		demands[i] = 1 + i%4
	}
	return demands
}

// BenchmarkMaxWeightSchedule64 measures one-shot queue-aware schedule
// construction (backlog x rate ordering + greedy first-fit) on the 64-node
// grid; compare against BenchmarkGreedyPhysical64 to read off the ordering
// overhead.
func BenchmarkMaxWeightSchedule64(b *testing.B) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 8, Cols: 8, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	demands := benchDemands64(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.GreedyMaxWeight(m.Network.Channel, m.Links, demands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFanZhangSchedule64 measures one-shot approximation-scheduler
// construction (length-class partition + per-class first-fit) on the same
// grid and demands as BenchmarkMaxWeightSchedule64.
func BenchmarkFanZhangSchedule64(b *testing.B) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 8, Cols: 8, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	demands := benchDemands64(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ApproxFanZhang(m.Network.Channel, m.Links, demands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxWeightEpoch is BenchmarkFlowEpoch with the queue-aware
// scheduler: the epoch driver re-ranks by backlog snapshot each epoch, so
// this measures the full backlog -> ordering -> schedule loop under load.
func BenchmarkMaxWeightEpoch(b *testing.B) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 4, Cols: 4, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := m.FlowFrameTime(Timing{})
	if err != nil {
		b.Fatal(err)
	}
	isGW := make(map[int]bool)
	for _, g := range m.Gateways() {
		isGW[g] = true
	}
	rate := 1.0 / frame.Seconds()
	arrivals := make([]Arrival, m.NumNodes())
	for u := range arrivals {
		if isGW[u] {
			continue
		}
		if arrivals[u], err = NewCBR(rate); err != nil {
			b.Fatal(err)
		}
	}
	var last *FlowResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunFlow(m, FlowOptions{
			Scheduler:      FlowMaxWeight,
			Arrivals:       arrivals,
			Horizon:        200 * Millisecond,
			Seed:           int64(i),
			MaxService:     8,
			FramesPerEpoch: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Epochs), "epochs")
	b.ReportMetric(float64(last.Delivered), "delivered_pkts")
	b.ReportMetric(last.GoodputPps, "goodput_pps")
}

// BenchmarkSlotStateMultiChannel measures the multi-channel slot engine on
// the greedy hot path: a full GreedyPhysicalMulti schedule construction over
// the 64-node grid at 4 channels / 2 radios, against the single-channel fast
// path (C=1, R=1 delegates to the slab-allocated single-channel SlotState
// engine — the path every pre-multi-channel figure still runs).
func BenchmarkSlotStateMultiChannel(b *testing.B) {
	radio := DefaultRadioParams()
	radio.NumRadios = 2
	multi, err := NewGridMesh(GridMeshConfig{Rows: 8, Cols: 8, StepMeters: 30, Seed: 1, Radio: radio})
	if err != nil {
		b.Fatal(err)
	}
	single, err := NewGridMesh(GridMeshConfig{Rows: 8, Cols: 8, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("chan4radio2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := multi.GreedyScheduleChannels(4, ByHeadIDDesc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chan1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := single.GreedyScheduleChannels(1, ByHeadIDDesc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFDDRun64(b *testing.B) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 8, Cols: 8, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunFDD(ProtocolOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPDDRun64(b *testing.B) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 8, Cols: 8, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunPDD(0.2, ProtocolOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScreamPrimitive(b *testing.B) {
	m, err := NewGridMesh(GridMeshConfig{Rows: 8, Cols: 8, StepMeters: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	vars := make([]bool, m.NumNodes())
	vars[0] = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Scream(vars, ProtocolOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBalancedRouting compares routing-forest tie-breaking
// strategies (extension; see DESIGN.md).
func BenchmarkAblationBalancedRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := AblationBalancedRouting(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkAblationMoteRelays sweeps relay count in the mote experiment —
// SCREAM's collision-resilience claim as a benchmark.
func BenchmarkAblationMoteRelays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := AblationMoteRelays(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkAblationShadowing measures scheduling quality under log-normal
// shadowing (the paper's propagation model family).
func BenchmarkAblationShadowing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := AblationShadowing(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}
