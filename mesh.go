package scream

import (
	"fmt"
	"math"
	"math/rand"

	"scream/internal/core"
	"scream/internal/phys"
	"scream/internal/radio"
	"scream/internal/route"
	"scream/internal/sched"
	"scream/internal/topo"
	"scream/internal/traffic"
)

// RadioParams describes the radio environment of a mesh.
type RadioParams struct {
	PathLossExponent float64 // alpha (paper simulates 3)
	RefLossDB        float64 // path loss at 1 m
	NoiseDBm         float64 // background noise floor
	BetaDB           float64 // SINR threshold
	// CSThresholdDBm is the carrier-sense (energy detect) threshold in
	// dBm. math.NaN() means "explicitly unset": derive it as beta * noise
	// (carrier sensing at decode sensitivity, the paper's rCS = rc), which
	// is what DefaultRadioParams returns. Any finite value — including a
	// literal 0 dBm, which the old 0-means-derive sentinel could not
	// express — is used as given. Note that a RadioParams zero value
	// therefore asks for a 0 dBm threshold; start from
	// DefaultRadioParams() when you want the derived default.
	CSThresholdDBm float64
	ShadowSigmaDB  float64 // log-normal shadowing std dev; 0 disables
	// NumRadios is the number of radio interfaces per node (0 means 1). In
	// multi-channel scheduling a node can be active on at most NumRadios
	// orthogonal channels per slot; each link placement occupies one radio
	// at each endpoint. With one channel the value is irrelevant (a
	// half-duplex node joins at most one transmission per slot regardless).
	// A RadioParams whose other fields are all zero still gets the
	// DefaultRadioParams environment: setting only NumRadios does not
	// silently zero the physics.
	NumRadios int
}

// withDefaults returns r with the propagation environment defaulted when
// every physics field is zero. The all-zero convenience predates NumRadios,
// so a caller setting only the radio count must not lose the default
// physics.
func (r RadioParams) withDefaults() RadioParams {
	p := r
	p.NumRadios = 0
	if p == (RadioParams{}) {
		d := DefaultRadioParams()
		d.NumRadios = r.NumRadios
		return d
	}
	return r
}

// DefaultRadioParams returns the environment used throughout the
// reproduction: alpha = 3, 40 dB reference loss, -96 dBm noise, 10 dB beta,
// and CSThresholdDBm = NaN — carrier sensing derived at decode sensitivity
// (rCS = rc).
func DefaultRadioParams() RadioParams {
	return RadioParams{
		PathLossExponent: 3,
		RefLossDB:        40,
		NoiseDBm:         -96,
		BetaDB:           10,
		CSThresholdDBm:   math.NaN(),
	}
}

func (r RadioParams) toParams() topo.Params {
	p := topo.DefaultParams()
	p.PathLoss.Exponent = r.PathLossExponent
	p.PathLoss.RefLossDB = r.RefLossDB
	p.NoiseMW = phys.DBm(r.NoiseDBm).MilliWatts()
	p.Beta = phys.DB(r.BetaDB).Linear()
	if math.IsNaN(r.CSThresholdDBm) {
		p.CSThresholdMW = p.NoiseMW * p.Beta
	} else {
		p.CSThresholdMW = phys.DBm(r.CSThresholdDBm).MilliWatts()
	}
	p.ShadowSigmaDB = r.ShadowSigmaDB
	return p
}

// GridMeshConfig describes a planned grid deployment.
type GridMeshConfig struct {
	Rows, Cols int
	StepMeters float64
	TxPowerDBm float64 // 0 derives power from the grid step
	Gateways   []int   // node IDs; nil places 4 quadrant gateways
	DemandLo   int     // default 1
	DemandHi   int     // default 10
	Radio      RadioParams
	Seed       int64
	// BalancedRouting uses load-aware parent tie-breaking when building
	// the routing forest (see route.BuildForestBalanced): min-hop paths,
	// evener gateway load, usually a smaller TD.
	BalancedRouting bool
}

// UniformMeshConfig describes an unplanned uniform deployment with
// (optionally) heterogeneous transmit power.
type UniformMeshConfig struct {
	N          int
	SideMeters float64
	MinTxDBm   float64
	MaxTxDBm   float64
	Gateways   []int // node IDs; nil places 4 quadrant gateways
	DemandLo   int
	DemandHi   int
	Radio      RadioParams
	Seed       int64
	// BalancedRouting uses load-aware parent tie-breaking (see
	// GridMeshConfig.BalancedRouting).
	BalancedRouting bool
}

// Mesh is a deployed wireless mesh backbone: topology, routing forest and
// per-link aggregated demands — everything the schedulers consume.
type Mesh struct {
	Network *topo.Network
	Forest  *route.Forest
	Links   []Link
	Demands []int

	gateways []int
	radios   int
	// interf is the selected interference engine configuration (zero value =
	// the exact dense engine). Engines are built on demand from the network's
	// current state — never cached — so topology dynamics and clones always
	// see fresh geometry.
	interf InterferenceSpec
}

// NewGridMesh builds a planned grid mesh per the paper's Section VI setup.
func NewGridMesh(cfg GridMeshConfig) (*Mesh, error) {
	cfg.Radio = cfg.Radio.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var power float64
	if cfg.TxPowerDBm != 0 {
		power = phys.DBm(cfg.TxPowerDBm).MilliWatts()
	}
	net, err := topo.NewGrid(topo.GridConfig{
		Rows: cfg.Rows, Cols: cfg.Cols, Step: cfg.StepMeters,
		TxPowerMW: power,
		Params:    cfg.Radio.toParams(),
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	return finishMesh(net, cfg.Gateways, cfg.DemandLo, cfg.DemandHi, cfg.Radio.NumRadios, cfg.BalancedRouting, rng)
}

// NewUniformMesh builds an unplanned uniform mesh, re-drawing node positions
// until the communication graph is connected.
func NewUniformMesh(cfg UniformMeshConfig) (*Mesh, error) {
	cfg.Radio = cfg.Radio.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net, err := topo.NewUniform(topo.UniformConfig{
		N: cfg.N, Side: cfg.SideMeters,
		MinTxDBm: phys.DBm(cfg.MinTxDBm), MaxTxDBm: phys.DBm(cfg.MaxTxDBm),
		Params: cfg.Radio.toParams(),
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	return finishMesh(net, cfg.Gateways, cfg.DemandLo, cfg.DemandHi, cfg.Radio.NumRadios, cfg.BalancedRouting, rng)
}

// LineMeshConfig describes a line deployment (used by the Theorem 1
// impossibility demonstration).
type LineMeshConfig struct {
	N          int
	StepMeters float64
	RangeSlack float64 // communication range = step * slack (default 1.05)
	Gateways   []int   // nil places a single gateway at node 0
	DemandLo   int
	DemandHi   int
	Radio      RadioParams
	Seed       int64
}

// NewLineMesh builds a line mesh with power derived from the spacing.
func NewLineMesh(cfg LineMeshConfig) (*Mesh, error) {
	cfg.Radio = cfg.Radio.withDefaults()
	net, err := topo.NewLine(cfg.N, cfg.StepMeters, cfg.Radio.toParams(), cfg.RangeSlack)
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	gws := cfg.Gateways
	if gws == nil {
		gws = []int{0}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return finishMesh(net, gws, cfg.DemandLo, cfg.DemandHi, cfg.Radio.NumRadios, false, rng)
}

func finishMesh(net *topo.Network, gateways []int, lo, hi, radios int, balanced bool, rng *rand.Rand) (*Mesh, error) {
	if lo == 0 {
		lo = 1
	}
	if radios <= 0 {
		radios = 1
	}
	if hi == 0 {
		hi = 10
	}
	if gateways == nil {
		var err error
		gateways, err = topo.QuadrantGateways(net)
		if err != nil {
			return nil, fmt.Errorf("scream: %w", err)
		}
	}
	nodeDemand, err := traffic.Uniform(net.NumNodes(), lo, hi, rng)
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	var f *route.Forest
	if balanced {
		f, err = route.BuildForestBalanced(net.Comm, gateways, nodeDemand, rng)
	} else {
		f, err = route.BuildForest(net.Comm, gateways, rng)
	}
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	agg, err := f.AggregateDemand(nodeDemand)
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	links := f.Links()
	demands := make([]int, len(links))
	for i, l := range links {
		demands[i] = agg[l.From]
	}
	// The gateway list is defensively copied: the caller keeps ownership of
	// the slice it passed in, and mutating it later must not re-route the
	// mesh's idea of its gateways.
	return &Mesh{Network: net, Forest: f, Links: links, Demands: demands,
		gateways: append([]int(nil), gateways...), radios: radios}, nil
}

// Clone returns a deep copy of the mesh: a cloned network (positions, powers,
// liveness), fresh link/demand/gateway slices, and the shared routing forest
// (immutable after construction — repairs build new forests, see
// route.Forest). Clones are how concurrent sessions sandbox a common
// deployment: runs on a clone never observe each other.
func (m *Mesh) Clone() *Mesh {
	return &Mesh{
		Network:  m.Network.Clone(),
		Forest:   m.Forest,
		Links:    append([]Link(nil), m.Links...),
		Demands:  append([]int(nil), m.Demands...),
		gateways: append([]int(nil), m.gateways...),
		radios:   m.radios,
		interf:   m.interf,
	}
}

// UseEngine selects the interference engine the mesh's centralized
// schedulers build against (see Engines for the registry). The zero-value
// spec — or one naming "dense" — keeps the exact dense engine, the default.
// Selecting the spatial engine builds it once to surface configuration
// errors (shadowed deployments, invalid geometry) immediately; afterwards
// every schedule build constructs a fresh index from the network's current
// positions, so dynamics and clones never see stale geometry.
func (m *Mesh) UseEngine(spec InterferenceSpec) error {
	if _, err := EngineByName(spec.engineName()); err != nil {
		return err
	}
	if spec.CutoffM < 0 || spec.BucketM < 0 {
		return fmt.Errorf("scream: interference cutoff_m and bucket_m must be non-negative")
	}
	if spec.engineName() == EngineSpatial {
		if _, err := m.Network.SpatialEngine(spec.CutoffM, spec.BucketM); err != nil {
			return fmt.Errorf("scream: %w", err)
		}
	}
	m.interf = spec
	return nil
}

// EngineName returns the registry name of the mesh's selected interference
// engine ("dense" unless UseEngine chose otherwise).
func (m *Mesh) EngineName() string { return m.interf.engineName() }

// engine builds the mesh's selected interference engine over the network's
// current state: the dense channel itself, or a freshly constructed spatial
// index.
func (m *Mesh) engine() (phys.Engine, error) {
	if m.interf.engineName() != EngineSpatial {
		return m.Network.Channel, nil
	}
	idx, err := m.Network.SpatialEngine(m.interf.CutoffM, m.interf.BucketM)
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	return idx, nil
}

// NumNodes returns the number of mesh routers.
func (m *Mesh) NumNodes() int { return m.Network.NumNodes() }

// Gateways returns the gateway node IDs.
func (m *Mesh) Gateways() []int { return append([]int(nil), m.gateways...) }

// TotalDemand returns TD, the serialized schedule length.
func (m *Mesh) TotalDemand() int { return sched.LinearLength(m.Demands) }

// InterferenceDiameter returns ID(G_S) (Definition 2).
func (m *Mesh) InterferenceDiameter() int { return m.Network.InterferenceDiameter() }

// NeighborDensity returns rho(G) (Definition 6).
func (m *Mesh) NeighborDensity() float64 { return m.Network.NeighborDensity() }

// NumRadios returns the per-node radio count (RadioParams.NumRadios,
// normalized to at least 1).
func (m *Mesh) NumRadios() int { return m.radios }

// ChannelSet returns a view of the mesh's physical channel as the given
// number of orthogonal frequency channels (see phys.ChannelSet).
func (m *Mesh) ChannelSet(channels int) (*ChannelSet, error) {
	cs, err := phys.NewChannelSet(m.Network.Channel, channels)
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	return cs, nil
}

// GreedySchedule runs the centralized GreedyPhysical baseline over the
// mesh's selected interference engine (see UseEngine; dense by default).
func (m *Mesh) GreedySchedule(ord Ordering) (*Schedule, error) {
	eng, err := m.engine()
	if err != nil {
		return nil, err
	}
	return sched.GreedyPhysical(eng, m.Links, m.Demands, ord)
}

// GreedyScheduleChannels runs the multi-channel centralized greedy over the
// given number of orthogonal channels with the mesh's per-node radio count.
// With channels == 1 (and one radio) it is exactly GreedySchedule.
func (m *Mesh) GreedyScheduleChannels(channels int, ord Ordering) (*Schedule, error) {
	if m.interf.engineName() == EngineSpatial {
		eng, err := m.engine()
		if err != nil {
			return nil, err
		}
		return sched.GreedyPhysicalMultiEngine(eng, channels, m.radios, m.Links, m.Demands, ord)
	}
	cs, err := m.ChannelSet(channels)
	if err != nil {
		return nil, err
	}
	return sched.GreedyPhysicalMulti(cs, m.radios, m.Links, m.Demands, ord)
}

// VerifyChannels checks a channel-assigned schedule against the
// multi-channel interference model (per-channel SINR, per-node radio
// budget) and the mesh's demands.
func (m *Mesh) VerifyChannels(s *Schedule, channels int) error {
	cs, err := m.ChannelSet(channels)
	if err != nil {
		return err
	}
	return s.VerifyMulti(cs, m.radios, m.Links, m.Demands)
}

// Verify checks a schedule against the physical interference model and the
// mesh's demands.
func (m *Mesh) Verify(s *Schedule) error {
	return s.Verify(m.Network.Channel, m.Links, m.Demands)
}

// Improvement returns the schedule's % improvement over the linear schedule.
func (m *Mesh) Improvement(s *Schedule) float64 {
	return sched.ImprovementOverLinear(s.Length(), m.TotalDemand())
}

// GreedyProtocolSchedule schedules this mesh's demands under the *protocol*
// interference model (CSMA/CA-style exclusion regions at carrier-sense
// range) instead of SINR feasibility. Comparing its length against
// GreedySchedule quantifies the capacity the physical model recovers — the
// motivation of the paper's introduction.
func (m *Mesh) GreedyProtocolSchedule(ord Ordering) (*Schedule, error) {
	pm := phys.NewProtocolModel(m.Network.Channel, m.Network.Params.CSThresholdMW)
	return sched.GreedyProtocol(pm, m.Links, m.Demands, ord, m.Network.Channel)
}

// CountInfeasibleSlots returns how many slots of s violate the full
// physical interference model — useful for quantifying how unsafe schedules
// from weaker models (protocol exclusion, data-only SINR) really are.
func (m *Mesh) CountInfeasibleSlots(s *Schedule) int {
	return sched.CountInfeasibleSlots(m.Network.Channel, s)
}

// OptimalLength computes the exact minimum schedule length for this mesh's
// links with unit demands via exponential dynamic programming. Only small
// meshes (at most 20 links) are supported; see sched.OptimalLength.
func (m *Mesh) OptimalLength() (int, error) {
	unit := make([]int, len(m.Links))
	for i := range unit {
		unit[i] = 1
	}
	return sched.OptimalLength(m.Network.Channel, m.Links, unit)
}

// GreedyScheduleFor runs GreedyPhysical on an arbitrary link set over this
// mesh's channel — an escape hatch for workloads that are not gateway
// forests (the paper notes the protocols schedule arbitrary link sets "up
// to straightforward modifications").
func (m *Mesh) GreedyScheduleFor(links []Link, demands []int, ord Ordering) (*Schedule, error) {
	eng, err := m.engine()
	if err != nil {
		return nil, err
	}
	return sched.GreedyPhysical(eng, links, demands, ord)
}

// LocalizedGreedyFor runs the k-hop-localized greedy of the Theorem 1
// demonstration on an arbitrary link set. Its schedules may be infeasible —
// that is the point of the theorem; check with VerifyFor.
func (m *Mesh) LocalizedGreedyFor(links []Link, demands []int, k int, ord Ordering) (*Schedule, error) {
	return sched.LocalizedGreedy(m.Network.Channel, m.Network.Comm, links, demands, k, ord)
}

// VerifyFor checks a schedule against the physical interference model for
// an arbitrary link set and demands.
func (m *Mesh) VerifyFor(links []Link, demands []int, s *Schedule) error {
	return s.Verify(m.Network.Channel, links, demands)
}

// ProtocolOptions tunes a distributed protocol run.
type ProtocolOptions struct {
	// Timing is the slot timing model; zero value uses DefaultTiming.
	Timing Timing
	// K is the SCREAM length in slots; 0 uses the true interference
	// diameter ID(G_S).
	K int
	// Seed drives PDD's coin flips and the packet-level backend's clock
	// offsets.
	Seed int64
	// PacketLevel runs the protocol over the packet-level radio backend
	// (skewed clocks, energy detection) instead of the ideal backend.
	PacketLevel bool
	// ASAPSeal enables the slot-sealing extension (see DESIGN.md).
	ASAPSeal bool
	// Channels is the number of orthogonal data channels the protocol
	// schedules over (0 or 1 = the paper's single-channel protocol). The
	// per-node radio budget comes from the mesh's RadioParams.NumRadios.
	// Multi-channel runs require the ideal backend.
	Channels int
}

func (m *Mesh) backend(opts ProtocolOptions) (Backend, error) {
	tm := opts.Timing
	if tm == (Timing{}) {
		tm = DefaultTiming()
	}
	k := opts.K
	if k == 0 {
		k = m.InterferenceDiameter()
		if k <= 0 {
			return nil, fmt.Errorf("scream: sensitivity graph not strongly connected")
		}
	}
	if opts.PacketLevel {
		return radio.New(m.Network.Channel, m.Network.Params.CSThresholdMW, k, tm,
			tm.SkewBound, rand.New(rand.NewSource(opts.Seed+1)))
	}
	return core.NewIdealBackend(m.Network.Channel, m.Network.Sens, k, tm, false)
}

// RunFDD runs the Fully Deterministic Distributed protocol.
func (m *Mesh) RunFDD(opts ProtocolOptions) (*Result, error) {
	return m.run(core.Config{Variant: core.FDD, ASAPSeal: opts.ASAPSeal}, opts)
}

// RunPDD runs the Partially Deterministic Distributed protocol with
// activation probability p.
func (m *Mesh) RunPDD(p float64, opts ProtocolOptions) (*Result, error) {
	return m.run(core.Config{
		Variant:     core.PDD,
		Probability: p,
		RNG:         rand.New(rand.NewSource(opts.Seed)),
		ASAPSeal:    opts.ASAPSeal,
	}, opts)
}

func (m *Mesh) run(cfg core.Config, opts ProtocolOptions) (*Result, error) {
	if opts.Channels > 1 && opts.PacketLevel {
		return nil, fmt.Errorf("scream: multi-channel protocol runs require the ideal backend")
	}
	b, err := m.backend(opts)
	if err != nil {
		return nil, err
	}
	cfg.Links = m.Links
	cfg.Demands = m.Demands
	cfg.Backend = b
	cfg.NumChannels = opts.Channels
	cfg.NumRadios = m.radios
	return core.Run(cfg)
}

// Scream runs one SCREAM primitive over the mesh: vars[i] is node i's input
// bit; the returned slice holds every node's output (the network-wide OR
// when K >= ID). It uses the same backend selection as the protocols.
func (m *Mesh) Scream(vars []bool, opts ProtocolOptions) ([]bool, error) {
	if len(vars) != m.NumNodes() {
		return nil, fmt.Errorf("scream: %d vars for %d nodes", len(vars), m.NumNodes())
	}
	b, err := m.backend(opts)
	if err != nil {
		return nil, err
	}
	return b.Scream(vars), nil
}

// LeaderElect runs the paper's bitwise leader election among the nodes with
// participating[i] == true (IDs are the node indices) and returns the
// winner, or -1 when nobody participates.
func (m *Mesh) LeaderElect(participating []bool, opts ProtocolOptions) (int, error) {
	if len(participating) != m.NumNodes() {
		return -1, fmt.Errorf("scream: %d flags for %d nodes", len(participating), m.NumNodes())
	}
	b, err := m.backend(opts)
	if err != nil {
		return -1, err
	}
	ids := make([]uint64, m.NumNodes())
	for i := range ids {
		ids[i] = uint64(i)
	}
	return core.LeaderElect(b, core.IDBitsFor(m.NumNodes()), ids, participating), nil
}
