// Package mote simulates the paper's Mica2-mote SCREAM feasibility
// experiment (Section V): one Initiator screams SMBytes every 100 ms, six
// Relays in a clique with the Monitor re-scream on RSSI detection (their
// transmissions collide at the Monitor by construction), and the Monitor
// detects screams from a 3-sample moving average of its RSSI readings. The
// measured quantity is the percentage of inter-detection intervals outside
// +/-5% of the 100 ms period, as a function of the SCREAM size in bytes
// (Figure 4), plus an RSSI moving-average trace (Figure 5).
//
// The paper ran this on Crossbow Mica2 hardware (CC1000 radio, nesC/TinyOS).
// We model the governing quantities directly: 19.2 kb/s effective bit rate
// (417 us per byte), a UART-limited RSSI sampling cadence, log-normal RSSI
// noise and a -60 dBm detection threshold.
package mote

import (
	"fmt"
	"math/rand"

	"scream/internal/des"
	"scream/internal/phys"
)

// Config parameterizes the mote experiment.
type Config struct {
	SMBytes   int // scream size in bytes (the swept variable)
	NumRelays int // relays in the clique (paper: 6)
	Screams   int // initiator screams per run (paper: 2000)

	Period       des.Time // initiator period (paper: 100 ms)
	ByteTime     des.Time // airtime per byte (CC1000: ~417 us)
	RelaySample  des.Time // relay RSSI sampling period
	MonitorEvery des.Time // monitor RSSI sampling period (UART-limited)
	AvgWindow    int      // moving-average window (paper: 3 samples)
	Lockout      des.Time // relay re-trigger lockout after transmitting
	Refractory   des.Time // monitor detection refractory period

	ThresholdDBm phys.DBm // detection threshold (paper: -60 dBm)
	NoiseFloor   phys.DBm // ambient RSSI with no transmission
	NoiseSigmaDB float64  // gaussian RSSI measurement noise (dB)

	// Received signal strengths for the fixed experiment geometry.
	InitiatorAtRelay   phys.DBm // relays hear the initiator well
	InitiatorAtMonitor phys.DBm // monitor is 2 hops away: below threshold
	RelayAtRelay       phys.DBm // clique: relays hear each other
	RelayAtMonitor     phys.DBm // monitor hears relays well

	Tolerance float64 // interval tolerance (paper: 0.05)
	Seed      int64
}

// DefaultConfig reproduces the paper's setup for a given scream size.
func DefaultConfig(smBytes int) Config {
	return Config{
		SMBytes:            smBytes,
		NumRelays:          6,
		Screams:            2000,
		Period:             100 * des.Millisecond,
		ByteTime:           417 * des.Microsecond,
		RelaySample:        500 * des.Microsecond,
		MonitorEvery:       1700 * des.Microsecond,
		AvgWindow:          3,
		Lockout:            40 * des.Millisecond,
		Refractory:         50 * des.Millisecond,
		ThresholdDBm:       -60,
		NoiseFloor:         -78,
		NoiseSigmaDB:       2.5,
		InitiatorAtRelay:   -52,
		InitiatorAtMonitor: -88,
		RelayAtRelay:       -45,
		RelayAtMonitor:     -48,
		Tolerance:          0.05,
		Seed:               1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SMBytes <= 0 {
		return fmt.Errorf("mote: SMBytes must be positive, got %d", c.SMBytes)
	}
	if c.NumRelays <= 0 || c.Screams <= 0 {
		return fmt.Errorf("mote: need relays and screams")
	}
	if c.Period <= 0 || c.ByteTime <= 0 || c.RelaySample <= 0 || c.MonitorEvery <= 0 {
		return fmt.Errorf("mote: all periods must be positive")
	}
	if c.AvgWindow <= 0 {
		return fmt.Errorf("mote: moving-average window must be positive")
	}
	if c.Tolerance <= 0 {
		return fmt.Errorf("mote: tolerance must be positive")
	}
	return nil
}

// TracePoint is one monitor moving-average sample.
type TracePoint struct {
	At  des.Time
	DBm float64
}

// Result summarizes one experiment run.
type Result struct {
	// ErrorPercent is the percentage of inter-detection intervals outside
	// +/-Tolerance of the period — the y axis of Figure 4.
	ErrorPercent float64
	// Detections is the number of screams the monitor detected.
	Detections int
	// Intervals are the measured inter-detection intervals.
	Intervals []des.Time
	// Trace is the monitor's moving-average RSSI over the first ~600 ms —
	// the Figure 5 snapshot.
	Trace []TracePoint
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	eng := des.New()
	airtime := des.Time(cfg.SMBytes) * cfg.ByteTime

	// Active transmissions, by source class.
	type span struct {
		start, end des.Time
		relay      bool // false: initiator
	}
	var active []span
	addTx := func(relay bool) {
		active = append(active, span{start: eng.Now(), end: eng.Now() + airtime, relay: relay})
	}
	// powerAt computes linear aggregate received power, plus noise floor.
	powerAt := func(monitor bool) float64 {
		now := eng.Now()
		total := cfg.NoiseFloor.MilliWatts()
		for _, s := range active {
			if now < s.start || now >= s.end {
				continue
			}
			var p phys.DBm
			switch {
			case monitor && s.relay:
				p = cfg.RelayAtMonitor
			case monitor && !s.relay:
				p = cfg.InitiatorAtMonitor
			case !monitor && s.relay:
				p = cfg.RelayAtRelay
			default:
				p = cfg.InitiatorAtRelay
			}
			total += p.MilliWatts()
		}
		return total
	}
	rssiDBm := func(monitor bool) float64 {
		return float64(phys.MilliWattsToDBm(powerAt(monitor))) + rng.NormFloat64()*cfg.NoiseSigmaDB
	}
	// Periodically prune expired spans so the active list stays small.
	prune := func() {
		now := eng.Now()
		kept := active[:0]
		for _, s := range active {
			if s.end > now {
				kept = append(kept, s)
			}
		}
		active = kept
	}

	// Initiator: Screams transmissions, one per period.
	for i := 0; i < cfg.Screams; i++ {
		at := des.Time(i) * cfg.Period
		eng.At(at, func() { addTx(false) })
	}
	endOfRun := des.Time(cfg.Screams)*cfg.Period + cfg.Period

	// Relays: sample RSSI; on threshold crossing outside lockout, scream.
	lockoutUntil := make([]des.Time, cfg.NumRelays)
	for r := 0; r < cfg.NumRelays; r++ {
		r := r
		var sample func()
		sample = func() {
			if eng.Now() >= endOfRun {
				return
			}
			prune()
			if eng.Now() >= lockoutUntil[r] && rssiDBm(false) > float64(cfg.ThresholdDBm) {
				addTx(true)
				lockoutUntil[r] = eng.Now() + airtime + cfg.Lockout
			}
			// Small per-relay jitter keeps relays from sampling in
			// pathological lockstep.
			eng.After(cfg.RelaySample+des.Time(rng.Int63n(int64(cfg.RelaySample/8)+1)), sample)
		}
		eng.At(des.Time(r)*cfg.RelaySample/des.Time(cfg.NumRelays), sample)
	}

	// Monitor: moving average over AvgWindow samples, rising-edge detector.
	res := &Result{}
	window := make([]float64, 0, cfg.AvgWindow)
	var lastDetect des.Time = -1
	var sinceAvg int
	prevMA := float64(cfg.NoiseFloor)
	traceCutoff := 6 * cfg.Period
	var monSample func()
	monSample = func() {
		if eng.Now() >= endOfRun {
			return
		}
		window = append(window, rssiDBm(true))
		if len(window) > cfg.AvgWindow {
			window = window[1:]
		}
		sinceAvg++
		// "The moving average ... was sampled after every 3 RSSI values
		// owing to device and UART limitations."
		if sinceAvg >= cfg.AvgWindow && len(window) == cfg.AvgWindow {
			sinceAvg = 0
			ma := 0.0
			for _, x := range window {
				ma += x
			}
			ma /= float64(len(window))
			if eng.Now() < traceCutoff {
				res.Trace = append(res.Trace, TracePoint{At: eng.Now(), DBm: ma})
			}
			rising := ma > float64(cfg.ThresholdDBm) && prevMA <= float64(cfg.ThresholdDBm)
			if rising && (lastDetect < 0 || eng.Now()-lastDetect >= cfg.Refractory) {
				if lastDetect >= 0 {
					res.Intervals = append(res.Intervals, eng.Now()-lastDetect)
				}
				res.Detections++
				lastDetect = eng.Now()
			}
			prevMA = ma
		}
		eng.After(cfg.MonitorEvery, monSample)
	}
	eng.At(0, monSample)

	eng.Run()

	// Score: an undetected scream manifests as a stretched interval, a
	// spurious detection as a shortened one; both fall outside the band.
	lo := float64(cfg.Period) * (1 - cfg.Tolerance)
	hi := float64(cfg.Period) * (1 + cfg.Tolerance)
	bad := 0
	for _, iv := range res.Intervals {
		if float64(iv) < lo || float64(iv) > hi {
			bad++
		}
	}
	// Missed screams that produce no interval at all (monitor saw almost
	// nothing) still count against the expected total.
	expected := cfg.Screams - 1
	missing := expected - len(res.Intervals)
	if missing < 0 {
		missing = 0
	}
	denom := expected
	if denom < 1 {
		denom = 1
	}
	res.ErrorPercent = 100 * float64(bad+missing) / float64(denom)
	return res, nil
}
