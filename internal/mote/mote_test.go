package mote

import (
	"testing"

	"scream/internal/des"
)

// quickConfig shrinks the run for fast tests while keeping the physics.
func quickConfig(smBytes, screams int) Config {
	cfg := DefaultConfig(smBytes)
	cfg.Screams = screams
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig(15).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SMBytes = 0 },
		func(c *Config) { c.NumRelays = 0 },
		func(c *Config) { c.Screams = 0 },
		func(c *Config) { c.Period = 0 },
		func(c *Config) { c.ByteTime = 0 },
		func(c *Config) { c.RelaySample = 0 },
		func(c *Config) { c.MonitorEvery = 0 },
		func(c *Config) { c.AvgWindow = 0 },
		func(c *Config) { c.Tolerance = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(15)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
	cfg := DefaultConfig(0)
	if _, err := Run(cfg); err == nil {
		t.Error("Run must reject invalid config")
	}
}

func TestLargeScreamReliable(t *testing.T) {
	// 24-byte screams (10 ms airtime): the paper reports negligible error.
	res, err := Run(quickConfig(24, 150))
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPercent > 5 {
		t.Errorf("24-byte screams should be near-perfectly detected, error = %.1f%%", res.ErrorPercent)
	}
	if res.Detections < 140 {
		t.Errorf("expected ~150 detections, got %d", res.Detections)
	}
}

func TestTinyScreamUnreliable(t *testing.T) {
	// 2-byte screams (0.8 ms airtime, far below the monitor's 3x1.3 ms
	// averaging window): the paper reports rapidly growing error.
	res, err := Run(quickConfig(2, 150))
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPercent < 20 {
		t.Errorf("2-byte screams should be unreliable, error = %.1f%%", res.ErrorPercent)
	}
}

func TestErrorDecreasesWithSize(t *testing.T) {
	// The Figure 4 shape: error(2B) >= error(10B) >= error(24B), with a
	// sharp knee below ~10 bytes.
	errs := map[int]float64{}
	for _, b := range []int{2, 6, 10, 24} {
		res, err := Run(quickConfig(b, 200))
		if err != nil {
			t.Fatal(err)
		}
		errs[b] = res.ErrorPercent
		t.Logf("%2d bytes: %.1f%% error, %d detections", b, res.ErrorPercent, res.Detections)
	}
	if errs[2] < errs[10] {
		t.Errorf("error should fall with size: 2B=%.1f%% < 10B=%.1f%%", errs[2], errs[10])
	}
	if errs[6] < errs[24] {
		t.Errorf("error should fall with size: 6B=%.1f%% < 24B=%.1f%%", errs[6], errs[24])
	}
	if errs[24] > 5 {
		t.Errorf("24B error should be negligible, got %.1f%%", errs[24])
	}
}

func TestIntervalsNearPeriod(t *testing.T) {
	res, err := Run(quickConfig(24, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("no intervals measured")
	}
	period := 100 * des.Millisecond
	within := 0
	for _, iv := range res.Intervals {
		if iv > period*95/100 && iv < period*105/100 {
			within++
		}
	}
	if frac := float64(within) / float64(len(res.Intervals)); frac < 0.95 {
		t.Errorf("only %.0f%% of intervals near 100 ms", 100*frac)
	}
}

func TestTraceCapturesScreams(t *testing.T) {
	// Figure 5: the moving average must show periodic humps above the
	// threshold when screams are detected, and sit near the noise floor
	// otherwise.
	cfg := quickConfig(24, 20)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	above, below := 0, 0
	for _, p := range res.Trace {
		if p.DBm > float64(cfg.ThresholdDBm) {
			above++
		} else {
			below++
		}
	}
	if above == 0 {
		t.Error("trace never crosses the threshold: no screams visible")
	}
	if below == 0 {
		t.Error("trace never returns to the noise floor")
	}
	// Screams occupy ~10 ms of every 100 ms; above-threshold fraction
	// should be roughly 10-30%, not the majority.
	if frac := float64(above) / float64(above+below); frac > 0.5 {
		t.Errorf("above-threshold fraction %.2f too high; relays may be storming", frac)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := Run(quickConfig(12, 80))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(12, 80))
	if err != nil {
		t.Fatal(err)
	}
	if a.ErrorPercent != b.ErrorPercent || a.Detections != b.Detections {
		t.Error("same seed must reproduce the same result")
	}
	cfg := quickConfig(12, 80)
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Detections == c.Detections && a.ErrorPercent == c.ErrorPercent {
		t.Log("different seed gave identical stats; suspicious but possible")
	}
}

func TestMonitorTwoHopsAway(t *testing.T) {
	// Without relays re-screaming, the monitor (2 hops from the initiator,
	// receiving at -88 dBm) must detect almost nothing: the relaying is
	// what makes SCREAM work.
	cfg := quickConfig(24, 100)
	cfg.RelayAtMonitor = -95 // cripple the relays' reach
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections > 5 {
		t.Errorf("monitor should not hear the initiator directly, got %d detections", res.Detections)
	}
}
