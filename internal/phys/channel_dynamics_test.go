package phys

// Tests for the targeted RX-power-matrix invalidation behind MoveNode and
// RemoveNode: after any mutation sequence the cached matrix must be
// bit-identical to the matrix of a channel freshly built from the mutated
// gain matrix, and the channel must remain safe for concurrent readers once
// the mutation returns (run under -race).

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// gridGains returns the symmetric gain matrix of n nodes at the given
// positions under default log-distance propagation.
func gridGains(pos [][2]float64) [][]float64 {
	n := len(pos)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dx := pos[i][0] - pos[j][0]
			dy := pos[i][1] - pos[j][1]
			dist[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	return BuildGainMatrix(dist, DefaultLogDistance(), nil)
}

// copyMatrix deep-copies a gain matrix so that a fresh reference channel is
// not aliased to the mutated one.
func copyMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// freshChannel builds a reference channel from the mutated channel's current
// gains and powers.
func freshChannel(t *testing.T, ch *Channel) *Channel {
	t.Helper()
	n := ch.NumNodes()
	gain := make([][]float64, n)
	pw := make([]float64, n)
	for u := 0; u < n; u++ {
		gain[u] = ch.GainRow(u)
		pw[u] = ch.TxPowerMW(u)
	}
	ref, err := NewChannel(pw, gain, ch.NoiseMW(), ch.Beta())
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// assertMatrixIdentical compares every RX-power entry of the two channels
// bit for bit.
func assertMatrixIdentical(t *testing.T, got, want *Channel, what string) {
	t.Helper()
	n := got.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			g, w := got.RxPowerMW(u, v), want.RxPowerMW(u, v)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: RxPowerMW(%d,%d) = %v, fresh channel has %v", what, u, v, g, w)
			}
		}
	}
}

// TestMoveNodeMatrixIdentical mutates a warm channel through a random
// sequence of moves and removals and asserts the cached matrix stays
// bit-identical to a fresh build at every step.
func TestMoveNodeMatrixIdentical(t *testing.T) {
	const n = 12
	rng := rand.New(rand.NewSource(7))
	pos := make([][2]float64, n)
	for i := range pos {
		pos[i] = [2]float64{rng.Float64() * 300, rng.Float64() * 300}
	}
	gains := gridGains(pos)
	pw := make([]float64, n)
	for i := range pw {
		pw[i] = DBm(4 + 3*rng.Float64()).MilliWatts()
	}
	ch, err := NewChannel(pw, copyMatrix(gains), DBm(-96).MilliWatts(), DB(10).Linear())
	if err != nil {
		t.Fatal(err)
	}
	_ = ch.RxPowerMW(0, 1) // warm the cache so mutations exercise the in-place path

	for step := 0; step < 25; step++ {
		u := rng.Intn(n)
		switch rng.Intn(3) {
		case 0: // move
			pos[u] = [2]float64{rng.Float64() * 300, rng.Float64() * 300}
			row := gridGains(pos)[u]
			if err := ch.MoveNode(u, row); err != nil {
				t.Fatal(err)
			}
		case 1: // remove
			if err := ch.RemoveNode(u); err != nil {
				t.Fatal(err)
			}
		default: // restore at the current position
			row := gridGains(pos)[u]
			if err := ch.MoveNode(u, row); err != nil {
				t.Fatal(err)
			}
		}
		assertMatrixIdentical(t, ch, freshChannel(t, ch), "after mutation")
	}
}

// TestMoveNodeColdCache mutates before the matrix is ever built: the lazy
// fill must see the updated gains.
func TestMoveNodeColdCache(t *testing.T) {
	ch := lineChannel(t, 8, 40, 17)
	if err := ch.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	if got := ch.RxPowerMW(3, 4); got != 0 {
		t.Fatalf("removed node still delivers %v mW", got)
	}
	if got := ch.RxPowerMW(2, 3); got != 0 {
		t.Fatalf("removed node still receives %v mW", got)
	}
	assertMatrixIdentical(t, ch, freshChannel(t, ch), "cold-cache removal")
}

// TestMoveNodeValidation covers the error paths.
func TestMoveNodeValidation(t *testing.T) {
	ch := lineChannel(t, 4, 40, 17)
	if err := ch.MoveNode(-1, make([]float64, 4)); err == nil {
		t.Error("negative node accepted")
	}
	if err := ch.MoveNode(4, make([]float64, 4)); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := ch.MoveNode(0, make([]float64, 3)); err == nil {
		t.Error("short gain row accepted")
	}
	if err := ch.MoveNode(0, []float64{0, -1, 0, 0}); err == nil {
		t.Error("negative gain accepted")
	}
}

// TestMoveNodeConcurrentReaders alternates exclusive mutations with bursts
// of concurrent readers. Under -race this proves the documented contract:
// mutations need exclusive access, but once applied the channel is safe to
// read from many goroutines, and every reader sees the post-mutation values.
func TestMoveNodeConcurrentReaders(t *testing.T) {
	const n, workers = 16, 8
	rng := rand.New(rand.NewSource(11))
	pos := make([][2]float64, n)
	for i := range pos {
		pos[i] = [2]float64{rng.Float64() * 400, rng.Float64() * 400}
	}
	ch, err := NewChannel(
		HomogeneousTestPower(n, DBm(10).MilliWatts()),
		gridGains(pos), DBm(-96).MilliWatts(), DB(10).Linear())
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 6; round++ {
		u := rng.Intn(n)
		pos[u] = [2]float64{rng.Float64() * 400, rng.Float64() * 400}
		if err := ch.MoveNode(u, gridGains(pos)[u]); err != nil {
			t.Fatal(err)
		}
		ref := freshChannel(t, ch)
		var wg sync.WaitGroup
		errs := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < 400; i++ {
					a, b := r.Intn(n), r.Intn(n)
					if math.Float64bits(ch.RxPowerMW(a, b)) != math.Float64bits(ref.RxPowerMW(a, b)) {
						select {
						case errs <- "reader saw a value differing from the fresh channel":
						default:
						}
						return
					}
				}
			}(int64(round*workers + w))
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}

// HomogeneousTestPower mirrors topo.HomogeneousPower without the import.
func HomogeneousTestPower(n int, mw float64) []float64 {
	pw := make([]float64, n)
	for i := range pw {
		pw[i] = mw
	}
	return pw
}
