package phys

import "fmt"

// ChannelSet models C orthogonal frequency channels over one physical
// deployment. All channels share the deployment's propagation — the same
// gain matrix, transmit powers, noise floor and SINR threshold, i.e. the
// same *Channel — but interference only accumulates within a channel:
// concurrent transmissions on different channels do not interfere (the
// multicoloring setting of Vieira et al., arXiv:1504.01647). Channel 0 is
// the designated control channel: SCREAM floods and elections ride it, data
// rides the full set.
//
// A ChannelSet is a thin immutable view; it is safe for concurrent use
// whenever the underlying Channel is.
type ChannelSet struct {
	base *Channel
	num  int
}

// NewChannelSet returns a set of num orthogonal channels over base.
func NewChannelSet(base *Channel, num int) (*ChannelSet, error) {
	if base == nil {
		return nil, fmt.Errorf("phys: nil base channel")
	}
	if num <= 0 {
		return nil, fmt.Errorf("phys: channel count must be positive, got %d", num)
	}
	return &ChannelSet{base: base, num: num}, nil
}

// Base returns the shared physical channel every frequency channel sees.
func (cs *ChannelSet) Base() *Channel { return cs.base }

// NumChannels returns the number of orthogonal channels in the set.
func (cs *ChannelSet) NumChannels() int { return cs.num }

// NumNodes returns the number of nodes the underlying channel models.
func (cs *ChannelSet) NumNodes() int { return cs.base.NumNodes() }

// Placement is one link scheduled on one channel of a multi-channel slot.
type Placement struct {
	Link    Link
	Channel int
}

// String implements fmt.Stringer.
func (p Placement) String() string { return fmt.Sprintf("%v@ch%d", p.Link, p.Channel) }

// FeasibleAssignment is the naive reference feasibility check for a
// multi-channel slot: the links assigned to each channel must form a
// FeasibleSet of the base channel (SINR inequalities and primary conflicts
// accumulate per channel only), and no node may be an endpoint of more than
// numRadios placements — a node with R radios can tune at most R channels in
// one slot, and each placement occupies one radio at each endpoint.
// MultiSlotState is the incremental counterpart the property tests compare
// against this function.
func (cs *ChannelSet) FeasibleAssignment(placements []Placement, numRadios int) bool {
	if numRadios <= 0 {
		numRadios = 1
	}
	radios := make(map[int]int)
	perChan := make([][]Link, cs.num)
	for _, p := range placements {
		if p.Channel < 0 || p.Channel >= cs.num {
			return false
		}
		perChan[p.Channel] = append(perChan[p.Channel], p.Link)
		radios[p.Link.From]++
		radios[p.Link.To]++
	}
	for _, used := range radios {
		if used > numRadios {
			return false
		}
	}
	for _, links := range perChan {
		if len(links) > 0 && !cs.base.FeasibleSet(links) {
			return false
		}
	}
	return true
}

// MultiSlotState is the incremental feasibility engine for one multi-channel
// slot under construction: a vector of per-channel SlotStates (interference
// sums accumulate within a channel only) plus a per-node radio-occupancy
// count enforcing that no node is active on more than NumRadios channels in
// the slot. CanAdd/Add/Remove are O(k_ch) against the links already on the
// probed channel; Mark/Rollback undo is exact on every channel at once.
//
// A MultiSlotState is not safe for concurrent use and must not be copied
// after Init (its per-channel SlotStates carry inline storage).
type MultiSlotState struct {
	base      Engine
	num       int
	numRadios int
	states    []SlotState
	radios    []int32 // radios[u]: placements in this slot with endpoint u

	order  []Placement // admission order across channels
	marked int         // len(order) at the last Mark; -1 when none
	saved  []int32     // radios snapshot taken by Mark
}

// NewMultiSlotState returns an empty multi-channel slot over cs with the
// given per-node radio budget (numRadios <= 0 means 1).
func NewMultiSlotState(cs *ChannelSet, numRadios int) *MultiSlotState {
	s := new(MultiSlotState)
	s.Init(cs, numRadios)
	return s
}

// NewMultiSlotStateEngine returns an empty multi-channel slot over channels
// orthogonal copies of engine e with the given per-node radio budget.
func NewMultiSlotStateEngine(e Engine, channels, numRadios int) *MultiSlotState {
	s := new(MultiSlotState)
	s.InitEngine(e, channels, numRadios)
	return s
}

// Init (re-)binds s to cs as an empty slot, mirroring SlotState.Init so
// callers can slab-allocate multi-channel slots too.
func (s *MultiSlotState) Init(cs *ChannelSet, numRadios int) {
	s.InitEngine(cs.base, cs.num, numRadios)
}

// InitEngine (re-)binds s to channels orthogonal copies of engine e as an
// empty slot. Interference accumulates within each channel only; the
// per-node radio budget caps how many channels a node may be active on.
func (s *MultiSlotState) InitEngine(e Engine, channels, numRadios int) {
	if numRadios <= 0 {
		numRadios = 1
	}
	if s.base != nil {
		*s = MultiSlotState{}
	}
	s.base = e
	s.num = channels
	s.numRadios = numRadios
	s.states = make([]SlotState, channels)
	for i := range s.states {
		s.states[i].InitEngine(e)
	}
	s.radios = make([]int32, e.NumNodes())
	s.marked = -1
}

// NumRadios returns the per-node radio budget the slot enforces.
func (s *MultiSlotState) NumRadios() int { return s.numRadios }

// Len returns the number of placements currently in the slot.
func (s *MultiSlotState) Len() int { return len(s.order) }

// ChannelLen returns the number of links currently on channel ch.
func (s *MultiSlotState) ChannelLen(ch int) int { return s.states[ch].Len() }

// Placements returns a copy of the slot's placements in admission order.
func (s *MultiSlotState) Placements() []Placement {
	out := make([]Placement, len(s.order))
	copy(out, s.order)
	return out
}

// CanAdd reports whether placing l on channel ch keeps the slot feasible:
// both endpoints must have a free radio (fewer than NumRadios placements in
// this slot already touch them) and l must clear the single-channel CanAdd
// against the links currently on ch. For a feasible current slot this is
// exactly FeasibleAssignment(Placements() + {l, ch}).
func (s *MultiSlotState) CanAdd(l Link, ch int) bool {
	if s.radios[l.From] >= int32(s.numRadios) || s.radios[l.To] >= int32(s.numRadios) {
		return false
	}
	return s.states[ch].CanAdd(l)
}

// Add places l on channel ch, updating the channel's running sums and both
// endpoints' radio counts. Like SlotState.Add it never rejects; callers gate
// on CanAdd.
func (s *MultiSlotState) Add(l Link, ch int) {
	s.states[ch].Add(l)
	s.radios[l.From]++
	s.radios[l.To]++
	s.order = append(s.order, Placement{Link: l, Channel: ch})
}

// Remove deletes the first occurrence of l on channel ch, reporting whether
// it was present. Like SlotState.Remove it invalidates an outstanding Mark.
func (s *MultiSlotState) Remove(l Link, ch int) bool {
	if !s.states[ch].Remove(l) {
		return false
	}
	s.radios[l.From]--
	s.radios[l.To]--
	for i, p := range s.order {
		if p.Link == l && p.Channel == ch {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.marked = -1
	return true
}

// Mark snapshots the slot — every channel's interference sums and the radio
// counts — so a later Rollback undoes any Adds performed after it exactly.
// One mark is outstanding at a time; Remove and Reset invalidate it.
func (s *MultiSlotState) Mark() {
	s.marked = len(s.order)
	s.saved = append(s.saved[:0], s.radios...)
	for i := range s.states {
		s.states[i].Mark()
	}
}

// Rollback restores the slot to the state captured by the last Mark. It
// panics if no valid mark is outstanding.
func (s *MultiSlotState) Rollback() {
	if s.marked < 0 || s.marked > len(s.order) {
		panic("phys: MultiSlotState.Rollback without a valid Mark")
	}
	for i := range s.states {
		s.states[i].Rollback()
	}
	copy(s.radios, s.saved)
	s.order = s.order[:s.marked]
}

// Reset empties the slot for reuse and invalidates any outstanding Mark.
func (s *MultiSlotState) Reset() {
	for i := range s.states {
		s.states[i].Reset()
	}
	for i := range s.radios {
		s.radios[i] = 0
	}
	s.order = s.order[:0]
	s.marked = -1
}
