package phys

// Property tests for the incremental SINR feasibility engine: SlotState must
// agree decision-for-decision with the naive reference implementations
// (FeasibleSet, HandshakeOutcome) over randomized add/remove sequences, and
// Mark/Rollback must restore state exactly.

import (
	"math"
	"math/rand"
	"testing"
)

// gridChannel builds a channel with side*side nodes on a square grid, step
// meters apart, homogeneous power, default propagation.
func gridChannel(tb testing.TB, side int, step float64, txDBm DBm) *Channel {
	tb.Helper()
	n := side * side
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dx := float64(i%side-j%side) * step
			dy := float64(i/side-j/side) * step
			dist[i][j] = math.Hypot(dx, dy)
		}
	}
	gain := BuildGainMatrix(dist, DefaultLogDistance(), nil)
	pw := make([]float64, n)
	for i := range pw {
		pw[i] = txDBm.MilliWatts()
	}
	ch, err := NewChannel(pw, gain, DBm(-96).MilliWatts(), DB(10).Linear())
	if err != nil {
		tb.Fatal(err)
	}
	return ch
}

// randomLink draws a link with arbitrary endpoints — including self loops
// and endpoints shared with existing links — so the fuzz covers primary
// conflicts and infeasible members, not just greedy-style admissible sets.
func randomLink(rng *rand.Rand, n int) Link {
	return Link{From: rng.Intn(n), To: rng.Intn(n)}
}

// TestSlotStateAddRemoveMatchesFeasibleSet drives a SlotState through random
// CanAdd-gated add and Remove sequences (the greedy access pattern plus
// evictions) and asserts at every step that CanAdd(l) equals the naive
// FeasibleSet on the would-be union.
func TestSlotStateAddRemoveMatchesFeasibleSet(t *testing.T) {
	ch := lineChannel(t, 24, 35, 20)
	rng := rand.New(rand.NewSource(41))
	agreeAdds, agreeRejects, removes := 0, 0, 0
	for trial := 0; trial < 200; trial++ {
		st := NewSlotState(ch)
		var mirror []Link
		for op := 0; op < 30; op++ {
			if len(mirror) > 0 && rng.Intn(4) == 0 {
				victim := mirror[rng.Intn(len(mirror))]
				if !st.Remove(victim) {
					t.Fatalf("trial %d: Remove(%v) failed for a member", trial, victim)
				}
				for i, m := range mirror {
					if m == victim {
						mirror = append(mirror[:i], mirror[i+1:]...)
						break
					}
				}
				removes++
				continue
			}
			a := rng.Intn(23)
			l := Link{a, a + 1}
			if rng.Intn(2) == 0 {
				l = l.Reverse()
			}
			want := ch.FeasibleSet(append(append([]Link(nil), mirror...), l))
			got := st.CanAdd(l)
			if got != want {
				t.Fatalf("trial %d op %d: CanAdd(%v) = %v, FeasibleSet(%v + it) = %v",
					trial, op, l, got, mirror, want)
			}
			if got {
				st.Add(l)
				mirror = append(mirror, l)
				agreeAdds++
			} else {
				agreeRejects++
			}
		}
		if st.Len() != len(mirror) {
			t.Fatalf("trial %d: Len = %d, mirror = %d", trial, st.Len(), len(mirror))
		}
	}
	if agreeAdds == 0 || agreeRejects == 0 || removes == 0 {
		t.Fatalf("fuzz did not exercise all paths: %d adds, %d rejects, %d removes",
			agreeAdds, agreeRejects, removes)
	}
}

// TestSlotStateOutcomesMatchHandshake fuzzes unconstrained add/remove
// sequences — conflicting, duplicate, self-loop and hopeless links included,
// the protocol's tentative-admission pattern — and asserts Outcomes equals
// the naive HandshakeOutcome on the same set after every mutation.
func TestSlotStateOutcomesMatchHandshake(t *testing.T) {
	ch := lineChannel(t, 20, 35, 20)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 150; trial++ {
		st := NewSlotState(ch)
		var mirror []Link
		for op := 0; op < 25; op++ {
			if len(mirror) > 0 && rng.Intn(3) == 0 {
				victim := mirror[rng.Intn(len(mirror))]
				st.Remove(victim)
				for i, m := range mirror {
					if m == victim {
						mirror = append(mirror[:i], mirror[i+1:]...)
						break
					}
				}
			} else {
				var l Link
				switch rng.Intn(5) {
				case 0: // arbitrary, possibly hopeless or a self loop
					l = randomLink(rng, 20)
				case 1: // duplicate an existing member
					if len(mirror) > 0 {
						l = mirror[rng.Intn(len(mirror))]
					} else {
						l = randomLink(rng, 20)
					}
				default: // a plausible short link
					a := rng.Intn(19)
					l = Link{a, a + 1}
				}
				st.Add(l)
				mirror = append(mirror, l)
			}
			got := st.Outcomes()
			want := ch.HandshakeOutcome(mirror)
			if len(got) != len(want) {
				t.Fatalf("trial %d op %d: %d outcomes for %d links", trial, op, len(got), len(mirror))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d op %d: outcome[%d] = %v, naive = %v, links = %v",
						trial, op, i, got[i], want[i], mirror)
				}
			}
		}
	}
}

// TestSlotStateRemoveAgreesWithRebuild: a state that has seen removals must
// make the same decisions as a state freshly built from the surviving links.
func TestSlotStateRemoveAgreesWithRebuild(t *testing.T) {
	ch := lineChannel(t, 24, 35, 20)
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		st := NewSlotState(ch)
		var mirror []Link
		for op := 0; op < 12; op++ {
			a := rng.Intn(23)
			l := Link{a, a + 1}
			if st.CanAdd(l) {
				st.Add(l)
				mirror = append(mirror, l)
			}
		}
		for len(mirror) > 1 {
			i := rng.Intn(len(mirror))
			st.Remove(mirror[i])
			mirror = append(mirror[:i], mirror[i+1:]...)
			fresh := NewSlotState(ch)
			for _, m := range mirror {
				fresh.Add(m)
			}
			for probe := 0; probe < 8; probe++ {
				a := rng.Intn(23)
				l := Link{a, a + 1}
				if got, want := st.CanAdd(l), fresh.CanAdd(l); got != want {
					t.Fatalf("trial %d: after removals CanAdd(%v) = %v, rebuilt = %v (links %v)",
						trial, l, got, want, mirror)
				}
			}
		}
	}
}

// TestSlotStateMarkRollback: Rollback must restore the exact pre-Mark state
// — links, endpoint occupancy and bit-identical interference sums — no
// matter what was tentatively admitted in between.
func TestSlotStateMarkRollback(t *testing.T) {
	ch := lineChannel(t, 24, 35, 20)
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		st := NewSlotState(ch)
		for op := 0; op < 6; op++ {
			a := rng.Intn(23)
			if l := (Link{a, a + 1}); st.CanAdd(l) {
				st.Add(l)
			}
		}
		wantLinks := st.Links()
		wantData := append([]float64(nil), st.dataSum...)
		wantAck := append([]float64(nil), st.ackSum...)

		st.Mark()
		for op := 0; op < 5; op++ {
			st.Add(randomLink(rng, 24)) // unvetted: conflicts welcome
		}
		st.Outcomes() // force lazy conflict-count state into existence
		st.Rollback()

		gotLinks := st.Links()
		if len(gotLinks) != len(wantLinks) {
			t.Fatalf("trial %d: %d links after rollback, want %d", trial, len(gotLinks), len(wantLinks))
		}
		for i := range wantLinks {
			if gotLinks[i] != wantLinks[i] {
				t.Fatalf("trial %d: link[%d] = %v after rollback, want %v", trial, i, gotLinks[i], wantLinks[i])
			}
			if st.dataSum[i] != wantData[i] || st.ackSum[i] != wantAck[i] {
				t.Fatalf("trial %d: sums[%d] = (%v, %v) after rollback, want exactly (%v, %v)",
					trial, i, st.dataSum[i], st.ackSum[i], wantData[i], wantAck[i])
			}
		}
		for u, c := range st.busy {
			want := int32(0)
			for _, l := range wantLinks {
				if l.From == u {
					want++
				}
				if l.To == u {
					want++
				}
			}
			if c != want {
				t.Fatalf("trial %d: busy[%d] = %d after rollback, want %d", trial, u, c, want)
			}
		}
		// And the rolled-back state keeps agreeing with the reference.
		out := st.Outcomes()
		naive := ch.HandshakeOutcome(wantLinks)
		for i := range naive {
			if out[i] != naive[i] {
				t.Fatalf("trial %d: outcome[%d] diverged after rollback", trial, i)
			}
		}
	}
}

// TestSlotStateRollbackWithoutMarkPanics documents the API contract.
func TestSlotStateRollbackWithoutMarkPanics(t *testing.T) {
	ch := lineChannel(t, 4, 35, 20)
	st := NewSlotState(ch)
	defer func() {
		if recover() == nil {
			t.Fatal("Rollback without Mark should panic")
		}
	}()
	st.Rollback()
}

// buildSlotIncremental greedily fills one slot from candidates with the
// SlotState engine.
func buildSlotIncremental(ch *Channel, candidates []Link) int {
	st := NewSlotState(ch)
	for _, l := range candidates {
		if st.CanAdd(l) {
			st.Add(l)
		}
	}
	return st.Len()
}

// buildSlotNaive greedily fills one slot by re-running the naive FeasibleSet
// over the whole accumulated slot per candidate — the pre-engine hot path.
func buildSlotNaive(ch *Channel, candidates []Link) int {
	var slot []Link
	for _, l := range candidates {
		if ch.FeasibleSet(append(slot, l)) {
			slot = append(slot, l)
		}
	}
	return len(slot)
}

// BenchmarkSlotStateVsNaive quantifies the incremental engine against the
// naive full-recheck path on greedy single-slot construction over 64- and
// 256-node grids (candidates: all horizontal odd-even grid edges).
func BenchmarkSlotStateVsNaive(b *testing.B) {
	for _, side := range []int{8, 16} {
		ch := gridChannel(b, side, 40, 20)
		var candidates []Link
		for r := 0; r < side; r++ {
			for c := 0; c+1 < side; c += 2 {
				candidates = append(candidates, Link{From: r*side + c, To: r*side + c + 1})
			}
		}
		inc := buildSlotIncremental(ch, candidates)
		naive := buildSlotNaive(ch, candidates)
		if inc != naive || inc == 0 {
			b.Fatalf("side %d: incremental admits %d, naive %d", side, inc, naive)
		}
		name := map[int]string{8: "grid64", 16: "grid256"}[side]
		b.Run(name+"/incremental", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buildSlotIncremental(ch, candidates)
			}
		})
		b.Run(name+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buildSlotNaive(ch, candidates)
			}
		})
	}
}
