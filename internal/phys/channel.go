package phys

import (
	"fmt"
	"math"
	"sync"
)

// Channel captures everything the interference model needs about a deployed
// network: per-node transmit powers, the pairwise linear gain matrix
// (propagation plus optional static shadowing), background noise, and the
// SINR threshold beta. The paper assumes fixed (but possibly heterogeneous)
// transmit power and no power control (Section II).
//
// A Channel must not be copied after first use: it lazily caches the
// pairwise RX-power matrix behind a sync.Once so that concurrent readers
// (e.g. the experiment engine's workers sharing one deployment) are safe.
//
// Channels are immutable except through MoveNode and RemoveNode, the
// topology-dynamics entry points. Those mutations require exclusive access
// (no concurrent readers while a mutation runs); once a mutation returns,
// any number of concurrent readers are safe again.
type Channel struct {
	txPowerMW []float64
	gain      [][]float64 // gain[i][j]: linear gain from node i to node j
	noiseMW   float64
	beta      float64 // linear SINR threshold

	rxOnce sync.Once
	rxFlat []float64 // row-major n*n cache of P_v(u) = txPowerMW[u]*Gain(u,v)
}

// NewChannel builds a channel from per-node TX powers (mW), a gain matrix
// and scalar noise (mW) and linear SINR threshold beta.
func NewChannel(txPowerMW []float64, gain [][]float64, noiseMW, beta float64) (*Channel, error) {
	n := len(txPowerMW)
	if len(gain) != n {
		return nil, fmt.Errorf("phys: gain matrix has %d rows for %d nodes", len(gain), n)
	}
	for i, row := range gain {
		if len(row) != n {
			return nil, fmt.Errorf("phys: gain row %d has %d entries for %d nodes", i, len(row), n)
		}
	}
	if noiseMW <= 0 {
		return nil, fmt.Errorf("phys: noise must be positive, got %v", noiseMW)
	}
	if beta <= 0 {
		return nil, fmt.Errorf("phys: beta must be positive, got %v", beta)
	}
	for i, p := range txPowerMW {
		if p <= 0 {
			return nil, fmt.Errorf("phys: node %d has non-positive TX power %v", i, p)
		}
	}
	return &Channel{txPowerMW: txPowerMW, gain: gain, noiseMW: noiseMW, beta: beta}, nil
}

// NumNodes returns the number of nodes the channel models.
func (c *Channel) NumNodes() int { return len(c.txPowerMW) }

// NoiseMW returns the background noise power in milliwatts.
func (c *Channel) NoiseMW() float64 { return c.noiseMW }

// Beta returns the linear SINR threshold.
func (c *Channel) Beta() float64 { return c.beta }

// TxPowerMW returns node u's transmit power in milliwatts.
func (c *Channel) TxPowerMW(u int) float64 { return c.txPowerMW[u] }

// Gain returns the linear gain from node u to node v. The gain from a node
// to itself is not meaningful and returns 0.
func (c *Channel) Gain(u, v int) float64 {
	if u == v {
		return 0
	}
	return c.gain[u][v]
}

// rxMatrix returns the row-major n*n matrix of received powers, building it
// on first use. The entries are exactly txPowerMW[u]*Gain(u,v) — the same
// single multiplication RxPowerMW used to perform per call — so cached and
// uncached reads are bit-identical. Safe for concurrent use.
func (c *Channel) rxMatrix() []float64 {
	c.rxOnce.Do(func() {
		n := len(c.txPowerMW)
		rx := make([]float64, n*n)
		for u := 0; u < n; u++ {
			row := rx[u*n : (u+1)*n]
			p := c.txPowerMW[u]
			for v := 0; v < n; v++ {
				row[v] = p * c.Gain(u, v)
			}
		}
		c.rxFlat = rx
	})
	return c.rxFlat
}

// RxPowerMW returns P_v(u): the power received at v when u transmits.
func (c *Channel) RxPowerMW(u, v int) float64 {
	return c.rxMatrix()[u*len(c.txPowerMW)+v]
}

// MoveNode replaces node u's symmetric gain row: after the call,
// Gain(u, v) == Gain(v, u) == g[v] for every v != u (g[u] is ignored; the
// self-gain stays 0). If the RX-power cache has been built, only row u and
// column u of it are recomputed — with the same single multiplication
// rxMatrix performs on a cold build, so the resulting matrix is
// bit-identical to a freshly constructed channel over the updated gain
// matrix; on an unbuilt cache there is nothing to patch and the lazy build
// sees the new gains. On an invalid argument the error is returned before
// anything is touched, leaving the channel unmodified.
//
// MoveNode requires exclusive access: no reader may run concurrently with
// it. The channel is safe for concurrent reads again once it returns. A
// spatial engine built over the same deployment is a separate structure and
// must be updated through its own MoveNode (dynam.World forwards both).
func (c *Channel) MoveNode(u int, g []float64) error {
	n := len(c.txPowerMW)
	if u < 0 || u >= n {
		return fmt.Errorf("phys: node %d out of range for %d nodes", u, n)
	}
	if len(g) != n {
		return fmt.Errorf("phys: %d gains for %d nodes", len(g), n)
	}
	// Validate the whole row before touching anything: an error must leave
	// the channel exactly as it was, not half-mutated.
	for v, gv := range g {
		if v != u && gv < 0 {
			return fmt.Errorf("phys: negative gain %v between nodes %d and %d", gv, u, v)
		}
	}
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		c.gain[u][v] = g[v]
		c.gain[v][u] = g[v]
	}
	c.gain[u][u] = 0
	if c.rxFlat == nil {
		return nil // matrix not built yet; the lazy build will see the new gains
	}
	row := c.rxFlat[u*n : (u+1)*n]
	p := c.txPowerMW[u]
	for v := 0; v < n; v++ {
		row[v] = p * c.Gain(u, v)
		c.rxFlat[v*n+u] = c.txPowerMW[v] * c.Gain(v, u)
	}
	return nil
}

// RemoveNode silences node u: every gain to and from it becomes 0, so it
// neither delivers power anywhere nor receives any — the channel of a
// network where u's radio is off. The channel does not remember the
// silenced row, so reinstating the node means calling MoveNode with a gain
// row recomputed from its position (topo.Network.SetNodeUp does exactly
// that). Same exclusivity contract as MoveNode.
func (c *Channel) RemoveNode(u int) error {
	return c.MoveNode(u, make([]float64, len(c.txPowerMW)))
}

// Clone returns an independent deep copy of the channel (cold RX cache).
// Mutating the clone never affects the original, which is how dynamics runs
// avoid corrupting a shared deployment.
func (c *Channel) Clone() *Channel {
	gain := make([][]float64, len(c.gain))
	for i, row := range c.gain {
		gain[i] = append([]float64(nil), row...)
	}
	return &Channel{
		txPowerMW: append([]float64(nil), c.txPowerMW...),
		gain:      gain,
		noiseMW:   c.noiseMW,
		beta:      c.beta,
	}
}

// GainRow returns a copy of node u's gain row (Gain(u, v) for every v).
func (c *Channel) GainRow(u int) []float64 {
	row := make([]float64, len(c.txPowerMW))
	for v := range row {
		row[v] = c.Gain(u, v)
	}
	return row
}

// SNR returns the interference-free signal-to-noise ratio of a transmission
// from u to v.
func (c *Channel) SNR(u, v int) float64 {
	return c.RxPowerMW(u, v) / c.noiseMW
}

// LinkUp reports whether a directed transmission u -> v succeeds in the
// absence of any interference, i.e. SNR >= beta.
func (c *Channel) LinkUp(u, v int) bool {
	return c.SNR(u, v) >= c.beta
}

// AggregatePowerMW returns the total power received at node rx when every
// node in senders transmits simultaneously. rx itself is skipped if present
// in senders (a node does not hear its own signal as channel activity for
// carrier-sensing purposes — it knows it is transmitting).
func (c *Channel) AggregatePowerMW(rx int, senders []int) float64 {
	sum := 0.0
	for _, s := range senders {
		if s == rx {
			continue
		}
		sum += c.RxPowerMW(s, rx)
	}
	return sum
}

// Detects reports whether node rx detects channel activity (carrier sense /
// energy detection) above detectMW when the given senders transmit. This is
// the collision-resilient primitive the SCREAM subroutine relies on: the
// aggregate energy of overlapping screams only grows with more senders.
func (c *Channel) Detects(rx int, senders []int, detectMW float64) bool {
	return c.AggregatePowerMW(rx, senders) >= detectMW
}

// SINR returns the signal-to-interference-plus-noise ratio of a transmission
// from u to v while each node in interferers also transmits. u and v are
// skipped if present in interferers.
func (c *Channel) SINR(u, v int, interferers []int) float64 {
	interf := 0.0
	for _, x := range interferers {
		if x == u || x == v {
			continue
		}
		interf += c.RxPowerMW(x, v)
	}
	return c.RxPowerMW(u, v) / (c.noiseMW + interf)
}

// BuildGainMatrix evaluates a path loss model over node positions given as
// pairwise distances, producing the symmetric gain matrix. shadowDB, when
// non-nil, supplies a symmetric per-pair shadowing term in dB that is added
// to the path loss (log-normal shadowing); pass nil for pure log-distance.
func BuildGainMatrix(dist [][]float64, pl PathLoss, shadowDB [][]float64) [][]float64 {
	n := len(dist)
	gain := make([][]float64, n)
	for i := range gain {
		gain[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g := pl.Gain(dist[i][j])
			if shadowDB != nil {
				g *= math.Pow(10, -shadowDB[i][j]/10)
			}
			gain[i][j] = g
			gain[j][i] = g
		}
	}
	return gain
}
