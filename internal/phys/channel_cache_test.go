package phys

// Tests for the lazily-built RX-power cache behind Channel.RxPowerMW — the
// values must be bit-identical to the uncached product, and the lazy fill
// must be safe when one Channel is shared across the experiment engine's
// worker goroutines (run under -race).

import (
	"math/rand"
	"sync"
	"testing"
)

// TestRxPowerCacheExact: every cached entry equals the direct product the
// uncached implementation computed, bit for bit.
func TestRxPowerCacheExact(t *testing.T) {
	ch := lineChannel(t, 16, 37.5, 17)
	for u := 0; u < ch.NumNodes(); u++ {
		for v := 0; v < ch.NumNodes(); v++ {
			want := ch.TxPowerMW(u) * ch.Gain(u, v)
			if got := ch.RxPowerMW(u, v); got != want {
				t.Fatalf("RxPowerMW(%d,%d) = %v, want exactly %v", u, v, got, want)
			}
		}
	}
	if ch.RxPowerMW(3, 3) != 0 {
		t.Fatal("self-reception must stay 0 through the cache")
	}
}

// TestRxPowerCacheConcurrent hammers a single cold Channel from many
// goroutines at once — the experiment engine's workers share one deployment
// per cell batch — so the lazy fill races with readers unless properly
// synchronized. Run under -race this proves the cache is data-race free; the
// value checks prove every racer observes the fully-built matrix.
func TestRxPowerCacheConcurrent(t *testing.T) {
	const workers = 16
	for round := 0; round < 10; round++ {
		ch := lineChannel(t, 24, 35, 20) // fresh cold cache each round
		var wg sync.WaitGroup
		errs := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 500; i++ {
					u := rng.Intn(ch.NumNodes())
					v := rng.Intn(ch.NumNodes())
					want := ch.TxPowerMW(u) * ch.Gain(u, v)
					if got := ch.RxPowerMW(u, v); got != want {
						select {
						case errs <- "stale or torn cache read":
						default:
						}
						return
					}
				}
				// SlotStates bind to the shared matrix too; exercise the
				// same path the concurrent schedulers take.
				st := NewSlotState(ch)
				a := rng.Intn(ch.NumNodes() - 1)
				if l := (Link{a, a + 1}); st.CanAdd(l) {
					st.Add(l)
				}
			}(int64(round*workers + w))
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}
