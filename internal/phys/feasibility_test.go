package phys

import (
	"math"
	"math/rand"
	"testing"
)

// lineChannel builds a channel with n nodes evenly spaced step meters apart
// on a line, homogeneous power, default propagation.
func lineChannel(t testing.TB, n int, step float64, txDBm DBm) *Channel {
	t.Helper()
	pl := DefaultLogDistance()
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = math.Abs(float64(i-j)) * step
		}
	}
	gain := BuildGainMatrix(dist, pl, nil)
	pw := make([]float64, n)
	for i := range pw {
		pw[i] = txDBm.MilliWatts()
	}
	ch, err := NewChannel(pw, gain, DBm(-96).MilliWatts(), DB(10).Linear())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewChannelValidation(t *testing.T) {
	good := [][]float64{{0, 1}, {1, 0}}
	if _, err := NewChannel([]float64{1, 1}, good, 1, 1); err != nil {
		t.Errorf("valid channel rejected: %v", err)
	}
	cases := []struct {
		name  string
		pw    []float64
		gain  [][]float64
		noise float64
		beta  float64
	}{
		{"bad rows", []float64{1, 1}, [][]float64{{0, 1}}, 1, 1},
		{"bad cols", []float64{1, 1}, [][]float64{{0}, {1, 0}}, 1, 1},
		{"zero noise", []float64{1, 1}, good, 0, 1},
		{"zero beta", []float64{1, 1}, good, 1, 0},
		{"zero power", []float64{1, 0}, good, 1, 1},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewChannel(tt.pw, tt.gain, tt.noise, tt.beta); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestChannelAccessors(t *testing.T) {
	ch := lineChannel(t, 4, 20, 20)
	if ch.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", ch.NumNodes())
	}
	if ch.Gain(1, 1) != 0 {
		t.Error("self gain should be 0")
	}
	if ch.Gain(0, 1) != ch.Gain(1, 0) {
		t.Error("gain should be symmetric for this build")
	}
	if ch.RxPowerMW(0, 1) <= ch.RxPowerMW(0, 2) {
		t.Error("closer receiver should get more power")
	}
}

func TestLinkUpAtRange(t *testing.T) {
	ch := lineChannel(t, 3, 50, 20)
	pl := DefaultLogDistance()
	r := pl.MaxRange(DBm(20).MilliWatts(), ch.NoiseMW(), ch.Beta())
	if r < 50 {
		t.Skipf("range %v too short for this layout", r)
	}
	if !ch.LinkUp(0, 1) {
		t.Error("adjacent link should be up")
	}
	if ch.LinkUp(0, 2) != (100 <= r) {
		t.Errorf("2-step link up = %v, range %v", ch.LinkUp(0, 2), r)
	}
}

func TestSINRNoInterference(t *testing.T) {
	ch := lineChannel(t, 4, 30, 20)
	snr := ch.SNR(0, 1)
	sinr := ch.SINR(0, 1, nil)
	if math.Abs(snr-sinr) > 1e-12 {
		t.Errorf("SINR with no interferers = %v, want SNR %v", sinr, snr)
	}
	// Sender/receiver in the interferer list are ignored.
	sinr2 := ch.SINR(0, 1, []int{0, 1})
	if math.Abs(snr-sinr2) > 1e-12 {
		t.Errorf("SINR must skip endpoints, got %v want %v", sinr2, snr)
	}
	// A real interferer lowers SINR.
	if ch.SINR(0, 1, []int{3}) >= snr {
		t.Error("interference must reduce SINR")
	}
}

func TestAggregatePowerSkipsSelf(t *testing.T) {
	ch := lineChannel(t, 3, 30, 20)
	all := ch.AggregatePowerMW(1, []int{0, 1, 2})
	noSelf := ch.AggregatePowerMW(1, []int{0, 2})
	if all != noSelf {
		t.Errorf("self transmission should be excluded: %v vs %v", all, noSelf)
	}
}

func TestDetects(t *testing.T) {
	ch := lineChannel(t, 5, 30, 20)
	det := DBm(-85).MilliWatts()
	if !ch.Detects(1, []int{0}, det) {
		t.Error("adjacent sender should be detected")
	}
	if ch.Detects(0, nil, det) {
		t.Error("silence should not be detected")
	}
	// Collision resilience: more simultaneous senders never turn detection off.
	single := ch.AggregatePowerMW(2, []int{1})
	multi := ch.AggregatePowerMW(2, []int{1, 3, 4})
	if multi < single {
		t.Error("aggregate energy must be monotone in the sender set")
	}
}

func TestLinkHelpers(t *testing.T) {
	l := Link{From: 1, To: 2}
	if l.String() != "1->2" {
		t.Errorf("String = %q", l.String())
	}
	if l.Reverse() != (Link{From: 2, To: 1}) {
		t.Errorf("Reverse = %v", l.Reverse())
	}
	cases := []struct {
		a, b Link
		want bool
	}{
		{Link{0, 1}, Link{2, 3}, false},
		{Link{0, 1}, Link{1, 2}, true},
		{Link{0, 1}, Link{2, 0}, true},
		{Link{0, 1}, Link{0, 2}, true},
		{Link{0, 1}, Link{2, 1}, true},
		{Link{0, 1}, Link{0, 1}, true},
	}
	for _, tt := range cases {
		if got := tt.a.SharesEndpoint(tt.b); got != tt.want {
			t.Errorf("SharesEndpoint(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.SharesEndpoint(tt.a); got != tt.want {
			t.Errorf("SharesEndpoint not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestFeasibleSetSingleLink(t *testing.T) {
	ch := lineChannel(t, 8, 30, 20)
	if !ch.FeasibleSet([]Link{{0, 1}}) {
		t.Error("single short link should be feasible")
	}
	if ch.FeasibleSet([]Link{{0, 7}}) {
		t.Error("a link far beyond range should be infeasible")
	}
}

func TestFeasibleSetPrimaryConflict(t *testing.T) {
	ch := lineChannel(t, 8, 30, 20)
	if ch.FeasibleSet([]Link{{0, 1}, {1, 2}}) {
		t.Error("links sharing node 1 must be infeasible")
	}
	if ch.FeasibleSet([]Link{{0, 1}, {0, 1}}) {
		t.Error("duplicate link must be infeasible")
	}
}

func TestFeasibleSetDistantPairs(t *testing.T) {
	// Two short links far apart should coexist; two adjacent ones should not
	// (strong mutual interference at alpha=3, beta=10dB, 30 m spacing).
	ch := lineChannel(t, 20, 30, 20)
	if !ch.FeasibleSet([]Link{{0, 1}, {18, 19}}) {
		t.Error("far-apart link pair should be feasible")
	}
	if ch.FeasibleSet([]Link{{0, 1}, {2, 3}}) {
		t.Error("adjacent link pair should conflict under physical interference")
	}
}

func TestFeasibleSetMatchesSINRDefinition(t *testing.T) {
	ch := lineChannel(t, 16, 40, 20)
	links := []Link{{0, 1}, {8, 9}, {14, 15}}
	want := true
	for i, l := range links {
		var dataIntf []int
		var ackIntf []int
		for j, m := range links {
			if i == j {
				continue
			}
			dataIntf = append(dataIntf, m.From)
			ackIntf = append(ackIntf, m.To)
		}
		if ch.SINR(l.From, l.To, dataIntf) < ch.Beta() {
			want = false
		}
		if ch.SINR(l.To, l.From, ackIntf) < ch.Beta() {
			want = false
		}
	}
	if got := ch.FeasibleSet(links); got != want {
		t.Errorf("FeasibleSet = %v, direct SINR computation says %v", got, want)
	}
}

func TestAckInterferenceMatters(t *testing.T) {
	// Construct a case where the data sub-slot is fine but ACKs collide:
	// receivers adjacent to each other, senders far on opposite sides.
	// Layout: s1 --- r1  r2 --- s2 with r1, r2 close together.
	pl := DefaultLogDistance()
	pos := []float64{0, 95, 125, 220} // s1, r1, r2, s2 on a line
	n := len(pos)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = math.Abs(pos[i] - pos[j])
		}
	}
	gain := BuildGainMatrix(dist, pl, nil)
	pw := []float64{DBm(22).MilliWatts(), DBm(2).MilliWatts(), DBm(2).MilliWatts(), DBm(22).MilliWatts()}
	ch, err := NewChannel(pw, gain, DBm(-96).MilliWatts(), DB(10).Linear())
	if err != nil {
		t.Fatal(err)
	}
	links := []Link{{0, 1}, {3, 2}}
	// Data direction: strong senders, interferer is far from the foreign
	// receiver. ACK direction: weak ACK powers and the foreign ACK sender
	// (the other receiver) is very close -> ACK inequality should fail.
	dataOK := ch.SINR(0, 1, []int{3}) >= ch.Beta() && ch.SINR(3, 2, []int{0}) >= ch.Beta()
	ackOK := ch.SINR(1, 0, []int{2}) >= ch.Beta() && ch.SINR(2, 3, []int{1}) >= ch.Beta()
	if !dataOK {
		t.Skip("geometry did not produce clean data sub-slot; adjust constants")
	}
	if ackOK {
		t.Skip("geometry did not produce ACK collision; adjust constants")
	}
	if ch.FeasibleSet(links) {
		t.Error("set must be infeasible due to ACK sub-slot interference")
	}
}

func TestHandshakeOutcomeAllAlone(t *testing.T) {
	ch := lineChannel(t, 4, 30, 20)
	got := ch.HandshakeOutcome([]Link{{0, 1}})
	if len(got) != 1 || !got[0] {
		t.Errorf("lone handshake should succeed, got %v", got)
	}
}

func TestHandshakeOutcomeConflicts(t *testing.T) {
	ch := lineChannel(t, 6, 30, 20)
	got := ch.HandshakeOutcome([]Link{{0, 1}, {1, 2}})
	if got[0] || got[1] {
		t.Errorf("primary-conflicted handshakes must both fail, got %v", got)
	}
}

func TestHandshakeOutcomeSubsetOfFeasible(t *testing.T) {
	// For any feasible set, every handshake must succeed.
	rng := rand.New(rand.NewSource(11))
	ch := lineChannel(t, 24, 35, 20)
	for trial := 0; trial < 200; trial++ {
		var links []Link
		used := map[int]bool{}
		for k := 0; k < 4; k++ {
			a := rng.Intn(23)
			if used[a] || used[a+1] {
				continue
			}
			links = append(links, Link{a, a + 1})
			used[a], used[a+1] = true, true
		}
		if !ch.FeasibleSet(links) {
			continue
		}
		for i, ok := range ch.HandshakeOutcome(links) {
			if !ok {
				t.Fatalf("link %v of feasible set failed handshake (trial %d, links %v)", links[i], trial, links)
			}
		}
	}
}

func TestHandshakeAckOnlyFromDecodedReceivers(t *testing.T) {
	// If one link's data fails, its receiver must not ACK, so the other
	// link's ACK sub-slot sees less interference than FeasibleSet assumes.
	// Build: good short link + hopeless long link.
	ch := lineChannel(t, 30, 30, 20)
	links := []Link{{0, 1}, {10, 29}} // second is way out of range
	got := ch.HandshakeOutcome(links)
	if got[1] {
		t.Fatal("out-of-range link cannot complete a handshake")
	}
	if !got[0] {
		t.Error("short link should succeed; the dead link's receiver sends no ACK")
	}
}

func TestSlotStateMatchesFeasibleSet(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ch := lineChannel(t, 20, 35, 20)
	for trial := 0; trial < 500; trial++ {
		sc := NewSlotState(ch)
		var accepted []Link
		for k := 0; k < 6; k++ {
			a := rng.Intn(19)
			l := Link{a, a + 1}
			if rng.Intn(2) == 0 {
				l = l.Reverse()
			}
			if sc.CanAdd(l) {
				sc.Add(l)
				accepted = append(accepted, l)
				if !ch.FeasibleSet(accepted) {
					t.Fatalf("SlotState accepted infeasible set %v (trial %d)", accepted, trial)
				}
			}
		}
		if sc.Len() != len(accepted) {
			t.Fatalf("Len = %d, want %d", sc.Len(), len(accepted))
		}
	}
}

func TestSlotStateRejectsConflict(t *testing.T) {
	ch := lineChannel(t, 10, 30, 20)
	sc := NewSlotState(ch)
	if !sc.CanAdd(Link{0, 1}) {
		t.Fatal("first link should be addable")
	}
	sc.Add(Link{0, 1})
	if sc.CanAdd(Link{1, 2}) {
		t.Error("endpoint conflict must be rejected")
	}
	if sc.CanAdd(Link{2, 2}) {
		t.Error("self loop must be rejected")
	}
}

func TestSlotStateReset(t *testing.T) {
	ch := lineChannel(t, 10, 30, 20)
	sc := NewSlotState(ch)
	sc.Add(Link{0, 1})
	sc.Reset()
	if sc.Len() != 0 {
		t.Fatal("reset should clear links")
	}
	if !sc.CanAdd(Link{1, 2}) {
		t.Error("node busy set should be cleared by Reset")
	}
}

func TestSlotStateLinksCopy(t *testing.T) {
	ch := lineChannel(t, 10, 30, 20)
	sc := NewSlotState(ch)
	sc.Add(Link{0, 1})
	links := sc.Links()
	links[0] = Link{5, 6}
	if sc.Links()[0] != (Link{0, 1}) {
		t.Error("Links must return a copy")
	}
}

func TestBuildGainMatrixShadowing(t *testing.T) {
	dist := [][]float64{{0, 10}, {10, 0}}
	pl := DefaultLogDistance()
	shadow := [][]float64{{0, 6}, {6, 0}} // 6 dB extra loss
	plain := BuildGainMatrix(dist, pl, nil)
	shadowed := BuildGainMatrix(dist, pl, shadow)
	want := plain[0][1] * math.Pow(10, -0.6)
	if math.Abs(shadowed[0][1]-want) > 1e-15 {
		t.Errorf("shadowed gain = %v, want %v", shadowed[0][1], want)
	}
	if shadowed[0][1] != shadowed[1][0] {
		t.Error("shadowed gain must stay symmetric")
	}
}
