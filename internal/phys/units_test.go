package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBmConversions(t *testing.T) {
	tests := []struct {
		dbm DBm
		mw  float64
	}{
		{0, 1},
		{10, 10},
		{20, 100},
		{-10, 0.1},
		{-30, 0.001},
		{3, 1.9952623149688795},
	}
	for _, tt := range tests {
		if got := tt.dbm.MilliWatts(); math.Abs(got-tt.mw) > 1e-9*tt.mw {
			t.Errorf("%v dBm = %v mW, want %v", tt.dbm, got, tt.mw)
		}
		if got := MilliWattsToDBm(tt.mw); math.Abs(float64(got-tt.dbm)) > 1e-9 {
			t.Errorf("%v mW = %v dBm, want %v", tt.mw, got, tt.dbm)
		}
	}
}

func TestDBmRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		d := DBm(math.Mod(x, 200)) // keep within sane dynamic range
		back := MilliWattsToDBm(d.MilliWatts())
		return math.Abs(float64(back-d)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMilliWattsToDBmEdge(t *testing.T) {
	if got := MilliWattsToDBm(0); !math.IsInf(float64(got), -1) {
		t.Errorf("0 mW should be -Inf dBm, got %v", got)
	}
	if got := MilliWattsToDBm(-5); !math.IsInf(float64(got), -1) {
		t.Errorf("negative mW should be -Inf dBm, got %v", got)
	}
}

func TestDBLinear(t *testing.T) {
	if got := DB(10).Linear(); math.Abs(got-10) > 1e-12 {
		t.Errorf("10 dB = %v, want 10", got)
	}
	if got := DB(3).Linear(); math.Abs(got-1.9952623149688795) > 1e-12 {
		t.Errorf("3 dB = %v", got)
	}
	if got := LinearToDB(100); math.Abs(float64(got)-20) > 1e-12 {
		t.Errorf("linear 100 = %v dB, want 20", got)
	}
	if got := LinearToDB(0); !math.IsInf(float64(got), -1) {
		t.Errorf("LinearToDB(0) = %v, want -Inf", got)
	}
}
