package spatial_test

// Conservativeness is the spatial engine's load-bearing property: every
// admission decision it says yes to, the exact dense engine must also say
// yes to (the reverse may fail — that is the price of O(n) memory). The
// tests here pin it three ways: an incremental slot-state comparison over
// randomized deployments, a whole-schedule Verify against the exact channel,
// and a byte-driven fuzz harness over arbitrary layouts. A separate test
// hammers a shared index from concurrent readers for the -race build.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"scream/internal/geom"
	"scream/internal/phys"
	"scream/internal/phys/spatial"
	"scream/internal/sched"
)

const (
	testNoiseMW = 2.5118864315095823e-10 // -96 dBm
	testBeta    = 10                     // 10 dB
)

// buildPair constructs the spatial index and the exact dense channel over
// the same deployment.
func buildPair(t testing.TB, pos []geom.Point, pw []float64, cutoffM float64) (*spatial.Index, *phys.Channel) {
	t.Helper()
	pl := phys.DefaultLogDistance()
	idx, err := spatial.New(spatial.Config{
		Pos: pos, TxPowerMW: pw, PathLoss: pl,
		NoiseMW: testNoiseMW, Beta: testBeta, CutoffM: cutoffM,
	})
	if err != nil {
		t.Fatalf("spatial.New: %v", err)
	}
	n := len(pos)
	gain := make([][]float64, n)
	for u := range gain {
		row := make([]float64, n)
		for v := range row {
			if u != v {
				row[v] = pl.Gain(pos[u].Dist(pos[v]))
			}
		}
		gain[u] = row
	}
	ch, err := phys.NewChannel(pw, gain, testNoiseMW, testBeta)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	return idx, ch
}

// feasibleLinks returns every directed link that is singleton-feasible under
// the exact channel (both directions clear beta against noise) — the
// candidate set a routing layer could ever hand a scheduler.
func feasibleLinks(ch *phys.Channel, n int) []phys.Link {
	floor := ch.Beta() * ch.NoiseMW()
	var links []phys.Link
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if ch.RxPowerMW(u, v) >= floor && ch.RxPowerMW(v, u) >= floor {
				links = append(links, phys.Link{From: u, To: v})
			}
		}
	}
	return links
}

// checkConservative drives one deployment through both engines and fails on
// any admission the spatial engine allows but the dense engine rejects. It
// returns the greedy schedule lengths (spatial, dense) for gap pinning.
func checkConservative(t *testing.T, pos []geom.Point, pw []float64, cutoffM float64, rng *rand.Rand) (int, int) {
	t.Helper()
	idx, ch := buildPair(t, pos, pw, cutoffM)
	links := feasibleLinks(ch, len(pos))
	if len(links) == 0 {
		return 0, 0
	}

	// Incremental comparison: admit greedily by the spatial engine's answer,
	// keeping both slot states on the identical occupancy. Any link the
	// spatial state admits must be admissible to the dense state too.
	var sSpat, sDense phys.SlotState
	sSpat.InitEngine(idx)
	sDense.InitEngine(ch)
	for _, l := range links {
		if sSpat.CanAdd(l) {
			if !sDense.CanAdd(l) {
				t.Fatalf("cutoff=%g: spatial admitted %v into a slot the dense engine rejects (occupants %v)",
					cutoffM, l, sDense.Links())
			}
			sSpat.Add(l)
			sDense.Add(l)
		}
	}

	// Whole-schedule comparison: a spatial-built greedy schedule must verify
	// under the exact model, slot by slot.
	demands := make([]int, len(links))
	for i := range demands {
		demands[i] = 1 + rng.Intn(3)
	}
	spatSched, err := sched.GreedyPhysical(idx, links, demands, sched.ByHeadIDDesc)
	if err != nil {
		t.Fatalf("cutoff=%g: spatial greedy: %v", cutoffM, err)
	}
	if err := spatSched.Verify(ch, links, demands); err != nil {
		t.Fatalf("cutoff=%g: spatial-built schedule infeasible under the exact model: %v", cutoffM, err)
	}
	denseSched, err := sched.GreedyPhysical(ch, links, demands, sched.ByHeadIDDesc)
	if err != nil {
		t.Fatalf("cutoff=%g: dense greedy: %v", cutoffM, err)
	}
	return spatSched.Length(), denseSched.Length()
}

// randomDeployment draws n nodes uniform in a side x side square with
// heterogeneous TX power spanning 6 dB above the grid default.
func randomDeployment(rng *rand.Rand, n int, side float64) ([]geom.Point, []float64) {
	pos := make([]geom.Point, n)
	pw := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		pw[i] = phys.DBm(4 + 6*rng.Float64()).MilliWatts()
	}
	return pos, pw
}

// TestSpatialConservativeVsDense fuzzes the conservativeness property over
// random uniform deployments and a grid, across cutoff radii from "almost
// everything is far-field" to "everything is near-field", and pins the
// schedule-length gap the conservative bound costs.
func TestSpatialConservativeVsDense(t *testing.T) {
	// gapFactor bounds how much longer a spatial-built greedy schedule may
	// run versus the dense-built one on the same instance. The far-field cap
	// only ever rejects extra placements, so the gap is one-sided; 2.0 holds
	// across the sweep below, whose observed worst case is ~1.56 (a sparse
	// 900 m deployment under the derived cutoff, where most pairs sit in the
	// far field and pay the full bucket cap).
	const gapFactor = 2.0
	for seed := int64(0); seed < 6; seed++ {
		for _, side := range []float64{400, 900} {
			for _, cutoff := range []float64{0, 150, 400} {
				name := fmt.Sprintf("seed=%d/side=%g/cutoff=%g", seed, side, cutoff)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(1000*seed + int64(side) + int64(cutoff)))
					pos, pw := randomDeployment(rng, 40, side)
					spat, dense := checkConservative(t, pos, pw, cutoff, rng)
					if spat > 0 && float64(spat) > gapFactor*float64(dense) {
						t.Errorf("schedule gap too wide: spatial %d slots vs dense %d (cap %gx)",
							spat, dense, gapFactor)
					}
				})
			}
		}
	}
	t.Run("grid", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		var pos []geom.Point
		var pw []float64
		pl := phys.DefaultLogDistance()
		power := pl.PowerForRange(30*1.05, testNoiseMW, testBeta)
		for r := 0; r < 7; r++ {
			for c := 0; c < 7; c++ {
				pos = append(pos, geom.Point{X: float64(c) * 30, Y: float64(r) * 30})
				pw = append(pw, power)
			}
		}
		checkConservative(t, pos, pw, 0, rng)
	})
}

// FuzzSpatialConservative derives a deployment from raw bytes — five bytes
// per node (x, y, power) plus one trailing cutoff selector — and asserts the
// incremental admission comparison on it. go test runs the seed corpus;
// go test -fuzz explores further.
func FuzzSpatialConservative(f *testing.F) {
	f.Add([]byte{0, 0, 10, 10, 1, 200, 0, 220, 20, 2, 0})
	f.Add([]byte{5, 5, 5, 5, 9, 5, 200, 5, 200, 9, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const perNode = 5
		if len(data) < 2*perNode+1 {
			return
		}
		cutSel := data[len(data)-1]
		data = data[:len(data)-1]
		n := len(data) / perNode
		if n > 48 {
			n = 48
		}
		pos := make([]geom.Point, n)
		pw := make([]float64, n)
		for i := 0; i < n; i++ {
			b := data[i*perNode:]
			x := binary.LittleEndian.Uint16([]byte{b[0], b[1]})
			y := binary.LittleEndian.Uint16([]byte{b[2], b[3]})
			pos[i] = geom.Point{X: float64(x % 2000), Y: float64(y % 2000)}
			pw[i] = phys.DBm(float64(b[4]%16) - 2).MilliWatts()
		}
		cutoff := float64(cutSel%4) * 120 // 0 (derived), 120, 240, 360 m
		rng := rand.New(rand.NewSource(int64(cutSel)))
		checkConservative(t, pos, pw, cutoff, rng)
	})
}

// TestSpatialConcurrentReaders hammers one shared index from parallel
// readers; the -race build turns any unsynchronized state into a failure.
// The engine promises Channel's contract: concurrent reads are safe as long
// as no mutation runs.
func TestSpatialConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pos, pw := randomDeployment(rng, 64, 600)
	idx, _ := buildPair(t, pos, pw, 0)
	n := idx.NumNodes()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sink := 0.0
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					sink += idx.SignalMW(u, v) + idx.InterfMW(u, v) + idx.Gain(u, v)
				}
				sink += idx.FarFieldBoundMW(u)
			}
			var st phys.SlotState
			st.InitEngine(idx)
			for u := 1; u < n; u++ {
				l := phys.Link{From: u, To: u - 1}
				if st.CanAdd(l) {
					st.Add(l)
				}
			}
			if sink < 0 {
				t.Errorf("reader %d: negative power sum %g", g, sink)
			}
		}(g)
	}
	wg.Wait()
	if idx.MemoryBytes() <= 0 {
		t.Error("MemoryBytes reported nothing")
	}
}
