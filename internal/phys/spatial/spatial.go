// Package spatial implements the grid-bucket interference engine: a
// phys.Engine over node positions that replaces the dense n*n RX-power
// matrix with O(n) state — per-node positions and powers, a bucket grid,
// and a per-bucket-delta gain upper-bound table.
//
// Queries split by distance. Signal terms (the favorable side of each SINR
// inequality) are always computed exactly from the path-loss model, so the
// engine never flatters a link. Interference terms are exact for pairs
// whose buckets can lie within the cutoff radius, and conservatively
// over-estimated beyond it: the contribution of a transmitter at bucket
// delta (dx, dy) is capped by the path-loss gain at the minimum possible
// distance between the two buckets. Gain is monotone decreasing in
// distance, so the cap is an upper bound — the engine may reject a slot the
// exact model would admit, but every slot it admits is feasible under the
// exact model (the conservativeness property TestSpatialConservativeVsDense
// fuzzes).
//
// The far-field cap is what the decomposition results justify:
// Halldórsson–Mitra (arXiv:1104.5200) show SINR scheduling decomposes
// spatially, and Zhou et al. (arXiv:1208.0902) bound aggregate far-field
// interference by distance rings — the bucket-delta table is exactly such a
// ring bound, evaluated per pair as one table lookup and one multiply
// instead of a hypot+pow.
//
// An Index follows the Channel concurrency contract: no lazy state, so any
// number of concurrent readers are safe; MoveNode/RemoveNode/RestoreNode
// require exclusive access.
package spatial

import (
	"fmt"
	"math"

	"scream/internal/geom"
	"scream/internal/phys"
)

// maxBuckets caps the bucket grid (and with it the delta table) so a tiny
// bucket size over a huge region cannot allocate unbounded memory; the
// constructor coarsens the bucket edge until the grid fits. 1<<21 buckets
// is ~16 MB of table — far above any realistic deployment density.
const maxBuckets = 1 << 21

// Config describes the deployment an Index is built over.
type Config struct {
	// Pos holds every node's position in meters.
	Pos []geom.Point
	// TxPowerMW holds every node's transmit power in milliwatts.
	TxPowerMW []float64
	// PathLoss is the deterministic propagation model. The spatial engine
	// supports pure log-distance only: per-pair shadowing has no spatial
	// structure to bound, so shadowed deployments must use the dense engine.
	PathLoss phys.LogDistance
	// NoiseMW is the background noise power in milliwatts.
	NoiseMW float64
	// Beta is the linear SINR threshold.
	Beta float64
	// Region bounds the bucket grid. The zero Rect means "compute the
	// bounding box of Pos". Nodes outside the region (e.g. after mobility)
	// are clamped to the nearest edge bucket; clamping is a projection onto
	// a convex set, hence non-expansive, so bucket distances remain true
	// lower bounds and the far-field cap stays conservative.
	Region geom.Rect
	// CutoffM is the exact-interference radius in meters. Pairs whose
	// buckets can lie within it get exact interference; beyond it the
	// bucket cap applies. 0 picks the distance at which the strongest
	// transmitter's received power falls to a tenth of the noise floor.
	CutoffM float64
	// BucketM is the bucket edge length in meters. 0 picks CutoffM/2.
	BucketM float64
}

// Index is the grid-bucket spatial interference engine. It implements
// phys.Engine.
type Index struct {
	pos       []geom.Point
	txPowerMW []float64
	pl        phys.LogDistance
	noiseMW   float64
	beta      float64
	removed   []bool

	region  geom.Rect
	bucketM float64
	nx, ny  int

	bucketOf []int32   // node -> bucket id (by*nx + bx)
	members  [][]int32 // bucket -> node ids currently hashed there (incl. removed)
	powerMW  []float64 // bucket -> sum of live members' TX powers

	cutoffM      float64
	gainAtCutoff float64   // exact gain at the cutoff radius
	gainUB       []float64 // |dy|*nx + |dx| -> far-field gain cap; nearSentinel inside cutoff
}

// nearSentinel marks bucket deltas whose minimum distance is within the
// cutoff: those pairs take the exact-distance branch.
const nearSentinel = -1

var _ phys.Engine = (*Index)(nil)

// New builds the spatial index over the deployment in cfg.
func New(cfg Config) (*Index, error) {
	n := len(cfg.Pos)
	if n == 0 {
		return nil, fmt.Errorf("spatial: no nodes")
	}
	if len(cfg.TxPowerMW) != n {
		return nil, fmt.Errorf("spatial: %d TX powers for %d nodes", len(cfg.TxPowerMW), n)
	}
	if cfg.NoiseMW <= 0 {
		return nil, fmt.Errorf("spatial: noise must be positive, got %v", cfg.NoiseMW)
	}
	if cfg.Beta <= 0 {
		return nil, fmt.Errorf("spatial: beta must be positive, got %v", cfg.Beta)
	}
	if err := cfg.PathLoss.Validate(); err != nil {
		return nil, err
	}
	maxTx := 0.0
	for i, p := range cfg.TxPowerMW {
		if p <= 0 {
			return nil, fmt.Errorf("spatial: node %d has non-positive TX power %v", i, p)
		}
		if p > maxTx {
			maxTx = p
		}
	}

	region := cfg.Region
	if region == (geom.Rect{}) {
		region = boundingBox(cfg.Pos)
	}
	if region.Width() < 0 || region.Height() < 0 {
		return nil, fmt.Errorf("spatial: inverted region %+v", region)
	}

	cutoff := cfg.CutoffM
	if cutoff < 0 {
		return nil, fmt.Errorf("spatial: negative cutoff %v", cutoff)
	}
	if cutoff == 0 {
		// Default: the strongest transmitter's received power falls to a
		// tenth of the noise floor — beyond this each far-field term is
		// negligible against noise, so the cap costs little goodput.
		cutoff = cfg.PathLoss.MaxRange(maxTx, cfg.NoiseMW, 0.1)
	}
	if cutoff < cfg.PathLoss.RefDist {
		cutoff = cfg.PathLoss.RefDist
	}
	bucket := cfg.BucketM
	if bucket < 0 {
		return nil, fmt.Errorf("spatial: negative bucket size %v", bucket)
	}
	if bucket == 0 {
		bucket = cutoff / 2
	}
	nx, ny := gridDims(region, bucket)
	for nx*ny > maxBuckets {
		bucket *= 2
		nx, ny = gridDims(region, bucket)
	}

	idx := &Index{
		pos:          append([]geom.Point(nil), cfg.Pos...),
		txPowerMW:    append([]float64(nil), cfg.TxPowerMW...),
		pl:           cfg.PathLoss,
		noiseMW:      cfg.NoiseMW,
		beta:         cfg.Beta,
		removed:      make([]bool, n),
		region:       region,
		bucketM:      bucket,
		nx:           nx,
		ny:           ny,
		bucketOf:     make([]int32, n),
		members:      make([][]int32, nx*ny),
		powerMW:      make([]float64, nx*ny),
		cutoffM:      cutoff,
		gainAtCutoff: cfg.PathLoss.Gain(cutoff),
	}
	idx.gainUB = make([]float64, nx*ny)
	for dy := 0; dy < ny; dy++ {
		for dx := 0; dx < nx; dx++ {
			d := idx.bucketDistLB(dx, dy)
			if d <= cutoff {
				idx.gainUB[dy*nx+dx] = nearSentinel
			} else {
				idx.gainUB[dy*nx+dx] = cfg.PathLoss.Gain(d)
			}
		}
	}
	for u := range idx.pos {
		b := idx.bucketIndex(idx.pos[u])
		idx.bucketOf[u] = int32(b)
		idx.members[b] = append(idx.members[b], int32(u))
		idx.powerMW[b] += idx.txPowerMW[u]
	}
	return idx, nil
}

func boundingBox(pos []geom.Point) geom.Rect {
	r := geom.Rect{MinX: pos[0].X, MinY: pos[0].Y, MaxX: pos[0].X, MaxY: pos[0].Y}
	for _, p := range pos[1:] {
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r
}

func gridDims(region geom.Rect, bucket float64) (nx, ny int) {
	nx = int(math.Ceil(region.Width()/bucket)) + 1
	ny = int(math.Ceil(region.Height()/bucket)) + 1
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return nx, ny
}

// bucketDistLB returns the minimum possible distance between two points
// whose buckets differ by (dx, dy) grid steps: adjacent or identical
// buckets can touch (distance 0), beyond that each axis contributes
// (delta-1) full bucket edges.
func (x *Index) bucketDistLB(dx, dy int) float64 {
	fx, fy := 0.0, 0.0
	if dx > 1 {
		fx = float64(dx-1) * x.bucketM
	}
	if dy > 1 {
		fy = float64(dy-1) * x.bucketM
	}
	return math.Hypot(fx, fy)
}

// bucketIndex hashes a position (clamped to the region) to its bucket id.
func (x *Index) bucketIndex(p geom.Point) int {
	px := math.Min(math.Max(p.X, x.region.MinX), x.region.MaxX)
	py := math.Min(math.Max(p.Y, x.region.MinY), x.region.MaxY)
	bx := int((px - x.region.MinX) / x.bucketM)
	by := int((py - x.region.MinY) / x.bucketM)
	if bx >= x.nx {
		bx = x.nx - 1
	}
	if by >= x.ny {
		by = x.ny - 1
	}
	return by*x.nx + bx
}

// NumNodes implements phys.Engine.
func (x *Index) NumNodes() int { return len(x.pos) }

// NoiseMW implements phys.Engine.
func (x *Index) NoiseMW() float64 { return x.noiseMW }

// Beta implements phys.Engine.
func (x *Index) Beta() float64 { return x.beta }

// CutoffM returns the exact-interference radius the index was built with.
func (x *Index) CutoffM() float64 { return x.cutoffM }

// BucketM returns the bucket edge length the index was built with.
func (x *Index) BucketM() float64 { return x.bucketM }

// NumBuckets returns the number of grid buckets.
func (x *Index) NumBuckets() int { return x.nx * x.ny }

// Gain implements phys.Engine: the exact path-loss gain between u and v
// (0 for u == v and for silenced nodes, matching the dense channel after
// RemoveNode).
func (x *Index) Gain(u, v int) float64 {
	if u == v || x.removed[u] || x.removed[v] {
		return 0
	}
	return x.pl.Gain(x.pos[u].Dist(x.pos[v]))
}

// SignalMW implements phys.Engine: the exact received power P_v(u),
// computed on demand from the path-loss model. Signal terms are never
// approximated — that is what keeps the engine's admissions feasible under
// the exact model.
func (x *Index) SignalMW(u, v int) float64 {
	if u == v || x.removed[u] || x.removed[v] {
		return 0
	}
	return x.txPowerMW[u] * x.pl.Gain(x.pos[u].Dist(x.pos[v]))
}

// InterfMW implements phys.Engine: an upper bound on node u's interference
// contribution at node v. Pairs whose bucket delta can lie within the
// cutoff radius are resolved exactly (capped at the cutoff gain when the
// actual distance lands beyond it); farther pairs pay one table lookup —
// the gain at the minimum distance their buckets allow.
func (x *Index) InterfMW(u, v int) float64 {
	if u == v || x.removed[u] || x.removed[v] {
		return 0
	}
	bu, bv := int(x.bucketOf[u]), int(x.bucketOf[v])
	dx := bu%x.nx - bv%x.nx
	if dx < 0 {
		dx = -dx
	}
	dy := bu/x.nx - bv/x.nx
	if dy < 0 {
		dy = -dy
	}
	ub := x.gainUB[dy*x.nx+dx]
	if ub != nearSentinel {
		return x.txPowerMW[u] * ub
	}
	d := x.pos[u].Dist(x.pos[v])
	if d > x.cutoffM {
		return x.txPowerMW[u] * x.gainAtCutoff
	}
	return x.txPowerMW[u] * x.pl.Gain(d)
}

// FarFieldBoundMW returns an upper bound on the total interference node v
// would see if every live node transmitted at once: each bucket contributes
// its aggregated live TX power times the gain cap for its delta (near
// buckets are capped at the reference gain, the model's maximum). It is the
// aggregated per-bucket bound of the package comment — an O(buckets)
// prefilter, never a substitute for the per-pair sums.
func (x *Index) FarFieldBoundMW(v int) float64 {
	refGain := x.pl.Gain(0) // Gain clamps below RefDist: the model's max gain
	bv := int(x.bucketOf[v])
	bvx, bvy := bv%x.nx, bv/x.nx
	sum := 0.0
	for by := 0; by < x.ny; by++ {
		dy := by - bvy
		if dy < 0 {
			dy = -dy
		}
		row := x.gainUB[dy*x.nx:]
		for bx := 0; bx < x.nx; bx++ {
			p := x.powerMW[by*x.nx+bx]
			if p == 0 {
				continue
			}
			dx := bx - bvx
			if dx < 0 {
				dx = -dx
			}
			ub := row[dx]
			if ub == nearSentinel {
				ub = refGain
			}
			sum += p * ub
		}
	}
	return sum
}

// MoveNode updates node u's position, rehashing it into its new bucket.
// The update is bucket-local: two member lists and two power sums change,
// nothing else. Requires exclusive access, like Channel.MoveNode.
func (x *Index) MoveNode(u int, p geom.Point) error {
	if u < 0 || u >= len(x.pos) {
		return fmt.Errorf("spatial: node %d out of range for %d nodes", u, len(x.pos))
	}
	x.pos[u] = p
	oldB := int(x.bucketOf[u])
	newB := x.bucketIndex(p)
	if newB == oldB {
		return nil
	}
	x.dropMember(oldB, u)
	x.members[newB] = append(x.members[newB], int32(u))
	x.bucketOf[u] = int32(newB)
	if !x.removed[u] {
		x.powerMW[oldB] -= x.txPowerMW[u]
		x.powerMW[newB] += x.txPowerMW[u]
	}
	return nil
}

// RemoveNode silences node u: its gain, signal and interference all become
// 0 and its power leaves the bucket aggregate — the spatial counterpart of
// Channel.RemoveNode. Idempotent. Requires exclusive access.
func (x *Index) RemoveNode(u int) error {
	if u < 0 || u >= len(x.pos) {
		return fmt.Errorf("spatial: node %d out of range for %d nodes", u, len(x.pos))
	}
	if x.removed[u] {
		return nil
	}
	x.removed[u] = true
	x.powerMW[x.bucketOf[u]] -= x.txPowerMW[u]
	return nil
}

// RestoreNode reinstates a silenced node at its current position — the
// spatial counterpart of re-adding the gain row through Channel.MoveNode.
// Idempotent. Requires exclusive access.
func (x *Index) RestoreNode(u int) error {
	if u < 0 || u >= len(x.pos) {
		return fmt.Errorf("spatial: node %d out of range for %d nodes", u, len(x.pos))
	}
	if !x.removed[u] {
		return nil
	}
	x.removed[u] = false
	x.powerMW[x.bucketOf[u]] += x.txPowerMW[u]
	return nil
}

func (x *Index) dropMember(b, u int) {
	m := x.members[b]
	for i, id := range m {
		if int(id) == u {
			m[i] = m[len(m)-1]
			x.members[b] = m[:len(m)-1]
			return
		}
	}
}

// MemoryBytes returns the index's resident size: every slice's backing
// array plus the struct itself. Deterministic (derived from lengths, not
// the allocator), which is what lets FigScale plot it as a reproducible
// series against the dense engine's 16*n*n-byte matrices.
func (x *Index) MemoryBytes() int {
	bytes := 2*8 + // struct overhead approximation: region + scalars live inline
		len(x.pos)*16 + // positions
		len(x.txPowerMW)*8 +
		len(x.removed) +
		len(x.bucketOf)*4 +
		len(x.powerMW)*8 +
		len(x.gainUB)*8 +
		len(x.members)*24 // slice headers
	for _, m := range x.members {
		bytes += cap(m) * 4
	}
	return bytes
}
