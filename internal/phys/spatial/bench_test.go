package spatial_test

import (
	"math"
	"testing"

	"scream/internal/geom"
	"scream/internal/phys"
	"scream/internal/phys/spatial"
)

// gridDeployment lays n nodes on a ceil(sqrt(n))-wide grid at 30 m pitch
// with the TX power that closes a 30 m hop with 5% slack — the FigScale
// deployment, rebuilt locally so the benchmark has no dependency on the
// experiment layer.
func gridDeployment(n int) ([]geom.Point, []float64) {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	pl := phys.DefaultLogDistance()
	power := pl.PowerForRange(30*1.05, testNoiseMW, testBeta)
	pos := make([]geom.Point, n)
	pw := make([]float64, n)
	for i := 0; i < n; i++ {
		pos[i] = geom.Point{X: float64(i%side) * 30, Y: float64(i/side) * 30}
		pw[i] = power
	}
	return pos, pw
}

func benchIndex(b *testing.B, n int) *spatial.Index {
	b.Helper()
	pos, pw := gridDeployment(n)
	idx, err := spatial.New(spatial.Config{
		Pos: pos, TxPowerMW: pw, PathLoss: phys.DefaultLogDistance(),
		NoiseMW: testNoiseMW, Beta: testBeta,
	})
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

// BenchmarkSpatialCanAdd10k measures the per-probe admission cost against a
// partially occupied slot over a 10k-node deployment — the hot query of
// every spatial greedy schedule. The occupants are one link per 64th node,
// spread across the grid, so probes pay a realistic mix of exact near-field
// distances and far-field table caps.
func BenchmarkSpatialCanAdd10k(b *testing.B) {
	const n = 10000
	idx := benchIndex(b, n)
	var st phys.SlotState
	st.InitEngine(idx)
	for u := 64; u < n; u += 64 {
		l := phys.Link{From: u, To: u - 1}
		if st.CanAdd(l) {
			st.Add(l)
		}
	}
	probes := make([]phys.Link, 0, 97)
	for u := 33; len(probes) < cap(probes); u += 101 {
		probes = append(probes, phys.Link{From: u % n, To: (u + 1) % n})
	}
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		sink = st.CanAdd(probes[i%len(probes)]) != sink
	}
	_ = sink
}

// BenchmarkSpatialBuild50k measures constructing the index over 50k nodes —
// the whole-deployment cost FigScale plots, at the sweep's top point (where
// the dense engine's matrix would be 20 GB).
func BenchmarkSpatialBuild50k(b *testing.B) {
	const n = 50000
	pos, pw := gridDeployment(n)
	pl := phys.DefaultLogDistance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := spatial.New(spatial.Config{
			Pos: pos, TxPowerMW: pw, PathLoss: pl,
			NoiseMW: testNoiseMW, Beta: testBeta,
		})
		if err != nil {
			b.Fatal(err)
		}
		if idx.NumNodes() != n {
			b.Fatal("bad index")
		}
	}
}
