package phys

import (
	"sync/atomic"

	"scream/internal/obs"
)

// Process-wide slot-engine instrumentation. The SlotState hot path (CanAdd
// runs millions of times per schedule sweep) cannot afford per-call registry
// lookups or per-run plumbing through every constructor, so the handles live
// in one atomically-swapped bundle: disabled (the default) costs a single
// pointer load and branch per operation — no allocation, no atomics — and
// metrics never influence any scheduling decision.
type slotObs struct {
	canAdd    *obs.Counter
	adds      *obs.Counter
	rollbacks *obs.Counter
}

var slotMetrics atomic.Pointer[slotObs]

// SetObs wires the slot-engine counters into r (nil detaches them). Intended
// to be called once at process start by a CLI enabling observability; it is
// safe to call concurrently with running schedulers.
func SetObs(r *obs.Registry) {
	if r == nil {
		slotMetrics.Store(nil)
		return
	}
	slotMetrics.Store(&slotObs{
		canAdd:    r.Counter("scream_phys_canadd_total", "SlotState.CanAdd admission probes (single- and multi-channel)"),
		adds:      r.Counter("scream_phys_slot_adds_total", "links admitted into slot states"),
		rollbacks: r.Counter("scream_phys_rollbacks_total", "SlotState.Rollback tentative-batch undos"),
	})
}
