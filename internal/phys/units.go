// Package phys implements the physical-layer substrate of the reproduction:
// power units, radio propagation models, link-gain channels, and the paper's
// physical interference (SINR) feasibility test with separate data and ACK
// sub-slots (Section II of the paper).
package phys

import "math"

// DBm is a power level in decibel-milliwatts.
type DBm float64

// MilliWatts converts a dBm level to linear milliwatts.
func (d DBm) MilliWatts() float64 {
	return math.Pow(10, float64(d)/10)
}

// MilliWattsToDBm converts linear milliwatts to dBm. Zero or negative power
// maps to -Inf dBm.
func MilliWattsToDBm(mw float64) DBm {
	if mw <= 0 {
		return DBm(math.Inf(-1))
	}
	return DBm(10 * math.Log10(mw))
}

// DB is a dimensionless ratio expressed in decibels.
type DB float64

// Linear converts a dB ratio to a linear ratio.
func (d DB) Linear() float64 {
	return math.Pow(10, float64(d)/10)
}

// LinearToDB converts a linear ratio to decibels.
func LinearToDB(x float64) DB {
	if x <= 0 {
		return DB(math.Inf(-1))
	}
	return DB(10 * math.Log10(x))
}
