package phys

// Property-based tests on the invariants the schedulers rely on.

import (
	"math/rand"
	"testing"
)

// TestFeasibilityDownwardClosed: removing links from a feasible set can only
// reduce interference, so every subset of a feasible set is feasible. The
// exact-optimal DP and the greedy schedulers both rest on this.
func TestFeasibilityDownwardClosed(t *testing.T) {
	ch := lineChannel(t, 30, 35, 20)
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for trial := 0; trial < 500; trial++ {
		var links []Link
		used := map[int]bool{}
		for k := 0; k < 5; k++ {
			a := rng.Intn(29)
			if used[a] || used[a+1] {
				continue
			}
			links = append(links, Link{From: a, To: a + 1})
			used[a], used[a+1] = true, true
		}
		if len(links) < 2 || !ch.FeasibleSet(links) {
			continue
		}
		checked++
		// Drop one random link; the remainder must stay feasible.
		i := rng.Intn(len(links))
		sub := append(append([]Link(nil), links[:i]...), links[i+1:]...)
		if !ch.FeasibleSet(sub) {
			t.Fatalf("subset of feasible set infeasible: %v minus %v", links, links[i])
		}
	}
	if checked == 0 {
		t.Fatal("no feasible sets sampled; widen the generator")
	}
	t.Logf("downward closure checked on %d feasible sets", checked)
}

// TestFeasibilityInterferenceMonotone: adding transmit power to an
// interferer can never turn an infeasible set feasible.
func TestFeasibilityInterferenceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 12
		dist := make([][]float64, n)
		for i := range dist {
			dist[i] = make([]float64, n)
		}
		pos := make([]float64, n)
		for i := range pos {
			pos[i] = rng.Float64() * 300
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := pos[i] - pos[j]
				if d < 0 {
					d = -d
				}
				dist[i][j] = d
			}
		}
		gain := BuildGainMatrix(dist, DefaultLogDistance(), nil)
		base := DBm(14).MilliWatts()
		mk := func(boost int) *Channel {
			pw := make([]float64, n)
			for i := range pw {
				pw[i] = base
			}
			if boost >= 0 {
				pw[boost] *= 4
			}
			ch, err := NewChannel(pw, gain, DBm(-96).MilliWatts(), DB(10).Linear())
			if err != nil {
				t.Fatal(err)
			}
			return ch
		}
		links := []Link{{From: 0, To: 1}, {From: 4, To: 5}}
		plain := mk(-1)
		if plain.FeasibleSet(links) {
			continue
		}
		// Boosting a pure interferer (node 8) must keep it infeasible.
		if mk(8).FeasibleSet(links) {
			t.Fatalf("trial %d: boosting an interferer made an infeasible set feasible", trial)
		}
	}
}

// TestHandshakeNeverSucceedsWhereFeasibleSetForbids: for any set, a link
// whose handshake succeeds while ALL links' data decoded must satisfy the
// same inequalities FeasibleSet checks for it.
func TestHandshakeConsistentWithModel(t *testing.T) {
	ch := lineChannel(t, 24, 35, 20)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		var links []Link
		used := map[int]bool{}
		for k := 0; k < 4; k++ {
			a := rng.Intn(23)
			if used[a] || used[a+1] {
				continue
			}
			links = append(links, Link{From: a, To: a + 1})
			used[a], used[a+1] = true, true
		}
		if len(links) == 0 {
			continue
		}
		out := ch.HandshakeOutcome(links)
		allOK := true
		for _, ok := range out {
			allOK = allOK && ok
		}
		if allOK != ch.FeasibleSet(links) {
			// When every handshake succeeds, the ACK senders are exactly
			// all receivers, so the dynamics reduce to the model.
			t.Fatalf("trial %d: all-handshakes-succeed (%v) disagrees with FeasibleSet (%v) for %v",
				trial, allOK, ch.FeasibleSet(links), links)
		}
	}
}

// TestSlotStateOrderIndependence: the set accepted by a slot is feasible
// regardless of insertion order, and CanAdd agrees with FeasibleSet on the
// union at every step.
func TestSlotStateOrderIndependence(t *testing.T) {
	ch := lineChannel(t, 20, 35, 20)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var links []Link
		used := map[int]bool{}
		for k := 0; k < 4; k++ {
			a := rng.Intn(19)
			if used[a] || used[a+1] {
				continue
			}
			links = append(links, Link{From: a, To: a + 1})
			used[a], used[a+1] = true, true
		}
		if len(links) < 2 {
			continue
		}
		feasible := ch.FeasibleSet(links)
		// Insert in two different orders; both must accept all iff feasible.
		for pass := 0; pass < 2; pass++ {
			order := make([]int, len(links))
			for i := range order {
				order[i] = i
			}
			if pass == 1 {
				for i := len(order) - 1; i > 0; i-- {
					j := rng.Intn(i + 1)
					order[i], order[j] = order[j], order[i]
				}
			}
			sc := NewSlotState(ch)
			acceptedAll := true
			for _, i := range order {
				if sc.CanAdd(links[i]) {
					sc.Add(links[i])
				} else {
					acceptedAll = false
				}
			}
			if feasible && !acceptedAll {
				t.Fatalf("trial %d pass %d: checker rejected a member of a feasible set %v", trial, pass, links)
			}
			if !feasible && acceptedAll {
				t.Fatalf("trial %d pass %d: checker accepted all of an infeasible set %v", trial, pass, links)
			}
		}
	}
}
