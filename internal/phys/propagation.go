package phys

import (
	"fmt"
	"math"
)

// PathLoss converts a transmitter-receiver distance into a linear channel
// gain in (0, 1]. Received power is txPowerMW * Gain(d).
type PathLoss interface {
	// Gain returns the linear power gain at distance d meters.
	Gain(d float64) float64
}

// LogDistance is the log-distance path loss model,
//
//	PL(d) dB = RefLossDB + 10*Exponent*log10(d/RefDist),
//
// the deterministic component of the log-normal model the paper simulates
// with ("Log-normal propagation model was used with path loss of 3",
// Section VI-A). Distances below RefDist are clamped to RefDist so the gain
// never exceeds the reference gain.
type LogDistance struct {
	RefDist   float64 // reference distance in meters, typically 1
	RefLossDB float64 // path loss at the reference distance, in dB
	Exponent  float64 // path loss exponent alpha (paper uses 3)
}

// DefaultLogDistance returns the propagation model used throughout the
// reproduction unless overridden: 1 m reference, 40 dB reference loss
// (2.4 GHz-ish), path loss exponent 3 as in the paper.
func DefaultLogDistance() LogDistance {
	return LogDistance{RefDist: 1, RefLossDB: 40, Exponent: 3}
}

// Gain implements PathLoss.
func (l LogDistance) Gain(d float64) float64 {
	if d < l.RefDist {
		d = l.RefDist
	}
	lossDB := l.RefLossDB + 10*l.Exponent*math.Log10(d/l.RefDist)
	return math.Pow(10, -lossDB/10)
}

// MaxRange returns the largest distance at which a transmission with the
// given TX power still achieves the SINR threshold beta against noise alone
// (no interference). This is the communication range r of Section IV-B.
func (l LogDistance) MaxRange(txPowerMW, noiseMW, betaLinear float64) float64 {
	if txPowerMW <= 0 || noiseMW <= 0 || betaLinear <= 0 {
		return 0
	}
	// Need txPowerMW * Gain(d) >= betaLinear*noiseMW.
	budgetDB := 10 * math.Log10(txPowerMW/(betaLinear*noiseMW))
	exceedDB := budgetDB - l.RefLossDB
	if exceedDB < 0 {
		return 0
	}
	return l.RefDist * math.Pow(10, exceedDB/(10*l.Exponent))
}

// PowerForRange returns the TX power (mW) needed to achieve the SINR
// threshold beta at distance d against noise alone. It is the inverse of
// MaxRange and is used by topology builders that fix the range and derive
// the power.
func (l LogDistance) PowerForRange(d, noiseMW, betaLinear float64) float64 {
	if d < l.RefDist {
		d = l.RefDist
	}
	return betaLinear * noiseMW / l.Gain(d)
}

// Validate reports configuration errors.
func (l LogDistance) Validate() error {
	if l.RefDist <= 0 {
		return fmt.Errorf("phys: reference distance must be positive, got %v", l.RefDist)
	}
	if l.Exponent <= 0 {
		return fmt.Errorf("phys: path loss exponent must be positive, got %v", l.Exponent)
	}
	return nil
}
