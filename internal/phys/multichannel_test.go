package phys

// Property tests for the multi-channel slot engine: MultiSlotState must
// agree decision-for-decision with the naive per-channel FeasibleSet
// reference (FeasibleAssignment) over randomized add/remove/rollback
// sequences, the radio budget must bind exactly, and Mark/Rollback must
// restore every channel's sums and the radio counts exactly.

import (
	"math/rand"
	"testing"
)

func TestNewChannelSetValidation(t *testing.T) {
	ch := lineChannel(t, 8, 35, 20)
	if _, err := NewChannelSet(nil, 2); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, err := NewChannelSet(ch, 0); err == nil {
		t.Fatal("zero channels accepted")
	}
	cs, err := NewChannelSet(ch, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumChannels() != 3 || cs.Base() != ch || cs.NumNodes() != 8 {
		t.Fatalf("ChannelSet accessors wrong: %d channels, %d nodes", cs.NumChannels(), cs.NumNodes())
	}
}

// TestMultiSlotStateMatchesNaiveFuzz drives a MultiSlotState through random
// CanAdd-gated adds, removes and mark/rollback cycles and asserts at every
// step that CanAdd(l, ch) equals FeasibleAssignment on the would-be union,
// for both tight (1) and loose (2) radio budgets.
func TestMultiSlotStateMatchesNaiveFuzz(t *testing.T) {
	ch := lineChannel(t, 24, 35, 20)
	for _, radios := range []int{1, 2} {
		cs, err := NewChannelSet(ch, 3)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100 + radios)))
		agreeAdds, agreeRejects, removes, rollbacks := 0, 0, 0, 0
		for trial := 0; trial < 150; trial++ {
			st := NewMultiSlotState(cs, radios)
			var mirror []Placement
			marked := -1
			var markedMirror []Placement
			for op := 0; op < 40; op++ {
				switch {
				case len(mirror) > 0 && rng.Intn(6) == 0:
					victim := mirror[rng.Intn(len(mirror))]
					if !st.Remove(victim.Link, victim.Channel) {
						t.Fatalf("radios=%d trial %d: Remove(%v) failed for a member", radios, trial, victim)
					}
					for i, p := range mirror {
						if p == victim {
							mirror = append(mirror[:i], mirror[i+1:]...)
							break
						}
					}
					marked = -1
					removes++
				case rng.Intn(10) == 0:
					st.Mark()
					marked = len(mirror)
					markedMirror = append(markedMirror[:0], mirror...)
				case marked >= 0 && rng.Intn(10) == 0:
					st.Rollback()
					mirror = append(mirror[:0], markedMirror...)
					rollbacks++
				default:
					l := randomLink(rng, 24)
					c := rng.Intn(cs.NumChannels())
					want := cs.FeasibleAssignment(append(append([]Placement(nil), mirror...), Placement{l, c}), radios)
					got := st.CanAdd(l, c)
					if got != want {
						t.Fatalf("radios=%d trial %d op %d: CanAdd(%v, ch%d) = %v, naive reference = %v (slot %v)",
							radios, trial, op, l, c, got, want, mirror)
					}
					if got {
						st.Add(l, c)
						mirror = append(mirror, Placement{l, c})
						agreeAdds++
					} else {
						agreeRejects++
					}
				}
				if st.Len() != len(mirror) {
					t.Fatalf("radios=%d trial %d: Len %d, mirror %d", radios, trial, st.Len(), len(mirror))
				}
			}
		}
		if agreeAdds == 0 || agreeRejects == 0 || removes == 0 || rollbacks == 0 {
			t.Fatalf("radios=%d: fuzz did not exercise all operations (adds %d, rejects %d, removes %d, rollbacks %d)",
				radios, agreeAdds, agreeRejects, removes, rollbacks)
		}
		t.Logf("radios=%d: %d adds, %d rejects, %d removes, %d rollbacks agreed with the naive reference",
			radios, agreeAdds, agreeRejects, removes, rollbacks)
	}
}

// TestMultiSlotStateRadioSaturation pins the multi-radio constraint at a
// relay: two far-apart links sharing relay node r cannot ride two channels
// of one slot with a single radio at r, and can with two.
func TestMultiSlotStateRadioSaturation(t *testing.T) {
	// Nodes 0..23 on a line; links into/out of node 12 share that endpoint.
	ch := lineChannel(t, 24, 35, 20)
	cs, err := NewChannelSet(ch, 2)
	if err != nil {
		t.Fatal(err)
	}
	up := Link{From: 11, To: 12}   // child -> relay
	down := Link{From: 12, To: 13} // relay -> parent

	one := NewMultiSlotState(cs, 1)
	if !one.CanAdd(up, 0) {
		t.Fatal("singleton link rejected")
	}
	one.Add(up, 0)
	if one.CanAdd(down, 0) {
		t.Fatal("primary conflict admitted on the same channel")
	}
	if one.CanAdd(down, 1) {
		t.Fatal("relay with 1 radio admitted on a second channel")
	}

	two := NewMultiSlotState(cs, 2)
	two.Add(up, 0)
	if !two.CanAdd(down, 1) {
		t.Fatal("relay with 2 radios rejected on a second channel")
	}
	two.Add(down, 1)
	if two.CanAdd(Link{From: 12, To: 11}, 0) || two.CanAdd(Link{From: 13, To: 12}, 1) {
		t.Fatal("third placement at a 2-radio node admitted")
	}
	if !cs.FeasibleAssignment(two.Placements(), 2) {
		t.Fatal("naive reference rejects the 2-radio slot the engine built")
	}
	if cs.FeasibleAssignment(two.Placements(), 1) {
		t.Fatal("naive reference accepts a 2-placement relay under 1 radio")
	}
}

// TestMultiSlotStateSingleChannelMatchesSlotState: with one channel and one
// radio the multi engine must take exactly the single-channel engine's
// decisions (the fast path the single-channel figures stay on).
func TestMultiSlotStateSingleChannelMatchesSlotState(t *testing.T) {
	ch := lineChannel(t, 20, 35, 20)
	cs, err := NewChannelSet(ch, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		multi := NewMultiSlotState(cs, 1)
		single := NewSlotState(ch)
		for op := 0; op < 25; op++ {
			l := randomLink(rng, 20)
			gm, gs := multi.CanAdd(l, 0), single.CanAdd(l)
			if gm != gs {
				t.Fatalf("trial %d: multi CanAdd %v, single %v for %v", trial, gm, gs, l)
			}
			if gm {
				multi.Add(l, 0)
				single.Add(l)
			}
		}
	}
}

// TestMultiSlotStateMarkRollbackExact: rollback must restore the per-channel
// sums bit-exactly — after rolling back a batch, re-probing any link must
// give the same answer as a freshly built state over the kept placements.
func TestMultiSlotStateMarkRollbackExact(t *testing.T) {
	ch := lineChannel(t, 24, 35, 20)
	cs, err := NewChannelSet(ch, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		st := NewMultiSlotState(cs, 2)
		var kept []Placement
		for len(kept) < 3 {
			l := randomLink(rng, 24)
			c := rng.Intn(2)
			if st.CanAdd(l, c) {
				st.Add(l, c)
				kept = append(kept, Placement{l, c})
			}
		}
		st.Mark()
		for op := 0; op < 6; op++ {
			l := randomLink(rng, 24)
			c := rng.Intn(2)
			if st.CanAdd(l, c) {
				st.Add(l, c)
			}
		}
		st.Rollback()
		if st.Len() != len(kept) {
			t.Fatalf("trial %d: rollback kept %d placements, want %d", trial, st.Len(), len(kept))
		}
		fresh := NewMultiSlotState(cs, 2)
		for _, p := range kept {
			fresh.Add(p.Link, p.Channel)
		}
		for probe := 0; probe < 20; probe++ {
			l := randomLink(rng, 24)
			c := rng.Intn(2)
			if got, want := st.CanAdd(l, c), fresh.CanAdd(l, c); got != want {
				t.Fatalf("trial %d: post-rollback CanAdd(%v, ch%d) = %v, fresh state = %v", trial, l, c, got, want)
			}
		}
	}
}
