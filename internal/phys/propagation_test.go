package phys

import (
	"math"
	"testing"
)

func TestLogDistanceGain(t *testing.T) {
	pl := LogDistance{RefDist: 1, RefLossDB: 40, Exponent: 3}
	// At the reference distance the loss is exactly RefLossDB.
	if got, want := pl.Gain(1), math.Pow(10, -4); math.Abs(got-want) > 1e-15 {
		t.Errorf("Gain(1) = %v, want %v", got, want)
	}
	// At 10x the distance, alpha=3 adds 30 dB of loss.
	if got, want := pl.Gain(10), math.Pow(10, -7); math.Abs(got-want) > 1e-18 {
		t.Errorf("Gain(10) = %v, want %v", got, want)
	}
	// Below the reference distance the gain is clamped.
	if got, want := pl.Gain(0.1), pl.Gain(1); got != want {
		t.Errorf("Gain(0.1) = %v, want clamp to Gain(1) = %v", got, want)
	}
}

func TestLogDistanceMonotone(t *testing.T) {
	pl := DefaultLogDistance()
	prev := math.Inf(1)
	for d := 1.0; d < 1000; d *= 1.3 {
		g := pl.Gain(d)
		if g > prev {
			t.Fatalf("gain increased with distance at d=%v", d)
		}
		if g <= 0 {
			t.Fatalf("gain must stay positive, got %v at d=%v", g, d)
		}
		prev = g
	}
}

func TestMaxRangeInvertsGain(t *testing.T) {
	pl := DefaultLogDistance()
	noise := DBm(-96).MilliWatts()
	beta := DB(10).Linear()
	txp := DBm(20).MilliWatts()

	r := pl.MaxRange(txp, noise, beta)
	if r <= 0 {
		t.Fatal("expected positive range")
	}
	// Exactly at range the SNR should be beta.
	if snr := txp * pl.Gain(r) / noise; math.Abs(snr-beta)/beta > 1e-9 {
		t.Errorf("SNR at MaxRange = %v, want beta = %v", snr, beta)
	}
	// Just beyond, the link is down.
	if snr := txp * pl.Gain(r*1.01) / noise; snr >= beta {
		t.Errorf("SNR beyond range should be < beta, got %v", snr)
	}
}

func TestMaxRangeDegenerate(t *testing.T) {
	pl := DefaultLogDistance()
	if pl.MaxRange(0, 1, 1) != 0 {
		t.Error("zero power should give zero range")
	}
	if pl.MaxRange(1, 0, 1) != 0 {
		t.Error("zero noise is rejected")
	}
	// Power too low to close even the reference loss.
	if r := pl.MaxRange(1e-10, 1, 1); r != 0 {
		t.Errorf("unclosable link should give range 0, got %v", r)
	}
}

func TestPowerForRangeInverse(t *testing.T) {
	pl := DefaultLogDistance()
	noise := DBm(-96).MilliWatts()
	beta := DB(10).Linear()
	for _, d := range []float64{5, 25, 100, 400} {
		p := pl.PowerForRange(d, noise, beta)
		r := pl.MaxRange(p, noise, beta)
		if math.Abs(r-d)/d > 1e-9 {
			t.Errorf("PowerForRange/MaxRange not inverse at d=%v: got r=%v", d, r)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultLogDistance().Validate(); err != nil {
		t.Errorf("default model should validate, got %v", err)
	}
	if err := (LogDistance{RefDist: 0, Exponent: 3}).Validate(); err == nil {
		t.Error("zero ref distance should fail validation")
	}
	if err := (LogDistance{RefDist: 1, Exponent: 0}).Validate(); err == nil {
		t.Error("zero exponent should fail validation")
	}
}
