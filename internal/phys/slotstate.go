package phys

// SlotState is the incremental SINR feasibility engine: it maintains, for
// one slot under construction, the running data-sub-slot and ACK-sub-slot
// interference sums of every admitted link plus an endpoint-occupancy count
// per node, over an interference Engine. CanAdd, Add and Remove are all O(k)
// for a slot holding k links, against the O(k^2) of re-running
// Channel.FeasibleSet (and O(k^2) per handshake evaluation via
// Channel.HandshakeOutcome) from scratch; those naive routines remain the
// reference implementations the property tests compare against.
//
// Two code paths serve the two engine families. When the engine is the
// dense *Channel, every loop reads the channel's flat cached RX-power matrix
// directly (the rx field) — the original hot path, preserved byte-for-byte
// for both determinism and the benchmark gate. Any other Engine goes through
// the interface: SignalMW for the favorable side of each inequality,
// InterfMW for interference terms, so a conservative engine (one that
// over-estimates InterfMW) only ever rejects more than the dense path.
//
// The sums are accumulated incrementally (in admission order) rather than
// recomputed per query (in index order), so individual float64 sums may
// differ from the naive path in the last ulp; every admission margin in the
// model is orders of magnitude wider, and the property tests fuzz
// add/remove sequences to assert the decisions always agree.
//
// A SlotState is not safe for concurrent use.
type SlotState struct {
	eng Engine
	rx  []float64 // dense fast path: the channel's flat n*n RX matrix; nil for non-dense engines
	n   int

	beta  float64
	noise float64

	links   []Link
	dataSum []float64 // dataSum[i]: interference at links[i].To from the other data senders
	ackSum  []float64 // ackSum[i]: interference at links[i].From from the other ACK senders

	// busy[u] counts slot links with u as an endpoint. Only Outcomes needs
	// it (conflict detection over sets that may hold conflicting links), so
	// it is allocated lazily: greedy schedulers create thousands of
	// CanAdd/Add-only slots and never pay for it.
	busy []int32

	ignoreAck bool

	// Single-level undo support (Mark/Rollback).
	marked    int
	savedData []float64
	savedAck  []float64

	// Scratch buffers for Outcomes.
	dataOK []bool
	out    []bool
	failed []int

	// Inline storage backing links/dataSum/ackSum while the slot is small:
	// greedy schedulers build hundreds of mostly 1-4 link slots per
	// schedule, which this keeps entirely off the heap. Because the slices
	// alias this storage, an initialized SlotState must not be copied.
	linksBuf [4]Link
	dataBuf  [4]float64
	ackBuf   [4]float64
}

// NewSlotState returns an empty slot bound to channel c.
func NewSlotState(c *Channel) *SlotState {
	s := new(SlotState)
	s.Init(c)
	return s
}

// NewSlotStateDataOnly returns a slot state that ignores the ACK sub-slot
// inequality. It exists for the ablation quantifying how much the paper's
// link-layer-reliability extension of the interference model matters:
// schedules it accepts may be infeasible under the full model.
func NewSlotStateDataOnly(c *Channel) *SlotState {
	s := new(SlotState)
	s.InitDataOnly(c)
	return s
}

// NewSlotStateEngine returns an empty slot bound to engine e. A dense
// *Channel passed here takes the same matrix fast path as NewSlotState.
func NewSlotStateEngine(e Engine) *SlotState {
	s := new(SlotState)
	s.InitEngine(e)
	return s
}

// Init (re-)binds s to channel c as an empty slot. It exists so callers that
// build many slots (greedy schedulers construct one per schedule slot) can
// hold them in a flat []SlotState without a heap allocation per slot.
func (s *SlotState) Init(c *Channel) {
	s.initCommon(c)
	s.rx = c.rxMatrix()
}

// InitDataOnly is Init with the ACK sub-slot inequality disabled.
func (s *SlotState) InitDataOnly(c *Channel) {
	s.Init(c)
	s.ignoreAck = true
}

// InitEngine (re-)binds s to engine e as an empty slot. When e is the dense
// *Channel the matrix fast path is selected automatically.
func (s *SlotState) InitEngine(e Engine) {
	if c, ok := e.(*Channel); ok {
		s.Init(c)
		return
	}
	s.initCommon(e)
}

// InitEngineDataOnly is InitEngine with the ACK sub-slot inequality
// disabled.
func (s *SlotState) InitEngineDataOnly(e Engine) {
	s.InitEngine(e)
	s.ignoreAck = true
}

func (s *SlotState) initCommon(e Engine) {
	if s.eng != nil {
		// Re-initialization: clear everything a previous life may have
		// dirtied. Fresh (zero-value) states — e.g. slab-allocated slots in
		// the greedy schedulers — skip this full-struct write.
		*s = SlotState{}
	}
	s.eng = e
	s.n = e.NumNodes()
	s.beta = e.Beta()
	s.noise = e.NoiseMW()
	s.marked = -1
	s.links = s.linksBuf[:0]
	s.dataSum = s.dataBuf[:0]
	s.ackSum = s.ackBuf[:0]
}

// Len returns the number of links currently in the slot.
func (s *SlotState) Len() int { return len(s.links) }

// Links returns a copy of the links currently in the slot, in admission
// order.
func (s *SlotState) Links() []Link {
	out := make([]Link, len(s.links))
	copy(out, s.links)
	return out
}

// CanAdd reports whether adding l keeps the slot feasible: l must not share
// an endpoint with any admitted link, l itself must clear both SINR
// inequalities against the current slot, and every admitted link must
// survive l's added data and ACK interference. For a feasible current slot
// this is exactly FeasibleSet(Links() + l) on the dense engine, and a
// conservative under-approximation of it on an over-estimating engine. O(k).
func (s *SlotState) CanAdd(l Link) bool {
	if m := slotMetrics.Load(); m != nil {
		m.canAdd.Inc()
	}
	if l.From == l.To {
		return false
	}
	beta, noise := s.beta, s.noise
	if rx := s.rx; rx != nil {
		n := s.n
		// The new link's own inequalities (and primary conflicts), first: on
		// the dominant path — a greedy scheduler probing successive full slots
		// — this rejects after 2 loads per admitted link.
		dataInterf, ackInterf := 0.0, 0.0
		for _, m := range s.links {
			if l.From == m.From || l.From == m.To || l.To == m.From || l.To == m.To {
				return false
			}
			dataInterf += rx[m.From*n+l.To]
			ackInterf += rx[m.To*n+l.From]
		}
		if rx[l.From*n+l.To] < beta*(noise+dataInterf) {
			return false
		}
		if !s.ignoreAck && rx[l.To*n+l.From] < beta*(noise+ackInterf) {
			return false
		}
		// Existing links under the extra interference from l.
		for i, m := range s.links {
			if rx[m.From*n+m.To] < beta*(noise+s.dataSum[i]+rx[l.From*n+m.To]) {
				return false
			}
			if !s.ignoreAck && rx[m.To*n+m.From] < beta*(noise+s.ackSum[i]+rx[l.To*n+m.From]) {
				return false
			}
		}
		return true
	}
	eng := s.eng
	dataInterf, ackInterf := 0.0, 0.0
	for _, m := range s.links {
		if l.From == m.From || l.From == m.To || l.To == m.From || l.To == m.To {
			return false
		}
		dataInterf += eng.InterfMW(m.From, l.To)
		ackInterf += eng.InterfMW(m.To, l.From)
	}
	if eng.SignalMW(l.From, l.To) < beta*(noise+dataInterf) {
		return false
	}
	if !s.ignoreAck && eng.SignalMW(l.To, l.From) < beta*(noise+ackInterf) {
		return false
	}
	for i, m := range s.links {
		if eng.SignalMW(m.From, m.To) < beta*(noise+s.dataSum[i]+eng.InterfMW(l.From, m.To)) {
			return false
		}
		if !s.ignoreAck && eng.SignalMW(m.To, m.From) < beta*(noise+s.ackSum[i]+eng.InterfMW(l.To, m.From)) {
			return false
		}
	}
	return true
}

// Add inserts l into the slot, updating every running sum in O(k). Unlike
// CanAdd, Add never rejects: the protocols tentatively admit links that may
// conflict or fail their handshake (Outcomes reports which), and greedy
// callers are expected to gate on CanAdd themselves.
func (s *SlotState) Add(l Link) {
	if m := slotMetrics.Load(); m != nil {
		m.adds.Inc()
	}
	dataInterf, ackInterf := 0.0, 0.0
	if rx := s.rx; rx != nil {
		n := s.n
		for i, m := range s.links {
			s.dataSum[i] += rx[l.From*n+m.To]
			s.ackSum[i] += rx[l.To*n+m.From]
			dataInterf += rx[m.From*n+l.To]
			ackInterf += rx[m.To*n+l.From]
		}
	} else {
		eng := s.eng
		for i, m := range s.links {
			s.dataSum[i] += eng.InterfMW(l.From, m.To)
			s.ackSum[i] += eng.InterfMW(l.To, m.From)
			dataInterf += eng.InterfMW(m.From, l.To)
			ackInterf += eng.InterfMW(m.To, l.From)
		}
	}
	s.links = append(s.links, l)
	s.dataSum = append(s.dataSum, dataInterf)
	s.ackSum = append(s.ackSum, ackInterf)
	if s.busy != nil {
		s.busy[l.From]++
		s.busy[l.To]++
	}
}

// Remove deletes the first occurrence of l from the slot, subtracting its
// contribution from every remaining sum in O(k). It reports whether l was
// present. Removal cancels an earlier addition term-by-term, so a removed
// link leaves the remaining sums within one rounding error of never having
// been added; use Mark/Rollback when exact restoration matters. Remove
// invalidates an outstanding Mark.
func (s *SlotState) Remove(l Link) bool {
	for i, m := range s.links {
		if m == l {
			s.removeAt(i)
			return true
		}
	}
	return false
}

func (s *SlotState) removeAt(idx int) {
	l := s.links[idx]
	s.links = append(s.links[:idx], s.links[idx+1:]...)
	s.dataSum = append(s.dataSum[:idx], s.dataSum[idx+1:]...)
	s.ackSum = append(s.ackSum[:idx], s.ackSum[idx+1:]...)
	if rx := s.rx; rx != nil {
		n := s.n
		for i, m := range s.links {
			s.dataSum[i] -= rx[l.From*n+m.To]
			s.ackSum[i] -= rx[l.To*n+m.From]
		}
	} else {
		eng := s.eng
		for i, m := range s.links {
			s.dataSum[i] -= eng.InterfMW(l.From, m.To)
			s.ackSum[i] -= eng.InterfMW(l.To, m.From)
		}
	}
	if s.busy != nil {
		s.busy[l.From]--
		s.busy[l.To]--
	}
	s.marked = -1
}

// Mark snapshots the current slot so a later Rollback can undo any Adds
// performed after it — the protocols' tentative handshake pattern: mark,
// admit the step's active links, evaluate Outcomes, and roll back if the
// slot vetoes. Restoration is exact (the sums are copied, not re-derived).
// Only one mark is outstanding at a time; a new Mark replaces the previous
// one, and Remove or Reset invalidates it.
func (s *SlotState) Mark() {
	s.marked = len(s.links)
	s.savedData = append(s.savedData[:0], s.dataSum...)
	s.savedAck = append(s.savedAck[:0], s.ackSum...)
}

// Rollback restores the slot to the state captured by the last Mark. It
// panics if no valid mark is outstanding.
func (s *SlotState) Rollback() {
	if s.marked < 0 || s.marked > len(s.links) {
		panic("phys: SlotState.Rollback without a valid Mark")
	}
	if m := slotMetrics.Load(); m != nil {
		m.rollbacks.Inc()
	}
	if s.busy != nil {
		for _, l := range s.links[s.marked:] {
			s.busy[l.From]--
			s.busy[l.To]--
		}
	}
	s.links = s.links[:s.marked]
	s.dataSum = append(s.dataSum[:0], s.savedData...)
	s.ackSum = append(s.ackSum[:0], s.savedAck...)
}

// Reset empties the slot for reuse and invalidates any outstanding Mark.
func (s *SlotState) Reset() {
	if s.busy != nil {
		for _, l := range s.links {
			s.busy[l.From]--
			s.busy[l.To]--
		}
	}
	s.links = s.links[:0]
	s.dataSum = s.dataSum[:0]
	s.ackSum = s.ackSum[:0]
	s.marked = -1
}

// Outcomes evaluates the two-way handshake of every link currently in the
// slot, concurrently, exactly like Channel.HandshakeOutcome would for
// Links(): data decodes iff its SINR clears beta under all senders'
// interference; only decoding receivers ACK, and the handshake succeeds iff
// the ACK SINR clears beta too. Links with primary conflicts always fail.
// The returned slice is indexed like Links() and is reused by subsequent
// calls.
//
// When every link decodes its data (the common case for slots built by
// CanAdd-gated admission), the evaluation is O(k) straight off the running
// sums; each data failure costs one O(k) correction pass for the silent
// ACK.
func (s *SlotState) Outcomes() []bool {
	k := len(s.links)
	if cap(s.out) < k {
		s.out = make([]bool, k)
		s.dataOK = make([]bool, k)
	}
	out := s.out[:k]
	dataOK := s.dataOK[:k]
	s.failed = s.failed[:0]
	beta, noise := s.beta, s.noise
	if s.busy == nil {
		s.busy = make([]int32, s.n)
		for _, l := range s.links {
			s.busy[l.From]++
			s.busy[l.To]++
		}
	}

	if rx := s.rx; rx != nil {
		n := s.n
		// Data sub-slot. A primary-conflicted link never completes its
		// handshake (but its sender still radiates, which the running sums
		// already account for).
		for i, l := range s.links {
			if s.busy[l.From] > 1 || s.busy[l.To] > 1 {
				dataOK[i] = false
				s.failed = append(s.failed, i)
				continue
			}
			dataOK[i] = rx[l.From*n+l.To] >= beta*(noise+s.dataSum[i])
			if !dataOK[i] {
				s.failed = append(s.failed, i)
			}
		}

		// ACK sub-slot: links whose data was not decoded stay silent, so their
		// contribution is deducted from the running all-receivers sums.
		for i, l := range s.links {
			if !dataOK[i] {
				out[i] = false
				continue
			}
			ackInterf := s.ackSum[i]
			for _, j := range s.failed {
				ackInterf -= rx[s.links[j].To*n+l.From]
			}
			out[i] = rx[l.To*n+l.From] >= beta*(noise+ackInterf)
		}
		return out
	}

	eng := s.eng
	for i, l := range s.links {
		if s.busy[l.From] > 1 || s.busy[l.To] > 1 {
			dataOK[i] = false
			s.failed = append(s.failed, i)
			continue
		}
		dataOK[i] = eng.SignalMW(l.From, l.To) >= beta*(noise+s.dataSum[i])
		if !dataOK[i] {
			s.failed = append(s.failed, i)
		}
	}
	for i, l := range s.links {
		if !dataOK[i] {
			out[i] = false
			continue
		}
		ackInterf := s.ackSum[i]
		for _, j := range s.failed {
			ackInterf -= eng.InterfMW(s.links[j].To, l.From)
		}
		out[i] = eng.SignalMW(l.To, l.From) >= beta*(noise+ackInterf)
	}
	return out
}
