package phys

import (
	"fmt"
	"strings"
)

// Engine is the interference-model abstraction the feasibility machinery
// (SlotState, MultiSlotState, the greedy scheduler family) runs against. Two
// implementations exist: the dense *Channel, whose cached n*n RX-power
// matrix answers every query exactly, and the spatial grid-bucket index
// (internal/phys/spatial), which answers signal queries exactly but may
// over-estimate interference beyond its cutoff radius.
//
// The split between SignalMW and InterfMW is the contract that makes the
// spatial engine safe: SignalMW(u, v) must return the exact received power
// P_v(u) — it appears on the favorable (left) side of every SINR inequality,
// so an error there could admit an infeasible link. InterfMW(u, v) appears
// only inside interference sums (the unfavorable right side) and may return
// any value >= the exact received power; over-estimating it only makes the
// engine reject more, never admit more, so every schedule a conservative
// engine admits is feasible under the exact model.
//
// Engines follow the Channel concurrency contract: safe for any number of
// concurrent readers, with mutations (topology dynamics) requiring exclusive
// access.
type Engine interface {
	// NumNodes returns the number of nodes the engine models.
	NumNodes() int
	// NoiseMW returns the background noise power in milliwatts.
	NoiseMW() float64
	// Beta returns the linear SINR threshold.
	Beta() float64
	// Gain returns the linear gain from node u to node v (0 for u == v).
	Gain(u, v int) float64
	// SignalMW returns the exact received power P_v(u) in milliwatts.
	SignalMW(u, v int) float64
	// InterfMW returns an upper bound on the power node u contributes to
	// the interference sum at node v; exact engines return P_v(u) itself.
	InterfMW(u, v int) float64
}

// SignalMW returns the exact received power P_v(u). Part of the Engine
// interface; for the dense channel it is RxPowerMW.
func (c *Channel) SignalMW(u, v int) float64 { return c.RxPowerMW(u, v) }

// InterfMW returns node u's interference contribution at node v. The dense
// channel is exact, so this too is RxPowerMW.
func (c *Channel) InterfMW(u, v int) float64 { return c.RxPowerMW(u, v) }

// EngineInfo describes one interference engine for registry listings (CLI
// flags, the service API, scream.Engines). It mirrors sched.Backend, but
// carries metadata only: engines are constructed from a deployment, not from
// a name, so construction lives with the deployment types.
type EngineInfo struct {
	// Name is the stable identifier used in scenario specs and CLI flags.
	Name string
	// Doc is a one-line description of the engine's model and trade-off.
	Doc string
	// Exact reports whether the engine answers every interference query
	// exactly (true) or may conservatively over-estimate far-field
	// interference (false).
	Exact bool
}

// Engine registry names.
const (
	EngineDense   = "dense"
	EngineSpatial = "spatial"
)

// Engines lists the interference engines in presentation order: the exact
// default first. Callers may mutate the returned slice.
func Engines() []EngineInfo {
	return []EngineInfo{
		{
			Name:  EngineDense,
			Doc:   "exact dense n*n RX-power matrix; the reference model (O(n^2) memory)",
			Exact: true,
		},
		{
			Name:  EngineSpatial,
			Doc:   "grid-bucket index: exact near-field, conservative far-field bound (O(n) memory)",
			Exact: false,
		},
	}
}

// EngineByName returns the registry entry for name, or an error naming the
// valid choices.
func EngineByName(name string) (EngineInfo, error) {
	valid := make([]string, 0, 2)
	for _, e := range Engines() {
		if e.Name == name {
			return e, nil
		}
		valid = append(valid, e.Name)
	}
	return EngineInfo{}, fmt.Errorf("phys: unknown engine %q (valid: %s)", name, strings.Join(valid, ", "))
}
