package phys

import (
	"math/rand"
	"testing"
)

func protoModel(t testing.TB, ch *Channel) *ProtocolModel {
	t.Helper()
	// Exclusion region = carrier-sense range at decode sensitivity.
	return NewProtocolModel(ch, ch.NoiseMW()*ch.Beta())
}

func TestProtocolModelSingleLink(t *testing.T) {
	ch := lineChannel(t, 8, 30, 20)
	pm := protoModel(t, ch)
	if !pm.FeasibleSet([]Link{{0, 1}}) {
		t.Error("short lone link should be feasible")
	}
	if pm.FeasibleSet([]Link{{0, 7}}) {
		t.Error("out-of-range link should be infeasible")
	}
}

func TestProtocolModelExclusion(t *testing.T) {
	ch := lineChannel(t, 40, 30, 20)
	pm := protoModel(t, ch)
	// Adjacent links: inside each other's exclusion region.
	if pm.FeasibleSet([]Link{{0, 1}, {3, 4}}) {
		t.Error("nearby links must conflict under the protocol model")
	}
	// Far-apart links: fine.
	if !pm.FeasibleSet([]Link{{0, 1}, {38, 39}}) {
		t.Error("far-apart links should be feasible")
	}
	// Endpoint sharing always conflicts.
	if pm.FeasibleSet([]Link{{0, 1}, {1, 2}}) {
		t.Error("endpoint sharing must conflict")
	}
}

func TestProtocolModelMoreConservativeThanPhysical(t *testing.T) {
	// With the exclusion threshold at decode sensitivity, any set feasible
	// under the protocol model keeps every interferer below the decode
	// power at every receiver; spot-check that protocol-feasible random
	// sets are (almost) always SINR-feasible, and that the physical model
	// accepts sets the protocol model rejects (the capacity gap).
	ch := lineChannel(t, 60, 30, 20)
	pm := protoModel(t, ch)
	rng := rand.New(rand.NewSource(9))
	protoFeasible, physOnly := 0, 0
	for trial := 0; trial < 400; trial++ {
		var links []Link
		used := map[int]bool{}
		for k := 0; k < 5; k++ {
			a := rng.Intn(59)
			if used[a] || used[a+1] {
				continue
			}
			links = append(links, Link{a, a + 1})
			used[a], used[a+1] = true, true
		}
		if len(links) < 2 {
			continue
		}
		proto := pm.FeasibleSet(links)
		physical := ch.FeasibleSet(links)
		if proto {
			protoFeasible++
		}
		if physical && !proto {
			physOnly++
		}
		if proto && !physical {
			// Possible in principle (protocol models mis-predict), but
			// should be rare at this threshold; count as informational.
			t.Logf("trial %d: protocol-feasible but SINR-infeasible: %v", trial, links)
		}
	}
	if physOnly == 0 {
		t.Error("expected sets accepted by the physical model but rejected by the protocol model")
	}
	t.Logf("protocol-feasible %d, physical-only %d of 400 trials", protoFeasible, physOnly)
}

func TestProtocolSlotCheckerMatchesFeasibleSet(t *testing.T) {
	ch := lineChannel(t, 30, 30, 20)
	pm := protoModel(t, ch)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		sc := NewProtocolSlotChecker(pm)
		var accepted []Link
		for k := 0; k < 6; k++ {
			a := rng.Intn(29)
			l := Link{a, a + 1}
			if sc.CanAdd(l) {
				sc.Add(l)
				accepted = append(accepted, l)
				if !pm.FeasibleSet(accepted) {
					t.Fatalf("checker accepted protocol-infeasible set %v", accepted)
				}
			}
		}
		if sc.Len() != len(accepted) {
			t.Fatalf("Len mismatch")
		}
	}
}

func TestProtocolSlotCheckerRejects(t *testing.T) {
	ch := lineChannel(t, 10, 30, 20)
	pm := protoModel(t, ch)
	sc := NewProtocolSlotChecker(pm)
	if !sc.CanAdd(Link{0, 1}) {
		t.Fatal("first link should fit")
	}
	sc.Add(Link{0, 1})
	if sc.CanAdd(Link{1, 2}) {
		t.Error("endpoint conflict must be rejected")
	}
	if sc.CanAdd(Link{0, 0}) {
		t.Error("self loop must be rejected")
	}
	if sc.CanAdd(Link{3, 4}) {
		t.Error("link inside exclusion region must be rejected")
	}
}
