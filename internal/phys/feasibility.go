package phys

import "fmt"

// Link is a directed data transmission: From sends a data packet to To in the
// data sub-slot, and To returns a link-layer ACK to From in the ACK sub-slot
// (the slot-splitting variant of the interference model, Section II).
type Link struct {
	From, To int
}

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Reverse returns the link with endpoints swapped.
func (l Link) Reverse() Link { return Link{From: l.To, To: l.From} }

// SharesEndpoint reports whether two links have a node in common. Links that
// share an endpoint can never be scheduled in the same slot: radios are
// half-duplex and single-channel, so a node cannot take part in two
// simultaneous transmissions (primary conflict).
func (l Link) SharesEndpoint(m Link) bool {
	return l.From == m.From || l.From == m.To || l.To == m.From || l.To == m.To
}

// FeasibleSet reports whether the set of links can all be scheduled in the
// same slot and correctly received, per the paper's model: for every link
// (u,v),
//
//	P_v(u) / (N + sum_{x in V'} P_v(x))  >= beta   (data sub-slot), and
//	P_u(v) / (N + sum_{y in V''} P_u(y)) >= beta   (ACK sub-slot),
//
// where V' is the set of all other data senders and V” the set of all other
// ACK senders (the receivers of the other links). Primary conflicts (shared
// endpoints, including duplicate links) also make a set infeasible.
func (c *Channel) FeasibleSet(links []Link) bool {
	for i, l := range links {
		for _, m := range links[i+1:] {
			if l.SharesEndpoint(m) {
				return false
			}
		}
	}
	for i, l := range links {
		dataInterf, ackInterf := 0.0, 0.0
		for j, m := range links {
			if i == j {
				continue
			}
			dataInterf += c.RxPowerMW(m.From, l.To)
			ackInterf += c.RxPowerMW(m.To, l.From)
		}
		if c.RxPowerMW(l.From, l.To) < c.beta*(c.noiseMW+dataInterf) {
			return false
		}
		if c.RxPowerMW(l.To, l.From) < c.beta*(c.noiseMW+ackInterf) {
			return false
		}
	}
	return true
}

// HandshakeOutcome simulates what actually happens when all the given links
// attempt their two-way handshake concurrently in one slot (the DoHandShake
// step of the protocols): first every sender transmits its data packet; a
// receiver decodes iff its data SINR clears beta. Then exactly the receivers
// that decoded send ACKs; a handshake succeeds iff the data was decoded and
// the ACK SINR at the sender clears beta given the other concurrent ACKs.
//
// Links with primary conflicts always fail (both of the conflicting
// handshakes are destroyed). The returned slice is indexed like links, true
// meaning the two-way handshake succeeded.
func (c *Channel) HandshakeOutcome(links []Link) []bool {
	n := len(links)
	ok := make([]bool, n)
	conflicted := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if links[i].SharesEndpoint(links[j]) {
				conflicted[i] = true
				conflicted[j] = true
			}
		}
	}
	// Data sub-slot: every From transmits regardless of conflicts (a
	// conflicted node still radiates energy, it just cannot complete its
	// own handshake).
	dataOK := make([]bool, n)
	for i, l := range links {
		if conflicted[i] {
			continue
		}
		interf := 0.0
		for j, m := range links {
			if i == j {
				continue
			}
			interf += c.RxPowerMW(m.From, l.To)
		}
		dataOK[i] = c.RxPowerMW(l.From, l.To) >= c.beta*(c.noiseMW+interf)
	}
	// ACK sub-slot: only receivers that decoded the data transmit ACKs.
	for i, l := range links {
		if !dataOK[i] {
			continue
		}
		interf := 0.0
		for j, m := range links {
			if i == j || !dataOK[j] {
				continue
			}
			interf += c.RxPowerMW(m.To, l.From)
		}
		ok[i] = c.RxPowerMW(l.To, l.From) >= c.beta*(c.noiseMW+interf)
	}
	return ok
}

// The incremental counterpart of FeasibleSet and HandshakeOutcome — O(k)
// admission checks and handshake evaluation over running interference sums —
// lives in SlotState (slotstate.go). FeasibleSet and HandshakeOutcome above
// are kept as the naive reference implementations its property tests and
// Schedule.Verify compare against.
