package phys

import "fmt"

// Link is a directed data transmission: From sends a data packet to To in the
// data sub-slot, and To returns a link-layer ACK to From in the ACK sub-slot
// (the slot-splitting variant of the interference model, Section II).
type Link struct {
	From, To int
}

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Reverse returns the link with endpoints swapped.
func (l Link) Reverse() Link { return Link{From: l.To, To: l.From} }

// SharesEndpoint reports whether two links have a node in common. Links that
// share an endpoint can never be scheduled in the same slot: radios are
// half-duplex and single-channel, so a node cannot take part in two
// simultaneous transmissions (primary conflict).
func (l Link) SharesEndpoint(m Link) bool {
	return l.From == m.From || l.From == m.To || l.To == m.From || l.To == m.To
}

// FeasibleSet reports whether the set of links can all be scheduled in the
// same slot and correctly received, per the paper's model: for every link
// (u,v),
//
//	P_v(u) / (N + sum_{x in V'} P_v(x))  >= beta   (data sub-slot), and
//	P_u(v) / (N + sum_{y in V''} P_u(y)) >= beta   (ACK sub-slot),
//
// where V' is the set of all other data senders and V” the set of all other
// ACK senders (the receivers of the other links). Primary conflicts (shared
// endpoints, including duplicate links) also make a set infeasible.
func (c *Channel) FeasibleSet(links []Link) bool {
	for i, l := range links {
		for _, m := range links[i+1:] {
			if l.SharesEndpoint(m) {
				return false
			}
		}
	}
	for i, l := range links {
		dataInterf, ackInterf := 0.0, 0.0
		for j, m := range links {
			if i == j {
				continue
			}
			dataInterf += c.RxPowerMW(m.From, l.To)
			ackInterf += c.RxPowerMW(m.To, l.From)
		}
		if c.RxPowerMW(l.From, l.To) < c.beta*(c.noiseMW+dataInterf) {
			return false
		}
		if c.RxPowerMW(l.To, l.From) < c.beta*(c.noiseMW+ackInterf) {
			return false
		}
	}
	return true
}

// HandshakeOutcome simulates what actually happens when all the given links
// attempt their two-way handshake concurrently in one slot (the DoHandShake
// step of the protocols): first every sender transmits its data packet; a
// receiver decodes iff its data SINR clears beta. Then exactly the receivers
// that decoded send ACKs; a handshake succeeds iff the data was decoded and
// the ACK SINR at the sender clears beta given the other concurrent ACKs.
//
// Links with primary conflicts always fail (both of the conflicting
// handshakes are destroyed). The returned slice is indexed like links, true
// meaning the two-way handshake succeeded.
func (c *Channel) HandshakeOutcome(links []Link) []bool {
	n := len(links)
	ok := make([]bool, n)
	conflicted := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if links[i].SharesEndpoint(links[j]) {
				conflicted[i] = true
				conflicted[j] = true
			}
		}
	}
	// Data sub-slot: every From transmits regardless of conflicts (a
	// conflicted node still radiates energy, it just cannot complete its
	// own handshake).
	dataOK := make([]bool, n)
	for i, l := range links {
		if conflicted[i] {
			continue
		}
		interf := 0.0
		for j, m := range links {
			if i == j {
				continue
			}
			interf += c.RxPowerMW(m.From, l.To)
		}
		dataOK[i] = c.RxPowerMW(l.From, l.To) >= c.beta*(c.noiseMW+interf)
	}
	// ACK sub-slot: only receivers that decoded the data transmit ACKs.
	for i, l := range links {
		if !dataOK[i] {
			continue
		}
		interf := 0.0
		for j, m := range links {
			if i == j || !dataOK[j] {
				continue
			}
			interf += c.RxPowerMW(m.To, l.From)
		}
		ok[i] = c.RxPowerMW(l.To, l.From) >= c.beta*(c.noiseMW+interf)
	}
	return ok
}

// SlotChecker incrementally maintains the feasibility state of one slot so a
// greedy scheduler can test "can link l join this slot?" in O(k) time for a
// slot holding k links. It mirrors FeasibleSet exactly.
type SlotChecker struct {
	c          *Channel
	links      []Link
	dataInterf []float64 // interference at links[i].To from other data senders
	ackInterf  []float64 // interference at links[i].From from other ACK senders
	busy       map[int]bool
	ignoreAck  bool
}

// NewSlotChecker returns an empty slot bound to channel c.
func NewSlotChecker(c *Channel) *SlotChecker {
	return &SlotChecker{c: c, busy: make(map[int]bool)}
}

// NewSlotCheckerDataOnly returns a checker that ignores the ACK sub-slot
// inequality. It exists for the ablation quantifying how much the paper's
// link-layer-reliability extension of the interference model matters:
// schedules it accepts may be infeasible under the full model.
func NewSlotCheckerDataOnly(c *Channel) *SlotChecker {
	return &SlotChecker{c: c, busy: make(map[int]bool), ignoreAck: true}
}

// Len returns the number of links currently in the slot.
func (s *SlotChecker) Len() int { return len(s.links) }

// Links returns a copy of the links currently in the slot.
func (s *SlotChecker) Links() []Link {
	out := make([]Link, len(s.links))
	copy(out, s.links)
	return out
}

// CanAdd reports whether adding l keeps the slot feasible: l itself must
// clear both SINR inequalities against the current slot, every current link
// must survive l's added data and ACK interference, and l must not share an
// endpoint with any current link.
func (s *SlotChecker) CanAdd(l Link) bool {
	if l.From == l.To || s.busy[l.From] || s.busy[l.To] {
		return false
	}
	c := s.c
	beta, noise := c.beta, c.noiseMW

	// New link's own inequalities.
	dataInterf, ackInterf := 0.0, 0.0
	for _, m := range s.links {
		dataInterf += c.RxPowerMW(m.From, l.To)
		ackInterf += c.RxPowerMW(m.To, l.From)
	}
	if c.RxPowerMW(l.From, l.To) < beta*(noise+dataInterf) {
		return false
	}
	if !s.ignoreAck && c.RxPowerMW(l.To, l.From) < beta*(noise+ackInterf) {
		return false
	}
	// Existing links under the extra interference from l.
	for i, m := range s.links {
		if c.RxPowerMW(m.From, m.To) < beta*(noise+s.dataInterf[i]+c.RxPowerMW(l.From, m.To)) {
			return false
		}
		if !s.ignoreAck && c.RxPowerMW(m.To, m.From) < beta*(noise+s.ackInterf[i]+c.RxPowerMW(l.To, m.From)) {
			return false
		}
	}
	return true
}

// Add inserts l into the slot, updating interference tallies. Callers are
// expected to have checked CanAdd; Add does not re-verify feasibility.
func (s *SlotChecker) Add(l Link) {
	c := s.c
	dataInterf, ackInterf := 0.0, 0.0
	for i, m := range s.links {
		s.dataInterf[i] += c.RxPowerMW(l.From, m.To)
		s.ackInterf[i] += c.RxPowerMW(l.To, m.From)
		dataInterf += c.RxPowerMW(m.From, l.To)
		ackInterf += c.RxPowerMW(m.To, l.From)
	}
	s.links = append(s.links, l)
	s.dataInterf = append(s.dataInterf, dataInterf)
	s.ackInterf = append(s.ackInterf, ackInterf)
	s.busy[l.From] = true
	s.busy[l.To] = true
}

// Reset empties the slot for reuse.
func (s *SlotChecker) Reset() {
	s.links = s.links[:0]
	s.dataInterf = s.dataInterf[:0]
	s.ackInterf = s.ackInterf[:0]
	for k := range s.busy {
		delete(s.busy, k)
	}
}
