package phys

// ProtocolModel is the protocol interference model the paper contrasts with
// the physical model (Section I): a transmission u -> v succeeds iff no
// other node within the interference range of v (or of u, for the ACK) is
// simultaneously active. It is the abstraction CSMA/CA-style MACs enforce,
// and it is strictly more conservative than SINR feasibility at matched
// parameters — quantifying the capacity the physical model recovers is the
// point of the comparison experiment.
type ProtocolModel struct {
	ch *Channel
	// interfMW is the received-power level above which a concurrent
	// transmitter is considered "within interference range".
	interfMW float64
}

// NewProtocolModel builds a protocol model on top of a channel. A node x
// interferes with a receiver r when P_r(x) >= interfThresholdMW. Choosing
// the carrier-sense threshold reproduces an 802.11-like exclusion region.
func NewProtocolModel(ch *Channel, interfThresholdMW float64) *ProtocolModel {
	return &ProtocolModel{ch: ch, interfMW: interfThresholdMW}
}

// Interferes reports whether node x is inside the exclusion region of node r.
func (p *ProtocolModel) Interferes(x, r int) bool {
	return p.ch.RxPowerMW(x, r) >= p.interfMW
}

// FeasibleSet reports whether the links can be scheduled concurrently under
// the protocol model: pairwise endpoint-disjoint, every link must be up
// (SNR >= beta in isolation), and for every pair of links, neither link's
// sender or receiver may fall in the exclusion region of the other link's
// receiver or sender (data and ACK directions respectively).
func (p *ProtocolModel) FeasibleSet(links []Link) bool {
	for i, l := range links {
		if !p.ch.LinkUp(l.From, l.To) || !p.ch.LinkUp(l.To, l.From) {
			return false
		}
		for _, m := range links[i+1:] {
			if l.SharesEndpoint(m) {
				return false
			}
			// Data sub-slot: foreign senders must be outside both
			// receivers' exclusion regions.
			if p.Interferes(m.From, l.To) || p.Interferes(l.From, m.To) {
				return false
			}
			// ACK sub-slot: foreign ACK senders (the receivers) must be
			// outside both data senders' exclusion regions.
			if p.Interferes(m.To, l.From) || p.Interferes(l.To, m.From) {
				return false
			}
		}
	}
	return true
}

// ProtocolSlotChecker incrementally maintains protocol-model slot
// feasibility, mirroring SlotState so greedy schedulers can swap models.
type ProtocolSlotChecker struct {
	p     *ProtocolModel
	links []Link
	busy  []bool // by node: is an endpoint of a slot link
}

// NewProtocolSlotChecker returns an empty protocol-model slot.
func NewProtocolSlotChecker(p *ProtocolModel) *ProtocolSlotChecker {
	return &ProtocolSlotChecker{p: p, busy: make([]bool, p.ch.NumNodes())}
}

// Len returns the number of links in the slot.
func (s *ProtocolSlotChecker) Len() int { return len(s.links) }

// CanAdd reports whether l can join the slot under the protocol model.
func (s *ProtocolSlotChecker) CanAdd(l Link) bool {
	if l.From == l.To || s.busy[l.From] || s.busy[l.To] {
		return false
	}
	if !s.p.ch.LinkUp(l.From, l.To) || !s.p.ch.LinkUp(l.To, l.From) {
		return false
	}
	for _, m := range s.links {
		if p := s.p; p.Interferes(m.From, l.To) || p.Interferes(l.From, m.To) ||
			p.Interferes(m.To, l.From) || p.Interferes(l.To, m.From) {
			return false
		}
	}
	return true
}

// Add inserts l (callers must have checked CanAdd).
func (s *ProtocolSlotChecker) Add(l Link) {
	s.links = append(s.links, l)
	s.busy[l.From] = true
	s.busy[l.To] = true
}
