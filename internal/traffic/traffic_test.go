package traffic

import (
	"math/rand"
	"testing"
)

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := Uniform(5000, 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, x := range d {
		if x < 1 || x > 10 {
			t.Fatalf("demand %d outside [1,10]", x)
		}
		seen[x] = true
	}
	for v := 1; v <= 10; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn in 5000 samples", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := Uniform(3, 4, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range d {
		if x != 4 {
			t.Errorf("constant-range uniform gave %d", x)
		}
	}
}

func TestUniformErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Uniform(3, 5, 2, rng); err == nil {
		t.Error("lo > hi should fail")
	}
	if _, err := Uniform(3, -1, 2, rng); err == nil {
		t.Error("negative lo should fail")
	}
}

func TestConstant(t *testing.T) {
	d := Constant(4, 7)
	if len(d) != 4 {
		t.Fatalf("len = %d", len(d))
	}
	for _, x := range d {
		if x != 7 {
			t.Errorf("got %d, want 7", x)
		}
	}
}

func TestZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := Zipf(2000, 1.5, 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	count1, countHi := 0, 0
	for _, x := range d {
		if x < 1 || x > 10 {
			t.Fatalf("zipf demand %d outside [1,10]", x)
		}
		if x == 1 {
			count1++
		}
		if x >= 8 {
			countHi++
		}
	}
	if count1 <= countHi {
		t.Errorf("zipf should be skewed toward 1: got %d ones vs %d highs", count1, countHi)
	}
}

func TestZipfErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Zipf(10, 1.0, 1, 10, rng); err == nil {
		t.Error("s <= 1 should fail")
	}
	if _, err := Zipf(10, 1.5, 0.5, 10, rng); err == nil {
		t.Error("v < 1 should fail")
	}
	if _, err := Zipf(10, 1.5, 1, 0, rng); err == nil {
		t.Error("max < 1 should fail")
	}
}
