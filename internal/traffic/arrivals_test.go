package traffic

import (
	"math"
	"math/rand"
	"testing"

	"scream/internal/des"
)

// TestGeneratorEdgeCases is the table covering the static generators'
// parameter validation: Uniform lo>hi, Zipf parameter rejection, and
// Constant edge cases.
func TestGeneratorEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name    string
		run     func() ([]int, error)
		wantErr bool
		check   func(t *testing.T, d []int)
	}{
		{"uniform lo>hi", func() ([]int, error) { return Uniform(4, 7, 3, rng) }, true, nil},
		{"uniform lo>hi negative", func() ([]int, error) { return Uniform(4, 0, -1, rng) }, true, nil},
		{"uniform negative lo", func() ([]int, error) { return Uniform(4, -2, 5, rng) }, true, nil},
		{"uniform zero demand allowed", func() ([]int, error) { return Uniform(4, 0, 0, rng) }, false,
			func(t *testing.T, d []int) {
				for _, x := range d {
					if x != 0 {
						t.Errorf("got %d, want 0", x)
					}
				}
			}},
		{"uniform n=0", func() ([]int, error) { return Uniform(0, 1, 10, rng) }, false,
			func(t *testing.T, d []int) {
				if len(d) != 0 {
					t.Errorf("len = %d, want 0", len(d))
				}
			}},
		{"zipf s=1 rejected", func() ([]int, error) { return Zipf(4, 1.0, 1, 10, rng) }, true, nil},
		{"zipf s<1 rejected", func() ([]int, error) { return Zipf(4, 0.5, 1, 10, rng) }, true, nil},
		{"zipf v<1 rejected", func() ([]int, error) { return Zipf(4, 1.5, 0, 10, rng) }, true, nil},
		{"zipf max=0 rejected", func() ([]int, error) { return Zipf(4, 1.5, 1, 0, rng) }, true, nil},
		{"zipf max=1 degenerate", func() ([]int, error) { return Zipf(4, 1.5, 1, 1, rng) }, false,
			func(t *testing.T, d []int) {
				for _, x := range d {
					if x != 1 {
						t.Errorf("max=1 zipf gave %d, want 1", x)
					}
				}
			}},
		{"constant n=0", func() ([]int, error) { return Constant(0, 5), nil }, false,
			func(t *testing.T, d []int) {
				if len(d) != 0 {
					t.Errorf("len = %d, want 0", len(d))
				}
			}},
		{"constant zero demand", func() ([]int, error) { return Constant(3, 0), nil }, false,
			func(t *testing.T, d []int) {
				if len(d) != 3 {
					t.Fatalf("len = %d, want 3", len(d))
				}
				for _, x := range d {
					if x != 0 {
						t.Errorf("got %d, want 0", x)
					}
				}
			}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d, err := tc.run()
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.check != nil {
				tc.check(t, d)
			}
		})
	}
}

func TestCBR(t *testing.T) {
	if _, err := NewCBR(0); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewCBR(-5); err == nil {
		t.Error("negative rate should fail")
	}
	c, err := NewCBR(1000) // 1 packet/ms
	if err != nil {
		t.Fatal(err)
	}
	now := des.Time(0)
	for i := 1; i <= 5; i++ {
		now = c.Next(now, nil)
		if now != des.Time(i)*des.Millisecond {
			t.Fatalf("arrival %d at %v, want %v", i, now, des.Time(i)*des.Millisecond)
		}
	}
}

func TestPoissonRate(t *testing.T) {
	if _, err := NewPoisson(0); err == nil {
		t.Error("zero rate should fail")
	}
	p, err := NewPoisson(500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	now := des.Time(0)
	const n = 20000
	for i := 0; i < n; i++ {
		next := p.Next(now, rng)
		if next <= now {
			t.Fatalf("non-increasing arrival: %v -> %v", now, next)
		}
		now = next
	}
	rate := float64(n) / now.Seconds()
	if math.Abs(rate-500)/500 > 0.05 {
		t.Errorf("empirical rate %.1f, want ~500", rate)
	}
}

func TestBurstyMeanRate(t *testing.T) {
	if _, err := NewBursty(0, des.Millisecond, des.Millisecond); err == nil {
		t.Error("zero peak rate should fail")
	}
	if _, err := NewBursty(100, 0, des.Millisecond); err == nil {
		t.Error("zero mean-on should fail")
	}
	if _, err := NewBursty(100, des.Millisecond, 0); err == nil {
		t.Error("zero mean-off should fail")
	}
	b, err := NewBursty(2000, 10*des.Millisecond, 30*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	want := b.MeanRate()
	if math.Abs(want-500) > 1e-9 {
		t.Fatalf("MeanRate = %v, want 500", want)
	}
	rng := rand.New(rand.NewSource(11))
	now := des.Time(0)
	const n = 20000
	for i := 0; i < n; i++ {
		next := b.Next(now, rng)
		if next <= now {
			t.Fatalf("non-increasing arrival: %v -> %v", now, next)
		}
		now = next
	}
	rate := float64(n) / now.Seconds()
	if math.Abs(rate-want)/want > 0.1 {
		t.Errorf("empirical rate %.1f, want ~%.1f", rate, want)
	}
}

// TestBurstyIsBursty verifies the defining property: interarrival times are
// far more variable than a Poisson stream of the same mean rate (the squared
// coefficient of variation of an MMPP with long off periods is >> 1).
func TestBurstyIsBursty(t *testing.T) {
	b, _ := NewBursty(5000, 5*des.Millisecond, 45*des.Millisecond) // mean 500/s
	rng := rand.New(rand.NewSource(13))
	now := des.Time(0)
	const n = 20000
	var sum, sumsq float64
	prev := now
	for i := 0; i < n; i++ {
		next := b.Next(prev, rng)
		dt := (next - prev).Seconds()
		sum += dt
		sumsq += dt * dt
		prev = next
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	scv := variance / (mean * mean)
	if scv < 2 {
		t.Errorf("squared coefficient of variation %.2f; want >> 1 for an on/off source", scv)
	}
}

func TestHotspotRates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rates, err := HotspotRates(256, 1.5, 1, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	maxRate := 0.0
	for _, r := range rates {
		if r < 0 {
			t.Fatalf("negative rate %v", r)
		}
		sum += r
		if r > maxRate {
			maxRate = r
		}
	}
	if math.Abs(sum-256) > 1e-6 {
		t.Errorf("rates sum to %v, want n=256 (mean 1)", sum)
	}
	if maxRate < 2 {
		t.Errorf("max multiplier %v; zipf hotspots should be well above the mean", maxRate)
	}
	if _, err := HotspotRates(8, 1.0, 1, 32, rng); err == nil {
		t.Error("invalid zipf parameters should propagate")
	}
}
