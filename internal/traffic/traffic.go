// Package traffic provides per-node demand generators. The paper's
// evaluation draws node demands uniformly from [1, 10] (Section VI-A).
package traffic

import (
	"fmt"
	"math/rand"
)

// Uniform draws n integer demands uniformly from [lo, hi] inclusive.
func Uniform(n, lo, hi int, rng *rand.Rand) ([]int, error) {
	if lo > hi {
		return nil, fmt.Errorf("traffic: lo %d > hi %d", lo, hi)
	}
	if lo < 0 {
		return nil, fmt.Errorf("traffic: negative demand %d", lo)
	}
	d := make([]int, n)
	for i := range d {
		d[i] = lo + rng.Intn(hi-lo+1)
	}
	return d, nil
}

// Constant returns n copies of demand d.
func Constant(n, d int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// Zipf draws n integer demands from 1 + Zipf(s, v, max-1), modelling skewed
// client populations (a few hotspot routers carry most client traffic).
func Zipf(n int, s, v float64, max uint64, rng *rand.Rand) ([]int, error) {
	if s <= 1 || v < 1 || max < 1 {
		return nil, fmt.Errorf("traffic: invalid zipf parameters s=%v v=%v max=%d", s, v, max)
	}
	z := rand.NewZipf(rng, s, v, max-1)
	if z == nil {
		return nil, fmt.Errorf("traffic: rand.NewZipf rejected parameters")
	}
	d := make([]int, n)
	for i := range d {
		d[i] = int(z.Uint64()) + 1
	}
	return d, nil
}
