package traffic

// Arrival processes for the flow-level dynamic traffic subsystem
// (internal/flow). Where the generators in traffic.go draw a *static* demand
// vector — the input of the paper's one-shot scheduling problem — an Arrival
// produces a *stream* of packet arrival times over simulated time. The flow
// simulator attaches one Arrival per source node and re-runs the schedulers
// against the backlog those streams build up.

import (
	"fmt"
	"math/rand"

	"scream/internal/des"
)

// Arrival is a pluggable packet arrival process. Next returns the absolute
// simulated time of the process's next arrival strictly after now, drawing
// any randomness from rng. Implementations may carry state (e.g. the on/off
// phase of Bursty), so an Arrival value must not be shared between nodes.
type Arrival interface {
	Next(now des.Time, rng *rand.Rand) des.Time
}

// CBR is a constant-bit-rate source: one packet every Interval, jitter-free.
type CBR struct {
	Interval des.Time
}

// NewCBR returns a CBR source emitting rate packets per second.
func NewCBR(rate float64) (*CBR, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: CBR rate must be positive, got %v", rate)
	}
	return &CBR{Interval: des.FromSeconds(1 / rate)}, nil
}

// Next implements Arrival.
func (c *CBR) Next(now des.Time, _ *rand.Rand) des.Time {
	if c.Interval <= 0 {
		return now + 1
	}
	return now + c.Interval
}

// Poisson is a memoryless source: exponential interarrivals at Rate packets
// per second.
type Poisson struct {
	Rate float64
}

// NewPoisson returns a Poisson source with the given mean rate (packets/s).
func NewPoisson(rate float64) (*Poisson, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: Poisson rate must be positive, got %v", rate)
	}
	return &Poisson{Rate: rate}, nil
}

// Next implements Arrival.
func (p *Poisson) Next(now des.Time, rng *rand.Rand) des.Time {
	dt := des.FromSeconds(rng.ExpFloat64() / p.Rate)
	if dt <= 0 {
		dt = 1
	}
	return now + dt
}

// Bursty is a two-state on/off source (a Markov-modulated Poisson process):
// the source alternates between exponentially distributed ON periods, during
// which packets arrive as a Poisson stream at PeakRate, and exponentially
// distributed OFF periods with no arrivals. Its mean rate is
// PeakRate * MeanOn / (MeanOn + MeanOff).
type Bursty struct {
	PeakRate float64  // packets/s while ON
	MeanOn   des.Time // mean ON-period duration
	MeanOff  des.Time // mean OFF-period duration

	init     bool
	on       bool
	stateEnd des.Time
}

// NewBursty returns an on/off source starting in the OFF state.
func NewBursty(peakRate float64, meanOn, meanOff des.Time) (*Bursty, error) {
	if peakRate <= 0 {
		return nil, fmt.Errorf("traffic: Bursty peak rate must be positive, got %v", peakRate)
	}
	if meanOn <= 0 || meanOff <= 0 {
		return nil, fmt.Errorf("traffic: Bursty mean periods must be positive, got on=%v off=%v", meanOn, meanOff)
	}
	return &Bursty{PeakRate: peakRate, MeanOn: meanOn, MeanOff: meanOff}, nil
}

// MeanRate returns the long-run arrival rate in packets per second.
func (b *Bursty) MeanRate() float64 {
	return b.PeakRate * b.MeanOn.Seconds() / (b.MeanOn + b.MeanOff).Seconds()
}

func expDuration(mean des.Time, rng *rand.Rand) des.Time {
	d := des.Time(rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		d = 1
	}
	return d
}

// Next implements Arrival. Residual interarrival draws discarded at a state
// flip cost nothing: exponential interarrivals are memoryless, so restarting
// the Poisson clock at the next ON period leaves the process exact.
func (b *Bursty) Next(now des.Time, rng *rand.Rand) des.Time {
	if !b.init {
		b.init = true
		b.on = false
		b.stateEnd = now + expDuration(b.MeanOff, rng)
	}
	t := now
	for {
		if b.on {
			dt := des.FromSeconds(rng.ExpFloat64() / b.PeakRate)
			if dt <= 0 {
				dt = 1
			}
			if t+dt <= b.stateEnd {
				return t + dt
			}
			t = b.stateEnd
			b.on = false
			b.stateEnd = t + expDuration(b.MeanOff, rng)
		} else {
			if b.stateEnd < t {
				// The caller jumped past the OFF period's end (possible when
				// arrivals are consumed lazily); resynchronize.
				b.stateEnd = t
			}
			t = b.stateEnd
			b.on = true
			b.stateEnd = t + expDuration(b.MeanOn, rng)
		}
	}
}

// HotspotRates draws Zipf-skewed per-node rate multipliers, normalized to
// mean 1 over the n nodes — the hotspot client populations of traffic.Zipf
// recast as relative arrival rates for the flow subsystem. Multiplying a base
// packet rate by these keeps the aggregate offered load equal to n*base while
// concentrating it on a few hot routers.
func HotspotRates(n int, s, v float64, max uint64, rng *rand.Rand) ([]float64, error) {
	d, err := Zipf(n, s, v, max, rng)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, x := range d {
		total += x
	}
	rates := make([]float64, n)
	if total == 0 {
		return rates, nil
	}
	for i, x := range d {
		rates[i] = float64(x) * float64(n) / float64(total)
	}
	return rates, nil
}
