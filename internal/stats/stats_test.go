package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	s := NewSample(4)
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Known dataset: population variance 4, sample variance 32/7.
	if got, want := s.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v", got)
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Error("empty sample should return zeros")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty sample Min/Max should be infinities")
	}
	if s.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestSingleObservation(t *testing.T) {
	s := NewSample(1)
	s.Add(3.5)
	if s.Mean() != 3.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.CI95() != 0 {
		t.Errorf("CI95 with n=1 should be 0, got %v", s.CI95())
	}
}

func TestPercentile(t *testing.T) {
	s := NewSample(5)
	for _, x := range []float64{10, 20, 30, 40, 50} {
		s.Add(x)
	}
	tests := []struct {
		p, want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {-5, 10}, {110, 50},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSample(2)
	s.Add(0)
	s.Add(10)
	if got := s.Percentile(50); math.Abs(got-5) > 1e-9 {
		t.Errorf("median of {0,10} = %v, want 5", got)
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=10 observations, sd=1: half-width should be t(9)*1/sqrt(10) = 0.7154.
	s := NewSample(10)
	base := []float64{-1.5, -1, -0.5, -0.25, 0, 0, 0.25, 0.5, 1, 1.5}
	// Rescale to sd exactly 1.
	raw := NewSample(10)
	for _, x := range base {
		raw.Add(x)
	}
	sd := raw.StdDev()
	for _, x := range base {
		s.Add(x / sd)
	}
	want := 2.262 / math.Sqrt(10)
	if got := s.CI95(); math.Abs(got-want) > 1e-3 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestCI95Coverage(t *testing.T) {
	// The 95% CI should contain the true mean roughly 95% of the time.
	rng := rand.New(rand.NewSource(7))
	const trials = 2000
	hits := 0
	for i := 0; i < trials; i++ {
		s := NewSample(12)
		for j := 0; j < 12; j++ {
			s.Add(rng.NormFloat64()*2 + 5)
		}
		ci := s.CI95()
		if m := s.Mean(); m-ci <= 5 && 5 <= m+ci {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.93 || rate > 0.97 {
		t.Errorf("CI coverage = %.3f, want about 0.95", rate)
	}
}

func TestMeanWithinMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		s := NewSample(len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
			s.Add(x)
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		s := NewSample(len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true
			}
			s.Add(x)
		}
		return s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := tCritical95(df)
		if v > prev+1e-9 {
			t.Fatalf("tCritical95 not monotone non-increasing at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if got := tCritical95(0); !math.IsNaN(got) {
		t.Errorf("tCritical95(0) = %v, want NaN", got)
	}
	if got := tCritical95(1000000); got != 1.96 {
		t.Errorf("tCritical95(inf) = %v, want 1.96", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSample(3)
	s.Add(1)
	s.Add(2)
	s.Add(3)
	str := s.Summarize().String()
	if !strings.Contains(str, "mean=2.000") || !strings.Contains(str, "n=3") {
		t.Errorf("unexpected summary string: %q", str)
	}
}

func TestFigureTSV(t *testing.T) {
	fig := NewFigure("test fig", "x", "y")
	a := fig.AddSeries("a")
	b := fig.AddSeries("b")
	a.Append(1, 10, 0.5)
	a.Append(2, 20, 0.6)
	b.Append(1, 11, 0.1)
	b.Append(2, 21, 0.2)

	var buf bytes.Buffer
	if err := fig.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# test fig", "x\ta\ta_ci95\tb\tb_ci95", "1\t10.0000\t0.5000\t11.0000\t0.1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("TSV output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureLookup(t *testing.T) {
	fig := NewFigure("f", "x", "y")
	s := fig.AddSeries("curve")
	if fig.Lookup("curve") != s {
		t.Error("Lookup should find the registered series")
	}
	if fig.Lookup("missing") != nil {
		t.Error("Lookup of unknown series should be nil")
	}
}

func TestFigureTSVRaggedSeries(t *testing.T) {
	fig := NewFigure("ragged", "x", "y")
	a := fig.AddSeries("a")
	b := fig.AddSeries("b")
	a.Append(1, 10, 0)
	a.Append(2, 20, 0)
	b.Append(1, 5, 0)
	var buf bytes.Buffer
	if err := fig.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2\t20.0000\t0.0000\t\t") {
		t.Errorf("ragged series should emit empty cells:\n%s", buf.String())
	}
}

func TestRenderASCII(t *testing.T) {
	fig := NewFigure("ascii", "x", "y")
	s := fig.AddSeries("s")
	for i := 0; i <= 10; i++ {
		s.Append(float64(i), float64(i*i), 0)
	}
	var buf bytes.Buffer
	if err := fig.RenderASCII(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") {
		t.Error("ASCII render should contain data marks")
	}
	if !strings.Contains(out, "* = s") {
		t.Error("ASCII render should contain legend")
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	fig := NewFigure("empty", "x", "y")
	var buf bytes.Buffer
	if err := fig.RenderASCII(&buf, 5, 2); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("should still emit a frame")
	}
}

// TestPercentileTable extends TestPercentile with the cases the flow
// subsystem's delay metrics lean on: empty sample, single element, the
// p<=0 / p>=100 clamps, exact ranks and linear interpolation between them.
func TestPercentileTable(t *testing.T) {
	from := func(xs ...float64) *Sample {
		s := NewSample(len(xs))
		for _, x := range xs {
			s.Add(x)
		}
		return s
	}
	cases := []struct {
		name string
		s    *Sample
		p    float64
		want float64
	}{
		{"empty", NewSample(0), 50, 0},
		{"empty p0", NewSample(0), 0, 0},
		{"single p0", from(7), 0, 7},
		{"single p50", from(7), 50, 7},
		{"single p100", from(7), 100, 7},
		{"p0 is min", from(3, 1, 2), 0, 1},
		{"p100 is max", from(3, 1, 2), 100, 3},
		{"negative p clamps to min", from(3, 1, 2), -10, 1},
		{"p>100 clamps to max", from(3, 1, 2), 150, 3},
		{"median odd", from(5, 1, 3), 50, 3},
		{"median even interpolates", from(1, 2, 3, 4), 50, 2.5},
		{"quartile interpolates", from(0, 10), 25, 2.5},
		{"p95 of 0..100", func() *Sample {
			s := NewSample(101)
			for i := 100; i >= 0; i-- { // insertion order must not matter
				s.Add(float64(i))
			}
			return s
		}(), 95, 95},
		{"exact rank no interpolation", from(10, 20, 30, 40, 50), 25, 20},
		{"interpolated rank", from(10, 20, 30, 40, 50), 30, 22},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Percentile(tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

// TestPercentileMonotone: for any sample, Percentile must be monotone in p
// and bounded by [Min, Max].
func TestPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSample(40)
	for i := 0; i < 40; i++ {
		s.Add(rng.NormFloat64() * 10)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		got := s.Percentile(p)
		if got < prev {
			t.Fatalf("Percentile(%v) = %v < Percentile at previous p %v", p, got, prev)
		}
		if got < s.Min() || got > s.Max() {
			t.Fatalf("Percentile(%v) = %v outside [%v, %v]", p, got, s.Min(), s.Max())
		}
		prev = got
	}
}
