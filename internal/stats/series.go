package stats

import (
	"fmt"
	"io"
	"strings"
)

// Point is one (x, y) measurement with an optional confidence half-width.
type Point struct {
	X   float64
	Y   float64
	Err float64 // 95% CI half-width on Y; 0 if not applicable
}

// Series is a named sequence of measurements, e.g. one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point to the series.
func (s *Series) Append(x, y, err float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: err})
}

// Figure is a collection of curves sharing axes — the unit the experiment
// harness produces for each of the paper's figures.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure with axis labels.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, registers and returns a new named curve.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Lookup returns the series with the given name, or nil.
func (f *Figure) Lookup(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WriteTSV writes the figure as a tab-separated table: one row per x value,
// one column pair (y, ci) per series. Rows follow the x values of the first
// series; series are expected to share x grids (the harness guarantees this).
func (f *Figure) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", f.Title); err != nil {
		return err
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name, s.Name+"_ci95")
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	for i, p := range f.Series[0].Points {
		row := []string{fmt.Sprintf("%g", p.X)}
		for _, s := range f.Series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.4f", s.Points[i].Y), fmt.Sprintf("%.4f", s.Points[i].Err))
			} else {
				row = append(row, "", "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws a crude fixed-size ASCII chart of the figure, one rune per
// series. It is used by cmd/figgen for a quick visual check of curve shapes.
func (f *Figure) RenderASCII(w io.Writer, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX, minY, maxY := f.bounds()
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune("*o+x#@%&")
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for _, p := range s.Points {
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	for i, line := range grid {
		label := ""
		if i == 0 {
			label = fmt.Sprintf("%.4g", maxY)
		} else if i == height-1 {
			label = fmt.Sprintf("%.4g", minY)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX); err != nil {
		return err
	}
	for si, s := range f.Series {
		if _, err := fmt.Fprintf(w, "    %c = %s\n", marks[si%len(marks)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

func (f *Figure) bounds() (minX, maxX, minY, maxY float64) {
	first := true
	for _, s := range f.Series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	return minX, maxX, minY, maxY
}
