// Package stats provides the small statistics toolkit used by the experiment
// harness: sample summaries, 95% confidence intervals (Student-t), and series
// containers for figure data. The paper reports every simulation result with
// 95% confidence intervals (Section VI-A).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations.
type Sample struct {
	xs []float64
}

// NewSample returns a Sample pre-sized for n observations.
func NewSample(n int) *Sample {
	return &Sample{xs: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or +Inf for an empty sample.
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, x := range s.xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest observation, or -Inf for an empty sample.
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, x := range s.xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, s.xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// using the Student-t distribution. It returns 0 when fewer than two
// observations are available.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * s.StdDev() / math.Sqrt(float64(n))
}

// Summary is a value-type snapshot of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	CI95 float64
	Min  float64
	Max  float64
}

// Summarize returns a snapshot of the sample's statistics.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:    s.N(),
		Mean: s.Mean(),
		Std:  s.StdDev(),
		CI95: s.CI95(),
		Min:  s.Min(),
		Max:  s.Max(),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.3f ±%.3f (95%% CI, n=%d, sd=%.3f)", s.Mean, s.CI95, s.N, s.Std)
}

// tCritical95 returns the two-sided 0.05 critical value of the Student-t
// distribution with df degrees of freedom. Values for small df are tabulated;
// larger df fall back to an asymptotic expansion around the normal quantile.
func tCritical95(df int) float64 {
	table := []float64{
		// df: 1 .. 30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.NaN()
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}
