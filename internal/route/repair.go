package route

// Incremental forest repair for topology dynamics. When nodes fail, recover
// or move, most of the routing forest usually survives: only the orphaned
// subtrees (nodes whose hop distance to the surviving gateways changed, or
// whose neighborhood changed) need new parents. Repair re-attaches exactly
// those nodes at min-hop depth and keeps everything else untouched, so a
// single node failure reroutes a handful of nodes instead of redrawing every
// tree — and the packets queued along untouched branches keep their paths.
//
// Correctness contract: with a nil rng, Repair is *bit-identical* to the
// canonical full rebuild BuildForestPartial(comm, gateways, nil) — same
// parents, depths, gateway assignment and detached set — provided the input
// forest is itself canonical for its own build graph (the property tests
// fuzz exactly this equivalence across failure sequences). With an rng, only
// the dirty nodes draw random tie-breaks; depths and the detached set still
// match the full rebuild, minimizing route churn.
//
// When the event is too disruptive for local patching — the gateway set
// itself changed, the network partitioned (a previously attached node became
// unreachable), or more than half the nodes are dirty — Repair falls back to
// the full rebuild, reported in RepairStats.Rebuilt.

import (
	"fmt"
	"math/rand"

	"scream/internal/graph"
)

// RepairStats reports what a Repair call had to do.
type RepairStats struct {
	// Dirty is the number of nodes whose parent assignment was recomputed
	// (0 when the repair fell back to a full rebuild).
	Dirty int
	// Reparented is the number of nodes whose parent actually changed
	// relative to the input forest.
	Reparented int
	// Detached is the number of detached nodes in the result.
	Detached int
	// Rebuilt reports that the incremental path was abandoned for a full
	// BuildForestPartial (partition, gateway-set change, or a dirty set
	// covering most of the network).
	Rebuilt bool
}

// Repair derives the routing forest for the current topology from f, the
// forest of the previous topology. comm is the current communication graph
// (failed nodes hold no edges), gateways the currently live gateway set,
// alive marks which nodes are up (nil means all), and changed lists every
// node whose incident edge set may differ from the graph f was built on —
// the failed/recovered/moved nodes plus their old and new neighbors. Nodes
// that end up unreachable are detached, not an error; dead nodes are
// expected to be unreachable, but an *alive* node losing all gateways is a
// partition and triggers the rebuild fallback.
//
// The input forest is not mutated; the repaired forest is returned with
// statistics about the work done.
func (f *Forest) Repair(comm *graph.Graph, gateways []int, alive []bool, changed []int, rng *rand.Rand) (*Forest, RepairStats, error) {
	n := comm.NumNodes()
	if len(f.parent) != n {
		return nil, RepairStats{}, fmt.Errorf("route: repairing a %d-node forest with a %d-node graph", len(f.parent), n)
	}
	if alive != nil && len(alive) != n {
		return nil, RepairStats{}, fmt.Errorf("route: %d alive flags for %d nodes", len(alive), n)
	}
	for _, u := range changed {
		if u < 0 || u >= n {
			return nil, RepairStats{}, fmt.Errorf("route: changed node %d out of range", u)
		}
	}
	up := func(u int) bool { return alive == nil || alive[u] }

	// A changed gateway set invalidates every tree root at once; local
	// patching has no advantage. Fall back.
	if !sameGateways(f.gateways, gateways) {
		return rebuildFallback(comm, gateways, rng)
	}

	dist, _ := comm.MultiSourceBFS(gateways)

	// Partition check: a previously attached node that is still up but can
	// no longer reach any gateway means the network split; fall back to the
	// full rebuild.
	for u := 0; u < n; u++ {
		if !f.isGW[u] && f.depth[u] >= 0 && dist[u] < 0 && up(u) {
			return rebuildFallback(comm, gateways, rng)
		}
	}

	// Dirty set: a node needs its parent recomputed when its own adjacency
	// changed, its hop distance changed, or a neighbor's hop distance
	// changed (the neighbor may now be — or no longer be — the canonical
	// min-hop parent choice).
	dirty := make([]bool, n)
	nDirty := 0
	mark := func(u int) {
		if !dirty[u] {
			dirty[u] = true
			nDirty++
		}
	}
	for _, u := range changed {
		mark(u)
	}
	for u := 0; u < n; u++ {
		if dist[u] != f.depth[u] {
			mark(u)
			for _, v := range comm.Neighbors(u) {
				mark(v)
			}
		}
	}
	if nDirty > n/2 {
		return rebuildFallback(comm, gateways, rng)
	}

	out := &Forest{
		parent:   append([]int(nil), f.parent...),
		depth:    append([]int(nil), f.depth...),
		gateway:  make([]int, n),
		isGW:     append([]bool(nil), f.isGW...),
		gateways: append([]int(nil), f.gateways...),
	}
	stats := RepairStats{Dirty: nDirty}
	for u := 0; u < n; u++ {
		if out.isGW[u] {
			out.depth[u] = 0
			out.parent[u] = -1
			continue
		}
		if dist[u] < 0 {
			// Dead, or detached before this event (alive partitions were
			// caught by the fallback check above).
			out.parent[u], out.depth[u] = -1, -1
			stats.Detached++
			continue
		}
		if !dirty[u] {
			out.depth[u] = dist[u] // equal by construction; keep explicit
			continue
		}
		// Re-attach at min-hop depth with the same tie-break rule as the
		// builders: first adjacency-order candidate (canonical) or a uniform
		// draw when an rng is supplied.
		var candidates []int
		for _, v := range comm.Neighbors(u) {
			if dist[v] == dist[u]-1 {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			return nil, RepairStats{}, fmt.Errorf("route: node %d at depth %d has no parent candidate", u, dist[u])
		}
		pick := candidates[0]
		if rng != nil {
			// Keep the old parent when it is still a valid min-hop choice:
			// fewer reroutes means fewer disturbed queues.
			kept := false
			for _, v := range candidates {
				if v == f.parent[u] {
					pick, kept = v, true
					break
				}
			}
			if !kept {
				pick = candidates[rng.Intn(len(candidates))]
			}
		}
		if pick != f.parent[u] {
			stats.Reparented++
		}
		out.parent[u] = pick
		out.depth[u] = dist[u]
	}
	out.resolveGateways()
	return out, stats, nil
}

func rebuildFallback(comm *graph.Graph, gateways []int, rng *rand.Rand) (*Forest, RepairStats, error) {
	out, err := BuildForestPartial(comm, gateways, rng)
	if err != nil {
		return nil, RepairStats{}, err
	}
	return out, RepairStats{Rebuilt: true, Detached: out.NumDetached()}, nil
}

func sameGateways(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
