package route

import (
	"math/rand"
	"testing"

	"scream/internal/graph"
)

func TestBalancedForestKeepsMinHopDepths(t *testing.T) {
	g := gridGraph(6, 6)
	rng := rand.New(rand.NewSource(3))
	demand := make([]int, 36)
	for i := range demand {
		demand[i] = 1 + rng.Intn(9)
	}
	f, err := BuildForestBalanced(g, []int{0, 35}, demand, rng)
	if err != nil {
		t.Fatal(err)
	}
	dist, _ := g.MultiSourceBFS([]int{0, 35})
	for u := 0; u < 36; u++ {
		if f.IsGateway(u) {
			continue
		}
		if f.Depth(u) != dist[u] {
			t.Errorf("node %d depth %d, want min-hop %d", u, f.Depth(u), dist[u])
		}
		p := f.Parent(u)
		if !g.HasEdge(u, p) || dist[p] != dist[u]-1 {
			t.Errorf("node %d has invalid parent %d", u, p)
		}
	}
}

func TestBalancedForestImprovesGatewayBalance(t *testing.T) {
	// Averaged over seeds, balanced construction should not have a worse
	// max-gateway-load than plain random tie-breaking.
	g := gridGraph(6, 6)
	plainTotal, balTotal := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		rng1 := rand.New(rand.NewSource(seed))
		rng2 := rand.New(rand.NewSource(seed))
		demand := make([]int, 36)
		for i := range demand {
			demand[i] = 1 + rng1.Intn(9)
		}
		plain, err := BuildForest(g, []int{0, 5, 30, 35}, rng1)
		if err != nil {
			t.Fatal(err)
		}
		bal, err := BuildForestBalanced(g, []int{0, 5, 30, 35}, demand, rng2)
		if err != nil {
			t.Fatal(err)
		}
		aggP, err := plain.AggregateDemand(demand)
		if err != nil {
			t.Fatal(err)
		}
		aggB, err := bal.AggregateDemand(demand)
		if err != nil {
			t.Fatal(err)
		}
		plainTotal += MaxGatewayLoad(plain, aggP)
		balTotal += MaxGatewayLoad(bal, aggB)
	}
	if balTotal > plainTotal {
		t.Errorf("balanced forests should not increase max gateway load: %d vs %d", balTotal, plainTotal)
	}
	t.Logf("max-gateway-load totals over 10 seeds: plain %d, balanced %d", plainTotal, balTotal)
}

func TestBalancedForestFlowConservation(t *testing.T) {
	g := gridGraph(5, 5)
	rng := rand.New(rand.NewSource(7))
	demand := make([]int, 25)
	total := 0
	for i := range demand {
		demand[i] = 1 + rng.Intn(5)
	}
	f, err := BuildForestBalanced(g, []int{12}, demand, rng)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := f.AggregateDemand(demand)
	if err != nil {
		t.Fatal(err)
	}
	in := 0
	for _, c := range f.Children()[12] {
		in += agg[c]
	}
	for u := 0; u < 25; u++ {
		if u != 12 {
			total += demand[u]
		}
	}
	if in != total {
		t.Errorf("gateway receives %d, nodes generate %d", in, total)
	}
}

func TestBalancedForestNilDemand(t *testing.T) {
	g := gridGraph(3, 3)
	f, err := BuildForestBalanced(g, []int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 9 {
		t.Error("forest malformed with nil demand")
	}
}

func TestBalancedForestErrors(t *testing.T) {
	disc := graph.New(3)
	disc.AddUndirected(0, 1)
	if _, err := BuildForestBalanced(disc, []int{0}, nil, nil); err == nil {
		t.Error("unreachable node should fail")
	}
	g := gridGraph(2, 2)
	if _, err := BuildForestBalanced(g, nil, nil, nil); err == nil {
		t.Error("no gateways should fail")
	}
}
