// Package route builds the gateway-rooted routing forest of the paper
// (Section II): every non-gateway node joins the tree of its minimum-hop
// gateway (ties broken randomly), traffic flows along reverse trees toward
// the gateways, and the demand on a node's upstream edge is the aggregated
// demand of its subtree.
package route

import (
	"fmt"
	"math/rand"

	"scream/internal/graph"
	"scream/internal/phys"
)

// Forest is a gateway-rooted routing forest over nodes 0..n-1.
//
// A node may be *detached*: not a gateway and not attached to any tree
// (parent, gateway and depth all -1). Detached nodes appear when a forest is
// built or repaired over a partitioned network — their traffic is stranded
// until the topology reconnects. BuildForest never detaches (it errors
// instead); BuildForestPartial and Repair do.
type Forest struct {
	parent   []int  // -1 for gateways and detached nodes
	depth    []int  // 0 for gateways, -1 for detached nodes
	gateway  []int  // root gateway of each node's tree, -1 for detached
	isGW     []bool // explicit gateway marks (parent == -1 is ambiguous)
	gateways []int
}

// BuildForest constructs the routing forest on the communication graph comm
// (symmetric). Every node picks a parent among its neighbors one hop closer
// to the nearest gateway; ties are broken uniformly at random when rng is
// non-nil and toward the lowest node ID otherwise. An error is returned when
// some node cannot reach any gateway.
func BuildForest(comm *graph.Graph, gateways []int, rng *rand.Rand) (*Forest, error) {
	return buildForest(comm, gateways, rng, false)
}

// BuildForestPartial is BuildForest for networks that may be partitioned:
// nodes that cannot reach any gateway (including the degenerate case of an
// empty gateway list) are left detached instead of failing the build. It is
// the full-rebuild reference the incremental Repair is checked against.
func BuildForestPartial(comm *graph.Graph, gateways []int, rng *rand.Rand) (*Forest, error) {
	return buildForest(comm, gateways, rng, true)
}

func buildForest(comm *graph.Graph, gateways []int, rng *rand.Rand, partial bool) (*Forest, error) {
	n := comm.NumNodes()
	if len(gateways) == 0 && !partial {
		return nil, fmt.Errorf("route: need at least one gateway")
	}
	isGW := make([]bool, n)
	for _, g := range gateways {
		if g < 0 || g >= n {
			return nil, fmt.Errorf("route: gateway %d out of range", g)
		}
		if isGW[g] {
			return nil, fmt.Errorf("route: duplicate gateway %d", g)
		}
		isGW[g] = true
	}

	dist, _ := comm.MultiSourceBFS(gateways)
	f := &Forest{
		parent:   make([]int, n),
		depth:    make([]int, n),
		gateway:  make([]int, n),
		isGW:     isGW,
		gateways: append([]int(nil), gateways...),
	}
	for u := 0; u < n; u++ {
		f.parent[u] = -1
		f.gateway[u] = -1
		f.depth[u] = -1
	}
	for _, g := range gateways {
		f.gateway[g] = g
		f.depth[g] = 0
	}
	for u := 0; u < n; u++ {
		if isGW[u] {
			continue
		}
		if dist[u] < 0 {
			if partial {
				continue // detached: unreachable under the current topology
			}
			return nil, fmt.Errorf("route: node %d cannot reach any gateway", u)
		}
		var candidates []int
		for _, v := range comm.Neighbors(u) {
			if dist[v] == dist[u]-1 {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("route: node %d has no parent candidate", u)
		}
		pick := candidates[0]
		if rng != nil {
			pick = candidates[rng.Intn(len(candidates))]
		}
		f.parent[u] = pick
		f.depth[u] = dist[u]
	}
	f.resolveGateways()
	return f, nil
}

// resolveGateways recomputes the gateway of every node by walking its parent
// chain, memoizing along the way so the total work is O(n). Detached nodes
// keep gateway -1.
func (f *Forest) resolveGateways() {
	const unresolved = -2
	for u := range f.parent {
		switch {
		case f.depth[u] < 0:
			f.gateway[u] = -1
		case f.parent[u] < 0:
			f.gateway[u] = u
		default:
			f.gateway[u] = unresolved
		}
	}
	var chain []int
	for u := range f.parent {
		if f.gateway[u] != unresolved {
			continue
		}
		chain = chain[:0]
		v := u
		for f.gateway[v] == unresolved {
			chain = append(chain, v)
			v = f.parent[v]
		}
		g := f.gateway[v]
		for _, w := range chain {
			f.gateway[w] = g
		}
	}
}

// NumNodes returns the number of nodes in the forest.
func (f *Forest) NumNodes() int { return len(f.parent) }

// Parent returns u's parent, or -1 if u is a gateway.
func (f *Forest) Parent(u int) int { return f.parent[u] }

// Depth returns u's hop distance to its gateway, or -1 when u is detached.
func (f *Forest) Depth(u int) int { return f.depth[u] }

// Gateway returns the root gateway of u's tree, or -1 when u is detached.
func (f *Forest) Gateway(u int) int { return f.gateway[u] }

// Gateways returns the gateway node IDs.
func (f *Forest) Gateways() []int { return append([]int(nil), f.gateways...) }

// IsGateway reports whether u is a gateway.
func (f *Forest) IsGateway(u int) bool {
	if f.isGW != nil {
		return f.isGW[u]
	}
	return f.parent[u] == -1
}

// IsDetached reports whether u is attached to no tree (unreachable from
// every gateway when the forest was built or repaired).
func (f *Forest) IsDetached(u int) bool { return f.depth[u] < 0 }

// NumDetached returns the number of detached nodes.
func (f *Forest) NumDetached() int {
	n := 0
	for _, d := range f.depth {
		if d < 0 {
			n++
		}
	}
	return n
}

// EdgeOf returns the upstream edge owned by node u (data flows from u to its
// parent). ok is false for gateways, which own no edge — the one-to-one
// node/edge mapping of Section II.
func (f *Forest) EdgeOf(u int) (l phys.Link, ok bool) {
	p := f.parent[u]
	if p < 0 {
		return phys.Link{}, false
	}
	return phys.Link{From: u, To: p}, true
}

// Links returns every forest edge as a directed link, ordered by owner node
// ID. Entry i corresponds to the i-th *attached* non-gateway node in ID
// order: detached nodes own no edge and are skipped.
func (f *Forest) Links() []phys.Link {
	links := make([]phys.Link, 0, len(f.parent)-len(f.gateways))
	for u := range f.parent {
		if l, ok := f.EdgeOf(u); ok {
			links = append(links, l)
		}
	}
	return links
}

// Children returns the children lists of every node.
func (f *Forest) Children() [][]int {
	ch := make([][]int, len(f.parent))
	for u, p := range f.parent {
		if p >= 0 {
			ch[p] = append(ch[p], u)
		}
	}
	return ch
}

// AggregateDemand returns, for each node u, the demand on u's upstream edge:
// the sum of nodeDemand over the subtree rooted at u. Gateways aggregate to
// zero (they own no edge; their generated demand, if any, needs no wireless
// hop). nodeDemand must have one entry per node.
func (f *Forest) AggregateDemand(nodeDemand []int) ([]int, error) {
	n := len(f.parent)
	if len(nodeDemand) != n {
		return nil, fmt.Errorf("route: %d demands for %d nodes", len(nodeDemand), n)
	}
	agg := make([]int, n)
	// Process nodes in decreasing depth so children are done before parents.
	// Counting sort by depth (depths are small); detached nodes own no edge
	// and aggregate nothing.
	maxDepth := 0
	for _, d := range f.depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	buckets := make([][]int, maxDepth+1)
	for u := 0; u < n; u++ {
		if f.depth[u] < 0 {
			continue
		}
		buckets[f.depth[u]] = append(buckets[f.depth[u]], u)
	}
	for d := maxDepth; d >= 1; d-- {
		for _, u := range buckets[d] {
			if nodeDemand[u] < 0 {
				return nil, fmt.Errorf("route: node %d has negative demand %d", u, nodeDemand[u])
			}
			agg[u] += nodeDemand[u]
			p := f.parent[u]
			if p >= 0 {
				agg[p] += agg[u]
			}
		}
	}
	// Gateways own no edge.
	for _, g := range f.gateways {
		agg[g] = 0
	}
	return agg, nil
}

// TotalDemand returns the sum of per-edge aggregated demands — the TD term
// of Theorem 5, equal to the length of a fully serialized (linear) schedule.
func TotalDemand(agg []int) int {
	total := 0
	for _, d := range agg {
		total += d
	}
	return total
}
