package route

import (
	"math/rand"

	"scream/internal/graph"
)

// BuildForestBalanced is BuildForest with a load-aware tie-break: among the
// min-hop parent candidates, a node picks the one whose subtree currently
// carries the least aggregated demand (ties broken randomly/by ID). Hop
// distances — and therefore the paper's minimum-hop routing policy — are
// unchanged; only the tie-breaks differ. Balancing the trees evens the
// per-gateway load, which the complexity analysis of Section IV-D rewards:
// with balanced trees the aggregated traffic per level is O(n), shrinking
// TD and with it every protocol's round count.
//
// Nodes are attached in BFS order (closest to the gateways first) so
// subtree loads are known when deeper nodes choose parents.
func BuildForestBalanced(comm *graph.Graph, gateways []int, nodeDemand []int, rng *rand.Rand) (*Forest, error) {
	n := comm.NumNodes()
	if len(nodeDemand) != n {
		nodeDemand = make([]int, n) // treat missing demands as uniform zero
	}
	// First build an arbitrary min-hop forest to validate inputs and get
	// distances.
	base, err := BuildForest(comm, gateways, rng)
	if err != nil {
		return nil, err
	}
	dist, _ := comm.MultiSourceBFS(gateways)

	f := &Forest{
		parent:   make([]int, n),
		depth:    make([]int, n),
		gateway:  make([]int, n),
		isGW:     make([]bool, n),
		gateways: append([]int(nil), gateways...),
	}
	for u := 0; u < n; u++ {
		f.parent[u] = -1
		f.gateway[u] = -1
	}
	for _, g := range gateways {
		f.gateway[g] = g
		f.isGW[g] = true
	}

	// load[u]: demand currently routed through u (its own plus attached
	// descendants'). Updated as nodes attach, walking up to the root.
	load := make([]int, n)
	order := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if dist[u] > 0 {
			order = append(order, u)
		}
	}
	// Counting sort by distance: parents attach before children.
	maxD := 0
	for _, u := range order {
		if dist[u] > maxD {
			maxD = dist[u]
		}
	}
	buckets := make([][]int, maxD+1)
	for _, u := range order {
		buckets[dist[u]] = append(buckets[dist[u]], u)
	}
	for d := 1; d <= maxD; d++ {
		level := buckets[d]
		if rng != nil {
			rng.Shuffle(len(level), func(i, j int) { level[i], level[j] = level[j], level[i] })
		}
		for _, u := range level {
			best, bestLoad := -1, 0
			for _, v := range comm.Neighbors(u) {
				if dist[v] != d-1 {
					continue
				}
				if best < 0 || load[v] < bestLoad || (load[v] == bestLoad && v < best) {
					best, bestLoad = v, load[v]
				}
			}
			if best < 0 {
				// Unreachable should have been caught by BuildForest.
				return base, nil
			}
			f.parent[u] = best
			f.depth[u] = d
			// Propagate u's demand up the chosen chain.
			for w := u; w >= 0; w = f.parent[w] {
				load[w] += nodeDemand[u]
			}
		}
	}
	for u := 0; u < n; u++ {
		v := u
		for f.parent[v] >= 0 {
			v = f.parent[v]
		}
		f.gateway[u] = v
	}
	return f, nil
}

// MaxGatewayLoad returns the largest total demand entering any single
// gateway — the balance metric BuildForestBalanced minimizes greedily.
func MaxGatewayLoad(f *Forest, agg []int) int {
	children := f.Children()
	max := 0
	for _, g := range f.Gateways() {
		total := 0
		for _, c := range children[g] {
			total += agg[c]
		}
		if total > max {
			max = total
		}
	}
	return max
}
