package route

// Property tests for incremental forest repair: across fuzzed fail/recover
// sequences, Repair must produce bit-identical forests to the canonical
// full rebuild (BuildForestPartial with nil rng), and the partition /
// gateway-change fallbacks must engage exactly when they should.

import (
	"math/rand"
	"testing"

	"scream/internal/graph"
)

// latticeGraph builds the rows x cols 4-neighbor lattice. Adjacency lists
// come out in ascending node order — the canonical order the builders'
// tie-breaking assumes.
func latticeGraph(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				g.AddUndirected(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				g.AddUndirected(id(r, c), id(r, c+1))
			}
		}
	}
	return sortedClone(g)
}

// sortedClone rebuilds g with every adjacency list in ascending order,
// matching topo's edge-construction order.
func sortedClone(g *graph.Graph) *graph.Graph {
	n := g.NumNodes()
	out := graph.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && g.HasEdge(u, v) {
				out.AddEdge(u, v)
			}
		}
	}
	return out
}

// induced returns the subgraph of g restricted to alive nodes, preserving
// ascending adjacency order. Dead nodes stay present but isolated, exactly
// like a silenced radio in the rebuilt topo graphs.
func induced(g *graph.Graph, alive []bool) *graph.Graph {
	n := g.NumNodes()
	out := graph.New(n)
	for u := 0; u < n; u++ {
		if !alive[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if alive[v] {
				out.AddEdge(u, v)
			}
		}
	}
	return out
}

func assertForestsEqual(t *testing.T, got, want *Forest, what string) {
	t.Helper()
	for u := 0; u < want.NumNodes(); u++ {
		if got.Parent(u) != want.Parent(u) {
			t.Fatalf("%s: parent of %d: %d vs rebuild %d", what, u, got.Parent(u), want.Parent(u))
		}
		if got.Depth(u) != want.Depth(u) {
			t.Fatalf("%s: depth of %d: %d vs rebuild %d", what, u, got.Depth(u), want.Depth(u))
		}
		if got.Gateway(u) != want.Gateway(u) {
			t.Fatalf("%s: gateway of %d: %d vs rebuild %d", what, u, got.Gateway(u), want.Gateway(u))
		}
		if got.IsGateway(u) != want.IsGateway(u) {
			t.Fatalf("%s: gateway mark of %d differs", what, u)
		}
	}
}

// aliveGateways filters the configured gateway set to currently-alive nodes.
func aliveGateways(gws []int, alive []bool) []int {
	var out []int
	for _, g := range gws {
		if alive[g] {
			out = append(out, g)
		}
	}
	return out
}

// changedSet returns the toggled node plus its full-graph neighborhood —
// every node whose incident edge set may differ after the toggle.
func changedSet(full *graph.Graph, u int) []int {
	out := []int{u}
	out = append(out, full.Neighbors(u)...)
	return out
}

// TestRepairMatchesRebuildFuzzed drives a long random fail/recover sequence
// over a lattice (plus chords, so tie-breaks and multi-path repairs really
// occur) and asserts after every event that the incrementally repaired
// forest is bit-identical to the canonical full rebuild.
func TestRepairMatchesRebuildFuzzed(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 6, 6
		full := latticeGraph(rows, cols)
		// Sprinkle chords to create tie-break-rich neighborhoods.
		n := rows * cols
		base := graph.New(n)
		for u := 0; u < n; u++ {
			for _, v := range full.Neighbors(u) {
				base.AddEdge(u, v)
			}
		}
		for i := 0; i < 12; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				base.AddUndirected(u, v)
			}
		}
		base = sortedClone(base)
		gws := []int{0, n - 1}

		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		cur, err := BuildForestPartial(induced(base, alive), aliveGateways(gws, alive), nil)
		if err != nil {
			t.Fatal(err)
		}
		rebuilds, partitions := 0, 0
		for step := 0; step < 60; step++ {
			u := rng.Intn(n)
			alive[u] = !alive[u]
			comm := induced(base, alive)
			agws := aliveGateways(gws, alive)

			want, err := BuildForestPartial(comm, agws, nil)
			if err != nil {
				t.Fatalf("seed %d step %d: rebuild: %v", seed, step, err)
			}
			got, stats, err := cur.Repair(comm, agws, alive, changedSet(base, u), nil)
			if err != nil {
				t.Fatalf("seed %d step %d: repair: %v", seed, step, err)
			}
			assertForestsEqual(t, got, want, "repair vs rebuild")
			if stats.Detached != want.NumDetached() && !stats.Rebuilt {
				t.Fatalf("seed %d step %d: stats.Detached=%d, forest has %d", seed, step, stats.Detached, want.NumDetached())
			}
			if stats.Rebuilt {
				rebuilds++
			}
			if want.NumDetached() > 0 {
				partitions++
			}
			cur = got
		}
		if rebuilds == 0 {
			t.Errorf("seed %d: fallback rebuild never triggered across 60 events", seed)
		}
		if partitions == 0 {
			t.Errorf("seed %d: fuzz never partitioned the network; weaken the topology", seed)
		}
	}
}

// TestRepairRandomTieBreaksStayMinHop checks the rng-mode contract: depths
// and the detached set still match the canonical rebuild, every parent is a
// valid min-hop choice, and surviving parents are kept (route churn is
// limited to genuinely dirty nodes).
func TestRepairRandomTieBreaksStayMinHop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	full := latticeGraph(7, 7)
	n := 49
	gws := []int{0, 24, 48}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	cur, err := BuildForest(induced(full, alive), gws, rng)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		u := rng.Intn(n)
		alive[u] = !alive[u]
		comm := induced(full, alive)
		agws := aliveGateways(gws, alive)
		want, err := BuildForestPartial(comm, agws, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := cur.Repair(comm, agws, alive, changedSet(full, u), rng)
		if err != nil {
			t.Fatal(err)
		}
		reparented := 0
		for v := 0; v < n; v++ {
			if got.Depth(v) != want.Depth(v) {
				t.Fatalf("step %d: depth of %d: %d, rebuild %d", step, v, got.Depth(v), want.Depth(v))
			}
			if got.IsDetached(v) != want.IsDetached(v) {
				t.Fatalf("step %d: detachment of %d differs from rebuild", step, v)
			}
			if p := got.Parent(v); p >= 0 {
				if !comm.HasEdge(v, p) {
					t.Fatalf("step %d: parent %d of %d is not a neighbor", step, p, v)
				}
				if got.Depth(p) != got.Depth(v)-1 {
					t.Fatalf("step %d: parent %d of %d is not one hop closer", step, p, v)
				}
			}
			if got.Parent(v) != cur.Parent(v) {
				reparented++
			}
		}
		if !stats.Rebuilt && reparented > stats.Dirty {
			t.Fatalf("step %d: %d nodes reparented but only %d dirty", step, reparented, stats.Dirty)
		}
		cur = got
	}
}

// TestRepairPartitionFallback carves a corner subtree off a lattice and
// asserts the repair falls back to a full rebuild, detaching exactly the
// stranded component.
func TestRepairPartitionFallback(t *testing.T) {
	// 5x5 lattice, gateway at the far corner. Killing nodes 1 and 5 severs
	// node 0 from everything else.
	full := latticeGraph(5, 5)
	n := 25
	gws := []int{24}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	cur, err := BuildForestPartial(induced(full, alive), gws, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{1, 5} {
		alive[u] = false
		comm := induced(full, alive)
		got, stats, err := cur.Repair(comm, gws, alive, changedSet(full, u), nil)
		if err != nil {
			t.Fatal(err)
		}
		if u == 5 { // second cut: node 0 is now stranded
			if !stats.Rebuilt {
				t.Fatal("partition did not trigger the rebuild fallback")
			}
			if !got.IsDetached(0) {
				t.Fatal("stranded node 0 not detached")
			}
			if got.NumDetached() != 3 { // 0 plus the two dead nodes
				t.Fatalf("detached %d nodes, want 3", got.NumDetached())
			}
		}
		cur = got
	}
}

// TestRepairGatewayChangeFallsBack kills a gateway and asserts the repair
// rebuilds against the surviving gateway set.
func TestRepairGatewayChangeFallsBack(t *testing.T) {
	full := latticeGraph(4, 4)
	n := 16
	gws := []int{0, 15}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	cur, err := BuildForestPartial(induced(full, alive), gws, nil)
	if err != nil {
		t.Fatal(err)
	}
	alive[0] = false
	comm := induced(full, alive)
	agws := aliveGateways(gws, alive)
	got, stats, err := cur.Repair(comm, agws, alive, changedSet(full, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Rebuilt {
		t.Fatal("gateway death did not trigger the rebuild fallback")
	}
	want, err := BuildForestPartial(comm, agws, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertForestsEqual(t, got, want, "post-gateway-death")
	if got.IsGateway(0) {
		t.Fatal("dead gateway still marked as gateway")
	}
	for u := 1; u < n; u++ {
		if !got.IsDetached(u) && got.Gateway(u) != 15 {
			t.Fatalf("node %d routed to gateway %d, want 15", u, got.Gateway(u))
		}
	}
}

// BenchmarkForestRepair measures one single-failure repair on a 32x32
// lattice against the full rebuild it replaces (tracked by benchguard in
// BENCH_BASELINE.json).
func BenchmarkForestRepair(b *testing.B) {
	rows, cols := 32, 32
	full := latticeGraph(rows, cols)
	n := rows * cols
	gws := []int{0, cols - 1, n - cols, n - 1}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	base, err := BuildForestPartial(full, gws, nil)
	if err != nil {
		b.Fatal(err)
	}
	victim := (rows/2)*cols + cols/2
	alive[victim] = false
	comm := induced(full, alive)
	changed := changedSet(full, victim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := base.Repair(comm, gws, alive, changed, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestRebuild is the full-rebuild baseline for
// BenchmarkForestRepair.
func BenchmarkForestRebuild(b *testing.B) {
	rows, cols := 32, 32
	full := latticeGraph(rows, cols)
	n := rows * cols
	gws := []int{0, cols - 1, n - cols, n - 1}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	alive[(rows/2)*cols+cols/2] = false
	comm := induced(full, alive)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildForestPartial(comm, gws, nil); err != nil {
			b.Fatal(err)
		}
	}
}
