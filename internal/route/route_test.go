package route

import (
	"math/rand"
	"testing"

	"scream/internal/graph"
)

// gridGraph builds an r x c undirected grid communication graph.
func gridGraph(r, c int) *graph.Graph {
	g := graph.New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddUndirected(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				g.AddUndirected(id(i, j), id(i+1, j))
			}
		}
	}
	return g
}

func TestBuildForestSingleGateway(t *testing.T) {
	g := gridGraph(4, 4)
	f, err := BuildForest(g, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsGateway(0) || f.Parent(0) != -1 || f.Depth(0) != 0 {
		t.Error("gateway bookkeeping wrong")
	}
	if f.NumNodes() != 16 {
		t.Errorf("NumNodes = %d", f.NumNodes())
	}
	// Node 15 (corner (3,3)) is 6 hops from node 0.
	if f.Depth(15) != 6 {
		t.Errorf("depth(15) = %d, want 6", f.Depth(15))
	}
	// Every non-gateway's parent must be exactly one hop closer.
	for u := 1; u < 16; u++ {
		p := f.Parent(u)
		if p < 0 {
			t.Fatalf("node %d has no parent", u)
		}
		if f.Depth(p) != f.Depth(u)-1 {
			t.Errorf("node %d depth %d but parent %d depth %d", u, f.Depth(u), p, f.Depth(p))
		}
		if !g.HasEdge(u, p) {
			t.Errorf("parent edge %d-%d not in communication graph", u, p)
		}
		if f.Gateway(u) != 0 {
			t.Errorf("gateway(%d) = %d, want 0", u, f.Gateway(u))
		}
	}
}

func TestBuildForestMultiGateway(t *testing.T) {
	g := gridGraph(4, 4)
	gws := []int{0, 15}
	f, err := BuildForest(g, gws, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Gateways(); len(got) != 2 || got[0] != 0 || got[1] != 15 {
		t.Errorf("Gateways = %v", got)
	}
	// Each node joins the tree of one of its nearest gateways.
	dist0 := g.BFS(0)
	dist15 := g.BFS(15)
	for u := 0; u < 16; u++ {
		if f.IsGateway(u) {
			continue
		}
		min := dist0[u]
		if dist15[u] < min {
			min = dist15[u]
		}
		if f.Depth(u) != min {
			t.Errorf("node %d depth %d, want min-gateway dist %d", u, f.Depth(u), min)
		}
		gw := f.Gateway(u)
		var gwDist int
		if gw == 0 {
			gwDist = dist0[u]
		} else {
			gwDist = dist15[u]
		}
		if gwDist != min {
			t.Errorf("node %d joined gateway %d at dist %d, nearest is %d", u, gw, gwDist, min)
		}
	}
}

func TestBuildForestErrors(t *testing.T) {
	g := gridGraph(2, 2)
	if _, err := BuildForest(g, nil, nil); err == nil {
		t.Error("no gateways should fail")
	}
	if _, err := BuildForest(g, []int{7}, nil); err == nil {
		t.Error("out-of-range gateway should fail")
	}
	if _, err := BuildForest(g, []int{0, 0}, nil); err == nil {
		t.Error("duplicate gateway should fail")
	}
	disc := graph.New(3)
	disc.AddUndirected(0, 1)
	if _, err := BuildForest(disc, []int{0}, nil); err == nil {
		t.Error("unreachable node should fail")
	}
}

func TestRandomTieBreakReproducible(t *testing.T) {
	g := gridGraph(5, 5)
	f1, err := BuildForest(g, []int{0}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := BuildForest(g, []int{0}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 25; u++ {
		if f1.Parent(u) != f2.Parent(u) {
			t.Fatalf("same seed gave different forests at node %d", u)
		}
	}
	// Different seeds should (almost surely) differ somewhere on a 5x5 grid.
	f3, err := BuildForest(g, []int{0}, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := 0; u < 25; u++ {
		if f1.Parent(u) != f3.Parent(u) {
			same = false
			break
		}
	}
	if same {
		t.Log("different seeds gave identical forest; unlikely but not an error")
	}
}

func TestEdgeOfAndLinks(t *testing.T) {
	g := gridGraph(3, 3)
	f, err := BuildForest(g, []int{4}, nil) // center gateway
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.EdgeOf(4); ok {
		t.Error("gateway must own no edge")
	}
	links := f.Links()
	if len(links) != 8 {
		t.Fatalf("want 8 links, got %d", len(links))
	}
	for _, l := range links {
		if l.To != f.Parent(l.From) {
			t.Errorf("link %v does not point at parent", l)
		}
	}
}

func TestChildren(t *testing.T) {
	g := gridGraph(1, 4) // path 0-1-2-3
	f, err := BuildForest(g, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch := f.Children()
	if len(ch[0]) != 1 || ch[0][0] != 1 {
		t.Errorf("children of 0 = %v", ch[0])
	}
	if len(ch[3]) != 0 {
		t.Errorf("leaf should have no children, got %v", ch[3])
	}
}

func TestAggregateDemandPath(t *testing.T) {
	g := gridGraph(1, 4) // 0-1-2-3, gateway 0
	f, err := BuildForest(g, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := f.AggregateDemand([]int{100, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Edge of node 3 carries 3; node 2 carries 2+3; node 1 carries 1+2+3.
	want := []int{0, 6, 5, 3}
	for u, w := range want {
		if agg[u] != w {
			t.Errorf("agg[%d] = %d, want %d", u, agg[u], w)
		}
	}
	if TotalDemand(agg) != 14 {
		t.Errorf("TotalDemand = %d, want 14", TotalDemand(agg))
	}
}

func TestAggregateDemandTree(t *testing.T) {
	// Star around gateway: every edge carries exactly its own demand.
	g := graph.New(5)
	for u := 1; u < 5; u++ {
		g.AddUndirected(0, u)
	}
	f, err := BuildForest(g, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := f.AggregateDemand([]int{9, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u < 5; u++ {
		if agg[u] != u {
			t.Errorf("agg[%d] = %d, want %d", u, agg[u], u)
		}
	}
	if agg[0] != 0 {
		t.Error("gateway aggregate must be zero")
	}
}

func TestAggregateDemandErrors(t *testing.T) {
	g := gridGraph(1, 3)
	f, err := BuildForest(g, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AggregateDemand([]int{1, 2}); err == nil {
		t.Error("wrong demand length should fail")
	}
	if _, err := f.AggregateDemand([]int{0, -1, 2}); err == nil {
		t.Error("negative demand should fail")
	}
}

func TestAggregateConservation(t *testing.T) {
	// Sum of demands entering each gateway equals sum of non-gateway node
	// demands in its tree (flow conservation).
	g := gridGraph(6, 6)
	rng := rand.New(rand.NewSource(17))
	f, err := BuildForest(g, []int{0, 35}, rng)
	if err != nil {
		t.Fatal(err)
	}
	demand := make([]int, 36)
	for i := range demand {
		demand[i] = rng.Intn(10) + 1
	}
	agg, err := f.AggregateDemand(demand)
	if err != nil {
		t.Fatal(err)
	}
	ch := f.Children()
	for _, gw := range f.Gateways() {
		in := 0
		for _, c := range ch[gw] {
			in += agg[c]
		}
		want := 0
		for u := 0; u < 36; u++ {
			if !f.IsGateway(u) && f.Gateway(u) == gw {
				want += demand[u]
			}
		}
		if in != want {
			t.Errorf("gateway %d receives %d, tree generates %d", gw, in, want)
		}
	}
}
