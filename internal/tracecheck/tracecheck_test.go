package tracecheck

import (
	"encoding/json"
	"strings"
	"testing"

	"scream/internal/obs"
)

// goodTrace emits a small, fully consistent v2 trace through the real tracer:
// one run, two epochs, each with a schedule_build holding slot spans and a
// protocol event whose measured counts satisfy the timing identity for
// scream_slot=10, hs_slot=4.
func goodTrace(t *testing.T) []Event {
	t.Helper()
	var sb strings.Builder
	tr := obs.NewTracer(&sb)
	run := tr.Begin("run", 0,
		obs.N("nodes", 4), obs.N("links", 3), obs.S("sched", "fdd"),
		obs.I("horizon", 1000), obs.I("scream_slot", 10), obs.I("hs_slot", 4))

	emitEpoch := func(idx int, begin, end int64, slots int, cum [3]int64, backlog int) {
		ep := tr.Begin("epoch", begin, obs.N("epoch", idx), obs.N("backlog", backlog), obs.N("demand", 6))
		bld := tr.Begin("schedule_build", begin, obs.S("sched", "fdd"))
		tr.SetTimeBase(begin)
		for r := 0; r < slots; r++ {
			id := tr.Begin("slot", begin+int64(r), obs.N("round", r))
			tr.Emit("handshake", obs.I("t", begin+int64(r)), obs.N("round", r),
				obs.N("links", 2), obs.N("ok", 2), obs.B("veto", false))
			tr.End(id, begin+int64(r)+1, obs.N("links", 2))
		}
		// exec = sm*k*ss + hm*hs = 3*2*10 + 5*4 = 80
		tr.Emit("protocol", obs.I("t", begin+80), obs.S("variant", "FDD"),
			obs.N("rounds", slots), obs.N("steps", slots), obs.N("elections", slots),
			obs.N("screams", 6), obs.I("exec", 80),
			obs.N("screams_measured", 3), obs.N("handshakes_measured", 5), obs.N("k", 2))
		tr.End(bld, begin+80, obs.N("slots", slots), obs.I("ctrl", 80))
		tr.End(ep, end, obs.I("offered", cum[0]), obs.I("delivered", cum[1]),
			obs.I("dropped", cum[2]), obs.N("backlog", backlog))
	}
	emitEpoch(0, 100, 400, 2, [3]int64{10, 6, 1}, 3)
	emitEpoch(1, 400, 900, 3, [3]int64{20, 14, 2}, 4)

	tr.End(run, 1000, obs.N("offered", 20), obs.N("delivered", 14),
		obs.N("dropped", 2), obs.N("lost", 0), obs.N("backlog", 4),
		obs.N("epochs", 2), obs.I("delay_p50", 5000), obs.I("delay_p95", 9000))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestValidateCleanTrace(t *testing.T) {
	events := goodTrace(t)
	if vs := Validate(events); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("unexpected violation: %s", v)
		}
	}
}

// corrupt re-serializes the good trace with one line rewritten, re-parses it
// and returns the violations.
func corrupt(t *testing.T, rewrite func(e *Event)) []Violation {
	t.Helper()
	events := goodTrace(t)
	for i := range events {
		rewrite(&events[i])
	}
	return Validate(events)
}

func TestValidateDetections(t *testing.T) {
	cases := []struct {
		name    string
		rewrite func(e *Event)
		want    string
	}{
		{"conservation", func(e *Event) {
			if e.Ev == "span_end" && e.Name == "run" {
				e.Fields["delivered"] = int64(13)
			}
		}, "conservation violated"},
		{"timing identity", func(e *Event) {
			if e.Ev == "protocol" {
				e.Fields["exec"] = int64(81)
			}
		}, "timing identity violated"},
		{"epoch index gap", func(e *Event) {
			if e.Ev == "span_begin" && e.Name == "epoch" {
				e.Fields["epoch"] = int64(7)
			}
		}, "epoch span index"},
		{"rounds vs slots", func(e *Event) {
			if e.Ev == "protocol" {
				e.Fields["rounds"] = int64(9)
			}
		}, "sealed"},
		{"end before begin", func(e *Event) {
			if e.Ev == "span_end" && e.Name == "run" {
				e.T = -5
			}
		}, "before its begin"},
		{"bad version", func(e *Event) {
			if e.Ev == "protocol" {
				e.V = 1
			}
		}, "schema version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := corrupt(t, tc.rewrite)
			if len(vs) == 0 {
				t.Fatal("corruption not detected")
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.Msg, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no violation matching %q in %v", tc.want, vs)
			}
		})
	}
}

func TestValidateCumulativeMonotone(t *testing.T) {
	events := goodTrace(t)
	// Make the second epoch's cumulative delivered go backwards.
	seen := 0
	for i := range events {
		e := &events[i]
		if e.Ev == "span_end" && e.Name == "epoch" {
			seen++
			if seen == 2 {
				e.Fields["delivered"] = int64(3) // below epoch 0's 6
				e.Fields["offered"] = int64(20)
			}
		}
	}
	vs := Validate(events)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "decreased across epochs") {
			found = true
		}
	}
	if !found {
		t.Fatalf("monotonicity break not detected: %v", vs)
	}
}

func TestValidateUnclosedSpan(t *testing.T) {
	var sb strings.Builder
	tr := obs.NewTracer(&sb)
	tr.Begin("run", 0)
	tr.Flush()
	events, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	vs := Validate(events)
	if len(vs) == 0 || !strings.Contains(vs[0].Msg, "never ended") {
		t.Fatalf("unclosed span not detected: %v", vs)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := Parse(strings.NewReader(`{"v":2,"t":1}` + "\n")); err == nil {
		t.Fatal("line without ev accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(goodTrace(t))
	if !s.HasRun || s.Sched != "fdd" || s.Nodes != 4 {
		t.Fatalf("run facts = %+v", s)
	}
	if s.Offered != 20 || s.Delivered != 14 || s.Backlog != 4 {
		t.Fatalf("packet facts = %+v", s)
	}
	if len(s.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(s.Epochs))
	}
	e0, e1 := s.Epochs[0], s.Epochs[1]
	if e0.Slots != 2 || e0.CtrlTicks != 80 || e0.Delivered != 6 {
		t.Fatalf("epoch 0 = %+v", e0)
	}
	if e1.Delivered != 14-6 {
		t.Fatalf("epoch 1 delivered = %d, want 8", e1.Delivered)
	}
	if s.Counts["span:slot"] != 5 || s.Counts["protocol"] != 2 || s.Counts["handshake"] != 5 {
		t.Fatalf("counts = %v", s.Counts)
	}
	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sched=fdd", "offered=20", "epochs:", "goodput_pps"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("summary text missing %q:\n%s", want, sb.String())
		}
	}
}

// TestChromeStructure validates the export against the Chrome trace-event
// format: a traceEvents array whose members carry name/ph/ts/pid/tid, with
// X events additionally carrying a non-negative dur.
func TestChromeStructure(t *testing.T) {
	events := goodTrace(t)
	var sb strings.Builder
	if err := Chrome(events, &sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	spans, instants := 0, 0
	for _, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("event missing name/ph: %v", ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", ev)
		}
		for _, k := range []string{"pid", "tid"} {
			if _, ok := ev[k].(float64); !ok {
				t.Fatalf("event missing %s: %v", k, ev)
			}
		}
		switch ph {
		case "X":
			spans++
			if d, ok := ev["dur"].(float64); !ok || d < 0 {
				t.Fatalf("X event with bad dur: %v", ev)
			}
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	// 1 run + 2 epochs + 2 builds + 5 slots = 10 spans; 5 handshakes +
	// 2 protocol events = 7 instants.
	if spans != 10 || instants != 7 {
		t.Fatalf("spans=%d instants=%d, want 10,7", spans, instants)
	}
	// Simulated ticks are ns; ts must be µs. The run span starts at 0 and
	// lasts 1000 ticks -> dur 1µs.
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "run" {
			if ev["dur"].(float64) != 1.0 {
				t.Fatalf("run dur = %v µs, want 1", ev["dur"])
			}
		}
	}
}
