// Package tracecheck parses, validates and summarizes schema-v2 JSONL
// traces (internal/obs.Tracer). It is the engine behind the screamtrace CLI
// and the serve-layer tests: everything here works from the trace file alone
// — no access to the run that produced it — which is the point: the PR 7
// cross-check invariants (packet conservation, the protocol timing identity)
// become properties any captured trace can be audited for offline.
package tracecheck

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Event is one decoded trace line. Span/Parent/Name are populated for
// span_begin/span_end events; every other field lands in Fields (numbers as
// int64 when integral, float64 otherwise).
type Event struct {
	Line   int // 1-based line number in the input
	V      int
	Ev     string
	T      int64
	Span   int64
	Parent int64
	Name   string
	Fields map[string]any
}

// Int returns the named field as int64.
func (e *Event) Int(key string) (int64, bool) {
	switch v := e.Fields[key].(type) {
	case int64:
		return v, true
	case float64:
		if v == math.Trunc(v) {
			return int64(v), true
		}
	}
	return 0, false
}

// Str returns the named field as a string.
func (e *Event) Str(key string) (string, bool) {
	s, ok := e.Fields[key].(string)
	return s, ok
}

// Parse decodes a JSONL trace. It fails fast on malformed JSON or a missing
// schema version — structural damage — while semantic problems are left to
// Validate.
func Parse(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("line %d: invalid JSON: %w", line, err)
		}
		e := Event{Line: line, Fields: make(map[string]any, len(m))}
		for k, v := range m {
			var val any = v
			if num, ok := v.(json.Number); ok {
				if i, err := num.Int64(); err == nil {
					val = i
				} else if f, err := num.Float64(); err == nil {
					val = f
				}
			}
			switch k {
			case "v":
				if i, ok := val.(int64); ok {
					e.V = int(i)
				}
			case "ev":
				if s, ok := val.(string); ok {
					e.Ev = s
				}
			case "t":
				if i, ok := val.(int64); ok {
					e.T = i
				} else {
					return nil, fmt.Errorf("line %d: non-integer t", line)
				}
			case "span":
				if i, ok := val.(int64); ok {
					e.Span = i
				}
			case "parent":
				if i, ok := val.(int64); ok {
					e.Parent = i
				}
			case "name":
				if s, ok := val.(string); ok {
					e.Name = s
				}
			default:
				e.Fields[k] = val
			}
		}
		if e.Ev == "" {
			return nil, fmt.Errorf("line %d: missing event name", line)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Violation is one broken invariant, anchored at the line that exposed it.
type Violation struct {
	Line int
	Msg  string
}

func (v Violation) String() string { return fmt.Sprintf("line %d: %s", v.Line, v.Msg) }

// openSpan tracks one begun, not-yet-ended span while scanning.
type openSpan struct {
	id   int64
	name string
	t    int64
	line int
}

// spanParent maps each span name to its required parent span name ("" =
// must be a root span). A span whose parent id is 0 is accepted for any name
// (standalone core traces have no enclosing flow spans); when a parent
// exists its name must match.
var spanParent = map[string]string{
	"run":            "",
	"epoch":          "run",
	"schedule_build": "epoch",
	"slot":           "schedule_build",
}

// Validate replays the trace's invariants from the events alone:
//
//   - schema: version 2, span_begin/span_end carry ids and names;
//   - span discipline: ids unique, LIFO begin/end nesting, no span left
//     open at EOF, end.t >= begin.t, child begin.t >= parent begin.t;
//   - hierarchy: run ▸ epoch ▸ schedule_build ▸ slot parent names;
//   - at most one run span; its end carries the packet-conservation ledger
//     offered == delivered + dropped + lost + backlog (the PR 7 invariant);
//   - epoch spans indexed 0..n-1 in order, cumulative counters on epoch
//     ends monotone non-decreasing, run end "epochs" == epoch span count;
//   - protocol events: the timing identity
//     exec == screams_measured*k*scream_slot + handshakes_measured*hs_slot
//     with the slot costs taken from the run span, and rounds == number of
//     slot spans sealed inside the enclosing schedule_build.
//
// Global t-monotonicity across the file is deliberately NOT required: a
// control phase truncated at the horizon legitimately leaves protocol-layer
// timestamps beyond later driver timestamps.
func Validate(events []Event) []Violation {
	var out []Violation
	add := func(line int, format string, args ...any) {
		out = append(out, Violation{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	var stack []openSpan
	seen := map[int64]bool{}
	slotChildren := map[int64]int64{} // schedule_build span id -> sealed slots
	var runBegin, runEnd *Event
	runSpans := 0
	epochSpans := 0
	var prevEpochEnd *Event

	for i := range events {
		e := &events[i]
		if e.V != 2 {
			add(e.Line, "schema version %d, want 2", e.V)
			continue
		}
		switch e.Ev {
		case "span_begin":
			if e.Span <= 0 {
				add(e.Line, "span_begin without a positive span id")
				continue
			}
			if seen[e.Span] {
				add(e.Line, "span id %d reused", e.Span)
			}
			seen[e.Span] = true
			if e.Name == "" {
				add(e.Line, "span_begin without a name")
			}
			// Implicit-parent discipline: the parent must be the innermost
			// open span (or 0 at the root).
			wantParent := int64(0)
			if len(stack) > 0 {
				wantParent = stack[len(stack)-1].id
			}
			if e.Parent != wantParent {
				add(e.Line, "span %d (%s) has parent %d, want innermost open span %d",
					e.Span, e.Name, e.Parent, wantParent)
			}
			if want, known := spanParent[e.Name]; known && e.Parent != 0 && len(stack) > 0 {
				if got := stack[len(stack)-1].name; got != want {
					add(e.Line, "span %q nested under %q, want %q", e.Name, got, want)
				}
			}
			if len(stack) > 0 && e.T < stack[len(stack)-1].t {
				add(e.Line, "span %d begins at t=%d before its parent's t=%d",
					e.Span, e.T, stack[len(stack)-1].t)
			}
			switch e.Name {
			case "run":
				runSpans++
				if runSpans > 1 {
					add(e.Line, "more than one run span")
				}
				runBegin = e
			case "epoch":
				if idx, ok := e.Int("epoch"); !ok || idx != int64(epochSpans) {
					add(e.Line, "epoch span index %d, want %d", idx, epochSpans)
				}
				epochSpans++
			case "slot":
				if e.Parent != 0 {
					slotChildren[e.Parent]++
				}
			}
			stack = append(stack, openSpan{id: e.Span, name: e.Name, t: e.T, line: e.Line})
		case "span_end":
			if len(stack) == 0 {
				add(e.Line, "span_end %d with no span open", e.Span)
				continue
			}
			top := stack[len(stack)-1]
			if e.Span != top.id {
				add(e.Line, "span_end %d out of order; innermost open span is %d (%s, line %d)",
					e.Span, top.id, top.name, top.line)
				continue
			}
			stack = stack[:len(stack)-1]
			if e.T < top.t {
				add(e.Line, "span %d (%s) ends at t=%d before its begin t=%d", e.Span, top.name, e.T, top.t)
			}
			switch top.name {
			case "run":
				runEnd = e
			case "epoch":
				for _, key := range []string{"offered", "delivered", "dropped"} {
					cur, ok := e.Int(key)
					if !ok {
						add(e.Line, "epoch end missing %q", key)
						continue
					}
					if prevEpochEnd != nil {
						if prev, ok := prevEpochEnd.Int(key); ok && cur < prev {
							add(e.Line, "cumulative %q decreased across epochs: %d -> %d", key, prev, cur)
						}
					}
				}
				prevEpochEnd = e
			}
		case "protocol":
			var top *openSpan
			if len(stack) > 0 {
				top = &stack[len(stack)-1]
			}
			checkProtocol(e, runBegin, top, slotChildren, add)
		}
	}
	for _, s := range stack {
		add(s.line, "span %d (%s) never ended", s.id, s.name)
	}

	// Run-level ledger: packet conservation and the epoch count.
	if runEnd != nil {
		offered, ok1 := runEnd.Int("offered")
		delivered, ok2 := runEnd.Int("delivered")
		dropped, ok3 := runEnd.Int("dropped")
		backlog, ok4 := runEnd.Int("backlog")
		lost, _ := runEnd.Int("lost") // absent on old emitters -> 0
		if !(ok1 && ok2 && ok3 && ok4) {
			add(runEnd.Line, "run end missing conservation fields")
		} else if offered != delivered+dropped+lost+backlog {
			add(runEnd.Line, "conservation violated: offered %d != delivered %d + dropped %d + lost %d + backlog %d",
				offered, delivered, dropped, lost, backlog)
		}
		if n, ok := runEnd.Int("epochs"); ok && n != int64(epochSpans) {
			add(runEnd.Line, "run end reports %d epochs but trace has %d epoch spans", n, epochSpans)
		}
	}
	return out
}

// checkProtocol validates one protocol-layer summary event: the timing
// identity against the run span's slot costs, and the sealed-slot count
// against the enclosing schedule_build's slot spans.
func checkProtocol(e, runBegin *Event, top *openSpan, slotChildren map[int64]int64,
	add func(line int, format string, args ...any)) {
	exec, okE := e.Int("exec")
	sm, okS := e.Int("screams_measured")
	hm, okH := e.Int("handshakes_measured")
	k, okK := e.Int("k")
	if okE && okS && okH && okK && runBegin != nil {
		ss, okSS := runBegin.Int("scream_slot")
		hs, okHS := runBegin.Int("hs_slot")
		if okSS && okHS {
			if want := sm*k*ss + hm*hs; exec != want {
				add(e.Line, "timing identity violated: exec %d != screams_measured %d * k %d * scream_slot %d + handshakes_measured %d * hs_slot %d = %d",
					exec, sm, k, ss, hm, hs, want)
			}
		}
	}
	if rounds, ok := e.Int("rounds"); ok && top != nil && top.name == "schedule_build" {
		// The protocol event fires while its schedule_build span is still
		// open; the build's sealed slot spans must match its round count.
		if got := slotChildren[top.id]; got != rounds {
			add(e.Line, "protocol reports %d rounds but schedule_build %d sealed %d slot spans",
				rounds, top.id, got)
		}
	}
}
