package tracecheck

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// EpochRow is one epoch's digest in a Summary: the control-phase inputs from
// the epoch span's begin line, the build outputs from the schedule_build
// span, and the delivered-goodput delta computed across epoch ends.
type EpochRow struct {
	Epoch     int
	BeginT    int64 // epoch span begin, ticks (ns)
	EndT      int64 // epoch span end, ticks (ns)
	Demand    int64
	Slots     int64
	CtrlTicks int64
	Backlog   int64 // queued packets at epoch end
	Delivered int64 // delivered during this epoch (delta of cumulative)
}

// GoodputPps is the epoch's delivered end-to-end packets per simulated
// second (0 for a zero-length epoch).
func (r EpochRow) GoodputPps() float64 {
	if r.EndT <= r.BeginT {
		return 0
	}
	return float64(r.Delivered) / (float64(r.EndT-r.BeginT) / 1e9)
}

// Summary is the digest screamtrace summarize prints.
type Summary struct {
	Events int
	// Counts keys are event names; spans count once per begin, keyed as
	// "span:<name>".
	Counts map[string]int
	Epochs []EpochRow

	// Run-level facts, present when the trace holds a run span.
	HasRun    bool
	Sched     string
	Nodes     int64
	Links     int64
	HorizonT  int64
	Offered   int64
	Delivered int64
	Dropped   int64
	Lost      int64
	Backlog   int64
	DelayP50T int64
	DelayP95T int64
}

// Summarize digests a parsed trace. It tolerates incomplete traces (a
// truncated capture still summarizes whatever it holds).
func Summarize(events []Event) Summary {
	s := Summary{Counts: map[string]int{}}
	open := map[int64]*EpochRow{}   // epoch span id -> row under construction
	builds := map[int64]*EpochRow{} // schedule_build span id -> enclosing row
	var prevDelivered int64
	var curEpoch *EpochRow
	for i := range events {
		e := &events[i]
		s.Events++
		switch e.Ev {
		case "span_begin":
			s.Counts["span:"+e.Name]++
			switch e.Name {
			case "run":
				s.HasRun = true
				s.Sched, _ = e.Str("sched")
				s.Nodes, _ = e.Int("nodes")
				s.Links, _ = e.Int("links")
				s.HorizonT, _ = e.Int("horizon")
			case "epoch":
				idx, _ := e.Int("epoch")
				row := &EpochRow{Epoch: int(idx), BeginT: e.T}
				row.Demand, _ = e.Int("demand")
				open[e.Span] = row
				curEpoch = row
			case "schedule_build":
				if curEpoch != nil {
					builds[e.Span] = curEpoch
				}
			}
		case "span_end":
			switch e.Name {
			case "run":
				s.Offered, _ = e.Int("offered")
				s.Delivered, _ = e.Int("delivered")
				s.Dropped, _ = e.Int("dropped")
				s.Lost, _ = e.Int("lost")
				s.Backlog, _ = e.Int("backlog")
				s.DelayP50T, _ = e.Int("delay_p50")
				s.DelayP95T, _ = e.Int("delay_p95")
			case "epoch":
				if row, ok := open[e.Span]; ok {
					delete(open, e.Span)
					row.EndT = e.T
					row.Backlog, _ = e.Int("backlog")
					cum, _ := e.Int("delivered")
					row.Delivered = cum - prevDelivered
					prevDelivered = cum
					s.Epochs = append(s.Epochs, *row)
				}
			case "schedule_build":
				if row, ok := builds[e.Span]; ok {
					delete(builds, e.Span)
					row.Slots, _ = e.Int("slots")
					row.CtrlTicks, _ = e.Int("ctrl")
				}
			}
		default:
			s.Counts[e.Ev]++
		}
	}
	return s
}

// WriteText renders the summary as the screamtrace summarize report.
func (s Summary) WriteText(w io.Writer) error {
	if s.HasRun {
		fmt.Fprintf(w, "run: sched=%s nodes=%d links=%d horizon=%.3fs\n",
			s.Sched, s.Nodes, s.Links, float64(s.HorizonT)/1e9)
		fmt.Fprintf(w, "packets: offered=%d delivered=%d dropped=%d lost=%d backlog=%d\n",
			s.Offered, s.Delivered, s.Dropped, s.Lost, s.Backlog)
		fmt.Fprintf(w, "delay: p50=%.3fms p95=%.3fms\n",
			float64(s.DelayP50T)/1e6, float64(s.DelayP95T)/1e6)
	}
	fmt.Fprintf(w, "events: %d total\n", s.Events)
	names := make([]string, 0, len(s.Counts))
	for n := range s.Counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %-24s %d\n", n, s.Counts[n])
	}
	if len(s.Epochs) > 0 {
		fmt.Fprintln(w, "epochs:")
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "epoch\tdemand\tslots\tctrl_ms\tdelivered\tbacklog\tgoodput_pps\t")
		for _, r := range s.Epochs {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%.3f\t%d\t%d\t%.1f\t\n",
				r.Epoch, r.Demand, r.Slots, float64(r.CtrlTicks)/1e6,
				r.Delivered, r.Backlog, r.GoodputPps())
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
