package tracecheck

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome converts a parsed trace into Chrome trace-event JSON (the
// trace_event format Perfetto and chrome://tracing load): spans become
// complete ("X") events with microsecond ts/dur, point events become
// process-scoped instants ("i"). Complete events are used instead of paired
// B/E because a horizon-truncated control phase can leave child timestamps
// beyond the parent's end — X events carry their own duration and need no
// nesting discipline.
//
// Unclosed spans in a truncated capture are emitted as zero-duration X
// events so they remain visible on the timeline.
func Chrome(events []Event, w io.Writer) error {
	type xev struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"` // microseconds of simulated time
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}
	var out []xev
	type pending struct {
		idx int // index in out
		t   int64
	}
	open := map[int64]pending{}
	for i := range events {
		e := &events[i]
		switch e.Ev {
		case "span_begin":
			args := make(map[string]any, len(e.Fields)+1)
			for k, v := range e.Fields {
				args[k] = v
			}
			args["span"] = e.Span
			out = append(out, xev{
				Name: e.Name, Ph: "X", Ts: float64(e.T) / 1e3, Dur: 0,
				Pid: 1, Tid: 1, Args: args,
			})
			open[e.Span] = pending{idx: len(out) - 1, t: e.T}
		case "span_end":
			p, ok := open[e.Span]
			if !ok {
				continue // end without begin (truncated head); nothing to anchor
			}
			delete(open, e.Span)
			x := &out[p.idx]
			if e.T > p.t {
				x.Dur = float64(e.T-p.t) / 1e3
			}
			for k, v := range e.Fields {
				x.Args[k] = v
			}
		default:
			args := make(map[string]any, len(e.Fields))
			for k, v := range e.Fields {
				args[k] = v
			}
			out = append(out, xev{
				Name: e.Ev, Ph: "i", Ts: float64(e.T) / 1e3,
				Pid: 1, Tid: 1, S: "p", Args: args,
			})
		}
	}
	doc := map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("tracecheck: encoding chrome trace: %w", err)
	}
	return nil
}
