package flow

import (
	"math/rand"
	"reflect"
	"testing"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/phys"
	"scream/internal/route"
	"scream/internal/sched"
	"scream/internal/topo"
	"scream/internal/traffic"
)

// testbed is a small planned mesh with a single gateway at node 0.
type testbed struct {
	net    *topo.Network
	forest *route.Forest
	links  []phys.Link
}

func newTestbed(t testing.TB, rows, cols int) *testbed {
	t.Helper()
	net, err := topo.NewGrid(topo.GridConfig{
		Rows: rows, Cols: cols, Step: 25,
		Params: topo.DefaultParams(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := route.BuildForest(net.Comm, []int{0}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{net: net, forest: f, links: f.Links()}
}

// newReuseTestbed builds the paper's low-density planned scenario (8x8 grid,
// 4 dBm homogeneous power, quadrant gateways), where the physical model
// admits real spatial reuse — small minimal-power grids admit none, which
// makes them useless for reuse-sensitive assertions.
func newReuseTestbed(t testing.TB) *testbed {
	t.Helper()
	net, err := topo.NewGrid(topo.GridConfig{
		Rows: 8, Cols: 8, Step: 36,
		TxPowerMW: phys.DBm(4).MilliWatts(),
		Params:    topo.DefaultParams(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gws, err := topo.QuadrantGateways(net)
	if err != nil {
		t.Fatal(err)
	}
	f, err := route.BuildForest(net.Comm, gws, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{net: net, forest: f, links: f.Links()}
}

// frameTime returns the capacity reference of the load sweeps (see
// FrameTime): a per-node CBR rate of x/frameTime offers x times the static
// schedule's sustainable load.
func (tb *testbed) frameTime(t testing.TB, tm core.Timing) des.Time {
	t.Helper()
	frame, err := FrameTime(tb.net.Channel, tb.forest, tb.links, tm)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// cbrAt attaches a CBR source of the given per-node rate to every
// non-gateway node.
func (tb *testbed) cbrAt(t testing.TB, rate float64) []traffic.Arrival {
	t.Helper()
	arr := make([]traffic.Arrival, tb.forest.NumNodes())
	for u := range arr {
		if tb.forest.IsGateway(u) {
			continue
		}
		c, err := traffic.NewCBR(rate)
		if err != nil {
			t.Fatal(err)
		}
		arr[u] = c
	}
	return arr
}

func (tb *testbed) greedy() Scheduler {
	return NewGreedyScheduler(tb.net.Channel, tb.links, sched.ByHeadIDDesc)
}

func runAtLoad(t testing.TB, tb *testbed, s Scheduler, load float64, horizon des.Time, seed int64) *Result {
	t.Helper()
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	res, err := Run(Config{
		Forest:     tb.forest,
		Links:      tb.links,
		Scheduler:  s,
		Timing:     tm,
		Arrivals:   tb.cbrAt(t, load/frame.Seconds()),
		Horizon:    horizon,
		Seed:       seed,
		MaxService: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFlowSaturation is the subsystem's headline property: delivered goodput
// rises with offered load until the schedule's capacity, then plateaus,
// while p95 delay and backlog stay modest below saturation and diverge
// beyond it — queues stable below, growing above.
func TestFlowSaturation(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	horizon := 400 * des.Millisecond
	low := runAtLoad(t, tb, tb.greedy(), 0.5, horizon, 42)
	over := runAtLoad(t, tb, tb.greedy(), 2.0, horizon, 42)
	deep := runAtLoad(t, tb, tb.greedy(), 4.0, horizon, 42)

	// Below saturation the system keeps up: nearly everything offered is
	// delivered and the residual backlog is a few in-flight packets.
	if low.Delivered == 0 || float64(low.Delivered) < 0.9*float64(low.Offered) {
		t.Fatalf("0.5x load: delivered %d of %d offered", low.Delivered, low.Offered)
	}
	if low.FinalBacklog > 3*len(tb.links) {
		t.Errorf("0.5x load: final backlog %d; queues should be stable", low.FinalBacklog)
	}

	// Above saturation goodput plateaus at capacity: pushing 2x vs 4x
	// offered load changes delivered goodput by little...
	if over.GoodputPps == 0 {
		t.Fatal("2x load delivered nothing")
	}
	ratio := deep.GoodputPps / over.GoodputPps
	if ratio > 1.15 || ratio < 0.85 {
		t.Errorf("goodput should plateau: 2x -> %.0f pps, 4x -> %.0f pps (ratio %.2f)", over.GoodputPps, deep.GoodputPps, ratio)
	}
	// ...and is well below what was offered.
	if float64(over.Delivered) > 0.8*float64(over.Offered) {
		t.Errorf("2x load: delivered %d of %d; should be capacity-limited", over.Delivered, over.Offered)
	}

	// Beyond saturation the queues grow without bound and delay diverges.
	if over.FinalBacklog < 5*low.FinalBacklog+10 {
		t.Errorf("2x load: final backlog %d vs %d at 0.5x; should grow", over.FinalBacklog, low.FinalBacklog)
	}
	if deep.FinalBacklog < over.FinalBacklog {
		t.Errorf("4x backlog %d < 2x backlog %d", deep.FinalBacklog, over.FinalBacklog)
	}
	if over.DelayP95 < 3*low.DelayP95 {
		t.Errorf("p95 delay should diverge beyond saturation: 0.5x %v vs 2x %v", low.DelayP95, over.DelayP95)
	}
	if low.DelayP50 > low.DelayP95 {
		t.Errorf("p50 %v > p95 %v", low.DelayP50, low.DelayP95)
	}
}

// TestFlowConservation checks packet accounting: every offered packet is
// delivered, dropped, or still queued at the horizon.
func TestFlowConservation(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	for _, load := range []float64{0.5, 1.5} {
		res := runAtLoad(t, tb, tb.greedy(), load, 300*des.Millisecond, 7)
		if got := res.Delivered + res.Dropped + res.FinalBacklog; got != res.Offered {
			t.Errorf("load %.1f: delivered %d + dropped %d + backlog %d = %d != offered %d",
				load, res.Delivered, res.Dropped, res.FinalBacklog, got, res.Offered)
		}
		if res.Dropped != 0 {
			t.Errorf("load %.1f: %d drops with unbounded queues", load, res.Dropped)
		}
		if res.PeakBacklog < res.FinalBacklog {
			t.Errorf("load %.1f: peak %d < final %d", load, res.PeakBacklog, res.FinalBacklog)
		}
		if res.Elapsed != 300*des.Millisecond {
			t.Errorf("load %.1f: elapsed %v != horizon", load, res.Elapsed)
		}
	}
}

// TestFlowDeterminism: identical configs produce identical results, the
// property the experiment engine's worker fan-out relies on.
func TestFlowDeterminism(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	a := runAtLoad(t, tb, tb.greedy(), 1.2, 200*des.Millisecond, 99)
	b := runAtLoad(t, tb, tb.greedy(), 1.2, 200*des.Millisecond, 99)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

// TestFlowMaxQueue: bounded queues drop the overload instead of growing.
func TestFlowMaxQueue(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	res, err := Run(Config{
		Forest:    tb.forest,
		Links:     tb.links,
		Scheduler: tb.greedy(),
		Timing:    tm,
		Arrivals:  tb.cbrAt(t, 3/frame.Seconds()),
		Horizon:   300 * des.Millisecond,
		Seed:      5,
		MaxQueue:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("3x overload with MaxQueue=4 should drop")
	}
	if res.PeakBacklog > 4*len(tb.links) {
		t.Errorf("peak backlog %d exceeds %d queues x cap 4", res.PeakBacklog, len(tb.links))
	}
	if got := res.Delivered + res.Dropped + res.FinalBacklog; got != res.Offered {
		t.Errorf("conservation broken under drops: %d != %d", got, res.Offered)
	}
}

// TestFlowProtocolSchedulers runs the real distributed protocols as epoch
// schedulers: they must deliver traffic while paying nonzero control time.
func TestFlowProtocolSchedulers(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	for _, tc := range []struct {
		name    string
		variant core.Variant
		p       float64
	}{
		{"FDD", core.FDD, 0},
		{"PDD", core.PDD, 0.6},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewProtocolScheduler(ProtocolSchedulerConfig{
				Channel: tb.net.Channel,
				Sens:    tb.net.Sens,
				Links:   tb.links,
				Timing:  tm,
				Variant: tc.variant,
				P:       tc.p,
				Seed:    17,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Forest:    tb.forest,
				Links:     tb.links,
				Scheduler: s,
				Timing:    tm,
				Arrivals:  tb.cbrAt(t, 0.3/frame.Seconds()),
				Horizon:   500 * des.Millisecond,
				Seed:      17,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered == 0 {
				t.Fatal("distributed scheduler delivered nothing")
			}
			if res.ControlTime == 0 {
				t.Error("distributed re-scheduling must cost simulated time")
			}
			if res.ControlFraction <= 0 || res.ControlFraction >= 1 {
				t.Errorf("control fraction %v out of (0,1)", res.ControlFraction)
			}
			if res.Epochs < 2 {
				t.Errorf("only %d epochs in %v; driver should re-schedule repeatedly", res.Epochs, res.Elapsed)
			}
			if got := res.Delivered + res.Dropped + res.FinalBacklog; got != res.Offered {
				t.Errorf("conservation: %d != %d", got, res.Offered)
			}
		})
	}
}

// TestFlowFramesPerEpoch: replaying the schedule amortizes control cost —
// more frames per epoch must cut the control fraction and raise goodput for
// a distributed scheduler.
func TestFlowFramesPerEpoch(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	run := func(frames int) *Result {
		s, err := NewProtocolScheduler(ProtocolSchedulerConfig{
			Channel: tb.net.Channel,
			Sens:    tb.net.Sens,
			Links:   tb.links,
			Timing:  tm,
			Variant: core.FDD,
			Seed:    23,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Forest:         tb.forest,
			Links:          tb.links,
			Scheduler:      s,
			Timing:         tm,
			Arrivals:       tb.cbrAt(t, 0.5/frame.Seconds()),
			Horizon:        time600ms,
			Seed:           23,
			MaxService:     8,
			FramesPerEpoch: frames,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	many := run(16)
	if many.ControlFraction >= one.ControlFraction {
		t.Errorf("control fraction should drop with replays: 1 frame %.3f vs 16 frames %.3f",
			one.ControlFraction, many.ControlFraction)
	}
	if many.Delivered <= one.Delivered {
		t.Errorf("amortized control should deliver more: %d vs %d", many.Delivered, one.Delivered)
	}
}

const time600ms = 600 * des.Millisecond

// TestFlowGreedyBeatsTDMA: spatial reuse must show up as saturation goodput
// in a scenario that admits it.
func TestFlowGreedyBeatsTDMA(t *testing.T) {
	tb := newReuseTestbed(t)
	horizon := 300 * des.Millisecond
	greedy := runAtLoad(t, tb, tb.greedy(), 3, horizon, 3)
	tdma := runAtLoad(t, tb, NewTDMAScheduler(tb.links), 3, horizon, 3)
	if greedy.GoodputPps < 1.2*tdma.GoodputPps {
		t.Errorf("greedy %.0f pps vs TDMA %.0f pps at saturation; spatial reuse should win clearly", greedy.GoodputPps, tdma.GoodputPps)
	}
}

// TestTDMAScheduler checks the baseline's frame structure directly.
func TestTDMAScheduler(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	s := NewTDMAScheduler(tb.links)
	demands := make([]int, len(tb.links))
	total := 0
	for i := range demands {
		demands[i] = i % 3 // some zero
		total += demands[i]
	}
	sc, ctrl, err := s.Build(demands, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl != 0 {
		t.Errorf("TDMA control cost %v, want 0", ctrl)
	}
	if sc.Length() != total {
		t.Errorf("TDMA length %d, want serialized %d", sc.Length(), total)
	}
	for i := 0; i < sc.Length(); i++ {
		if len(sc.Slot(i)) != 1 {
			t.Fatalf("TDMA slot %d has %d links, want 1", i, len(sc.Slot(i)))
		}
	}
	if err := sc.Verify(tb.net.Channel, tb.links, demands); err != nil {
		t.Errorf("TDMA schedule fails verification: %v", err)
	}
	if _, _, err := s.Build(demands[:2], 0); err == nil {
		t.Error("mismatched demand vector should fail")
	}
}

// TestFlowConfigValidation covers the config error paths.
func TestFlowConfigValidation(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	tm := core.DefaultTiming()
	good := func() Config {
		return Config{
			Forest:    tb.forest,
			Links:     tb.links,
			Scheduler: tb.greedy(),
			Timing:    tm,
			Arrivals:  make([]traffic.Arrival, tb.forest.NumNodes()),
			Horizon:   des.Millisecond,
			Seed:      1,
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil forest", func(c *Config) { c.Forest = nil }},
		{"wrong arrivals len", func(c *Config) { c.Arrivals = c.Arrivals[:2] }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"no scheduler", func(c *Config) { c.Scheduler = Scheduler{} }},
		{"non-forest link", func(c *Config) {
			c.Links = append([]phys.Link(nil), c.Links...)
			c.Links[0] = phys.Link{From: c.Links[0].From, To: c.Links[0].From} // self edge
		}},
		{"arrival on gateway", func(c *Config) {
			cbr, _ := traffic.NewCBR(10)
			c.Arrivals[0] = cbr // node 0 is the gateway
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := good()
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
	// The unmutated config must run.
	if _, err := Run(good()); err != nil {
		t.Errorf("good config failed: %v", err)
	}
}

// TestFlowIdlesWhenSilent: no arrivals means the run idles to the horizon.
func TestFlowIdlesWhenSilent(t *testing.T) {
	tb := newTestbed(t, 3, 3)
	res, err := Run(Config{
		Forest:    tb.forest,
		Links:     tb.links,
		Scheduler: tb.greedy(),
		Arrivals:  make([]traffic.Arrival, tb.forest.NumNodes()),
		Horizon:   10 * des.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 0 || res.Delivered != 0 || res.Epochs != 0 {
		t.Errorf("silent run did work: %+v", res)
	}
	if res.IdleTime != 10*des.Millisecond {
		t.Errorf("idle time %v, want full horizon", res.IdleTime)
	}
}

func TestFifo(t *testing.T) {
	var q fifo
	for i := 0; i < 500; i++ {
		q.push(packet{created: des.Time(i)})
	}
	for i := 0; i < 500; i++ {
		if q.len() != 500-i {
			t.Fatalf("len = %d, want %d", q.len(), 500-i)
		}
		if p := q.pop(); p.created != des.Time(i) {
			t.Fatalf("pop %d: got %v, want FIFO order", i, p.created)
		}
	}
	if q.len() != 0 {
		t.Fatalf("final len = %d", q.len())
	}
}
