package flow

import (
	"math/rand"
	"testing"

	"scream/internal/core"
	"scream/internal/traffic"
)

// zipfArrivals attaches Poisson sources whose rates are Zipf-skewed around
// the given mean rate (traffic.HotspotRates): a few hotspot routers carry
// most of the offered load — the backlog regime the max-weight discipline
// exists for.
func (tb *testbed) zipfArrivals(t testing.TB, meanRate float64, seed int64) []traffic.Arrival {
	t.Helper()
	n := tb.forest.NumNodes()
	mult, err := traffic.HotspotRates(n, 1.5, 1, 32, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	arr := make([]traffic.Arrival, n)
	for u := range arr {
		if tb.forest.IsGateway(u) {
			continue
		}
		p, err := traffic.NewPoisson(meanRate * mult[u])
		if err != nil {
			t.Fatal(err)
		}
		arr[u] = p
	}
	return arr
}

// TestMaxWeightBeatsStaticGreedyUnderZipfBacklog pins the queue-aware
// scheduler's reason to exist: under a skewed (Zipf hotspot) backlog beyond
// saturation, re-ranking links by backlog×rate each epoch must deliver at
// least the goodput of the same greedy engine locked to its static head-ID
// order. Both pay zero control cost, so the comparison isolates the
// ordering.
func TestMaxWeightBeatsStaticGreedyUnderZipfBacklog(t *testing.T) {
	tb := newReuseTestbed(t)
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	horizon := 600 * frame
	meanRate := 2.0 / frame.Seconds() // 2x static capacity: saturated
	run := func(s Scheduler, seed int64) float64 {
		res, err := Run(Config{
			Forest:         tb.forest,
			Links:          tb.links,
			Scheduler:      s,
			Timing:         tm,
			Arrivals:       tb.zipfArrivals(t, meanRate, DeriveSeed(seed, 77)),
			Horizon:        horizon,
			Seed:           seed,
			MaxService:     8,
			FramesPerEpoch: 16,
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		return res.GoodputPps
	}
	var mwTotal, greedyTotal float64
	for seed := int64(1); seed <= 3; seed++ {
		mw := run(NewMaxWeightScheduler(tb.net.Channel, tb.links), seed)
		gr := run(tb.greedy(), seed)
		t.Logf("seed %d: maxweight %.1f pkt/s, static greedy %.1f pkt/s", seed, mw, gr)
		mwTotal += mw
		greedyTotal += gr
	}
	// Pin on the seed aggregate: per-seed noise can favor either, the mean
	// must not.
	if mwTotal < greedyTotal {
		t.Errorf("max-weight mean goodput %.1f below static greedy %.1f under Zipf backlog",
			mwTotal/3, greedyTotal/3)
	}
}

// TestFanZhangSchedulerRunsAndBeatsTDMA sanity-pins the approximation
// scheduler in the epoch driver: its class-partitioned schedules still beat
// the no-reuse TDMA frame under saturating uniform load (it trades slots for
// a guarantee, not all of them).
func TestFanZhangSchedulerRunsAndBeatsTDMA(t *testing.T) {
	tb := newReuseTestbed(t)
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	horizon := 400 * frame
	rate := 2.0 / frame.Seconds()
	run := func(s Scheduler) float64 {
		res, err := Run(Config{
			Forest:         tb.forest,
			Links:          tb.links,
			Scheduler:      s,
			Timing:         tm,
			Arrivals:       tb.cbrAt(t, rate),
			Horizon:        horizon,
			Seed:           5,
			MaxService:     8,
			FramesPerEpoch: 16,
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		return res.GoodputPps
	}
	fz := run(NewFanZhangScheduler(tb.net.Channel, tb.links))
	tdma := run(NewTDMAScheduler(tb.links))
	t.Logf("fanzhang %.1f pkt/s, tdma %.1f pkt/s", fz, tdma)
	if fz <= tdma {
		t.Errorf("fanzhang goodput %.1f should beat TDMA %.1f under saturation", fz, tdma)
	}
}

// TestMaxWeightSchedulerRebinds checks the adaptive path: after a topology
// rebind the scheduler must build against the new link set without error.
func TestMaxWeightSchedulerRebinds(t *testing.T) {
	tb := newTestbed(t, 4, 4)
	s := NewMaxWeightScheduler(tb.net.Channel, tb.links)
	demands := make([]int, len(tb.links))
	for i := range demands {
		demands[i] = 1
	}
	if _, _, err := s.Build(demands, 0); err != nil {
		t.Fatal(err)
	}
	// Rebind to a strict subset of the links (as after a node failure).
	sub := tb.links[:len(tb.links)-2]
	if err := s.Rebind(Topology{Links: sub}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Build(make([]int, len(sub)), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Build(demands, 2); err == nil {
		t.Error("demand vector of the old link set should now fail")
	}
}
