package flow

// The flow-scheduler registry: every epoch scheduler the simulator offers,
// behind one name-addressable table. The table is the single source of truth
// for scheduler enumeration — the root package's public registry
// (scream.Schedulers), the flowsim CLI's -scheduler flag, the figure
// harness's scheduler-family sweeps and the screamd daemon's /schedulers
// endpoint all iterate it instead of maintaining parallel switch statements.
// The centralized single-channel members are backed by the static scheduler
// family of sched.Backends(), whose doc strings they share.

import (
	"fmt"
	"sort"
	"strings"

	"scream/internal/core"
	"scream/internal/graph"
	"scream/internal/obs"
	"scream/internal/phys"
	"scream/internal/sched"
)

// SchedulerEnv carries everything a registered scheduler constructor may
// need. Callers fill the fields relevant to the scheduler they build;
// constructors ignore the rest (the TDMA frame needs only Links, the
// distributed protocols need the full control-plane view).
type SchedulerEnv struct {
	// Channel is the deployment's physical channel (SINR feasibility).
	Channel *phys.Channel
	// Engine, when non-nil, is the interference engine the centralized
	// schedulers build against instead of Channel — e.g. the spatial
	// grid-bucket index. The distributed protocols simulate real radios
	// over the exact channel and reject a non-dense engine. Nil means
	// Channel.
	Engine phys.Engine
	// Sens is the sensitivity graph, required by the distributed protocols.
	Sens *graph.Graph
	// Links is the link set schedules are built over.
	Links []phys.Link
	// Ordering is the greedy admission order (0 = sched.ByHeadIDDesc).
	Ordering sched.Ordering
	// K is the SCREAM length for the distributed protocols; 0 derives the
	// interference diameter from Sens.
	K int
	// Timing is the slot timing model (zero value = core.DefaultTiming).
	Timing core.Timing
	// P is PDD's activation probability.
	P float64
	// Seed drives the distributed protocols' per-epoch randomness.
	Seed int64
	// Channels is the number of orthogonal data channels (0 or 1 =
	// single-channel); Radios the per-node radio budget for multi-channel
	// packing.
	Channels int
	Radios   int
	// Metrics and Trace are forwarded into the distributed protocols' epoch
	// runs (write-only observability).
	Metrics *obs.Registry
	Trace   *obs.Tracer
}

// SchedulerDef is one registry entry: a named, documented epoch-scheduler
// constructor.
type SchedulerDef struct {
	// Name is the canonical registry key ("greedy", "fdd", ...): the value
	// of flowsim -scheduler, ScenarioSpec.Scheduler and the daemon API.
	Name string
	// Display is the figure-series label ("Greedy", "FDD", ...).
	Display string
	// Doc is a one-line description for API listings and --help output.
	Doc string
	// Distributed marks schedulers that pay real (non-genie) control cost.
	Distributed bool
	// MultiChannel marks schedulers that accept Env.Channels > 1.
	MultiChannel bool
	// New builds the scheduler for an environment.
	New func(env SchedulerEnv) (Scheduler, error)
}

func (e SchedulerEnv) ordering() sched.Ordering {
	if e.Ordering == 0 {
		return sched.ByHeadIDDesc
	}
	return e.Ordering
}

// engine returns the interference engine schedulers build against: Engine
// when set, otherwise the dense channel.
func (e SchedulerEnv) engine() phys.Engine {
	if e.Engine != nil {
		return e.Engine
	}
	return e.Channel
}

// requireDense returns an error unless the environment's engine is the
// dense channel. The distributed protocols (and anything else that
// simulates real reception) need exact interference, not a conservative
// bound.
func (e SchedulerEnv) requireDense(name string) error {
	if e.Engine == nil {
		return nil
	}
	if _, ok := e.Engine.(*phys.Channel); ok {
		return nil
	}
	return fmt.Errorf("flow: scheduler %q requires the dense interference engine", name)
}

func (e SchedulerEnv) protocolConfig(v core.Variant) ProtocolSchedulerConfig {
	cfg := ProtocolSchedulerConfig{
		Channel: e.Channel,
		Sens:    e.Sens,
		Links:   e.Links,
		K:       e.K,
		Timing:  e.Timing,
		Variant: v,
		P:       e.P,
		Seed:    e.Seed,
		Metrics: e.Metrics,
		Trace:   e.Trace,
	}
	if e.Channels > 1 {
		cfg.Channels = e.Channels
		cfg.Radios = e.Radios
	}
	return cfg
}

// backendDoc pulls the doc string of the static scheduler-family member the
// flow scheduler wraps (sched.Backends is the source of truth for the
// centralized single-channel family).
func backendDoc(prefix string) string {
	for _, b := range sched.Backends() {
		if strings.HasPrefix(b.Name, prefix) {
			return b.Doc
		}
	}
	return ""
}

// SchedulerDefs returns the registered epoch schedulers in reporting order:
// the centralized baselines first (greedy, maxweight, fanzhang), then the
// distributed protocols (fdd, pdd), then the no-reuse TDMA floor. The
// returned slice is freshly allocated — callers may reorder or filter it.
func SchedulerDefs() []SchedulerDef {
	return []SchedulerDef{
		{
			Name:         "greedy",
			Display:      "Greedy",
			Doc:          backendDoc("greedy("),
			MultiChannel: true,
			New: func(env SchedulerEnv) (Scheduler, error) {
				if env.Channels > 1 {
					return NewGreedyMultiEngineScheduler(env.engine(), env.Channels, env.Radios, env.Links, env.ordering()), nil
				}
				return NewGreedyScheduler(env.engine(), env.Links, env.ordering()), nil
			},
		},
		{
			Name:    "maxweight",
			Display: "MaxWeight",
			Doc:     backendDoc("maxweight"),
			New: func(env SchedulerEnv) (Scheduler, error) {
				if env.Channels > 1 {
					return Scheduler{}, fmt.Errorf("flow: scheduler %q is single-channel only", "maxweight")
				}
				return NewMaxWeightScheduler(env.engine(), env.Links), nil
			},
		},
		{
			Name:    "fanzhang",
			Display: "FanZhang",
			Doc:     backendDoc("fanzhang"),
			New: func(env SchedulerEnv) (Scheduler, error) {
				if env.Channels > 1 {
					return Scheduler{}, fmt.Errorf("flow: scheduler %q is single-channel only", "fanzhang")
				}
				return NewFanZhangScheduler(env.engine(), env.Links), nil
			},
		},
		{
			Name:         "fdd",
			Display:      "FDD",
			Doc:          "fully deterministic distributed protocol re-run each epoch at real SCREAM/election/handshake control cost",
			Distributed:  true,
			MultiChannel: true,
			New: func(env SchedulerEnv) (Scheduler, error) {
				if err := env.requireDense("fdd"); err != nil {
					return Scheduler{}, err
				}
				return NewProtocolScheduler(env.protocolConfig(core.FDD))
			},
		},
		{
			Name:         "pdd",
			Display:      "PDD",
			Doc:          "randomized (activation probability P) distributed protocol re-run each epoch at real control cost",
			Distributed:  true,
			MultiChannel: true,
			New: func(env SchedulerEnv) (Scheduler, error) {
				if err := env.requireDense("pdd"); err != nil {
					return Scheduler{}, err
				}
				return NewProtocolScheduler(env.protocolConfig(core.PDD))
			},
		},
		{
			Name:         "tdma",
			Display:      "TDMA",
			Doc:          "static frame serving every backlogged link one singleton slot per scan: the no-spatial-reuse floor, zero control cost",
			MultiChannel: true,
			New: func(env SchedulerEnv) (Scheduler, error) {
				if env.Channels > 1 {
					return NewTDMAMultiScheduler(env.Links, env.Channels, env.Radios), nil
				}
				return NewTDMAScheduler(env.Links), nil
			},
		},
	}
}

// SchedulerNames returns the registered scheduler names in registry order.
func SchedulerNames() []string {
	defs := SchedulerDefs()
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return names
}

// SchedulerDefByName resolves a registry name. Unknown names return an error
// listing every valid name, so a CLI or API caller sees their options.
func SchedulerDefByName(name string) (SchedulerDef, error) {
	for _, d := range SchedulerDefs() {
		if d.Name == name {
			return d, nil
		}
	}
	valid := SchedulerNames()
	sort.Strings(valid)
	return SchedulerDef{}, fmt.Errorf("flow: unknown scheduler %q (valid: %s)", name, strings.Join(valid, ", "))
}
