// Package flow is the flow-level dynamic traffic simulator: it runs the
// schedules the SCREAM protocols (and baselines) produce over simulated time
// on the des engine, under continuous packet arrivals.
//
// The static problem the rest of the repository reproduces asks for one
// schedule for one fixed demand vector. This package asks the question the
// related work evaluates schedulers by (Vieira et al., Zhou et al.): what
// goodput, delay and backlog does a scheduler sustain at a given offered
// load? It models:
//
//   - per-link FIFO packet queues with gateway-rooted multi-hop forwarding
//     along the routing forest of internal/route (each non-gateway node owns
//     one upstream link; a packet hops queue to queue until it reaches a
//     gateway);
//   - pluggable arrival processes per source node (internal/traffic: CBR,
//     Poisson, bursty on/off, Zipf hotspot rates);
//   - an epoch driver that alternates *control phases* — re-running a
//     Scheduler against the current backlog snapshot as the demand vector,
//     paying the scheduler's real control cost in simulated time — with
//     *data phases* that drain the queues slot by slot according to the
//     produced schedule;
//   - a metrics layer: delivered goodput, per-packet end-to-end delay
//     percentiles (stats.Percentile), peak backlog and control-overhead
//     fraction.
//
// Runs are deterministic: all randomness derives from Config.Seed, arrivals
// execute as des events in a fixed order, and the epoch driver is
// sequential. The experiment harness exploits this to fan flow cells across
// workers with bit-identical output (exp.FigFlowLoad).
package flow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/dynam"
	"scream/internal/graph"
	"scream/internal/obs"
	"scream/internal/phys"
	"scream/internal/route"
	"scream/internal/sched"
	"scream/internal/stats"
	"scream/internal/traffic"
)

// Topology is the view of a changed network handed to adaptive schedulers:
// the repaired forest and its links, the refreshed sensitivity graph and the
// aliveness vector. The channel object itself is stable — the dynamics world
// mutates it in place — so schedulers keep their channel reference.
type Topology struct {
	Forest *route.Forest
	Links  []phys.Link
	Sens   *graph.Graph
	Alive  []bool
}

// Scheduler produces a schedule for a backlog snapshot. Build receives the
// per-link demand vector (aligned with the current link set) and the epoch
// index (for deterministic per-epoch randomness) and returns the schedule
// together with the simulated control-phase time computing it costs the
// network. Distributed schedulers (FDD, PDD) report their real
// core.Result.ExecTime; idealized baselines (centralized greedy, TDMA)
// report zero.
//
// Rebind, when non-nil, marks the scheduler *adaptive*: after a topology
// change the epoch driver calls Rebind with the repaired topology and
// subsequent Build calls receive demands aligned with the new link set. A
// nil Rebind marks a *static* scheduler (e.g. the classical TDMA frame): it
// keeps serving its original link set, transmissions on dead endpoints
// simply fail — the baseline churn resilience is measured against.
type Scheduler struct {
	Name   string
	Build  func(demands []int, epoch int) (*sched.Schedule, des.Time, error)
	Rebind func(t Topology) error
}

// Config parameterizes a dynamic traffic run.
type Config struct {
	// Forest is the gateway-rooted routing forest packets follow.
	Forest *route.Forest
	// Links are the forest's links in owner order (route.Forest.Links());
	// demand snapshots handed to the Scheduler align with this slice.
	Links []phys.Link
	// Scheduler is re-run every epoch against the backlog snapshot.
	Scheduler Scheduler
	// Timing converts schedule slots into simulated time; the zero value
	// uses core.DefaultTiming.
	Timing core.Timing
	// Arrivals holds one arrival process per node; nil entries are silent
	// nodes. Gateways must be nil: gateway-generated traffic needs no
	// wireless hop (Section II of the paper).
	Arrivals []traffic.Arrival
	// Horizon is the simulated duration of the run.
	Horizon des.Time
	// Seed drives every random draw of the run (arrival processes; the
	// Scheduler derives its own randomness from the epoch index).
	Seed int64
	// MaxQueue caps each link queue in packets; arrivals and forwards into
	// a full queue are dropped and counted. 0 means unbounded.
	MaxQueue int
	// MaxService caps the per-link demand handed to the Scheduler each
	// epoch (service quota). Without a cap, an overloaded network's epochs
	// grow with the backlog and re-scheduling becomes arbitrarily rare; a
	// quota bounds epoch length and keeps the control loop responsive.
	// 0 means serve the full backlog snapshot.
	MaxService int
	// FramesPerEpoch replays the epoch's schedule this many times in the
	// data phase before the next control phase (a superframe). Distributed
	// control is expensive — an FDD re-schedule costs two orders of
	// magnitude more simulated time than one data frame — so real STDMA
	// deployments reuse a schedule across many frames; this knob sets the
	// amortization. Packets that arrive mid-epoch ride later replays of
	// the frame (the per-slot eligibility check admits them), so service
	// keeps flowing between control phases. 0 means 1.
	FramesPerEpoch int
	// IdleWait is how long the driver waits between backlog checks when
	// the network is empty; 0 means one handshake slot.
	IdleWait des.Time

	// Dynamics, when non-nil, drives topology churn and mobility during the
	// run. The world must have been built over this run's Forest and an
	// exclusively-owned network whose channel the Scheduler references.
	// Events are consumed at epoch boundaries: queues on freshly dead nodes
	// are dropped (packets on a dead router are physically lost), adaptive
	// schedulers are rebound to the repaired forest, static schedulers keep
	// their original links with dead-endpoint transmissions suppressed.
	Dynamics *dynam.World
	// RepairCost is the simulated control-time charge for reacting to a
	// topology change — detecting it and disseminating the repaired routes
	// (see core.Timing.RepairCost). It is paid when an adaptive scheduler
	// successfully rebinds (not while the control plane is down, and never
	// by a static frame structure, which reacts to nothing). 0 means free
	// repair.
	RepairCost des.Time

	// Metrics, when non-nil, receives live flow-level counters and gauges
	// (offered/delivered/dropped packets, time split in ticks, backlog,
	// delay histogram). Metrics are write-only: the simulation never reads
	// them, so enabling them cannot change any result.
	Metrics *obs.Registry
	// Trace, when non-nil, receives the structured run ▸ epoch ▸
	// schedule_build ▸ slot span hierarchy (plus point events) timestamped in
	// simulated ticks. Like Metrics, tracing is write-only.
	Trace *obs.Tracer
	// Perf, when non-nil, samples *wall-clock* durations of the driver's hot
	// paths — each schedule build and each full epoch — into the
	// scream_perf_* histograms. Samples are write-only (no simulation
	// decision reads a wall-clock value), so results stay deterministic; a
	// nil Perf is the zero-cost disabled path.
	Perf *obs.Perf

	// Ctx, when non-nil, bounds the run in *wall-clock* terms: it is checked
	// once per driver cycle (epoch boundary), and a canceled context aborts
	// the run with an error wrapping ctx.Err(). This is the cancellation
	// hook of interactive callers — a server draining its sessions, a client
	// dropping its connection. A nil Ctx (every batch caller) changes
	// nothing.
	Ctx context.Context
	// OnEpoch, when non-nil, is invoked synchronously after each built
	// epoch's data phase with a progress snapshot — the streaming hook of
	// interactive callers. The callback must treat the update as read-only
	// (EpochUpdate.Schedule is the live schedule, not a copy); the
	// simulation never observes anything the callback does, so streaming
	// cannot change a result.
	OnEpoch func(EpochUpdate)
}

// EpochUpdate is the per-epoch progress snapshot handed to Config.OnEpoch:
// the control phase just paid for and the data phase just drained. Counter
// fields (Offered, Delivered, Dropped, Transmissions) are cumulative since
// run start, so the final update converges on the run's Result.
type EpochUpdate struct {
	// Epoch is the 0-based control/data cycle index.
	Epoch int `json:"epoch"`
	// Now is the simulated time at the end of the epoch's data phase.
	Now des.Time `json:"t"`
	// Demand is the total backlog snapshot the schedule was built for;
	// Slots the resulting schedule length; Control the simulated control
	// time the build cost.
	Demand  int      `json:"demand"`
	Slots   int      `json:"slots"`
	Control des.Time `json:"control"`
	// Backlog is the total queued packets after the data phase.
	Backlog int `json:"backlog"`
	// Cumulative run counters at the end of the epoch.
	Offered       int `json:"offered"`
	Delivered     int `json:"delivered"`
	Dropped       int `json:"dropped"`
	Transmissions int `json:"transmissions"`
	// Schedule is the schedule this epoch built and replayed — the live
	// object, shared with the driver; callers must not mutate it. It is
	// omitted from JSON; streaming servers marshal it separately on demand.
	Schedule *sched.Schedule `json:"-"`
}

// Result is the outcome of a dynamic traffic run.
type Result struct {
	// Offered is the number of packets generated by arrival processes.
	Offered int
	// Delivered is the number of packets that reached a gateway.
	Delivered int
	// Dropped counts packets discarded at full queues (MaxQueue > 0).
	Dropped int
	// Transmissions is the number of (link, slot) hops performed.
	Transmissions int
	// Epochs is the number of control/data cycles run.
	Epochs int

	// Elapsed is the simulated duration (== min(Horizon, actual end)).
	Elapsed des.Time
	// ControlTime is simulated time spent computing schedules.
	ControlTime des.Time
	// DataTime is simulated time spent in data slots.
	DataTime des.Time
	// IdleTime is simulated time with an empty network.
	IdleTime des.Time

	// DelayMean/P50/P95 summarize end-to-end delay of delivered packets.
	DelayMean des.Time
	DelayP50  des.Time
	DelayP95  des.Time

	// PeakBacklog is the maximum total queued packets at any instant;
	// FinalBacklog the total still queued at the horizon.
	PeakBacklog  int
	FinalBacklog int

	// GoodputPps is delivered end-to-end packets per simulated second;
	// GoodputBps the same in payload bits (Timing.DataBytes per packet).
	GoodputPps float64
	GoodputBps float64
	// ControlFraction is ControlTime / Elapsed.
	ControlFraction float64

	// Dynamics / disruption metrics, populated only when Config.Dynamics is
	// set.

	// FailEvents, RecoverEvents and MoveEvents count applied topology
	// events.
	FailEvents, RecoverEvents, MoveEvents int
	// LostOnFailure counts packets dropped from the queues of nodes that
	// died (distinct from Dropped, the queue-cap drops).
	LostOnFailure int
	// Repairs counts applied topology batches (each triggers one forest
	// repair); Rebuilds counts how many of them fell back to a full
	// rebuild (partition or gateway-set change).
	Repairs, Rebuilds int
	// ControlDownEpochs counts data cycles run while the control plane was
	// unavailable (alive sensitivity graph disconnected): the network
	// replays its last disseminated schedule for free until connectivity
	// returns.
	ControlDownEpochs int
	// RepairTime is simulated time charged for change detection and route
	// dissemination (Config.RepairCost per batch).
	RepairTime des.Time

	// PreEventGoodputPps is the delivered goodput at the instant the first
	// topology event batch was applied — the recovery baseline.
	PreEventGoodputPps float64
	// Recovered reports that, after the *last* applied event batch, some
	// epoch boundary saw the goodput measured since that batch reach 90% of
	// PreEventGoodputPps. RecoveryTime is the time from that batch to the
	// boundary (0 when the baseline was zero — nothing to recover).
	Recovered    bool
	RecoveryTime des.Time
	// PeakBacklogDuringOutage is the largest total backlog observed between
	// the first applied event and the recovery point (or the horizon when
	// the network never recovered).
	PeakBacklogDuringOutage int
}

// packet is one end-to-end data unit moving through the queue network.
type packet struct {
	created  des.Time // arrival at the source
	enqueued des.Time // arrival at the current queue (eligibility gate)
}

// fifo is a slice-backed FIFO with an amortized-compaction head index, so
// sustained runs do not retain every popped packet's backing array.
type fifo struct {
	buf  []packet
	head int
}

func (q *fifo) len() int      { return len(q.buf) - q.head }
func (q *fifo) peek() packet  { return q.buf[q.head] }
func (q *fifo) push(p packet) { q.buf = append(q.buf, p) }
func (q *fifo) pop() packet {
	p := q.buf[q.head]
	q.head++
	switch {
	case q.head == len(q.buf):
		// Drained: reuse the buffer from the start (keeps append from
		// crawling rightward through a mostly-dead backing array).
		q.buf = q.buf[:0]
		q.head = 0
	case q.head > 64 && q.head*2 >= len(q.buf):
		// The dead prefix passed half the buffer: compact. Amortized O(1) —
		// at least head pops happened since the last compaction.
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return p
}

// drop empties the queue (a failed node loses everything it held) and
// returns how many packets were lost. Capacity is retained for reuse after
// the node recovers.
func (q *fifo) drop() int {
	n := q.len()
	q.buf = q.buf[:0]
	q.head = 0
	return n
}

// splitmix64 decorrelates derived seeds (one per arrival process) from the
// single user-facing Config.Seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed mixes a base seed with a stream index into an independent seed.
func DeriveSeed(base int64, stream int64) int64 {
	return int64(splitmix64(uint64(base)*0x9e3779b9 + uint64(stream)))
}

// buildOwner maps every node to its link index in links (-1 for none) and
// validates the one-to-one node/edge mapping of Section II: every link must
// be the forest's upstream edge of its head, each node owns at most one
// queue, and every forwarding target must itself be drainable (or a
// gateway), or packets forwarded to it would strand forever in a queue no
// demand snapshot ever sees.
func buildOwner(forest *route.Forest, links []phys.Link, n int) ([]int, error) {
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	for i, l := range links {
		fl, ok := forest.EdgeOf(l.From)
		if !ok || fl != l {
			return nil, fmt.Errorf("flow: link %v is not the forest's upstream edge of node %d", l, l.From)
		}
		if owner[l.From] != -1 {
			return nil, fmt.Errorf("flow: node %d owns more than one link", l.From)
		}
		owner[l.From] = i
	}
	for _, l := range links {
		if !forest.IsGateway(l.To) && owner[l.To] == -1 {
			return nil, fmt.Errorf("flow: link %v forwards to node %d, which owns no scheduled link", l, l.To)
		}
	}
	return owner, nil
}

// Run executes the dynamic traffic simulation to the horizon.
func Run(cfg Config) (*Result, error) {
	if cfg.Forest == nil {
		return nil, fmt.Errorf("flow: nil forest")
	}
	n := cfg.Forest.NumNodes()
	if len(cfg.Arrivals) != n {
		return nil, fmt.Errorf("flow: %d arrival processes for %d nodes", len(cfg.Arrivals), n)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("flow: horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.Scheduler.Build == nil {
		return nil, fmt.Errorf("flow: no scheduler")
	}
	tm := cfg.Timing
	if tm == (core.Timing{}) {
		tm = core.DefaultTiming()
	}
	dyn := cfg.Dynamics
	if dyn != nil && dyn.Forest() != cfg.Forest {
		return nil, fmt.Errorf("flow: Dynamics world was not built over Config.Forest")
	}
	owner, err := buildOwner(cfg.Forest, cfg.Links, n)
	if err != nil {
		return nil, err
	}
	for u, a := range cfg.Arrivals {
		if a == nil {
			continue
		}
		if cfg.Forest.IsGateway(u) {
			return nil, fmt.Errorf("flow: arrival process attached to gateway %d", u)
		}
		if owner[u] == -1 {
			return nil, fmt.Errorf("flow: source node %d owns no scheduled link", u)
		}
	}

	eng := des.New()
	queues := make([]fifo, n)
	res := &Result{}
	delay := stats.NewSample(1024)
	backlog, peak := 0, 0

	// Per-run registry wins (test isolation); otherwise the process default
	// installed by the CLI's observability opt-in, which is nil by default.
	mreg := cfg.Metrics
	if mreg == nil {
		mreg = obs.Default()
	}
	m := newFlowObs(mreg)
	// The run span is the root of the trace. Its begin line carries the
	// static run parameters plus the per-primitive slot costs
	// (scream_slot, hs_slot) — the constants `screamtrace validate` needs to
	// re-derive the protocol timing identity offline from the trace alone.
	var runSpan obs.SpanID
	if cfg.Trace != nil {
		runSpan = cfg.Trace.Begin("run", 0,
			obs.N("nodes", n), obs.N("links", len(cfg.Links)),
			obs.S("sched", cfg.Scheduler.Name), obs.I("horizon", int64(cfg.Horizon)),
			obs.I("scream_slot", int64(tm.ScreamSlot())),
			obs.I("hs_slot", int64(tm.HandshakeSlot())))
	}

	// enqueue admits p to node u's queue, honoring the cap. It reports
	// whether the packet was admitted.
	enqueue := func(u int, p packet) bool {
		if cfg.MaxQueue > 0 && queues[u].len() >= cfg.MaxQueue {
			res.Dropped++
			m.dropped.Inc()
			return false
		}
		queues[u].push(p)
		backlog++
		if backlog > peak {
			peak = backlog
		}
		return true
	}

	// Arrival processes run as des events: each source schedules its next
	// arrival when the current one fires, so arrivals interleave with the
	// epoch driver's RunUntil calls in timestamp order.
	for u := 0; u < n; u++ {
		a := cfg.Arrivals[u]
		if a == nil {
			continue
		}
		u := u
		rng := rand.New(rand.NewSource(DeriveSeed(cfg.Seed, int64(u))))
		var fire func()
		schedule := func() {
			t := a.Next(eng.Now(), rng)
			if t <= eng.Now() {
				t = eng.Now() + 1
			}
			if t >= cfg.Horizon {
				return
			}
			eng.At(t, fire)
		}
		fire = func() {
			if dyn == nil || dyn.IsAlive(u) {
				// A dead router generates nothing; the process keeps ticking
				// so traffic resumes when the node recovers.
				res.Offered++
				m.offered.Inc()
				enqueue(u, packet{created: eng.Now(), enqueued: eng.Now()})
			}
			schedule()
		}
		schedule()
	}

	slotDur := tm.HandshakeSlot()
	if slotDur <= 0 {
		return nil, fmt.Errorf("flow: non-positive handshake slot duration %v", slotDur)
	}
	idle := cfg.IdleWait
	if idle <= 0 {
		idle = slotDur
	}

	// Topology state: the static path keeps cfg.Forest/cfg.Links for the
	// whole run; under dynamics, adaptive schedulers follow the world's
	// repaired forest while static ones keep the initial view (their
	// transmissions on dead endpoints are suppressed below).
	forest, links := cfg.Forest, cfg.Links
	adaptive := dyn != nil && cfg.Scheduler.Rebind != nil

	// Disruption bookkeeping (see the Result field docs).
	var (
		firstEventSeen   bool
		baseRate         float64
		lastEventAt      des.Time
		deliveredAtEvent int
		recovered        bool
		peakOutage       int
		pendingRebind    bool
		lastSched        *sched.Schedule
	)
	applyChange := func(chg *dynam.Change) {
		res.Repairs++
		if chg.Repair.Rebuilt {
			res.Rebuilds++
		}
		res.FailEvents += len(chg.Failed)
		res.RecoverEvents += len(chg.Recovered)
		res.MoveEvents += len(chg.Moved)
		for _, u := range chg.Failed {
			lost := queues[u].drop()
			res.LostOnFailure += lost
			m.lostOnFailure.Add(int64(lost))
			backlog -= lost
		}
		if !firstEventSeen {
			firstEventSeen = true
			if sec := eng.Now().Seconds(); sec > 0 {
				baseRate = float64(res.Delivered) / sec
			}
			res.PreEventGoodputPps = baseRate
			if baseRate == 0 {
				recovered, res.Recovered = true, true // nothing to recover
			}
			peakOutage = backlog
		}
		lastEventAt = eng.Now()
		deliveredAtEvent = res.Delivered
		if baseRate > 0 {
			recovered, res.Recovered, res.RecoveryTime = false, false, 0
		}
	}
	checkRecovery := func() {
		if !firstEventSeen || recovered {
			return
		}
		if backlog > peakOutage {
			peakOutage = backlog
		}
		window := eng.Now() - lastEventAt
		if window <= 0 {
			return
		}
		if rate := float64(res.Delivered-deliveredAtEvent) / window.Seconds(); rate >= 0.9*baseRate {
			recovered, res.Recovered, res.RecoveryTime = true, true, window
		}
	}
	rebind := func() error {
		t := Topology{Forest: dyn.Forest(), Links: dyn.Links(), Sens: dyn.Sens(), Alive: dyn.Alive()}
		if err := cfg.Scheduler.Rebind(t); err != nil {
			if errors.Is(err, ErrControlUnavailable) {
				// Control plane down (alive sensitivity graph disconnected):
				// keep the previous plan, retry every epoch.
				pendingRebind = true
				return nil
			}
			return err
		}
		pendingRebind = false
		forest, links = t.Forest, t.Links
		o, err := buildOwner(forest, links, n)
		if err != nil {
			return err
		}
		owner = o
		return nil
	}

	demands := make([]int, len(links))
	// Per-cycle snapshot of the control phase, consumed by the OnEpoch
	// callback after the data phase.
	var update EpochUpdate
	for eng.Now() < cfg.Horizon {
		// Cancellation gate: one channel poll per driver cycle. Batch runs
		// (nil Ctx) skip it entirely.
		if cfg.Ctx != nil {
			select {
			case <-cfg.Ctx.Done():
				return nil, fmt.Errorf("flow: run canceled after %v simulated: %w", eng.Now(), cfg.Ctx.Err())
			default:
			}
		}
		// Topology events take effect at epoch boundaries: apply every event
		// due by now, drop dead queues, re-home the routes, and charge the
		// repair dissemination cost in simulated time.
		if dyn != nil {
			chg, err := dyn.AdvanceTo(eng.Now())
			if err != nil {
				return nil, err
			}
			if chg != nil {
				applyChange(chg)
				// Rebinding is a pure function of the world state, so a
				// retry can only succeed after the next change — attempt it
				// exactly once per applied batch.
				if adaptive {
					if err := rebind(); err != nil {
						return nil, err
					}
					// The repair flood is paid when it actually happens: on
					// the successful rebind, not while the control plane is
					// down.
					if !pendingRebind && cfg.RepairCost > 0 {
						t0 := eng.Now()
						rEnd := t0 + cfg.RepairCost
						if rEnd > cfg.Horizon {
							rEnd = cfg.Horizon
						}
						eng.RunUntil(rEnd)
						res.RepairTime += eng.Now() - t0
						m.repairTicks.Add(int64(eng.Now() - t0))
					}
				}
			}
		}
		now := eng.Now()
		if now >= cfg.Horizon {
			break
		}
		if backlog == 0 {
			// Empty network: let arrivals accumulate for one idle tick.
			step := idle
			if now+step > cfg.Horizon {
				step = cfg.Horizon - now
			}
			eng.RunUntil(now + step)
			res.IdleTime += eng.Now() - now
			m.idleTicks.Add(int64(eng.Now() - now))
			continue
		}

		// Control phase: snapshot the backlog as the demand vector and pay
		// the scheduler's control cost in simulated time (arrivals keep
		// flowing underneath). While the control plane is down
		// (pendingRebind), no re-planning is possible: the network keeps
		// replaying the last schedule it disseminated, for free.
		var s *sched.Schedule
		built := false
		builtEpoch := false
		var epochSpan obs.SpanID
		var perfStart int64
		if pendingRebind {
			res.ControlDownEpochs++
			m.ctrlDownEp.Inc()
			s = lastSched
			if s == nil || s.Length() == 0 {
				// Control went down before any schedule existed (or the last
				// one is empty): nothing can move until connectivity returns.
				step := idle
				if now+step > cfg.Horizon {
					step = cfg.Horizon - now
				}
				eng.RunUntil(now + step)
				res.IdleTime += eng.Now() - now
				m.idleTicks.Add(int64(eng.Now() - now))
				continue
			}
		} else {
			if len(demands) != len(links) {
				demands = make([]int, len(links))
			}
			for i, l := range links {
				demands[i] = queues[l.From].len()
				if cfg.MaxService > 0 && demands[i] > cfg.MaxService {
					demands[i] = cfg.MaxService
				}
			}
			demand := 0
			if cfg.Trace != nil || cfg.OnEpoch != nil {
				for _, d := range demands {
					demand += d
				}
			}
			// The epoch span covers this whole control+data cycle; the nested
			// schedule_build span covers just the control phase. The tracer's
			// time base is set to the epoch's absolute start so the protocol
			// layer's events (whose backend clock restarts at zero per build)
			// land at absolute simulated time inside the build span.
			var buildSpan obs.SpanID
			if cfg.Trace != nil {
				epochSpan = cfg.Trace.Begin("epoch", int64(now),
					obs.N("epoch", res.Epochs), obs.N("backlog", backlog),
					obs.N("demand", demand))
				buildSpan = cfg.Trace.Begin("schedule_build", int64(now),
					obs.S("sched", cfg.Scheduler.Name))
				cfg.Trace.SetTimeBase(int64(now))
			}
			perfStart = cfg.Perf.Start()
			var ctrl des.Time
			var err error
			s, ctrl, err = cfg.Scheduler.Build(demands, res.Epochs)
			cfg.Perf.Build(perfStart)
			if err != nil {
				return nil, fmt.Errorf("flow: epoch %d (%s): %w", res.Epochs, cfg.Scheduler.Name, err)
			}
			res.Epochs++
			builtEpoch = true
			if ctrl < 0 {
				return nil, fmt.Errorf("flow: negative control cost %v", ctrl)
			}
			lastSched = s
			cEnd := now + ctrl
			if cEnd > cfg.Horizon {
				cEnd = cfg.Horizon
			}
			eng.RunUntil(cEnd)
			res.ControlTime += eng.Now() - now
			m.epochs.Inc()
			m.controlTicks.Add(int64(eng.Now() - now))
			m.schedSlots.Set(int64(s.Length()))
			if cfg.Trace != nil {
				cfg.Trace.End(buildSpan, int64(eng.Now()),
					obs.N("slots", s.Length()), obs.I("ctrl", int64(eng.Now()-now)))
			}
			if cfg.OnEpoch != nil {
				built = true
				update = EpochUpdate{
					Epoch:    res.Epochs - 1,
					Demand:   demand,
					Slots:    s.Length(),
					Control:  eng.Now() - now,
					Schedule: s,
				}
			}
		}

		// Data phase: drain queues slot by slot, replaying the schedule
		// FramesPerEpoch times. A link transmits the head of its queue if
		// that packet was enqueued by the slot's start (transmissions occupy
		// the full slot). Packets forwarded to the parent become eligible
		// from the instant the slot ends, so a packet can ride multiple hops
		// within one epoch when its links' slots are ordered favorably, and
		// mid-epoch arrivals are served by later frame replays — exactly
		// like a real pipeline under a persistent schedule.
		frames := cfg.FramesPerEpoch
		if frames <= 0 {
			frames = 1
		}
	data:
		for r := 0; r < frames; r++ {
			for i := 0; i < s.Length(); i++ {
				t0 := eng.Now()
				if t0+slotDur > cfg.Horizon {
					break data // the slot would not complete before the horizon
				}
				eng.RunUntil(t0 + slotDur)
				res.DataTime += slotDur
				m.dataTicks.Add(int64(slotDur))
				for _, l := range s.Slot(i) {
					if dyn != nil {
						// Dead endpoints cannot transmit or ACK, and a link
						// the current forest no longer owns (a stale slot
						// from before a reroute, or a static scheduler's
						// frame) moves nothing.
						if !dyn.IsAlive(l.From) || !dyn.IsAlive(l.To) {
							continue
						}
						if oi := owner[l.From]; oi < 0 || links[oi] != l {
							continue
						}
					}
					q := &queues[l.From]
					if q.len() == 0 || q.peek().enqueued > t0 {
						continue // allocation outran the queue; idle slot share
					}
					p := q.pop()
					backlog--
					res.Transmissions++
					m.transmissions.Inc()
					if forest.IsGateway(l.To) {
						res.Delivered++
						m.delivered.Inc()
						m.delay.Observe((eng.Now() - p.created).Seconds())
						delay.Add((eng.Now() - p.created).Seconds())
					} else {
						p.enqueued = eng.Now()
						enqueue(l.To, p)
					}
				}
			}
		}
		checkRecovery()
		m.backlog.Set(int64(backlog))
		m.backlogPeak.Max(int64(peak))
		if builtEpoch {
			// The epoch's data phase is drained: close the span with the
			// cumulative run counters (monotone across epoch ends — one of
			// the invariants `screamtrace validate` replays offline).
			if cfg.Trace != nil {
				cfg.Trace.End(epochSpan, int64(eng.Now()),
					obs.N("offered", res.Offered), obs.N("delivered", res.Delivered),
					obs.N("dropped", res.Dropped), obs.N("backlog", backlog))
			}
			cfg.Perf.Epoch(perfStart)
		}
		if built {
			// The data phase is over: complete the snapshot with the state
			// the epoch left behind and hand it to the streaming caller.
			update.Now = eng.Now()
			update.Backlog = backlog
			update.Offered = res.Offered
			update.Delivered = res.Delivered
			update.Dropped = res.Dropped
			update.Transmissions = res.Transmissions
			cfg.OnEpoch(update)
		}

		if eng.Now() == now {
			if dyn != nil {
				if _, ok := dyn.NextEventAt(); ok {
					// Nothing schedulable right now, but the topology will
					// change again: idle-tick forward instead of running out
					// the clock.
					step := idle
					if now+step > cfg.Horizon {
						step = cfg.Horizon - now
					}
					eng.RunUntil(now + step)
					res.IdleTime += eng.Now() - now
					m.idleTicks.Add(int64(eng.Now() - now))
					continue
				}
			}
			// Zero control cost and no slot fits before the horizon: run
			// out the clock instead of re-scheduling forever.
			res.IdleTime += cfg.Horizon - now
			m.idleTicks.Add(int64(cfg.Horizon - now))
			eng.RunUntil(cfg.Horizon)
		}
	}

	res.Elapsed = eng.Now()
	res.FinalBacklog = backlog
	res.PeakBacklog = peak
	m.backlog.Set(int64(backlog))
	m.backlogPeak.Max(int64(peak))
	res.PeakBacklogDuringOutage = peakOutage
	if delay.N() > 0 {
		res.DelayMean = des.FromSeconds(delay.Mean())
		res.DelayP50 = des.FromSeconds(delay.Percentile(50))
		res.DelayP95 = des.FromSeconds(delay.Percentile(95))
	}
	if sec := res.Elapsed.Seconds(); sec > 0 {
		res.GoodputPps = float64(res.Delivered) / sec
		res.GoodputBps = float64(res.Delivered*tm.DataBytes*8) / sec
		res.ControlFraction = res.ControlTime.Seconds() / sec
	}
	// The run span closes last, carrying the packet-conservation ledger
	// (offered == delivered + dropped + lost + backlog — the PR 7 invariant,
	// now checkable offline from the trace alone) and the delay percentiles.
	if cfg.Trace != nil {
		cfg.Trace.End(runSpan, int64(eng.Now()),
			obs.N("offered", res.Offered), obs.N("delivered", res.Delivered),
			obs.N("dropped", res.Dropped), obs.N("lost", res.LostOnFailure),
			obs.N("backlog", backlog), obs.N("epochs", res.Epochs),
			obs.I("delay_p50", int64(res.DelayP50)), obs.I("delay_p95", int64(res.DelayP95)))
	}
	return res, nil
}
