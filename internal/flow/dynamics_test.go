package flow

// Tests for topology dynamics in the flow-level simulator. The headline
// saturation-style property lives in TestFlowChurnRecoveryVsStaticTDMA:
// schedulers that re-plan at epoch boundaries route around a failure burst
// and recover their goodput, while a static TDMA frame structure keeps
// serving dead routes and does not.

import (
	"math/rand"
	"reflect"
	"testing"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/dynam"
	"scream/internal/route"
	"scream/internal/topo"
)

// dynTestbed clones tb's network and builds a dynamics world over it. The
// returned testbed views the clone, so schedulers built from it reference
// the channel the world mutates.
func dynTestbed(t testing.TB, tb *testbed, cfg dynam.Config) (*testbed, *dynam.World) {
	t.Helper()
	net := tb.net.Clone()
	w, err := dynam.NewWorld(net, tb.forest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{net: net, forest: tb.forest, links: tb.links}, w
}

// burstVictims picks the count non-gateway depth-1 nodes with the largest
// subtrees — the most disruptive non-gateway failure burst the forest
// offers.
func burstVictims(f *route.Forest, count int) []int {
	children := f.Children()
	size := make([]int, f.NumNodes())
	// Subtree sizes by decreasing depth.
	maxD := 0
	for u := 0; u < f.NumNodes(); u++ {
		if f.Depth(u) > maxD {
			maxD = f.Depth(u)
		}
	}
	for d := maxD; d >= 0; d-- {
		for u := 0; u < f.NumNodes(); u++ {
			if f.Depth(u) != d {
				continue
			}
			size[u] = 1
			for _, c := range children[u] {
				size[u] += size[c]
			}
		}
	}
	var victims []int
	for len(victims) < count {
		best := -1
		for u := 0; u < f.NumNodes(); u++ {
			if f.IsGateway(u) || f.Depth(u) != 1 || size[u] == 0 {
				continue
			}
			if best < 0 || size[u] > size[best] {
				best = u
			}
		}
		if best < 0 {
			break
		}
		size[best] = 0
		victims = append(victims, best)
	}
	return victims
}

func runDynamic(t testing.TB, tb *testbed, w *dynam.World, s Scheduler, load float64, horizon des.Time, seed int64) *Result {
	t.Helper()
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	res, err := Run(Config{
		Forest:         tb.forest,
		Links:          tb.links,
		Scheduler:      s,
		Timing:         tm,
		Arrivals:       tb.cbrAt(t, load/frame.Seconds()),
		Horizon:        horizon,
		Seed:           seed,
		MaxService:     8,
		FramesPerEpoch: 8,
		Dynamics:       w,
		RepairCost:     tm.RepairCost(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFlowChurnRecoveryVsStaticTDMA pins the headline property: after a
// permanent burst of subtree-root failures, the adaptive scheduler re-routes
// the orphaned subtrees and recovers its goodput, while the static TDMA
// frame keeps serving dead parents and never does.
func TestFlowChurnRecoveryVsStaticTDMA(t *testing.T) {
	// A small single-gateway mesh, where TDMA's capacity is close to the
	// greedy frame (little spatial reuse to forfeit): the load must sit
	// below the *TDMA* capacity, or the static baseline is saturated before
	// the burst and its goodput cannot visibly drop. The burst kills the
	// gateway-adjacent relay carrying the largest subtree — half the mesh
	// reroutes through the surviving relay, or stalls forever under the
	// static frame. It comes late so the cumulative pre-event baseline is
	// near steady state.
	base := newTestbed(t, 4, 4)
	tm := core.DefaultTiming()
	frame := base.frameTime(t, tm)
	const load = 0.3
	horizon := 240 * frame
	burstAt := 80 * frame
	victims := burstVictims(base.forest, 1)
	if len(victims) != 1 {
		t.Fatal("no burst victim found")
	}
	script := []dynam.Event{{At: burstAt, Kind: dynam.Fail, Node: victims[0]}}

	tbA, wA := dynTestbed(t, base, dynam.Config{Script: script})
	adaptive := runDynamic(t, tbA, wA, tbA.greedy(), load, horizon, 42)

	tbS, wS := dynTestbed(t, base, dynam.Config{Script: script})
	static := runDynamic(t, tbS, wS, NewTDMAScheduler(tbS.links), load, horizon, 42)

	if adaptive.FailEvents != 1 || static.FailEvents != 1 {
		t.Fatalf("burst not applied: %d/%d fail events", adaptive.FailEvents, static.FailEvents)
	}
	if !adaptive.Recovered {
		t.Fatalf("adaptive scheduler never recovered: baseline %.1f pps, delivered %d",
			adaptive.PreEventGoodputPps, adaptive.Delivered)
	}
	if static.Recovered {
		t.Fatalf("static TDMA claims recovery (%.3fs) despite dead routes", static.RecoveryTime.Seconds())
	}
	if adaptive.GoodputPps <= static.GoodputPps {
		t.Fatalf("adaptive goodput %.1f pps not above static %.1f pps",
			adaptive.GoodputPps, static.GoodputPps)
	}
	// The stalled subtrees show up as backlog the static schedule cannot
	// drain.
	if static.FinalBacklog <= adaptive.FinalBacklog {
		t.Fatalf("static final backlog %d not above adaptive %d",
			static.FinalBacklog, adaptive.FinalBacklog)
	}
	if adaptive.Repairs == 0 {
		t.Fatal("no repair recorded for the burst")
	}
	if adaptive.RepairTime <= 0 {
		t.Fatal("repair cost not charged")
	}
}

// TestFlowChurnConservation: with churn, every offered packet is delivered,
// dropped at a full queue, lost on a dead node, or still queued.
func TestFlowChurnConservation(t *testing.T) {
	tb := newTestbed(t, 4, 4)
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	tbD, w := dynTestbed(t, tb, dynam.Config{
		FailRate:     6,
		MeanDowntime: 30 * des.Millisecond,
		Horizon:      100 * frame,
		Seed:         5,
	})
	res := runDynamic(t, tbD, w, tbD.greedy(), 0.6, 100*frame, 9)
	if res.FailEvents == 0 {
		t.Fatal("churn generated no failures; raise the rate")
	}
	if res.LostOnFailure == 0 {
		t.Fatal("no packets lost to failures despite dead queues")
	}
	if got := res.Delivered + res.Dropped + res.LostOnFailure + res.FinalBacklog; got != res.Offered {
		t.Fatalf("conservation violated: delivered %d + dropped %d + lost %d + backlog %d != offered %d",
			res.Delivered, res.Dropped, res.LostOnFailure, res.FinalBacklog, res.Offered)
	}
	if res.Repairs == 0 {
		t.Fatal("no topology batches applied")
	}
}

// TestFlowGatewayOutage: killing a gateway triggers the rebuild fallback and
// traffic keeps flowing through the survivors.
func TestFlowGatewayOutage(t *testing.T) {
	tb := newReuseTestbed(t)
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	gw := tb.forest.Gateways()[0]
	tbD, w := dynTestbed(t, tb, dynam.Config{Script: []dynam.Event{
		{At: 30 * frame, Kind: dynam.Fail, Node: gw},
	}})
	res := runDynamic(t, tbD, w, tbD.greedy(), 0.4, 120*frame, 3)
	if res.Rebuilds == 0 {
		t.Fatal("gateway outage did not force a rebuild")
	}
	if !res.Recovered {
		t.Fatalf("network never recovered from a single gateway outage (baseline %.1f pps)", res.PreEventGoodputPps)
	}
}

// TestFlowMobilityRun: random-waypoint mobility reroutes the forest while
// traffic flows; conservation and determinism-relevant metrics stay sane.
func TestFlowMobilityRun(t *testing.T) {
	tb := newTestbed(t, 4, 4)
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	horizon := 80 * frame
	tbD, w := dynTestbed(t, tb, dynam.Config{
		Mobility:     dynam.RandomWaypoint{SpeedMps: 8, Pause: 10 * des.Millisecond},
		MoveInterval: 5 * des.Millisecond,
		Horizon:      horizon,
		Seed:         11,
	})
	res := runDynamic(t, tbD, w, tbD.greedy(), 0.5, horizon, 4)
	if res.MoveEvents == 0 {
		t.Fatal("mobility generated no move events")
	}
	if res.Repairs == 0 {
		t.Fatal("moves never triggered a repair batch")
	}
	if got := res.Delivered + res.Dropped + res.LostOnFailure + res.FinalBacklog; got != res.Offered {
		t.Fatalf("conservation violated under mobility: %d != offered %d", got, res.Offered)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under mobility")
	}
}

// TestFlowDynamicsDeterministic: identical configurations produce identical
// results, event for event — the property the churn figure's worker
// determinism rests on.
func TestFlowDynamicsDeterministic(t *testing.T) {
	tb := newTestbed(t, 4, 4)
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	cfg := dynam.Config{
		FailRate:     4,
		MeanDowntime: 40 * des.Millisecond,
		Mobility:     dynam.Drift{SpeedMps: 5},
		MoveInterval: 8 * des.Millisecond,
		Horizon:      60 * frame,
		Seed:         21,
	}
	run := func() *Result {
		tbD, w := dynTestbed(t, tb, cfg)
		return runDynamic(t, tbD, w, tbD.greedy(), 0.7, 60*frame, 13)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical dynamic runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFlowControlUnavailable: when failures disconnect the alive sensitivity
// graph, the distributed scheduler keeps its previous plan (no error) and
// resumes re-planning once connectivity returns.
func TestFlowControlUnavailable(t *testing.T) {
	net, err := topo.NewLine(3, 30, topo.DefaultParams(), 1.05)
	if err != nil {
		t.Fatal(err)
	}
	f, err := route.BuildForest(net.Comm, []int{0}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	tb := &testbed{net: net, forest: f, links: f.Links()}
	tm := core.DefaultTiming()
	frame := tb.frameTime(t, tm)
	horizon := 200 * frame
	tbD, w := dynTestbed(t, tb, dynam.Config{Script: []dynam.Event{
		{At: 40 * frame, Kind: dynam.Fail, Node: 1}, // severs node 2 from the gateway
		{At: 120 * frame, Kind: dynam.Recover, Node: 1},
	}})
	fdd, err := NewProtocolScheduler(ProtocolSchedulerConfig{
		Channel: tbD.net.Channel, Sens: tbD.net.Sens, Links: tbD.links,
		Timing: tm, Variant: core.FDD, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runDynamic(t, tbD, w, fdd, 0.3, horizon, 17)
	if res.FailEvents != 1 || res.RecoverEvents != 1 {
		t.Fatalf("events not applied: %d fail, %d recover", res.FailEvents, res.RecoverEvents)
	}
	if res.ControlDownEpochs == 0 {
		t.Fatal("control-unavailable fallback never engaged: no epochs ran on the last schedule")
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if got := res.Delivered + res.Dropped + res.LostOnFailure + res.FinalBacklog; got != res.Offered {
		t.Fatalf("conservation violated: %d != offered %d", got, res.Offered)
	}
}

// TestFifoCompaction pins the satellite fix: under sustained push/pop with
// bounded occupancy, the backing array stays bounded instead of growing with
// the total number of packets ever enqueued, and draining resets the buffer.
func TestFifoCompaction(t *testing.T) {
	var q fifo
	const occupancy = 100
	for i := 0; i < occupancy; i++ {
		q.push(packet{})
	}
	for i := 0; i < 200000; i++ {
		q.pop()
		q.push(packet{})
	}
	if q.len() != occupancy {
		t.Fatalf("occupancy drifted to %d", q.len())
	}
	if c := cap(q.buf); c > 8*occupancy+128 {
		t.Fatalf("backing array grew to %d entries for %d live packets", c, occupancy)
	}
	for q.len() > 0 {
		q.pop()
	}
	if q.head != 0 || len(q.buf) != 0 {
		t.Fatalf("drained queue not reset: head=%d len=%d", q.head, len(q.buf))
	}
	// drop() empties in O(1) and the queue remains usable.
	for i := 0; i < 10; i++ {
		q.push(packet{})
	}
	if n := q.drop(); n != 10 {
		t.Fatalf("drop returned %d, want 10", n)
	}
	if q.len() != 0 {
		t.Fatal("drop left packets behind")
	}
	q.push(packet{created: 7})
	if q.peek().created != 7 {
		t.Fatal("queue unusable after drop")
	}
}
