package flow

import (
	"errors"
	"fmt"
	"math/rand"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/graph"
	"scream/internal/obs"
	"scream/internal/phys"
	"scream/internal/route"
	"scream/internal/sched"
)

// ErrControlUnavailable reports that an adaptive scheduler cannot re-plan on
// the current topology — the sensitivity graph is disconnected among the
// alive nodes, so SCREAM (and with it any distributed control) cannot reach
// every participant. The epoch driver reacts by keeping the previous
// schedule and retrying at the next epoch, exactly what a real deployment
// whose control plane is down would do.
var ErrControlUnavailable = errors.New("flow: distributed control unavailable on current topology")

// FrameTime returns the static-capacity reference of a mesh: the duration of
// one greedy frame delivering one end-to-end packet per non-gateway node
// (demands aggregated over the forest, head-ID ordering, one handshake slot
// per schedule slot). A per-node arrival rate of x/FrameTime offers x times
// the static schedule's sustainable load — the x axis of the load sweeps.
func FrameTime(ch phys.Engine, forest *route.Forest, links []phys.Link, tm core.Timing) (des.Time, error) {
	ones := make([]int, forest.NumNodes())
	for i := range ones {
		ones[i] = 1
	}
	for _, g := range forest.Gateways() {
		ones[g] = 0
	}
	agg, err := forest.AggregateDemand(ones)
	if err != nil {
		return 0, err
	}
	demands := make([]int, len(links))
	for i, l := range links {
		demands[i] = agg[l.From]
	}
	s, err := sched.GreedyPhysical(ch, links, demands, sched.ByHeadIDDesc)
	if err != nil {
		return 0, err
	}
	return des.Time(s.Length()) * tm.HandshakeSlot(), nil
}

// NewGreedyScheduler returns the centralized GreedyPhysical baseline as an
// epoch scheduler. Its control cost is idealized to zero: a genie gathers the
// backlog and disseminates the schedule for free, which makes it the upper
// bound the distributed protocols are judged against (their re-scheduling
// pays real SCREAM/election/handshake time). It is adaptive under topology
// dynamics: Rebind re-targets it at the repaired link set (the channel is
// the same object, mutated in place by the dynamics world).
func NewGreedyScheduler(ch phys.Engine, links []phys.Link, ord sched.Ordering) Scheduler {
	cur := links
	return Scheduler{
		Name: fmt.Sprintf("greedy(%v)", ord),
		Build: func(demands []int, _ int) (*sched.Schedule, des.Time, error) {
			s, err := sched.GreedyPhysical(ch, cur, demands, ord)
			return s, 0, err
		},
		Rebind: func(t Topology) error {
			cur = t.Links
			return nil
		},
	}
}

// NewMaxWeightScheduler returns the max-weight backlog×rate scheduler as an
// epoch scheduler: every epoch re-ranks the links by the product of their
// backlog snapshot and rate proxy (sched.MaxWeightOrder) and runs the greedy
// admission engine in that order — the queue-aware discipline of
// heavy-traffic scheduling, against GreedyPhysical's static link order.
// Control cost is idealized to zero, the same genie as NewGreedyScheduler,
// so the two are directly comparable. It is adaptive under topology
// dynamics: Rebind re-targets it at the repaired link set.
func NewMaxWeightScheduler(ch phys.Engine, links []phys.Link) Scheduler {
	cur := links
	return Scheduler{
		Name: "maxweight",
		Build: func(demands []int, _ int) (*sched.Schedule, des.Time, error) {
			s, err := sched.GreedyMaxWeight(ch, cur, demands)
			return s, 0, err
		},
		Rebind: func(t Topology) error {
			cur = t.Links
			return nil
		},
	}
}

// NewFanZhangScheduler returns the Fan-Zhang-style length-class
// approximation scheduler as an epoch scheduler: every epoch partitions the
// backlogged links into geometric length classes and schedules each class
// separately (sched.ApproxFanZhang), at zero (genie) control cost. Adaptive
// under topology dynamics via Rebind, like the other centralized baselines.
func NewFanZhangScheduler(ch phys.Engine, links []phys.Link) Scheduler {
	cur := links
	return Scheduler{
		Name: "fanzhang",
		Build: func(demands []int, _ int) (*sched.Schedule, des.Time, error) {
			s, err := sched.ApproxFanZhang(ch, cur, demands)
			return s, 0, err
		},
		Rebind: func(t Topology) error {
			cur = t.Links
			return nil
		},
	}
}

// NewGreedyMultiScheduler is NewGreedyScheduler over cs.NumChannels()
// orthogonal channels and numRadios radios per node: every epoch re-runs
// sched.GreedyPhysicalMulti against the backlog snapshot at zero (genie)
// control cost. With one channel and one radio it builds exactly the
// schedules NewGreedyScheduler would.
func NewGreedyMultiScheduler(cs *phys.ChannelSet, numRadios int, links []phys.Link, ord sched.Ordering) Scheduler {
	return NewGreedyMultiEngineScheduler(cs.Base(), cs.NumChannels(), numRadios, links, ord)
}

// NewGreedyMultiEngineScheduler is NewGreedyMultiScheduler over any
// interference engine: channels orthogonal copies of eng, numRadios radios
// per node.
func NewGreedyMultiEngineScheduler(eng phys.Engine, channels, numRadios int, links []phys.Link, ord sched.Ordering) Scheduler {
	cur := links
	return Scheduler{
		Name: fmt.Sprintf("greedy(%v,C=%d)", ord, channels),
		Build: func(demands []int, _ int) (*sched.Schedule, des.Time, error) {
			s, err := sched.GreedyPhysicalMultiEngine(eng, channels, numRadios, cur, demands, ord)
			return s, 0, err
		},
		Rebind: func(t Topology) error {
			cur = t.Links
			return nil
		},
	}
}

// NewTDMAMultiScheduler generalizes the TDMA frame to multiple channels:
// the frame structure keeps the single-channel scan order, but consecutive
// backlogged links pack into one slot — one link per channel — until the
// slot's channels run out or an endpoint's radio budget is exhausted, at
// which point the slot flushes. One transmission per channel per slot is
// always SINR-feasible within its channel, so the baseline still needs no
// interference information; each link gets at most one placement per frame
// (a frame position is a link's, channels only let positions overlap in
// time). With one channel and one radio it emits exactly NewTDMAScheduler's
// singleton slots.
func NewTDMAMultiScheduler(links []phys.Link, channels, numRadios int) Scheduler {
	if channels < 1 {
		channels = 1
	}
	if numRadios < 1 {
		numRadios = 1
	}
	return Scheduler{
		Name: fmt.Sprintf("tdma(C=%d)", channels),
		Build: func(demands []int, _ int) (*sched.Schedule, des.Time, error) {
			if len(demands) != len(links) {
				return nil, 0, fmt.Errorf("flow: %d demands for %d links", len(demands), len(links))
			}
			remaining := append([]int(nil), demands...)
			left := 0
			for _, d := range remaining {
				if d < 0 {
					return nil, 0, fmt.Errorf("flow: negative demand %d", d)
				}
				left += d
			}
			s := sched.NewSchedule()
			var slotLinks []phys.Link
			var slotChans []int
			radios := make(map[int]int)
			flush := func() {
				if len(slotLinks) == 0 {
					return
				}
				s.AppendSlotAssigned(slotLinks, slotChans)
				slotLinks, slotChans = slotLinks[:0], slotChans[:0]
				clear(radios)
			}
			for left > 0 {
				for i := range links {
					if remaining[i] <= 0 {
						continue
					}
					l := links[i]
					if len(slotLinks) >= channels || radios[l.From] >= numRadios || radios[l.To] >= numRadios {
						flush()
					}
					slotChans = append(slotChans, len(slotLinks))
					slotLinks = append(slotLinks, l)
					radios[l.From]++
					radios[l.To]++
					remaining[i]--
					left--
				}
				flush() // frame boundary: positions never pack across scans
			}
			return s, 0, nil
		},
	}
}

// NewTDMAScheduler returns the classical single-slot TDMA baseline: frames
// that give every backlogged link exactly one singleton slot, repeated until
// the snapshot is served. One transmission per slot is always SINR-feasible,
// no control traffic is needed (the frame structure is static), and there is
// no spatial reuse — the schedule the paper's improvement metric is measured
// against, run dynamically.
func NewTDMAScheduler(links []phys.Link) Scheduler {
	return Scheduler{
		Name: "tdma",
		Build: func(demands []int, _ int) (*sched.Schedule, des.Time, error) {
			if len(demands) != len(links) {
				return nil, 0, fmt.Errorf("flow: %d demands for %d links", len(demands), len(links))
			}
			s := sched.NewSchedule()
			remaining := append([]int(nil), demands...)
			left := 0
			for _, d := range remaining {
				if d < 0 {
					return nil, 0, fmt.Errorf("flow: negative demand %d", d)
				}
				left += d
			}
			for left > 0 {
				for i := range links {
					if remaining[i] > 0 {
						s.AppendSlot([]phys.Link{links[i]})
						remaining[i]--
						left--
					}
				}
			}
			return s, 0, nil
		},
	}
}

// ProtocolSchedulerConfig parameterizes a distributed epoch scheduler.
type ProtocolSchedulerConfig struct {
	Channel *phys.Channel
	Sens    *graph.Graph // sensitivity graph (who hears whom)
	Links   []phys.Link
	K       int // SCREAM length; 0 derives ID(G_S) from Sens
	Timing  core.Timing
	Variant core.Variant
	P       float64 // PDD activation probability
	Seed    int64   // per-epoch RNG seeds derive from this
	// Channels is the number of orthogonal data channels each epoch's
	// protocol run schedules over (0 or 1 = the single-channel protocol);
	// Radios is the per-node radio budget (0 = 1). See core.Config.
	Channels int
	Radios   int
	// Metrics and Trace, when non-nil, are forwarded into every epoch's
	// core.Config — each protocol run then publishes its counters and
	// emits its trace events. See core.Config.Metrics/Trace.
	Metrics *obs.Registry
	Trace   *obs.Tracer
}

// NewProtocolScheduler returns FDD or PDD as an epoch scheduler. Every epoch
// re-runs the full distributed protocol on a fresh ideal backend against the
// backlog snapshot, and the returned control cost is the protocol's real
// simulated execution time (core.Result.ExecTime) — the price the network
// pays, in SCREAMs, elections and handshakes, for re-planning.
//
// The scheduler is adaptive under topology dynamics: Rebind rebuilds the
// backend over the refreshed sensitivity graph with the SCREAM length
// re-validated against the interference diameter restricted to the alive
// nodes (cfg.K acts as a floor). When the alive sensitivity graph is
// disconnected, Rebind returns ErrControlUnavailable and the epoch driver
// keeps the previous schedule until connectivity returns.
func NewProtocolScheduler(cfg ProtocolSchedulerConfig) (Scheduler, error) {
	tm := cfg.Timing
	if tm == (core.Timing{}) {
		tm = core.DefaultTiming()
	}
	k := cfg.K
	if k == 0 {
		k = cfg.Sens.Diameter()
		if k <= 0 {
			return Scheduler{}, fmt.Errorf("flow: sensitivity graph not strongly connected")
		}
	}
	name := cfg.Variant.String()
	if cfg.Variant == core.PDD {
		if cfg.P <= 0 || cfg.P > 1 {
			return Scheduler{}, fmt.Errorf("flow: PDD needs probability in (0,1], got %v", cfg.P)
		}
		name = fmt.Sprintf("PDD(p=%.2f)", cfg.P)
	}
	if cfg.Channels > 1 {
		name = fmt.Sprintf("%s(C=%d)", name, cfg.Channels)
	}
	// Build (and validate) the backend once; every epoch clones it, which
	// shares the sensitivity adjacency but gives the run fresh time
	// accounting and engine state, instead of re-deriving the adjacency and
	// re-checking the interference diameter per epoch.
	proto, err := core.NewIdealBackend(cfg.Channel, cfg.Sens, k, tm, false)
	if err != nil {
		return Scheduler{}, err
	}
	links := cfg.Links
	return Scheduler{
		Name: name,
		Build: func(demands []int, epoch int) (*sched.Schedule, des.Time, error) {
			b := proto.Clone()
			run := core.Config{
				Variant:     cfg.Variant,
				Links:       links,
				Demands:     demands,
				Backend:     b,
				NumChannels: cfg.Channels,
				NumRadios:   cfg.Radios,
				Metrics:     cfg.Metrics,
				Trace:       cfg.Trace,
			}
			if cfg.Variant == core.PDD {
				run.Probability = cfg.P
				run.RNG = rand.New(rand.NewSource(DeriveSeed(cfg.Seed, int64(epoch))))
			}
			res, err := core.Run(run)
			if err != nil {
				return nil, 0, err
			}
			return res.Schedule, res.ExecTime, nil
		},
		Rebind: func(t Topology) error {
			// cfg.K is a floor; the backend raises the SCREAM length to the
			// interference diameter among the alive nodes when needed.
			b, err := core.NewIdealBackendAmong(cfg.Channel, t.Sens, t.Alive, cfg.K, tm)
			if err != nil {
				if errors.Is(err, core.ErrSensDisconnected) {
					return ErrControlUnavailable
				}
				return err
			}
			proto = b
			links = t.Links
			return nil
		},
	}, nil
}
