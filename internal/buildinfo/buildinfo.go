// Package buildinfo derives a human-readable version string for the CLIs
// from the build metadata the Go toolchain embeds — no linker flags, no
// generated files. `go build` from a git checkout stamps the VCS revision
// automatically; `go install module@version` stamps the module version.
package buildinfo

import (
	"runtime/debug"
	"strings"
)

// Version returns "scream <version> (<rev>[, modified]) <goversion>", with
// the pieces that are unavailable in this build omitted.
func Version() string {
	var b strings.Builder
	b.WriteString("scream")
	info, ok := debug.ReadBuildInfo()
	if !ok {
		b.WriteString(" (no build info)")
		return b.String()
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		b.WriteString(" " + v)
	} else {
		b.WriteString(" devel")
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += ", modified"
		}
		b.WriteString(" (" + rev + ")")
	}
	if info.GoVersion != "" {
		b.WriteString(" " + info.GoVersion)
	}
	return b.String()
}
