package topo

import (
	"math"
	"math/rand"
	"testing"

	"scream/internal/geom"
	"scream/internal/phys"
)

func TestGridPositions(t *testing.T) {
	pts := GridPositions(2, 3, 10)
	if len(pts) != 6 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0] != (geom.Point{X: 0, Y: 0}) || pts[5] != (geom.Point{X: 20, Y: 10}) {
		t.Errorf("corner points wrong: %v ... %v", pts[0], pts[5])
	}
}

func TestLinePositions(t *testing.T) {
	pts := LinePositions(4, 5)
	if pts[3] != (geom.Point{X: 15, Y: 0}) {
		t.Errorf("line positions wrong: %v", pts)
	}
}

func TestUniformPositionsInRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	region := geom.Rect{MinX: 10, MinY: 20, MaxX: 30, MaxY: 50}
	for _, p := range UniformPositions(500, region, rng) {
		if !region.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
}

func TestNewGridBasics(t *testing.T) {
	net, err := NewGrid(GridConfig{Rows: 4, Cols: 4, Step: 30, Params: DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 16 {
		t.Fatalf("NumNodes = %d", net.NumNodes())
	}
	if !net.Connected() {
		t.Fatal("grid with derived power must be connected")
	}
	// Interior nodes should have exactly 4 communication neighbors when
	// range is just over one step (grid-step range, Section IV-B.1).
	interior := 5 // node (1,1) in a 4x4 grid
	if d := net.Comm.OutDegree(interior); d != 4 {
		t.Errorf("interior degree = %d, want 4", d)
	}
	// Corner nodes have 2 neighbors.
	if d := net.Comm.OutDegree(0); d != 2 {
		t.Errorf("corner degree = %d, want 2", d)
	}
}

func TestGridNeighborDensityTheta1(t *testing.T) {
	// rho(G) for a grid-step-range grid approaches 4 (Theta(1)) regardless
	// of n — the minimal-density scenario of Section IV-B.1.
	for _, dim := range []int{4, 6, 8} {
		net, err := NewGrid(GridConfig{Rows: dim, Cols: dim, Step: 25, Params: DefaultParams()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		rho := net.NeighborDensity()
		if rho < 2 || rho > 4 {
			t.Errorf("dim %d: rho = %v, want in [2,4]", dim, rho)
		}
	}
}

func TestSensitivitySupergraphOfComm(t *testing.T) {
	// The sensitivity graph must contain every communication edge
	// (Section II: G_S is a super-graph of G).
	net, err := NewGrid(GridConfig{Rows: 5, Cols: 5, Step: 30, Params: DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < net.NumNodes(); u++ {
		for _, v := range net.Comm.Neighbors(u) {
			if !net.Sens.HasEdge(u, v) {
				t.Fatalf("comm edge %d->%d missing from sensitivity graph", u, v)
			}
		}
	}
}

func TestInterferenceDiameterGridTheorem2(t *testing.T) {
	// Theorem 2: for a square-grid-convex region, ID(G) <= sqrt2*diam(R)/r.
	// For an aligned square of (k-1) steps, the bound is tight at 2*(k-1)
	// hops when rCS = rc = step.
	for _, dim := range []int{3, 4, 6, 8} {
		net, err := NewGrid(GridConfig{Rows: dim, Cols: dim, Step: 25, Params: DefaultParams()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		id := net.InterferenceDiameter()
		if id < 0 {
			t.Fatalf("dim %d: sensitivity graph not strongly connected", dim)
		}
		want := 2 * (dim - 1) // Manhattan diameter of the lattice
		if id != want {
			t.Errorf("dim %d: ID = %d, want %d", dim, id, want)
		}
		bound := math.Sqrt2 * net.Region.Diameter() / 25
		if float64(id) > bound+1e-9 {
			t.Errorf("dim %d: ID %d exceeds Theorem 2 bound %.3f", dim, id, bound)
		}
	}
}

func TestInterferenceDiameterScalingSqrtN(t *testing.T) {
	// Grid: ID = Theta(sqrt(n)); check ID(4k^2 nodes) ~ 2*ID(k^2 nodes).
	id := func(dim int) int {
		net, err := NewGrid(GridConfig{Rows: dim, Cols: dim, Step: 25, Params: DefaultParams()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return net.InterferenceDiameter()
	}
	small, large := id(4), id(8)
	ratio := float64(large) / float64(small)
	if ratio < 1.8 || ratio > 2.8 {
		t.Errorf("ID scaling ratio = %v, want about 2.33 (14/6)", ratio)
	}
}

func TestUniformInterferenceDiameterTheorem3(t *testing.T) {
	// Theorem 3: with r = sqrt(ln n / (pi n)) * side and uniform placement,
	// ID = Theta(sqrt(n / log n)). We verify the bound 2*sqrt(2*pi*n/ln n)
	// from the cell argument holds with slack on connected draws.
	rng := rand.New(rand.NewSource(3))
	n := 150
	side := 1000.0
	r := math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n))) * side
	p := DefaultParams()
	power := p.PathLoss.PowerForRange(r, p.NoiseMW, p.Beta)
	pts := UniformPositions(n, geom.Square(side), rng)
	net, err := Build(pts, HomogeneousPower(n, power), geom.Square(side), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Connected() {
		t.Skip("random draw disconnected at the connectivity threshold; acceptable")
	}
	id := net.InterferenceDiameter()
	bound := 2 * math.Sqrt(2*math.Pi*float64(n)/math.Log(float64(n)))
	if float64(id) > 2*bound {
		t.Errorf("ID = %d far exceeds Theorem 3 bound %.1f", id, bound)
	}
}

func TestDensityHelpers(t *testing.T) {
	side := SideForDensity(64, 1000) // 64 nodes at 1000/km^2 -> 0.064 km^2
	wantSide := math.Sqrt(0.064 * 1e6)
	if math.Abs(side-wantSide) > 1e-9 {
		t.Errorf("SideForDensity = %v, want %v", side, wantSide)
	}
	net, err := NewGrid(GridConfig{Rows: 8, Cols: 8, Step: side / 8, Params: DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Region is (7*step)^2; density is computed over the hull, so it will
	// exceed the nominal 1000/km^2 somewhat. Sanity-check the ballpark.
	d := net.DensityNodesPerSqKm()
	if d < 800 || d > 2000 {
		t.Errorf("density = %v, want ~1000-1400", d)
	}
}

func TestBuildValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := Build(nil, nil, geom.Square(1), p, nil); err == nil {
		t.Error("empty build should fail")
	}
	pts := LinePositions(3, 10)
	if _, err := Build(pts, []float64{1, 1}, geom.Square(1), p, nil); err == nil {
		t.Error("mismatched powers should fail")
	}
	p2 := p
	p2.ShadowSigmaDB = 4
	if _, err := Build(pts, HomogeneousPower(3, 1), geom.Square(1), p2, nil); err == nil {
		t.Error("shadowing without rng should fail")
	}
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(GridConfig{Rows: 0, Cols: 4, Step: 10, Params: DefaultParams()}, nil); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := NewGrid(GridConfig{Rows: 4, Cols: 4, Step: 0, Params: DefaultParams()}, nil); err == nil {
		t.Error("zero step should fail")
	}
}

func TestNewUniformConnectivityRetry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := DefaultParams()
	net, err := NewUniform(UniformConfig{
		N: 40, Side: 300, MinTxDBm: 17, MaxTxDBm: 23, Params: p,
	}, rng)
	if err != nil {
		t.Fatalf("expected a connected draw: %v", err)
	}
	if !net.Connected() {
		t.Fatal("returned network should be connected")
	}
	// Heterogeneous powers should actually differ.
	same := true
	for _, nd := range net.Nodes[1:] {
		if nd.TxPowerMW != net.Nodes[0].TxPowerMW {
			same = false
			break
		}
	}
	if same {
		t.Error("heterogeneous powers expected")
	}
}

func TestNewUniformValidation(t *testing.T) {
	if _, err := NewUniform(UniformConfig{N: 0, Side: 10, Params: DefaultParams()}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewUniform(UniformConfig{N: 5, Side: 10, Params: DefaultParams()}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestNewUniformImpossibleConnectivity(t *testing.T) {
	// Tiny power over a huge region cannot connect; expect error plus a
	// best-effort network.
	rng := rand.New(rand.NewSource(2))
	net, err := NewUniform(UniformConfig{
		N: 10, Side: 100000, MinTxDBm: -30, MaxTxDBm: -30, Params: DefaultParams(), MaxRetries: 3,
	}, rng)
	if err == nil {
		t.Fatal("expected connectivity failure")
	}
	if net == nil {
		t.Fatal("best-effort network should still be returned")
	}
}

func TestNewLine(t *testing.T) {
	net, err := NewLine(10, 30, DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Connected() {
		t.Fatal("line should be connected")
	}
	// A line's interference diameter is n-1 when range covers one step.
	if id := net.InterferenceDiameter(); id != 9 {
		t.Errorf("line ID = %d, want 9", id)
	}
}

func TestShadowingChangesGraph(t *testing.T) {
	// With strong shadowing, some nominal links drop and/or long links
	// appear; the build must remain well-formed and deterministic per seed.
	p := DefaultParams()
	p.ShadowSigmaDB = 8
	pts := GridPositions(5, 5, 30)
	region := geom.Square(120)
	n1, err := Build(pts, HomogeneousPower(25, phys.DBm(12).MilliWatts()), region, p, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Build(pts, HomogeneousPower(25, phys.DBm(12).MilliWatts()), region, p, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if n1.Comm.NumEdges() != n2.Comm.NumEdges() {
		t.Error("same seed must give the same graph")
	}
	n3, err := Build(pts, HomogeneousPower(25, phys.DBm(12).MilliWatts()), region, p, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if n1.Comm.NumEdges() == n3.Comm.NumEdges() && n1.Sens.NumEdges() == n3.Sens.NumEdges() {
		t.Log("different seeds coincidentally gave equal edge counts; acceptable but unusual")
	}
}

func TestHeterogeneousPowerRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pw := HeterogeneousPower(200, 10, 20, rng)
	lo, hi := phys.DBm(10).MilliWatts(), phys.DBm(20).MilliWatts()
	for _, p := range pw {
		if p < lo-1e-12 || p > hi+1e-12 {
			t.Fatalf("power %v outside [%v, %v]", p, lo, hi)
		}
	}
}
