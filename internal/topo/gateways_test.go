package topo

import (
	"testing"

	"scream/internal/geom"
)

func TestGatewaysNearPoints(t *testing.T) {
	net, err := NewGrid(GridConfig{Rows: 4, Cols: 4, Step: 10, Params: DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gws, err := GatewaysNearPoints(net, []geom.Point{{X: 0, Y: 0}, {X: 30, Y: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gws) != 2 || gws[0] != 0 || gws[1] != 15 {
		t.Errorf("gateways = %v, want [0 15]", gws)
	}
}

func TestGatewaysNearPointsDistinct(t *testing.T) {
	net, err := NewGrid(GridConfig{Rows: 2, Cols: 2, Step: 10, Params: DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both targets nearest to node 0: the second must pick another node.
	gws, err := GatewaysNearPoints(net, []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if gws[0] == gws[1] {
		t.Errorf("gateways must be distinct, got %v", gws)
	}
}

func TestGatewaysNearPointsErrors(t *testing.T) {
	net, err := NewGrid(GridConfig{Rows: 2, Cols: 2, Step: 10, Params: DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GatewaysNearPoints(net, nil); err == nil {
		t.Error("no targets should fail")
	}
	many := make([]geom.Point, 5)
	if _, err := GatewaysNearPoints(net, many); err == nil {
		t.Error("more targets than nodes should fail")
	}
}

func TestQuadrantGateways(t *testing.T) {
	net, err := NewGrid(GridConfig{Rows: 8, Cols: 8, Step: 10, Params: DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gws, err := QuadrantGateways(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(gws) != 4 {
		t.Fatalf("want 4 gateways, got %v", gws)
	}
	seen := map[int]bool{}
	quadrant := map[int]bool{}
	c := net.Region.Center()
	for _, g := range gws {
		if seen[g] {
			t.Fatalf("duplicate gateway %d", g)
		}
		seen[g] = true
		p := net.Nodes[g].Pos
		q := 0
		if p.X > c.X {
			q |= 1
		}
		if p.Y > c.Y {
			q |= 2
		}
		if quadrant[q] {
			t.Errorf("two gateways in quadrant %d: %v", q, gws)
		}
		quadrant[q] = true
	}
}
