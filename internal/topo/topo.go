// Package topo builds wireless mesh topologies: node placements (planned
// grids, unplanned uniform deployments, lines), the communication graph, the
// sensitivity graph and its interference diameter (Definitions 1, 2 and 6 of
// the paper).
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"scream/internal/geom"
	"scream/internal/graph"
	"scream/internal/phys"
)

// Node is one wireless router of the mesh backbone.
type Node struct {
	ID        int
	Pos       geom.Point
	TxPowerMW float64
}

// Params collects the radio-environment knobs shared by all topologies.
type Params struct {
	PathLoss      phys.LogDistance
	ShadowSigmaDB float64 // log-normal shadowing std dev in dB; 0 disables
	NoiseMW       float64
	Beta          float64 // linear SINR threshold
	CSThresholdMW float64 // carrier-sense (energy detect) threshold
}

// DefaultParams returns the radio environment used across the reproduction:
// log-distance propagation with exponent 3 (the paper's setting), -96 dBm
// noise floor, 10 dB SINR threshold, and a carrier-sense threshold equal to
// the decode sensitivity (rCS = rc, the worst case analyzed in Section IV-B).
func DefaultParams() Params {
	noise := phys.DBm(-96).MilliWatts()
	beta := phys.DB(10).Linear()
	return Params{
		PathLoss:      phys.DefaultLogDistance(),
		ShadowSigmaDB: 0,
		NoiseMW:       noise,
		Beta:          beta,
		CSThresholdMW: noise * beta,
	}
}

// Network is a fully materialized deployment: nodes, channel, communication
// graph and sensitivity graph.
//
// Networks are immutable except through the topology-dynamics methods in
// dynamics.go (MoveNode, SetNodeDown, SetNodeUp, RefreshGraphs), which
// require exclusive access. Clone a shared network before mutating it.
type Network struct {
	Nodes   []Node
	Channel *phys.Channel
	Comm    *graph.Graph // bidirectional links only (paper ignores unidirectional)
	Sens    *graph.Graph // directed sensitivity graph (Definition 1)
	Region  geom.Rect
	Params  Params

	// shadowDB is the static symmetric per-pair log-normal shadowing draw in
	// dB (nil without shadowing). It persists across node moves: shadowing
	// models obstructions tied to the node pair, the standard static-shadowing
	// assumption.
	shadowDB [][]float64
	// down[u] marks node u's radio as off; its channel gains are zeroed and
	// it holds no graph edges until SetNodeUp restores it.
	down []bool
}

// Build materializes a network from positions and per-node powers. When
// p.ShadowSigmaDB > 0, rng must be non-nil and supplies the static symmetric
// log-normal shadowing draws.
func Build(positions []geom.Point, txPowerMW []float64, region geom.Rect, p Params, rng *rand.Rand) (*Network, error) {
	n := len(positions)
	if n == 0 {
		return nil, fmt.Errorf("topo: no nodes")
	}
	if len(txPowerMW) != n {
		return nil, fmt.Errorf("topo: %d powers for %d nodes", len(txPowerMW), n)
	}
	if err := p.PathLoss.Validate(); err != nil {
		return nil, err
	}
	if p.ShadowSigmaDB > 0 && rng == nil {
		return nil, fmt.Errorf("topo: shadowing requires an rng")
	}

	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = positions[i].Dist(positions[j])
		}
	}
	var shadow [][]float64
	if p.ShadowSigmaDB > 0 {
		shadow = make([][]float64, n)
		for i := range shadow {
			shadow[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s := rng.NormFloat64() * p.ShadowSigmaDB
				shadow[i][j] = s
				shadow[j][i] = s
			}
		}
	}
	gain := phys.BuildGainMatrix(dist, p.PathLoss, shadow)
	ch, err := phys.NewChannel(txPowerMW, gain, p.NoiseMW, p.Beta)
	if err != nil {
		return nil, err
	}

	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: i, Pos: positions[i], TxPowerMW: txPowerMW[i]}
	}

	comm := graph.New(n)
	sens := graph.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if ch.RxPowerMW(u, v) >= p.CSThresholdMW {
				sens.AddEdge(u, v)
			}
			if u < v && ch.LinkUp(u, v) && ch.LinkUp(v, u) {
				comm.AddUndirected(u, v)
			}
		}
	}
	return &Network{
		Nodes:    nodes,
		Channel:  ch,
		Comm:     comm,
		Sens:     sens,
		Region:   region,
		Params:   p,
		shadowDB: shadow,
	}, nil
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// InterferenceDiameter returns ID(G_S) per Definition 2: the maximum hop
// distance in the sensitivity graph, or -1 when G_S is not strongly
// connected (the paper's ID = infinity).
func (n *Network) InterferenceDiameter() int {
	return n.Sens.Diameter()
}

// NeighborDensity returns rho(G) per Definition 6: the average node degree
// of the communication graph.
func (n *Network) NeighborDensity() float64 {
	// Comm stores each undirected edge as two arcs, so the average
	// out-degree is exactly the average number of neighbors.
	return n.Comm.AvgDegree()
}

// DensityNodesPerSqKm returns the spatial node density of the deployment.
func (n *Network) DensityNodesPerSqKm() float64 {
	areaKm2 := n.Region.Area() / 1e6
	if areaKm2 == 0 {
		return 0
	}
	return float64(len(n.Nodes)) / areaKm2
}

// Connected reports whether the communication graph is connected (it is
// symmetric, so strong connectivity and connectivity coincide).
func (n *Network) Connected() bool {
	return n.Comm.StronglyConnected()
}

// GridPositions places rows*cols nodes on a square lattice with the given
// step, anchored at the origin.
func GridPositions(rows, cols int, step float64) []geom.Point {
	pts := make([]geom.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, geom.Point{X: float64(c) * step, Y: float64(r) * step})
		}
	}
	return pts
}

// UniformPositions places n nodes uniformly at random in region.
func UniformPositions(n int, region geom.Rect, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: region.MinX + rng.Float64()*region.Width(),
			Y: region.MinY + rng.Float64()*region.Height(),
		}
	}
	return pts
}

// LinePositions places n nodes on the x axis with the given spacing.
func LinePositions(n int, step float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * step}
	}
	return pts
}

// HomogeneousPower returns an n-element power vector of the given level.
func HomogeneousPower(n int, mw float64) []float64 {
	pw := make([]float64, n)
	for i := range pw {
		pw[i] = mw
	}
	return pw
}

// HeterogeneousPower draws n power levels log-uniformly between minDBm and
// maxDBm, modelling the unplanned deployments of Section VI-A where node
// powers differ.
func HeterogeneousPower(n int, minDBm, maxDBm phys.DBm, rng *rand.Rand) []float64 {
	pw := make([]float64, n)
	span := float64(maxDBm - minDBm)
	for i := range pw {
		pw[i] = phys.DBm(float64(minDBm) + rng.Float64()*span).MilliWatts()
	}
	return pw
}

// GridConfig describes a planned square-grid deployment (the paper's
// "planned" scenario with homogeneous transmission power).
type GridConfig struct {
	Rows, Cols int
	Step       float64 // grid step in meters
	TxPowerMW  float64 // homogeneous power; 0 means "derive from Step"
	RangeSlack float64 // when deriving power: range = Step * RangeSlack (default 1.05)
	Params     Params
}

// NewGrid builds a planned grid network.
func NewGrid(cfg GridConfig, rng *rand.Rand) (*Network, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("topo: grid needs positive dims, got %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("topo: grid needs positive step, got %v", cfg.Step)
	}
	p := cfg.Params
	power := cfg.TxPowerMW
	if power == 0 {
		slack := cfg.RangeSlack
		if slack == 0 {
			slack = 1.05
		}
		power = p.PathLoss.PowerForRange(cfg.Step*slack, p.NoiseMW, p.Beta)
	}
	pts := GridPositions(cfg.Rows, cfg.Cols, cfg.Step)
	region := geom.Rect{
		MinX: 0, MinY: 0,
		MaxX: float64(cfg.Cols-1) * cfg.Step,
		MaxY: float64(cfg.Rows-1) * cfg.Step,
	}
	n := len(pts)
	return Build(pts, HomogeneousPower(n, power), region, p, rng)
}

// UniformConfig describes an unplanned uniform deployment with (optionally)
// heterogeneous transmit power.
type UniformConfig struct {
	N          int
	Side       float64 // square region side in meters
	MinTxDBm   phys.DBm
	MaxTxDBm   phys.DBm
	Params     Params
	MaxRetries int // connectivity retries (default 20)
}

// NewUniform builds an unplanned uniform network, re-drawing positions until
// the communication graph is connected (or retries are exhausted, returning
// the last draw with an error).
func NewUniform(cfg UniformConfig, rng *rand.Rand) (*Network, error) {
	if cfg.N <= 0 || cfg.Side <= 0 {
		return nil, fmt.Errorf("topo: uniform needs n>0 and side>0")
	}
	if rng == nil {
		return nil, fmt.Errorf("topo: uniform placement requires an rng")
	}
	retries := cfg.MaxRetries
	if retries == 0 {
		retries = 20
	}
	region := geom.Square(cfg.Side)
	var last *Network
	var err error
	for i := 0; i < retries; i++ {
		pts := UniformPositions(cfg.N, region, rng)
		var pw []float64
		if cfg.MinTxDBm == cfg.MaxTxDBm {
			pw = HomogeneousPower(cfg.N, cfg.MinTxDBm.MilliWatts())
		} else {
			pw = HeterogeneousPower(cfg.N, cfg.MinTxDBm, cfg.MaxTxDBm, rng)
		}
		last, err = Build(pts, pw, region, cfg.Params, rng)
		if err != nil {
			return nil, err
		}
		if last.Connected() {
			return last, nil
		}
	}
	return last, fmt.Errorf("topo: could not draw a connected uniform network in %d tries (n=%d side=%v)", retries, cfg.N, cfg.Side)
}

// NewLine builds a line network with the given spacing and homogeneous
// power derived from the spacing (used by the Theorem 1 construction).
func NewLine(n int, step float64, p Params, slack float64) (*Network, error) {
	if n <= 0 || step <= 0 {
		return nil, fmt.Errorf("topo: line needs n>0 and step>0")
	}
	if slack == 0 {
		slack = 1.05
	}
	power := p.PathLoss.PowerForRange(step*slack, p.NoiseMW, p.Beta)
	pts := LinePositions(n, step)
	region := geom.Rect{MinX: 0, MinY: 0, MaxX: float64(n-1) * step, MaxY: 0}
	return Build(pts, HomogeneousPower(n, power), region, p, nil)
}

// SideForDensity returns the square side (meters) that yields the requested
// node density in nodes per square kilometer — how the paper sweeps density
// while keeping 64 nodes fixed (Section VI-A).
func SideForDensity(n int, nodesPerSqKm float64) float64 {
	areaKm2 := float64(n) / nodesPerSqKm
	return math.Sqrt(areaKm2 * 1e6)
}
