package topo

import (
	"fmt"

	"scream/internal/geom"
)

// GatewaysNearPoints returns, for each target point, the distinct network
// node closest to it — how an operator places k gateways at planned
// locations. A node is used at most once; ties break toward lower IDs.
func GatewaysNearPoints(net *Network, targets []geom.Point) ([]int, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("topo: no gateway targets")
	}
	if len(targets) > net.NumNodes() {
		return nil, fmt.Errorf("topo: %d gateway targets for %d nodes", len(targets), net.NumNodes())
	}
	used := make(map[int]bool, len(targets))
	out := make([]int, 0, len(targets))
	for _, tgt := range targets {
		best, bestDist := -1, 0.0
		for _, nd := range net.Nodes {
			if used[nd.ID] {
				continue
			}
			d := nd.Pos.Dist(tgt)
			if best < 0 || d < bestDist {
				best, bestDist = nd.ID, d
			}
		}
		used[best] = true
		out = append(out, best)
	}
	return out, nil
}

// QuadrantGateways places one gateway near the center of each quadrant of
// the deployment region — the 4-gateway layout of the paper's evaluation
// (64 nodes, 4 gateways, Section VI-A).
func QuadrantGateways(net *Network) ([]int, error) {
	r := net.Region
	cx, cy := r.Center().X, r.Center().Y
	qx1, qx2 := (r.MinX+cx)/2, (cx+r.MaxX)/2
	qy1, qy2 := (r.MinY+cy)/2, (cy+r.MaxY)/2
	return GatewaysNearPoints(net, []geom.Point{
		{X: qx1, Y: qy1},
		{X: qx2, Y: qy1},
		{X: qx1, Y: qy2},
		{X: qx2, Y: qy2},
	})
}
