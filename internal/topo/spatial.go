package topo

import (
	"fmt"

	"scream/internal/geom"
	"scream/internal/phys/spatial"
)

// SpatialEngine builds the grid-bucket spatial interference engine over the
// network's current positions, powers and radio states. cutoffM and bucketM
// are the index geometry (0 picks the defaults documented on
// spatial.Config). Nodes that are currently down start out silenced in the
// index, mirroring the channel's zeroed gain rows.
//
// Shadowed deployments are rejected: per-pair shadowing has no spatial
// structure the bucket bound could cap, so only the dense engine models it.
//
// The returned index is an independent structure: topology dynamics applied
// to the network do not reach it. dynam.World.AttachSpatial keeps one in
// lockstep with the event timeline.
func (n *Network) SpatialEngine(cutoffM, bucketM float64) (*spatial.Index, error) {
	if n.shadowDB != nil {
		return nil, fmt.Errorf("topo: spatial engine does not support shadowing; use the dense engine")
	}
	pos := make([]geom.Point, len(n.Nodes))
	pw := make([]float64, len(n.Nodes))
	for i, nd := range n.Nodes {
		pos[i] = nd.Pos
		pw[i] = nd.TxPowerMW
	}
	idx, err := spatial.New(spatial.Config{
		Pos:       pos,
		TxPowerMW: pw,
		PathLoss:  n.Params.PathLoss,
		NoiseMW:   n.Params.NoiseMW,
		Beta:      n.Params.Beta,
		Region:    n.Region,
		CutoffM:   cutoffM,
		BucketM:   bucketM,
	})
	if err != nil {
		return nil, err
	}
	for u := range n.Nodes {
		if n.IsDown(u) {
			if err := idx.RemoveNode(u); err != nil {
				return nil, err
			}
		}
	}
	return idx, nil
}
