package topo

import (
	"math"
	"math/rand"
	"testing"

	"scream/internal/geom"
)

// buildFresh materializes a reference network from the mutated network's
// current positions, powers and radio states.
func buildFresh(t *testing.T, n *Network) *Network {
	t.Helper()
	pos := make([]geom.Point, len(n.Nodes))
	pw := make([]float64, len(n.Nodes))
	for i, nd := range n.Nodes {
		pos[i] = nd.Pos
		pw[i] = nd.TxPowerMW
	}
	ref, err := Build(pos, pw, n.Region, n.Params, nil)
	if err != nil {
		t.Fatal(err)
	}
	for u := range n.Nodes {
		if n.IsDown(u) {
			if err := ref.SetNodeDown(u); err != nil {
				t.Fatal(err)
			}
		}
	}
	ref.RefreshGraphs()
	return ref
}

// assertSameNetwork compares channel matrices bit for bit and graph
// adjacency exactly.
func assertSameNetwork(t *testing.T, got, want *Network, what string) {
	t.Helper()
	nn := len(got.Nodes)
	for u := 0; u < nn; u++ {
		for v := 0; v < nn; v++ {
			g, w := got.Channel.RxPowerMW(u, v), want.Channel.RxPowerMW(u, v)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: RxPowerMW(%d,%d)=%v want %v", what, u, v, g, w)
			}
		}
		cg, cw := got.Comm.Neighbors(u), want.Comm.Neighbors(u)
		if len(cg) != len(cw) {
			t.Fatalf("%s: comm degree of %d: %d vs %d", what, u, len(cg), len(cw))
		}
		for i := range cg {
			if cg[i] != cw[i] {
				t.Fatalf("%s: comm adjacency of %d differs at %d: %v vs %v", what, u, i, cg, cw)
			}
		}
		sg, sw := got.Sens.Neighbors(u), want.Sens.Neighbors(u)
		if len(sg) != len(sw) {
			t.Fatalf("%s: sens degree of %d: %d vs %d", what, u, len(sg), len(sw))
		}
		for i := range sg {
			if sg[i] != sw[i] {
				t.Fatalf("%s: sens adjacency of %d differs at %d", what, u, i)
			}
		}
	}
}

// TestNetworkDynamicsMatchFreshBuild drives a random move/fail/recover
// sequence and asserts the mutated network stays identical (channel bits,
// graph adjacency and order) to a network freshly built from the same state.
func TestNetworkDynamicsMatchFreshBuild(t *testing.T) {
	net, err := NewGrid(GridConfig{Rows: 4, Cols: 4, Step: 35, Params: DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 15; step++ {
		u := rng.Intn(len(net.Nodes))
		switch rng.Intn(3) {
		case 0:
			p := geom.Point{X: rng.Float64() * net.Region.MaxX, Y: rng.Float64() * net.Region.MaxY}
			if err := net.MoveNode(u, p); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := net.SetNodeDown(u); err != nil {
				t.Fatal(err)
			}
		default:
			if err := net.SetNodeUp(u); err != nil {
				t.Fatal(err)
			}
		}
		net.RefreshGraphs()
		assertSameNetwork(t, net, buildFresh(t, net), "after mutation")
	}
}

// TestNetworkCloneIndependent mutates a clone and asserts the original is
// untouched.
func TestNetworkCloneIndependent(t *testing.T) {
	net, err := NewGrid(GridConfig{Rows: 3, Cols: 3, Step: 35, Params: DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := net.Channel.RxPowerMW(0, 1)
	commDeg := net.Comm.OutDegree(0)

	c := net.Clone()
	if err := c.SetNodeDown(1); err != nil {
		t.Fatal(err)
	}
	if err := c.MoveNode(0, geom.Point{X: 1000, Y: 1000}); err != nil {
		t.Fatal(err)
	}
	c.RefreshGraphs()

	if got := net.Channel.RxPowerMW(0, 1); got != before {
		t.Fatalf("original channel mutated: %v -> %v", before, got)
	}
	if net.IsDown(1) {
		t.Fatal("original network marked node down")
	}
	if net.Comm.OutDegree(0) != commDeg {
		t.Fatal("original comm graph mutated")
	}
	if !c.IsDown(1) || c.Channel.RxPowerMW(0, 1) != 0 {
		t.Fatal("clone mutations did not stick")
	}
}
