package topo

// Topology dynamics: in-place network mutation for node mobility and churn.
// The methods here keep the three derived views of a deployment — the
// channel's RX-power matrix, the communication graph and the sensitivity
// graph — consistent with the node positions and radio states, using the
// channel's targeted row/column invalidation so a single node event never
// pays a full matrix rebuild.
//
// All mutation methods require exclusive access to the Network. Clone a
// shared deployment (e.g. one handed out by the experiment engine) before
// driving dynamics on it.

import (
	"fmt"
	"math"

	"scream/internal/geom"
	"scream/internal/graph"
)

// Clone returns a deep copy of the network that can be mutated freely
// without affecting the original.
func (n *Network) Clone() *Network {
	c := &Network{
		Nodes:   append([]Node(nil), n.Nodes...),
		Channel: n.Channel.Clone(),
		Comm:    n.Comm.Clone(),
		Sens:    n.Sens.Clone(),
		Region:  n.Region,
		Params:  n.Params,
	}
	if n.shadowDB != nil {
		c.shadowDB = make([][]float64, len(n.shadowDB))
		for i, row := range n.shadowDB {
			c.shadowDB[i] = append([]float64(nil), row...)
		}
	}
	if n.down != nil {
		c.down = append([]bool(nil), n.down...)
	}
	return c
}

// IsDown reports whether node u's radio is currently off.
func (n *Network) IsDown(u int) bool {
	return n.down != nil && n.down[u]
}

// gainRowFor computes node u's current gain row from positions, path loss
// and the static shadowing draw, zeroing entries to nodes that are down
// (a silent radio neither delivers nor collects power).
func (n *Network) gainRowFor(u int) []float64 {
	row := make([]float64, len(n.Nodes))
	pu := n.Nodes[u].Pos
	for v := range n.Nodes {
		if v == u || n.IsDown(v) {
			continue
		}
		g := n.Params.PathLoss.Gain(pu.Dist(n.Nodes[v].Pos))
		if n.shadowDB != nil {
			g *= math.Pow(10, -n.shadowDB[u][v]/10)
		}
		row[v] = g
	}
	return row
}

// MoveNode relocates node u to pos, recomputing only its row and column of
// the channel's RX-power matrix. Call RefreshGraphs after a batch of moves
// to bring the communication and sensitivity graphs up to date.
func (n *Network) MoveNode(u int, pos geom.Point) error {
	if u < 0 || u >= len(n.Nodes) {
		return fmt.Errorf("topo: node %d out of range", u)
	}
	n.Nodes[u].Pos = pos
	if n.IsDown(u) {
		return nil // gains stay zeroed; SetNodeUp recomputes from the new position
	}
	return n.Channel.MoveNode(u, n.gainRowFor(u))
}

// SetNodeDown switches node u's radio off: its channel gains are zeroed so
// it neither transmits nor senses, exactly as if it were absent.
func (n *Network) SetNodeDown(u int) error {
	if u < 0 || u >= len(n.Nodes) {
		return fmt.Errorf("topo: node %d out of range", u)
	}
	if n.down == nil {
		n.down = make([]bool, len(n.Nodes))
	}
	if n.down[u] {
		return nil
	}
	n.down[u] = true
	return n.Channel.RemoveNode(u)
}

// SetNodeUp switches node u's radio back on at its current position.
func (n *Network) SetNodeUp(u int) error {
	if u < 0 || u >= len(n.Nodes) {
		return fmt.Errorf("topo: node %d out of range", u)
	}
	if !n.IsDown(u) {
		return nil
	}
	n.down[u] = false
	return n.Channel.MoveNode(u, n.gainRowFor(u))
}

// RefreshGraphs rebuilds the communication and sensitivity graphs from the
// channel's current state, using exactly the edge rules of Build. Down nodes
// have zero gains and therefore no edges. Adjacency lists come out in
// ascending node order, the canonical order route repair's tie-breaking
// relies on.
func (n *Network) RefreshGraphs() {
	nn := len(n.Nodes)
	comm := graph.New(nn)
	sens := graph.New(nn)
	for u := 0; u < nn; u++ {
		for v := 0; v < nn; v++ {
			if u == v {
				continue
			}
			if n.Channel.RxPowerMW(u, v) >= n.Params.CSThresholdMW {
				sens.AddEdge(u, v)
			}
			if u < v && n.Channel.LinkUp(u, v) && n.Channel.LinkUp(v, u) {
				comm.AddUndirected(u, v)
			}
		}
	}
	n.Comm = comm
	n.Sens = sens
}
