package graph

import (
	"math/rand"
	"testing"
)

// ring builds a directed cycle 0 -> 1 -> ... -> n-1 -> 0.
func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// path builds an undirected path 0 - 1 - ... - n-1.
func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddUndirected(i, i+1)
	}
	return g
}

func TestAddEdgeDedup(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.NumEdges() != 1 {
		t.Errorf("duplicate edges should be ignored, got %d edges", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directed edge semantics broken")
	}
}

func TestDegreeAccounting(t *testing.T) {
	g := path(4)
	if g.NumEdges() != 6 {
		t.Errorf("undirected path of 4 nodes should have 6 directed edges, got %d", g.NumEdges())
	}
	if g.OutDegree(0) != 1 || g.OutDegree(1) != 2 {
		t.Errorf("degrees wrong: %d, %d", g.OutDegree(0), g.OutDegree(1))
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", got)
	}
	if got := New(0).AvgDegree(); got != 0 {
		t.Errorf("empty graph AvgDegree = %v", got)
	}
}

func TestBFSPath(t *testing.T) {
	g := path(5)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != -1 {
		t.Errorf("unreachable node should be -1, got %d", dist[2])
	}
	// Directed edge means 1 cannot reach 0.
	if d := g.BFS(1); d[0] != -1 {
		t.Errorf("reverse reachability should fail, got %d", d[0])
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := path(7)
	dist, nearest := g.MultiSourceBFS([]int{0, 6})
	wantDist := []int{0, 1, 2, 3, 2, 1, 0}
	for i := range wantDist {
		if dist[i] != wantDist[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], wantDist[i])
		}
	}
	if nearest[1] != 0 || nearest[5] != 1 {
		t.Errorf("nearest wrong: %v", nearest)
	}
	// Node 3 is equidistant; either source is acceptable but it must be set.
	if nearest[3] < 0 {
		t.Error("equidistant node must still be assigned")
	}
}

func TestMultiSourceBFSDuplicateSources(t *testing.T) {
	g := path(3)
	dist, nearest := g.MultiSourceBFS([]int{0, 0})
	if dist[0] != 0 || nearest[0] != 0 {
		t.Errorf("duplicate sources mishandled: dist=%v nearest=%v", dist, nearest)
	}
}

func TestMultiSourceBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddUndirected(0, 1)
	dist, nearest := g.MultiSourceBFS([]int{0})
	if dist[3] != -1 || nearest[3] != -1 {
		t.Error("unreachable node should have -1 markers")
	}
}

func TestDiameterRing(t *testing.T) {
	// Directed ring of n: diameter n-1.
	g := ring(8)
	if got := g.Diameter(); got != 7 {
		t.Errorf("ring diameter = %d, want 7", got)
	}
}

func TestDiameterPath(t *testing.T) {
	g := path(10)
	if got := g.Diameter(); got != 9 {
		t.Errorf("path diameter = %d, want 9", got)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(4)
	g.AddUndirected(0, 1)
	g.AddUndirected(2, 3)
	if got := g.Diameter(); got != -1 {
		t.Errorf("disconnected graph diameter = %d, want -1 (infinite)", got)
	}
}

func TestEccentricity(t *testing.T) {
	g := path(5)
	if got := g.Eccentricity(2); got != 2 {
		t.Errorf("center eccentricity = %d, want 2", got)
	}
	if got := g.Eccentricity(0); got != 4 {
		t.Errorf("end eccentricity = %d, want 4", got)
	}
	d := New(3)
	d.AddEdge(0, 1)
	if got := d.Eccentricity(0); got != -1 {
		t.Errorf("partial reachability should give -1, got %d", got)
	}
}

func TestStronglyConnected(t *testing.T) {
	if !ring(5).StronglyConnected() {
		t.Error("ring should be strongly connected")
	}
	if !path(5).StronglyConnected() {
		t.Error("undirected path should be strongly connected")
	}
	oneway := New(3)
	oneway.AddEdge(0, 1)
	oneway.AddEdge(1, 2)
	if oneway.StronglyConnected() {
		t.Error("one-way chain is not strongly connected")
	}
	if !New(1).StronglyConnected() {
		t.Error("single node is trivially strongly connected")
	}
	if !New(0).StronglyConnected() {
		t.Error("empty graph is trivially strongly connected")
	}
}

func TestTranspose(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 1) || tr.HasEdge(0, 1) {
		t.Error("transpose edges wrong")
	}
}

func TestUndirectedClosure(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	u := g.Undirected()
	if !u.HasEdge(1, 0) || !u.HasEdge(0, 1) {
		t.Error("undirected closure missing edges")
	}
}

func TestDiameterMonotoneUnderEdgeAddition(t *testing.T) {
	// Adding edges never increases the diameter of a strongly connected
	// graph (the sensitivity graph is a supergraph of the communication
	// graph, so ID(G_S) <= diameter of G — the paper's Section IV-B logic).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(10)
		g := path(n)
		before := g.Diameter()
		// Random extra undirected edge.
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddUndirected(a, b)
		}
		after := g.Diameter()
		if after > before {
			t.Fatalf("adding an edge increased diameter: %d -> %d", before, after)
		}
	}
}

func TestLinkHopDistance(t *testing.T) {
	g := path(8)
	tests := []struct {
		a, b Edge
		want int
	}{
		{Edge{0, 1}, Edge{0, 1}, 0},
		{Edge{0, 1}, Edge{1, 2}, 0}, // share a node
		{Edge{0, 1}, Edge{2, 3}, 1},
		{Edge{0, 1}, Edge{6, 7}, 5},
	}
	for _, tt := range tests {
		if got := LinkHopDistance(g, tt.a, tt.b); got != tt.want {
			t.Errorf("LinkHopDistance(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := LinkHopDistance(g, tt.b, tt.a); got != tt.want {
			t.Errorf("LinkHopDistance not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestLinkHopDistanceDisconnected(t *testing.T) {
	g := New(4)
	g.AddUndirected(0, 1)
	g.AddUndirected(2, 3)
	if got := LinkHopDistance(g, Edge{0, 1}, Edge{2, 3}); got != -1 {
		t.Errorf("disconnected links should give -1, got %d", got)
	}
}

func TestLinkKNeighborhood(t *testing.T) {
	g := path(10)
	links := []Edge{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}}
	// Neighborhood of link 0 with k=1: links {0,1} (dist 0), {2,3} (dist 1).
	got := LinkKNeighborhood(g, links, 0, 1)
	want := []int{0, 1}
	if len(got) != len(want) {
		t.Fatalf("k=1 neighborhood = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("k=1 neighborhood = %v, want %v", got, want)
		}
	}
	// k large enough covers everything.
	if got := LinkKNeighborhood(g, links, 0, 9); len(got) != len(links) {
		t.Errorf("k=9 should cover all links, got %v", got)
	}
	// k=0 covers only links sharing a node.
	if got := LinkKNeighborhood(g, links, 2, 0); len(got) != 1 || got[0] != 2 {
		t.Errorf("k=0 neighborhood = %v, want [2]", got)
	}
}
