package graph

// Edge is an undirected node pair used for link-distance computations.
type Edge struct {
	U, V int
}

// LinkHopDistance returns the hop distance between two links per
// Definition 3: the minimum hop distance between their endpoints in the
// communication graph g (treated as given; pass an undirected graph for the
// paper's setting). It returns -1 if no endpoint pair is connected.
func LinkHopDistance(g *Graph, a, b Edge) int {
	best := -1
	for _, src := range []int{a.U, a.V} {
		dist := g.BFS(src)
		for _, dst := range []int{b.U, b.V} {
			d := dist[dst]
			if d < 0 {
				continue
			}
			if best < 0 || d < best {
				best = d
			}
		}
	}
	return best
}

// LinkKNeighborhood returns the set of links (indices into links) at hop
// distance at most k from links[i], per Definition 4. The link itself is
// included (distance 0).
func LinkKNeighborhood(g *Graph, links []Edge, i, k int) []int {
	a := links[i]
	distU := g.BFS(a.U)
	distV := g.BFS(a.V)
	var out []int
	for j, b := range links {
		d := minNonNeg(distU[b.U], distU[b.V], distV[b.U], distV[b.V])
		if d >= 0 && d <= k {
			out = append(out, j)
		}
	}
	return out
}

func minNonNeg(vals ...int) int {
	best := -1
	for _, v := range vals {
		if v < 0 {
			continue
		}
		if best < 0 || v < best {
			best = v
		}
	}
	return best
}
