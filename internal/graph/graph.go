// Package graph provides the directed-graph machinery the SCREAM paper's
// definitions rest on: hop distances (for the interference diameter,
// Definition 2), strong connectivity, and link k-neighborhoods
// (Definitions 3-5, used by the Theorem 1 impossibility construction).
package graph

// Graph is a directed graph over nodes 0..n-1 stored as adjacency lists.
type Graph struct {
	adj [][]int
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]int, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// AddEdge inserts the directed edge u -> v. Duplicate edges are ignored.
func (g *Graph) AddEdge(u, v int) {
	for _, w := range g.adj[u] {
		if w == v {
			return
		}
	}
	g.adj[u] = append(g.adj[u], v)
}

// AddUndirected inserts both u -> v and v -> u.
func (g *Graph) AddUndirected(u, v int) {
	g.AddEdge(u, v)
	g.AddEdge(v, u)
}

// HasEdge reports whether the directed edge u -> v exists.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the out-neighbors of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u int) int { return len(g.adj[u]) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total
}

// AvgDegree returns the average out-degree: the neighbor density rho(G) of
// Definition 6 when the graph is the (undirected) communication graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(len(g.adj))
}

// BFS returns the hop distance from src to every node, with -1 for
// unreachable nodes.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, len(g.adj))
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// MultiSourceBFS returns, for every node, the hop distance to the nearest
// source and the index (into srcs) of that source. Ties are broken in favor
// of the source appearing earlier in the BFS expansion, i.e. earlier in
// srcs for equal distances. Unreachable nodes get distance -1, source -1.
func (g *Graph) MultiSourceBFS(srcs []int) (dist, nearest []int) {
	dist = make([]int, len(g.adj))
	nearest = make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
		nearest[i] = -1
	}
	queue := make([]int, 0, len(g.adj))
	for i, s := range srcs {
		if dist[s] == 0 && nearest[s] >= 0 {
			continue // duplicate source
		}
		dist[s] = 0
		nearest[s] = i
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				nearest[v] = nearest[u]
				queue = append(queue, v)
			}
		}
	}
	return dist, nearest
}

// Diameter returns the maximum finite hop distance between any ordered node
// pair — the interference diameter ID(G_S) of Definition 2 when applied to
// the sensitivity graph. If any node cannot reach any other node the graph
// is not strongly connected and Diameter returns -1 (the paper's ID = inf).
func (g *Graph) Diameter() int {
	max := 0
	for u := range g.adj {
		dist := g.BFS(u)
		for v, d := range dist {
			if u == v {
				continue
			}
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// DiameterAmong returns the maximum hop distance between any ordered pair of
// nodes with active[u] true, or -1 when some active node cannot reach some
// other active node. Paths may pass through any node present in the graph —
// callers modelling silenced nodes (failed radios) must remove their edges
// first. This is the interference diameter of a network restricted to its
// live participants, which is what SCREAM's K must cover after churn.
func (g *Graph) DiameterAmong(active []bool) int {
	max := 0
	for u := range g.adj {
		if !active[u] {
			continue
		}
		dist := g.BFS(u)
		for v, d := range dist {
			if u == v || !active[v] {
				continue
			}
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	for u, nbrs := range g.adj {
		c.adj[u] = append([]int(nil), nbrs...)
	}
	return c
}

// Eccentricity returns the maximum finite hop distance from u, or -1 if some
// node is unreachable from u.
func (g *Graph) Eccentricity(u int) int {
	max := 0
	for v, d := range g.BFS(u) {
		if u == v {
			continue
		}
		if d < 0 {
			return -1
		}
		if d > max {
			max = d
		}
	}
	return max
}

// StronglyConnected reports whether every node can reach every other node.
// It uses the standard two-pass (Kosaraju-style) reachability check from
// node 0 in g and in the transpose of g.
func (g *Graph) StronglyConnected() bool {
	n := len(g.adj)
	if n <= 1 {
		return true
	}
	if !allReached(g.BFS(0)) {
		return false
	}
	return allReached(g.Transpose().BFS(0))
}

// Transpose returns the graph with every edge reversed.
func (g *Graph) Transpose() *Graph {
	t := New(len(g.adj))
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			t.AddEdge(v, u)
		}
	}
	return t
}

// Undirected returns the symmetric closure of g.
func (g *Graph) Undirected() *Graph {
	u := New(len(g.adj))
	for a, nbrs := range g.adj {
		for _, b := range nbrs {
			u.AddUndirected(a, b)
		}
	}
	return u
}

func allReached(dist []int) bool {
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}
