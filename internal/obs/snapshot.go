package obs

import (
	"encoding/json"
	"io"
)

// HistogramSnapshot is the JSON shape of one histogram in a registry
// snapshot: cumulative bucket counts (le is the upper bound, "+Inf" last),
// plus the observation count and value sum.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    string `json:"le"` // formatted upper bound; "+Inf" for the last
	Count int64  `json:"count"`
}

// Snapshot is a point-in-time JSON view of a registry — the machine-readable
// twin of the Prometheus text exposition, served by screamd at
// /api/v1/metrics. Map keys are the full metric names including any embedded
// {label="..."} suffix; encoding/json sorts map keys, so the document is
// deterministic for a given registry state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// TakeSnapshot captures every registered metric's current value. A nil
// registry yields an empty (but non-nil-field) snapshot.
func (r *Registry) TakeSnapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	for _, m := range r.snapshot() {
		switch m.kind {
		case kindCounter:
			snap.Counters[m.name] = m.c.Value()
		case kindGauge:
			snap.Gauges[m.name] = m.g.Value()
		case kindHistogram:
			upper, cum := m.h.Buckets()
			hs := HistogramSnapshot{Count: m.h.Count(), Sum: m.h.Sum()}
			for i, ub := range upper {
				hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: formatFloat(ub), Count: cum[i]})
			}
			snap.Histograms[m.name] = hs
		}
	}
	return snap
}

// WriteJSON writes the registry snapshot as an indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.TakeSnapshot())
}
