package obs

// Wall-clock performance sampling. Everything else in the observability
// layer counts *simulated* ticks, which is what keeps results deterministic;
// the Perf sampler is the one deliberate exception — it measures how much
// real time the simulator's own hot paths cost (the schedule build, the
// epoch drive), which is the quantity the 10^4–10^5-node scale work has to
// optimize. Sampling is an explicit opt-in (flowsim -perf): a nil *Perf is
// the disabled path, one predictable branch per call site and zero
// allocations, and the samples are write-only — no simulation decision ever
// reads a wall-clock value, so results stay bit-identical with sampling on.

// PerfBuckets is the fixed bucket layout for wall-clock duration histograms,
// in seconds: 1 µs to 10 s on a 1-2-5 grid — wide enough to cover a
// microsecond greedy build and a multi-second 10^5-node epoch in one layout.
func PerfBuckets() []float64 {
	return []float64{
		1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
		1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1, 2, 5, 10,
	}
}

// Perf samples wall-clock durations of the flow driver's hot paths into
// scream_perf_* histograms. A nil *Perf disables sampling at zero cost.
type Perf struct {
	now   func() int64
	build *Histogram // scream_perf_build_seconds{sched=...}
	epoch *Histogram // scream_perf_epoch_seconds{sched=...}
}

// NewPerf registers the perf histograms for one run's scheduler in r and
// returns the sampler. A nil registry returns a nil sampler (the disabled
// path); sched labels the series so multi-tenant runs stay attributable.
func NewPerf(r *Registry, sched string) *Perf {
	if r == nil {
		return nil
	}
	label := Labels("sched", sched)
	return &Perf{
		now: WallNow,
		build: r.Histogram("scream_perf_build_seconds"+label,
			"wall-clock duration of one epoch's schedule build (control phase)", PerfBuckets()),
		epoch: r.Histogram("scream_perf_epoch_seconds"+label,
			"wall-clock duration of one full driver epoch (control + data phases)", PerfBuckets()),
	}
}

// Start returns the current wall clock in nanoseconds (0 for nil), the
// handle passed back to Build/Epoch.
func (p *Perf) Start() int64 {
	if p == nil {
		return 0
	}
	return p.now()
}

// Build records one schedule-build duration from its Start handle.
func (p *Perf) Build(start int64) {
	if p == nil {
		return
	}
	p.build.Observe(float64(p.now()-start) / 1e9)
}

// Epoch records one full driver-epoch duration from its Start handle.
func (p *Perf) Epoch(start int64) {
	if p == nil {
		return
	}
	p.epoch.Observe(float64(p.now()-start) / 1e9)
}

// Labels renders alternating key/value pairs as a Prometheus label suffix,
// e.g. Labels("sched", "greedy") == `{sched="greedy"}`. The registry's flat
// name-keyed model carries labeled series by making the suffix part of the
// metric name; values are escaped, keys must be valid label identifiers.
func Labels(kv ...string) string {
	out := []byte{'{'}
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, kv[i]...)
		out = append(out, '=', '"')
		out = append(out, labelEscape(kv[i+1])...)
		out = append(out, '"')
	}
	return string(append(out, '}'))
}

// labelEscape makes s safe for embedding in a Prometheus label value:
// backslashes and double quotes are escaped, newlines become \n.
func labelEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
