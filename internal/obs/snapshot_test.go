package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTakeSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Add(42)
	r.Gauge("depth", "").Set(-3)
	h := r.Histogram("lat_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)

	snap := r.TakeSnapshot()
	if snap.Counters["hits_total"] != 42 {
		t.Fatalf("counter = %d, want 42", snap.Counters["hits_total"])
	}
	if snap.Gauges["depth"] != -3 {
		t.Fatalf("gauge = %d, want -3", snap.Gauges["depth"])
	}
	hs, ok := snap.Histograms["lat_seconds"]
	if !ok || hs.Count != 2 || hs.Sum != 5.05 {
		t.Fatalf("histogram = %+v", hs)
	}
	// Buckets mirror the text exposition: cumulative, +Inf last.
	if len(hs.Buckets) != 3 || hs.Buckets[2].LE != "+Inf" || hs.Buckets[2].Count != 2 {
		t.Fatalf("buckets = %+v", hs.Buckets)
	}
	if hs.Buckets[0] != (BucketSnapshot{LE: "0.1", Count: 1}) {
		t.Fatalf("bucket 0 = %+v", hs.Buckets[0])
	}
}

func TestTakeSnapshotNilRegistry(t *testing.T) {
	var r *Registry
	snap := r.TakeSnapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Fatal("nil registry snapshot must have non-nil (empty) maps")
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
}

// TestWriteJSONRoundTrip: the document decodes back into the same snapshot
// (the contract of screamd's /api/v1/metrics endpoint).
func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`runs_total{variant="FDD"}`, "").Inc()
	r.Gauge("k_slots", "").Set(12)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("round trip: %v\n%s", err, sb.String())
	}
	if snap.Counters[`runs_total{variant="FDD"}`] != 1 || snap.Gauges["k_slots"] != 12 {
		t.Fatalf("round-tripped snapshot = %+v", snap)
	}
}
