package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerSchemaV2(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	tr.Emit("epoch", I("t", 12345), N("epoch", 3), F("goodput", 1.5), S("sched", `say "hi"`), B("ok", true))
	tr.Emit("end", I("t", 99))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 2 {
		t.Fatalf("events = %d, want 2", tr.Events())
	}

	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	want := `{"v":2,"ev":"epoch","t":12345,"epoch":3,"goodput":1.5,"sched":"say \"hi\"","ok":true}`
	if lines[0] != want {
		t.Fatalf("line 0:\n got %s\nwant %s", lines[0], want)
	}
	// Every line must be valid standalone JSON carrying the schema version.
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", ln, err)
		}
		if v, ok := m["v"].(float64); !ok || int(v) != TraceVersion {
			t.Fatalf("line %q missing schema version %d", ln, TraceVersion)
		}
		if _, ok := m["ev"].(string); !ok {
			t.Fatalf("line %q missing event name", ln)
		}
	}
}

func TestTracerDeterministicBytes(t *testing.T) {
	emit := func() string {
		var sb strings.Builder
		tr := NewTracer(&sb)
		for i := 0; i < 100; i++ {
			tr.Emit("tick", I("t", int64(i)*17), F("x", float64(i)/3), B("even", i%2 == 0))
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if emit() != emit() {
		t.Fatal("identical emission sequences must produce identical bytes")
	}
}

// TestTracerConcurrentEmit exercises the mutex path under -race: lines from
// concurrent emitters may interleave in any order but must never tear.
func TestTracerConcurrentEmit(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	tr := NewTracer(w)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit("e", N("g", g), N("i", i))
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("torn line %q: %v", ln, err)
		}
	}
}

// TestTracerSpans pins the exact span_begin/span_end wire format and the
// implicit-parent discipline: spans nest LIFO, ids are sequential, and End
// restores the enclosing span as parent of subsequent Begins.
func TestTracerSpans(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	run := tr.Begin("run", 0, N("nodes", 4))
	ep := tr.Begin("epoch", 10, N("epoch", 0))
	tr.Emit("point", I("t", 11))
	tr.End(ep, 20, N("slots", 3))
	ep2 := tr.Begin("epoch", 20, N("epoch", 1))
	tr.End(ep2, 30)
	tr.End(run, 30, N("offered", 7))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	want := []string{
		`{"v":2,"ev":"span_begin","t":0,"span":1,"parent":0,"name":"run","nodes":4}`,
		`{"v":2,"ev":"span_begin","t":10,"span":2,"parent":1,"name":"epoch","epoch":0}`,
		`{"v":2,"ev":"point","t":11}`,
		`{"v":2,"ev":"span_end","t":20,"span":2,"name":"epoch","slots":3}`,
		`{"v":2,"ev":"span_begin","t":20,"span":3,"parent":1,"name":"epoch","epoch":1}`,
		`{"v":2,"ev":"span_end","t":30,"span":3,"name":"epoch"}`,
		`{"v":2,"ev":"span_end","t":30,"span":1,"name":"run","offered":7}`,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(want), sb.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestTracerNilSpans: a nil tracer's Begin returns 0 and End(0) is a no-op,
// so call sites need no nil guards of their own.
func TestTracerNilSpans(t *testing.T) {
	var tr *Tracer
	id := tr.Begin("run", 0)
	if id != 0 {
		t.Fatalf("nil Begin = %d, want 0", id)
	}
	tr.End(id, 10)
	tr.SetTimeBase(5)
	if tr.TimeBase() != 0 {
		t.Fatalf("nil TimeBase = %d, want 0", tr.TimeBase())
	}

	// End(0) on a live tracer must also be a no-op (the handle a disabled
	// call site carries).
	var sb strings.Builder
	live := NewTracer(&sb)
	live.End(0, 10)
	if err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("End(0) emitted %q", sb.String())
	}
}

func TestTracerTimeBase(t *testing.T) {
	tr := NewTracer(&strings.Builder{})
	if tr.TimeBase() != 0 {
		t.Fatalf("initial TimeBase = %d, want 0", tr.TimeBase())
	}
	tr.SetTimeBase(12345)
	if tr.TimeBase() != 12345 {
		t.Fatalf("TimeBase = %d, want 12345", tr.TimeBase())
	}
}

// TestTracerWallClock: with wall-clock sampling enabled, span_end carries a
// wall_ns field measured by the injected clock; begin lines are unchanged.
func TestTracerWallClock(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	clock := int64(1000)
	tr.EnableWallClock(func() int64 { clock += 250; return clock })
	id := tr.Begin("run", 0) // clock -> 1250
	tr.End(id, 5)            // clock -> 1500, wall_ns = 250
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	wantEnd := `{"v":2,"ev":"span_end","t":5,"span":1,"name":"run","wall_ns":250}`
	if lines[1] != wantEnd {
		t.Fatalf("span_end:\n got %s\nwant %s", lines[1], wantEnd)
	}
}

// TestFieldKeyGuard proves the injection fix: field keys are appended to the
// JSON output unescaped, so non-identifier keys must panic at construction
// instead of emitting an invalid line.
func TestFieldKeyGuard(t *testing.T) {
	mustPanic := func(key string) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("key %q did not panic", key)
			}
		}()
		I(key, 1)
	}
	mustPanic(``)
	mustPanic(`bad"key`)
	mustPanic(`back\slash`)
	mustPanic(`1starts_with_digit`)
	mustPanic(`has space`)
	mustPanic(`new
line`)

	// Valid identifiers must not panic, for every constructor.
	for _, f := range []Field{
		I("t", 1), N("epoch_3", 2), F("x9", 0.5), S("_lead", "v"), B("Ok", true),
	} {
		if f.key == "" {
			t.Fatal("valid key rejected")
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
