package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerSchemaV1(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	tr.Emit("epoch", I("t", 12345), N("epoch", 3), F("goodput", 1.5), S("sched", `say "hi"`), B("ok", true))
	tr.Emit("end", I("t", 99))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 2 {
		t.Fatalf("events = %d, want 2", tr.Events())
	}

	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	want := `{"v":1,"ev":"epoch","t":12345,"epoch":3,"goodput":1.5,"sched":"say \"hi\"","ok":true}`
	if lines[0] != want {
		t.Fatalf("line 0:\n got %s\nwant %s", lines[0], want)
	}
	// Every line must be valid standalone JSON carrying the schema version.
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", ln, err)
		}
		if v, ok := m["v"].(float64); !ok || int(v) != TraceVersion {
			t.Fatalf("line %q missing schema version %d", ln, TraceVersion)
		}
		if _, ok := m["ev"].(string); !ok {
			t.Fatalf("line %q missing event name", ln)
		}
	}
}

func TestTracerDeterministicBytes(t *testing.T) {
	emit := func() string {
		var sb strings.Builder
		tr := NewTracer(&sb)
		for i := 0; i < 100; i++ {
			tr.Emit("tick", I("t", int64(i)*17), F("x", float64(i)/3), B("even", i%2 == 0))
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if emit() != emit() {
		t.Fatal("identical emission sequences must produce identical bytes")
	}
}

// TestTracerConcurrentEmit exercises the mutex path under -race: lines from
// concurrent emitters may interleave in any order but must never tear.
func TestTracerConcurrentEmit(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	tr := NewTracer(w)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit("e", N("g", g), N("i", i))
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("torn line %q: %v", ln, err)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
