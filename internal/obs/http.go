package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	GET /metrics       Prometheus text-format exposition
//	GET /debug/pprof/  the standard net/http/pprof profile surface
//
// pprof is mounted explicitly on this mux (not the http.DefaultServeMux
// side-effect registration), so enabling observability never leaks profile
// endpoints onto servers the process did not ask for.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are already gone; nothing useful to do but drop the
			// connection, which WritePrometheus's error already caused.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves Handler(r) on
// it in a background goroutine. It returns the server (Close/Shutdown to
// stop) and the bound address — useful when addr requested port 0.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(r),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		// ErrServerClosed after Close/Shutdown is the expected exit; any
		// other error means the exposition surface died, which the scraper
		// will notice — there is no simulation-side consumer to signal.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr(), nil
}
