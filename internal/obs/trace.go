package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// TraceVersion is the trace schema version stamped into every event as the
// leading "v" field. Bump it when an event's fields change meaning; adding
// new events or trailing fields is backward-compatible within a version.
//
// Schema v2: one JSON object per line, fields in fixed order:
//
//	{"v":2,"ev":"<event>","t":<ticks>, <event-specific fields...>}
//
// "t" is simulated time in des.Time nanosecond ticks (int64) — never wall
// clock, which is what makes traces byte-identical across runs of the same
// seed. v2 adds *span semantics* on top of v1's point events: paired
//
//	{"v":2,"ev":"span_begin","t":...,"span":<id>,"parent":<id>,"name":"<span>",...}
//	{"v":2,"ev":"span_end","t":...,"span":<id>,"name":"<span>",...}
//
// lines delimit a timed interval. Span ids are small positive integers
// allocated sequentially per tracer (deterministic for a deterministic
// emission order); parent is the innermost span open at begin time (0 =
// root). The emitted hierarchy of a flow run is
//
//	run ▸ epoch ▸ schedule_build ▸ slot
//
// with the v1 point events (controller_elected, handshake, churn, repair,
// protocol) riding inside their enclosing spans. When wall-clock sampling is
// enabled (EnableWallClock — an explicit opt-in, off for golden traces), each
// span_end additionally carries "wall_ns", the measured wall-clock duration
// of the span; everything else in the trace stays simulated-time only. The
// event catalogue is documented in DESIGN.md under "Observability".
const TraceVersion = 2

// SpanID identifies one span within a tracer's event stream. The zero value
// means "no span" (the root of the hierarchy, and the return of Begin on a
// nil tracer).
type SpanID int64

// Field is one key/value pair of a trace event. Values are typed explicitly
// (no reflection on the encode path) and encode as JSON numbers, strings or
// booleans.
type Field struct {
	key  string
	kind uint8 // 'i' int64, 'f' float64, 's' string, 'b' bool
	i    int64
	f    float64
	s    string
}

// checkKey panics unless key is a plain identifier ([A-Za-z_][A-Za-z0-9_]*).
// Keys are appended to the JSON output unescaped, so an unchecked key
// containing a quote or backslash would emit an invalid line; keys are
// compile-time constants at every call site, which makes a construction-time
// panic the right failure mode (the bug cannot reach production traces).
func checkKey(key string) string {
	if len(key) == 0 {
		panic("obs: empty trace field key")
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				panic("obs: trace field key " + strconv.Quote(key) + " starts with a digit")
			}
		default:
			panic("obs: trace field key " + strconv.Quote(key) + " is not a plain identifier")
		}
	}
	return key
}

// I returns an int64 field.
func I(key string, v int64) Field { return Field{key: checkKey(key), kind: 'i', i: v} }

// N returns an int field.
func N(key string, v int) Field { return Field{key: checkKey(key), kind: 'i', i: int64(v)} }

// F returns a float64 field (encoded with shortest round-trip formatting,
// deterministic for a given value).
func F(key string, v float64) Field { return Field{key: checkKey(key), kind: 'f', f: v} }

// S returns a string field.
func S(key string, v string) Field { return Field{key: checkKey(key), kind: 's', s: v} }

// B returns a bool field.
func B(key string, v bool) Field { return Field{key: checkKey(key), kind: 'b', i: b2i(v)} }

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// wallEpoch anchors the process-wide monotonic wall clock used by wall-clock
// span sampling and the Perf histograms: readings are nanoseconds since
// process start (time.Since uses the monotonic clock, so NTP steps cannot
// produce negative durations).
var wallEpoch = time.Now()

// WallNow returns the monotonic wall clock in nanoseconds since process
// start.
func WallNow() int64 { return int64(time.Since(wallEpoch)) }

// openSpan is the tracer's record of a begun, not-yet-ended span.
type openSpan struct {
	parent SpanID
	name   string
	wall   int64 // WallNow at begin; only read when wallClock is set
}

// Tracer writes structured events as JSON Lines. It is safe for concurrent
// emitters (one line per event, atomically appended under a mutex), though
// deterministic byte-identical traces additionally require a deterministic
// emission order — single-worker runs, which is what the golden-file test
// pins. A nil *Tracer is a no-op, but callers on hot paths should guard
// `if tr != nil` themselves so the variadic fields are never materialized
// on the disabled path.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	buf    []byte // per-event scratch, reused under mu
	events int64
	err    error

	nextSpan  int64
	cur       SpanID // innermost open span (the implicit parent of Begin)
	open      map[SpanID]openSpan
	base      int64        // time base added by nested emitters (SetTimeBase)
	wallClock func() int64 // nil = wall-clock sampling disabled
}

// NewTracer returns a tracer writing to w. Call Flush (or Close on the
// underlying writer after Flush) when done.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w)}
}

// EnableWallClock turns on wall-clock span sampling: every subsequent
// span_end carries a "wall_ns" field measuring the span's wall-clock
// duration. now is the clock (nil uses WallNow). This deliberately breaks
// byte-determinism of the trace — it is an explicit opt-in for performance
// investigation (flowsim -perf), never enabled on golden traces.
func (t *Tracer) EnableWallClock(now func() int64) {
	if t == nil {
		return
	}
	if now == nil {
		now = WallNow
	}
	t.mu.Lock()
	t.wallClock = now
	t.mu.Unlock()
}

// SetTimeBase installs an offset added to the timestamps of nested emitters
// that only know time relative to their own start (the protocol backend's
// Elapsed clock restarts at zero every epoch). The flow driver sets it to the
// current simulated time before each control phase; TimeBase reads it back.
// Emitters that know absolute time simply never call TimeBase.
func (t *Tracer) SetTimeBase(base int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.base = base
	t.mu.Unlock()
}

// TimeBase returns the current time base (0 for nil or when never set).
func (t *Tracer) TimeBase() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.base
}

// Emit appends one point-event line: {"v":2,"ev":ev,fields...}. Field keys
// are validated at Field construction (checkKey); values are properly
// JSON-encoded. The first write error is retained and reported by Flush.
func (t *Tracer) Emit(ev string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(ev, fields)
}

// Begin opens a span named name at simulated time tick, parented at the
// innermost currently open span, and returns its id. The emitted line is
//
//	{"v":2,"ev":"span_begin","t":tick,"span":id,"parent":pid,"name":name,fields...}
//
// Begin on a nil tracer returns 0.
func (t *Tracer) Begin(name string, tick int64, fields ...Field) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextSpan++
	id := SpanID(t.nextSpan)
	if t.open == nil {
		t.open = make(map[SpanID]openSpan)
	}
	rec := openSpan{parent: t.cur, name: name}
	if t.wallClock != nil {
		rec.wall = t.wallClock()
	}
	t.open[id] = rec
	t.cur = id
	head := append(t.buf[:0], `{"v":`...)
	head = strconv.AppendInt(head, TraceVersion, 10)
	head = append(head, `,"ev":"span_begin","t":`...)
	head = strconv.AppendInt(head, tick, 10)
	head = append(head, `,"span":`...)
	head = strconv.AppendInt(head, int64(id), 10)
	head = append(head, `,"parent":`...)
	head = strconv.AppendInt(head, int64(rec.parent), 10)
	head = append(head, `,"name":`...)
	head = strconv.AppendQuote(head, name)
	t.finishLocked(head, fields)
	return id
}

// End closes the span at simulated time tick:
//
//	{"v":2,"ev":"span_end","t":tick,"span":id,"name":name,["wall_ns":ns,]fields...}
//
// Ending SpanID 0 (the Begin return of a nil tracer) is a no-op, so callers
// can End unconditionally. Spans close innermost-first; End restores the
// span's parent as the implicit parent of subsequent Begins.
func (t *Tracer) End(id SpanID, tick int64, fields ...Field) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.open[id]
	if ok {
		delete(t.open, id)
		t.cur = rec.parent
	}
	head := append(t.buf[:0], `{"v":`...)
	head = strconv.AppendInt(head, TraceVersion, 10)
	head = append(head, `,"ev":"span_end","t":`...)
	head = strconv.AppendInt(head, tick, 10)
	head = append(head, `,"span":`...)
	head = strconv.AppendInt(head, int64(id), 10)
	head = append(head, `,"name":`...)
	head = strconv.AppendQuote(head, rec.name)
	if ok && t.wallClock != nil {
		head = append(head, `,"wall_ns":`...)
		head = strconv.AppendInt(head, t.wallClock()-rec.wall, 10)
	}
	t.finishLocked(head, fields)
}

// emitLocked writes a point-event line. Callers hold mu.
func (t *Tracer) emitLocked(ev string, fields []Field) {
	head := append(t.buf[:0], `{"v":`...)
	head = strconv.AppendInt(head, TraceVersion, 10)
	head = append(head, `,"ev":`...)
	head = strconv.AppendQuote(head, ev)
	t.finishLocked(head, fields)
}

// finishLocked appends the variadic fields to a started line, terminates and
// writes it. Callers hold mu; buf is handed back for reuse.
func (t *Tracer) finishLocked(buf []byte, fields []Field) {
	if t.err != nil {
		t.buf = buf
		return
	}
	for _, f := range fields {
		buf = append(buf, ',', '"')
		buf = append(buf, f.key...)
		buf = append(buf, '"', ':')
		switch f.kind {
		case 'i':
			buf = strconv.AppendInt(buf, f.i, 10)
		case 'f':
			buf = strconv.AppendFloat(buf, f.f, 'g', -1, 64)
		case 's':
			buf = strconv.AppendQuote(buf, f.s)
		case 'b':
			if f.i != 0 {
				buf = append(buf, "true"...)
			} else {
				buf = append(buf, "false"...)
			}
		}
	}
	buf = append(buf, '}', '\n')
	t.buf = buf
	if _, err := t.w.Write(buf); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Flush drains the buffer and returns the first error seen by any Emit or
// flush.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
