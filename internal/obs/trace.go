package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// TraceVersion is the trace schema version stamped into every event as the
// leading "v" field. Bump it when an event's fields change meaning; adding
// new events or trailing fields is backward-compatible within a version.
//
// Schema v1: one JSON object per line, fields in fixed order:
//
//	{"v":1,"ev":"<event>","t":<ticks>, <event-specific fields...>}
//
// "t" is simulated time in des.Time nanosecond ticks (int64) — never wall
// clock, which is what makes traces byte-identical across runs of the same
// seed. The event catalogue (emitters in core, flow and dynam) is documented
// in DESIGN.md under "Observability".
const TraceVersion = 1

// Field is one key/value pair of a trace event. Values are typed explicitly
// (no reflection on the encode path) and encode as JSON numbers, strings or
// booleans.
type Field struct {
	key  string
	kind uint8 // 'i' int64, 'f' float64, 's' string, 'b' bool
	i    int64
	f    float64
	s    string
}

// I returns an int64 field.
func I(key string, v int64) Field { return Field{key: key, kind: 'i', i: v} }

// N returns an int field.
func N(key string, v int) Field { return Field{key: key, kind: 'i', i: int64(v)} }

// F returns a float64 field (encoded with shortest round-trip formatting,
// deterministic for a given value).
func F(key string, v float64) Field { return Field{key: key, kind: 'f', f: v} }

// S returns a string field.
func S(key string, v string) Field { return Field{key: key, kind: 's', s: v} }

// B returns a bool field.
func B(key string, v bool) Field { return Field{key: key, kind: 'b', i: b2i(v)} }

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// Tracer writes structured events as JSON Lines. It is safe for concurrent
// emitters (one line per event, atomically appended under a mutex), though
// deterministic byte-identical traces additionally require a deterministic
// emission order — single-worker runs, which is what the golden-file test
// pins. A nil *Tracer is a no-op, but callers on hot paths should guard
// `if tr != nil` themselves so the variadic fields are never materialized
// on the disabled path.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	buf    []byte // per-event scratch, reused under mu
	events int64
	err    error
}

// NewTracer returns a tracer writing to w. Call Flush (or Close on the
// underlying writer after Flush) when done.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w)}
}

// Emit appends one event line: {"v":1,"ev":ev,fields...}. Field keys must be
// plain identifier-like strings (they are not escaped); values are properly
// JSON-encoded. The first write error is retained and reported by Flush.
func (t *Tracer) Emit(ev string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	buf := t.buf[:0]
	buf = append(buf, `{"v":`...)
	buf = strconv.AppendInt(buf, TraceVersion, 10)
	buf = append(buf, `,"ev":`...)
	buf = strconv.AppendQuote(buf, ev)
	for _, f := range fields {
		buf = append(buf, ',', '"')
		buf = append(buf, f.key...)
		buf = append(buf, '"', ':')
		switch f.kind {
		case 'i':
			buf = strconv.AppendInt(buf, f.i, 10)
		case 'f':
			buf = strconv.AppendFloat(buf, f.f, 'g', -1, 64)
		case 's':
			buf = strconv.AppendQuote(buf, f.s)
		case 'b':
			if f.i != 0 {
				buf = append(buf, "true"...)
			} else {
				buf = append(buf, "false"...)
			}
		}
	}
	buf = append(buf, '}', '\n')
	t.buf = buf
	if _, err := t.w.Write(buf); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Flush drains the buffer and returns the first error seen by any Emit or
// flush.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
