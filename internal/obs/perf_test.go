package obs

import (
	"strings"
	"testing"
)

func TestPerfSampling(t *testing.T) {
	r := NewRegistry()
	p := NewPerf(r, "greedy")
	clock := int64(0)
	p.now = func() int64 { clock += 1_500_000; return clock } // 1.5 ms per reading

	start := p.Start()
	p.Build(start) // 1.5 ms
	start = p.Start()
	p.Epoch(start) // 1.5 ms

	h, ok := r.HistogramValue(`scream_perf_build_seconds{sched="greedy"}`)
	if !ok || h.Count() != 1 {
		t.Fatalf("build histogram count = %d, want 1", h.Count())
	}
	if h.Sum() < 1e-3 || h.Sum() > 2e-3 {
		t.Fatalf("build sum = %g s, want ~1.5ms", h.Sum())
	}
	h, ok = r.HistogramValue(`scream_perf_epoch_seconds{sched="greedy"}`)
	if !ok || h.Count() != 1 {
		t.Fatalf("epoch histogram count = %d, want 1", h.Count())
	}
}

// TestPerfNilDisabled: a nil sampler is the zero-cost disabled path — every
// method is a no-op and Start hands back 0.
func TestPerfNilDisabled(t *testing.T) {
	var p *Perf
	if p != NewPerf(nil, "x") {
		t.Fatal("NewPerf(nil) must return nil")
	}
	if p.Start() != 0 {
		t.Fatal("nil Start must return 0")
	}
	p.Build(0)
	p.Epoch(0)
	if n := testing.AllocsPerRun(100, func() {
		s := p.Start()
		p.Build(s)
		p.Epoch(s)
	}); n != 0 {
		t.Fatalf("nil Perf allocates %.0f per run, want 0", n)
	}
}

func TestPerfBucketsCoverHotPathRange(t *testing.T) {
	b := PerfBuckets()
	if b[0] > 1e-6 || b[len(b)-1] < 10 {
		t.Fatalf("buckets [%g, %g] must span 1µs..10s", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not strictly increasing at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
}

func TestLabelEscape(t *testing.T) {
	got := labelEscape("a\\b\"c\nd")
	want := `a\\b\"c\nd`
	if got != want {
		t.Fatalf("labelEscape = %q, want %q", got, want)
	}
	r := NewRegistry()
	NewPerf(r, `we"ird\name`)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `sched="we\"ird\\name"`) {
		t.Fatalf("exposition lacks escaped label:\n%s", sb.String())
	}
}
