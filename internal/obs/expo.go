package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// family returns the metric family name: the full name with any {label}
// suffix stripped.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labels returns the {label} suffix of name (empty when unlabeled),
// including the braces.
func labels(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return ""
}

// histName splices extra labels into a histogram series name: base may
// already carry labels, and the bucket series needs `le` merged into them.
func histSeries(base, suffix, extra string) string {
	fam, lb := family(base), labels(base)
	name := fam + suffix
	switch {
	case lb == "" && extra == "":
		return name
	case lb == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + lb
	default:
		return name + lb[:len(lb)-1] + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name, with # HELP and
// # TYPE headers emitted once per family. Counter and gauge values are
// int64; histograms expose the conventional _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	seenFamily := ""
	for _, m := range r.snapshot() {
		fam := family(m.name)
		if fam != seenFamily {
			seenFamily = fam
			if m.help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(fam)
				bw.WriteByte(' ')
				bw.WriteString(m.help)
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(fam)
			bw.WriteByte(' ')
			bw.WriteString(m.kind.String())
			bw.WriteByte('\n')
		}
		switch m.kind {
		case kindCounter:
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.c.Value(), 10))
			bw.WriteByte('\n')
		case kindGauge:
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.g.Value(), 10))
			bw.WriteByte('\n')
		case kindHistogram:
			upper, cum := m.h.Buckets()
			for i, ub := range upper {
				bw.WriteString(histSeries(m.name, "_bucket", `le="`+formatFloat(ub)+`"`))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(cum[i], 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(histSeries(m.name, "_sum", ""))
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(m.h.Sum()))
			bw.WriteByte('\n')
			bw.WriteString(histSeries(m.name, "_count", ""))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.h.Count(), 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
