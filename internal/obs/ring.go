package obs

import (
	"bytes"
	"sync"
)

// RingSink is a bounded in-memory JSONL sink: an io.Writer that retains the
// most recent complete lines up to a byte budget, dropping the oldest lines
// when the budget is exceeded. It is the capture buffer behind screamd's
// per-session trace endpoint — a session's tracer writes into a RingSink, so
// arbitrarily long runs cost bounded memory and never touch disk, and the
// retained tail is always a sequence of whole, valid JSONL lines.
//
// Write splits its input on '\n' (the tracer's bufio layer may deliver any
// chunking), buffering at most one partial trailing line. Writes never fail.
// A RingSink is safe for one concurrent writer plus any number of
// Snapshot/Dropped readers.
type RingSink struct {
	mu      sync.Mutex
	cap     int
	lines   [][]byte // retained complete lines, oldest first
	bytes   int      // total bytes across lines (incl. newlines)
	partial []byte   // trailing incomplete line
	dropped int64
	total   int64
}

// DefaultRingBytes is the per-session capture budget used when a caller
// passes 0 to NewRingSink: enough for tens of thousands of trace lines.
const DefaultRingBytes = 1 << 20

// NewRingSink returns a sink retaining up to capBytes of complete lines
// (0 uses DefaultRingBytes).
func NewRingSink(capBytes int) *RingSink {
	if capBytes <= 0 {
		capBytes = DefaultRingBytes
	}
	return &RingSink{cap: capBytes}
}

// Write implements io.Writer. It never returns an error: over-budget input
// evicts the oldest retained lines (counted by Dropped), and a single line
// larger than the whole budget is itself dropped.
func (s *RingSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(p)
	for {
		i := bytes.IndexByte(p, '\n')
		if i < 0 {
			s.partial = append(s.partial, p...)
			return n, nil
		}
		line := append(s.partial, p[:i+1]...)
		s.partial = nil
		p = p[i+1:]
		s.total++
		if len(line) > s.cap {
			s.dropped++
			continue
		}
		s.lines = append(s.lines, line)
		s.bytes += len(line)
		for s.bytes > s.cap {
			s.bytes -= len(s.lines[0])
			s.lines[0] = nil
			s.lines = s.lines[1:]
			s.dropped++
		}
	}
}

// Snapshot returns a copy of the retained lines, concatenated in emission
// order. The trailing partial line (if the writer is mid-flush) is excluded,
// so the snapshot is always whole-line JSONL.
func (s *RingSink) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, 0, s.bytes)
	for _, ln := range s.lines {
		out = append(out, ln...)
	}
	return out
}

// Dropped returns how many complete lines have been evicted (or were larger
// than the budget).
func (s *RingSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Lines returns how many complete lines were ever written (retained or
// dropped).
func (s *RingSink) Lines() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
