package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRingSinkChunking: the tracer's bufio layer may hand Write any byte
// chunking; the sink must reassemble whole lines regardless.
func TestRingSinkChunking(t *testing.T) {
	s := NewRingSink(1 << 16)
	payload := "line one\nline two\nline three\n"
	for i := 0; i < len(payload); i += 7 {
		end := i + 7
		if end > len(payload) {
			end = len(payload)
		}
		n, err := s.Write([]byte(payload[i:end]))
		if err != nil || n != end-i {
			t.Fatalf("Write = (%d,%v)", n, err)
		}
	}
	if got := string(s.Snapshot()); got != payload {
		t.Fatalf("snapshot = %q, want %q", got, payload)
	}
	if s.Lines() != 3 || s.Dropped() != 0 {
		t.Fatalf("lines=%d dropped=%d, want 3,0", s.Lines(), s.Dropped())
	}
}

// TestRingSinkPartialLineExcluded: a trailing line without its newline is
// buffered, not exposed — snapshots are always whole-line JSONL.
func TestRingSinkPartialLineExcluded(t *testing.T) {
	s := NewRingSink(1 << 16)
	s.Write([]byte("complete\nincompl"))
	if got := string(s.Snapshot()); got != "complete\n" {
		t.Fatalf("snapshot = %q, want %q", got, "complete\n")
	}
	s.Write([]byte("ete\n"))
	if got := string(s.Snapshot()); got != "complete\nincomplete\n" {
		t.Fatalf("snapshot = %q", got)
	}
}

// TestRingSinkEviction: over-budget input drops the oldest whole lines and
// counts them; the retained tail is the most recent suffix.
func TestRingSinkEviction(t *testing.T) {
	const line = 10 // "line-0xx.\n"
	s := NewRingSink(3 * line)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(s, "line-%03d.\n", i)
	}
	want := "line-007.\nline-008.\nline-009.\n"
	if got := string(s.Snapshot()); got != want {
		t.Fatalf("snapshot = %q, want %q", got, want)
	}
	if s.Dropped() != 7 || s.Lines() != 10 {
		t.Fatalf("dropped=%d lines=%d, want 7,10", s.Dropped(), s.Lines())
	}
}

// TestRingSinkOversizedLine: a single line larger than the whole budget is
// itself dropped without evicting the rest.
func TestRingSinkOversizedLine(t *testing.T) {
	s := NewRingSink(16)
	s.Write([]byte("keep\n"))
	s.Write([]byte(strings.Repeat("x", 64) + "\n"))
	s.Write([]byte("tail\n"))
	if got := string(s.Snapshot()); got != "keep\ntail\n" {
		t.Fatalf("snapshot = %q, want %q", got, "keep\ntail\n")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", s.Dropped())
	}
}

// TestRingSinkDefaultCap: cap 0 selects DefaultRingBytes.
func TestRingSinkDefaultCap(t *testing.T) {
	s := NewRingSink(0)
	if s.cap != DefaultRingBytes {
		t.Fatalf("cap = %d, want %d", s.cap, DefaultRingBytes)
	}
}

// TestRingSinkTracerRoundTrip: a Tracer writing into a RingSink (the screamd
// per-session capture path) yields a snapshot of valid whole lines under
// concurrent snapshot readers (-race gate).
func TestRingSinkTracerRoundTrip(t *testing.T) {
	s := NewRingSink(1 << 20)
	tr := NewTracer(s)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent reader, as the HTTP handler would be
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Snapshot()
			}
		}
	}()
	for i := 0; i < 500; i++ {
		tr.Emit("tick", I("t", int64(i)))
		if i%50 == 0 {
			tr.Flush()
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(string(s.Snapshot()), "\n"), "\n")
	if len(lines) != 500 {
		t.Fatalf("got %d lines, want 500", len(lines))
	}
	for i, ln := range lines {
		want := fmt.Sprintf(`{"v":2,"ev":"tick","t":%d}`, i)
		if ln != want {
			t.Fatalf("line %d = %q, want %q", i, ln, want)
		}
	}
}
