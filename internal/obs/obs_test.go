package obs

import (
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if v, ok := r.CounterValue("x_total"); !ok || v != 42 {
		t.Fatalf("CounterValue = %d,%v want 42,true", v, ok)
	}
	// Get-or-create returns the same handle.
	if c2 := r.Counter("x_total", "ignored"); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("y", "a gauge")
	g.Set(7)
	g.Add(-2)
	g.Max(4) // below current: no-op
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge after Max = %d, want 9", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("never", "")
	g := r.Gauge("never", "")
	h := r.Histogram("never", "", DelayBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// None of these may panic, and all read as zero.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	g.Max(9)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	tr.Emit("nothing", N("x", 1))
	if tr.Events() != 0 || tr.Flush() != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("clash", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "delays", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	upper, cum := h.Buckets()
	wantUpper := []float64{0.1, 1, 10, math.Inf(1)}
	wantCum := []int64{2, 3, 4, 5} // 0.1 is inclusive (le semantics)
	for i := range wantUpper {
		if upper[i] != wantUpper[i] || cum[i] != wantCum[i] {
			t.Fatalf("bucket %d = (%g,%d), want (%g,%d)", i, upper[i], cum[i], wantUpper[i], wantCum[i])
		}
	}
}

// TestConcurrentWriters hammers one registry from many goroutines; run
// under -race (CI does) this is the concurrency-safety gate for the whole
// metrics substrate.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every worker also re-registers, exercising the get-or-create
			// path concurrently with the atomic writes.
			c := r.Counter("hits_total", "")
			g := r.Gauge("depth", "")
			h := r.Histogram("delay_seconds", "", DelayBuckets())
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				g.Max(int64(i))
				h.Observe(float64(i) * 0.001)
			}
		}()
	}
	wg.Wait()
	if v, _ := r.CounterValue("hits_total"); v != workers*perWorker {
		t.Fatalf("hits_total = %d, want %d", v, workers*perWorker)
	}
	h, ok := r.HistogramValue("delay_seconds")
	if !ok || h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{reason="x"}`, "requests").Add(3)
	r.Counter(`req_total{reason="y"}`, "requests").Add(4)
	r.Gauge("depth", "queue depth").Set(-2)
	r.Histogram("lat_seconds", "latency", []float64{1, 2}).Observe(1.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP depth queue depth
# TYPE depth gauge
depth -2
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="1"} 0
lat_seconds_bucket{le="2"} 1
lat_seconds_bucket{le="+Inf"} 1
lat_seconds_sum 1.5
lat_seconds_count 1
# HELP req_total requests
# TYPE req_total counter
req_total{reason="x"} 3
req_total{reason="y"} 4
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Histogram(`fill{sched="greedy"}`, "slot fill", []float64{1}).Observe(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fill_bucket{sched="greedy",le="1"} 1`,
		`fill_sum{sched="greedy"} 1`,
		`fill_count{sched="greedy"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q in:\n%s", want, sb.String())
		}
	}
}

// TestGaugeMaxConcurrent races Max against itself and against Set from many
// goroutines (run under -race in CI): the CAS loop must converge on the true
// maximum — a lost update would surface as a smaller final value.
func TestGaugeMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("peak", "")
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Max(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if got, want := g.Value(), int64(workers*perWorker-1); got != want {
		t.Fatalf("gauge after concurrent Max = %d, want %d", got, want)
	}
	// Monotone even when racing with lower proposals afterwards.
	g.Max(5)
	if g.Value() != int64(workers*perWorker-1) {
		t.Fatal("Max regressed below the observed peak")
	}
}

// TestHistogramBucketsConformance checks Buckets() against the Prometheus
// text-format histogram semantics: `le` is inclusive, counts are cumulative
// and non-decreasing, the +Inf bucket equals the observation count, and the
// exposition renders exactly those numbers.
func TestHistogramBucketsConformance(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	obsv := []float64{0.01, 0.01, 0.05, 0.1, 0.7, 3, 42} // boundary values on purpose
	for _, v := range obsv {
		h.Observe(v)
	}
	upper, cum := h.Buckets()
	if len(upper) != 4 || !math.IsInf(upper[3], 1) {
		t.Fatalf("upper = %v, want trailing +Inf", upper)
	}
	wantCum := []int64{2, 4, 5, 7} // le-inclusive boundaries
	for i := range wantCum {
		if cum[i] != wantCum[i] {
			t.Fatalf("cum[%d] = %d, want %d (le=%g)", i, cum[i], wantCum[i], upper[i])
		}
		if i > 0 && cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts decreased at bucket %d", i)
		}
	}
	if cum[3] != h.Count() {
		t.Fatalf("+Inf bucket %d != count %d", cum[3], h.Count())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="1"} 5`,
		`lat_seconds_bucket{le="+Inf"} 7`,
		`lat_seconds_count 7`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry must start nil")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Fatal("SetDefault did not install")
	}
}

func TestServeMetricsHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "ups").Inc()
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}
	// pprof index must be mounted too.
	resp, err = http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
}
