// Package obs is the runtime observability substrate: a dependency-free,
// concurrency-safe metrics registry (counters, gauges, histograms with fixed
// bucket layouts) plus a structured JSONL event tracer (trace.go) and a
// Prometheus-text-format / pprof HTTP exposition surface (http.go).
//
// The design contract, enforced across every instrumented layer (core, phys,
// sched, flow, dynam), is that the *disabled* path costs nothing: every
// metric handle type has nil-receiver no-op methods, so code holds plain
// `*obs.Counter` fields that are nil when observability is off and the hot
// path pays one predictable nil-check branch — no allocation, no atomic, no
// interface dispatch. Metrics are strictly write-only from the simulation's
// point of view: no control flow ever reads a metric, which is what keeps
// every figure TSV byte-identical whether observability is enabled or not.
//
// All counter and gauge values are int64 (simulated durations are counted in
// des.Time nanosecond ticks, exact by construction), so tests can assert
// conservation laws and measured-vs-analytic identities with == instead of
// float tolerances. Histograms observe float64s into bucket layouts fixed at
// registration, keeping exposition deterministic.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; a nil *Counter is a no-op (the disabled path).
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Negative n is a programming error but is not checked on the
// hot path; the exposition layer reports whatever was accumulated.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric. The zero value is ready to use; a nil
// *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Max raises the gauge to n if n is larger (a running peak).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution metric. Bucket upper bounds are
// set at registration and never change, so the exposition layout (and any
// golden output derived from it) is deterministic. A nil *Histogram is a
// no-op.
type Histogram struct {
	upper  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records v into its bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (fixed small layouts); linear scan beats binary
	// search at these sizes and is branch-predictable.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the upper bounds and cumulative counts per bucket
// (including the implicit +Inf bucket as the last entry).
func (h *Histogram) Buckets() (upper []float64, cumulative []int64) {
	if h == nil {
		return nil, nil
	}
	upper = append(upper, h.upper...)
	upper = append(upper, math.Inf(1))
	total := int64(0)
	cumulative = make([]int64, len(h.counts))
	for i := range h.counts {
		total += h.counts[i].Load()
		cumulative[i] = total
	}
	return upper, cumulative
}

// DelayBuckets is the fixed bucket layout for end-to-end delay histograms,
// in seconds: 1 ms to 30 s on a 1-2-5 grid, matching the simulated-delay
// range of every flow scenario in the repo.
func DelayBuckets() []float64 {
	return []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 30}
}

// SlotFillBuckets is the fixed bucket layout for links-per-slot histograms.
func SlotFillBuckets() []float64 {
	return []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
}

// metricKind discriminates the registry's name table.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

type metric struct {
	name string // full name, possibly including a {label="..."} suffix
	kind metricKind
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics. Get-or-create registration is
// guarded by a mutex; the returned handles are lock-free atomics, safe for
// concurrent writers (the experiment engine fans cells across workers that
// all write the same process-wide handles). A nil *Registry returns nil
// handles from every constructor, which is the disabled path end to end.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric // registration order; exposition sorts by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// lookup returns the metric registered under name, creating it with mk when
// absent. Registering one name under two kinds is a programming error and
// panics: silently returning nil would make the caller's instrumentation
// vanish without a trace.
func (r *Registry) lookup(name, help string, kind metricKind, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, m.kind, kind))
		}
		return m
	}
	m := mk()
	m.name = name
	m.kind = kind
	m.help = help
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter registered under name, creating it on first
// use. name may embed Prometheus labels (`foo_total{reason="x"}`); the help
// string is attached to the family (the part before '{'). Returns nil on a
// nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, func() *metric { return &metric{c: new(Counter)} }).c
}

// Gauge is Counter for gauges.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, func() *metric { return &metric{g: new(Gauge)} }).g
}

// Histogram returns the histogram registered under name, creating it with
// the given fixed bucket upper bounds (ascending) on first use. Later calls
// ignore buckets: the layout is fixed at registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, func() *metric {
		h := &Histogram{upper: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Int64, len(h.upper)+1)
		return &metric{h: h}
	}).h
}

// CounterValue returns the value of a registered counter, reporting whether
// it exists. Intended for tests and snapshot-style assertions.
func (r *Registry) CounterValue(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	m, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || m.kind != kindCounter {
		return 0, false
	}
	return m.c.Value(), true
}

// GaugeValue is CounterValue for gauges.
func (r *Registry) GaugeValue(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	m, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || m.kind != kindGauge {
		return 0, false
	}
	return m.g.Value(), true
}

// HistogramValue returns a registered histogram handle (for Count/Sum/
// Buckets inspection), reporting whether it exists.
func (r *Registry) HistogramValue(name string) (*Histogram, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	m, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || m.kind != kindHistogram {
		return nil, false
	}
	return m.h, true
}

// snapshot returns the registered metrics sorted by (family, name), so all
// labeled series of one family are adjacent and the exposition emits each
// family's HELP/TYPE header exactly once.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		fi, fj := family(out[i].name), family(out[j].name)
		if fi != fj {
			return fi < fj
		}
		return out[i].name < out[j].name
	})
	return out
}

// The process-default registry: nil until a CLI enables observability
// (flowsim/figgen -obs). Layers that are not reached by per-run Config
// plumbing fall back to it, so one SetDefault at process start lights up
// every instrumented layer.
var defaultReg atomic.Pointer[Registry]

// SetDefault installs r as the process-default registry (nil uninstalls).
func SetDefault(r *Registry) {
	defaultReg.Store(r)
}

// Default returns the process-default registry, or nil when observability
// is disabled (the default).
func Default() *Registry {
	return defaultReg.Load()
}
