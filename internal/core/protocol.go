package core

import (
	"fmt"
	"math/rand"

	"scream/internal/des"
	"scream/internal/obs"
	"scream/internal/phys"
	"scream/internal/sched"
)

// State is a node's protocol state (Figure 1 of the paper).
type State int

// Node states. TERMINATE is reached by every node simultaneously when the
// controller-existence SCREAM comes back empty.
const (
	Dormant State = iota + 1
	Control
	Active
	Allocated
	Tried
	Complete
	Terminate
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Dormant:
		return "DORMANT"
	case Control:
		return "CONTROL"
	case Active:
		return "ACTIVE"
	case Allocated:
		return "ALLOCATED"
	case Tried:
		return "TRIED"
	case Complete:
		return "COMPLETE"
	case Terminate:
		return "TERMINATE"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Variant selects the active-set strategy.
type Variant int

const (
	// PDD activates each dormant node independently with probability P
	// in every step (Section III-C).
	PDD Variant = iota + 1
	// FDD activates exactly one dormant node per step, chosen by
	// network-wide leader election, which makes the protocol emulate the
	// centralized GreedyPhysical exactly (Section III-D, Theorem 4).
	FDD
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case PDD:
		return "PDD"
	case FDD:
		return "FDD"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Config parameterizes a protocol run.
type Config struct {
	Variant Variant
	// Links[i] is the forest edge owned by node Links[i].From; Demands[i]
	// is its aggregated demand. Nodes that own no link (gateways) simply
	// do not appear as owners.
	Links   []phys.Link
	Demands []int
	// Backend executes SCREAMs and handshake slots (and accounts time).
	Backend Backend
	// IDBits is the ID width for leader election; 0 derives it from the
	// node count (the paper's id_bits = ln n).
	IDBits int
	// Probability is PDD's activation probability p.
	Probability float64
	// RNG drives PDD's coin flips; required for PDD.
	RNG *rand.Rand
	// MaxRounds aborts pathological runs; 0 means 10*TD + 100.
	MaxRounds int
	// ASAPSeal is an extension ablation (not in the paper): seal the slot
	// as soon as no dormant nodes remain instead of running the final
	// empty selection step.
	ASAPSeal bool
	// Observer receives protocol events; zero value disables tracing.
	Observer Observer
	// Metrics, when non-nil, receives per-run counters (rounds, steps,
	// elections, analytic and backend-measured SCREAM/handshake counts,
	// execution ticks). Metrics are write-only: no protocol decision ever
	// reads them, so enabling them cannot change any result.
	Metrics *obs.Registry
	// Trace, when non-nil, receives structured protocol events
	// (controller_elected, handshake, slot_sealed) timestamped in simulated
	// ticks. Like Metrics, tracing is write-only.
	Trace *obs.Tracer
	// NumChannels is the number of orthogonal data channels (0 or 1 runs
	// the paper's single-channel protocol unchanged). With C > 1 each round
	// seals a multi-channel slot built in C sequential channel phases;
	// control traffic (SCREAMs, elections) rides the designated control
	// channel (channel 0) at unchanged cost, while data handshakes are
	// evaluated per channel. See DESIGN.md "Multi-channel scheduling".
	NumChannels int
	// NumRadios bounds how many channels a node may be active on per slot
	// (0 means 1). Only consulted when NumChannels > 1.
	NumRadios int
}

// Result is the outcome of a protocol run.
type Result struct {
	Schedule *sched.Schedule
	// Rounds is the number of rounds = slots scheduled.
	Rounds int
	// Steps is the total number of greedy augmentation steps across all
	// rounds (each costs one handshake slot plus two SCREAMs, plus an
	// election in FDD).
	Steps int
	// Elections is the number of leader elections run.
	Elections int
	// Screams is the number of SCREAM primitives run.
	Screams int
	// ExecTime is the total simulated protocol execution time.
	ExecTime des.Time
}

// protoRun is the validated, initialized per-run state shared by the
// single-channel and multi-channel protocol loops: the owner/link mapping,
// election identities, round budget, node states and the counted primitive
// wrappers. Both loops consume it; only the slot-construction structure
// differs.
type protoRun struct {
	cfg         Config
	n           int
	linkOf      []int // owner node -> link index, -1 for none
	totalDemand int
	idBits      int
	ids         []uint64
	maxRounds   int

	res       *Result
	state     []State
	remaining []int
	round     int
}

// newProtoRun validates the link/demand configuration and initializes the
// shared run state.
func newProtoRun(cfg Config) (*protoRun, error) {
	n := cfg.Backend.NumNodes()
	linkOf := make([]int, n)
	for i := range linkOf {
		linkOf[i] = -1
	}
	totalDemand := 0
	for i, l := range cfg.Links {
		if l.From < 0 || l.From >= n || l.To < 0 || l.To >= n {
			return nil, fmt.Errorf("core: link %v out of range for %d nodes", l, n)
		}
		if linkOf[l.From] != -1 {
			return nil, fmt.Errorf("core: node %d owns more than one link", l.From)
		}
		if cfg.Demands[i] < 0 {
			return nil, fmt.Errorf("core: link %v has negative demand", l)
		}
		linkOf[l.From] = i
		totalDemand += cfg.Demands[i]
	}

	idBits := cfg.IDBits
	if idBits == 0 {
		idBits = IDBitsFor(n)
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 10*totalDemand + 100
	}

	p := &protoRun{
		cfg: cfg, n: n, linkOf: linkOf, totalDemand: totalDemand,
		idBits: idBits, ids: ids, maxRounds: maxRounds,
		res:       &Result{Schedule: sched.NewSchedule()},
		state:     make([]State, n),
		remaining: append([]int(nil), cfg.Demands...),
	}
	for u := 0; u < n; u++ {
		if linkOf[u] >= 0 && p.remaining[linkOf[u]] > 0 {
			p.state[u] = Dormant
		} else {
			p.state[u] = Complete
		}
	}
	return p, nil
}

func (p *protoRun) setState(u int, to State) {
	if p.state[u] == to {
		return
	}
	if p.cfg.Observer.StateChange != nil {
		p.cfg.Observer.StateChange(p.round, u, p.state[u], to)
	}
	p.state[u] = to
}

func (p *protoRun) scream(vars []bool) []bool {
	p.res.Screams++
	return p.cfg.Backend.Scream(vars)
}

// screamConsensus runs a SCREAM whose result steers control flow. With
// a correct SCREAM (K >= ID, adequate SMBytes, guarded slots) every
// node computes the same OR; if views diverge the distributed protocol
// has genuinely broken, which we surface as an error instead of
// silently picking a view (this is what the failure-injection tests
// observe when K < ID or the skew guard is violated).
func (p *protoRun) screamConsensus(vars []bool, what string) (bool, error) {
	result := p.scream(vars)
	v := result[0]
	for i, r := range result {
		if r != v {
			return false, fmt.Errorf("core: SCREAM divergence on %s: node 0 sees %v, node %d sees %v (K too small or skew guard violated)", what, v, i, r)
		}
	}
	return v, nil
}

func (p *protoRun) elect(participating []bool) int {
	p.res.Elections++
	p.res.Screams += ElectionScreams(p.idBits)
	return LeaderElect(p.cfg.Backend, p.idBits, p.ids, participating)
}

// Run executes the distributed protocol to completion and returns the
// computed schedule with execution statistics. The run is a faithful
// lock-step simulation of all nodes: every SCREAM, election and handshake
// the real protocol would perform is executed against the backend (and
// therefore billed for time), and all control decisions are derived from
// those primitives' outputs only.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Links) != len(cfg.Demands) {
		return nil, fmt.Errorf("core: %d links vs %d demands", len(cfg.Links), len(cfg.Demands))
	}
	switch cfg.Variant {
	case PDD:
		if cfg.Probability <= 0 || cfg.Probability > 1 {
			return nil, fmt.Errorf("core: PDD needs probability in (0,1], got %v", cfg.Probability)
		}
		if cfg.RNG == nil {
			return nil, fmt.Errorf("core: PDD needs an RNG")
		}
	case FDD:
	default:
		return nil, fmt.Errorf("core: unknown variant %v", cfg.Variant)
	}
	p, err := newProtoRun(cfg)
	if err != nil {
		return nil, err
	}
	before := snapshotBackend(cfg.Backend)
	var res *Result
	if cfg.NumChannels > 1 {
		res, err = p.runMulti()
	} else {
		res, err = p.runSingle()
	}
	if err != nil {
		return nil, err
	}
	publishRun(&cfg, res, before)
	traceProtocol(&cfg, res, before)
	return res, nil
}

// runSingle is the paper's single-channel protocol loop.
func (p *protoRun) runSingle() (*Result, error) {
	cfg := p.cfg
	n := p.n
	linkOf := p.linkOf
	b := cfg.Backend
	res := p.res
	state := p.state
	remaining := p.remaining
	setState := p.setState
	scream := p.scream
	screamConsensus := p.screamConsensus
	elect := p.elect

	// Scratch buffers for the admission loop, reused across steps: the
	// backend's incremental engine makes each handshake O(k·Δ), so the
	// step loop itself must not churn allocations either.
	vars := make([]bool, n)
	part := make([]bool, n)
	hsLinks := make([]phys.Link, 0, n)
	hsOwners := make([]int, 0, n)
	hsOK := make([]bool, n)
	released := true
	controller := -1

	for ; ; p.round++ {
		if p.round >= p.maxRounds {
			return nil, fmt.Errorf("core: no termination after %d rounds (TD=%d); check feasibility of individual links", p.round, p.totalDemand)
		}

		if released {
			// Controller election among all nodes with pending demand.
			for u := 0; u < n; u++ {
				part[u] = state[u] != Complete
			}
			winner := elect(part)
			// Controller-existence SCREAM: the winner (if any) screams.
			for u := range vars {
				vars[u] = u == winner
			}
			exists, err := screamConsensus(vars, "controller existence")
			if err != nil {
				return nil, err
			}
			if !exists {
				// Nobody claimed control: every node's demand is
				// satisfied, all transition to TERMINATE.
				break
			}
			controller = winner
			if cfg.Observer.ControllerElected != nil {
				cfg.Observer.ControllerElected(p.round, controller)
			}
			p.traceEmit("controller_elected", obs.N("node", controller))
			setState(controller, Control)
		}

		slotSpan := p.beginSlot()

		// GreedyScheduleSlot: reset non-complete, non-control nodes.
		for u := 0; u < n; u++ {
			if state[u] != Complete && state[u] != Control {
				setState(u, Dormant)
			}
		}

		for {
			// SelectActive.
			switch cfg.Variant {
			case PDD:
				for u := 0; u < n; u++ {
					if state[u] == Dormant && cfg.RNG.Float64() < cfg.Probability {
						setState(u, Active)
					}
				}
			case FDD:
				for u := 0; u < n; u++ {
					part[u] = state[u] == Dormant
				}
				if winner := elect(part); winner >= 0 {
					setState(winner, Active)
				}
			}

			// Handshake slot over every tentatively or firmly scheduled link.
			hsLinks = hsLinks[:0]
			hsOwners = hsOwners[:0]
			for u := 0; u < n; u++ {
				if state[u] == Active || state[u] == Allocated || state[u] == Control {
					hsLinks = append(hsLinks, cfg.Links[linkOf[u]])
					hsOwners = append(hsOwners, u)
				}
			}
			res.Steps++
			outcome := b.HandshakeSlot(hsLinks)

			// Verification SCREAM: previously scheduled edges veto when
			// their handshake failed under the newcomers' interference.
			// hsOK is only ever read for this step's owners, so stale
			// entries from earlier steps need no clearing.
			for u := range vars {
				vars[u] = false
			}
			for i, u := range hsOwners {
				hsOK[u] = outcome[i]
				if (state[u] == Allocated || state[u] == Control) && !outcome[i] {
					vars[u] = true
				}
			}
			veto, err := screamConsensus(vars, "handshake veto")
			if err != nil {
				return nil, err
			}
			if cfg.Trace != nil {
				okCount := 0
				for _, ok := range outcome {
					if ok {
						okCount++
					}
				}
				p.traceEmit("handshake",
					obs.N("links", len(hsLinks)), obs.N("ok", okCount), obs.B("veto", veto))
			}

			// Actives join or are discarded.
			for u := 0; u < n; u++ {
				if state[u] != Active {
					continue
				}
				if !veto && hsOK[u] {
					setState(u, Allocated)
				} else {
					setState(u, Tried)
				}
			}

			// Still-actives SCREAM: dormant nodes keep the slot open.
			if cfg.ASAPSeal {
				// Extension: local decision replaced by the same SCREAM,
				// but run only when some node is still dormant, saving
				// the final empty round-trip.
				still := false
				for u := 0; u < n; u++ {
					if state[u] == Dormant {
						still = true
						break
					}
				}
				if !still {
					break
				}
				for u := 0; u < n; u++ {
					vars[u] = state[u] == Dormant
				}
				scream(vars)
				continue
			}
			for u := 0; u < n; u++ {
				vars[u] = state[u] == Dormant
			}
			still, err := screamConsensus(vars, "still-dormant")
			if err != nil {
				return nil, err
			}
			if !still {
				break
			}
		}

		// Seal the slot: allocated and control links transmit in it.
		var slot []phys.Link
		for u := 0; u < n; u++ {
			if state[u] == Allocated || state[u] == Control {
				li := linkOf[u]
				slot = append(slot, cfg.Links[li])
				remaining[li]--
			}
		}
		res.Schedule.AppendSlot(slot)
		res.Rounds++
		if cfg.Observer.SlotSealed != nil {
			cfg.Observer.SlotSealed(p.round, slot)
		}
		p.endSlot(slotSpan, len(slot))

		// Control-release SCREAM: the controller announces whether its
		// demand is now satisfied.
		ctrlDone := remaining[linkOf[controller]] == 0
		for u := range vars {
			vars[u] = u == controller && ctrlDone
		}
		rel, err := screamConsensus(vars, "control release")
		if err != nil {
			return nil, err
		}
		released = rel

		// State transitions for the next round.
		for u := 0; u < n; u++ {
			li := linkOf[u]
			if li >= 0 && remaining[li] == 0 {
				setState(u, Complete)
				continue
			}
			if u == controller && !released {
				continue // stays CONTROL
			}
			if state[u] != Complete {
				setState(u, Dormant)
			}
		}
		if released {
			controller = -1
		}
	}

	res.ExecTime = b.Elapsed()
	return res, nil
}
