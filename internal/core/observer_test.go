package core

import (
	"math/rand"
	"testing"

	"scream/internal/phys"
)

func TestTransitionLegal(t *testing.T) {
	legal := []struct{ from, to State }{
		{Dormant, Active}, {Dormant, Control},
		{Active, Allocated}, {Active, Tried},
		{Allocated, Dormant}, {Allocated, Complete},
		{Tried, Dormant},
		{Control, Complete},
		{Complete, Terminate},
	}
	for _, tr := range legal {
		if !TransitionLegal(tr.from, tr.to) {
			t.Errorf("%v -> %v should be legal", tr.from, tr.to)
		}
	}
	illegal := []struct{ from, to State }{
		{Dormant, Allocated}, {Dormant, Complete},
		{Active, Dormant}, {Active, Control},
		{Tried, Allocated}, {Tried, Active},
		{Control, Dormant}, {Control, Active},
		{Complete, Dormant}, {Complete, Control},
		{Terminate, Dormant},
		{State(99), Dormant},
	}
	for _, tr := range illegal {
		if TransitionLegal(tr.from, tr.to) {
			t.Errorf("%v -> %v should be illegal", tr.from, tr.to)
		}
	}
}

// TestObserverTransitionsMatchFigure1 runs both protocols with a tracing
// observer and asserts that every state transition the engine performs is an
// edge of the paper's Figure 1 state machine.
func TestObserverTransitionsMatchFigure1(t *testing.T) {
	for _, variant := range []Variant{FDD, PDD} {
		fx := gridFixture(t, 5, 61)
		var transitions int
		var sealed int
		var elected int
		obs := Observer{
			ControllerElected: func(round, node int) { elected++ },
			StateChange: func(round, node int, from, to State) {
				transitions++
				if !TransitionLegal(from, to) {
					t.Fatalf("%v: illegal transition %v -> %v at node %d round %d", variant, from, to, node, round)
				}
			},
			SlotSealed: func(round int, links []phys.Link) {
				sealed++
				if len(links) == 0 {
					t.Fatalf("%v: sealed an empty slot at round %d", variant, round)
				}
			},
		}
		cfg := Config{
			Variant:  variant,
			Links:    fx.links,
			Demands:  fx.demands,
			Backend:  fx.backend(t, 0, false),
			Observer: obs,
		}
		if variant == PDD {
			cfg.Probability = 0.5
			cfg.RNG = rand.New(rand.NewSource(62))
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sealed != res.Rounds {
			t.Errorf("%v: %d sealed slots for %d rounds", variant, sealed, res.Rounds)
		}
		if elected == 0 || transitions == 0 {
			t.Errorf("%v: observer saw %d elections, %d transitions", variant, elected, transitions)
		}
	}
}

// TestObserverSlotContentsMatchSchedule cross-checks the sealed-slot events
// against the returned schedule.
func TestObserverSlotContentsMatchSchedule(t *testing.T) {
	fx := gridFixture(t, 4, 63)
	var slots [][]phys.Link
	cfg := Config{
		Variant: FDD,
		Links:   fx.links,
		Demands: fx.demands,
		Backend: fx.backend(t, 0, false),
		Observer: Observer{
			SlotSealed: func(round int, links []phys.Link) {
				cp := make([]phys.Link, len(links))
				copy(cp, links)
				slots = append(slots, cp)
			},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != res.Schedule.Length() {
		t.Fatalf("observer saw %d slots, schedule has %d", len(slots), res.Schedule.Length())
	}
	for i, slot := range slots {
		got := res.Schedule.Slot(i)
		if len(got) != len(slot) {
			t.Fatalf("slot %d: observer %v vs schedule %v", i, slot, got)
		}
	}
}

// TestControllerIsHighestIDNonComplete verifies the FDD controller choice
// round by round via the observer.
func TestControllerIsHighestIDNonComplete(t *testing.T) {
	fx := gridFixture(t, 4, 64)
	remaining := make(map[int]int)
	for i, l := range fx.links {
		remaining[l.From] = fx.demands[i]
	}
	prevController := -1
	cfg := Config{
		Variant: FDD,
		Links:   fx.links,
		Demands: fx.demands,
		Backend: fx.backend(t, 0, false),
		Observer: Observer{
			ControllerElected: func(round, node int) {
				// The new controller must be the highest-ID node that
				// still has pending demand.
				want := -1
				for u, d := range remaining {
					if d > 0 && u > want {
						want = u
					}
				}
				if node != want {
					t.Fatalf("round %d: controller %d, want %d", round, node, want)
				}
				prevController = node
			},
			SlotSealed: func(round int, links []phys.Link) {
				for _, l := range links {
					remaining[l.From]--
				}
			},
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if prevController < 0 {
		t.Fatal("no controller was ever elected")
	}
}
