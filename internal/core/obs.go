package core

import (
	"scream/internal/obs"
)

// MeasuredBackend is the optional backend interface exposing what the
// backend actually executed and billed, independently of the protocol
// layer's own analytic accounting (Result.Screams, Result.Steps). Publishing
// both lets tests and scrapes cross-check that the simulation charges
// exactly what core.Timing says a SCREAM and a handshake slot cost:
//
//	elapsed_ticks == screams*K*ScreamSlot() + handshakes*HandshakeSlot()
//
// IdealBackend implements it.
type MeasuredBackend interface {
	// ScreamCount returns how many SCREAM primitives the backend executed.
	ScreamCount() int
	// HandshakeCount returns how many handshake slots the backend executed.
	HandshakeCount() int
	// K returns the SCREAM length in slots.
	K() int
}

// backendSnapshot captures a MeasuredBackend's counters so a later delta
// isolates one protocol run even when the backend is reused across epochs.
type backendSnapshot struct {
	ok         bool
	screams    int
	handshakes int
	elapsed    int64
}

func snapshotBackend(b Backend) backendSnapshot {
	mb, ok := b.(MeasuredBackend)
	if !ok {
		return backendSnapshot{}
	}
	return backendSnapshot{
		ok:         true,
		screams:    mb.ScreamCount(),
		handshakes: mb.HandshakeCount(),
		elapsed:    int64(b.Elapsed()),
	}
}

// publishRun records one completed protocol run into cfg.Metrics (a no-op
// when nil). Counters are split into the protocol layer's analytic view
// (what Result accounts) and the backend's measured view (what was actually
// executed and billed); both are exact int64 event counts, so tests assert
// equality rather than tolerance. Registry lookups here are get-or-create on
// a cold path — Run executes once per epoch, not per slot.
func publishRun(cfg *Config, res *Result, before backendSnapshot) {
	r := cfg.Metrics
	if r == nil {
		// Fall back to the process default installed by a CLI's
		// observability opt-in (nil by default — publish is then skipped).
		r = obs.Default()
	}
	if r == nil {
		return
	}
	variant := `{variant="` + cfg.Variant.String() + `"}`
	r.Counter("scream_core_runs_total"+variant, "completed protocol runs by variant").Inc()
	r.Counter("scream_core_rounds_total", "protocol rounds (slots sealed) across runs").Add(int64(res.Rounds))
	r.Counter("scream_core_steps_total", "greedy augmentation steps across runs").Add(int64(res.Steps))
	r.Counter("scream_core_elections_total", "leader elections across runs").Add(int64(res.Elections))
	r.Counter("scream_core_screams_total", "SCREAM primitives charged by the protocol layer (analytic)").Add(int64(res.Screams))
	r.Counter("scream_core_exec_ticks_total", "simulated protocol execution time in des.Time ticks").Add(int64(res.ExecTime))

	if before.ok {
		mb := cfg.Backend.(MeasuredBackend)
		r.Counter("scream_core_screams_measured_total", "SCREAM primitives the backend actually executed").
			Add(int64(mb.ScreamCount() - before.screams))
		r.Counter("scream_core_handshake_slots_measured_total", "handshake slots the backend actually executed").
			Add(int64(mb.HandshakeCount() - before.handshakes))
		r.Gauge("scream_core_scream_length_slots", "SCREAM length K in slots (last run)").Set(int64(mb.K()))
	}
}

// traceTick is the absolute simulated time of a trace event: the backend's
// elapsed clock (which restarts at zero for every run — flow clones a fresh
// backend per epoch) plus the tracer's time base, which the flow driver sets
// to the epoch's absolute start tick before each build. Direct core.Run
// callers get base 0, i.e. run-relative timestamps, exactly as in schema v1.
func (p *protoRun) traceTick() int64 {
	return p.cfg.Trace.TimeBase() + int64(p.cfg.Backend.Elapsed())
}

// traceEmit forwards a point event to cfg.Trace (nil-safe), timestamped at
// the current absolute simulated time with the current round attached.
func (p *protoRun) traceEmit(ev string, fields ...obs.Field) {
	if p.cfg.Trace == nil {
		return
	}
	base := []obs.Field{obs.I("t", p.traceTick()), obs.N("round", p.round)}
	p.cfg.Trace.Emit(ev, append(base, fields...)...)
}

// beginSlot opens the per-round "slot" span covering one slot's greedy
// construction through its seal. Returns 0 (a no-op handle) when tracing is
// disabled.
func (p *protoRun) beginSlot() obs.SpanID {
	if p.cfg.Trace == nil {
		return 0
	}
	return p.cfg.Trace.Begin("slot", p.traceTick(), obs.N("round", p.round))
}

// endSlot closes a round's slot span at seal time, recording how many links
// the sealed slot carries.
func (p *protoRun) endSlot(id obs.SpanID, links int) {
	if p.cfg.Trace == nil {
		return
	}
	p.cfg.Trace.End(id, p.traceTick(), obs.N("links", links))
}

// traceProtocol emits the run-level "protocol" instant: the analytic
// accounting (rounds, steps, screams, exec ticks) plus — when the backend
// is measurable — the backend's executed primitive counts and K. Carrying
// both views in the trace is what lets `screamtrace validate` re-derive the
// exec-tick timing identity
//
//	exec == screams_measured*k*scream_slot + handshakes_measured*hs_slot
//
// offline, with the per-primitive slot costs taken from the enclosing flow
// run span.
func traceProtocol(cfg *Config, res *Result, before backendSnapshot) {
	if cfg.Trace == nil {
		return
	}
	fields := []obs.Field{
		obs.I("t", cfg.Trace.TimeBase()+int64(res.ExecTime)),
		obs.S("variant", cfg.Variant.String()),
		obs.N("rounds", res.Rounds),
		obs.N("steps", res.Steps),
		obs.N("elections", res.Elections),
		obs.N("screams", res.Screams),
		obs.I("exec", int64(res.ExecTime)),
	}
	if before.ok {
		mb := cfg.Backend.(MeasuredBackend)
		fields = append(fields,
			obs.N("screams_measured", mb.ScreamCount()-before.screams),
			obs.N("handshakes_measured", mb.HandshakeCount()-before.handshakes),
			obs.N("k", mb.K()),
		)
	}
	cfg.Trace.Emit("protocol", fields...)
}
