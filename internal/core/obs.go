package core

import (
	"scream/internal/obs"
)

// MeasuredBackend is the optional backend interface exposing what the
// backend actually executed and billed, independently of the protocol
// layer's own analytic accounting (Result.Screams, Result.Steps). Publishing
// both lets tests and scrapes cross-check that the simulation charges
// exactly what core.Timing says a SCREAM and a handshake slot cost:
//
//	elapsed_ticks == screams*K*ScreamSlot() + handshakes*HandshakeSlot()
//
// IdealBackend implements it.
type MeasuredBackend interface {
	// ScreamCount returns how many SCREAM primitives the backend executed.
	ScreamCount() int
	// HandshakeCount returns how many handshake slots the backend executed.
	HandshakeCount() int
	// K returns the SCREAM length in slots.
	K() int
}

// backendSnapshot captures a MeasuredBackend's counters so a later delta
// isolates one protocol run even when the backend is reused across epochs.
type backendSnapshot struct {
	ok         bool
	screams    int
	handshakes int
	elapsed    int64
}

func snapshotBackend(b Backend) backendSnapshot {
	mb, ok := b.(MeasuredBackend)
	if !ok {
		return backendSnapshot{}
	}
	return backendSnapshot{
		ok:         true,
		screams:    mb.ScreamCount(),
		handshakes: mb.HandshakeCount(),
		elapsed:    int64(b.Elapsed()),
	}
}

// publishRun records one completed protocol run into cfg.Metrics (a no-op
// when nil). Counters are split into the protocol layer's analytic view
// (what Result accounts) and the backend's measured view (what was actually
// executed and billed); both are exact int64 event counts, so tests assert
// equality rather than tolerance. Registry lookups here are get-or-create on
// a cold path — Run executes once per epoch, not per slot.
func publishRun(cfg *Config, res *Result, before backendSnapshot) {
	r := cfg.Metrics
	if r == nil {
		// Fall back to the process default installed by a CLI's
		// observability opt-in (nil by default — publish is then skipped).
		r = obs.Default()
	}
	if r == nil {
		return
	}
	variant := `{variant="` + cfg.Variant.String() + `"}`
	r.Counter("scream_core_runs_total"+variant, "completed protocol runs by variant").Inc()
	r.Counter("scream_core_rounds_total", "protocol rounds (slots sealed) across runs").Add(int64(res.Rounds))
	r.Counter("scream_core_steps_total", "greedy augmentation steps across runs").Add(int64(res.Steps))
	r.Counter("scream_core_elections_total", "leader elections across runs").Add(int64(res.Elections))
	r.Counter("scream_core_screams_total", "SCREAM primitives charged by the protocol layer (analytic)").Add(int64(res.Screams))
	r.Counter("scream_core_exec_ticks_total", "simulated protocol execution time in des.Time ticks").Add(int64(res.ExecTime))

	if before.ok {
		mb := cfg.Backend.(MeasuredBackend)
		r.Counter("scream_core_screams_measured_total", "SCREAM primitives the backend actually executed").
			Add(int64(mb.ScreamCount() - before.screams))
		r.Counter("scream_core_handshake_slots_measured_total", "handshake slots the backend actually executed").
			Add(int64(mb.HandshakeCount() - before.handshakes))
		r.Gauge("scream_core_scream_length_slots", "SCREAM length K in slots (last run)").Set(int64(mb.K()))
	}
}

// traceEmit forwards to cfg.Trace (nil-safe); t is the backend's elapsed
// simulated time in ticks at the moment of the event.
func (p *protoRun) traceEmit(ev string, fields ...obs.Field) {
	if p.cfg.Trace == nil {
		return
	}
	base := []obs.Field{obs.I("t", int64(p.cfg.Backend.Elapsed())), obs.N("round", p.round)}
	p.cfg.Trace.Emit(ev, append(base, fields...)...)
}
