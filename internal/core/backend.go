package core

import (
	"errors"
	"fmt"

	"scream/internal/des"
	"scream/internal/graph"
	"scream/internal/phys"
)

// ErrSensDisconnected reports that the sensitivity graph is disconnected
// among the participating nodes, so a SCREAM flood cannot saturate and no
// distributed control decision can be made.
var ErrSensDisconnected = errors.New("core: sensitivity graph disconnected among alive nodes (ID = inf); SCREAM cannot work")

// Backend executes the protocols' physical-layer primitives and accounts for
// the time they consume. Two implementations exist: the IdealBackend below
// (direct SINR evaluation, used for schedule-quality experiments, where the
// paper assumes SCREAM detection is reliable at adequate SMBytes), and the
// packet-level radio backend in internal/radio (skewed transmission windows
// and energy detection, used for validation).
type Backend interface {
	// NumNodes returns the number of nodes in the network.
	NumNodes() int
	// Scream runs one full SCREAM primitive (K slots): every node i with
	// vars[i] == true screams in the first slot; listeners that detect
	// activity relay in subsequent slots. It returns each node's final
	// relay value — the network-wide OR when K >= ID(G_S).
	Scream(vars []bool) []bool
	// HandshakeSlot runs one data + ACK handshake slot for all the given
	// links concurrently and reports per-link two-way success. The
	// returned slice is only valid until the next HandshakeSlot call
	// (implementations may reuse it).
	HandshakeSlot(links []phys.Link) []bool
	// Elapsed returns the total simulated time consumed so far.
	Elapsed() des.Time
}

// RunScreamSlots is the SCREAM relay loop shared by backends: k slots; in
// each slot every relaying node screams and every detecting listener starts
// relaying. slot must return, for each node, whether that node detected
// channel activity in the slot (values for screaming nodes are ignored).
func RunScreamSlots(k int, vars []bool, slot func(screamers []bool) []bool) []bool {
	relay := make([]bool, len(vars))
	copy(relay, vars)
	for s := 0; s < k; s++ {
		det := slot(relay)
		for i, d := range det {
			if d && !relay[i] {
				relay[i] = true
			}
		}
	}
	return relay
}

// IdealBackend evaluates the primitives directly against the physical
// interference model: handshakes via the incremental phys.SlotState engine
// (equivalent to phys.Channel.HandshakeOutcome, which stays as the reference
// implementation and is what the packet-level radio backend approximates)
// and SCREAM detection via aggregate-energy carrier sensing over the
// sensitivity graph. In Fast mode (the default), the SCREAM result is
// computed as the plain OR of the inputs, which is exact whenever
// K >= ID(G_S) — the precondition the constructor enforces; strict mode runs
// the slot-by-slot relay flood instead.
type IdealBackend struct {
	ch      *phys.Channel
	sensAdj [][]int // sensitivity-graph in-neighbors: who node v can hear
	k       int
	timing  Timing
	strict  bool
	elapsed des.Time

	screams    int // SCREAM primitives run
	handshakes int // handshake slots run

	// Incremental handshake engine. The protocols build each slot by
	// repeatedly handshaking a slowly-mutating link set (the allocated
	// links persist, each step tentatively admits a few actives and evicts
	// the ones that failed), so the backend diffs each request against the
	// previous one and replays only the difference on a phys.SlotState:
	// O(k·Δ) per step instead of HandshakeOutcome's O(k²). Every protocol
	// link is owned by its From node (one link per owner), so all engine
	// bookkeeping is indexed by From; requests that violate that invariant
	// fall back to the reference Channel.HandshakeOutcome.
	slot       *phys.SlotState
	prev       []phys.Link // link set of the previous HandshakeSlot call
	lastAdds   []phys.Link // links tentatively added by that call
	isLastAdd  []bool      // by From: link was tentatively added by that call
	member     []bool      // by From: owner's link is currently in the slot
	memberLink []phys.Link // by From: the member link itself
	posIdx     []int       // by From: the member link's slot admission index
	wantCall   []int       // by From: stamp marking membership in the current request
	wantLink   []phys.Link // by From: the requested link for this call
	call       int         // HandshakeSlot invocation counter for the stamps
	outBuf     []bool      // result scratch, valid until the next HandshakeSlot call
}

// NewIdealBackend builds an ideal backend. sens is the sensitivity graph
// (who hears whom); k is the SCREAM length in slots. Unless strict is set,
// k must be at least the interference diameter of sens so that the fast OR
// shortcut is exact.
func NewIdealBackend(ch *phys.Channel, sens *graph.Graph, k int, timing Timing, strict bool) (*IdealBackend, error) {
	if sens.NumNodes() != ch.NumNodes() {
		return nil, fmt.Errorf("core: sensitivity graph has %d nodes, channel %d", sens.NumNodes(), ch.NumNodes())
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: SCREAM length k must be positive, got %d", k)
	}
	if !strict {
		id := sens.Diameter()
		if id < 0 {
			return nil, fmt.Errorf("core: sensitivity graph is not strongly connected (ID = inf); SCREAM cannot work")
		}
		if k < id {
			return nil, fmt.Errorf("core: k = %d is below the interference diameter %d; use strict mode to observe the failure", k, id)
		}
	}
	// In-neighbors: v detects activity when any u with edge u->v screams.
	n := ch.NumNodes()
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, v := range sens.Neighbors(u) {
			adj[v] = append(adj[v], u)
		}
	}
	return &IdealBackend{ch: ch, sensAdj: adj, k: k, timing: timing, strict: strict}, nil
}

// NewIdealBackendAmong builds an ideal backend for a network where only the
// nodes with alive[u] true participate: failed radios hold no sensitivity
// edges (the topology-dynamics layer silences them), so the full-graph
// strong-connectivity check of NewIdealBackend can never pass. The SCREAM
// length used is max(kFloor, diameter among alive nodes, 1) — the bound
// SCREAM actually needs, since dead nodes neither scream nor relay and no
// live protocol state depends on their view; kFloor only ever raises it.
// When the alive sensitivity graph is disconnected the error wraps
// ErrSensDisconnected. The fast OR shortcut stays exact for every
// participating node.
func NewIdealBackendAmong(ch *phys.Channel, sens *graph.Graph, alive []bool, kFloor int, timing Timing) (*IdealBackend, error) {
	if sens.NumNodes() != ch.NumNodes() {
		return nil, fmt.Errorf("core: sensitivity graph has %d nodes, channel %d", sens.NumNodes(), ch.NumNodes())
	}
	if len(alive) != ch.NumNodes() {
		return nil, fmt.Errorf("core: %d alive flags for %d nodes", len(alive), ch.NumNodes())
	}
	id := sens.DiameterAmong(alive)
	if id < 0 {
		return nil, ErrSensDisconnected
	}
	k := kFloor
	if k < id {
		k = id
	}
	if k < 1 {
		k = 1 // degenerate single-participant networks still pay one slot
	}
	b, err := NewIdealBackend(ch, sens, k, timing, true)
	if err != nil {
		return nil, err
	}
	b.strict = false // fast OR is exact: k covers the alive diameter
	return b, nil
}

// NumNodes implements Backend.
func (b *IdealBackend) NumNodes() int { return len(b.sensAdj) }

// K returns the SCREAM length in slots.
func (b *IdealBackend) K() int { return b.k }

// Timing returns the slot timing model.
func (b *IdealBackend) Timing() Timing { return b.timing }

// Scream implements Backend.
func (b *IdealBackend) Scream(vars []bool) []bool {
	b.screams++
	b.elapsed += des.Time(b.k) * b.timing.ScreamSlot()
	if !b.strict {
		// K >= ID and the sensitivity graph is strongly connected, so the
		// flood saturates: every node ends with the OR of all inputs.
		any := false
		for _, v := range vars {
			if v {
				any = true
				break
			}
		}
		out := make([]bool, len(vars))
		if any {
			for i := range out {
				out[i] = true
			}
		}
		return out
	}
	return RunScreamSlots(b.k, vars, func(screamers []bool) []bool {
		det := make([]bool, len(screamers))
		for v := range det {
			if screamers[v] {
				continue
			}
			for _, u := range b.sensAdj[v] {
				if screamers[u] {
					det[v] = true
					break
				}
			}
		}
		return det
	})
}

// Clone returns a fresh backend sharing the immutable channel, sensitivity
// adjacency and timing but with zeroed counters, elapsed time and engine
// state. It lets callers that run many protocol instances over one
// deployment (the flow-epoch schedulers) skip re-validating the sensitivity
// graph on every run.
func (b *IdealBackend) Clone() *IdealBackend {
	return &IdealBackend{ch: b.ch, sensAdj: b.sensAdj, k: b.k, timing: b.timing, strict: b.strict}
}

// HandshakeSlot implements Backend.
func (b *IdealBackend) HandshakeSlot(links []phys.Link) []bool {
	b.handshakes++
	b.elapsed += b.timing.HandshakeSlot()
	return b.incrementalOutcome(links)
}

// resetEngine discards all incremental handshake state; the next call
// rebuilds from scratch.
func (b *IdealBackend) resetEngine() {
	if b.slot != nil {
		b.slot.Reset()
	}
	for _, l := range b.prev {
		b.member[l.From] = false
	}
	// Links admitted by a partially-completed call are tracked in lastAdds
	// but possibly not yet in prev, so clear member for them too.
	for _, l := range b.lastAdds {
		b.member[l.From] = false
		b.isLastAdd[l.From] = false
	}
	b.prev = b.prev[:0]
	b.lastAdds = b.lastAdds[:0]
}

// wanted reports whether l is part of the current request.
func (b *IdealBackend) wanted(l phys.Link) bool {
	return b.wantCall[l.From] == b.call && b.wantLink[l.From] == l
}

// incrementalOutcome evaluates one handshake slot through the SlotState
// engine. Decisions are identical to phys.Channel.HandshakeOutcome on the
// same set (see TestIdealBackendHandshakeMatchesNaive): the engine only
// changes how the interference sums are accumulated, not the inequalities.
func (b *IdealBackend) incrementalOutcome(links []phys.Link) []bool {
	if b.slot == nil {
		n := b.ch.NumNodes()
		b.slot = phys.NewSlotState(b.ch)
		b.isLastAdd = make([]bool, n)
		b.member = make([]bool, n)
		b.memberLink = make([]phys.Link, n)
		b.posIdx = make([]int, n)
		b.wantCall = make([]int, n)
		b.wantLink = make([]phys.Link, n)
	}
	b.call++
	for _, l := range links {
		if b.wantCall[l.From] == b.call {
			// Two links with one owner cannot occur in a protocol run; for
			// such requests fall back to the reference implementation
			// rather than complicating the engine.
			b.resetEngine()
			return b.ch.HandshakeOutcome(links)
		}
		b.wantCall[l.From] = b.call
		b.wantLink[l.From] = l
	}

	// Diff against the previous request.
	removed := 0
	removedOnlyTentative := true
	for _, l := range b.prev {
		if b.wanted(l) {
			continue
		}
		removed++
		if !b.isLastAdd[l.From] {
			removedOnlyTentative = false
		}
	}
	switch {
	case removed == 0:
		// Pure growth: keep the slot as is.
	case removedOnlyTentative:
		// Every evicted link was tentatively admitted by the previous call
		// (a discarded active): roll the tentative batch back exactly and
		// re-admit the batch members that were kept.
		b.slot.Rollback()
		for _, l := range b.lastAdds {
			b.member[l.From] = false
		}
		for _, l := range links {
			if b.isLastAdd[l.From] && b.memberLink[l.From] == l {
				b.admit(l)
			}
		}
	default:
		// A sealed slot or another wholesale change: rebuild from scratch,
		// which also keeps rounding drift bounded to a single round.
		b.slot.Reset()
		for _, l := range b.prev {
			b.member[l.From] = false
		}
	}

	// Tentatively admit the newcomers; they form the batch the next call
	// may roll back.
	for _, l := range b.lastAdds {
		b.isLastAdd[l.From] = false
	}
	b.lastAdds = b.lastAdds[:0]
	b.slot.Mark()
	for _, l := range links {
		if b.member[l.From] {
			if b.memberLink[l.From] == l {
				continue
			}
			// The owner's link changed identity between calls — not a
			// protocol access pattern; use the reference implementation.
			b.resetEngine()
			return b.ch.HandshakeOutcome(links)
		}
		b.admit(l)
		b.lastAdds = append(b.lastAdds, l)
		b.isLastAdd[l.From] = true
	}
	b.prev = append(b.prev[:0], links...)

	slotOut := b.slot.Outcomes()
	if cap(b.outBuf) < len(links) {
		b.outBuf = make([]bool, len(links))
	}
	out := b.outBuf[:len(links)]
	for i, l := range links {
		out[i] = slotOut[b.posIdx[l.From]]
	}
	return out
}

// admit adds l to the slot and records its owner-indexed bookkeeping.
func (b *IdealBackend) admit(l phys.Link) {
	b.member[l.From] = true
	b.memberLink[l.From] = l
	b.posIdx[l.From] = b.slot.Len()
	b.slot.Add(l)
}

// Elapsed implements Backend.
func (b *IdealBackend) Elapsed() des.Time { return b.elapsed }

// ScreamCount returns the number of SCREAM primitives executed.
func (b *IdealBackend) ScreamCount() int { return b.screams }

// HandshakeCount returns the number of handshake slots executed.
func (b *IdealBackend) HandshakeCount() int { return b.handshakes }
