package core

import (
	"fmt"

	"scream/internal/des"
	"scream/internal/graph"
	"scream/internal/phys"
)

// Backend executes the protocols' physical-layer primitives and accounts for
// the time they consume. Two implementations exist: the IdealBackend below
// (direct SINR evaluation, used for schedule-quality experiments, where the
// paper assumes SCREAM detection is reliable at adequate SMBytes), and the
// packet-level radio backend in internal/radio (skewed transmission windows
// and energy detection, used for validation).
type Backend interface {
	// NumNodes returns the number of nodes in the network.
	NumNodes() int
	// Scream runs one full SCREAM primitive (K slots): every node i with
	// vars[i] == true screams in the first slot; listeners that detect
	// activity relay in subsequent slots. It returns each node's final
	// relay value — the network-wide OR when K >= ID(G_S).
	Scream(vars []bool) []bool
	// HandshakeSlot runs one data + ACK handshake slot for all the given
	// links concurrently and reports per-link two-way success.
	HandshakeSlot(links []phys.Link) []bool
	// Elapsed returns the total simulated time consumed so far.
	Elapsed() des.Time
}

// RunScreamSlots is the SCREAM relay loop shared by backends: k slots; in
// each slot every relaying node screams and every detecting listener starts
// relaying. slot must return, for each node, whether that node detected
// channel activity in the slot (values for screaming nodes are ignored).
func RunScreamSlots(k int, vars []bool, slot func(screamers []bool) []bool) []bool {
	relay := make([]bool, len(vars))
	copy(relay, vars)
	for s := 0; s < k; s++ {
		det := slot(relay)
		for i, d := range det {
			if d && !relay[i] {
				relay[i] = true
			}
		}
	}
	return relay
}

// IdealBackend evaluates the primitives directly against the physical
// interference model: handshakes via phys.Channel.HandshakeOutcome and
// SCREAM detection via aggregate-energy carrier sensing over the sensitivity
// graph. In Fast mode (the default), the SCREAM result is computed as the
// plain OR of the inputs, which is exact whenever K >= ID(G_S) — the
// precondition the constructor enforces; strict mode runs the slot-by-slot
// relay flood instead.
type IdealBackend struct {
	ch      *phys.Channel
	sensAdj [][]int // sensitivity-graph in-neighbors: who node v can hear
	k       int
	timing  Timing
	strict  bool
	elapsed des.Time

	screams    int // SCREAM primitives run
	handshakes int // handshake slots run
}

// NewIdealBackend builds an ideal backend. sens is the sensitivity graph
// (who hears whom); k is the SCREAM length in slots. Unless strict is set,
// k must be at least the interference diameter of sens so that the fast OR
// shortcut is exact.
func NewIdealBackend(ch *phys.Channel, sens *graph.Graph, k int, timing Timing, strict bool) (*IdealBackend, error) {
	if sens.NumNodes() != ch.NumNodes() {
		return nil, fmt.Errorf("core: sensitivity graph has %d nodes, channel %d", sens.NumNodes(), ch.NumNodes())
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: SCREAM length k must be positive, got %d", k)
	}
	if !strict {
		id := sens.Diameter()
		if id < 0 {
			return nil, fmt.Errorf("core: sensitivity graph is not strongly connected (ID = inf); SCREAM cannot work")
		}
		if k < id {
			return nil, fmt.Errorf("core: k = %d is below the interference diameter %d; use strict mode to observe the failure", k, id)
		}
	}
	// In-neighbors: v detects activity when any u with edge u->v screams.
	n := ch.NumNodes()
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, v := range sens.Neighbors(u) {
			adj[v] = append(adj[v], u)
		}
	}
	return &IdealBackend{ch: ch, sensAdj: adj, k: k, timing: timing, strict: strict}, nil
}

// NumNodes implements Backend.
func (b *IdealBackend) NumNodes() int { return len(b.sensAdj) }

// K returns the SCREAM length in slots.
func (b *IdealBackend) K() int { return b.k }

// Timing returns the slot timing model.
func (b *IdealBackend) Timing() Timing { return b.timing }

// Scream implements Backend.
func (b *IdealBackend) Scream(vars []bool) []bool {
	b.screams++
	b.elapsed += des.Time(b.k) * b.timing.ScreamSlot()
	if !b.strict {
		// K >= ID and the sensitivity graph is strongly connected, so the
		// flood saturates: every node ends with the OR of all inputs.
		any := false
		for _, v := range vars {
			if v {
				any = true
				break
			}
		}
		out := make([]bool, len(vars))
		if any {
			for i := range out {
				out[i] = true
			}
		}
		return out
	}
	return RunScreamSlots(b.k, vars, func(screamers []bool) []bool {
		det := make([]bool, len(screamers))
		for v := range det {
			if screamers[v] {
				continue
			}
			for _, u := range b.sensAdj[v] {
				if screamers[u] {
					det[v] = true
					break
				}
			}
		}
		return det
	})
}

// HandshakeSlot implements Backend.
func (b *IdealBackend) HandshakeSlot(links []phys.Link) []bool {
	b.handshakes++
	b.elapsed += b.timing.HandshakeSlot()
	return b.ch.HandshakeOutcome(links)
}

// Elapsed implements Backend.
func (b *IdealBackend) Elapsed() des.Time { return b.elapsed }

// ScreamCount returns the number of SCREAM primitives executed.
func (b *IdealBackend) ScreamCount() int { return b.screams }

// HandshakeCount returns the number of handshake slots executed.
func (b *IdealBackend) HandshakeCount() int { return b.handshakes }
