package core

// Tests for the incremental handshake engine inside IdealBackend: whole
// protocol runs must be indistinguishable from a backend that evaluates
// every handshake with the naive reference phys.Channel.HandshakeOutcome.

import (
	"math/rand"
	"testing"

	"scream/internal/des"
	"scream/internal/phys"
)

// naiveBackend wraps an IdealBackend but evaluates handshakes with the
// reference implementation, bypassing the incremental engine.
type naiveBackend struct {
	*IdealBackend
}

func (b naiveBackend) HandshakeSlot(links []phys.Link) []bool {
	b.handshakes++
	b.elapsed += b.timing.HandshakeSlot()
	return b.ch.HandshakeOutcome(links)
}

func runBoth(t *testing.T, fx *fixture, cfg Config, seed int64) (*Result, *Result) {
	t.Helper()
	cfgInc := cfg
	cfgInc.Links, cfgInc.Demands = fx.links, fx.demands
	cfgInc.Backend = fx.backend(t, 0, false)
	cfgNaive := cfgInc
	cfgNaive.Backend = naiveBackend{fx.backend(t, 0, false)}
	if cfg.Variant == PDD {
		cfgInc.RNG = rand.New(rand.NewSource(seed))
		cfgNaive.RNG = rand.New(rand.NewSource(seed))
	}
	inc, err := Run(cfgInc)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Run(cfgNaive)
	if err != nil {
		t.Fatal(err)
	}
	return inc, naive
}

// TestIdealBackendHandshakeMatchesNaive: FDD and PDD runs driven through the
// incremental engine produce the same schedule, step/round counts and
// simulated time as runs against the naive reference backend.
func TestIdealBackendHandshakeMatchesNaive(t *testing.T) {
	for _, dim := range []int{4, 5} {
		for seed := int64(1); seed <= 4; seed++ {
			fx := gridFixture(t, dim, seed)
			for _, variant := range []Variant{FDD, PDD} {
				cfg := Config{Variant: variant}
				if variant == PDD {
					cfg.Probability = 0.4
				}
				inc, naive := runBoth(t, fx, cfg, seed)
				if !inc.Schedule.Equal(naive.Schedule) {
					t.Fatalf("dim %d seed %d %v: incremental schedule differs from naive", dim, seed, variant)
				}
				if inc.Rounds != naive.Rounds || inc.Steps != naive.Steps ||
					inc.Elections != naive.Elections || inc.Screams != naive.Screams {
					t.Fatalf("dim %d seed %d %v: stats diverge: %+v vs %+v", dim, seed, variant, inc, naive)
				}
				if inc.ExecTime != naive.ExecTime {
					t.Fatalf("dim %d seed %d %v: ExecTime %v vs %v", dim, seed, variant, inc.ExecTime, naive.ExecTime)
				}
			}
		}
	}
}

// TestIncrementalOutcomeArbitrarySequences fuzzes HandshakeSlot directly
// with call sequences the protocols never produce — wholesale set swaps,
// duplicate links, repeated owners — and checks every response against the
// reference implementation (exercising the engine's rebuild and fallback
// paths).
func TestIncrementalOutcomeArbitrarySequences(t *testing.T) {
	fx := gridFixture(t, 4, 7)
	rng := rand.New(rand.NewSource(11))
	b := fx.backend(t, 0, false)
	pool := fx.links
	for call := 0; call < 400; call++ {
		var req []phys.Link
		for len(req) == 0 {
			req = nil
			for _, l := range pool {
				if rng.Intn(3) == 0 {
					req = append(req, l)
				}
			}
			if len(req) > 0 {
				switch rng.Intn(5) {
				case 0: // duplicate link
					req = append(req, req[rng.Intn(len(req))])
				case 1: // two links, one owner
					l := req[rng.Intn(len(req))]
					req = append(req, phys.Link{From: l.From, To: (l.To + 1) % fx.net.NumNodes()})
				}
			}
		}
		got := b.HandshakeSlot(req)
		want := fx.net.Channel.HandshakeOutcome(req)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d: outcome[%d] = %v, reference = %v, request %v", call, i, got[i], want[i], req)
			}
		}
	}
}

// TestCloneSharesTopologyNotState: a cloned backend starts with fresh time
// accounting and produces identical results.
func TestCloneSharesTopologyNotState(t *testing.T) {
	fx := gridFixture(t, 4, 3)
	b := fx.backend(t, 0, false)
	vars := make([]bool, b.NumNodes())
	vars[1] = true
	b.Scream(vars)
	b.HandshakeSlot(fx.links[:1])
	c := b.Clone()
	if c.Elapsed() != 0 || c.ScreamCount() != 0 || c.HandshakeCount() != 0 {
		t.Fatal("clone must start with zeroed accounting")
	}
	if c.K() != b.K() || c.NumNodes() != b.NumNodes() {
		t.Fatal("clone must share the deployment parameters")
	}
	var tm des.Time
	for i := 0; i < 3; i++ {
		out := c.HandshakeSlot(fx.links)
		ref := fx.net.Channel.HandshakeOutcome(fx.links)
		for j := range ref {
			if out[j] != ref[j] {
				t.Fatalf("clone outcome[%d] diverges from reference", j)
			}
		}
		if c.Elapsed() <= tm {
			t.Fatal("clone must bill time")
		}
		tm = c.Elapsed()
	}
}
