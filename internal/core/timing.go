// Package core implements the SCREAM paper's contribution: the SCREAM
// network-wide-OR primitive (Section III-A), leader election on top of it
// (Section III-B), and the PDD and FDD distributed scheduling protocols
// (Sections III-C, III-D), together with the slot timing model that converts
// protocol slot counts into execution time (Figures 8 and 9).
package core

import "scream/internal/des"

// Timing converts slot payloads into slot durations. The protocols are
// slot-synchronous: every GlobalSync'd slot must absorb the worst-case clock
// skew between any two nodes, so each slot is padded with a guard of
// 4x the skew bound (transmitters delay 2x skew after their local slot start,
// which guarantees every receiver's local window fully contains the packet
// for any pair of offsets within the bound — see internal/radio).
type Timing struct {
	BitRateBps float64  // radio bit rate (default 54 Mb/s)
	SMBytes    int      // SCREAM transmission size in bytes (paper default 15)
	DataBytes  int      // handshake data packet size
	AckBytes   int      // handshake ACK size
	SkewBound  des.Time // clock skew bound chi; guard = 4*chi
	Turnaround des.Time // RX/TX turnaround per sub-slot
}

// DefaultTiming mirrors the paper's simulation setup: 15-byte SCREAMs on an
// 802.11a/g-class radio, 1000-byte data packets, 14-byte ACKs, a 1 us clock
// skew bound (GPS-grade synchronization; Figure 9 sweeps this explicitly)
// and 1 us turnaround.
func DefaultTiming() Timing {
	return Timing{
		BitRateBps: 54e6,
		SMBytes:    15,
		DataBytes:  1000,
		AckBytes:   14,
		SkewBound:  des.Microsecond,
		Turnaround: des.Microsecond,
	}
}

// TxTime returns the airtime of a payload of the given size.
func (t Timing) TxTime(bytes int) des.Time {
	if t.BitRateBps <= 0 {
		return 0
	}
	return des.FromSeconds(float64(bytes) * 8 / t.BitRateBps)
}

// Guard returns the per-slot guard interval, 4x the skew bound.
func (t Timing) Guard() des.Time { return 4 * t.SkewBound }

// TxDelay returns how long a transmitter waits after its local slot start
// before transmitting (2x the skew bound), centring the packet in every
// receiver's window.
func (t Timing) TxDelay() des.Time { return 2 * t.SkewBound }

// ScreamSlot returns the duration of one SCREAM slot.
func (t Timing) ScreamSlot() des.Time {
	return t.TxTime(t.SMBytes) + t.Guard() + t.Turnaround
}

// DataSubSlot returns the duration of the data half of a handshake slot.
func (t Timing) DataSubSlot() des.Time {
	return t.TxTime(t.DataBytes) + t.Guard() + t.Turnaround
}

// AckSubSlot returns the duration of the ACK half of a handshake slot.
func (t Timing) AckSubSlot() des.Time {
	return t.TxTime(t.AckBytes) + t.Guard() + t.Turnaround
}

// HandshakeSlot returns the duration of a full two-way-handshake slot
// (data sub-slot followed by ACK sub-slot).
func (t Timing) HandshakeSlot() des.Time {
	return t.DataSubSlot() + t.AckSubSlot()
}

// RepairCost returns the control-time price of reacting to a topology
// change: one SCREAM flood (k slots) to detect the change and agree that
// re-planning is needed, plus one flood to disseminate the repaired routing
// forest — the same collision-resilient primitive the protocols already pay
// for every control decision. The flow-level simulator charges this per
// applied event batch before the next control phase.
func (t Timing) RepairCost(k int) des.Time {
	if k < 1 {
		k = 1
	}
	return 2 * des.Time(k) * t.ScreamSlot()
}
