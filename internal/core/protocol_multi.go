package core

import (
	"fmt"

	"scream/internal/obs"
	"scream/internal/phys"
)

// runMulti is the multi-channel protocol loop (cfg.NumChannels > 1): each
// round seals one multi-channel slot, built in NumChannels sequential
// channel phases. Phase ch runs the single-channel greedy augmentation loop
// — SelectActive, handshake, verification SCREAM, still-dormant SCREAM — on
// channel ch among the still-dormant nodes; nodes discarded on an earlier
// channel of the slot are revived at the next phase (a crowded channel is
// not a crowded slot). The per-node radio budget gates activation: a node
// whose own or whose parent's radios are all committed to other channels of
// this slot cannot even tune to the phase's channel and is discarded without
// a handshake.
//
// Control traffic — every SCREAM and election — rides the designated control
// channel (channel 0) exactly as in the single-channel protocol, at
// unchanged per-primitive cost; the protocol is lock-step, so control and
// data never overlap in time and the control channel carries data placements
// during data phases like any other channel. The controller's own link is
// admitted on channel 0 when it takes control of the slot.
//
// All channels share one physical propagation environment (interference is
// per-channel only), so the backend's HandshakeSlot evaluates each phase's
// links unchanged: a handshake slot never contains links from two channels.
func (p *protoRun) runMulti() (*Result, error) {
	cfg := p.cfg
	n := p.n
	linkOf := p.linkOf
	b := cfg.Backend
	res := p.res
	state := p.state
	remaining := p.remaining
	setState := p.setState
	scream := p.scream
	screamConsensus := p.screamConsensus
	elect := p.elect
	numChannels := cfg.NumChannels
	numRadios := cfg.NumRadios
	if numRadios <= 0 {
		numRadios = 1
	}

	vars := make([]bool, n)
	part := make([]bool, n)
	hsLinks := make([]phys.Link, 0, n)
	hsOwners := make([]int, 0, n)
	hsOK := make([]bool, n)
	// Per-slot multi-channel bookkeeping: the channel each allocated owner's
	// link rides (-1 while unallocated) and how many of each node's radios
	// the slot has committed so far.
	chanOf := make([]int, n)
	radios := make([]int32, n)
	released := true
	controller := -1

	for ; ; p.round++ {
		if p.round >= p.maxRounds {
			return nil, fmt.Errorf("core: no termination after %d rounds (TD=%d); check feasibility of individual links", p.round, p.totalDemand)
		}

		if released {
			for u := 0; u < n; u++ {
				part[u] = state[u] != Complete
			}
			winner := elect(part)
			for u := range vars {
				vars[u] = u == winner
			}
			exists, err := screamConsensus(vars, "controller existence")
			if err != nil {
				return nil, err
			}
			if !exists {
				break
			}
			controller = winner
			if cfg.Observer.ControllerElected != nil {
				cfg.Observer.ControllerElected(p.round, controller)
			}
			p.traceEmit("controller_elected", obs.N("node", controller))
			setState(controller, Control)
		}

		slotSpan := p.beginSlot()

		// GreedyScheduleSlot: reset non-complete, non-control nodes and the
		// slot's channel bookkeeping. The controller's link occupies channel
		// 0 (the control channel it already owns the floor on) from the
		// start of the slot.
		for u := 0; u < n; u++ {
			if state[u] != Complete && state[u] != Control {
				setState(u, Dormant)
			}
			chanOf[u] = -1
			radios[u] = 0
		}
		ctrlLink := cfg.Links[linkOf[controller]]
		chanOf[controller] = 0
		radios[ctrlLink.From]++
		radios[ctrlLink.To]++

		for ch := 0; ch < numChannels; ch++ {
			if ch > 0 {
				// Revive the nodes discarded on earlier channels of this
				// slot; stop early when nobody is left to try.
				anyLeft := false
				for u := 0; u < n; u++ {
					if state[u] == Tried {
						setState(u, Dormant)
					}
					if state[u] == Dormant {
						anyLeft = true
					}
				}
				if !anyLeft {
					break
				}
			}

			for {
				// SelectActive.
				switch cfg.Variant {
				case PDD:
					for u := 0; u < n; u++ {
						if state[u] == Dormant && cfg.RNG.Float64() < cfg.Probability {
							setState(u, Active)
						}
					}
				case FDD:
					for u := 0; u < n; u++ {
						part[u] = state[u] == Dormant
					}
					if winner := elect(part); winner >= 0 {
						setState(winner, Active)
					}
				}

				// Radio gating: an active node whose endpoints cannot spare
				// a radio for this channel is discarded without a handshake
				// (its or its parent's radios are all tuned to other
				// channels of this slot).
				for u := 0; u < n; u++ {
					if state[u] != Active {
						continue
					}
					l := cfg.Links[linkOf[u]]
					if radios[l.From] >= int32(numRadios) || radios[l.To] >= int32(numRadios) {
						setState(u, Tried)
					}
				}

				// Handshake slot over this channel's links only: the actives
				// trying it plus the links already allocated on it (the
				// controller's rides channel 0).
				hsLinks = hsLinks[:0]
				hsOwners = hsOwners[:0]
				for u := 0; u < n; u++ {
					if state[u] == Active || ((state[u] == Allocated || state[u] == Control) && chanOf[u] == ch) {
						hsLinks = append(hsLinks, cfg.Links[linkOf[u]])
						hsOwners = append(hsOwners, u)
					}
				}
				res.Steps++
				outcome := b.HandshakeSlot(hsLinks)

				// Verification SCREAM: edges scheduled on this channel veto
				// when the newcomers' interference broke their handshake.
				for u := range vars {
					vars[u] = false
				}
				for i, u := range hsOwners {
					hsOK[u] = outcome[i]
					if (state[u] == Allocated || state[u] == Control) && !outcome[i] {
						vars[u] = true
					}
				}
				veto, err := screamConsensus(vars, "handshake veto")
				if err != nil {
					return nil, err
				}

				// Actives join this channel or are discarded.
				for u := 0; u < n; u++ {
					if state[u] != Active {
						continue
					}
					if !veto && hsOK[u] {
						setState(u, Allocated)
						chanOf[u] = ch
						l := cfg.Links[linkOf[u]]
						radios[l.From]++
						radios[l.To]++
					} else {
						setState(u, Tried)
					}
				}

				// Still-actives SCREAM: dormant nodes keep the phase open.
				if cfg.ASAPSeal {
					still := false
					for u := 0; u < n; u++ {
						if state[u] == Dormant {
							still = true
							break
						}
					}
					if !still {
						break
					}
					for u := 0; u < n; u++ {
						vars[u] = state[u] == Dormant
					}
					scream(vars)
					continue
				}
				for u := 0; u < n; u++ {
					vars[u] = state[u] == Dormant
				}
				still, err := screamConsensus(vars, "still-dormant")
				if err != nil {
					return nil, err
				}
				if !still {
					break
				}
			}
		}

		// Seal the multi-channel slot: allocated and control links transmit
		// in it, each on its assigned channel.
		var slot []phys.Link
		var slotChans []int
		for u := 0; u < n; u++ {
			if state[u] == Allocated || state[u] == Control {
				li := linkOf[u]
				slot = append(slot, cfg.Links[li])
				slotChans = append(slotChans, chanOf[u])
				remaining[li]--
			}
		}
		res.Schedule.AppendSlotAssigned(slot, slotChans)
		res.Rounds++
		if cfg.Observer.SlotSealed != nil {
			cfg.Observer.SlotSealed(p.round, slot)
		}
		p.endSlot(slotSpan, len(slot))

		// Control-release SCREAM: the controller announces whether its
		// demand is now satisfied.
		ctrlDone := remaining[linkOf[controller]] == 0
		for u := range vars {
			vars[u] = u == controller && ctrlDone
		}
		rel, err := screamConsensus(vars, "control release")
		if err != nil {
			return nil, err
		}
		released = rel

		for u := 0; u < n; u++ {
			li := linkOf[u]
			if li >= 0 && remaining[li] == 0 {
				setState(u, Complete)
				continue
			}
			if u == controller && !released {
				continue // stays CONTROL
			}
			if state[u] != Complete {
				setState(u, Dormant)
			}
		}
		if released {
			controller = -1
		}
	}

	res.ExecTime = b.Elapsed()
	return res, nil
}
