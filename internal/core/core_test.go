package core

import (
	"math/rand"
	"strings"
	"testing"

	"scream/internal/des"
	"scream/internal/phys"
	"scream/internal/route"
	"scream/internal/sched"
	"scream/internal/topo"
	"scream/internal/traffic"
)

// fixture bundles a network, its routing forest links/demands and an ideal
// backend factory.
type fixture struct {
	net     *topo.Network
	links   []phys.Link
	demands []int
}

func gridFixture(t testing.TB, dim int, seed int64) *fixture {
	t.Helper()
	net, err := topo.NewGrid(topo.GridConfig{Rows: dim, Cols: dim, Step: 30, Params: topo.DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	f, err := route.BuildForest(net.Comm, []int{0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nodeDemand, err := traffic.Uniform(net.NumNodes(), 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := f.AggregateDemand(nodeDemand)
	if err != nil {
		t.Fatal(err)
	}
	links := f.Links()
	demands := make([]int, len(links))
	for i, l := range links {
		demands[i] = agg[l.From]
	}
	return &fixture{net: net, links: links, demands: demands}
}

func (fx *fixture) backend(t testing.TB, k int, strict bool) *IdealBackend {
	t.Helper()
	if k == 0 {
		k = fx.net.InterferenceDiameter()
	}
	b, err := NewIdealBackend(fx.net.Channel, fx.net.Sens, k, DefaultTiming(), strict)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTimingDurations(t *testing.T) {
	tm := DefaultTiming()
	if tm.TxTime(0) != 0 {
		t.Error("zero bytes should take zero time")
	}
	// 15 bytes at 54 Mb/s = 2.22 us.
	got := tm.TxTime(15)
	want := des.FromSeconds(15 * 8 / 54e6)
	if got != want {
		t.Errorf("TxTime(15) = %v, want %v", got, want)
	}
	if tm.Guard() != 4*tm.SkewBound {
		t.Error("guard must be 4x skew")
	}
	if tm.TxDelay() != 2*tm.SkewBound {
		t.Error("tx delay must be 2x skew")
	}
	if tm.HandshakeSlot() != tm.DataSubSlot()+tm.AckSubSlot() {
		t.Error("handshake slot must be the two sub-slots")
	}
	if tm.ScreamSlot() <= tm.Guard() {
		t.Error("scream slot must include payload time")
	}
	zero := Timing{}
	if zero.TxTime(100) != 0 {
		t.Error("zero bitrate should yield zero txtime, not a division blowup")
	}
}

func TestIdealBackendConstruction(t *testing.T) {
	fx := gridFixture(t, 4, 1)
	id := fx.net.InterferenceDiameter()
	if _, err := NewIdealBackend(fx.net.Channel, fx.net.Sens, id, DefaultTiming(), false); err != nil {
		t.Errorf("k = ID should be accepted: %v", err)
	}
	if _, err := NewIdealBackend(fx.net.Channel, fx.net.Sens, id-1, DefaultTiming(), false); err == nil {
		t.Error("k < ID must be rejected in fast mode")
	}
	if _, err := NewIdealBackend(fx.net.Channel, fx.net.Sens, id-1, DefaultTiming(), true); err != nil {
		t.Errorf("strict mode should allow k < ID (to observe failure): %v", err)
	}
	if _, err := NewIdealBackend(fx.net.Channel, fx.net.Sens, 0, DefaultTiming(), true); err == nil {
		t.Error("k = 0 must be rejected")
	}
}

func TestScreamComputesOR(t *testing.T) {
	fx := gridFixture(t, 5, 2)
	rng := rand.New(rand.NewSource(5))
	for _, strict := range []bool{false, true} {
		b := fx.backend(t, 0, strict)
		n := b.NumNodes()
		for trial := 0; trial < 30; trial++ {
			vars := make([]bool, n)
			expect := false
			for i := range vars {
				if rng.Intn(8) == 0 {
					vars[i] = true
					expect = true
				}
			}
			got := b.Scream(vars)
			for i, g := range got {
				if g != expect {
					t.Fatalf("strict=%v trial %d: node %d got %v, want OR=%v", strict, trial, i, g, expect)
				}
			}
		}
	}
}

func TestScreamStrictMatchesFast(t *testing.T) {
	fx := gridFixture(t, 4, 3)
	fast := fx.backend(t, 0, false)
	strict := fx.backend(t, 0, true)
	rng := rand.New(rand.NewSource(7))
	n := fast.NumNodes()
	for trial := 0; trial < 50; trial++ {
		vars := make([]bool, n)
		for i := range vars {
			vars[i] = rng.Intn(4) == 0
		}
		a, s := fast.Scream(vars), strict.Scream(vars)
		for i := range a {
			if a[i] != s[i] {
				t.Fatalf("fast and strict disagree at node %d (trial %d)", i, trial)
			}
		}
	}
}

func TestScreamKTooSmallFailsOnLine(t *testing.T) {
	// On a line of n nodes with single-step sensitivity, a scream from one
	// end needs n-1 slots to reach the other: K = ID-1 must leave the far
	// node uninformed (the K >= ID requirement of Section IV-B).
	net, err := topo.NewLine(10, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	id := net.InterferenceDiameter() // 9
	b, err := NewIdealBackend(net.Channel, net.Sens, id-1, DefaultTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]bool, 10)
	vars[0] = true
	got := b.Scream(vars)
	if got[9] {
		t.Error("K = ID-1 should fail to reach the far end of the line")
	}
	if !got[8] {
		t.Error("K = ID-1 should still reach node 8")
	}
	b2, err := NewIdealBackend(net.Channel, net.Sens, id, DefaultTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := b2.Scream(vars); !got[9] {
		t.Error("K = ID must reach every node")
	}
}

func TestScreamAllFalse(t *testing.T) {
	fx := gridFixture(t, 4, 4)
	for _, strict := range []bool{false, true} {
		b := fx.backend(t, 0, strict)
		got := b.Scream(make([]bool, b.NumNodes()))
		for i, g := range got {
			if g {
				t.Errorf("strict=%v: silent network should stay false at node %d", strict, i)
			}
		}
	}
}

func TestScreamTimeAccounting(t *testing.T) {
	fx := gridFixture(t, 4, 5)
	k := fx.net.InterferenceDiameter()
	b := fx.backend(t, k, false)
	before := b.Elapsed()
	b.Scream(make([]bool, b.NumNodes()))
	want := des.Time(k) * DefaultTiming().ScreamSlot()
	if got := b.Elapsed() - before; got != want {
		t.Errorf("one SCREAM costs %v, want %v", got, want)
	}
	b.HandshakeSlot(nil)
	if got := b.Elapsed() - before - want; got != DefaultTiming().HandshakeSlot() {
		t.Errorf("handshake slot cost %v, want %v", got, DefaultTiming().HandshakeSlot())
	}
}

func TestRunScreamSlotsRelayGrowth(t *testing.T) {
	// Simulated line detection: node i hears i-1 and i+1.
	n := 6
	slot := func(s []bool) []bool {
		det := make([]bool, n)
		for v := 0; v < n; v++ {
			if v > 0 && s[v-1] {
				det[v] = true
			}
			if v < n-1 && s[v+1] {
				det[v] = true
			}
		}
		return det
	}
	vars := make([]bool, n)
	vars[0] = true
	got := RunScreamSlots(3, vars, slot)
	want := []bool{true, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after 3 slots relay = %v, want %v", got, want)
		}
	}
	// Input slice must not be mutated.
	if vars[1] {
		t.Error("RunScreamSlots must not mutate its input")
	}
}

func TestIDBitsFor(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {64, 6}, {65, 7}, {100, 7},
	}
	for _, tt := range tests {
		if got := IDBitsFor(tt.n); got != tt.want {
			t.Errorf("IDBitsFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestLeaderElectHighestIDWins(t *testing.T) {
	fx := gridFixture(t, 4, 6)
	b := fx.backend(t, 0, false)
	n := b.NumNodes()
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	if got := LeaderElect(b, IDBitsFor(n), ids, all); got != n-1 {
		t.Errorf("winner = %d, want %d", got, n-1)
	}
}

func TestLeaderElectSubset(t *testing.T) {
	fx := gridFixture(t, 4, 7)
	b := fx.backend(t, 0, false)
	n := b.NumNodes()
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	part := make([]bool, n)
	part[3], part[7], part[11] = true, true, true
	if got := LeaderElect(b, IDBitsFor(n), ids, part); got != 11 {
		t.Errorf("winner = %d, want 11", got)
	}
}

func TestLeaderElectNoParticipants(t *testing.T) {
	fx := gridFixture(t, 4, 8)
	b := fx.backend(t, 0, false)
	if got := LeaderElect(b, 6, make([]uint64, b.NumNodes()), make([]bool, b.NumNodes())); got != -1 {
		t.Errorf("winner = %d, want -1", got)
	}
}

func TestLeaderElectRandomSubsetsProperty(t *testing.T) {
	fx := gridFixture(t, 5, 9)
	b := fx.backend(t, 0, false)
	n := b.NumNodes()
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i * 3) // non-trivial but unique and ordered
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		part := make([]bool, n)
		want := -1
		for i := range part {
			if rng.Intn(3) == 0 {
				part[i] = true
				if want < 0 || ids[i] > ids[want] {
					want = i
				}
			}
		}
		if got := LeaderElect(b, IDBitsFor(3*n), ids, part); got != want {
			t.Fatalf("trial %d: winner = %d, want %d", trial, got, want)
		}
	}
}

func TestLeaderElectStrictBackend(t *testing.T) {
	fx := gridFixture(t, 4, 11)
	b := fx.backend(t, 0, true)
	n := b.NumNodes()
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	if got := LeaderElect(b, IDBitsFor(n), ids, all); got != n-1 {
		t.Errorf("strict-backend winner = %d, want %d", got, n-1)
	}
}

func TestFDDVerifiesAndTerminates(t *testing.T) {
	fx := gridFixture(t, 5, 12)
	res, err := Run(Config{
		Variant: FDD,
		Links:   fx.links,
		Demands: fx.demands,
		Backend: fx.backend(t, 0, false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(fx.net.Channel, fx.links, fx.demands); err != nil {
		t.Fatalf("FDD schedule invalid: %v", err)
	}
	if res.Rounds != res.Schedule.Length() {
		t.Errorf("rounds %d != schedule length %d", res.Rounds, res.Schedule.Length())
	}
	if res.ExecTime <= 0 {
		t.Error("execution time must be positive")
	}
	t.Logf("FDD: %d slots, %d steps, %d elections, %d screams, %v",
		res.Schedule.Length(), res.Steps, res.Elections, res.Screams, res.ExecTime)
}

func TestPDDVerifiesAndTerminates(t *testing.T) {
	fx := gridFixture(t, 5, 13)
	for _, p := range []float64{0.2, 0.6, 0.8, 1.0} {
		res, err := Run(Config{
			Variant:     PDD,
			Links:       fx.links,
			Demands:     fx.demands,
			Backend:     fx.backend(t, 0, false),
			Probability: p,
			RNG:         rand.New(rand.NewSource(14)),
		})
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if err := res.Schedule.Verify(fx.net.Channel, fx.links, fx.demands); err != nil {
			t.Fatalf("p=%v: PDD schedule invalid: %v", p, err)
		}
	}
}

// TestTheorem4FDDEqualsGreedyPhysical is the reproduction of the paper's
// Theorem 4: FDD computes slot-for-slot the same schedule as the centralized
// GreedyPhysical with edges ordered by decreasing head ID.
func TestTheorem4FDDEqualsGreedyPhysical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		fx := gridFixture(t, 5, seed)
		res, err := Run(Config{
			Variant: FDD,
			Links:   fx.links,
			Demands: fx.demands,
			Backend: fx.backend(t, 0, false),
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := sched.GreedyPhysical(fx.net.Channel, fx.links, fx.demands, sched.ByHeadIDDesc)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedule.Equal(want) {
			t.Fatalf("seed %d: FDD schedule differs from centralized GreedyPhysical (FDD %d slots, greedy %d)",
				seed, res.Schedule.Length(), want.Length())
		}
	}
}

func TestTheorem4HoldsOnUniformTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := topo.DefaultParams()
	net, err := topo.NewUniform(topo.UniformConfig{
		N: 36, Side: 180, MinTxDBm: 16, MaxTxDBm: 22, Params: p,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f, err := route.BuildForest(net.Comm, []int{0, 35}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nodeDemand, err := traffic.Uniform(net.NumNodes(), 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := f.AggregateDemand(nodeDemand)
	if err != nil {
		t.Fatal(err)
	}
	links := f.Links()
	demands := make([]int, len(links))
	for i, l := range links {
		demands[i] = agg[l.From]
	}
	b, err := NewIdealBackend(net.Channel, net.Sens, net.InterferenceDiameter(), DefaultTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Variant: FDD, Links: links, Demands: demands, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sched.GreedyPhysical(net.Channel, links, demands, sched.ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Equal(want) {
		t.Fatal("Theorem 4 equality failed on heterogeneous uniform topology")
	}
	if err := res.Schedule.Verify(net.Channel, links, demands); err != nil {
		t.Fatal(err)
	}
}

func TestPDDWorseOrEqualFDDOnAverage(t *testing.T) {
	// The paper reports PDD about 10-15 points worse than FDD. Averaged
	// over seeds, PDD (p=0.8) must not beat FDD by any meaningful margin.
	fddTotal, pddTotal := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		fx := gridFixture(t, 5, 20+seed)
		fdd, err := Run(Config{Variant: FDD, Links: fx.links, Demands: fx.demands, Backend: fx.backend(t, 0, false)})
		if err != nil {
			t.Fatal(err)
		}
		pdd, err := Run(Config{
			Variant: PDD, Links: fx.links, Demands: fx.demands,
			Backend: fx.backend(t, 0, false), Probability: 0.8,
			RNG: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			t.Fatal(err)
		}
		fddTotal += fdd.Schedule.Length()
		pddTotal += pdd.Schedule.Length()
	}
	if pddTotal < fddTotal*95/100 {
		t.Errorf("PDD (%d total slots) should not beat FDD (%d) by >5%%", pddTotal, fddTotal)
	}
	t.Logf("total slots over 5 seeds: FDD %d, PDD(0.8) %d", fddTotal, pddTotal)
}

func TestPDDFasterThanFDD(t *testing.T) {
	fx := gridFixture(t, 5, 30)
	fdd, err := Run(Config{Variant: FDD, Links: fx.links, Demands: fx.demands, Backend: fx.backend(t, 0, false)})
	if err != nil {
		t.Fatal(err)
	}
	pdd, err := Run(Config{
		Variant: PDD, Links: fx.links, Demands: fx.demands,
		Backend: fx.backend(t, 0, false), Probability: 0.2,
		RNG: rand.New(rand.NewSource(31)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pdd.ExecTime >= fdd.ExecTime {
		t.Errorf("PDD (%v) should run faster than FDD (%v): elections dominate", pdd.ExecTime, fdd.ExecTime)
	}
}

func TestTheorem5RoundBound(t *testing.T) {
	// Rounds <= TD (each round schedules at least the controller's edge).
	fx := gridFixture(t, 5, 40)
	td := sched.LinearLength(fx.demands)
	res, err := Run(Config{Variant: FDD, Links: fx.links, Demands: fx.demands, Backend: fx.backend(t, 0, false)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > td {
		t.Errorf("rounds %d exceeds TD %d", res.Rounds, td)
	}
	// Per-round cost: at most (n+1) elections + O(n) screams; total scream
	// count must be O(rounds * n * idBits) — the Theorem 5 accounting.
	n := fx.net.NumNodes()
	idBits := IDBitsFor(n)
	bound := res.Rounds * (n + 2) * (idBits + 2)
	if res.Screams > bound {
		t.Errorf("screams %d exceed Theorem 5 accounting bound %d", res.Screams, bound)
	}
}

func TestRunConfigValidation(t *testing.T) {
	fx := gridFixture(t, 4, 50)
	b := fx.backend(t, 0, false)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"bad variant", Config{Links: fx.links, Demands: fx.demands, Backend: b}},
		{"mismatched demands", Config{Variant: FDD, Links: fx.links, Demands: fx.demands[:1], Backend: b}},
		{"pdd no rng", Config{Variant: PDD, Probability: 0.5, Links: fx.links, Demands: fx.demands, Backend: b}},
		{"pdd bad p", Config{Variant: PDD, Probability: 1.5, RNG: rand.New(rand.NewSource(1)), Links: fx.links, Demands: fx.demands, Backend: b}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestRunRejectsDuplicateOwner(t *testing.T) {
	fx := gridFixture(t, 4, 51)
	links := append([]phys.Link(nil), fx.links...)
	links[1] = phys.Link{From: links[0].From, To: links[0].To} // duplicate owner
	demands := append([]int(nil), fx.demands...)
	if _, err := Run(Config{Variant: FDD, Links: links, Demands: demands, Backend: fx.backend(t, 0, false)}); err == nil {
		t.Error("duplicate owner must be rejected")
	}
}

func TestRunZeroDemand(t *testing.T) {
	fx := gridFixture(t, 4, 52)
	demands := make([]int, len(fx.links))
	res, err := Run(Config{Variant: FDD, Links: fx.links, Demands: demands, Backend: fx.backend(t, 0, false)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Length() != 0 {
		t.Errorf("zero demand should yield empty schedule, got %d slots", res.Schedule.Length())
	}
}

func TestASAPSealAblation(t *testing.T) {
	fx := gridFixture(t, 5, 53)
	normal, err := Run(Config{Variant: FDD, Links: fx.links, Demands: fx.demands, Backend: fx.backend(t, 0, false)})
	if err != nil {
		t.Fatal(err)
	}
	asap, err := Run(Config{Variant: FDD, Links: fx.links, Demands: fx.demands, Backend: fx.backend(t, 0, false), ASAPSeal: true})
	if err != nil {
		t.Fatal(err)
	}
	if !normal.Schedule.Equal(asap.Schedule) {
		t.Error("ASAP seal must not change the computed schedule")
	}
	if asap.ExecTime >= normal.ExecTime {
		t.Errorf("ASAP seal should be faster: %v vs %v", asap.ExecTime, normal.ExecTime)
	}
	if err := asap.Schedule.Verify(fx.net.Channel, fx.links, fx.demands); err != nil {
		t.Fatal(err)
	}
}

func TestExecTimeGrowsWithSkew(t *testing.T) {
	fx := gridFixture(t, 4, 54)
	var prev des.Time
	for i, skew := range []des.Time{des.Microsecond, 100 * des.Microsecond, 10 * des.Millisecond} {
		tm := DefaultTiming()
		tm.SkewBound = skew
		b, err := NewIdealBackend(fx.net.Channel, fx.net.Sens, fx.net.InterferenceDiameter(), tm, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Variant: FDD, Links: fx.links, Demands: fx.demands, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.ExecTime <= prev {
			t.Errorf("execution time must grow with skew: %v then %v", prev, res.ExecTime)
		}
		prev = res.ExecTime
	}
}

func TestExecTimeGrowsWithKAndSMBytes(t *testing.T) {
	fx := gridFixture(t, 4, 55)
	baseK := fx.net.InterferenceDiameter()
	run := func(k, smBytes int) des.Time {
		tm := DefaultTiming()
		tm.SMBytes = smBytes
		b, err := NewIdealBackend(fx.net.Channel, fx.net.Sens, k, tm, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Variant: FDD, Links: fx.links, Demands: fx.demands, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	if run(baseK, 15) >= run(2*baseK, 15) {
		t.Error("doubling K must increase execution time")
	}
	if run(baseK, 15) >= run(baseK, 60) {
		t.Error("larger SCREAM payload must increase execution time")
	}
}

func TestStrictBackendFullProtocol(t *testing.T) {
	// The whole FDD protocol must work identically when every SCREAM is
	// simulated slot-by-slot over the sensitivity graph.
	fx := gridFixture(t, 4, 56)
	fast, err := Run(Config{Variant: FDD, Links: fx.links, Demands: fx.demands, Backend: fx.backend(t, 0, false)})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Run(Config{Variant: FDD, Links: fx.links, Demands: fx.demands, Backend: fx.backend(t, 0, true)})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Schedule.Equal(strict.Schedule) {
		t.Error("strict and fast backends must produce identical schedules")
	}
}

func TestKTooSmallBreaksProtocol(t *testing.T) {
	// Failure injection: a SCREAM that cannot cover the interference
	// diameter must make the protocol diverge (caught by the consensus
	// guard), not silently return a schedule.
	net, err := topo.NewLine(12, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := route.BuildForest(net.Comm, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	links := f.Links()
	demands := traffic.Constant(len(links), 2)
	b, err := NewIdealBackend(net.Channel, net.Sens, 2 /* << ID=11 */, DefaultTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Variant: FDD, Links: links, Demands: demands, Backend: b, MaxRounds: 500})
	if err == nil {
		t.Fatal("K far below ID should break the protocol detectably")
	}
	if !strings.Contains(err.Error(), "divergence") && !strings.Contains(err.Error(), "termination") {
		t.Errorf("unexpected failure mode: %v", err)
	}
	t.Logf("K<ID failure surfaced as: %v", err)
}

func TestStateAndVariantStrings(t *testing.T) {
	if Dormant.String() != "DORMANT" || Control.String() != "CONTROL" ||
		Active.String() != "ACTIVE" || Allocated.String() != "ALLOCATED" ||
		Tried.String() != "TRIED" || Complete.String() != "COMPLETE" ||
		Terminate.String() != "TERMINATE" || State(42).String() != "state(42)" {
		t.Error("State strings broken")
	}
	if PDD.String() != "PDD" || FDD.String() != "FDD" || Variant(9).String() != "variant(9)" {
		t.Error("Variant strings broken")
	}
}

func TestPDDDeterministicPerSeed(t *testing.T) {
	fx := gridFixture(t, 4, 57)
	run := func(seed int64) *sched.Schedule {
		res, err := Run(Config{
			Variant: PDD, Probability: 0.5, RNG: rand.New(rand.NewSource(seed)),
			Links: fx.links, Demands: fx.demands, Backend: fx.backend(t, 0, false),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedule
	}
	if !run(1).Equal(run(1)) {
		t.Error("same seed must reproduce the same PDD schedule")
	}
}
