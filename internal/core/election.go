package core

// LeaderElect runs the paper's bitwise leader election (Section III-B) over
// the given backend: id_bits iterations from the most significant bit; in
// each iteration a network-wide OR (one SCREAM primitive) is taken over the
// current bit of every still-standing participant's ID. A node whose bit is
// 0 while the OR is 1 is voted out; after the last bit only the
// highest-ID participant remains.
//
// ids[i] is node i's unique ID; participating[i] == false makes node i a
// passive relay (it contributes 0 bits and can never win, the paper's
// "LeaderElect(0)" call). The winner's node index is returned, or -1 when
// there are no participants. The paper's pseudocode returns `votedout`; the
// accompanying text makes clear the intended return is "am I the leader",
// i.e. NOT votedout — which is what this implementation reports.
func LeaderElect(b Backend, idBits int, ids []uint64, participating []bool) int {
	n := b.NumNodes()
	votedout := make([]bool, n)
	for i := 0; i < n; i++ {
		if !participating[i] {
			votedout[i] = true
		}
	}
	vars := make([]bool, n)
	for j := idBits - 1; j >= 0; j-- {
		for i := 0; i < n; i++ {
			vars[i] = participating[i] && !votedout[i] && bit(ids[i], j)
		}
		result := b.Scream(vars)
		for i := 0; i < n; i++ {
			// Nodes that screamed stay in; everyone else is voted out
			// if anybody screamed a 1 for this bit position.
			if !vars[i] && result[i] {
				votedout[i] = true
			}
		}
	}
	winner := -1
	for i := 0; i < n; i++ {
		if participating[i] && !votedout[i] {
			if winner >= 0 {
				// Duplicate IDs among participants: deterministically
				// prefer the higher node index to keep the run going.
				if ids[i] > ids[winner] || (ids[i] == ids[winner] && i > winner) {
					winner = i
				}
				continue
			}
			winner = i
		}
	}
	return winner
}

// ElectionScreams returns how many SCREAM primitives one LeaderElect costs:
// one per ID bit (the O(K log n) slot complexity of Section III-B).
func ElectionScreams(idBits int) int { return idBits }

// IDBitsFor returns the number of bits needed to represent node IDs 0..n-1,
// with a minimum of 1.
func IDBitsFor(n int) int {
	bits := 1
	for v := uint64(n - 1); v > 1; v >>= 1 {
		bits++
	}
	if n <= 1 {
		return 1
	}
	return bits
}

func bit(x uint64, j int) bool { return (x>>uint(j))&1 == 1 }
