package core

import "scream/internal/phys"

// Observer receives protocol events during Run. Any field may be nil. It
// exists for debugging, visualization, and for tests that check the
// protocol's state machine against Figure 1 of the paper.
type Observer struct {
	// ControllerElected fires when a round's controller wins election.
	ControllerElected func(round, node int)
	// StateChange fires on every node state transition (from != to).
	StateChange func(round, node int, from, to State)
	// SlotSealed fires when a slot's membership is final.
	SlotSealed func(round int, links []phys.Link)
}

// TransitionLegal reports whether a node state transition is allowed by the
// protocol's state machine (Figure 1, plus the per-slot reset edges that
// the figure draws as "new slot considered").
func TransitionLegal(from, to State) bool {
	switch from {
	case Dormant:
		return to == Active || to == Control
	case Active:
		return to == Allocated || to == Tried
	case Allocated:
		return to == Dormant || to == Complete
	case Tried:
		return to == Dormant
	case Control:
		return to == Complete
	case Complete:
		return to == Terminate
	default:
		return false
	}
}
