package core

// Tests for the multi-channel protocol variant: both FDD and PDD must
// produce VerifyMulti-feasible channel-assigned schedules that serve the
// full demand, added channels must shorten the schedule on a contended mesh,
// and NumChannels <= 1 must leave the single-channel protocol untouched.

import (
	"math/rand"
	"testing"

	"scream/internal/phys"
)

func runMultiVariant(t *testing.T, fx *fixture, variant Variant, channels, radios int, seed int64) *Result {
	t.Helper()
	cfg := Config{
		Variant:     variant,
		Links:       fx.links,
		Demands:     fx.demands,
		Backend:     fx.backend(t, 0, false),
		NumChannels: channels,
		NumRadios:   radios,
	}
	if variant == PDD {
		cfg.Probability = 0.6
		cfg.RNG = rand.New(rand.NewSource(seed))
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%v C=%d R=%d: %v", variant, channels, radios, err)
	}
	return res
}

func TestRunMultiChannelFeasibleAndShorter(t *testing.T) {
	fx := gridFixture(t, 6, 11)
	for _, variant := range []Variant{FDD, PDD} {
		single := runMultiVariant(t, fx, variant, 1, 1, 1)
		if err := single.Schedule.Verify(fx.net.Channel, fx.links, fx.demands); err != nil {
			t.Fatalf("%v single-channel: %v", variant, err)
		}
		prev := single.Schedule.Length()
		for _, c := range []int{2, 4} {
			cs, err := phys.NewChannelSet(fx.net.Channel, c)
			if err != nil {
				t.Fatal(err)
			}
			res := runMultiVariant(t, fx, variant, c, 2, 1)
			if err := res.Schedule.VerifyMulti(cs, 2, fx.links, fx.demands); err != nil {
				t.Fatalf("%v C=%d: %v", variant, c, err)
			}
			if got := res.Schedule.NumChannelsUsed(); got > c {
				t.Fatalf("%v C=%d: schedule uses %d channels", variant, c, got)
			}
			if res.Schedule.Length() >= prev {
				t.Fatalf("%v: C=%d schedule (%d slots) not shorter than previous (%d)",
					variant, c, res.Schedule.Length(), prev)
			}
			if res.Rounds != res.Schedule.Length() {
				t.Fatalf("%v C=%d: %d rounds for %d slots", variant, c, res.Rounds, res.Schedule.Length())
			}
			prev = res.Schedule.Length()
		}
	}
}

// TestRunMultiChannelRadioBudgetRespected: with one radio per node, no node
// may appear as an endpoint of two placements in any slot even across
// channels; with two, at most twice.
func TestRunMultiChannelRadioBudgetRespected(t *testing.T) {
	fx := gridFixture(t, 5, 23)
	for _, radios := range []int{1, 2} {
		res := runMultiVariant(t, fx, FDD, 3, radios, 1)
		s := res.Schedule
		for i := 0; i < s.Length(); i++ {
			count := map[int]int{}
			for _, l := range s.Slot(i) {
				count[l.From]++
				count[l.To]++
			}
			for u, c := range count {
				if c > radios {
					t.Fatalf("radios=%d: slot %d uses node %d %d times: %v", radios, i, u, c, s.Slot(i))
				}
			}
		}
		cs, err := phys.NewChannelSet(fx.net.Channel, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.VerifyMulti(cs, radios, fx.links, fx.demands); err != nil {
			t.Fatalf("radios=%d: %v", radios, err)
		}
	}
}

// TestRunMultiChannelSingleIsLegacy: NumChannels 0 and 1 must both take the
// unmodified single-channel code path — identical schedule, identical cost
// accounting, no channel assignment recorded.
func TestRunMultiChannelSingleIsLegacy(t *testing.T) {
	fx := gridFixture(t, 5, 31)
	run := func(channels int) *Result {
		res, err := Run(Config{
			Variant: FDD, Links: fx.links, Demands: fx.demands,
			Backend: fx.backend(t, 0, false), NumChannels: channels, NumRadios: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy, one := run(0), run(1)
	if !legacy.Schedule.Equal(one.Schedule) {
		t.Fatal("NumChannels=1 changed the single-channel schedule")
	}
	if legacy.Steps != one.Steps || legacy.Screams != one.Screams || legacy.ExecTime != one.ExecTime {
		t.Fatalf("NumChannels=1 changed cost accounting: %+v vs %+v", legacy, one)
	}
	for i := 0; i < one.Schedule.Length(); i++ {
		if one.Schedule.SlotChannels(i) != nil {
			t.Fatalf("single-channel run recorded a channel assignment in slot %d", i)
		}
	}
}
