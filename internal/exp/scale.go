package exp

// The scalability figure: node count swept to 50k, comparing the spatial
// grid-bucket interference engine against the dense n*n RX-power matrix on
// memory footprint and per-admission cost. Unlike the paper figures this one
// measures the simulator itself, so it mixes deterministic series (schedule
// length, engine memory) with wall-clock series (build time, ns per
// admission) — the deterministic series come first so tooling can compare a
// stable column prefix across runs (scripts/check_scale_determinism.sh).
//
// The deployment is synthetic: a square grid at scaleStepM spacing with the
// default radio environment and one unit-demand link per node toward the
// origin corner. Building it is O(n) — it deliberately bypasses topo.Build,
// whose O(n^2) graph construction would dominate the sweep long before the
// engines under study do.

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"scream/internal/geom"
	"scream/internal/phys"
	"scream/internal/phys/spatial"
	"scream/internal/sched"
	"scream/internal/stats"
	"scream/internal/topo"
)

// scaleStepM is the grid spacing of the synthetic deployment; the TX power
// is derived to reach a neighbor with the usual 5% slack, mirroring
// topo.NewGrid's derivation.
const (
	scaleStepM  = 30.0
	scaleSlack  = 1.05
	scaleSeries = 7
)

// ScaleSizes returns the node-count sweep of FigScale.
func ScaleSizes(quick bool) []int {
	if quick {
		return []int{256, 1024, 4096}
	}
	return []int{1000, 5000, 10000, 20000, 50000}
}

// scaleDenseCap bounds the node count at which the dense engine is actually
// built and measured: the n*n matrix at 50k nodes is 20 GB, which is the
// point of the figure, not something to allocate. Beyond the cap the dense
// wall-clock series reports the 0 sentinel (its analytic memory series keeps
// growing).
func scaleDenseCap(quick bool) int {
	if quick {
		return 1024
	}
	return 4096
}

// scaleSampleCap bounds how many of the deployment's links one cell admits
// (deterministic stride sample): enough admissions to average over, without
// the 50k-node cell scheduling 50k links against a capped dense run's 4k.
func scaleSampleCap(quick bool) int {
	if quick {
		return 1000
	}
	return 4000
}

// scaleDeployment builds the synthetic n-node grid: positions, homogeneous
// derived TX power, and one unit-demand link per non-origin node toward the
// origin corner (left neighbor when the row allows, else straight up).
func scaleDeployment(n int) (pos []geom.Point, pw []float64, links []phys.Link) {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	p := topo.DefaultParams()
	power := p.PathLoss.PowerForRange(scaleStepM*scaleSlack, p.NoiseMW, p.Beta)
	pos = make([]geom.Point, n)
	pw = make([]float64, n)
	links = make([]phys.Link, 0, n-1)
	for i := 0; i < n; i++ {
		pos[i] = geom.Point{X: float64(i%cols) * scaleStepM, Y: float64(i/cols) * scaleStepM}
		pw[i] = power
		if i == 0 {
			continue
		}
		to := i - cols
		if i%cols > 0 {
			to = i - 1
		}
		links = append(links, phys.Link{From: i, To: to})
	}
	return pos, pw, links
}

// sampleLinks returns a deterministic stride sample of at most cap links.
func sampleLinks(links []phys.Link, cap int) []phys.Link {
	if len(links) <= cap {
		return links
	}
	stride := (len(links) + cap - 1) / cap
	out := make([]phys.Link, 0, cap)
	for i := 0; i < len(links); i += stride {
		out = append(out, links[i])
	}
	return out
}

// admitAll runs the greedy first-fit admission pass over the sampled links
// (unit demands) and reports the schedule length, wall time per admission and
// allocated bytes per admission.
func admitAll(eng phys.Engine, sample []phys.Link) (slots int, nsPerAdm, bytesPerAdm float64, err error) {
	demands := make([]int, len(sample))
	for i := range demands {
		demands[i] = 1
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	s, err := sched.GreedyPhysical(eng, sample, demands, sched.ByHeadIDDesc)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, 0, err
	}
	adm := float64(len(sample))
	return s.Length(), float64(elapsed.Nanoseconds()) / adm,
		float64(after.TotalAlloc-before.TotalAlloc) / adm, nil
}

// denseChannel builds the exact dense engine over the synthetic deployment —
// the O(n^2) structure the spatial index replaces.
func denseChannel(pos []geom.Point, pw []float64) (*phys.Channel, error) {
	p := topo.DefaultParams()
	n := len(pos)
	gain := make([][]float64, n)
	for u := range gain {
		row := make([]float64, n)
		for v := range row {
			if u != v {
				row[v] = p.PathLoss.Gain(pos[u].Dist(pos[v]))
			}
		}
		gain[u] = row
	}
	return phys.NewChannel(pw, gain, p.NoiseMW, p.Beta)
}

// FigScale sweeps the node count to 50k and plots both engines' cost:
// schedule length over a fixed link sample (identical for both engines on
// this deployment — the conservativeness gap, when it appears, shows up
// here), engine memory (the spatial index measured, the dense matrix's
// 8n^2 bytes analytic), index build time, and per-admission time and
// allocation. The dense engine is only exercised up to scaleDenseCap nodes;
// beyond it the dense ns-per-admission series reports 0.
//
// FigScale runs serially and ignores Options.Seeds/Workers: its wall-clock
// series would only be perturbed by co-scheduled cells. It is deliberately
// not part of figgen's "all" set — the timing columns are not reproducible
// byte-for-byte, so it would break the all-output prefix discipline.
func FigScale(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure(
		"Scale: Spatial vs Dense Interference Engine Cost vs Node Count",
		"nodes", "slots / MB / ms / ns per admission / B per admission")
	names := []string{
		// Deterministic prefix — keep these first (see package comment).
		"spatial slots",
		"spatial index MB",
		"dense matrix MB",
		// Measured tail.
		"spatial build ms",
		"spatial admit ns/op",
		"spatial admit B/op",
		"dense admit ns/op",
	}
	if len(names) != scaleSeries {
		return nil, fmt.Errorf("scale: %d series, want %d", len(names), scaleSeries)
	}
	series := make([]*stats.Series, len(names))
	for i, name := range names {
		series[i] = fig.AddSeries(name)
	}
	denseCap := scaleDenseCap(opts.Quick)
	for _, n := range ScaleSizes(opts.Quick) {
		pos, pw, links := scaleDeployment(n)
		sample := sampleLinks(links, scaleSampleCap(opts.Quick))
		p := topo.DefaultParams()

		buildStart := time.Now()
		idx, err := spatial.New(spatial.Config{
			Pos: pos, TxPowerMW: pw,
			PathLoss: p.PathLoss, NoiseMW: p.NoiseMW, Beta: p.Beta,
		})
		if err != nil {
			return nil, fmt.Errorf("scale n=%d: %w", n, err)
		}
		buildMS := float64(time.Since(buildStart).Nanoseconds()) / 1e6

		slots, spatialNS, spatialB, err := admitAll(idx, sample)
		if err != nil {
			return nil, fmt.Errorf("scale n=%d spatial: %w", n, err)
		}

		denseNS := 0.0
		if n <= denseCap {
			ch, err := denseChannel(pos, pw)
			if err != nil {
				return nil, fmt.Errorf("scale n=%d dense: %w", n, err)
			}
			denseSlots, ns, _, err := admitAll(ch, sample)
			if err != nil {
				return nil, fmt.Errorf("scale n=%d dense: %w", n, err)
			}
			denseNS = ns
			// On this sparse grid the spatial bound is tight enough that the
			// engines must agree exactly; a mismatch is a correctness bug, not
			// a measurement.
			if denseSlots > slots {
				return nil, fmt.Errorf("scale n=%d: spatial schedule (%d slots) beats dense (%d) — conservativeness violated",
					n, slots, denseSlots)
			}
		}

		x := float64(n)
		vals := []float64{
			float64(slots),
			float64(idx.MemoryBytes()) / 1e6,
			8 * x * x / 1e6,
			buildMS,
			spatialNS,
			spatialB,
			denseNS,
		}
		for i, v := range vals {
			series[i].Append(x, v, 0)
		}
	}
	return fig, nil
}
