package exp

// The multi-channel figure: delivered goodput AND one-shot schedule length
// vs channel count, for the centralized greedy, the distributed protocols
// and the TDMA frame. Orthogonal channels multiply spatial reuse (the
// multicoloring setting of Vieira et al., arXiv:1504.01647; channel-aware
// SINR scheduling of Zhou et al., arXiv:1208.0902): schedules shrink as the
// per-slot channel vector absorbs links that a single channel would
// serialize, and the recovered slots turn into goodput under saturating
// offered load. The sweep also exposes the diminishing return — once the
// radio budget and per-node serialization bind, more channels stop helping.

import (
	"fmt"
	"math/rand"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/flow"
	"scream/internal/phys"
	"scream/internal/sched"
	"scream/internal/stats"
	"scream/internal/traffic"
)

// channelsRadios is the per-node radio count of the channels figure: two
// radios let relay nodes serve two channels per slot, the configuration the
// multi-radio mesh literature treats as the sweet spot. At one channel the
// budget is inert (a half-duplex node joins one transmission per slot
// anyway), so the C=1 column reproduces the single-channel simulator.
const channelsRadios = 2

// channelsLoad is the offered load of the flow runs in units of the
// single-channel static capacity: high enough that every channel count stays
// saturated, so recovered schedule slots show up as delivered goodput.
const channelsLoad = 4.0

// channelsFramesPerEpoch is the schedule-reuse amortization of the channels
// figure. Multi-channel re-scheduling is dearer than single-channel (each
// slot is negotiated in per-channel phases, so an FDD run pays roughly C
// times the elections), which a deployment would amortize over
// correspondingly more frames; 256 keeps the distributed curves data-bound
// across the sweep instead of measuring control cost alone.
const channelsFramesPerEpoch = 256

// ChannelCounts returns the channel-count sweep of FigChannels: the
// power-of-two ladder mesh radios actually ship (802.11 deployments bond or
// split into 1, 2, 4 and 8 orthogonal channels) plus the 6-channel point of
// the full sweep.
func ChannelCounts(quick bool) []int {
	if quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 6, 8}
}

// channelsCurveNames are FigChannels' series: delivered goodput per
// scheduler, then the one-shot schedule length per scheduler (the figure
// carries both quality metrics of the sweep; see EXPERIMENTS.md).
func channelsCurveNames() []string {
	return []string{
		"Centralized", "FDD", "PDD p=0.8", "TDMA",
		"Centralized slots", "FDD slots", "PDD p=0.8 slots", "TDMA slots",
	}
}

// channelsFlowSchedulers builds the four epoch schedulers for a channel
// count. The C=1 column uses the single-channel builders so it reproduces
// FigFlowLoad's code path exactly.
func channelsFlowSchedulers(s *Scenario, tm core.Timing, channels int, seed int64) ([]flow.Scheduler, error) {
	if channels <= 1 {
		return flowSchedulers(s, tm, seed)
	}
	cs, err := phys.NewChannelSet(s.Net.Channel, channels)
	if err != nil {
		return nil, err
	}
	fdd, err := flow.NewProtocolScheduler(flow.ProtocolSchedulerConfig{
		Channel: s.Net.Channel, Sens: s.Net.Sens, Links: s.Links,
		Timing: tm, Variant: core.FDD, Seed: seed,
		Channels: channels, Radios: channelsRadios,
	})
	if err != nil {
		return nil, err
	}
	pdd, err := flow.NewProtocolScheduler(flow.ProtocolSchedulerConfig{
		Channel: s.Net.Channel, Sens: s.Net.Sens, Links: s.Links,
		Timing: tm, Variant: core.PDD, P: 0.8, Seed: seed + 1,
		Channels: channels, Radios: channelsRadios,
	})
	if err != nil {
		return nil, err
	}
	return []flow.Scheduler{
		flow.NewGreedyMultiScheduler(cs, channelsRadios, s.Links, sched.ByHeadIDDesc),
		fdd,
		pdd,
		flow.NewTDMAMultiScheduler(s.Links, channels, channelsRadios),
	}, nil
}

// channelsScheduleLengths runs each scheduler once against the scenario's
// static demand vector and returns the four schedule lengths, verifying
// every multi-channel schedule against the naive per-channel model.
func channelsScheduleLengths(s *Scenario, tm core.Timing, channels int, seed int64) ([]float64, error) {
	cs, err := phys.NewChannelSet(s.Net.Channel, channels)
	if err != nil {
		return nil, err
	}
	verify := func(name string, sc *sched.Schedule) error {
		if channels > 1 {
			if err := sc.VerifyMulti(cs, channelsRadios, s.Links, s.Demands); err != nil {
				return fmt.Errorf("%s C=%d: %w", name, channels, err)
			}
		}
		return nil
	}
	greedy, err := sched.GreedyPhysicalMulti(cs, channelsRadios, s.Links, s.Demands, sched.ByHeadIDDesc)
	if err != nil {
		return nil, err
	}
	if err := verify("greedy", greedy); err != nil {
		return nil, err
	}
	proto := func(variant core.Variant, p float64, protoSeed int64) (*sched.Schedule, error) {
		b, err := core.NewIdealBackend(s.Net.Channel, s.Net.Sens, s.Net.InterferenceDiameter(), tm, false)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Variant: variant, Links: s.Links, Demands: s.Demands, Backend: b,
			NumChannels: channels, NumRadios: channelsRadios,
		}
		if variant == core.PDD {
			cfg.Probability = p
			cfg.RNG = rand.New(rand.NewSource(protoSeed))
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}
	fdd, err := proto(core.FDD, 0, seed)
	if err != nil {
		return nil, err
	}
	if err := verify("FDD", fdd); err != nil {
		return nil, err
	}
	pdd, err := proto(core.PDD, 0.8, seed)
	if err != nil {
		return nil, err
	}
	if err := verify("PDD", pdd); err != nil {
		return nil, err
	}
	tdma, _, err := flow.NewTDMAMultiScheduler(s.Links, channels, channelsRadios).Build(s.Demands, 0)
	if err != nil {
		return nil, err
	}
	if err := verify("TDMA", tdma); err != nil {
		return nil, err
	}
	return []float64{
		float64(greedy.Length()), float64(fdd.Length()),
		float64(pdd.Length()), float64(tdma.Length()),
	}, nil
}

// RunChannelsCell runs one (channel-count, seed) cell: the four flow runs
// (delivered goodput under saturating load) followed by the four one-shot
// schedule lengths, aligned with channelsCurveNames.
func RunChannelsCell(channels int, seed int64, quick bool) ([]float64, error) {
	s, err := GridScenario(flowDensity, 4600+seed)
	if err != nil {
		return nil, err
	}
	tm := core.DefaultTiming()
	frame, err := flow.FrameTime(s.Net.Channel, s.Forest, s.Links, tm)
	if err != nil {
		return nil, err
	}
	rate := channelsLoad / frame.Seconds()
	// The 256-frame schedule reuse makes epochs long; even the quick run
	// needs enough horizon for the distributed schedulers to amortize their
	// first control phase, or the figure measures startup transients.
	horizonFrames := 1200
	if quick {
		horizonFrames = 900
	}
	horizon := des.Time(horizonFrames) * frame
	schedulers, err := channelsFlowSchedulers(s, tm, channels, seed)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, 0, 2*len(schedulers))
	for ci, sc := range schedulers {
		arrivals := make([]traffic.Arrival, s.Net.NumNodes())
		for u := range arrivals {
			if s.Forest.IsGateway(u) {
				continue
			}
			p, err := traffic.NewPoisson(rate)
			if err != nil {
				return nil, err
			}
			arrivals[u] = p
		}
		res, err := flow.Run(flow.Config{
			Forest:         s.Forest,
			Links:          s.Links,
			Scheduler:      sc,
			Timing:         tm,
			Arrivals:       arrivals,
			Horizon:        horizon,
			Seed:           flow.DeriveSeed(seed, int64(ci)),
			MaxService:     flowMaxService,
			FramesPerEpoch: channelsFramesPerEpoch,
		})
		if err != nil {
			return nil, fmt.Errorf("channels cell C=%d seed=%d curve=%s: %w", channels, seed, sc.Name, err)
		}
		vals = append(vals, res.GoodputPps)
	}
	lengths, err := channelsScheduleLengths(s, tm, channels, seed)
	if err != nil {
		return nil, fmt.Errorf("channels cell C=%d seed=%d: %w", channels, seed, err)
	}
	return append(vals, lengths...), nil
}

// FigChannels sweeps the orthogonal channel count and plots, for each
// scheduler, the goodput delivered under saturating offered load and the
// one-shot schedule length for the scenario's static demands. Schedules
// shrink and goodput rises as channels multiply spatial reuse; the gains
// taper once the two-radio budget and per-node serialization dominate, and
// the distributed protocols additionally pay the extra control rounds of the
// per-channel slot phases.
func FigChannels(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure(
		"Channels: Goodput and Schedule Length vs Channel Count (multi-channel)",
		"orthogonal channels", "goodput (pkt/s) / schedule slots")
	counts := ChannelCounts(opts.Quick)
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	names := channelsCurveNames()
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		return RunChannelsCell(counts[xi], int64(si), opts.Quick)
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}
