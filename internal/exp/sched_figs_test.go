package exp

// Shape and headline pins for the scheduler-family figure: every
// scheduler × topology curve must be present with one point per load, all
// goodput must be positive, and on both topologies every reuse scheduler
// must beat the TDMA floor at the saturating end of the sweep (worker
// determinism is covered by TestEngineDeterminism and the nightly
// check_determinism.sh run over -fig sched).

import (
	"fmt"
	"testing"
)

func TestFigSchedShapeAndTDMAFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dynamic traffic simulations")
	}
	fig, err := FigSched(Options{Quick: true, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	loads := SchedLoads(true)
	names := schedCurveNames()
	if len(fig.Series) != len(names) {
		t.Fatalf("got %d series, want %d", len(fig.Series), len(names))
	}
	for _, name := range names {
		s := fig.Lookup(name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		if len(s.Points) != len(loads) {
			t.Fatalf("%s: %d points for %d loads", name, len(s.Points), len(loads))
		}
		for i, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("%s: non-positive goodput %.1f at load %.2f", name, p.Y, loads[i])
			}
		}
	}
	// At the saturating end of the sweep every reuse scheduler must beat the
	// no-reuse TDMA floor on its topology.
	last := len(loads) - 1
	for _, topo := range schedTopos() {
		floor := fig.Lookup(fmt.Sprintf("TDMA %s", topo)).Points[last].Y
		for _, sname := range []string{"Greedy", "MaxWeight", "FanZhang"} {
			got := fig.Lookup(fmt.Sprintf("%s %s", sname, topo)).Points[last].Y
			if got <= floor {
				t.Errorf("%s %s goodput %.1f at saturation does not beat TDMA floor %.1f",
					sname, topo, got, floor)
			}
		}
	}
}
