// Package exp is the benchmark harness that regenerates every figure of the
// paper's evaluation (Figures 4-9) plus the ablations DESIGN.md calls out.
// Each runner builds the paper's workload, sweeps the paper's parameter,
// runs the protocols and baselines, and emits the same series the paper
// plots, with 95% confidence intervals across seeds.
package exp

import (
	"fmt"
	"math/rand"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/phys"
	"scream/internal/route"
	"scream/internal/sched"
	"scream/internal/stats"
	"scream/internal/topo"
	"scream/internal/traffic"
)

// Options controls experiment scale.
type Options struct {
	// Seeds is the number of independent runs per point (default 5).
	Seeds int
	// Quick shrinks sweeps and run lengths for use inside go test -bench.
	Quick bool
	// Workers is the number of goroutines the cell-grid engine fans
	// experiment cells across (default runtime.GOMAXPROCS(0)). Output is
	// bit-for-bit identical for any value; see engine.go.
	Workers int
}

func (o Options) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	if o.Quick {
		return 2
	}
	return 5
}

// Scenario is one fully built workload: a network plus routing forest, its
// links and per-link aggregated demands — the unit every figure consumes.
// The flow figures additionally forward packets along Forest.
type Scenario struct {
	Net     *topo.Network
	Forest  *route.Forest
	Links   []phys.Link
	Demands []int
}

// TotalDemand returns the serialized (linear) schedule length TD.
func (s *Scenario) TotalDemand() int { return sched.LinearLength(s.Demands) }

// gridPowerDBm is the homogeneous TX power of the planned scenario. 4 dBm
// makes the sparsest deployments behave like the paper's: deep routing
// forests with plentiful spatial reuse (~60% improvement), degrading as the
// density rises and the forest flattens onto the four gateways.
const gridPowerDBm = 4

// GridScenario builds the paper's planned deployment: 64 nodes in an 8x8
// grid sized for the given density (nodes/km^2), 4 quadrant gateways,
// homogeneous TX power, demands uniform in [1,10].
func GridScenario(density float64, seed int64) (*Scenario, error) {
	side := topo.SideForDensity(64, density)
	step := side / 7 // 8 nodes per side span the region
	p := topo.DefaultParams()
	net, err := topo.NewGrid(topo.GridConfig{
		Rows: 8, Cols: 8, Step: step,
		TxPowerMW: phys.DBm(gridPowerDBm).MilliWatts(),
		Params:    p,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("grid scenario: %w", err)
	}
	return finishScenario(net, seed)
}

// UniformScenario builds the paper's unplanned deployment: 64 nodes placed
// uniformly at random with heterogeneous TX power (spanning 6 dB), 4
// quadrant gateways, demands uniform in [1,10].
func UniformScenario(density float64, seed int64) (*Scenario, error) {
	side := topo.SideForDensity(64, density)
	rng := rand.New(rand.NewSource(seed))
	net, err := topo.NewUniform(topo.UniformConfig{
		N: 64, Side: side,
		MinTxDBm: gridPowerDBm, MaxTxDBm: gridPowerDBm + 6,
		Params: topo.DefaultParams(),
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("uniform scenario: %w", err)
	}
	return finishScenario(net, seed+1)
}

func finishScenario(net *topo.Network, seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	gws, err := topo.QuadrantGateways(net)
	if err != nil {
		return nil, err
	}
	f, err := route.BuildForest(net.Comm, gws, rng)
	if err != nil {
		return nil, err
	}
	nodeDemand, err := traffic.Uniform(net.NumNodes(), 1, 10, rng)
	if err != nil {
		return nil, err
	}
	agg, err := f.AggregateDemand(nodeDemand)
	if err != nil {
		return nil, err
	}
	links := f.Links()
	demands := make([]int, len(links))
	for i, l := range links {
		demands[i] = agg[l.From]
	}
	return &Scenario{Net: net, Forest: f, Links: links, Demands: demands}, nil
}

// RunCentralized runs GreedyPhysical (head-ID order) on the scenario and
// returns the % improvement over the linear schedule.
func RunCentralized(s *Scenario) (float64, error) {
	sc, err := sched.GreedyPhysical(s.Net.Channel, s.Links, s.Demands, sched.ByHeadIDDesc)
	if err != nil {
		return 0, err
	}
	return sched.ImprovementOverLinear(sc.Length(), s.TotalDemand()), nil
}

// RunProtocol runs FDD or PDD on the scenario over an ideal backend and
// returns improvement over linear plus the full protocol result.
func RunProtocol(s *Scenario, variant core.Variant, p float64, timing core.Timing, k int, seed int64) (float64, *core.Result, error) {
	if k == 0 {
		k = s.Net.InterferenceDiameter()
	}
	b, err := core.NewIdealBackend(s.Net.Channel, s.Net.Sens, k, timing, false)
	if err != nil {
		return 0, nil, err
	}
	cfg := core.Config{
		Variant: variant,
		Links:   s.Links,
		Demands: s.Demands,
		Backend: b,
	}
	if variant == core.PDD {
		cfg.Probability = p
		cfg.RNG = rand.New(rand.NewSource(seed))
	}
	res, err := core.Run(cfg)
	if err != nil {
		return 0, nil, err
	}
	if err := res.Schedule.Verify(s.Net.Channel, s.Links, s.Demands); err != nil {
		return 0, nil, fmt.Errorf("protocol produced invalid schedule: %w", err)
	}
	return sched.ImprovementOverLinear(res.Schedule.Length(), s.TotalDemand()), res, nil
}

// Densities returns the density sweep (nodes/km^2) of Figures 6-7.
func Densities(quick bool) []float64 {
	if quick {
		return []float64{1000, 10000, 25000}
	}
	return []float64{1000, 2500, 5000, 7500, 10000, 15000, 20000, 25000}
}

type improvementCurve struct {
	name string
	run  func(s *Scenario, seed int64) (float64, error)
}

func improvementFigure(title string, build func(density float64, seed int64) (*Scenario, error), curves []improvementCurve, opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure(title, "density (nodes/km^2)", "% improvement over linear")
	xs := Densities(opts.Quick)
	names := make([]string, len(curves))
	for i, c := range curves {
		names[i] = c.name
	}
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		density := xs[xi]
		s, err := build(density, int64(1000*density)+int64(si))
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(curves))
		for i, c := range curves {
			imp, err := c.run(s, int64(si))
			if err != nil {
				return nil, fmt.Errorf("%s at density %g: %w", c.name, density, err)
			}
			vals[i] = imp
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig6 regenerates Figure 6: schedule-length improvement over linear vs
// density for the planned grid — Centralized, FDD, PDD p in {0.2, 0.6, 0.8}.
func Fig6(opts Options) (*stats.Figure, error) {
	tm := core.DefaultTiming()
	curves := []improvementCurve{
		{"Centralized", func(s *Scenario, _ int64) (float64, error) { return RunCentralized(s) }},
		{"FDD", func(s *Scenario, seed int64) (float64, error) {
			imp, _, err := RunProtocol(s, core.FDD, 0, tm, 0, seed)
			return imp, err
		}},
	}
	for _, p := range []float64{0.2, 0.6, 0.8} {
		p := p
		curves = append(curves, improvementCurve{
			fmt.Sprintf("PDD p=%.1f", p),
			func(s *Scenario, seed int64) (float64, error) {
				imp, _, err := RunProtocol(s, core.PDD, p, tm, 0, seed)
				return imp, err
			},
		})
	}
	return improvementFigure("Fig 6: Schedule Length Improvement for Grid", GridScenario, curves, opts)
}

// Fig7 regenerates Figure 7: the same metric for the unplanned uniform
// deployment with heterogeneous power — Centralized, FDD, PDD p=0.8.
func Fig7(opts Options) (*stats.Figure, error) {
	tm := core.DefaultTiming()
	curves := []improvementCurve{
		{"Centralized", func(s *Scenario, _ int64) (float64, error) { return RunCentralized(s) }},
		{"FDD", func(s *Scenario, seed int64) (float64, error) {
			imp, _, err := RunProtocol(s, core.FDD, 0, tm, 0, seed)
			return imp, err
		}},
		{"PDD p=0.8", func(s *Scenario, seed int64) (float64, error) {
			imp, _, err := RunProtocol(s, core.PDD, 0.8, tm, 0, seed)
			return imp, err
		}},
	}
	return improvementFigure("Fig 7: Schedule Length Improvement for Uniform Random Placement", UniformScenario, curves, opts)
}

// fig8Density is dense enough that the sensitivity graph's interference
// diameter stays below the smallest K in the sweep.
const fig8Density = 15000

// Fig8 regenerates Figure 8: protocol execution time vs SCREAM size (bytes)
// and vs interference diameter bound K, for FDD and PDD (p=0.2).
func Fig8(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Fig 8: Execution Time vs SCREAM size and Interference Diameter", "size (bytes) / diameter (slots)", "running time (s)")
	sweep := []int{5, 10, 20, 30, 40, 50, 60}
	if opts.Quick {
		sweep = []int{5, 30, 60}
	}
	type curve struct {
		name    string
		variant core.Variant
		p       float64
		bySize  bool
	}
	curves := []curve{
		{"FDD Scream size (bytes)", core.FDD, 0, true},
		{"PDD Scream size (bytes)", core.PDD, 0.2, true},
		{"FDD Diameter", core.FDD, 0, false},
		{"PDD Diameter", core.PDD, 0.2, false},
	}
	xs := make([]float64, len(sweep))
	for i, x := range sweep {
		xs[i] = float64(x)
	}
	names := make([]string, len(curves))
	for i, c := range curves {
		names[i] = c.name
	}
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		x := sweep[xi]
		s, err := GridScenario(fig8Density, 77+int64(si))
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(curves))
		for i, c := range curves {
			tm := core.DefaultTiming()
			k := 0
			if c.bySize {
				tm.SMBytes = x
			} else {
				k = x
				if id := s.Net.InterferenceDiameter(); k < id {
					return nil, fmt.Errorf("fig8: K=%d below ID=%d; raise fig8Density", k, id)
				}
			}
			_, res, err := RunProtocol(s, c.variant, c.p, tm, k, int64(si))
			if err != nil {
				return nil, err
			}
			vals[i] = res.ExecTime.Seconds()
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig9 regenerates Figure 9: execution time vs clock-skew bound (log-log in
// the paper), for FDD and PDD p=0.2.
func Fig9(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Fig 9: Execution Time vs Clock Skew", "clock skew (s)", "running time (s)")
	skews := []des.Time{
		des.Microsecond, 10 * des.Microsecond, 100 * des.Microsecond,
		des.Millisecond, 10 * des.Millisecond, 100 * des.Millisecond, des.Second,
	}
	if opts.Quick {
		skews = []des.Time{des.Microsecond, des.Millisecond, des.Second}
	}
	type curve struct {
		name    string
		variant core.Variant
		p       float64
	}
	curves := []curve{{"FDD", core.FDD, 0}, {"PDD p=0.2", core.PDD, 0.2}}
	xs := make([]float64, len(skews))
	for i, skew := range skews {
		xs[i] = skew.Seconds()
	}
	names := make([]string, len(curves))
	for i, c := range curves {
		names[i] = c.name
	}
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		s, err := GridScenario(fig8Density, 99+int64(si))
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(curves))
		for i, c := range curves {
			tm := core.DefaultTiming()
			tm.SkewBound = skews[xi]
			_, res, err := RunProtocol(s, c.variant, c.p, tm, 0, int64(si))
			if err != nil {
				return nil, err
			}
			vals[i] = res.ExecTime.Seconds()
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}
