package exp

import (
	"errors"
	"runtime"
	"testing"

	"scream/internal/stats"
)

// figuresEqual compares two figures exactly: titles, axes, series names and
// every point bit-for-bit. Parallel runs must never change published numbers.
func figuresEqual(t *testing.T, name string, a, b *stats.Figure) {
	t.Helper()
	if a.Title != b.Title || a.XLabel != b.XLabel || a.YLabel != b.YLabel {
		t.Fatalf("%s: figure metadata differs: %q vs %q", name, a.Title, b.Title)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("%s: %d vs %d series", name, len(a.Series), len(b.Series))
	}
	for i, sa := range a.Series {
		sb := b.Series[i]
		if sa.Name != sb.Name {
			t.Fatalf("%s: series %d name %q vs %q", name, i, sa.Name, sb.Name)
		}
		if len(sa.Points) != len(sb.Points) {
			t.Fatalf("%s/%s: %d vs %d points", name, sa.Name, len(sa.Points), len(sb.Points))
		}
		for j, pa := range sa.Points {
			pb := sb.Points[j]
			if pa != pb {
				t.Errorf("%s/%s point %d: workers=1 %+v != workers=8 %+v", name, sa.Name, j, pa, pb)
			}
		}
	}
}

// TestEngineDeterminism is the engine's core guarantee: the same figure,
// bit-for-bit, for any worker count. One runner per cell shape: the shared
// improvement figures (Fig6/Fig7), the per-curve timing grids (Fig8), the
// mote grid (Fig4), and the in-cell sequential-RNG ablation
// (AblationBalancedRouting).
func TestEngineDeterminism(t *testing.T) {
	runners := []struct {
		name string
		run  func(Options) (*stats.Figure, error)
	}{
		{"Fig4", Fig4},
		{"Fig6", Fig6},
		{"Fig7", Fig7},
		{"Fig8", Fig8},
		{"AblationBalancedRouting", AblationBalancedRouting},
		// The flow figure runs whole dynamic simulations per cell; its
		// determinism additionally covers the des-driven arrival streams.
		{"FigFlowLoad", FigFlowLoad},
		// The churn figure additionally covers the dynam event timelines,
		// in-place channel mutation and incremental route repair.
		{"FigChurn", FigChurn},
		// The channels figure additionally covers the multi-channel slot
		// engine, channel-assigned schedules and the per-channel protocol
		// phases.
		{"FigChannels", FigChannels},
	}
	for _, r := range runners {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			serial, err := r.run(Options{Quick: true, Seeds: 2, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := r.run(Options{Quick: true, Seeds: 2, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			figuresEqual(t, r.name, serial, parallel)
		})
	}
}

func TestRunCellsErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		_, err := runCells(Options{Seeds: 3, Workers: workers}, 4, 1, func(xi, si int) ([]float64, error) {
			if xi == 2 && si == 1 {
				return nil, boom
			}
			return []float64{0}, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: want boom, got %v", workers, err)
		}
	}
}

func TestRunCellsValueCountMismatch(t *testing.T) {
	_, err := runCells(Options{Seeds: 1, Workers: 2}, 2, 3, func(xi, si int) ([]float64, error) {
		return []float64{1}, nil // 1 value, 3 curves
	})
	if err == nil {
		t.Fatal("cell returning wrong value count must fail")
	}
}

func TestRunCellsIndexing(t *testing.T) {
	// Cell values must land at vals[xi*seeds+si] no matter which worker
	// computed them.
	opts := Options{Seeds: 3, Workers: 4}
	vals, err := runCells(opts, 5, 2, func(xi, si int) ([]float64, error) {
		return []float64{float64(xi), float64(si)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for xi := 0; xi < 5; xi++ {
		for si := 0; si < 3; si++ {
			got := vals[xi*3+si]
			if got[0] != float64(xi) || got[1] != float64(si) {
				t.Errorf("cell (%d,%d) landed wrong: %v", xi, si, got)
			}
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := (Options{}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Options{Workers: 3}).workers(); got != 3 {
		t.Errorf("explicit workers = %d, want 3", got)
	}
}
