package exp

// The concurrent experiment engine. Every figure of the harness decomposes
// into a grid of independent cells (xi, si): one x-axis position and one
// seed. A cell rebuilds its scenario from a seed derived only from (xi, si)
// — never from shared state — evaluates every curve of the figure on it
// (curves share the scenario, exactly as the paper's evaluation does), and
// returns one value per curve. Cells fan out across Options.Workers
// goroutines; the reduction into per-(x, curve) samples happens after all
// cells complete, in (xi, si) order. The output is therefore bit-for-bit
// identical for any worker count, which TestEngineDeterminism enforces.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"scream/internal/stats"
)

// cellFunc evaluates all curves of the cell at x-index xi with seed-index si
// and returns one value per curve. Implementations must derive all
// randomness from (xi, si) so the cell is a pure function of its position.
type cellFunc func(xi, si int) ([]float64, error)

// runCells evaluates the nx x opts.seeds() cell grid across opts.workers()
// goroutines and returns vals[xi*seeds+si][ci]. On failure the error of the
// lowest-indexed failing cell that actually ran is returned; which cells ran
// after the first failure depends on scheduling, but successful output never
// does.
func runCells(opts Options, nx, ncurves int, cell cellFunc) ([][]float64, error) {
	seeds := opts.seeds()
	n := nx * seeds
	vals := make([][]float64, n)
	errs := make([]error, n)
	var failed atomic.Bool

	workers := opts.workers()
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if failed.Load() {
					continue // drain: no point finishing a doomed figure
				}
				v, err := cell(j/seeds, j%seeds)
				switch {
				case err != nil:
					errs[j] = err
					failed.Store(true)
				case len(v) != ncurves:
					errs[j] = fmt.Errorf("exp: cell (%d,%d) returned %d values, want %d", j/seeds, j%seeds, len(v), ncurves)
					failed.Store(true)
				default:
					vals[j] = v
				}
			}
		}()
	}
	for j := 0; j < n; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return vals, nil
}

// runGrid is the engine's front door: it evaluates the cell grid over the
// given x values, reduces each (x, curve) column of cell results into a
// stats.Sample in seed order, and appends one series per curve name to fig
// with the mean and 95% CI at every x.
func runGrid(fig *stats.Figure, xs []float64, names []string, opts Options, cell cellFunc) error {
	seeds := opts.seeds()
	vals, err := runCells(opts, len(xs), len(names), cell)
	if err != nil {
		return err
	}
	series := make([]*stats.Series, len(names))
	for i, name := range names {
		series[i] = fig.AddSeries(name)
	}
	for xi, x := range xs {
		for ci := range names {
			sample := stats.NewSample(seeds)
			for si := 0; si < seeds; si++ {
				sample.Add(vals[xi*seeds+si][ci])
			}
			sum := sample.Summarize()
			series[ci].Append(x, sum.Mean, sum.CI95)
		}
	}
	return nil
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}
