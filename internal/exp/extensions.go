package exp

import (
	"fmt"
	"math/rand"

	"scream/internal/mote"
	"scream/internal/route"
	"scream/internal/sched"
	"scream/internal/stats"
	"scream/internal/traffic"
)

// AblationBalancedRouting compares the paper's min-hop/random-tie-break
// forest against the load-balanced variant (route.BuildForestBalanced):
// same hop counts, evener gateway load, and the effect on TD and on the
// GreedyPhysical schedule length. This probes the Section IV-D observation
// that balanced trees reduce the aggregated traffic term of the complexity.
func AblationBalancedRouting(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: routing-forest balancing", "density (nodes/km^2)", "slots")
	names := []string{
		"TD (random tie-break)",
		"TD (balanced)",
		"greedy length (random tie-break)",
		"greedy length (balanced)",
	}
	xs := Densities(opts.Quick)
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		s, err := GridScenario(xs[xi], 111+int64(si))
		if err != nil {
			return nil, err
		}
		// One RNG feeds demand draw, then the plain forest, then the
		// balanced forest — the same consumption order for every cell, so
		// results are a pure function of (xi, si).
		rng := rand.New(rand.NewSource(222 + int64(si)))
		nodeDemand, err := traffic.Uniform(s.Net.NumNodes(), 1, 10, rng)
		if err != nil {
			return nil, err
		}
		gws := forestGateways(s)
		vals := make([]float64, 4)
		for _, balanced := range []bool{false, true} {
			var f *route.Forest
			if balanced {
				f, err = route.BuildForestBalanced(s.Net.Comm, gws, nodeDemand, rng)
			} else {
				f, err = route.BuildForest(s.Net.Comm, gws, rng)
			}
			if err != nil {
				return nil, err
			}
			agg, err := f.AggregateDemand(nodeDemand)
			if err != nil {
				return nil, err
			}
			links := f.Links()
			demands := make([]int, len(links))
			for i, l := range links {
				demands[i] = agg[l.From]
			}
			g, err := sched.GreedyPhysical(s.Net.Channel, links, demands, sched.ByHeadIDDesc)
			if err != nil {
				return nil, err
			}
			if balanced {
				vals[1] = float64(sched.LinearLength(demands))
				vals[3] = float64(g.Length())
			} else {
				vals[0] = float64(sched.LinearLength(demands))
				vals[2] = float64(g.Length())
			}
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// forestGateways recovers the gateway set of a scenario (nodes without a
// link of their own).
func forestGateways(s *Scenario) []int {
	owns := make(map[int]bool, len(s.Links))
	for _, l := range s.Links {
		owns[l.From] = true
	}
	var gws []int
	for u := 0; u < s.Net.NumNodes(); u++ {
		if !owns[u] {
			gws = append(gws, u)
		}
	}
	return gws
}

// AblationMoteRelays sweeps the number of relays in the mote experiment at a
// reliable SCREAM size: SCREAM's core assumption is that carrier sensing is
// COLLISION-RESILIENT, so detection error must stay negligible as more
// relays scream on top of each other.
func AblationMoteRelays(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: SCREAM collision resilience vs relay count", "relays", "% error")
	relays := []int{1, 2, 4, 6, 9, 12}
	screams := 600
	if opts.Quick {
		relays = []int{1, 6, 12}
		screams = 120
	}
	xs := make([]float64, len(relays))
	for i, r := range relays {
		xs[i] = float64(r)
	}
	err := runGrid(fig, xs, []string{"detection error (24-byte screams)"}, opts, func(xi, si int) ([]float64, error) {
		cfg := mote.DefaultConfig(24)
		cfg.NumRelays = relays[xi]
		cfg.Screams = screams
		cfg.Seed = int64(si + 1)
		res, err := mote.Run(cfg)
		if err != nil {
			return nil, err
		}
		return []float64{res.ErrorPercent}, nil
	})
	if err != nil {
		return nil, err
	}
	// Sanity: resilience means no blow-up at high relay counts.
	series := fig.Series[0]
	last := series.Points[len(series.Points)-1]
	if last.Y > 25 {
		return fig, fmt.Errorf("exp: collision resilience violated: %.1f%% error with %d relays", last.Y, relays[len(relays)-1])
	}
	return fig, nil
}
