package exp

import (
	"fmt"
	"math/rand"

	"scream/internal/mote"
	"scream/internal/route"
	"scream/internal/sched"
	"scream/internal/stats"
	"scream/internal/traffic"
)

// AblationBalancedRouting compares the paper's min-hop/random-tie-break
// forest against the load-balanced variant (route.BuildForestBalanced):
// same hop counts, evener gateway load, and the effect on TD and on the
// GreedyPhysical schedule length. This probes the Section IV-D observation
// that balanced trees reduce the aggregated traffic term of the complexity.
func AblationBalancedRouting(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: routing-forest balancing", "density (nodes/km^2)", "slots")
	tdPlain := fig.AddSeries("TD (random tie-break)")
	tdBal := fig.AddSeries("TD (balanced)")
	lenPlain := fig.AddSeries("greedy length (random tie-break)")
	lenBal := fig.AddSeries("greedy length (balanced)")
	for _, density := range Densities(opts.Quick) {
		samples := map[*stats.Series]*stats.Sample{}
		for _, s := range fig.Series {
			samples[s] = stats.NewSample(opts.seeds())
		}
		for seed := 0; seed < opts.seeds(); seed++ {
			s, err := GridScenario(density, 111+int64(seed))
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(222 + int64(seed)))
			nodeDemand, err := traffic.Uniform(s.Net.NumNodes(), 1, 10, rng)
			if err != nil {
				return nil, err
			}
			gws := forestGateways(s)
			for _, balanced := range []bool{false, true} {
				var f *route.Forest
				if balanced {
					f, err = route.BuildForestBalanced(s.Net.Comm, gws, nodeDemand, rng)
				} else {
					f, err = route.BuildForest(s.Net.Comm, gws, rng)
				}
				if err != nil {
					return nil, err
				}
				agg, err := f.AggregateDemand(nodeDemand)
				if err != nil {
					return nil, err
				}
				links := f.Links()
				demands := make([]int, len(links))
				for i, l := range links {
					demands[i] = agg[l.From]
				}
				g, err := sched.GreedyPhysical(s.Net.Channel, links, demands, sched.ByHeadIDDesc)
				if err != nil {
					return nil, err
				}
				if balanced {
					samples[tdBal].Add(float64(sched.LinearLength(demands)))
					samples[lenBal].Add(float64(g.Length()))
				} else {
					samples[tdPlain].Add(float64(sched.LinearLength(demands)))
					samples[lenPlain].Add(float64(g.Length()))
				}
			}
		}
		for _, s := range fig.Series {
			sum := samples[s].Summarize()
			s.Append(density, sum.Mean, sum.CI95)
		}
	}
	return fig, nil
}

// forestGateways recovers the gateway set of a scenario (nodes without a
// link of their own).
func forestGateways(s *Scenario) []int {
	owns := make(map[int]bool, len(s.Links))
	for _, l := range s.Links {
		owns[l.From] = true
	}
	var gws []int
	for u := 0; u < s.Net.NumNodes(); u++ {
		if !owns[u] {
			gws = append(gws, u)
		}
	}
	return gws
}

// AblationMoteRelays sweeps the number of relays in the mote experiment at a
// reliable SCREAM size: SCREAM's core assumption is that carrier sensing is
// COLLISION-RESILIENT, so detection error must stay negligible as more
// relays scream on top of each other.
func AblationMoteRelays(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: SCREAM collision resilience vs relay count", "relays", "% error")
	relays := []int{1, 2, 4, 6, 9, 12}
	screams := 600
	if opts.Quick {
		relays = []int{1, 6, 12}
		screams = 120
	}
	series := fig.AddSeries("detection error (24-byte screams)")
	for _, r := range relays {
		sample := stats.NewSample(opts.seeds())
		for seed := 0; seed < opts.seeds(); seed++ {
			cfg := mote.DefaultConfig(24)
			cfg.NumRelays = r
			cfg.Screams = screams
			cfg.Seed = int64(seed + 1)
			res, err := mote.Run(cfg)
			if err != nil {
				return nil, err
			}
			sample.Add(res.ErrorPercent)
		}
		sum := sample.Summarize()
		series.Append(float64(r), sum.Mean, sum.CI95)
	}
	// Sanity: resilience means no blow-up at high relay counts.
	last := series.Points[len(series.Points)-1]
	if last.Y > 25 {
		return fig, fmt.Errorf("exp: collision resilience violated: %.1f%% error with %d relays", last.Y, relays[len(relays)-1])
	}
	return fig, nil
}
