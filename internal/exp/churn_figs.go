package exp

// The topology-dynamics figure: delivered goodput vs node failure rate for
// the distributed protocols and the baselines, measured by the flow-level
// simulator with the dynam churn driver underneath. This is the scenario
// axis the related work judges physical-model schedulers by (Vieira et al.,
// Halldórsson & Mitra): how does the schedule hold up when the topology it
// was planned for stops existing? The adaptive schedulers (Centralized
// greedy, FDD, PDD) re-plan at epoch boundaries on the incrementally
// repaired forest; the static TDMA frame keeps serving its original links
// and pays for it with stranded subtrees.

import (
	"fmt"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/dynam"
	"scream/internal/flow"
	"scream/internal/sched"
	"scream/internal/stats"
	"scream/internal/traffic"
)

// churnLoad is the offered load of the churn figure in units of static
// greedy capacity: high enough that lost capacity shows, low enough that
// the adaptive schedulers have rerouting headroom.
const churnLoad = 0.7

// churnDowntimeFrac is the mean node downtime as a fraction of the horizon:
// long enough that an outage spans many epochs, short enough that the
// steady state is churn, not monotone decay.
const churnDowntimeFrac = 0.15

// ChurnRates returns the x axis of FigChurn: expected failures per node
// over the whole run.
func ChurnRates(quick bool) []float64 {
	if quick {
		return []float64{0, 1, 4}
	}
	return []float64{0, 0.5, 1, 2, 4}
}

// churnCurveNames are FigChurn's series, aligned with RunChurnCell's output.
func churnCurveNames() []string {
	return []string{"Centralized", "FDD", "PDD p=0.8", "TDMA (static)"}
}

// RunChurnCell runs one (failure-rate, seed) cell: every curve gets a fresh
// copy of the same scenario and the same churn timeline (the world seed
// derives from the cell seed only); arrival streams are seeded per curve,
// FigFlowLoad's convention, so cross-curve deltas average out over seeds
// rather than being arrival-paired. failures is the expected number of
// failures per node over the run; the returned values are delivered goodput
// in packets per second.
func RunChurnCell(failures float64, seed int64, quick bool) ([]float64, error) {
	horizonFrames := 1200
	if quick {
		horizonFrames = 300
	}
	type curve struct {
		name  string
		build func(s *Scenario, tm core.Timing) (flow.Scheduler, error)
	}
	curves := []curve{
		{"greedy", func(s *Scenario, tm core.Timing) (flow.Scheduler, error) {
			return flow.NewGreedyScheduler(s.Net.Channel, s.Links, sched.ByHeadIDDesc), nil
		}},
		{"fdd", func(s *Scenario, tm core.Timing) (flow.Scheduler, error) {
			return flow.NewProtocolScheduler(flow.ProtocolSchedulerConfig{
				Channel: s.Net.Channel, Sens: s.Net.Sens, Links: s.Links,
				Timing: tm, Variant: core.FDD, Seed: seed,
			})
		}},
		{"pdd", func(s *Scenario, tm core.Timing) (flow.Scheduler, error) {
			return flow.NewProtocolScheduler(flow.ProtocolSchedulerConfig{
				Channel: s.Net.Channel, Sens: s.Net.Sens, Links: s.Links,
				Timing: tm, Variant: core.PDD, P: 0.8, Seed: seed + 1,
			})
		}},
		{"tdma", func(s *Scenario, tm core.Timing) (flow.Scheduler, error) {
			return flow.NewTDMAScheduler(s.Links), nil
		}},
	}
	vals := make([]float64, len(curves))
	for ci, c := range curves {
		// Every curve rebuilds the scenario from the cell seed: the dynamics
		// world mutates the network in place, so curves must not share one.
		s, err := GridScenario(flowDensity, 5300+seed)
		if err != nil {
			return nil, err
		}
		tm := core.DefaultTiming()
		frame, err := flow.FrameTime(s.Net.Channel, s.Forest, s.Links, tm)
		if err != nil {
			return nil, err
		}
		horizon := des.Time(horizonFrames) * frame
		world, err := dynam.NewWorld(s.Net, s.Forest, dynam.Config{
			FailRate:     failures / horizon.Seconds(),
			MeanDowntime: des.Time(float64(horizon) * churnDowntimeFrac),
			Horizon:      horizon,
			Seed:         seed, // same timeline for every curve
		})
		if err != nil {
			return nil, err
		}
		sc, err := c.build(s, tm)
		if err != nil {
			return nil, err
		}
		rate := churnLoad / frame.Seconds()
		arrivals := make([]traffic.Arrival, s.Net.NumNodes())
		for u := range arrivals {
			if s.Forest.IsGateway(u) {
				continue
			}
			p, err := traffic.NewPoisson(rate)
			if err != nil {
				return nil, err
			}
			arrivals[u] = p
		}
		res, err := flow.Run(flow.Config{
			Forest:         s.Forest,
			Links:          s.Links,
			Scheduler:      sc,
			Timing:         tm,
			Arrivals:       arrivals,
			Horizon:        horizon,
			Seed:           flow.DeriveSeed(seed, int64(ci)),
			MaxService:     flowMaxService,
			FramesPerEpoch: flowFramesPerEpoch,
			Dynamics:       world,
			RepairCost:     tm.RepairCost(s.Net.InterferenceDiameter()),
		})
		if err != nil {
			return nil, fmt.Errorf("churn cell failures=%g seed=%d curve=%s: %w", failures, seed, c.name, err)
		}
		vals[ci] = res.GoodputPps
	}
	return vals, nil
}

// FigChurn sweeps the per-node failure rate and plots the goodput each
// scheduler sustains under churn. At rate 0 it reproduces the flow figure's
// ordering (spatial reuse separates Centralized from TDMA, control overhead
// separates the distributed protocols from Centralized); as the rate rises,
// the adaptive schedulers degrade gracefully — they lose the dead sources'
// offered load and pay repair floods — while the static TDMA frame also
// strands every subtree behind a dead relay until it recovers.
func FigChurn(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure(
		"Churn: Delivered Goodput vs Node Failure Rate (topology dynamics)",
		"expected failures per node per run", "delivered goodput (pkt/s)")
	xs := ChurnRates(opts.Quick)
	names := churnCurveNames()
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		return RunChurnCell(xs[xi], int64(si), opts.Quick)
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}
