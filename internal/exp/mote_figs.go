package exp

import (
	"scream/internal/mote"
	"scream/internal/stats"
)

// Fig4 regenerates Figure 4: percentage error in SCREAM detection vs SCREAM
// size in bytes, on the mote experiment (8 motes, 6 relays in a clique,
// initiator two hops from the monitor, 2000 screams at 100 ms).
func Fig4(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Fig 4: Percentage Error in SCREAM detection vs SCREAM size (bytes)", "SCREAM size (bytes)", "% error")
	sizes := []int{2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32}
	screams := 2000
	if opts.Quick {
		sizes = []int{2, 8, 24}
		screams = 150
	}
	series := fig.AddSeries("detection error")
	for _, b := range sizes {
		sample := stats.NewSample(opts.seeds())
		for seed := 0; seed < opts.seeds(); seed++ {
			cfg := mote.DefaultConfig(b)
			cfg.Screams = screams
			cfg.Seed = int64(seed + 1)
			res, err := mote.Run(cfg)
			if err != nil {
				return nil, err
			}
			sample.Add(res.ErrorPercent)
		}
		sum := sample.Summarize()
		series.Append(float64(b), sum.Mean, sum.CI95)
	}
	return fig, nil
}

// Fig5 regenerates Figure 5: a snapshot of the monitor's moving-average RSSI
// for 24-byte screams, showing clean periodic humps above the -60 dBm
// threshold.
func Fig5(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Fig 5: Moving Average of RSSI values (24-byte SCREAM)", "time (ms)", "RSSI moving average (dBm)")
	cfg := mote.DefaultConfig(24)
	cfg.Screams = 20
	if opts.Quick {
		cfg.Screams = 8
	}
	res, err := mote.Run(cfg)
	if err != nil {
		return nil, err
	}
	series := fig.AddSeries("RSSI MA")
	for _, p := range res.Trace {
		series.Append(float64(p.At)/1e6, p.DBm, 0)
	}
	thr := fig.AddSeries("threshold")
	if len(res.Trace) > 0 {
		first := res.Trace[0].At
		last := res.Trace[len(res.Trace)-1].At
		thr.Append(float64(first)/1e6, float64(cfg.ThresholdDBm), 0)
		thr.Append(float64(last)/1e6, float64(cfg.ThresholdDBm), 0)
	}
	return fig, nil
}
