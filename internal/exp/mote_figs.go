package exp

import (
	"scream/internal/mote"
	"scream/internal/stats"
)

// Fig4 regenerates Figure 4: percentage error in SCREAM detection vs SCREAM
// size in bytes, on the mote experiment (8 motes, 6 relays in a clique,
// initiator two hops from the monitor, 2000 screams at 100 ms).
func Fig4(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Fig 4: Percentage Error in SCREAM detection vs SCREAM size (bytes)", "SCREAM size (bytes)", "% error")
	sizes := []int{2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32}
	screams := 2000
	if opts.Quick {
		sizes = []int{2, 8, 24}
		screams = 150
	}
	xs := make([]float64, len(sizes))
	for i, b := range sizes {
		xs[i] = float64(b)
	}
	err := runGrid(fig, xs, []string{"detection error"}, opts, func(xi, si int) ([]float64, error) {
		cfg := mote.DefaultConfig(sizes[xi])
		cfg.Screams = screams
		cfg.Seed = int64(si + 1)
		res, err := mote.Run(cfg)
		if err != nil {
			return nil, err
		}
		return []float64{res.ErrorPercent}, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig5 regenerates Figure 5: a snapshot of the monitor's moving-average RSSI
// for 24-byte screams, showing clean periodic humps above the -60 dBm
// threshold. It is a single deterministic run producing a trace, not a
// (x, seed) grid, so it does not go through the cell engine.
func Fig5(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Fig 5: Moving Average of RSSI values (24-byte SCREAM)", "time (ms)", "RSSI moving average (dBm)")
	cfg := mote.DefaultConfig(24)
	cfg.Screams = 20
	if opts.Quick {
		cfg.Screams = 8
	}
	res, err := mote.Run(cfg)
	if err != nil {
		return nil, err
	}
	series := fig.AddSeries("RSSI MA")
	for _, p := range res.Trace {
		series.Append(float64(p.At)/1e6, p.DBm, 0)
	}
	thr := fig.AddSeries("threshold")
	if len(res.Trace) > 0 {
		first := res.Trace[0].At
		last := res.Trace[len(res.Trace)-1].At
		thr.Append(float64(first)/1e6, float64(cfg.ThresholdDBm), 0)
		thr.Append(float64(last)/1e6, float64(cfg.ThresholdDBm), 0)
	}
	return fig, nil
}
