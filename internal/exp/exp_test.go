package exp

import (
	"testing"

	"scream/internal/core"
)

var quick = Options{Quick: true, Seeds: 2}

func TestGridScenario(t *testing.T) {
	s, err := GridScenario(10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Net.NumNodes() != 64 {
		t.Fatalf("want 64 nodes, got %d", s.Net.NumNodes())
	}
	if !s.Net.Connected() {
		t.Fatal("grid scenario must be connected")
	}
	if len(s.Links) != 60 {
		t.Errorf("64 nodes with 4 gateways should yield 60 links, got %d", len(s.Links))
	}
	if s.TotalDemand() <= 0 {
		t.Error("positive total demand expected")
	}
}

func TestGridScenarioConnectedAcrossDensities(t *testing.T) {
	for _, d := range Densities(false) {
		s, err := GridScenario(d, 7)
		if err != nil {
			t.Fatalf("density %g: %v", d, err)
		}
		if !s.Net.Connected() {
			t.Errorf("density %g: disconnected grid", d)
		}
		if id := s.Net.InterferenceDiameter(); id <= 0 {
			t.Errorf("density %g: bad interference diameter %d", d, id)
		}
	}
}

func TestUniformScenario(t *testing.T) {
	s, err := UniformScenario(10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Net.NumNodes() != 64 || len(s.Links) != 60 {
		t.Errorf("nodes=%d links=%d", s.Net.NumNodes(), len(s.Links))
	}
}

func TestRunCentralizedAndProtocolAgree(t *testing.T) {
	// Theorem 4 at the harness level: FDD improvement == centralized
	// improvement on the same scenario.
	s, err := GridScenario(10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunCentralized(s)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := RunProtocol(s, core.FDD, 0, core.DefaultTiming(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != f {
		t.Errorf("centralized improvement %.2f != FDD %.2f", c, f)
	}
}

func TestFig4Shape(t *testing.T) {
	fig, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Lookup("detection error")
	if s == nil || len(s.Points) != 3 {
		t.Fatal("missing detection error series")
	}
	// Error must fall with scream size; 24B must be near zero.
	if s.Points[0].Y < s.Points[2].Y {
		t.Errorf("error should decrease with size: %v", s.Points)
	}
	if s.Points[2].Y > 10 {
		t.Errorf("24-byte error should be negligible, got %.1f%%", s.Points[2].Y)
	}
}

func TestFig5Shape(t *testing.T) {
	fig, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	ma := fig.Lookup("RSSI MA")
	if ma == nil || len(ma.Points) == 0 {
		t.Fatal("missing RSSI MA series")
	}
	above := 0
	for _, p := range ma.Points {
		if p.Y > -60 {
			above++
		}
	}
	if above == 0 {
		t.Error("trace should cross the -60 dBm threshold periodically")
	}
}

func TestFig6Shape(t *testing.T) {
	fig, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	cent := fig.Lookup("Centralized")
	fdd := fig.Lookup("FDD")
	pdd2 := fig.Lookup("PDD p=0.2")
	pdd8 := fig.Lookup("PDD p=0.8")
	if cent == nil || fdd == nil || pdd2 == nil || pdd8 == nil {
		t.Fatal("missing series")
	}
	for i := range cent.Points {
		// FDD tracks the centralized algorithm exactly (Theorem 4).
		if fdd.Points[i].Y != cent.Points[i].Y {
			t.Errorf("point %d: FDD %.2f != centralized %.2f", i, fdd.Points[i].Y, cent.Points[i].Y)
		}
		// PDD must not beat FDD meaningfully (paper: ~10 points worse).
		if pdd8.Points[i].Y > fdd.Points[i].Y+2 {
			t.Errorf("point %d: PDD p=0.8 (%.1f) should not beat FDD (%.1f)", i, pdd8.Points[i].Y, fdd.Points[i].Y)
		}
	}
	// Sparse deployments have deep forests and strong spatial reuse: the
	// first point should be in the paper's high-improvement regime.
	first, last := cent.Points[0], cent.Points[len(cent.Points)-1]
	if first.Y < 40 {
		t.Errorf("sparse grid improvement %.1f%% too small; expected ~60%%", first.Y)
	}
	// Density flattens the forest onto the gateways, eroding reuse.
	if last.Y >= first.Y {
		t.Errorf("improvement should decline with density: %.1f%% -> %.1f%%", first.Y, last.Y)
	}
	t.Logf("Fig6 (quick): centralized %.1f%% -> %.1f%%, PDD0.8 %.1f%% -> %.1f%%",
		first.Y, last.Y, pdd8.Points[0].Y, pdd8.Points[len(pdd8.Points)-1].Y)
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	cent := fig.Lookup("Centralized")
	fdd := fig.Lookup("FDD")
	pdd := fig.Lookup("PDD p=0.8")
	if cent == nil || fdd == nil || pdd == nil {
		t.Fatal("missing series")
	}
	for i := range cent.Points {
		if fdd.Points[i].Y != cent.Points[i].Y {
			t.Errorf("point %d: FDD %.2f != centralized %.2f", i, fdd.Points[i].Y, cent.Points[i].Y)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	fig, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"FDD Scream size (bytes)", "PDD Scream size (bytes)", "FDD Diameter", "PDD Diameter"} {
		s := fig.Lookup(name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		// Execution time must grow monotonically with the swept parameter.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y {
				t.Errorf("%s: time not monotone at %v", name, s.Points[i].X)
			}
		}
	}
	// PDD must be faster than FDD everywhere.
	fddS := fig.Lookup("FDD Scream size (bytes)")
	pddS := fig.Lookup("PDD Scream size (bytes)")
	for i := range fddS.Points {
		if pddS.Points[i].Y >= fddS.Points[i].Y {
			t.Errorf("PDD should be faster than FDD at x=%v", fddS.Points[i].X)
		}
	}
	t.Logf("Fig8 (quick): FDD %.2fs..%.2fs, PDD %.2fs..%.2fs",
		fddS.Points[0].Y, fddS.Points[len(fddS.Points)-1].Y,
		pddS.Points[0].Y, pddS.Points[len(pddS.Points)-1].Y)
}

func TestFig9Shape(t *testing.T) {
	fig, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	fdd := fig.Lookup("FDD")
	pdd := fig.Lookup("PDD p=0.2")
	if fdd == nil || pdd == nil {
		t.Fatal("missing series")
	}
	// Time grows with skew, and by orders of magnitude from 1us to 1s.
	if fdd.Points[len(fdd.Points)-1].Y < 100*fdd.Points[0].Y {
		t.Errorf("FDD at 1s skew should dwarf 1us skew: %v", fdd.Points)
	}
	for i := range fdd.Points {
		if pdd.Points[i].Y >= fdd.Points[i].Y {
			t.Errorf("PDD should be faster than FDD at skew %v", fdd.Points[i].X)
		}
	}
	t.Logf("Fig9 (quick): FDD %.2fs..%.0fs, PDD %.2fs..%.0fs",
		fdd.Points[0].Y, fdd.Points[len(fdd.Points)-1].Y, pdd.Points[0].Y, pdd.Points[len(pdd.Points)-1].Y)
}

func TestAblationPDDProbability(t *testing.T) {
	fig, err := AblationPDDProbability(quick)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Lookup("PDD improvement") == nil || fig.Lookup("PDD exec time (s)") == nil {
		t.Fatal("missing series")
	}
}

func TestAblationGreedyOrdering(t *testing.T) {
	fig, err := AblationGreedyOrdering(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 orderings, got %d", len(fig.Series))
	}
}

func TestAblationScreamK(t *testing.T) {
	fig, err := AblationScreamK(quick)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y <= s.Points[i-1].Y {
			t.Errorf("exec time must grow with K multiplier: %v", s.Points)
		}
	}
}

func TestAblationAckModel(t *testing.T) {
	fig, err := AblationAckModel(quick)
	if err != nil {
		t.Fatal(err)
	}
	full := fig.Lookup("schedule length (full model)")
	data := fig.Lookup("data-only")
	if data == nil {
		data = fig.Lookup("schedule length (data-only)")
	}
	if full == nil || data == nil {
		t.Fatal("missing series")
	}
	for i := range full.Points {
		// Greedy is not monotone under constraint relaxation, so allow a
		// small inversion; grossly longer data-only schedules would mean
		// the relaxation is wired up wrong.
		if data.Points[i].Y > full.Points[i].Y*1.05+1 {
			t.Errorf("data-only schedule much longer than full at %v: %.1f vs %.1f",
				full.Points[i].X, data.Points[i].Y, full.Points[i].Y)
		}
	}
}

func TestAblationFDDSeal(t *testing.T) {
	fig, err := AblationFDDSeal(quick)
	if err != nil {
		t.Fatal(err)
	}
	normal := fig.Lookup("paper seal")
	asap := fig.Lookup("ASAP seal")
	for i := range normal.Points {
		if asap.Points[i].Y >= normal.Points[i].Y {
			t.Errorf("ASAP seal should be faster at %v", normal.Points[i].X)
		}
	}
}

func TestAblationBalancedRouting(t *testing.T) {
	fig, err := AblationBalancedRouting(quick)
	if err != nil {
		t.Fatal(err)
	}
	tdPlain := fig.Lookup("TD (random tie-break)")
	tdBal := fig.Lookup("TD (balanced)")
	if tdPlain == nil || tdBal == nil {
		t.Fatal("missing series")
	}
	// Balancing must not blow up TD (hop counts are identical; only
	// tie-breaks differ, so TD should match or shrink slightly).
	for i := range tdPlain.Points {
		if tdBal.Points[i].Y > tdPlain.Points[i].Y*1.02 {
			t.Errorf("balanced TD larger at %v: %.0f vs %.0f",
				tdPlain.Points[i].X, tdBal.Points[i].Y, tdPlain.Points[i].Y)
		}
	}
}

func TestAblationMoteRelays(t *testing.T) {
	fig, err := AblationMoteRelays(quick)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	for _, p := range s.Points {
		if p.Y > 25 {
			t.Errorf("detection error %.1f%% at %v relays: collisions must not break SCREAM", p.Y, p.X)
		}
	}
}

func TestAblationShadowing(t *testing.T) {
	fig, err := AblationShadowing(quick)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Lookup("GreedyPhysical improvement")
	if s == nil || len(s.Points) != 3 {
		t.Fatal("missing improvement series")
	}
	for _, p := range s.Points {
		if p.Y < 0 || p.Y > 100 {
			t.Errorf("improvement %.1f out of range at sigma %v", p.Y, p.X)
		}
	}
}

func TestShadowedPipelineTheorem4(t *testing.T) {
	// FDD == GreedyPhysical must hold on irregular (shadowed) channels
	// too: nothing in Theorem 4 depends on geometry.
	for _, sigma := range []float64{2, 6} {
		if err := VerifyShadowedPipeline(sigma, 3); err != nil {
			t.Errorf("sigma %v: %v", sigma, err)
		}
	}
}
