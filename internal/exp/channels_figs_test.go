package exp

// Shape and headline pins for the multi-channel figure: channels must buy
// strictly shorter schedules for every scheduler and strictly higher
// delivered goodput under saturating load (worker determinism is covered by
// TestEngineDeterminism).

import "testing"

func TestFigChannelsShapeAndMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dynamic traffic simulations")
	}
	fig, err := FigChannels(Options{Quick: true, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := ChannelCounts(true)
	names := channelsCurveNames()
	if len(fig.Series) != len(names) {
		t.Fatalf("got %d series, want %d", len(fig.Series), len(names))
	}
	for si, name := range names {
		s := fig.Lookup(name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		if len(s.Points) != len(counts) {
			t.Fatalf("%s: %d points for %d channel counts", name, len(s.Points), len(counts))
		}
		goodput := si < 4 // first four series are goodput, rest schedule length
		for i := 1; i < len(s.Points); i++ {
			prev, cur := s.Points[i-1].Y, s.Points[i].Y
			if goodput && cur <= prev {
				t.Errorf("%s: goodput not strictly increasing with channels: %.1f -> %.1f at C=%d",
					name, prev, cur, counts[i])
			}
			if !goodput && cur >= prev {
				t.Errorf("%s: schedule length not strictly decreasing with channels: %.0f -> %.0f at C=%d",
					name, prev, cur, counts[i])
			}
		}
	}
}
