package exp

import (
	"fmt"
	"math/rand"

	"scream/internal/core"
	"scream/internal/phys"
	"scream/internal/sched"
	"scream/internal/stats"
	"scream/internal/topo"
)

// AblationShadowing re-runs the Figure 6 operating point under log-normal
// shadowing of increasing sigma (the paper's propagation model is log-normal
// with path-loss exponent 3; the headline figures use its deterministic
// component). Two questions: does the scheduling pipeline stay correct when
// link gains are irregular (every schedule must still verify — the SINR
// machinery never assumed geometry), and how does irregularity move the
// schedule-length improvement.
func AblationShadowing(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: log-normal shadowing", "shadowing sigma (dB)", "% improvement over linear")
	sigmas := []float64{0, 2, 4, 6, 8}
	if opts.Quick {
		sigmas = []float64{0, 4, 8}
	}
	names := []string{"GreedyPhysical improvement", "interference diameter"}
	err := runGrid(fig, sigmas, names, opts, func(xi, si int) ([]float64, error) {
		sigma := sigmas[xi]
		s, err := shadowedGridScenario(5000, sigma, 137+int64(si))
		if err != nil {
			return nil, err
		}
		imp, err := RunCentralized(s)
		if err != nil {
			return nil, fmt.Errorf("sigma %g seed %d: %w", sigma, si, err)
		}
		return []float64{imp, float64(s.Net.InterferenceDiameter())}, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// shadowedGridScenario is GridScenario with log-normal shadowing; draws are
// retried (with fresh shadowing) until the communication graph is connected,
// since deep fades can sever the thin-margin grid.
func shadowedGridScenario(density, sigma float64, seed int64) (*Scenario, error) {
	side := topo.SideForDensity(64, density)
	step := side / 7
	p := topo.DefaultParams()
	p.ShadowSigmaDB = sigma
	// Shadowing needs margin to leave links alive; use a slightly hotter
	// radio than the headline figures.
	power := phys.DBm(gridPowerDBm + 6).MilliWatts()
	for attempt := 0; attempt < 25; attempt++ {
		rng := rand.New(rand.NewSource(seed + int64(1000*attempt)))
		net, err := topo.NewGrid(topo.GridConfig{
			Rows: 8, Cols: 8, Step: step, TxPowerMW: power, Params: p,
		}, rng)
		if err != nil {
			return nil, err
		}
		if !net.Connected() || net.InterferenceDiameter() < 0 {
			continue
		}
		s, err := finishScenario(net, seed)
		if err != nil {
			return nil, err
		}
		// Every link must be schedulable alone, or the instance is
		// degenerate under this fade draw.
		ok := true
		for _, l := range s.Links {
			if !net.Channel.FeasibleSet([]phys.Link{l}) {
				ok = false
				break
			}
		}
		if ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("exp: no connected shadowed grid after 25 draws (sigma=%g)", sigma)
}

// VerifyShadowedPipeline runs FDD end-to-end on a shadowed scenario and
// verifies the schedule — used by tests and callable from the harness.
func VerifyShadowedPipeline(sigma float64, seed int64) error {
	s, err := shadowedGridScenario(5000, sigma, seed)
	if err != nil {
		return err
	}
	imp, res, err := RunProtocol(s, core.FDD, 0, core.DefaultTiming(), 0, seed)
	if err != nil {
		return err
	}
	if imp < 0 {
		return fmt.Errorf("exp: negative improvement %.1f under shadowing", imp)
	}
	want, err := sched.GreedyPhysical(s.Net.Channel, s.Links, s.Demands, sched.ByHeadIDDesc)
	if err != nil {
		return err
	}
	if !res.Schedule.Equal(want) {
		return fmt.Errorf("exp: Theorem 4 equality failed under shadowing sigma=%g", sigma)
	}
	return nil
}
