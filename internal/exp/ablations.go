package exp

import (
	"fmt"

	"scream/internal/core"
	"scream/internal/sched"
	"scream/internal/stats"
)

// ablationDensity is the operating point for the design-choice ablations: a
// mid-sweep density where spatial reuse is plentiful.
const ablationDensity = 10000

// AblationPDDProbability sweeps PDD's activation probability on a finer grid
// than Figure 6, quantifying the paper's observation that small p packs
// slots slightly better (fewer mutually-interfering simultaneous trials).
func AblationPDDProbability(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: PDD activation probability", "p", "% improvement over linear")
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if opts.Quick {
		ps = []float64{0.2, 0.5, 0.8}
	}
	tm := core.DefaultTiming()
	names := []string{"PDD improvement", "PDD exec time (s)"}
	err := runGrid(fig, ps, names, opts, func(xi, si int) ([]float64, error) {
		s, err := GridScenario(ablationDensity, 33+int64(si))
		if err != nil {
			return nil, err
		}
		imp, res, err := RunProtocol(s, core.PDD, ps[xi], tm, 0, int64(si))
		if err != nil {
			return nil, err
		}
		return []float64{imp, res.ExecTime.Seconds()}, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// AblationGreedyOrdering compares GreedyPhysical's edge orderings: the
// head-ID order FDD emulates vs demand-descending vs length-descending.
func AblationGreedyOrdering(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: GreedyPhysical edge ordering", "density (nodes/km^2)", "% improvement over linear")
	orders := []sched.Ordering{sched.ByHeadIDDesc, sched.ByDemandDesc, sched.ByLengthDesc}
	names := make([]string, len(orders))
	for i, o := range orders {
		names[i] = o.String()
	}
	xs := Densities(opts.Quick)
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		s, err := GridScenario(xs[xi], 55+int64(si))
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(orders))
		for i, o := range orders {
			sc, err := sched.GreedyPhysical(s.Net.Channel, s.Links, s.Demands, o)
			if err != nil {
				return nil, err
			}
			vals[i] = sched.ImprovementOverLinear(sc.Length(), s.TotalDemand())
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// AblationScreamK quantifies the cost of over-provisioning K beyond the true
// interference diameter: schedules are identical, execution time grows
// linearly (correctness only needs K >= ID; Section IV-B).
func AblationScreamK(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: SCREAM length K vs interference diameter", "K / ID(G_S)", "FDD execution time (s)")
	multipliers := []float64{1, 1.5, 2, 3, 4, 6}
	if opts.Quick {
		multipliers = []float64{1, 2, 4}
	}
	tm := core.DefaultTiming()
	err := runGrid(fig, multipliers, []string{"FDD exec time"}, opts, func(xi, si int) ([]float64, error) {
		s, err := GridScenario(ablationDensity, 66+int64(si))
		if err != nil {
			return nil, err
		}
		id := s.Net.InterferenceDiameter()
		k := int(float64(id) * multipliers[xi])
		if k < id {
			k = id
		}
		_, res, err := RunProtocol(s, core.FDD, 0, tm, k, int64(si))
		if err != nil {
			return nil, err
		}
		return []float64{res.ExecTime.Seconds()}, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// AblationAckModel compares the paper's interference model (data + ACK
// sub-slots) against the classic data-only physical model: the data-only
// greedy packs slots tighter but a fraction of its slots are infeasible once
// ACK interference is accounted for.
func AblationAckModel(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: ACK sub-slot modelling", "density (nodes/km^2)", "value")
	names := []string{
		"schedule length (full model)",
		"schedule length (data-only)",
		"% data-only slots infeasible under full model",
	}
	xs := Densities(opts.Quick)
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		s, err := GridScenario(xs[xi], 88+int64(si))
		if err != nil {
			return nil, err
		}
		full, err := sched.GreedyPhysical(s.Net.Channel, s.Links, s.Demands, sched.ByHeadIDDesc)
		if err != nil {
			return nil, err
		}
		dataOnly, err := sched.GreedyPhysicalDataOnly(s.Net.Channel, s.Links, s.Demands, sched.ByHeadIDDesc)
		if err != nil {
			return nil, err
		}
		// Note: greedy packing is not monotone under constraint
		// relaxation, so the data-only schedule is usually — but not
		// always — the shorter one; the figure reports both.
		bad := sched.CountInfeasibleSlots(s.Net.Channel, dataOnly)
		return []float64{
			float64(full.Length()),
			float64(dataOnly.Length()),
			100 * float64(bad) / float64(dataOnly.Length()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// AblationFDDSeal measures the ASAP-seal extension: identical schedules,
// strictly less execution time.
func AblationFDDSeal(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: FDD slot sealing", "density (nodes/km^2)", "FDD execution time (s)")
	tm := core.DefaultTiming()
	xs := Densities(opts.Quick)
	err := runGrid(fig, xs, []string{"paper seal", "ASAP seal"}, opts, func(xi, si int) ([]float64, error) {
		s, err := GridScenario(xs[xi], 44+int64(si))
		if err != nil {
			return nil, err
		}
		id := s.Net.InterferenceDiameter()
		run := func(asapSeal bool) (*core.Result, error) {
			b, err := core.NewIdealBackend(s.Net.Channel, s.Net.Sens, id, tm, false)
			if err != nil {
				return nil, err
			}
			return core.Run(core.Config{
				Variant: core.FDD, Links: s.Links, Demands: s.Demands,
				Backend: b, ASAPSeal: asapSeal,
			})
		}
		rn, err := run(false)
		if err != nil {
			return nil, err
		}
		ra, err := run(true)
		if err != nil {
			return nil, err
		}
		if !rn.Schedule.Equal(ra.Schedule) {
			return nil, fmt.Errorf("ASAP seal changed the schedule at density %g seed %d", xs[xi], si)
		}
		return []float64{rn.ExecTime.Seconds(), ra.ExecTime.Seconds()}, nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}
