package exp

import (
	"fmt"

	"scream/internal/core"
	"scream/internal/sched"
	"scream/internal/stats"
)

// ablationDensity is the operating point for the design-choice ablations: a
// mid-sweep density where spatial reuse is plentiful.
const ablationDensity = 10000

// AblationPDDProbability sweeps PDD's activation probability on a finer grid
// than Figure 6, quantifying the paper's observation that small p packs
// slots slightly better (fewer mutually-interfering simultaneous trials).
func AblationPDDProbability(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: PDD activation probability", "p", "% improvement over linear")
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if opts.Quick {
		ps = []float64{0.2, 0.5, 0.8}
	}
	tm := core.DefaultTiming()
	imp := fig.AddSeries("PDD improvement")
	execT := fig.AddSeries("PDD exec time (s)")
	for _, p := range ps {
		impS := stats.NewSample(opts.seeds())
		timeS := stats.NewSample(opts.seeds())
		for seed := 0; seed < opts.seeds(); seed++ {
			s, err := GridScenario(ablationDensity, 33+int64(seed))
			if err != nil {
				return nil, err
			}
			i, res, err := RunProtocol(s, core.PDD, p, tm, 0, int64(seed))
			if err != nil {
				return nil, err
			}
			impS.Add(i)
			timeS.Add(res.ExecTime.Seconds())
		}
		is, ts := impS.Summarize(), timeS.Summarize()
		imp.Append(p, is.Mean, is.CI95)
		execT.Append(p, ts.Mean, ts.CI95)
	}
	return fig, nil
}

// AblationGreedyOrdering compares GreedyPhysical's edge orderings: the
// head-ID order FDD emulates vs demand-descending vs length-descending.
func AblationGreedyOrdering(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: GreedyPhysical edge ordering", "density (nodes/km^2)", "% improvement over linear")
	orders := []sched.Ordering{sched.ByHeadIDDesc, sched.ByDemandDesc, sched.ByLengthDesc}
	series := make([]*stats.Series, len(orders))
	for i, o := range orders {
		series[i] = fig.AddSeries(o.String())
	}
	for _, density := range Densities(opts.Quick) {
		samples := make([]*stats.Sample, len(orders))
		for i := range samples {
			samples[i] = stats.NewSample(opts.seeds())
		}
		for seed := 0; seed < opts.seeds(); seed++ {
			s, err := GridScenario(density, 55+int64(seed))
			if err != nil {
				return nil, err
			}
			for i, o := range orders {
				sc, err := sched.GreedyPhysical(s.Net.Channel, s.Links, s.Demands, o)
				if err != nil {
					return nil, err
				}
				samples[i].Add(sched.ImprovementOverLinear(sc.Length(), s.TotalDemand()))
			}
		}
		for i := range orders {
			sum := samples[i].Summarize()
			series[i].Append(density, sum.Mean, sum.CI95)
		}
	}
	return fig, nil
}

// AblationScreamK quantifies the cost of over-provisioning K beyond the true
// interference diameter: schedules are identical, execution time grows
// linearly (correctness only needs K >= ID; Section IV-B).
func AblationScreamK(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: SCREAM length K vs interference diameter", "K / ID(G_S)", "FDD execution time (s)")
	multipliers := []float64{1, 1.5, 2, 3, 4, 6}
	if opts.Quick {
		multipliers = []float64{1, 2, 4}
	}
	tm := core.DefaultTiming()
	series := fig.AddSeries("FDD exec time")
	for _, m := range multipliers {
		sample := stats.NewSample(opts.seeds())
		for seed := 0; seed < opts.seeds(); seed++ {
			s, err := GridScenario(ablationDensity, 66+int64(seed))
			if err != nil {
				return nil, err
			}
			id := s.Net.InterferenceDiameter()
			k := int(float64(id) * m)
			if k < id {
				k = id
			}
			_, res, err := RunProtocol(s, core.FDD, 0, tm, k, int64(seed))
			if err != nil {
				return nil, err
			}
			sample.Add(res.ExecTime.Seconds())
		}
		sum := sample.Summarize()
		series.Append(m, sum.Mean, sum.CI95)
	}
	return fig, nil
}

// AblationAckModel compares the paper's interference model (data + ACK
// sub-slots) against the classic data-only physical model: the data-only
// greedy packs slots tighter but a fraction of its slots are infeasible once
// ACK interference is accounted for.
func AblationAckModel(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: ACK sub-slot modelling", "density (nodes/km^2)", "value")
	fullLen := fig.AddSeries("schedule length (full model)")
	dataLen := fig.AddSeries("schedule length (data-only)")
	badPct := fig.AddSeries("% data-only slots infeasible under full model")
	for _, density := range Densities(opts.Quick) {
		fullS := stats.NewSample(opts.seeds())
		dataS := stats.NewSample(opts.seeds())
		badS := stats.NewSample(opts.seeds())
		for seed := 0; seed < opts.seeds(); seed++ {
			s, err := GridScenario(density, 88+int64(seed))
			if err != nil {
				return nil, err
			}
			full, err := sched.GreedyPhysical(s.Net.Channel, s.Links, s.Demands, sched.ByHeadIDDesc)
			if err != nil {
				return nil, err
			}
			dataOnly, err := sched.GreedyPhysicalDataOnly(s.Net.Channel, s.Links, s.Demands, sched.ByHeadIDDesc)
			if err != nil {
				return nil, err
			}
			// Note: greedy packing is not monotone under constraint
			// relaxation, so the data-only schedule is usually — but not
			// always — the shorter one; the figure reports both.
			fullS.Add(float64(full.Length()))
			dataS.Add(float64(dataOnly.Length()))
			bad := sched.CountInfeasibleSlots(s.Net.Channel, dataOnly)
			badS.Add(100 * float64(bad) / float64(dataOnly.Length()))
		}
		f, d, b := fullS.Summarize(), dataS.Summarize(), badS.Summarize()
		fullLen.Append(density, f.Mean, f.CI95)
		dataLen.Append(density, d.Mean, d.CI95)
		badPct.Append(density, b.Mean, b.CI95)
	}
	return fig, nil
}

// AblationFDDSeal measures the ASAP-seal extension: identical schedules,
// strictly less execution time.
func AblationFDDSeal(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure("Ablation: FDD slot sealing", "density (nodes/km^2)", "FDD execution time (s)")
	normal := fig.AddSeries("paper seal")
	asap := fig.AddSeries("ASAP seal")
	tm := core.DefaultTiming()
	for _, density := range Densities(opts.Quick) {
		nS := stats.NewSample(opts.seeds())
		aS := stats.NewSample(opts.seeds())
		for seed := 0; seed < opts.seeds(); seed++ {
			s, err := GridScenario(density, 44+int64(seed))
			if err != nil {
				return nil, err
			}
			id := s.Net.InterferenceDiameter()
			run := func(asapSeal bool) (*core.Result, error) {
				b, err := core.NewIdealBackend(s.Net.Channel, s.Net.Sens, id, tm, false)
				if err != nil {
					return nil, err
				}
				return core.Run(core.Config{
					Variant: core.FDD, Links: s.Links, Demands: s.Demands,
					Backend: b, ASAPSeal: asapSeal,
				})
			}
			rn, err := run(false)
			if err != nil {
				return nil, err
			}
			ra, err := run(true)
			if err != nil {
				return nil, err
			}
			if !rn.Schedule.Equal(ra.Schedule) {
				return nil, fmt.Errorf("ASAP seal changed the schedule at density %g seed %d", density, seed)
			}
			nS.Add(rn.ExecTime.Seconds())
			aS.Add(ra.ExecTime.Seconds())
		}
		n, a := nS.Summarize(), aS.Summarize()
		normal.Append(density, n.Mean, n.CI95)
		asap.Append(density, a.Mean, a.CI95)
	}
	return fig, nil
}
