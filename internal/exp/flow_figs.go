package exp

// The dynamic-traffic figure: offered load vs delivered goodput for the
// distributed protocols and the centralized baselines, measured by the
// flow-level simulator (internal/flow) instead of by one-shot schedule
// length. This is the evaluation style of the related work (Vieira et al.,
// Zhou et al.): sustain continuous arrivals and observe what the scheduler
// actually delivers.

import (
	"fmt"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/flow"
	"scream/internal/stats"
	"scream/internal/traffic"
)

// flowDensity is the deployment density of the flow figure: the paper's
// sparsest planned scenario, where the physical model admits real spatial
// reuse — the regime in which scheduler quality shows up as goodput.
const flowDensity = 1000

// flowFramesPerEpoch is the schedule-reuse amortization of the flow figure:
// each epoch replays its schedule this many frames before the next control
// phase. An FDD re-schedule costs ~150 data frames of simulated time on this
// scenario, so the value sets how much of that cost the epoch absorbs.
const flowFramesPerEpoch = 64

// flowMaxService is the per-link service quota per control epoch: it bounds
// epoch length under overload so re-scheduling stays responsive.
const flowMaxService = 8

// FlowLoads returns the offered-load sweep (fraction of the greedy
// schedule's capacity) of FigFlowLoad.
func FlowLoads(quick bool) []float64 {
	if quick {
		return []float64{0.5, 1.0, 1.5}
	}
	return []float64{0.3, 0.5, 0.7, 0.85, 1.0, 1.2, 1.5}
}

// flowSchedulers builds the figure's four curves for one scenario through
// the flow-scheduler registry: the centralized greedy upper bound, the two
// distributed protocols at their real control cost, and the TDMA floor.
func flowSchedulers(s *Scenario, tm core.Timing, seed int64) ([]flow.Scheduler, error) {
	base := flow.SchedulerEnv{
		Channel: s.Net.Channel, Sens: s.Net.Sens, Links: s.Links, Timing: tm,
	}
	var out []flow.Scheduler
	for _, name := range []string{"greedy", "fdd", "pdd", "tdma"} {
		def, err := flow.SchedulerDefByName(name)
		if err != nil {
			return nil, err
		}
		env := base
		switch name {
		case "fdd":
			env.Seed = seed
		case "pdd":
			env.P = 0.8
			env.Seed = seed + 1
		}
		sc, err := def.New(env)
		if err != nil {
			return nil, fmt.Errorf("flow figure: build %s: %w", name, err)
		}
		out = append(out, sc)
	}
	return out, nil
}

// flowCurveNames are FigFlowLoad's series, aligned with flowSchedulers.
func flowCurveNames() []string {
	return []string{"Centralized", "FDD", "PDD p=0.8", "TDMA"}
}

// RunFlowCell runs one (load, seed) cell of the flow figure for every curve
// and returns delivered goodput in packets per second per curve.
func RunFlowCell(load float64, seed int64, quick bool) ([]float64, error) {
	s, err := GridScenario(flowDensity, 4200+seed)
	if err != nil {
		return nil, err
	}
	tm := core.DefaultTiming()
	frame, err := flow.FrameTime(s.Net.Channel, s.Forest, s.Links, tm)
	if err != nil {
		return nil, err
	}
	rate := load / frame.Seconds()
	horizonFrames := 1600
	if quick {
		horizonFrames = 400
	}
	horizon := des.Time(horizonFrames) * frame
	schedulers, err := flowSchedulers(s, tm, seed)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(schedulers))
	for ci, sc := range schedulers {
		arrivals := make([]traffic.Arrival, s.Net.NumNodes())
		for u := range arrivals {
			if s.Forest.IsGateway(u) {
				continue
			}
			p, err := traffic.NewPoisson(rate)
			if err != nil {
				return nil, err
			}
			arrivals[u] = p
		}
		res, err := flow.Run(flow.Config{
			Forest:         s.Forest,
			Links:          s.Links,
			Scheduler:      sc,
			Timing:         tm,
			Arrivals:       arrivals,
			Horizon:        horizon,
			Seed:           flow.DeriveSeed(seed, int64(ci)),
			MaxService:     flowMaxService,
			FramesPerEpoch: flowFramesPerEpoch,
		})
		if err != nil {
			return nil, fmt.Errorf("flow cell load=%g seed=%d curve=%s: %w", load, seed, sc.Name, err)
		}
		vals[ci] = res.GoodputPps
	}
	return vals, nil
}

// FigFlowLoad sweeps offered load (as a fraction of the greedy schedule's
// static capacity) and plots the goodput each scheduler actually delivers
// when run dynamically: epoch-based re-scheduling against backlog snapshots,
// real control cost for the distributed protocols, zero (genie) control cost
// for Centralized and TDMA. Below saturation every curve tracks the offered
// line; beyond it each plateaus at its own effective capacity — spatial
// reuse separates Centralized from TDMA, and control overhead separates the
// distributed protocols from Centralized.
func FigFlowLoad(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure(
		"FlowLoad: Delivered Goodput vs Offered Load (dynamic traffic)",
		"offered load (x static capacity)", "delivered goodput (pkt/s)")
	xs := FlowLoads(opts.Quick)
	names := flowCurveNames()
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		return RunFlowCell(xs[xi], int64(si), opts.Quick)
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}
