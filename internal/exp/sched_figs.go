package exp

// The scheduler-family figure: offered load × topology sweep showing which
// scheduler wins where. Every curve is one (scheduler, topology) pair run
// through the flow-level simulator under Zipf-skewed hotspot arrivals — the
// backlog regime that separates queue-aware ordering from a static order.
// All four schedulers pay zero (genie) control cost, so the figure isolates
// scheduling quality: Greedy is the static head-ID order of the paper,
// MaxWeight re-ranks by backlog×rate each epoch (arXiv:1106.1590), FanZhang
// is the length-class approximation scheduler (arXiv:0910.5215), and TDMA is
// the no-reuse floor. The exact optimality gap of the same family on small
// instances is pinned by internal/sched/gapharness.

import (
	"fmt"
	"math/rand"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/flow"
	"scream/internal/stats"
	"scream/internal/traffic"
)

// schedZipfS and schedZipfMax shape the hotspot skew of the figure's
// arrivals (traffic.HotspotRates): s=1.5 over multipliers up to 32 puts most
// of the offered load on a handful of routers.
const (
	schedZipfS   = 1.5
	schedZipfMax = 32
)

// schedFramesPerEpoch is the schedule-reuse amortization of the sched
// figure: short enough that the backlog snapshot the queue-aware scheduler
// ranks by is fresh (the quantity under study), long enough that the run is
// data-bound.
const schedFramesPerEpoch = 16

// SchedLoads returns the offered-load sweep (fraction of the static greedy
// capacity) of FigSched.
func SchedLoads(quick bool) []float64 {
	if quick {
		return []float64{0.7, 1.5}
	}
	return []float64{0.5, 0.8, 1.1, 1.5, 2.0}
}

// schedTopos are the figure's topology axis: the planned grid and the
// unplanned uniform deployment of the paper's evaluation.
func schedTopos() []string { return []string{"grid", "uniform"} }

// schedFamily enumerates the figure's scheduler axis from the flow-scheduler
// registry: every zero-control-cost (non-distributed) member, in registry
// order — greedy, maxweight, fanzhang, tdma. A scheduler added to the
// registry automatically grows the figure a curve.
func schedFamily() []flow.SchedulerDef {
	var fam []flow.SchedulerDef
	for _, d := range flow.SchedulerDefs() {
		if !d.Distributed {
			fam = append(fam, d)
		}
	}
	return fam
}

// schedCurveNames are FigSched's series: scheduler × topology.
func schedCurveNames() []string {
	var names []string
	for _, topo := range schedTopos() {
		for _, d := range schedFamily() {
			names = append(names, fmt.Sprintf("%s %s", d.Display, topo))
		}
	}
	return names
}

// schedSchedulers builds the figure's epoch schedulers for a scenario by
// enumerating the registry (single-channel, default head-ID ordering).
func schedSchedulers(s *Scenario) ([]flow.Scheduler, error) {
	env := flow.SchedulerEnv{Channel: s.Net.Channel, Links: s.Links}
	var out []flow.Scheduler
	for _, d := range schedFamily() {
		sc, err := d.New(env)
		if err != nil {
			return nil, fmt.Errorf("sched figure: build %s: %w", d.Name, err)
		}
		out = append(out, sc)
	}
	return out, nil
}

// RunSchedCell runs one (load, seed) cell of the sched figure: for each
// topology, the four schedulers against the same Zipf hotspot arrival
// pattern, returning delivered goodput per (topology, scheduler) curve.
func RunSchedCell(load float64, seed int64, quick bool) ([]float64, error) {
	tm := core.DefaultTiming()
	horizonFrames := 800
	if quick {
		horizonFrames = 250
	}
	var vals []float64
	for ti, kind := range schedTopos() {
		var s *Scenario
		var err error
		if kind == "grid" {
			s, err = GridScenario(flowDensity, 5200+seed)
		} else {
			s, err = UniformScenario(flowDensity, 5300+seed)
		}
		if err != nil {
			return nil, err
		}
		frame, err := flow.FrameTime(s.Net.Channel, s.Forest, s.Links, tm)
		if err != nil {
			return nil, err
		}
		meanRate := load / frame.Seconds()
		horizon := des.Time(horizonFrames) * frame
		mult, err := traffic.HotspotRates(s.Net.NumNodes(), schedZipfS, 1, schedZipfMax,
			rand.New(rand.NewSource(flow.DeriveSeed(seed, int64(100+ti)))))
		if err != nil {
			return nil, err
		}
		schedulers, err := schedSchedulers(s)
		if err != nil {
			return nil, err
		}
		for ci, sc := range schedulers {
			arrivals := make([]traffic.Arrival, s.Net.NumNodes())
			for u := range arrivals {
				if s.Forest.IsGateway(u) {
					continue
				}
				p, err := traffic.NewPoisson(meanRate * mult[u])
				if err != nil {
					return nil, err
				}
				arrivals[u] = p
			}
			res, err := flow.Run(flow.Config{
				Forest:         s.Forest,
				Links:          s.Links,
				Scheduler:      sc,
				Timing:         tm,
				Arrivals:       arrivals,
				Horizon:        horizon,
				Seed:           flow.DeriveSeed(seed, int64(10*ti+ci)),
				MaxService:     flowMaxService,
				FramesPerEpoch: schedFramesPerEpoch,
			})
			if err != nil {
				return nil, fmt.Errorf("sched cell load=%g seed=%d topo=%s curve=%s: %w",
					load, seed, kind, sc.Name, err)
			}
			vals = append(vals, res.GoodputPps)
		}
	}
	return vals, nil
}

// FigSched sweeps offered load across the planned grid and the unplanned
// uniform deployment under Zipf hotspot arrivals and plots the goodput each
// scheduler family member delivers — who wins where. Below saturation the
// schedulers track the offered line together; beyond it MaxWeight's
// backlog×rate re-ranking holds the skewed queues balanced and stays on top,
// the static greedy order trails it, FanZhang pays its class-partition
// premium, and TDMA floors the figure. The companion exact-gap numbers for
// the same family are produced by the gapharness tests (see DESIGN.md).
func FigSched(opts Options) (*stats.Figure, error) {
	fig := stats.NewFigure(
		"Sched: Scheduler Family Goodput vs Offered Load (Zipf hotspot arrivals)",
		"offered load (x static capacity)", "delivered goodput (pkt/s)")
	xs := SchedLoads(opts.Quick)
	names := schedCurveNames()
	err := runGrid(fig, xs, names, opts, func(xi, si int) ([]float64, error) {
		return RunSchedCell(xs[xi], int64(si), opts.Quick)
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}
