package sched

import (
	"fmt"

	"scream/internal/phys"
)

// GreedyProtocol is GreedyPhysical's counterpart under the protocol
// interference model: the same edge-major greedy, with slot feasibility
// decided by exclusion regions instead of SINR. The paper's introduction
// motivates STDMA-with-physical-interference by the capacity the protocol
// model (and hence CSMA/CA) leaves on the table; comparing the two greedy
// schedules quantifies it.
func GreedyProtocol(pm *phys.ProtocolModel, links []phys.Link, demands []int, ord Ordering, ch *phys.Channel) (*Schedule, error) {
	if len(links) != len(demands) {
		return nil, fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	for i, l := range links {
		if !pm.FeasibleSet([]phys.Link{l}) {
			return nil, fmt.Errorf("sched: link %v alone is infeasible under the protocol model", l)
		}
		if demands[i] < 0 {
			return nil, fmt.Errorf("sched: link %v has negative demand %d", l, demands[i])
		}
	}
	s := NewSchedule()
	var checkers []*phys.ProtocolSlotChecker
	for _, ei := range orderEdges(ch, links, demands, ord) {
		l := links[ei]
		remaining := demands[ei]
		for slot := 0; remaining > 0; slot++ {
			if slot == len(checkers) {
				checkers = append(checkers, phys.NewProtocolSlotChecker(pm))
			}
			if checkers[slot].CanAdd(l) {
				checkers[slot].Add(l)
				s.AddToSlot(slot, l)
				remaining--
			}
		}
	}
	for s.Length() > 0 && len(s.slots[s.Length()-1]) == 0 {
		s.slots = s.slots[:s.Length()-1]
	}
	return s, nil
}
