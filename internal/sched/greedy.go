package sched

import (
	"fmt"
	"sort"

	"scream/internal/graph"
	"scream/internal/phys"
)

// Ordering selects how GreedyPhysical ranks edges before the greedy pass.
// The approximation bound of the MobiCom 2006 paper holds for any fixed
// ordering (as observed in the proof of Theorem 4), so the choice is a
// quality/structure knob, not a correctness one.
type Ordering int

const (
	// ByHeadIDDesc considers edges in decreasing order of the owner
	// (head) node's ID — the variant GreedyPhysical that FDD emulates
	// exactly (Theorem 4).
	ByHeadIDDesc Ordering = iota + 1
	// ByDemandDesc considers heavier edges first.
	ByDemandDesc
	// ByLengthDesc considers physically longer links first (they are the
	// most interference-fragile, mirroring the MobiCom 2006 heuristic).
	ByLengthDesc
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case ByHeadIDDesc:
		return "head-id-desc"
	case ByDemandDesc:
		return "demand-desc"
	case ByLengthDesc:
		return "length-desc"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// orderEdges returns the indices of links in scheduling order.
func orderEdges(ch phys.Engine, links []phys.Link, demands []int, ord Ordering) []int {
	idx := make([]int, len(links))
	for i := range idx {
		idx[i] = i
	}
	switch ord {
	case ByDemandDesc:
		sort.SliceStable(idx, func(a, b int) bool {
			if demands[idx[a]] != demands[idx[b]] {
				return demands[idx[a]] > demands[idx[b]]
			}
			return links[idx[a]].From > links[idx[b]].From
		})
	case ByLengthDesc:
		sort.SliceStable(idx, func(a, b int) bool {
			// Longer link <=> smaller direct gain.
			ga := ch.Gain(links[idx[a]].From, links[idx[a]].To)
			gb := ch.Gain(links[idx[b]].From, links[idx[b]].To)
			if ga != gb {
				return ga < gb
			}
			return links[idx[a]].From > links[idx[b]].From
		})
	default: // ByHeadIDDesc
		sort.SliceStable(idx, func(a, b int) bool {
			return links[idx[a]].From > links[idx[b]].From
		})
	}
	return idx
}

// GreedyPhysical computes a feasible schedule with the centralized greedy
// algorithm of the MobiCom 2006 paper: edges are considered in the given
// order; each edge is placed into the first demands[i] slots in which adding
// it keeps the slot feasible, appending new slots when needed. The returned
// schedule always satisfies Verify against the same inputs.
func GreedyPhysical(ch phys.Engine, links []phys.Link, demands []int, ord Ordering) (*Schedule, error) {
	return greedyPhysical(ch, links, demands, ord, false)
}

// GreedyPhysicalDataOnly is GreedyPhysical with the ACK sub-slot inequality
// disabled (ablation: the original Gupta-Kumar physical model without the
// paper's link-layer-reliability extension). Its schedules may fail Verify
// under the full model; CountInfeasibleSlots quantifies by how much.
func GreedyPhysicalDataOnly(ch phys.Engine, links []phys.Link, demands []int, ord Ordering) (*Schedule, error) {
	return greedyPhysical(ch, links, demands, ord, true)
}

func greedyPhysical(ch phys.Engine, links []phys.Link, demands []int, ord Ordering, dataOnly bool) (*Schedule, error) {
	if len(links) != len(demands) {
		return nil, fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	return greedyPhysicalOrdered(ch, links, demands, orderEdges(ch, links, demands, ord), dataOnly)
}

// singletonFeasible reports whether l alone can occupy a slot: both the
// data and the ACK transmission must clear beta against noise with no
// interference. This is exactly Channel.FeasibleSet on a one-link set
// (self-loops fail through their zero self-gain), phrased over the Engine
// interface so any engine can answer it — and since SignalMW is exact on
// every engine, all engines agree on it.
func singletonFeasible(ch phys.Engine, l phys.Link) bool {
	floor := ch.Beta() * ch.NoiseMW()
	return ch.SignalMW(l.From, l.To) >= floor && ch.SignalMW(l.To, l.From) >= floor
}

// greedyPhysicalOrdered runs the first-fit greedy admission pass over the
// links named by order (indices into links/demands), in that order. Links
// absent from order are ignored — the Fan-Zhang class scheduler exploits
// this to run the engine on one length class at a time.
func greedyPhysicalOrdered(ch phys.Engine, links []phys.Link, demands []int, order []int, dataOnly bool) (*Schedule, error) {
	for _, ei := range order {
		l := links[ei]
		if !singletonFeasible(ch, l) {
			return nil, fmt.Errorf("sched: link %v alone is infeasible; no schedule exists", l)
		}
		if demands[ei] < 0 {
			return nil, fmt.Errorf("sched: link %v has negative demand %d", l, demands[ei])
		}
	}

	// Slot states live in fixed-size slabs: constructing a schedule touches
	// hundreds of slots, so one heap allocation per slot (or copying the
	// states around as a flat slice grows) would dominate the incremental
	// feasibility checks themselves. Slabs never move, which SlotState's
	// inline small-slot storage requires.
	const slabSize = 64
	var slabs []*[slabSize]phys.SlotState
	var slots []*phys.SlotState
	for _, ei := range order {
		l := links[ei]
		remaining := demands[ei]
		for slot := 0; remaining > 0; slot++ {
			if slot == len(slots) {
				if slot%slabSize == 0 {
					slabs = append(slabs, new([slabSize]phys.SlotState))
				}
				st := &slabs[len(slabs)-1][slot%slabSize]
				if dataOnly {
					st.InitEngineDataOnly(ch)
				} else {
					st.InitEngine(ch)
				}
				slots = append(slots, st)
			}
			if slots[slot].CanAdd(l) {
				slots[slot].Add(l)
				remaining--
			}
		}
	}
	// Materialize the schedule from the slot states; each holds its links
	// in admission order. A slot is only ever created by a link that then
	// joins it (singleton feasibility was pre-validated), so none is empty.
	s := &Schedule{slots: make([][]phys.Link, len(slots))}
	for i, st := range slots {
		s.slots[i] = st.Links()
	}
	recordBuild(s.slots)
	return s, nil
}

// GreedyPhysicalMulti generalizes GreedyPhysical to cs.NumChannels()
// orthogonal channels and numRadios radios per node: edges are considered in
// the given order; each edge is placed first-fit over (slot, channel) pairs —
// slots in order, the channels of each slot in ascending order — wherever the
// multi-channel slot stays feasible (per-channel SINR, per-node radio
// budget), appending new slots as needed. With more than one radio per node
// an edge may ride several channels of the same slot, each placement serving
// one demand unit. With one channel and one radio it takes exactly
// GreedyPhysical's decisions and returns its identical single-channel
// schedule. The returned schedule always satisfies VerifyMulti against the
// same inputs.
func GreedyPhysicalMulti(cs *phys.ChannelSet, numRadios int, links []phys.Link, demands []int, ord Ordering) (*Schedule, error) {
	return GreedyPhysicalMultiEngine(cs.Base(), cs.NumChannels(), numRadios, links, demands, ord)
}

// GreedyPhysicalMultiEngine is GreedyPhysicalMulti over any interference
// engine: channels orthogonal copies of eng, numRadios radios per node.
// GreedyPhysicalMulti delegates here with the dense channel.
func GreedyPhysicalMultiEngine(eng phys.Engine, channels, numRadios int, links []phys.Link, demands []int, ord Ordering) (*Schedule, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("sched: channel count must be positive, got %d", channels)
	}
	if numRadios <= 0 {
		numRadios = 1
	}
	if channels == 1 && numRadios == 1 {
		// The single-channel fast path: the slab-allocated SlotState engine,
		// bit-identical to the schedules shipped before multi-channel
		// support existed.
		return greedyPhysical(eng, links, demands, ord, false)
	}
	if len(links) != len(demands) {
		return nil, fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	for i, l := range links {
		if !singletonFeasible(eng, l) {
			return nil, fmt.Errorf("sched: link %v alone is infeasible; no schedule exists", l)
		}
		if demands[i] < 0 {
			return nil, fmt.Errorf("sched: link %v has negative demand %d", l, demands[i])
		}
	}
	var slots []*phys.MultiSlotState
	for _, ei := range orderEdges(eng, links, demands, ord) {
		l := links[ei]
		remaining := demands[ei]
		for slot := 0; remaining > 0; slot++ {
			if slot == len(slots) {
				slots = append(slots, phys.NewMultiSlotStateEngine(eng, channels, numRadios))
			}
			for ch := 0; ch < channels && remaining > 0; ch++ {
				if slots[slot].CanAdd(l, ch) {
					slots[slot].Add(l, ch)
					remaining--
				}
			}
		}
	}
	// Materialize; a slot is only ever created by a link that then joins its
	// channel 0 (the slot is empty and the link is singleton-feasible), so
	// none is empty.
	s := NewSchedule()
	for _, st := range slots {
		ps := st.Placements()
		slotLinks := make([]phys.Link, len(ps))
		slotChans := make([]int, len(ps))
		for i, p := range ps {
			slotLinks[i] = p.Link
			slotChans[i] = p.Channel
		}
		s.AppendSlotAssigned(slotLinks, slotChans)
	}
	recordBuild(s.slots)
	return s, nil
}

// LocalizedGreedy is GreedyPhysical restricted to k-hop-local information:
// when deciding whether edge e fits a slot, it only accounts for the
// interference of already-scheduled links within the k-hop neighborhood of e
// (Definition 5), exactly the class of algorithms Theorem 1 proves cannot
// always produce feasible schedules. It exists to demonstrate the theorem:
// its output may fail Verify.
func LocalizedGreedy(ch *phys.Channel, comm *graph.Graph, links []phys.Link, demands []int, k int, ord Ordering) (*Schedule, error) {
	if len(links) != len(demands) {
		return nil, fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	edges := make([]graph.Edge, len(links))
	for i, l := range links {
		edges[i] = graph.Edge{U: l.From, V: l.To}
	}
	// Precompute each link's k-neighborhood as a set of link indices.
	neighborhood := make([]map[int]bool, len(links))
	for i := range links {
		nb := graph.LinkKNeighborhood(comm, edges, i, k)
		set := make(map[int]bool, len(nb))
		for _, j := range nb {
			set[j] = true
		}
		neighborhood[i] = set
	}

	s := NewSchedule()
	// For each slot, remember which link indices it holds.
	var slotLinks [][]int
	for _, ei := range orderEdges(ch, links, demands, ord) {
		remaining := demands[ei]
		for slot := 0; remaining > 0; slot++ {
			if slot == len(slotLinks) {
				slotLinks = append(slotLinks, nil)
			}
			if localFits(ch, links, neighborhood, slotLinks[slot], ei) {
				slotLinks[slot] = append(slotLinks[slot], ei)
				s.AddToSlot(slot, links[ei])
				remaining--
			}
		}
	}
	for s.Length() > 0 && len(s.slots[s.Length()-1]) == 0 {
		s.slots = s.slots[:s.Length()-1]
	}
	return s, nil
}

// localFits checks slot feasibility seen through ei's k-hop keyhole: only
// in-neighborhood occupants are visible, both for ei's own SINR and for the
// occupants' re-check.
func localFits(ch *phys.Channel, links []phys.Link, neighborhood []map[int]bool, occupants []int, ei int) bool {
	visible := make([]phys.Link, 0, len(occupants)+1)
	for _, oi := range occupants {
		if neighborhood[ei][oi] {
			visible = append(visible, links[oi])
		} else if links[ei].SharesEndpoint(links[oi]) {
			// Primary conflicts are always local knowledge.
			return false
		}
	}
	visible = append(visible, links[ei])
	return ch.FeasibleSet(visible)
}
