package sched

import (
	"fmt"
	"math"
	"sort"

	"scream/internal/phys"
)

// The Fan-Zhang-style approximation scheduler: partition links into
// geometric length classes and schedule each class separately with first-fit
// admission under the incremental SlotState engine. Length-class partitioning
// is the core device of the physical-interference approximation algorithms
// (Fan-Zhang, arXiv:0910.5215; also Goussevskaia et al.): within one class
// all links have nearly equal length, which is what makes a first-fit packing
// argument go through and yields the logarithmic approximation guarantee —
// the number of classes is O(log(l_max/l_min)). The price of the guarantee is
// that classes never share slots, so on easy instances the concatenated
// schedule can trail the unpartitioned greedy; the gap harness quantifies
// exactly that trade.

// LengthClasses returns the geometric length class of every link. Link
// length is read off the channel's direct gain (longer link <=> smaller
// gain; the same proxy ByLengthDesc uses): class k holds links whose gain is
// within [2^-(k+1), 2^-k) of the strongest scheduled link's. Class 0 is the
// shortest class; higher classes are longer, more interference-fragile
// links.
func LengthClasses(ch phys.Engine, links []phys.Link) []int {
	if len(links) == 0 {
		return nil
	}
	gmax := math.Inf(-1)
	for _, l := range links {
		if g := ch.Gain(l.From, l.To); g > gmax {
			gmax = g
		}
	}
	classes := make([]int, len(links))
	for i, l := range links {
		g := ch.Gain(l.From, l.To)
		if !(g > 0) || !(gmax > 0) {
			// A zero-gain link can never carry data; leave it in class 0 and
			// let the admission pass report it as singleton-infeasible.
			continue
		}
		classes[i] = int(math.Floor(math.Log2(gmax / g)))
	}
	return classes
}

// ApproxFanZhang computes a feasible schedule by length-class partitioning:
// links are split by LengthClasses, classes are scheduled longest-first
// (highest class first — the fragile links claim interference-free slots
// before short links fill the spatial budget), each class runs the first-fit
// greedy engine on fresh slots, and the per-class schedules concatenate.
// Within a class, links go in ascending link-index order — the stable tie
// rule the determinism suite pins. The returned schedule always satisfies
// Verify against the same inputs.
func ApproxFanZhang(ch phys.Engine, links []phys.Link, demands []int) (*Schedule, error) {
	if len(links) != len(demands) {
		return nil, fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	classes := LengthClasses(ch, links)
	byClass := make(map[int][]int)
	for i := range links {
		byClass[classes[i]] = append(byClass[classes[i]], i)
	}
	order := make([]int, 0, len(byClass))
	for c := range byClass {
		order = append(order, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))

	s := &Schedule{}
	for _, c := range order {
		// byClass entries were appended in ascending link index — already the
		// stable within-class order.
		sub, err := greedyPhysicalOrdered(ch, links, demands, byClass[c], false)
		if err != nil {
			return nil, err
		}
		s.slots = append(s.slots, sub.slots...)
	}
	return s, nil
}
