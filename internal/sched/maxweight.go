package sched

import (
	"fmt"
	"math"
	"sort"

	"scream/internal/phys"
)

// The max-weight backlog×rate scheduler: greedy admission ordered by the
// product of a link's queued demand (its backlog snapshot) and its rate
// proxy, instead of a static link order. This is the classical max-weight
// discipline of heavy-traffic scheduling on interfering routes
// (arXiv:1106.1590): serving the heaviest backlog×rate links first keeps the
// queue vector balanced under skewed load, where a static order keeps
// draining the same early links while hotspot queues grow.

// LinkRate returns the rate proxy of a link used by the max-weight ordering:
// the Shannon spectral efficiency log2(1 + SNR) of the link in isolation.
// The flow layer's slots carry one packet regardless of SNR, so the proxy
// acts purely as a quality prior — at equal backlog, links with more SINR
// headroom (which pack better into slots) are served first. SNR comes off
// the engine's exact signal query, so every engine agrees on it.
func LinkRate(ch phys.Engine, l phys.Link) float64 {
	return math.Log2(1 + ch.SignalMW(l.From, l.To)/ch.NoiseMW())
}

// MaxWeightOrder returns the indices of links in decreasing
// demand×LinkRate weight. Equal weights break by ascending link index — a
// stable, topology-independent tie rule, so schedules are byte-identical
// across runs and worker counts (the determinism discipline of the
// experiment engine; see TestMaxWeightOrderTieBreak).
func MaxWeightOrder(ch phys.Engine, links []phys.Link, demands []int) []int {
	w := make([]float64, len(links))
	for i, l := range links {
		w[i] = float64(demands[i]) * LinkRate(ch, l)
	}
	idx := make([]int, len(links))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if w[idx[a]] != w[idx[b]] {
			return w[idx[a]] > w[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// GreedyMaxWeight computes a feasible schedule with the same first-fit
// admission engine as GreedyPhysical, but ordered by MaxWeightOrder: the
// heaviest backlog×rate links claim the early slots. The returned schedule
// always satisfies Verify against the same inputs.
func GreedyMaxWeight(ch phys.Engine, links []phys.Link, demands []int) (*Schedule, error) {
	if len(links) != len(demands) {
		return nil, fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	return greedyPhysicalOrdered(ch, links, demands, MaxWeightOrder(ch, links, demands), false)
}
