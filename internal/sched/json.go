package sched

import (
	"encoding/json"
	"fmt"

	"scream/internal/phys"
)

// scheduleJSON is the wire form of a Schedule: one array of [from, to]
// pairs per slot.
type scheduleJSON struct {
	Slots [][][2]int `json:"slots"`
}

// MarshalJSON implements json.Marshaler. The encoding is stable and
// human-inspectable: {"slots": [[[0,1],[5,6]], [[2,3]]]}.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{Slots: make([][][2]int, len(s.slots))}
	for i, slot := range s.slots {
		out.Slots[i] = make([][2]int, len(slot))
		for j, l := range slot {
			out.Slots[i][j] = [2]int{l.From, l.To}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in scheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("sched: decode schedule: %w", err)
	}
	s.slots = make([][]phys.Link, len(in.Slots))
	for i, slot := range in.Slots {
		s.slots[i] = make([]phys.Link, len(slot))
		for j, pair := range slot {
			if pair[0] < 0 || pair[1] < 0 {
				return fmt.Errorf("sched: slot %d entry %d has negative node id", i, j)
			}
			s.slots[i][j] = phys.Link{From: pair[0], To: pair[1]}
		}
	}
	return nil
}
