package sched

import (
	"encoding/json"
	"fmt"

	"scream/internal/phys"
)

// scheduleJSON is the wire form of a Schedule: one array of [from, to]
// pairs per slot, plus — for multi-channel schedules only — the parallel
// per-slot channel assignment. Single-channel schedules omit "chans", so
// their encoding is unchanged from before multi-channel support existed.
type scheduleJSON struct {
	Slots [][][2]int `json:"slots"`
	Chans [][]int    `json:"chans,omitempty"`
}

// MarshalJSON implements json.Marshaler. The encoding is stable and
// human-inspectable: {"slots": [[[0,1],[5,6]], [[2,3]]], "chans": [[0,1],[0]]}.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{Slots: make([][][2]int, len(s.slots)), Chans: s.chans}
	for i, slot := range s.slots {
		out.Slots[i] = make([][2]int, len(slot))
		for j, l := range slot {
			out.Slots[i][j] = [2]int{l.From, l.To}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in scheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("sched: decode schedule: %w", err)
	}
	if in.Chans != nil {
		if len(in.Chans) != len(in.Slots) {
			return fmt.Errorf("sched: %d channel-assignment slots for %d slots", len(in.Chans), len(in.Slots))
		}
		for i, chans := range in.Chans {
			if len(chans) != len(in.Slots[i]) {
				return fmt.Errorf("sched: slot %d has %d channel assignments for %d links", i, len(chans), len(in.Slots[i]))
			}
			for j, c := range chans {
				if c < 0 {
					return fmt.Errorf("sched: slot %d entry %d has negative channel %d", i, j, c)
				}
			}
		}
	}
	s.slots = make([][]phys.Link, len(in.Slots))
	for i, slot := range in.Slots {
		s.slots[i] = make([]phys.Link, len(slot))
		for j, pair := range slot {
			if pair[0] < 0 || pair[1] < 0 {
				return fmt.Errorf("sched: slot %d entry %d has negative node id", i, j)
			}
			s.slots[i][j] = phys.Link{From: pair[0], To: pair[1]}
		}
	}
	s.chans = in.Chans
	return nil
}
