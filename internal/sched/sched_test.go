package sched

import (
	"math"
	"math/rand"
	"testing"

	"scream/internal/phys"
	"scream/internal/route"
	"scream/internal/topo"
	"scream/internal/traffic"
)

// testMesh builds a small grid mesh with a routing forest and demands, and
// returns the channel, forest links and per-link demands.
func testMesh(t testing.TB, dim int, seed int64) (*topo.Network, []phys.Link, []int) {
	t.Helper()
	net, err := topo.NewGrid(topo.GridConfig{Rows: dim, Cols: dim, Step: 30, Params: topo.DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	f, err := route.BuildForest(net.Comm, []int{0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nodeDemand, err := traffic.Uniform(net.NumNodes(), 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := f.AggregateDemand(nodeDemand)
	if err != nil {
		t.Fatal(err)
	}
	links := f.Links()
	demands := make([]int, len(links))
	for i, l := range links {
		demands[i] = agg[l.From]
	}
	return net, links, demands
}

func TestScheduleBasics(t *testing.T) {
	s := NewSchedule()
	if s.Length() != 0 {
		t.Fatal("new schedule should be empty")
	}
	s.AppendSlot([]phys.Link{{From: 0, To: 1}})
	s.AddToSlot(2, phys.Link{From: 2, To: 3})
	if s.Length() != 3 {
		t.Errorf("Length = %d, want 3", s.Length())
	}
	if s.TotalTransmissions() != 2 {
		t.Errorf("TotalTransmissions = %d, want 2", s.TotalTransmissions())
	}
	if len(s.Slot(1)) != 0 {
		t.Error("middle slot should be empty")
	}
}

func TestAppendSlotCopies(t *testing.T) {
	s := NewSchedule()
	links := []phys.Link{{From: 0, To: 1}}
	s.AppendSlot(links)
	links[0] = phys.Link{From: 9, To: 9}
	if s.Slot(0)[0] != (phys.Link{From: 0, To: 1}) {
		t.Error("AppendSlot must copy its argument")
	}
}

func TestScheduleEqual(t *testing.T) {
	a, b := NewSchedule(), NewSchedule()
	a.AppendSlot([]phys.Link{{From: 0, To: 1}, {From: 2, To: 3}})
	b.AppendSlot([]phys.Link{{From: 2, To: 3}, {From: 0, To: 1}}) // same set, different order
	if !a.Equal(b) {
		t.Error("slot order within a slot must not matter")
	}
	b.AppendSlot([]phys.Link{{From: 4, To: 5}})
	if a.Equal(b) {
		t.Error("different lengths must not be equal")
	}
	c := NewSchedule()
	c.AppendSlot([]phys.Link{{From: 0, To: 1}, {From: 4, To: 5}})
	if a.Equal(c) {
		t.Error("different slot contents must not be equal")
	}
}

func TestLinearAndImprovement(t *testing.T) {
	if LinearLength([]int{3, 4, 5}) != 12 {
		t.Error("LinearLength wrong")
	}
	if got := ImprovementOverLinear(6, 12); got != 50 {
		t.Errorf("Improvement = %v, want 50", got)
	}
	if got := ImprovementOverLinear(12, 12); got != 0 {
		t.Errorf("Improvement = %v, want 0", got)
	}
	if got := ImprovementOverLinear(5, 0); got != 0 {
		t.Errorf("zero demand improvement = %v, want 0", got)
	}
}

func TestGreedyPhysicalVerifies(t *testing.T) {
	net, links, demands := testMesh(t, 5, 7)
	for _, ord := range []Ordering{ByHeadIDDesc, ByDemandDesc, ByLengthDesc} {
		s, err := GreedyPhysical(net.Channel, links, demands, ord)
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if err := s.Verify(net.Channel, links, demands); err != nil {
			t.Fatalf("%v: schedule fails verification: %v", ord, err)
		}
		if s.Length() > LinearLength(demands) {
			t.Errorf("%v: greedy longer than linear (%d > %d)", ord, s.Length(), LinearLength(demands))
		}
		if s.Length() == 0 {
			t.Errorf("%v: empty schedule for positive demand", ord)
		}
	}
}

func TestGreedyPhysicalBeatsLinear(t *testing.T) {
	// On a 6x6 grid there is real spatial reuse to find.
	net, links, demands := testMesh(t, 6, 3)
	s, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	imp := ImprovementOverLinear(s.Length(), LinearLength(demands))
	if imp <= 0 {
		t.Errorf("expected positive improvement on a 6x6 grid, got %.1f%%", imp)
	}
	t.Logf("6x6 grid improvement over linear: %.1f%% (len %d vs %d)", imp, s.Length(), LinearLength(demands))
}

func TestGreedyPhysicalZeroDemand(t *testing.T) {
	net, links, demands := testMesh(t, 4, 1)
	for i := range demands {
		demands[i] = 0
	}
	s, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 0 {
		t.Errorf("zero demand should give empty schedule, got %d slots", s.Length())
	}
	_ = links
}

func TestGreedyPhysicalErrors(t *testing.T) {
	net, links, demands := testMesh(t, 4, 1)
	if _, err := GreedyPhysical(net.Channel, links, demands[:1], ByHeadIDDesc); err == nil {
		t.Error("length mismatch should fail")
	}
	demands[0] = -1
	if _, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc); err == nil {
		t.Error("negative demand should fail")
	}
	// An infeasible lone link (out of range) must be rejected up front.
	bad := append([]phys.Link(nil), links...)
	bad[0] = phys.Link{From: 0, To: net.NumNodes() - 1}
	demands[0] = 1
	if !net.Channel.LinkUp(0, net.NumNodes()-1) {
		if _, err := GreedyPhysical(net.Channel, bad, demands, ByHeadIDDesc); err == nil {
			t.Error("unschedulable link should fail")
		}
	}
}

func TestGreedyHeadIDOrderIsDeterministic(t *testing.T) {
	net, links, demands := testMesh(t, 5, 9)
	a, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("greedy must be deterministic")
	}
}

func TestOrderEdges(t *testing.T) {
	net, _, _ := testMesh(t, 4, 1)
	links := []phys.Link{{From: 1, To: 0}, {From: 3, To: 0}, {From: 2, To: 0}}
	demands := []int{5, 1, 3}
	gotID := orderEdges(net.Channel, links, demands, ByHeadIDDesc)
	if links[gotID[0]].From != 3 || links[gotID[1]].From != 2 || links[gotID[2]].From != 1 {
		t.Errorf("head-id order wrong: %v", gotID)
	}
	gotD := orderEdges(net.Channel, links, demands, ByDemandDesc)
	if demands[gotD[0]] != 5 || demands[gotD[1]] != 3 || demands[gotD[2]] != 1 {
		t.Errorf("demand order wrong: %v", gotD)
	}
}

func TestOrderingString(t *testing.T) {
	if ByHeadIDDesc.String() != "head-id-desc" || ByDemandDesc.String() != "demand-desc" ||
		ByLengthDesc.String() != "length-desc" || Ordering(99).String() != "ordering(99)" {
		t.Error("Ordering.String broken")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	net, links, demands := testMesh(t, 4, 2)
	s, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	// Under-delivery: remove one transmission.
	under := NewSchedule()
	for i := 0; i < s.Length(); i++ {
		if i == 0 {
			under.AppendSlot(s.Slot(i)[1:])
		} else {
			under.AppendSlot(s.Slot(i))
		}
	}
	if len(s.Slot(0)) > 1 {
		if err := under.Verify(net.Channel, links, demands); err == nil {
			t.Error("under-delivery must fail verification")
		}
	}
	// Unknown link.
	alien := NewSchedule()
	alien.AppendSlot([]phys.Link{{From: 0, To: 1}})
	if err := alien.Verify(net.Channel, nil, nil); err == nil {
		t.Error("unknown link must fail verification")
	}
	// Empty slot.
	empty := NewSchedule()
	empty.AppendSlot(nil)
	if err := empty.Verify(net.Channel, nil, nil); err == nil {
		t.Error("empty slot must fail verification")
	}
	// Infeasible slot: two primary-conflicting links.
	conflict := NewSchedule()
	l1, l2 := links[0], phys.Link{From: links[0].To, To: links[0].From}
	conflict.AppendSlot([]phys.Link{l1, l2})
	if err := conflict.Verify(net.Channel, []phys.Link{l1, l2}, []int{1, 1}); err == nil {
		t.Error("conflicting slot must fail verification")
	}
}

// TestTheorem1LocalizedInfeasible builds the paper's Theorem 1 situation: a
// long line network where every link is feasible with respect to everything a
// k-hop-localized scheduler can see, yet the globally accumulated
// interference makes the produced schedule infeasible. GreedyPhysical (the
// global algorithm) on the same instance always verifies.
func TestTheorem1LocalizedInfeasible(t *testing.T) {
	p := topo.DefaultParams()
	found := false
	for _, slack := range []float64{1.02, 1.03, 1.05, 1.08} {
		for _, sep := range []int{4, 5, 6, 8} {
			n := 140
			net, err := topo.NewLine(n, 25, p, slack)
			if err != nil {
				t.Fatal(err)
			}
			// One short link every sep nodes, all pointing right.
			var links []phys.Link
			for i := 0; i+1 < n; i += sep {
				links = append(links, phys.Link{From: i, To: i + 1})
			}
			demands := make([]int, len(links))
			for i := range demands {
				demands[i] = 1
			}
			k := sep - 2 // strictly less hops than the link spacing
			if k < 1 {
				k = 1
			}
			local, err := LocalizedGreedy(net.Channel, net.Comm, links, demands, k, ByHeadIDDesc)
			if err != nil {
				t.Fatal(err)
			}
			global, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
			if err != nil {
				t.Fatal(err)
			}
			if err := global.Verify(net.Channel, links, demands); err != nil {
				t.Fatalf("global greedy must verify: %v", err)
			}
			if err := local.Verify(net.Channel, links, demands); err != nil {
				t.Logf("slack=%v sep=%d k=%d: localized schedule infeasible as Theorem 1 predicts: %v",
					slack, sep, k, err)
				found = true
			}
		}
	}
	if !found {
		t.Error("no parameter combination exhibited the Theorem 1 failure; construction needs retuning")
	}
}

func TestLocalizedGreedyLargeKMatchesGlobal(t *testing.T) {
	// With k at least the network diameter, the localized algorithm sees
	// everything and must produce a feasible schedule.
	net, links, demands := testMesh(t, 4, 5)
	s, err := LocalizedGreedy(net.Channel, net.Comm, links, demands, 64, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(net.Channel, links, demands); err != nil {
		t.Errorf("full-information localized greedy must verify: %v", err)
	}
	g, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(g) {
		t.Error("full-information localized greedy should equal global greedy")
	}
}

func TestGreedySlotsAreMaximalUnderOrdering(t *testing.T) {
	// Greedy invariant: a link with remaining demand after slot t could not
	// have fit in slot t. Spot-check: every scheduled placement is in the
	// earliest feasible slot given earlier-ordered placements. We verify a
	// weaker but sharp property: slot 0 is maximal (no unscheduled
	// repetition of any scheduled link can be added feasibly).
	net, links, demands := testMesh(t, 5, 11)
	s, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	slot0 := s.Slot(0)
	for i, l := range links {
		if demands[i] == 0 {
			continue
		}
		in := false
		for _, m := range slot0 {
			if m == l {
				in = true
				break
			}
		}
		if in {
			continue
		}
		withL := append(append([]phys.Link(nil), slot0...), l)
		if net.Channel.FeasibleSet(withL) {
			t.Errorf("slot 0 not maximal: link %v (demand %d) fits", l, demands[i])
		}
	}
}

func TestImprovementMonotoneInDemandScale(t *testing.T) {
	// Scaling all demands by c scales both greedy and linear lengths by
	// about c, keeping improvement roughly constant.
	net, links, demands := testMesh(t, 5, 13)
	s1, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]int, len(demands))
	for i, d := range demands {
		scaled[i] = 3 * d
	}
	s3, err := GreedyPhysical(net.Channel, links, scaled, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	i1 := ImprovementOverLinear(s1.Length(), LinearLength(demands))
	i3 := ImprovementOverLinear(s3.Length(), LinearLength(scaled))
	if math.Abs(i1-i3) > 10 {
		t.Errorf("improvement should be roughly scale-invariant: %.1f vs %.1f", i1, i3)
	}
}
