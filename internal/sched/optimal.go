package sched

import (
	"fmt"
	"math/bits"

	"scream/internal/phys"
)

// OptimalLength computes the minimum feasible schedule length for small
// instances by exact set-cover dynamic programming over link subsets: it
// enumerates the feasible link sets (the "independent sets" of the physical
// interference model) and finds the minimum number needed to cover every
// unit of demand. Exponential in the number of links — intended for
// validating greedy's quality and the Theorem 4 approximation bound on
// instances with up to ~16 links of unit demand.
//
// Demands above one are handled by observing that an optimal schedule can
// repeat each cover element: with demands d_i, the LP-free exact answer for
// the covering formulation is obtained by a DP over demand vectors only when
// demands are uniform; for general demands OptimalLength requires all
// demands equal to one and returns an error otherwise (callers expand or
// normalize demands).
func OptimalLength(ch *phys.Channel, links []phys.Link, demands []int) (int, error) {
	n := len(links)
	if n != len(demands) {
		return 0, fmt.Errorf("sched: %d links vs %d demands", n, len(demands))
	}
	if n == 0 {
		return 0, nil
	}
	if n > 20 {
		return 0, fmt.Errorf("sched: OptimalLength supports at most 20 links, got %d", n)
	}
	for i, d := range demands {
		if d != 1 {
			return 0, fmt.Errorf("sched: OptimalLength requires unit demands, link %d has %d", i, d)
		}
		if !ch.FeasibleSet([]phys.Link{links[i]}) {
			return 0, fmt.Errorf("sched: link %v alone infeasible", links[i])
		}
	}

	// Enumerate maximal feasible subsets. Feasibility is not monotone
	// under the SINR model in general (removing a link always helps,
	// i.e. feasibility IS downward closed: less interference). Since it
	// is downward closed, covering is optimal with any feasible sets and
	// the DP over subsets works with per-subset feasibility.
	full := (1 << n) - 1
	feasible := make([]bool, full+1)
	feasible[0] = true
	buf := make([]phys.Link, 0, n)
	for mask := 1; mask <= full; mask++ {
		// Downward closure: a set can only be feasible if removing its
		// lowest link leaves a feasible set. This prunes most of the
		// exponential space before the expensive SINR evaluation.
		low := mask & (-mask)
		if !feasible[mask&^low] {
			continue
		}
		buf = buf[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				buf = append(buf, links[i])
			}
		}
		feasible[mask] = ch.FeasibleSet(buf)
	}

	// DP: cover[mask] = minimum slots to schedule the links in mask.
	const inf = 1 << 30
	cover := make([]int, full+1)
	for i := range cover {
		cover[i] = inf
	}
	cover[0] = 0
	for mask := 1; mask <= full; mask++ {
		// Always include the lowest uncovered link in the next slot —
		// standard exact-cover canonicalization.
		low := bits.TrailingZeros(uint(mask))
		rest := mask &^ (1 << low)
		// Enumerate subsets of rest to join link `low` in one slot.
		for sub := rest; ; sub = (sub - 1) & rest {
			slot := sub | (1 << low)
			if feasible[slot] && cover[mask&^slot] != inf {
				if c := cover[mask&^slot] + 1; c < cover[mask] {
					cover[mask] = c
				}
			}
			if sub == 0 {
				break
			}
		}
	}
	if cover[full] >= inf {
		return 0, fmt.Errorf("sched: no feasible cover found (unschedulable instance)")
	}
	return cover[full], nil
}
