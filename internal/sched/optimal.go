package sched

import (
	"fmt"
	"math/bits"

	"scream/internal/phys"
)

// maxOptimalStates caps the residual-demand state space of the general
// (non-unit) demand DP: the product of (demand_i + 1) over scheduled links.
// 1<<21 states keep the memo table around 8 MB and the run under a second —
// the harness regime the exact solver exists for.
const maxOptimalStates = 1 << 21

// OptimalLength computes the minimum feasible schedule length for small
// instances by exact dynamic programming over the feasible link sets (the
// "independent sets" of the physical interference model). Feasibility is
// downward closed — removing a link only removes interference — so covering
// with arbitrary feasible sets is exact and the DP is sound.
//
// Unit-demand instances run the classical set-cover DP over link subsets
// (2^n states). General demands run a DP over residual demand vectors
// (prod(d_i+1) states): an optimal schedule may repeat a feasible set, which
// subset states cannot express. Both are exponential — intended for
// validating scheduler quality on instances with at most 20 links, and for
// general demands additionally prod(d_i+1) <= 2^21 states (links with zero
// demand are ignored). Instances beyond either limit return an error.
func OptimalLength(ch *phys.Channel, links []phys.Link, demands []int) (int, error) {
	if len(links) != len(demands) {
		return 0, fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	// Zero-demand links need no slots; drop them so they neither count
	// against the link limit nor inflate the state space.
	var fl []phys.Link
	var fd []int
	unit := true
	for i, d := range demands {
		switch {
		case d < 0:
			return 0, fmt.Errorf("sched: link %v has negative demand %d", links[i], d)
		case d == 0:
			continue
		case d > 1:
			unit = false
		}
		fl = append(fl, links[i])
		fd = append(fd, d)
	}
	n := len(fl)
	if n == 0 {
		return 0, nil
	}
	if n > 20 {
		return 0, fmt.Errorf("sched: OptimalLength supports at most 20 links, got %d", n)
	}
	for _, l := range fl {
		if !ch.FeasibleSet([]phys.Link{l}) {
			return 0, fmt.Errorf("sched: link %v alone infeasible", l)
		}
	}

	// Enumerate the feasible subsets once; both DPs consume the table.
	// Downward closure prunes: a set can only be feasible if removing its
	// lowest link leaves a feasible set, which skips most of the exponential
	// space before the expensive SINR evaluation.
	full := (1 << n) - 1
	feasible := make([]bool, full+1)
	feasible[0] = true
	buf := make([]phys.Link, 0, n)
	for mask := 1; mask <= full; mask++ {
		low := mask & (-mask)
		if !feasible[mask&^low] {
			continue
		}
		buf = buf[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				buf = append(buf, fl[i])
			}
		}
		feasible[mask] = ch.FeasibleSet(buf)
	}

	if unit {
		return optimalUnit(n, feasible)
	}
	return optimalGeneral(n, fd, feasible)
}

// optimalUnit is the set-cover DP over link subsets: cover[mask] = minimum
// slots to schedule the links in mask exactly once each.
func optimalUnit(n int, feasible []bool) (int, error) {
	full := (1 << n) - 1
	const inf = 1 << 30
	cover := make([]int, full+1)
	for i := range cover {
		cover[i] = inf
	}
	cover[0] = 0
	for mask := 1; mask <= full; mask++ {
		// Always include the lowest uncovered link in the next slot —
		// standard exact-cover canonicalization.
		low := bits.TrailingZeros(uint(mask))
		rest := mask &^ (1 << low)
		// Enumerate subsets of rest to join link `low` in one slot.
		for sub := rest; ; sub = (sub - 1) & rest {
			slot := sub | (1 << low)
			if feasible[slot] && cover[mask&^slot] != inf {
				if c := cover[mask&^slot] + 1; c < cover[mask] {
					cover[mask] = c
				}
			}
			if sub == 0 {
				break
			}
		}
	}
	if cover[full] >= inf {
		return 0, fmt.Errorf("sched: no feasible cover found (unschedulable instance)")
	}
	return cover[full], nil
}

// optimalGeneral is the DP over residual demand vectors in mixed-radix
// encoding: state = sum residual_i * stride_i with stride_i = prod of
// (d_j+1) for j < i. Each step serves the lowest link with residual demand
// together with any feasible companion subset of the other backlogged links,
// so every reachable slot composition is explored exactly once.
func optimalGeneral(n int, demands []int, feasible []bool) (int, error) {
	strides := make([]int, n)
	total := 1
	for i, d := range demands {
		strides[i] = total
		if total > maxOptimalStates/(d+1) {
			return 0, fmt.Errorf("sched: OptimalLength demand state space exceeds %d states (demands too large for the exact solver; cap or normalize them)", maxOptimalStates)
		}
		total *= d + 1
	}

	const inf = int32(1 << 30)
	memo := make([]int32, total)
	for i := range memo {
		memo[i] = -1
	}
	memo[0] = 0

	var solve func(state int) int32
	solve = func(state int) int32 {
		if memo[state] >= 0 {
			return memo[state]
		}
		memo[state] = inf // placeholder; every transition strictly decreases state
		// Decode the support mask of links with residual demand.
		support := 0
		low := -1
		for i := n - 1; i >= 0; i-- {
			if (state/strides[i])%(demands[i]+1) > 0 {
				support |= 1 << i
				low = i
			}
		}
		rest := support &^ (1 << low)
		best := inf
		for sub := rest; ; sub = (sub - 1) & rest {
			slot := sub | (1 << low)
			if feasible[slot] {
				next := state
				for m := slot; m != 0; m &= m - 1 {
					next -= strides[bits.TrailingZeros(uint(m))]
				}
				if c := solve(next); c < inf && c+1 < best {
					best = c + 1
				}
			}
			if sub == 0 {
				break
			}
		}
		memo[state] = best
		return best
	}

	start := 0
	for i, d := range demands {
		start += d * strides[i]
	}
	if got := solve(start); got < inf {
		return int(got), nil
	}
	return 0, fmt.Errorf("sched: no feasible cover found (unschedulable instance)")
}
