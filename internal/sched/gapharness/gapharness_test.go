package gapharness

import (
	"testing"

	"scream/internal/sched"
)

// The pinned worst-case optimality gaps: every registered backend must stay
// under its pinned worst gap on the fixed instance grid, and every backend
// must have a pin — adding a scheduler to sched.Backends without extending
// these tables fails the suite. Pins carry headroom over the measured worst
// (e.g. greedy measured 1.29 on the unit grid, pinned at 1.5): they are
// regression tripwires for scheduler-quality collapse, not precision
// measurements.

// checkPins runs one gap computation and asserts the per-backend pins.
func checkPins(t *testing.T, gaps []Gap, pins map[string]float64, what string) {
	t.Helper()
	for _, g := range gaps {
		pin, ok := pins[g.Backend]
		if !ok {
			t.Errorf("%s: backend %q has no pinned worst gap — extend the table", what, g.Backend)
			continue
		}
		if g.Instances == 0 {
			t.Errorf("%s: backend %q measured on zero instances", what, g.Backend)
			continue
		}
		if g.Worst > pin {
			t.Errorf("%s: %s worst gap %.3f exceeds pin %.2f (mean %.3f over %d instances)",
				what, g.Backend, g.Worst, pin, g.Mean, g.Instances)
		}
		if g.Worst < 1 || g.Mean < 1 {
			t.Errorf("%s: %s gap below 1 (worst %.3f, mean %.3f): ratios are broken",
				what, g.Backend, g.Worst, g.Mean)
		}
		t.Logf("%s: %-22s worst %.3f mean %.3f (pin %.2f, %d instances)",
			what, g.Backend, g.Worst, g.Mean, pin, g.Instances)
	}
}

// TestExactGapsUnitDemand16Links pins every backend's exact worst gap on the
// fixed 16-link unit-demand grid (line/grid/uniform × 4 seeds): the property
// the repo previously asserted for one greedy order on one topology, now
// continuously verified for the whole family.
func TestExactGapsUnitDemand16Links(t *testing.T) {
	instances, err := DefaultInstances(16, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	gaps, err := ExactGaps(nil, instances)
	if err != nil {
		t.Fatal(err)
	}
	checkPins(t, gaps, map[string]float64{
		"greedy(head-id-desc)": 1.5,
		"greedy(demand-desc)":  1.5,
		"greedy(length-desc)":  1.5,
		"maxweight":            1.5,
		"fanzhang":             2.0,
	}, "unit-16")
}

// TestExactGapsGeneralDemands pins the family against the general-demand
// exact DP (8 links, demands in [1,3]) — the regime the flow layer's real
// aggregated demand vectors live in.
func TestExactGapsGeneralDemands(t *testing.T) {
	instances, err := DefaultInstances(8, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	gaps, err := ExactGaps(nil, instances)
	if err != nil {
		t.Fatal(err)
	}
	checkPins(t, gaps, map[string]float64{
		"greedy(head-id-desc)": 1.4,
		"greedy(demand-desc)":  1.4,
		"greedy(length-desc)":  1.4,
		"maxweight":            1.4,
		"fanzhang":             1.8,
	}, "general-8")
}

// TestRatioGapsLargeInstances pins the relative spread on 40-link instances
// beyond the exact DP: no backend may trail the best backend by more than
// its pin, and on every instance some backend has ratio exactly 1.
func TestRatioGapsLargeInstances(t *testing.T) {
	var instances []*Instance
	for _, kind := range Topologies() {
		for s := 0; s < 3; s++ {
			inst, err := RandomInstance(kind, 40, 6, int64(7000+s))
			if err != nil {
				t.Fatal(err)
			}
			instances = append(instances, inst)
		}
	}
	gaps, err := RatioGaps(nil, instances)
	if err != nil {
		t.Fatal(err)
	}
	checkPins(t, gaps, map[string]float64{
		"greedy(head-id-desc)": 1.5,
		"greedy(demand-desc)":  1.5,
		"greedy(length-desc)":  1.5,
		"maxweight":            1.5,
		"fanzhang":             2.2,
	}, "ratio-40")
	best := 10.0
	for _, g := range gaps {
		if g.Worst < best {
			best = g.Worst
		}
	}
	if best > 2.2 {
		t.Errorf("even the best backend trails by %.3f: ratio normalization is broken", best)
	}
}

// TestExactGapsRejectOversizedInstances pins the harness's error path: the
// exact path must refuse instances beyond the DP limits instead of silently
// reporting a bogus gap.
func TestExactGapsRejectOversizedInstances(t *testing.T) {
	inst, err := RandomInstance("grid", 21, 1, 1)
	if err == nil && len(inst.Links) == 21 {
		if _, err := ExactGaps(nil, []*Instance{inst}); err == nil {
			t.Error("21-link exact gap should fail (OptimalLength limit)")
		}
	}
	if _, err := RandomInstance("klein-bottle", 8, 1, 1); err == nil {
		t.Error("unknown topology should fail")
	}
	if _, err := RandomInstance("grid", 0, 1, 1); err == nil {
		t.Error("zero links should fail")
	}
}

// TestBackendsAllRegistered pins the registry shape the harness (and the
// sched figure) relies on: at least the two new queue-aware/approximation
// schedulers plus the greedy family, with unique names.
func TestBackendsAllRegistered(t *testing.T) {
	backends := sched.Backends()
	seen := map[string]bool{}
	for _, b := range backends {
		if seen[b.Name] {
			t.Errorf("duplicate backend name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Build == nil {
			t.Errorf("backend %q has no Build", b.Name)
		}
	}
	for _, want := range []string{"greedy(head-id-desc)", "maxweight", "fanzhang"} {
		if !seen[want] {
			t.Errorf("backend %q missing from registry", want)
		}
	}
}
