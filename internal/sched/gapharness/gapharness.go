// Package gapharness measures the optimality gap of every registered
// scheduler backend (sched.Backends). SCREAM's claim is that cheap
// scheduling gets close to the centralized optimum under physical
// interference; this harness turns "close" into a number. On small instances
// (at most 20 links) it computes each backend's exact gap — schedule length
// divided by sched.OptimalLength — across randomized topologies and seeds.
// On larger instances, where the exact DP is out of reach, it reports each
// backend's length relative to the best backend on the same instance, the
// continuously verifiable proxy. The pinned worst-case gaps live in this
// package's tests and run in plain `go test ./...`.
package gapharness

import (
	"fmt"
	"math/rand"

	"scream/internal/phys"
	"scream/internal/sched"
	"scream/internal/topo"
)

// Instance is one scheduling problem the harness evaluates backends on.
type Instance struct {
	// Topo names the generating topology family (line, grid, uniform).
	Topo string
	// Seed reproduces the instance.
	Seed int64
	// Ch is the physical channel of the instance's network.
	Ch *phys.Channel
	// Links and Demands form the scheduling problem.
	Links   []phys.Link
	Demands []int
}

// Topologies lists the instance families of the default grid: the regimes
// where scheduler quality differs (a line serializes, a grid admits spatial
// reuse, uniform placement mixes both).
func Topologies() []string { return []string{"line", "grid", "uniform"} }

// RandomInstance builds a deterministic instance of the named topology
// family with numLinks links and the given per-link demand ceiling (demands
// uniform in [1, maxDemand]; 1 yields the unit-demand instances the exact
// unit DP was built for). Links are drawn as random directed communication
// edges without endpoint reuse, so every instance is schedulable.
func RandomInstance(topoKind string, numLinks, maxDemand int, seed int64) (*Instance, error) {
	if numLinks <= 0 || maxDemand <= 0 {
		return nil, fmt.Errorf("gapharness: need positive numLinks and maxDemand")
	}
	rng := rand.New(rand.NewSource(seed))
	var net *topo.Network
	var err error
	switch topoKind {
	case "line":
		net, err = topo.NewLine(3*numLinks, 30, topo.DefaultParams(), 0)
	case "grid":
		dim := 4
		for dim*dim < 3*numLinks {
			dim++
		}
		net, err = topo.NewGrid(topo.GridConfig{
			Rows: dim, Cols: dim, Step: 30,
			TxPowerMW: phys.DBm(4).MilliWatts(),
			Params:    topo.DefaultParams(),
		}, nil)
	case "uniform":
		net, err = topo.NewUniform(topo.UniformConfig{
			N: 3 * numLinks, Side: topo.SideForDensity(3*numLinks, 1000),
			MinTxDBm: 4, MaxTxDBm: 10,
			Params: topo.DefaultParams(),
		}, rng)
	default:
		return nil, fmt.Errorf("gapharness: unknown topology %q", topoKind)
	}
	if err != nil {
		return nil, fmt.Errorf("gapharness: %s instance: %w", topoKind, err)
	}

	// Draw directed links over communication edges, no endpoint reuse: each
	// link is singleton-feasible (it is a communication edge) and primary
	// conflicts never make the instance unschedulable.
	type edge struct{ u, v int }
	var edges []edge
	n := net.NumNodes()
	for u := 0; u < n; u++ {
		for _, v := range net.Comm.Neighbors(u) {
			if u < v {
				edges = append(edges, edge{u, v})
			}
		}
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("gapharness: %s instance has no communication edges", topoKind)
	}
	used := make([]bool, n)
	var links []phys.Link
	for _, ei := range rng.Perm(len(edges)) {
		if len(links) == numLinks {
			break
		}
		e := edges[ei]
		if used[e.u] || used[e.v] {
			continue
		}
		l := phys.Link{From: e.u, To: e.v}
		if rng.Intn(2) == 0 {
			l = l.Reverse()
		}
		if !net.Channel.FeasibleSet([]phys.Link{l}) {
			continue
		}
		used[e.u], used[e.v] = true, true
		links = append(links, l)
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("gapharness: %s instance yielded no feasible links", topoKind)
	}
	demands := make([]int, len(links))
	for i := range demands {
		demands[i] = 1 + rng.Intn(maxDemand)
	}
	return &Instance{
		Topo: topoKind, Seed: seed,
		Ch: net.Channel, Links: links, Demands: demands,
	}, nil
}

// DefaultInstances builds the fixed instance grid the pinned tests and docs
// run over: every topology family × seedsPerTopo seeds, numLinks links each,
// demands in [1, maxDemand]. Seeds derive only from (family, index), so the
// grid is stable across runs and machines.
func DefaultInstances(numLinks, maxDemand, seedsPerTopo int) ([]*Instance, error) {
	var out []*Instance
	for ti, kind := range Topologies() {
		for s := 0; s < seedsPerTopo; s++ {
			inst, err := RandomInstance(kind, numLinks, maxDemand, int64(1000*(ti+1)+s))
			if err != nil {
				return nil, err
			}
			out = append(out, inst)
		}
	}
	return out, nil
}

// Gap summarizes one backend's measured gap over an instance set.
type Gap struct {
	// Backend is the sched.Backend name.
	Backend string
	// Worst and Mean are the maximum and average ratio over the instances:
	// length/OptimalLength for ExactGaps, length/bestBackendLength for
	// RatioGaps. Both are >= 1 by construction.
	Worst, Mean float64
	// Instances is how many instances the backend was measured on.
	Instances int
}

// ExactGaps schedules every instance with every backend and returns each
// backend's exact optimality gap — schedule length over sched.OptimalLength
// — verifying every schedule on the way. Instances must be small enough for
// the exact DP (at most 20 links; demand state space within its cap).
func ExactGaps(backends []sched.Backend, instances []*Instance) ([]Gap, error) {
	if backends == nil {
		backends = sched.Backends()
	}
	gaps := make([]Gap, len(backends))
	for i, b := range backends {
		gaps[i].Backend = b.Name
	}
	for _, inst := range instances {
		opt, err := sched.OptimalLength(inst.Ch, inst.Links, inst.Demands)
		if err != nil {
			return nil, fmt.Errorf("gapharness: %s/%d optimal: %w", inst.Topo, inst.Seed, err)
		}
		if opt == 0 {
			continue
		}
		for i, b := range backends {
			s, err := b.Build(inst.Ch, inst.Links, inst.Demands)
			if err != nil {
				return nil, fmt.Errorf("gapharness: %s/%d %s: %w", inst.Topo, inst.Seed, b.Name, err)
			}
			if err := s.Verify(inst.Ch, inst.Links, inst.Demands); err != nil {
				return nil, fmt.Errorf("gapharness: %s/%d %s: %w", inst.Topo, inst.Seed, b.Name, err)
			}
			if s.Length() < opt {
				return nil, fmt.Errorf("gapharness: %s/%d %s length %d beats optimum %d",
					inst.Topo, inst.Seed, b.Name, s.Length(), opt)
			}
			ratio := float64(s.Length()) / float64(opt)
			if ratio > gaps[i].Worst {
				gaps[i].Worst = ratio
			}
			gaps[i].Mean += ratio
			gaps[i].Instances++
		}
	}
	for i := range gaps {
		if gaps[i].Instances > 0 {
			gaps[i].Mean /= float64(gaps[i].Instances)
		}
	}
	return gaps, nil
}

// RatioGaps schedules every instance with every backend and returns each
// backend's length relative to the best backend on the same instance — the
// scalable proxy for instances beyond the exact DP. Schedules are verified;
// the best backend's ratio is exactly 1 on each instance.
func RatioGaps(backends []sched.Backend, instances []*Instance) ([]Gap, error) {
	if backends == nil {
		backends = sched.Backends()
	}
	gaps := make([]Gap, len(backends))
	for i, b := range backends {
		gaps[i].Backend = b.Name
	}
	lengths := make([]int, len(backends))
	for _, inst := range instances {
		best := 0
		for i, b := range backends {
			s, err := b.Build(inst.Ch, inst.Links, inst.Demands)
			if err != nil {
				return nil, fmt.Errorf("gapharness: %s/%d %s: %w", inst.Topo, inst.Seed, b.Name, err)
			}
			if err := s.Verify(inst.Ch, inst.Links, inst.Demands); err != nil {
				return nil, fmt.Errorf("gapharness: %s/%d %s: %w", inst.Topo, inst.Seed, b.Name, err)
			}
			lengths[i] = s.Length()
			if best == 0 || s.Length() < best {
				best = s.Length()
			}
		}
		if best == 0 {
			continue
		}
		for i := range backends {
			ratio := float64(lengths[i]) / float64(best)
			if ratio > gaps[i].Worst {
				gaps[i].Worst = ratio
			}
			gaps[i].Mean += ratio
			gaps[i].Instances++
		}
	}
	for i := range gaps {
		if gaps[i].Instances > 0 {
			gaps[i].Mean /= float64(gaps[i].Instances)
		}
	}
	return gaps, nil
}
