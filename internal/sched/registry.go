package sched

import "scream/internal/phys"

// Backend is one member of the single-channel scheduler family behind a
// uniform build signature: the shape the optimality-gap harness
// (internal/sched/gapharness) iterates over. Every Backend's output must
// satisfy Schedule.Verify against the same inputs.
type Backend struct {
	// Name identifies the backend in harness reports and figure series.
	Name string
	// Build computes a feasible schedule for the instance.
	Build func(ch *phys.Channel, links []phys.Link, demands []int) (*Schedule, error)
}

// Backends returns the registered scheduler family, in reporting order: the
// three static greedy orderings of the MobiCom 2006 baseline, the max-weight
// backlog×rate scheduler, and the Fan-Zhang length-class approximation.
// Adding a scheduler here automatically enrolls it in the gap harness and
// its pinned worst-case tests.
func Backends() []Backend {
	ordered := func(ord Ordering) func(*phys.Channel, []phys.Link, []int) (*Schedule, error) {
		return func(ch *phys.Channel, links []phys.Link, demands []int) (*Schedule, error) {
			return GreedyPhysical(ch, links, demands, ord)
		}
	}
	return []Backend{
		{Name: "greedy(head-id-desc)", Build: ordered(ByHeadIDDesc)},
		{Name: "greedy(demand-desc)", Build: ordered(ByDemandDesc)},
		{Name: "greedy(length-desc)", Build: ordered(ByLengthDesc)},
		{Name: "maxweight", Build: GreedyMaxWeight},
		{Name: "fanzhang", Build: ApproxFanZhang},
	}
}
