package sched

import "scream/internal/phys"

// Backend is one member of the single-channel scheduler family behind a
// uniform build signature: the shape the optimality-gap harness
// (internal/sched/gapharness) iterates over. Every Backend's output must
// satisfy Schedule.Verify against the same inputs.
type Backend struct {
	// Name identifies the backend in harness reports and figure series.
	Name string
	// Doc is a one-line description for registry listings (the flow-level
	// scheduler registry and the public scream.Schedulers API re-export it).
	Doc string
	// Build computes a feasible schedule for the instance over any
	// interference engine (the dense channel or the spatial index).
	Build func(ch phys.Engine, links []phys.Link, demands []int) (*Schedule, error)
}

// Backends returns the registered scheduler family, in reporting order: the
// three static greedy orderings of the MobiCom 2006 baseline, the max-weight
// backlog×rate scheduler, and the Fan-Zhang length-class approximation.
// Adding a scheduler here automatically enrolls it in the gap harness and
// its pinned worst-case tests.
func Backends() []Backend {
	ordered := func(ord Ordering) func(phys.Engine, []phys.Link, []int) (*Schedule, error) {
		return func(ch phys.Engine, links []phys.Link, demands []int) (*Schedule, error) {
			return GreedyPhysical(ch, links, demands, ord)
		}
	}
	return []Backend{
		{
			Name:  "greedy(head-id-desc)",
			Doc:   "centralized GreedyPhysical in the paper's head-ID admission order (the order FDD emulates)",
			Build: ordered(ByHeadIDDesc),
		},
		{
			Name:  "greedy(demand-desc)",
			Doc:   "centralized GreedyPhysical admitting heavier-demand links first",
			Build: ordered(ByDemandDesc),
		},
		{
			Name:  "greedy(length-desc)",
			Doc:   "centralized GreedyPhysical admitting longer links first",
			Build: ordered(ByLengthDesc),
		},
		{
			Name:  "maxweight",
			Doc:   "queue-aware greedy re-ranking links by backlog x Shannon-rate each build (arXiv:1106.1590)",
			Build: GreedyMaxWeight,
		},
		{
			Name:  "fanzhang",
			Doc:   "Fan-Zhang length-class approximation: geometric classes first-fit on fresh slots, longest class first (arXiv:0910.5215)",
			Build: ApproxFanZhang,
		},
	}
}
