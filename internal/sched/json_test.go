package sched

import (
	"encoding/json"
	"testing"

	"scream/internal/phys"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := NewSchedule()
	s.AppendSlot([]phys.Link{{From: 0, To: 1}, {From: 5, To: 6}})
	s.AppendSlot([]phys.Link{{From: 2, To: 3}})

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"slots":[[[0,1],[5,6]],[[2,3]]]}`
	if string(data) != want {
		t.Errorf("encoding = %s, want %s", data, want)
	}

	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(&back) {
		t.Error("round trip changed the schedule")
	}
}

func TestScheduleJSONRoundTripRealSchedule(t *testing.T) {
	net, links, demands := testMesh(t, 5, 3)
	s, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(&back) {
		t.Error("round trip changed a real schedule")
	}
	// The decoded schedule must still verify.
	if err := back.Verify(net.Channel, links, demands); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleJSONErrors(t *testing.T) {
	var s Schedule
	if err := json.Unmarshal([]byte(`{"slots":[[[0,-1]]]}`), &s); err == nil {
		t.Error("negative node id should fail")
	}
	if err := json.Unmarshal([]byte(`{bad`), &s); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestScheduleJSONEmpty(t *testing.T) {
	s := NewSchedule()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Length() != 0 {
		t.Error("empty schedule round trip broken")
	}
}
