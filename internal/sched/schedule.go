// Package sched defines STDMA schedules, verifies them against the physical
// interference model, and implements the centralized GreedyPhysical baseline
// of Brar/Blough/Santi (MobiCom 2006) that FDD provably emulates (Theorem 4),
// plus a deliberately localized greedy used to demonstrate Theorem 1.
package sched

import (
	"fmt"

	"scream/internal/phys"
)

// Schedule is an STDMA schedule: an ordered list of slots, each holding the
// set of directed links that transmit concurrently in that slot.
//
// Multi-channel schedules additionally carry a per-slot channel assignment
// (AppendSlotAssigned / SlotChannels): links of one slot that ride different
// orthogonal channels do not interfere with each other. A nil assignment
// means every link rides channel 0 — the single-channel schedules of the
// paper, whose representation (and JSON encoding) is unchanged.
type Schedule struct {
	slots [][]phys.Link
	// chans, when non-nil, is parallel to slots: chans[i][j] is the channel
	// of slots[i][j]. A nil chans (or a nil chans[i]) means channel 0.
	chans [][]int
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// Length returns the number of slots — the quantity the paper minimizes.
func (s *Schedule) Length() int { return len(s.slots) }

// Slot returns the links of slot i. The returned slice is owned by the
// schedule and must not be modified.
func (s *Schedule) Slot(i int) []phys.Link { return s.slots[i] }

// AppendSlot adds a slot holding the given links (copied), all on channel 0.
func (s *Schedule) AppendSlot(links []phys.Link) {
	cp := make([]phys.Link, len(links))
	copy(cp, links)
	s.slots = append(s.slots, cp)
	if s.chans != nil && len(s.chans) < len(s.slots) {
		s.chans = append(s.chans, make([]int, len(links)))
	}
}

// AddToSlot places l in slot i, growing the schedule as needed.
func (s *Schedule) AddToSlot(i int, l phys.Link) {
	for len(s.slots) <= i {
		s.slots = append(s.slots, nil)
	}
	s.slots[i] = append(s.slots[i], l)
	if s.chans != nil {
		for len(s.chans) < len(s.slots) {
			s.chans = append(s.chans, nil)
		}
		s.chans[i] = append(s.chans[i], 0)
	}
}

// AppendSlotAssigned adds a slot holding the given links with their channel
// assignment (both copied). It panics if the two slices disagree in length.
func (s *Schedule) AppendSlotAssigned(links []phys.Link, channels []int) {
	if len(links) != len(channels) {
		panic(fmt.Sprintf("sched: %d links with %d channel assignments", len(links), len(channels)))
	}
	if s.chans == nil {
		// Backfill: every slot appended so far rode channel 0.
		s.chans = make([][]int, len(s.slots))
		for i, slot := range s.slots {
			s.chans[i] = make([]int, len(slot))
		}
	}
	lcp := make([]phys.Link, len(links))
	copy(lcp, links)
	s.slots = append(s.slots, lcp)
	ccp := make([]int, len(channels))
	copy(ccp, channels)
	s.chans = append(s.chans, ccp)
}

// SlotChannels returns the channel assignment of slot i, parallel to
// Slot(i). It returns nil when the slot has no recorded assignment (every
// link rides channel 0). The returned slice is owned by the schedule and
// must not be modified.
func (s *Schedule) SlotChannels(i int) []int {
	if s.chans == nil || i >= len(s.chans) {
		return nil
	}
	return s.chans[i]
}

// NumChannelsUsed returns 1 + the highest channel index any link rides — the
// channel count a radio plan needs to realize the schedule.
func (s *Schedule) NumChannelsUsed() int {
	max := 0
	for _, slot := range s.chans {
		for _, c := range slot {
			if c > max {
				max = c
			}
		}
	}
	return max + 1
}

// TotalTransmissions returns the number of (link, slot) placements.
func (s *Schedule) TotalTransmissions() int {
	total := 0
	for _, slot := range s.slots {
		total += len(slot)
	}
	return total
}

// Equal reports whether two schedules are slot-for-slot identical, treating
// each slot as a multiset of placements: the same links, with the same
// multiplicity, on the same channels (order within a slot is irrelevant).
// Multiplicity matters because a multi-radio link may legally ride several
// channels of one slot; a slot with no recorded assignment is
// all-channel-0, so single-channel schedules compare exactly as before.
func (s *Schedule) Equal(o *Schedule) bool {
	if s.Length() != o.Length() {
		return false
	}
	for i := range s.slots {
		if len(s.slots[i]) != len(o.slots[i]) {
			return false
		}
		count := make(map[phys.Placement]int, len(s.slots[i]))
		sc, oc := s.SlotChannels(i), o.SlotChannels(i)
		for j, l := range s.slots[i] {
			p := phys.Placement{Link: l}
			if sc != nil {
				p.Channel = sc[j]
			}
			count[p]++
		}
		for j, l := range o.slots[i] {
			p := phys.Placement{Link: l}
			if oc != nil {
				p.Channel = oc[j]
			}
			if count[p] == 0 {
				return false
			}
			count[p]--
		}
	}
	return true
}

// Verify checks that the schedule is feasible under the physical
// interference model of channel ch and that it delivers exactly the given
// demands: links[i] appears in exactly demands[i] slots. It returns nil on
// success and a descriptive error on the first violation.
func (s *Schedule) Verify(ch *phys.Channel, links []phys.Link, demands []int) error {
	if len(links) != len(demands) {
		return fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	for i, slot := range s.slots {
		if len(slot) == 0 {
			return fmt.Errorf("sched: slot %d is empty", i)
		}
		if !ch.FeasibleSet(slot) {
			return fmt.Errorf("sched: slot %d is infeasible under the physical interference model: %v", i, slot)
		}
	}
	want := make(map[phys.Link]int, len(links))
	for i, l := range links {
		want[l] += demands[i]
	}
	got := make(map[phys.Link]int)
	for _, slot := range s.slots {
		for _, l := range slot {
			got[l]++
		}
	}
	for l, w := range want {
		if got[l] != w {
			return fmt.Errorf("sched: link %v scheduled %d times, demand is %d", l, got[l], w)
		}
	}
	for l := range got {
		if _, ok := want[l]; !ok {
			return fmt.Errorf("sched: link %v scheduled but has no demand", l)
		}
	}
	return nil
}

// VerifyMulti checks a multi-channel schedule against the channel set: every
// slot's channel assignment must be feasible (per-channel SINR inequalities
// and primary conflicts, plus the per-node radio budget — see
// phys.ChannelSet.FeasibleAssignment) and the schedule must deliver exactly
// the given demands, each placement serving one demand unit (a link may ride
// several channels of one slot when radios allow). Slots without a recorded
// assignment are taken as all-channel-0.
func (s *Schedule) VerifyMulti(cs *phys.ChannelSet, numRadios int, links []phys.Link, demands []int) error {
	if len(links) != len(demands) {
		return fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	got := make(map[phys.Link]int)
	for i, slot := range s.slots {
		if len(slot) == 0 {
			return fmt.Errorf("sched: slot %d is empty", i)
		}
		chans := s.SlotChannels(i)
		placements := make([]phys.Placement, len(slot))
		for j, l := range slot {
			c := 0
			if chans != nil {
				c = chans[j]
			}
			if c < 0 || c >= cs.NumChannels() {
				return fmt.Errorf("sched: slot %d assigns %v to channel %d of %d", i, l, c, cs.NumChannels())
			}
			placements[j] = phys.Placement{Link: l, Channel: c}
			got[l]++
		}
		if !cs.FeasibleAssignment(placements, numRadios) {
			return fmt.Errorf("sched: slot %d is infeasible under the multi-channel model (%d radios): %v", i, numRadios, placements)
		}
	}
	want := make(map[phys.Link]int, len(links))
	for i, l := range links {
		want[l] += demands[i]
	}
	for l, w := range want {
		if got[l] != w {
			return fmt.Errorf("sched: link %v scheduled %d times, demand is %d", l, got[l], w)
		}
	}
	for l := range got {
		if _, ok := want[l]; !ok {
			return fmt.Errorf("sched: link %v scheduled but has no demand", l)
		}
	}
	return nil
}

// CountInfeasibleSlots returns how many slots of s violate the full
// physical interference model (data + ACK inequalities) of ch.
func CountInfeasibleSlots(ch *phys.Channel, s *Schedule) int {
	bad := 0
	for i := 0; i < s.Length(); i++ {
		if !ch.FeasibleSet(s.Slot(i)) {
			bad++
		}
	}
	return bad
}

// LinearLength returns the length of the fully serialized schedule (one
// transmission per slot) — the paper's baseline for the "%age improvement
// over linear" metric of Figures 6 and 7.
func LinearLength(demands []int) int {
	total := 0
	for _, d := range demands {
		total += d
	}
	return total
}

// ImprovementOverLinear returns the percentage improvement of a schedule of
// the given length over the serialized schedule: 100*(TD - L)/TD.
func ImprovementOverLinear(length, totalDemand int) float64 {
	if totalDemand == 0 {
		return 0
	}
	return 100 * float64(totalDemand-length) / float64(totalDemand)
}
