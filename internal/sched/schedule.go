// Package sched defines STDMA schedules, verifies them against the physical
// interference model, and implements the centralized GreedyPhysical baseline
// of Brar/Blough/Santi (MobiCom 2006) that FDD provably emulates (Theorem 4),
// plus a deliberately localized greedy used to demonstrate Theorem 1.
package sched

import (
	"fmt"

	"scream/internal/phys"
)

// Schedule is an STDMA schedule: an ordered list of slots, each holding the
// set of directed links that transmit concurrently in that slot.
type Schedule struct {
	slots [][]phys.Link
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// Length returns the number of slots — the quantity the paper minimizes.
func (s *Schedule) Length() int { return len(s.slots) }

// Slot returns the links of slot i. The returned slice is owned by the
// schedule and must not be modified.
func (s *Schedule) Slot(i int) []phys.Link { return s.slots[i] }

// AppendSlot adds a slot holding the given links (copied).
func (s *Schedule) AppendSlot(links []phys.Link) {
	cp := make([]phys.Link, len(links))
	copy(cp, links)
	s.slots = append(s.slots, cp)
}

// AddToSlot places l in slot i, growing the schedule as needed.
func (s *Schedule) AddToSlot(i int, l phys.Link) {
	for len(s.slots) <= i {
		s.slots = append(s.slots, nil)
	}
	s.slots[i] = append(s.slots[i], l)
}

// TotalTransmissions returns the number of (link, slot) placements.
func (s *Schedule) TotalTransmissions() int {
	total := 0
	for _, slot := range s.slots {
		total += len(slot)
	}
	return total
}

// Equal reports whether two schedules are slot-for-slot identical, treating
// each slot as a set (order within a slot is irrelevant).
func (s *Schedule) Equal(o *Schedule) bool {
	if s.Length() != o.Length() {
		return false
	}
	for i := range s.slots {
		if len(s.slots[i]) != len(o.slots[i]) {
			return false
		}
		set := make(map[phys.Link]bool, len(s.slots[i]))
		for _, l := range s.slots[i] {
			set[l] = true
		}
		for _, l := range o.slots[i] {
			if !set[l] {
				return false
			}
		}
	}
	return true
}

// Verify checks that the schedule is feasible under the physical
// interference model of channel ch and that it delivers exactly the given
// demands: links[i] appears in exactly demands[i] slots. It returns nil on
// success and a descriptive error on the first violation.
func (s *Schedule) Verify(ch *phys.Channel, links []phys.Link, demands []int) error {
	if len(links) != len(demands) {
		return fmt.Errorf("sched: %d links vs %d demands", len(links), len(demands))
	}
	for i, slot := range s.slots {
		if len(slot) == 0 {
			return fmt.Errorf("sched: slot %d is empty", i)
		}
		if !ch.FeasibleSet(slot) {
			return fmt.Errorf("sched: slot %d is infeasible under the physical interference model: %v", i, slot)
		}
	}
	want := make(map[phys.Link]int, len(links))
	for i, l := range links {
		want[l] += demands[i]
	}
	got := make(map[phys.Link]int)
	for _, slot := range s.slots {
		for _, l := range slot {
			got[l]++
		}
	}
	for l, w := range want {
		if got[l] != w {
			return fmt.Errorf("sched: link %v scheduled %d times, demand is %d", l, got[l], w)
		}
	}
	for l := range got {
		if _, ok := want[l]; !ok {
			return fmt.Errorf("sched: link %v scheduled but has no demand", l)
		}
	}
	return nil
}

// CountInfeasibleSlots returns how many slots of s violate the full
// physical interference model (data + ACK inequalities) of ch.
func CountInfeasibleSlots(ch *phys.Channel, s *Schedule) int {
	bad := 0
	for i := 0; i < s.Length(); i++ {
		if !ch.FeasibleSet(s.Slot(i)) {
			bad++
		}
	}
	return bad
}

// LinearLength returns the length of the fully serialized schedule (one
// transmission per slot) — the paper's baseline for the "%age improvement
// over linear" metric of Figures 6 and 7.
func LinearLength(demands []int) int {
	total := 0
	for _, d := range demands {
		total += d
	}
	return total
}

// ImprovementOverLinear returns the percentage improvement of a schedule of
// the given length over the serialized schedule: 100*(TD - L)/TD.
func ImprovementOverLinear(length, totalDemand int) float64 {
	if totalDemand == 0 {
		return 0
	}
	return 100 * float64(totalDemand-length) / float64(totalDemand)
}
