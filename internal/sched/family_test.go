package sched

import (
	"math/rand"
	"sort"
	"testing"

	"scream/internal/phys"
	"scream/internal/topo"
)

// naiveFirstFit is the reference admission pass the scheduler family is
// fuzzed against (the naive-reference pattern of the PR 3/5 engines): place
// each link of order into its first demands[i] slots where appending it
// keeps the slot feasible under the full FeasibleSet re-check — no
// incremental SlotState, no slabs.
func naiveFirstFit(ch *phys.Channel, links []phys.Link, demands []int, order []int) *Schedule {
	var slots [][]phys.Link
	for _, ei := range order {
		remaining := demands[ei]
		for slot := 0; remaining > 0; slot++ {
			if slot == len(slots) {
				slots = append(slots, nil)
			}
			cand := append(append([]phys.Link(nil), slots[slot]...), links[ei])
			if ch.FeasibleSet(cand) {
				slots[slot] = cand
				remaining--
			}
		}
	}
	s := NewSchedule()
	for _, sl := range slots {
		s.AppendSlot(sl)
	}
	return s
}

// naiveFanZhang mirrors ApproxFanZhang with the naive admission pass:
// length classes scheduled longest-first, each on fresh slots.
func naiveFanZhang(ch *phys.Channel, links []phys.Link, demands []int) *Schedule {
	classes := LengthClasses(ch, links)
	byClass := make(map[int][]int)
	for i := range links {
		byClass[classes[i]] = append(byClass[classes[i]], i)
	}
	var order []int
	for c := range byClass {
		order = append(order, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))
	s := NewSchedule()
	for _, c := range order {
		sub := naiveFirstFit(ch, links, demands, byClass[c])
		for i := 0; i < sub.Length(); i++ {
			s.AppendSlot(sub.Slot(i))
		}
	}
	return s
}

// fuzzInstance draws a random sub-instance of the given mesh: a subset of
// its forest links with demands in [0, 3].
func fuzzInstance(rng *rand.Rand, links []phys.Link) ([]phys.Link, []int) {
	n := 2 + rng.Intn(8)
	perm := rng.Perm(len(links))
	var fl []phys.Link
	var fd []int
	for _, i := range perm[:min(n, len(links))] {
		fl = append(fl, links[i])
		fd = append(fd, rng.Intn(4))
	}
	return fl, fd
}

// TestFamilyMatchesNaiveReferenceFuzzed pins every registered scheduler to
// its naive reference on random small instances: identical schedules
// (multiset-per-slot equality) and a passing Verify. This is the property
// that lets the slab/SlotState fast paths stand in for the obviously-correct
// admission loop.
func TestFamilyMatchesNaiveReferenceFuzzed(t *testing.T) {
	net, allLinks, _ := testMesh(t, 5, 11)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		links, demands := fuzzInstance(rng, allLinks)
		for _, b := range Backends() {
			got, err := b.Build(net.Channel, links, demands)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, b.Name, err)
			}
			if err := got.Verify(net.Channel, links, demands); err != nil {
				t.Fatalf("trial %d %s: %v", trial, b.Name, err)
			}
			var want *Schedule
			switch b.Name {
			case "maxweight":
				want = naiveFirstFit(net.Channel, links, demands, MaxWeightOrder(net.Channel, links, demands))
			case "fanzhang":
				want = naiveFanZhang(net.Channel, links, demands)
			default:
				continue // static greedy orderings are pinned by the PR 3 engine tests
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d %s: schedule diverges from naive reference\nlinks=%v demands=%v\ngot %d slots, want %d",
					trial, b.Name, links, demands, got.Length(), want.Length())
			}
		}
	}
}

// TestMaxWeightOrderTieBreak pins the determinism contract of the
// backlog-ordered scheduler: equal backlog×rate weights must break by
// ascending link index, so figures built from backlog snapshots are
// byte-identical for any worker count.
func TestMaxWeightOrderTieBreak(t *testing.T) {
	net, err := topo.NewLine(12, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Equal-length, equal-demand links: every weight ties, so the order must
	// be exactly ascending link index.
	links := []phys.Link{{From: 0, To: 1}, {From: 3, To: 4}, {From: 6, To: 7}, {From: 9, To: 10}}
	demands := []int{2, 2, 2, 2}
	order := MaxWeightOrder(net.Channel, links, demands)
	for i, ei := range order {
		if ei != i {
			t.Fatalf("all-tied weights must order by link index: got %v", order)
		}
	}
	// A heavier backlog must jump the queue, ties still by index.
	demands = []int{2, 2, 5, 2}
	order = MaxWeightOrder(net.Channel, links, demands)
	want := []int{2, 0, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("skewed backlog order = %v, want %v", order, want)
		}
	}
}

// TestMaxWeightPrefersBackloggedLinks checks the scheduling substance behind
// the ordering: under a skewed backlog, the hot link's transmissions finish
// no later under max-weight than under the static head-ID order.
func TestMaxWeightPrefersBackloggedLinks(t *testing.T) {
	net, links, _ := testMesh(t, 5, 3)
	demands := make([]int, len(links))
	hot := 0
	for i := range demands {
		demands[i] = 1
	}
	demands[hot] = 12
	mw, err := GreedyMaxWeight(net.Channel, links, demands)
	if err != nil {
		t.Fatal(err)
	}
	static, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	lastSlot := func(s *Schedule, l phys.Link) int {
		last := -1
		for i := 0; i < s.Length(); i++ {
			for _, m := range s.Slot(i) {
				if m == l {
					last = i
				}
			}
		}
		return last
	}
	if mwLast, stLast := lastSlot(mw, links[hot]), lastSlot(static, links[hot]); mwLast > stLast {
		t.Errorf("max-weight finishes hot link at slot %d, static greedy at %d", mwLast, stLast)
	}
}

// TestFanZhangClassStructure checks the partition invariant that carries the
// approximation argument: no slot of the Fan-Zhang schedule mixes links from
// different length classes.
func TestFanZhangClassStructure(t *testing.T) {
	net, links, demands := testMesh(t, 5, 7)
	s, err := ApproxFanZhang(net.Channel, links, demands)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(net.Channel, links, demands); err != nil {
		t.Fatal(err)
	}
	classes := LengthClasses(net.Channel, links)
	classOf := make(map[phys.Link]int, len(links))
	for i, l := range links {
		classOf[l] = classes[i]
	}
	for i := 0; i < s.Length(); i++ {
		slot := s.Slot(i)
		for _, l := range slot[1:] {
			if classOf[l] != classOf[slot[0]] {
				t.Fatalf("slot %d mixes length classes %d and %d", i, classOf[slot[0]], classOf[l])
			}
		}
	}
}
