package sched

import (
	"sync/atomic"

	"scream/internal/obs"
	"scream/internal/phys"
)

// Process-wide scheduler instrumentation, mirroring the phys package's
// pattern: Backend.Build has a fixed signature shared by every scheduler
// family, so per-run plumbing is impossible without breaking the registry
// contract. The handles live in one atomically-swapped bundle; disabled (the
// default) costs a single pointer load per schedule construction, and the
// counters are strictly write-only — no scheduling decision ever reads them.
type schedObs struct {
	builds     *obs.Counter
	admissions *obs.Counter
	slots      *obs.Counter
	slotFill   *obs.Histogram
}

var schedMetrics atomic.Pointer[schedObs]

// SetObs wires the scheduler-construction counters into r (nil detaches
// them). Intended to be called once at process start by a CLI enabling
// observability; safe to call concurrently with running schedulers.
func SetObs(r *obs.Registry) {
	if r == nil {
		schedMetrics.Store(nil)
		return
	}
	schedMetrics.Store(&schedObs{
		builds:     r.Counter("scream_sched_builds_total", "greedy-family schedule constructions"),
		admissions: r.Counter("scream_sched_admissions_total", "link placements admitted into schedule slots"),
		slots:      r.Counter("scream_sched_slots_total", "schedule slots materialized"),
		slotFill:   r.Histogram("scream_sched_slot_fill", "links per materialized schedule slot", obs.SlotFillBuckets()),
	})
}

// recordBuild publishes one finished greedy construction: the slot count and
// per-slot fill distribution of the materialized schedule. Disabled, it is a
// single pointer load — no allocation, no iteration.
func recordBuild(slots [][]phys.Link) {
	m := schedMetrics.Load()
	if m == nil {
		return
	}
	m.builds.Inc()
	m.slots.Add(int64(len(slots)))
	var admitted int64
	for _, sl := range slots {
		admitted += int64(len(sl))
		m.slotFill.Observe(float64(len(sl)))
	}
	m.admissions.Add(admitted)
}
