package sched

import (
	"math/rand"
	"testing"

	"scream/internal/phys"
	"scream/internal/topo"
)

func TestOptimalLengthSmallLine(t *testing.T) {
	net, err := topo.NewLine(16, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Three well-separated unit-demand links: all three fit in one slot
	// only if SINR allows; the DP must find the true minimum.
	links := []phys.Link{{From: 0, To: 1}, {From: 7, To: 8}, {From: 14, To: 15}}
	demands := []int{1, 1, 1}
	opt, err := OptimalLength(net.Channel, links, demands)
	if err != nil {
		t.Fatal(err)
	}
	if net.Channel.FeasibleSet(links) {
		if opt != 1 {
			t.Errorf("all-concurrent set should give OPT=1, got %d", opt)
		}
	} else if opt < 2 || opt > 3 {
		t.Errorf("OPT = %d out of plausible range", opt)
	}
	// Greedy can never beat the optimum.
	g, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Length() < opt {
		t.Fatalf("greedy (%d) beat the optimum (%d): DP is wrong", g.Length(), opt)
	}
}

func TestOptimalLengthConflicts(t *testing.T) {
	net, err := topo.NewLine(6, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Chain of overlapping links: pairwise endpoint conflicts force full
	// serialization.
	links := []phys.Link{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}
	opt, err := OptimalLength(net.Channel, links, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Errorf("chained links must serialize: OPT = %d, want 3", opt)
	}
}

func TestOptimalLengthErrors(t *testing.T) {
	net, err := topo.NewLine(25, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimalLength(net.Channel, []phys.Link{{From: 0, To: 1}}, []int{1, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := OptimalLength(net.Channel, []phys.Link{{From: 0, To: 1}}, []int{-1}); err == nil {
		t.Error("negative demand should fail")
	}
	if _, err := OptimalLength(net.Channel, []phys.Link{{From: 0, To: 24}}, []int{1}); err == nil {
		t.Error("unschedulable link should fail")
	}
	big := make([]phys.Link, 21)
	bigD := make([]int, 21)
	for i := range big {
		big[i] = phys.Link{From: i, To: i + 1}
		bigD[i] = 1
	}
	if _, err := OptimalLength(net.Channel, big, bigD); err == nil {
		t.Error("too many links should fail")
	}
	// The general-demand DP is bounded by its residual state space,
	// prod(d_i+1) <= 2^21: eight links of demand 7 need 8^8 ~ 16.7M states.
	var fatLinks []phys.Link
	var fatD []int
	for i := 0; i < 8; i++ {
		fatLinks = append(fatLinks, phys.Link{From: 3 * i, To: 3*i + 1})
		fatD = append(fatD, 7)
	}
	if _, err := OptimalLength(net.Channel, fatLinks, fatD); err == nil {
		t.Error("oversized demand state space should fail")
	}
	if got, err := OptimalLength(net.Channel, nil, nil); err != nil || got != 0 {
		t.Errorf("empty instance should be 0, got %d, %v", got, err)
	}
	// All-zero demands need no slots, and zero-demand links must not count
	// against the 20-link limit.
	if got, err := OptimalLength(net.Channel, []phys.Link{{From: 0, To: 1}}, []int{0}); err != nil || got != 0 {
		t.Errorf("zero-demand instance should be 0, got %d, %v", got, err)
	}
	zeros := make([]phys.Link, 30)
	zeroD := make([]int, 30)
	for i := range zeros {
		zeros[i] = phys.Link{From: i % 24, To: i%24 + 1}
	}
	zeros = append(zeros, phys.Link{From: 0, To: 1})
	zeroD = append(zeroD, 1)
	if got, err := OptimalLength(net.Channel, zeros, zeroD); err != nil || got != 1 {
		t.Errorf("zero-demand links must be dropped before the link limit: got %d, %v", got, err)
	}
}

// TestOptimalLengthGeneralDemands exercises the non-unit-demand DP against
// exactly solvable instances: a fully conflicting chain must serialize to the
// demand total, a mutually feasible well-separated set needs exactly the
// maximum demand, and on mixed instances the exact value must bracket
// between the trivial lower bounds and every greedy backend's length — the
// flow layer's real (aggregated, non-unit) demand vectors are what the gap
// harness feeds this solver.
func TestOptimalLengthGeneralDemands(t *testing.T) {
	net, err := topo.NewLine(16, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Chained links: pairwise primary conflicts force full serialization.
	chain := []phys.Link{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}
	opt, err := OptimalLength(net.Channel, chain, []int{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 6 {
		t.Errorf("conflicting chain with demands 3+1+2: OPT = %d, want 6", opt)
	}
	// Well-separated links: if they are mutually feasible, the schedule is
	// bottlenecked by the heaviest link alone.
	apart := []phys.Link{{From: 0, To: 1}, {From: 7, To: 8}, {From: 14, To: 15}}
	demands := []int{4, 2, 1}
	opt, err = OptimalLength(net.Channel, apart, demands)
	if err != nil {
		t.Fatal(err)
	}
	if net.Channel.FeasibleSet(apart) {
		if opt != 4 {
			t.Errorf("concurrent-feasible set: OPT = %d, want max demand 4", opt)
		}
	} else if opt < 4 || opt > 7 {
		t.Errorf("OPT = %d outside [4, 7]", opt)
	}
	// Every registered backend's schedule is an upper bound; max demand and
	// the unit-demand optimum are lower bounds.
	unitD := []int{1, 1, 1}
	unitOpt, err := OptimalLength(net.Channel, apart, unitD)
	if err != nil {
		t.Fatal(err)
	}
	if opt < unitOpt {
		t.Errorf("general OPT %d below unit OPT %d", opt, unitOpt)
	}
	for _, b := range Backends() {
		s, err := b.Build(net.Channel, apart, demands)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := s.Verify(net.Channel, apart, demands); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if s.Length() < opt {
			t.Errorf("%s length %d beat the optimum %d: DP is wrong", b.Name, s.Length(), opt)
		}
	}
}

// TestGreedyWithinSmallFactorOfOptimal is the empirical face of the
// approximation bound (Theorem 4): on random small instances the greedy
// schedule must stay within a small constant of the exact optimum (the
// theoretical bound is far looser).
func TestGreedyWithinSmallFactorOfOptimal(t *testing.T) {
	net, err := topo.NewLine(40, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	worst := 1.0
	for trial := 0; trial < 40; trial++ {
		var links []phys.Link
		used := map[int]bool{}
		for len(links) < 8 {
			a := rng.Intn(39)
			if used[a] || used[a+1] {
				continue
			}
			dir := phys.Link{From: a, To: a + 1}
			if rng.Intn(2) == 0 {
				dir = dir.Reverse()
			}
			links = append(links, dir)
			used[a], used[a+1] = true, true
		}
		demands := make([]int, len(links))
		for i := range demands {
			demands[i] = 1
		}
		opt, err := OptimalLength(net.Channel, links, demands)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
		if err != nil {
			t.Fatal(err)
		}
		if g.Length() < opt {
			t.Fatalf("greedy %d < OPT %d: impossible", g.Length(), opt)
		}
		if ratio := float64(g.Length()) / float64(opt); ratio > worst {
			worst = ratio
		}
	}
	if worst > 2.5 {
		t.Errorf("greedy/OPT worst ratio %.2f unexpectedly large for 8-link instances", worst)
	}
	t.Logf("worst greedy/OPT ratio over 40 instances: %.2f", worst)
}

func TestGreedyProtocolLongerThanPhysical(t *testing.T) {
	// The capacity claim of the paper's introduction: scheduling under the
	// protocol model (CSMA/CA-style exclusion around every active node at
	// carrier-sense range) yields longer schedules than SINR-based
	// scheduling on the same workload. This requires a realistic radio
	// with SNR margin (fixed 20 dBm power): CSMA's exclusion region is
	// then far larger than the SINR-required separation. (With razor-thin
	// margins the two models are incomparable — the protocol model can
	// even accept SINR-infeasible sets, since it ignores aggregation.)
	net, err := topo.NewGrid(topo.GridConfig{
		Rows: 6, Cols: 6, Step: 30,
		TxPowerMW: phys.DBm(20).MilliWatts(),
		Params:    topo.DefaultParams(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Build a simple workload: every grid row carries flows to the left.
	var ls []phys.Link
	var ds []int
	for r := 0; r < 6; r++ {
		for c := 1; c < 6; c++ {
			ls = append(ls, phys.Link{From: r*6 + c, To: r*6 + c - 1})
			ds = append(ds, 1)
		}
	}
	pm := phys.NewProtocolModel(net.Channel, net.Params.CSThresholdMW)
	proto, err := GreedyProtocol(pm, ls, ds, ByHeadIDDesc, net.Channel)
	if err != nil {
		t.Fatal(err)
	}
	physSched, err := GreedyPhysical(net.Channel, ls, ds, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if physSched.Length() > proto.Length() {
		t.Errorf("physical-model schedule (%d) should not be longer than protocol-model (%d)",
			physSched.Length(), proto.Length())
	}
	t.Logf("protocol model: %d slots, physical model: %d slots (capacity gain %.0f%%)",
		proto.Length(), physSched.Length(),
		100*float64(proto.Length()-physSched.Length())/float64(proto.Length()))
	// Verify the physical schedule truly is feasible.
	if err := physSched.Verify(net.Channel, ls, ds); err != nil {
		t.Fatal(err)
	}
}
