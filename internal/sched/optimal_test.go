package sched

import (
	"math/rand"
	"testing"

	"scream/internal/phys"
	"scream/internal/topo"
)

func TestOptimalLengthSmallLine(t *testing.T) {
	net, err := topo.NewLine(16, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Three well-separated unit-demand links: all three fit in one slot
	// only if SINR allows; the DP must find the true minimum.
	links := []phys.Link{{From: 0, To: 1}, {From: 7, To: 8}, {From: 14, To: 15}}
	demands := []int{1, 1, 1}
	opt, err := OptimalLength(net.Channel, links, demands)
	if err != nil {
		t.Fatal(err)
	}
	if net.Channel.FeasibleSet(links) {
		if opt != 1 {
			t.Errorf("all-concurrent set should give OPT=1, got %d", opt)
		}
	} else if opt < 2 || opt > 3 {
		t.Errorf("OPT = %d out of plausible range", opt)
	}
	// Greedy can never beat the optimum.
	g, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Length() < opt {
		t.Fatalf("greedy (%d) beat the optimum (%d): DP is wrong", g.Length(), opt)
	}
}

func TestOptimalLengthConflicts(t *testing.T) {
	net, err := topo.NewLine(6, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Chain of overlapping links: pairwise endpoint conflicts force full
	// serialization.
	links := []phys.Link{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}
	opt, err := OptimalLength(net.Channel, links, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Errorf("chained links must serialize: OPT = %d, want 3", opt)
	}
}

func TestOptimalLengthErrors(t *testing.T) {
	net, err := topo.NewLine(25, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimalLength(net.Channel, []phys.Link{{From: 0, To: 1}}, []int{2}); err == nil {
		t.Error("non-unit demand should fail")
	}
	if _, err := OptimalLength(net.Channel, []phys.Link{{From: 0, To: 1}}, []int{1, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := OptimalLength(net.Channel, []phys.Link{{From: 0, To: 24}}, []int{1}); err == nil {
		t.Error("unschedulable link should fail")
	}
	big := make([]phys.Link, 21)
	bigD := make([]int, 21)
	for i := range big {
		big[i] = phys.Link{From: i, To: i + 1}
		bigD[i] = 1
	}
	if _, err := OptimalLength(net.Channel, big, bigD); err == nil {
		t.Error("too many links should fail")
	}
	if got, err := OptimalLength(net.Channel, nil, nil); err != nil || got != 0 {
		t.Errorf("empty instance should be 0, got %d, %v", got, err)
	}
}

// TestGreedyWithinSmallFactorOfOptimal is the empirical face of the
// approximation bound (Theorem 4): on random small instances the greedy
// schedule must stay within a small constant of the exact optimum (the
// theoretical bound is far looser).
func TestGreedyWithinSmallFactorOfOptimal(t *testing.T) {
	net, err := topo.NewLine(40, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	worst := 1.0
	for trial := 0; trial < 40; trial++ {
		var links []phys.Link
		used := map[int]bool{}
		for len(links) < 8 {
			a := rng.Intn(39)
			if used[a] || used[a+1] {
				continue
			}
			dir := phys.Link{From: a, To: a + 1}
			if rng.Intn(2) == 0 {
				dir = dir.Reverse()
			}
			links = append(links, dir)
			used[a], used[a+1] = true, true
		}
		demands := make([]int, len(links))
		for i := range demands {
			demands[i] = 1
		}
		opt, err := OptimalLength(net.Channel, links, demands)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GreedyPhysical(net.Channel, links, demands, ByHeadIDDesc)
		if err != nil {
			t.Fatal(err)
		}
		if g.Length() < opt {
			t.Fatalf("greedy %d < OPT %d: impossible", g.Length(), opt)
		}
		if ratio := float64(g.Length()) / float64(opt); ratio > worst {
			worst = ratio
		}
	}
	if worst > 2.5 {
		t.Errorf("greedy/OPT worst ratio %.2f unexpectedly large for 8-link instances", worst)
	}
	t.Logf("worst greedy/OPT ratio over 40 instances: %.2f", worst)
}

func TestGreedyProtocolLongerThanPhysical(t *testing.T) {
	// The capacity claim of the paper's introduction: scheduling under the
	// protocol model (CSMA/CA-style exclusion around every active node at
	// carrier-sense range) yields longer schedules than SINR-based
	// scheduling on the same workload. This requires a realistic radio
	// with SNR margin (fixed 20 dBm power): CSMA's exclusion region is
	// then far larger than the SINR-required separation. (With razor-thin
	// margins the two models are incomparable — the protocol model can
	// even accept SINR-infeasible sets, since it ignores aggregation.)
	net, err := topo.NewGrid(topo.GridConfig{
		Rows: 6, Cols: 6, Step: 30,
		TxPowerMW: phys.DBm(20).MilliWatts(),
		Params:    topo.DefaultParams(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Build a simple workload: every grid row carries flows to the left.
	var ls []phys.Link
	var ds []int
	for r := 0; r < 6; r++ {
		for c := 1; c < 6; c++ {
			ls = append(ls, phys.Link{From: r*6 + c, To: r*6 + c - 1})
			ds = append(ds, 1)
		}
	}
	pm := phys.NewProtocolModel(net.Channel, net.Params.CSThresholdMW)
	proto, err := GreedyProtocol(pm, ls, ds, ByHeadIDDesc, net.Channel)
	if err != nil {
		t.Fatal(err)
	}
	physSched, err := GreedyPhysical(net.Channel, ls, ds, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if physSched.Length() > proto.Length() {
		t.Errorf("physical-model schedule (%d) should not be longer than protocol-model (%d)",
			physSched.Length(), proto.Length())
	}
	t.Logf("protocol model: %d slots, physical model: %d slots (capacity gain %.0f%%)",
		proto.Length(), physSched.Length(),
		100*float64(proto.Length()-physSched.Length())/float64(proto.Length()))
	// Verify the physical schedule truly is feasible.
	if err := physSched.Verify(net.Channel, ls, ds); err != nil {
		t.Fatal(err)
	}
}
