package sched

// Tests for multi-channel scheduling: GreedyPhysicalMulti must collapse to
// GreedyPhysical on one channel and one radio, stay VerifyMulti-feasible and
// get strictly shorter as channels are added, handle degenerate channel
// counts (more channels than feasible links), and round-trip its channel
// assignment through JSON.

import (
	"encoding/json"
	"testing"

	"scream/internal/phys"
)

func multiMesh(t testing.TB, dim int, seed int64, channels int) (*phys.ChannelSet, []phys.Link, []int) {
	t.Helper()
	net, links, demands := testMesh(t, dim, seed)
	cs, err := phys.NewChannelSet(net.Channel, channels)
	if err != nil {
		t.Fatal(err)
	}
	return cs, links, demands
}

// TestGreedyMultiSingleChannelMatchesGreedy: the C=1, R=1 fast path must
// reproduce GreedyPhysical exactly, slot for slot, with no channel
// assignment recorded (so downstream encodings stay byte-identical).
func TestGreedyMultiSingleChannelMatchesGreedy(t *testing.T) {
	cs, links, demands := multiMesh(t, 5, 3, 1)
	want, err := GreedyPhysical(cs.Base(), links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GreedyPhysicalMulti(cs, 1, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("single-channel multi schedule differs: %d vs %d slots", got.Length(), want.Length())
	}
	for i := 0; i < got.Length(); i++ {
		if got.SlotChannels(i) != nil {
			t.Fatalf("slot %d recorded a channel assignment on the single-channel path", i)
		}
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wj) != string(gj) {
		t.Fatalf("single-channel JSON differs:\n%s\n%s", wj, gj)
	}
}

// TestGreedyMultiFeasibleAndShorter: for a mesh with real contention, every
// channel count yields a VerifyMulti-feasible schedule and added channels
// strictly shorten it (until the per-node serialization bound dominates).
func TestGreedyMultiFeasibleAndShorter(t *testing.T) {
	lengths := make([]int, 0, 3)
	for _, c := range []int{1, 2, 4} {
		cs, links, demands := multiMesh(t, 6, 5, c)
		s, err := GreedyPhysicalMulti(cs, 2, links, demands, ByHeadIDDesc)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.VerifyMulti(cs, 2, links, demands); err != nil {
			t.Fatalf("C=%d: %v", c, err)
		}
		if used := s.NumChannelsUsed(); used > c {
			t.Fatalf("C=%d: schedule uses %d channels", c, used)
		}
		lengths = append(lengths, s.Length())
	}
	for i := 1; i < len(lengths); i++ {
		if lengths[i] >= lengths[i-1] {
			t.Fatalf("schedule lengths not strictly decreasing with channels: %v", lengths)
		}
	}
	t.Logf("greedy schedule lengths for C=1,2,4 with 2 radios: %v", lengths)
}

// TestGreedyMultiMoreChannelsThanLinks: with far more channels than
// schedulable links, the schedule degenerates gracefully — radios (not
// channels) bind, unused channels stay empty, and VerifyMulti still holds.
func TestGreedyMultiMoreChannelsThanLinks(t *testing.T) {
	cs, links, demands := multiMesh(t, 3, 9, 16) // 8 forest links, 16 channels
	s, err := GreedyPhysicalMulti(cs, 2, links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyMulti(cs, 2, links, demands); err != nil {
		t.Fatal(err)
	}
	if used := s.NumChannelsUsed(); used > 2*len(links) {
		t.Fatalf("%d channels used for %d links with 2 radios", used, len(links))
	}
	// With every link able to ride 2 channels per slot, total demand must be
	// served in at most ceil(maxPerNodeLoad / 1) slots; sanity-bound it by
	// the single-channel length instead of a closed form.
	single, err := GreedyPhysical(cs.Base(), links, demands, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() > single.Length() {
		t.Fatalf("16-channel schedule (%d slots) longer than single-channel (%d)", s.Length(), single.Length())
	}
}

// TestScheduleEqualChannelAware: Equal must compare slots as multisets of
// (link, channel) placements — duplicate placements of one link (legal with
// multiple radios) and differing channel assignments both distinguish
// schedules.
func TestScheduleEqualChannelAware(t *testing.T) {
	l, m := phys.Link{From: 0, To: 1}, phys.Link{From: 2, To: 3}

	dup := NewSchedule()
	dup.AppendSlotAssigned([]phys.Link{l, l}, []int{0, 1})
	mixed := NewSchedule()
	mixed.AppendSlotAssigned([]phys.Link{l, m}, []int{0, 1})
	if dup.Equal(mixed) {
		t.Fatal("slot [l,l] compared equal to slot [l,m]")
	}

	ch0 := NewSchedule()
	ch0.AppendSlotAssigned([]phys.Link{l, m}, []int{0, 0})
	ch1 := NewSchedule()
	ch1.AppendSlotAssigned([]phys.Link{l, m}, []int{0, 1})
	if ch0.Equal(ch1) {
		t.Fatal("schedules with different channel assignments compared equal")
	}

	// A recorded all-zero assignment means the same thing as no assignment.
	plain := NewSchedule()
	plain.AppendSlot([]phys.Link{m, l})
	if !ch0.Equal(plain) || !plain.Equal(ch0) {
		t.Fatal("explicit channel-0 assignment not equal to unassigned slot")
	}
}

// TestScheduleJSONChannels: the channel assignment survives a JSON round
// trip, and single-channel schedules still encode without a "chans" key.
func TestScheduleJSONChannels(t *testing.T) {
	s := NewSchedule()
	s.AppendSlotAssigned([]phys.Link{{From: 0, To: 1}, {From: 2, To: 3}}, []int{0, 1})
	s.AppendSlotAssigned([]phys.Link{{From: 4, To: 5}}, []int{2})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatal("links did not round-trip")
	}
	for i := 0; i < s.Length(); i++ {
		want, got := s.SlotChannels(i), back.SlotChannels(i)
		if len(want) != len(got) {
			t.Fatalf("slot %d channels: got %v, want %v", i, got, want)
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("slot %d channels: got %v, want %v", i, got, want)
			}
		}
	}

	plain := NewSchedule()
	plain.AppendSlot([]phys.Link{{From: 0, To: 1}})
	data, err = json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"slots":[[[0,1]]]}` {
		t.Fatalf("single-channel encoding changed: %s", data)
	}

	// Mismatched assignment lengths must be rejected.
	if err := json.Unmarshal([]byte(`{"slots":[[[0,1]]],"chans":[[0,1]]}`), &back); err == nil {
		t.Fatal("mismatched chans accepted")
	}
}
