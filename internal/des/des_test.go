package des

import (
	"math/rand"
	"sort"
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1 {
		t.Errorf("Second.Seconds() = %v", Second.Seconds())
	}
	if FromSeconds(2.5) != 2500*Millisecond {
		t.Errorf("FromSeconds(2.5) = %v", FromSeconds(2.5))
	}
	if (1500 * Microsecond).String() != "0.001500s" {
		t.Errorf("String = %q", (1500 * Microsecond).String())
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-instant events must run FIFO, got %v", order)
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at Time
	e.After(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Errorf("nested After ended at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestStepAndPending(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty queue should be false")
	}
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if !e.Step() || e.Pending() != 1 {
		t.Error("Step should consume one event")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Errorf("RunUntil(25) fired %v", fired)
	}
	if e.Now() != 25 {
		t.Errorf("Now = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("remaining events not fired: %v", fired)
	}
}

func TestRunUntilDoesNotRewind(t *testing.T) {
	e := New()
	e.RunUntil(100)
	e.RunUntil(50)
	if e.Now() != 100 {
		t.Errorf("RunUntil must never rewind the clock, Now = %v", e.Now())
	}
}

func TestDeterminismUnderRandomLoad(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var log []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			log = append(log, e.Now())
			if depth < 4 {
				for i := 0; i < 3; i++ {
					e.After(Time(rng.Intn(100)), func() { spawn(depth + 1) })
				}
			}
		}
		e.At(0, func() { spawn(0) })
		e.Run()
		return log
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClockMonotone(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(3))
	last := Time(-1)
	var check func()
	count := 0
	check = func() {
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
		count++
		if count < 500 {
			e.After(Time(rng.Intn(10)), check)
		}
	}
	e.At(0, check)
	e.Run()
}
