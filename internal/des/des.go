// Package des is a small deterministic discrete-event simulation engine: an
// int64-nanosecond clock and a stable event queue. It is the substrate that
// replaces the paper's GTNetS packet-level simulator for the components that
// need event-driven execution (the mote experiment, the packet-level radio).
package des

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String implements fmt.Stringer.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded event loop. Events scheduled for the same
// instant run in scheduling order, which makes runs bit-for-bit reproducible.
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// New returns an engine at time zero with no pending events.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics (it would silently corrupt causality).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Step executes the earliest pending event and returns true, or returns
// false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
