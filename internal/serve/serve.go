// Package serve is the HTTP service layer of the screamd daemon: a
// long-running, multi-tenant mesh-simulation controller. Clients POST a
// scream.ScenarioSpec (or name a preloaded scenario) to /api/v1/run and
// receive the run as a stream of per-epoch JSON events — NDJSON by default,
// server-sent events when requested — terminated by the full FlowResult.
//
// Every run is a session: admission-controlled (MaxSessions concurrent, 429
// beyond), sandboxed (preloaded scenarios are cloned per session, so
// concurrent runs never share mutable state), and individually cancelable
// (client disconnect or server drain aborts the run via its context). The
// daemon's own scream_serve_* metrics land in the same registry as the
// simulation's flow/core/sched families and are exposed on /metrics
// (Prometheus text) and /api/v1/metrics (JSON snapshot).
//
// Each session's schema-v2 trace is captured in a bounded in-memory ring
// (Config.TraceBytes per session, never disk) and served at
// /api/v1/sessions/{id}/trace — live snapshots while the run streams, the
// full retained tail after it ends (completed sessions are kept for the
// trace endpoint until doneRetention newer ones displace them). Pipe it
// straight into the analyzer: curl .../trace | screamtrace validate.
//
// The package deliberately holds no scheduling logic: a streamed run is
// exactly scream.RunWith on the same spec — byte-for-byte the result a
// library caller gets in-process.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scream"
	"scream/internal/obs"
)

// Config parameterizes New.
type Config struct {
	// Scenarios preloads named scenarios: their meshes are built once at
	// startup and cloned per session, so repeated runs skip deployment
	// construction and concurrent runs stay isolated. Specs must validate
	// and carry distinct, non-empty names.
	Scenarios []scream.ScenarioSpec
	// MaxSessions caps concurrently running simulations; further /api/v1/run
	// requests get 429 Too Many Requests. 0 means DefaultMaxSessions.
	MaxSessions int
	// Metrics is the registry backing /metrics and every run's simulation
	// counters. Nil creates a private registry.
	Metrics *scream.ObsRegistry
	// TraceBytes bounds each session's in-memory trace capture (the ring
	// behind /api/v1/sessions/{id}/trace). 0 means obs.DefaultRingBytes;
	// negative disables capture entirely.
	TraceBytes int
	// Version is reported by /version ("" = "dev").
	Version string
}

// DefaultMaxSessions is the admission cap when Config.MaxSessions is 0.
const DefaultMaxSessions = 4

// doneRetention is how many finished sessions keep their captured trace
// fetchable; older ones are evicted FIFO.
const doneRetention = 16

// scenario is a preloaded spec with its prebuilt deployment.
type scenario struct {
	spec scream.ScenarioSpec
	mesh *scream.Mesh
}

// session is one running simulation.
type session struct {
	id        int64
	name      string
	scenario  string // metric label: the scenario name, or "adhoc"
	scheduler string
	started   time.Time
	epochs    atomic.Int64
	cancel    context.CancelFunc
	sink      *obs.RingSink // per-session trace capture; nil when disabled
}

// Server is the screamd HTTP handler. Create with New; it is safe for
// concurrent use.
type Server struct {
	mux       *http.ServeMux
	reg       *scream.ObsRegistry
	max       int
	version   string
	scenarios map[string]*scenario
	names     []string

	traceBytes int // per-session ring budget; <0 disables capture

	mu        sync.Mutex
	sessions  map[int64]*session
	done      map[int64]*session // finished sessions retained for /trace
	doneOrder []int64            // eviction order for done, oldest first
	nextID    int64
	draining  bool

	mStarted   *obs.Counter
	mCompleted *obs.Counter
	mFailed    *obs.Counter
	mRejected  *obs.Counter
	mEpochs    *obs.Counter
	mActive    *obs.Gauge
	mDuration  *obs.Histogram
}

// New builds a Server, constructing the meshes of every preloaded scenario.
func New(cfg Config) (*Server, error) {
	reg := cfg.Metrics
	if reg == nil {
		reg = scream.NewObsRegistry()
	}
	max := cfg.MaxSessions
	if max <= 0 {
		max = DefaultMaxSessions
	}
	version := cfg.Version
	if version == "" {
		version = "dev"
	}
	s := &Server{
		reg:        reg,
		max:        max,
		version:    version,
		traceBytes: cfg.TraceBytes,
		scenarios:  make(map[string]*scenario),
		sessions:   make(map[int64]*session),
		done:       make(map[int64]*session),

		mStarted:   reg.Counter("scream_serve_sessions_started_total", "simulation sessions admitted"),
		mCompleted: reg.Counter("scream_serve_sessions_completed_total", "sessions that ran to their horizon"),
		mFailed:    reg.Counter("scream_serve_sessions_failed_total", "sessions that ended in an error (including cancellation)"),
		mRejected:  reg.Counter("scream_serve_sessions_rejected_total", "run requests refused at the admission cap"),
		mEpochs:    reg.Counter("scream_serve_epochs_streamed_total", "epoch events streamed to clients"),
		mActive:    reg.Gauge("scream_serve_sessions_active", "currently running sessions"),
		mDuration: reg.Histogram("scream_serve_session_duration_seconds",
			"wall-clock duration of finished sessions (completed or failed)",
			[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300, 1800, 3600}),
	}
	for _, spec := range cfg.Scenarios {
		if spec.Name == "" {
			return nil, fmt.Errorf("serve: preloaded scenario without a name")
		}
		if _, dup := s.scenarios[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate scenario %q", spec.Name)
		}
		mesh, err := spec.Mesh()
		if err != nil {
			return nil, fmt.Errorf("serve: scenario %q: %w", spec.Name, err)
		}
		s.scenarios[spec.Name] = &scenario{spec: spec.Clone(), mesh: mesh}
		s.names = append(s.names, spec.Name)
	}
	sort.Strings(s.names)

	mux := http.NewServeMux()
	o := obs.Handler(reg)
	mux.Handle("/metrics", o)
	mux.Handle("/debug/pprof/", o)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/version", s.handleVersion)
	mux.HandleFunc("/api/v1/schedulers", s.handleSchedulers)
	mux.HandleFunc("/api/v1/engines", s.handleEngines)
	mux.HandleFunc("/api/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("/api/v1/sessions", s.handleSessions)
	mux.HandleFunc("GET /api/v1/sessions/{id}/trace", s.handleSessionTrace)
	mux.HandleFunc("GET /api/v1/metrics", s.handleMetricsJSON)
	mux.HandleFunc("/api/v1/run", s.handleRun)
	s.mux = mux
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// CancelSessions aborts every running session (their streams end with an
// error event) and refuses new admissions. It is the forced half of a
// graceful shutdown: call it when http.Server.Shutdown exceeds the drain
// budget, then Close the listener.
func (s *Server) CancelSessions() {
	s.mu.Lock()
	s.draining = true
	cancels := make([]context.CancelFunc, 0, len(s.sessions))
	for _, sess := range s.sessions {
		cancels = append(cancels, sess.cancel)
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// ActiveSessions returns the number of currently running sessions.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// admit registers a session under the admission cap. ok is false when the
// server is at capacity or draining.
func (s *Server) admit(name, scheduler string, cancel context.CancelFunc) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.sessions) >= s.max {
		s.mRejected.Inc()
		return nil, false
	}
	s.nextID++
	scenarioLabel := name
	if scenarioLabel == "" {
		scenarioLabel = "adhoc"
	}
	sess := &session{
		id:        s.nextID,
		name:      name,
		scenario:  scenarioLabel,
		scheduler: scheduler,
		started:   time.Now(),
		cancel:    cancel,
	}
	if s.traceBytes >= 0 {
		sess.sink = obs.NewRingSink(s.traceBytes)
	}
	s.sessions[sess.id] = sess
	s.mStarted.Inc()
	s.mActive.Set(int64(len(s.sessions)))
	return sess, true
}

// release unregisters a finished session, retaining its trace capture (when
// enabled) so /api/v1/sessions/{id}/trace keeps working after the stream
// ends. The retention set is bounded: beyond doneRetention finished
// sessions, the oldest capture is evicted.
func (s *Server) release(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, sess.id)
	s.mActive.Set(int64(len(s.sessions)))
	if sess.sink == nil {
		return
	}
	s.done[sess.id] = sess
	s.doneOrder = append(s.doneOrder, sess.id)
	for len(s.doneOrder) > doneRetention {
		delete(s.done, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"version": s.version})
}

// handleSchedulers serves the public scheduler registry.
func (s *Server) handleSchedulers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, scream.Schedulers())
}

// handleEngines serves the public interference-engine registry — the same
// table ScenarioSpec.Interference and flowsim -engine resolve against.
func (s *Server) handleEngines(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, scream.Engines())
}

// handleScenarios lists the preloaded scenarios with their full specs.
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	out := make([]scream.ScenarioSpec, 0, len(s.names))
	for _, name := range s.names {
		out = append(out, s.scenarios[name].spec.Clone())
	}
	writeJSON(w, http.StatusOK, out)
}

// sessionInfo is the /api/v1/sessions wire shape.
type sessionInfo struct {
	ID        int64     `json:"id"`
	Name      string    `json:"name,omitempty"`
	Scheduler string    `json:"scheduler"`
	StartedAt time.Time `json:"started_at"`
	Epochs    int64     `json:"epochs"`
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]sessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sessionInfo{
			ID:        sess.id,
			Name:      sess.name,
			Scheduler: sess.scheduler,
			StartedAt: sess.started,
			Epochs:    sess.epochs.Load(),
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// maxSpecBytes bounds a POSTed scenario document.
const maxSpecBytes = 1 << 20

// handleRun admits, runs and streams one session.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a scenario spec (or ?scenario=<name>) to run")
		return
	}
	var (
		spec scream.ScenarioSpec
		mesh *scream.Mesh
	)
	if name := r.URL.Query().Get("scenario"); name != "" {
		sc, ok := s.scenarios[name]
		if !ok {
			writeError(w, http.StatusNotFound,
				fmt.Sprintf("unknown scenario %q (preloaded: %s)", name, strings.Join(s.names, ", ")))
			return
		}
		// Per-session sandbox: the shared prebuilt deployment is cloned, so
		// this run can never observe (or disturb) a concurrent one.
		spec, mesh = sc.spec.Clone(), sc.mesh.Clone()
	} else {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("read scenario: %v", err))
			return
		}
		spec, err = scream.ParseScenario(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}

	// The session context: canceled when the client goes away, when the
	// handler returns, or when CancelSessions force-drains the server.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	sess, ok := s.admit(spec.Name, spec.SchedulerName(), cancel)
	if !ok {
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session limit reached (%d active)", s.max))
		return
	}
	defer s.release(sess)

	// Per-session trace capture: the run's v2 span trace lands in the
	// session's bounded ring, flushed after every epoch so a live GET on the
	// trace endpoint sees whole epochs, never a torn line.
	var tr *scream.ObsTracer
	if sess.sink != nil {
		tr = scream.NewObsTracer(sess.sink)
	}

	st := newStream(w, r)
	st.send(startEvent{Type: "start", Session: sess.id, Name: spec.Name,
		Scheduler: spec.SchedulerName(), Spec: &spec})
	res, err := scream.RunWith(ctx, spec, scream.RunOptions{
		Mesh:    mesh,
		Metrics: s.reg,
		Trace:   tr,
		OnEpoch: func(u scream.EpochUpdate) {
			sess.epochs.Add(1)
			s.mEpochs.Inc()
			tr.Flush()
			st.send(epochEvent{Type: "epoch", Session: sess.id, EpochUpdate: u})
		},
	})
	tr.Flush()
	s.mDuration.Observe(time.Since(sess.started).Seconds())
	if err != nil {
		s.mFailed.Inc()
		s.outcomeCounter(sess.scenario, "failed").Inc()
		st.send(errorEvent{Type: "error", Session: sess.id, Error: err.Error()})
		return
	}
	s.mCompleted.Inc()
	s.outcomeCounter(sess.scenario, "completed").Inc()
	st.send(resultEvent{Type: "result", Session: sess.id, Result: res})
}

// outcomeCounter is the per-scenario session counter for one outcome. The
// label pair is embedded in the metric name (the registry's flat model), so
// each (scenario, outcome) combination is its own monotone series.
func (s *Server) outcomeCounter(scenario, outcome string) *obs.Counter {
	return s.reg.Counter(
		"scream_serve_scenario_sessions_total"+obs.Labels("scenario", scenario, "outcome", outcome),
		"finished sessions by scenario and outcome (completed|failed)")
}

// handleSessionTrace serves a session's captured trace as whole-line JSONL:
// a live (partial) snapshot while the session runs, the retained tail after
// it finishes. X-Scream-Trace-Dropped reports ring evictions — nonzero means
// the trace is a suffix and offline validation will flag the missing head.
func (s *Server) handleSessionTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad session id %q", r.PathValue("id")))
		return
	}
	s.mu.Lock()
	sess := s.sessions[id]
	if sess == nil {
		sess = s.done[id]
	}
	s.mu.Unlock()
	if sess == nil || sess.sink == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no captured trace for session %d", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Scream-Trace-Dropped", strconv.FormatInt(sess.sink.Dropped(), 10))
	w.Write(sess.sink.Snapshot())
}

// handleMetricsJSON serves the registry as a JSON snapshot — the
// machine-readable twin of the /metrics text exposition.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

// Streamed event shapes. Every line/event is one self-describing JSON object
// with a "type" discriminator.
type startEvent struct {
	Type      string               `json:"type"`
	Session   int64                `json:"session"`
	Name      string               `json:"name,omitempty"`
	Scheduler string               `json:"scheduler"`
	Spec      *scream.ScenarioSpec `json:"spec"`
}

type epochEvent struct {
	Type    string `json:"type"`
	Session int64  `json:"session"`
	scream.EpochUpdate
}

type resultEvent struct {
	Type    string             `json:"type"`
	Session int64              `json:"session"`
	Result  *scream.FlowResult `json:"result"`
}

type errorEvent struct {
	Type    string `json:"type"`
	Session int64  `json:"session"`
	Error   string `json:"error"`
}

// stream writes the run's event sequence, flushing after every event so
// clients see epochs as they happen: newline-delimited JSON by default,
// server-sent events when the client asked for text/event-stream.
type stream struct {
	w   http.ResponseWriter
	fl  http.Flusher
	sse bool
}

func newStream(w http.ResponseWriter, r *http.Request) *stream {
	st := &stream{w: w}
	st.fl, _ = w.(http.Flusher)
	st.sse = strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if st.sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	st.flush()
	return st
}

func (st *stream) send(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Event shapes are our own structs; a marshal failure is a
		// programming error, and mid-stream there is no status to change.
		return
	}
	if st.sse {
		fmt.Fprintf(st.w, "data: %s\n\n", data)
	} else {
		st.w.Write(data)
		io.WriteString(st.w, "\n")
	}
	st.flush()
}

func (st *stream) flush() {
	if st.fl != nil {
		st.fl.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
