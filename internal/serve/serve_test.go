package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"scream"
	"scream/internal/obs"
	"scream/internal/tracecheck"
)

func testSpec(seed int64) scream.ScenarioSpec {
	return scream.ScenarioSpec{
		Name:           fmt.Sprintf("grid-seed-%d", seed),
		Topology:       scream.TopologySpec{Kind: "grid", Rows: 4, Cols: 4, StepMeters: 30},
		Traffic:        scream.TrafficSpec{Kind: "poisson", Load: 0.5},
		Scheduler:      "greedy",
		HorizonSec:     0.3,
		Seed:           seed,
		FramesPerEpoch: 8,
		MaxService:     8,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// event is the union of the streamed event shapes, for decoding.
type event struct {
	Type    string             `json:"type"`
	Session int64              `json:"session"`
	Epoch   int                `json:"epoch"`
	Error   string             `json:"error"`
	Result  *scream.FlowResult `json:"result"`
}

// postRun POSTs a spec and decodes the full NDJSON event stream.
func postRun(t *testing.T, base string, spec scream.ScenarioSpec) []event {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/v1/run", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("run: content type %q", ct)
	}
	return decodeStream(t, resp)
}

func decodeStream(t *testing.T, resp *http.Response) []event {
	t.Helper()
	var events []event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Scenarios: []scream.ScenarioSpec{testSpec(7)}, Version: "test-1"})

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text() + "\n")
		}
		return resp, sb.String()
	}

	if resp, body := get("/healthz"); resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
	if _, body := get("/version"); !strings.Contains(body, "test-1") {
		t.Errorf("version: %q", body)
	}

	_, body := get("/api/v1/schedulers")
	var infos []scream.SchedulerInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatalf("schedulers: %v", err)
	}
	if len(infos) != len(scream.Schedulers()) {
		t.Errorf("schedulers: %d entries, want %d", len(infos), len(scream.Schedulers()))
	}

	_, body = get("/api/v1/engines")
	var engines []scream.EngineInfo
	if err := json.Unmarshal([]byte(body), &engines); err != nil {
		t.Fatalf("engines: %v", err)
	}
	if len(engines) != len(scream.Engines()) || engines[0].Name != scream.EngineDense {
		t.Errorf("engines: %+v", engines)
	}

	_, body = get("/api/v1/scenarios")
	var specs []scream.ScenarioSpec
	if err := json.Unmarshal([]byte(body), &specs); err != nil {
		t.Fatalf("scenarios: %v", err)
	}
	if len(specs) != 1 || specs[0].Name != "grid-seed-7" {
		t.Errorf("scenarios: %+v", specs)
	}

	if _, body = get("/api/v1/sessions"); strings.TrimSpace(body) != "[]" {
		t.Errorf("sessions: %q", body)
	}
}

// TestRunStream checks the event protocol and the core API contract: the
// result streamed by the daemon is exactly the result scream.Run produces
// in-process for the same spec.
func TestRunStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := testSpec(7)
	events := postRun(t, ts.URL, spec)
	if len(events) < 3 {
		t.Fatalf("stream too short: %+v", events)
	}
	if events[0].Type != "start" {
		t.Fatalf("first event %q, want start", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != "result" || last.Result == nil {
		t.Fatalf("last event %+v, want result", last)
	}
	epochs := 0
	for _, ev := range events[1 : len(events)-1] {
		if ev.Type != "epoch" {
			t.Fatalf("mid-stream event %q, want epoch", ev.Type)
		}
		epochs++
	}
	if epochs != last.Result.Epochs {
		t.Errorf("streamed %d epoch events, result says %d epochs", epochs, last.Result.Epochs)
	}

	want, err := scream.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(last.Result, want) {
		t.Errorf("daemon result differs from in-process Run:\n got %+v\nwant %+v", last.Result, want)
	}
}

// TestRunPreloadedScenario runs a preloaded scenario by name twice: both
// sessions run on clones of the shared mesh and must equal the in-process
// result.
func TestRunPreloadedScenario(t *testing.T) {
	spec := testSpec(7)
	_, ts := newTestServer(t, Config{Scenarios: []scream.ScenarioSpec{spec}})
	want, err := scream.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/api/v1/run?scenario=grid-seed-7", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		events := decodeStream(t, resp)
		resp.Body.Close()
		last := events[len(events)-1]
		if last.Type != "result" || !reflect.DeepEqual(last.Result, want) {
			t.Fatalf("preloaded run %d: %+v, want result %+v", i, last, want)
		}
	}
	resp, err := http.Post(ts.URL+"/api/v1/run?scenario=nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown scenario: status %d, want 404", resp.StatusCode)
	}
}

// TestRunSSE asks for server-sent events and checks the framing.
func TestRunSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(testSpec(3))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/run", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var dataLines int
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("non-SSE line %q", line)
		}
		dataLines++
	}
	if dataLines < 3 {
		t.Fatalf("only %d SSE events", dataLines)
	}
}

// TestConcurrentSessionIsolation runs two sessions with different seeds at
// the same time (plus -race underneath in CI): each must produce exactly the
// result of a standalone in-process run — no shared mutable state.
func TestConcurrentSessionIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 4})
	seeds := []int64{7, 11}
	want := make([]*scream.FlowResult, len(seeds))
	for i, seed := range seeds {
		var err error
		want[i], err = scream.Run(context.Background(), testSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*scream.FlowResult, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func() {
			defer wg.Done()
			events := postRun(t, ts.URL, testSpec(seed))
			if last := events[len(events)-1]; last.Type == "result" {
				got[i] = last.Result
			}
		}()
	}
	wg.Wait()
	for i := range seeds {
		if got[i] == nil {
			t.Fatalf("session %d produced no result", i)
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("seed %d: concurrent session diverged from standalone run:\n got %+v\nwant %+v",
				seeds[i], got[i], want[i])
		}
	}
}

// longSpec is a run that takes long enough (in wall clock) to still be
// active when the test pokes at the server; it ends promptly on cancel.
func longSpec() scream.ScenarioSpec {
	s := testSpec(1)
	s.Name = "long"
	s.HorizonSec = 3600
	return s
}

// waitActive polls until n sessions are running.
func waitActive(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.ActiveSessions() != n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d active sessions (now %d)", n, s.ActiveSessions())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionCap: with MaxSessions=1, a second run is refused with 429 and
// counted as rejected; after the first finishes, admission reopens.
func TestAdmissionCap(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 1})

	done := make(chan []event, 1)
	go func() {
		body, _ := json.Marshal(longSpec())
		resp, err := http.Post(ts.URL+"/api/v1/run", "application/json", strings.NewReader(string(body)))
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		done <- decodeStream(t, resp)
	}()
	waitActive(t, s, 1)

	body, _ := json.Marshal(testSpec(2))
	resp, err := http.Post(ts.URL+"/api/v1/run", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap run: status %d, want 429", resp.StatusCode)
	}
	if v, _ := s.reg.CounterValue("scream_serve_sessions_rejected_total"); v != 1 {
		t.Errorf("rejected counter %d, want 1", v)
	}

	// Cancel the hog; its stream must end with an error event, and the slot
	// must free up.
	s.CancelSessions()
	events := <-done
	if events == nil {
		t.Fatal("long session failed to stream")
	}
	last := events[len(events)-1]
	if last.Type != "error" || !strings.Contains(last.Error, "canceled") {
		t.Fatalf("canceled session ended with %+v, want error event", last)
	}
	waitActive(t, s, 0)
}

// TestDrainRefusesNewSessions: after CancelSessions the server refuses all
// admissions (the forced-drain half of graceful shutdown).
func TestDrainRefusesNewSessions(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 4})
	s.CancelSessions()
	body, _ := json.Marshal(testSpec(2))
	resp, err := http.Post(ts.URL+"/api/v1/run", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("draining server admitted a session: status %d", resp.StatusCode)
	}
}

// TestRunRejectsBadSpecs: malformed and invalid documents get 400 before any
// stream starts; GET is 405.
func TestRunRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		"{not json",
		`{"horizon_secs": 1}`,
		`{"topology": {"kind": "grid", "rows": 4, "cols": 4, "step_m": 30}, "traffic": {"kind": "poisson", "load": 0.5}, "scheduler": "astrology", "horizon_sec": 1}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/api/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET run: status %d, want 405", resp.StatusCode)
	}
}

// TestMetricsExposition: after a run, /metrics carries both the daemon's
// serve_* session counters and the simulation's flow_* counters — one
// registry across layers.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postRun(t, ts.URL, testSpec(7))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	body := sb.String()
	for _, want := range []string{
		"scream_serve_sessions_started_total 1",
		"scream_serve_sessions_completed_total 1",
		"scream_serve_sessions_active 0",
		"scream_serve_epochs_streamed_total",
		"scream_flow_offered_total",
		"scream_flow_delivered_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSessionTraceCapture: a finished session's captured trace is fetchable
// over HTTP as schema-v2 JSONL and replays clean through the offline
// validator — the full daemon-side loop of the trace toolchain.
func TestSessionTraceCapture(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	events := postRun(t, ts.URL, testSpec(7))
	id := events[0].Session

	resp, err := http.Get(fmt.Sprintf("%s/api/v1/sessions/%d/trace", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace content type %q", ct)
	}
	if d := resp.Header.Get("X-Scream-Trace-Dropped"); d != "0" {
		t.Errorf("trace dropped lines %q, want 0", d)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(body, []byte(`{"v":2,"ev":"span_begin"`)) {
		t.Fatalf("trace does not start with a v2 run span: %.80s", body)
	}
	trace, err := tracecheck.Parse(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if vs := tracecheck.Validate(trace); len(vs) > 0 {
		t.Fatalf("captured trace violates invariants: %v", vs)
	}

	for path, want := range map[string]int{
		"/api/v1/sessions/99999/trace": http.StatusNotFound,
		"/api/v1/sessions/bogus/trace": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestSessionTraceDisabled: TraceBytes < 0 turns capture off; the endpoint
// 404s even for a session that just ran.
func TestSessionTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceBytes: -1})
	events := postRun(t, ts.URL, testSpec(7))
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/sessions/%d/trace", ts.URL, events[0].Session))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled capture served status %d, want 404", resp.StatusCode)
	}
}

// TestSessionTraceLive: the trace endpoint answers while the session is
// still running — a whole-line snapshot of everything flushed so far.
func TestSessionTraceLive(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(longSpec())
		resp, err := http.Post(ts.URL+"/api/v1/run", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return
		}
		decodeStream(t, resp)
		resp.Body.Close()
	}()
	waitActive(t, s, 1)
	resp, err := http.Get(ts.URL + "/api/v1/sessions/1/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live trace: status %d", resp.StatusCode)
	}
	// Whatever is flushed so far must be whole lines (possibly none yet).
	if len(body) > 0 && body[len(body)-1] != '\n' {
		t.Error("live snapshot ends mid-line")
	}
	s.CancelSessions()
	<-done
}

// TestTraceRetention: finished sessions keep their traces fetchable up to
// doneRetention; beyond that the oldest capture is evicted.
func TestTraceRetention(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := testSpec(7)
	spec.HorizonSec = 0.05
	for i := 0; i < doneRetention+2; i++ {
		postRun(t, ts.URL, spec)
	}
	s.mu.Lock()
	retained := len(s.done)
	s.mu.Unlock()
	if retained != doneRetention {
		t.Fatalf("retained %d finished sessions, want %d", retained, doneRetention)
	}
	resp, err := http.Get(ts.URL + "/api/v1/sessions/1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted session trace: status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsJSONEndpoint: /api/v1/metrics is the JSON twin of /metrics —
// after one run it carries the serve counters, the session duration
// histogram, and the scenario-labeled outcome series.
func TestMetricsJSONEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postRun(t, ts.URL, testSpec(7))
	resp, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("metrics content type %q", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["scream_serve_sessions_completed_total"]; got != 1 {
		t.Errorf("completed counter %d, want 1", got)
	}
	if got := snap.Counters[`scream_serve_scenario_sessions_total{scenario="grid-seed-7",outcome="completed"}`]; got != 1 {
		t.Errorf("scenario-labeled counter %d, want 1", got)
	}
	h, ok := snap.Histograms["scream_serve_session_duration_seconds"]
	if !ok || h.Count != 1 {
		t.Errorf("duration histogram %+v (present %v), want count 1", h, ok)
	}
	if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].LE != "+Inf" {
		t.Errorf("duration histogram buckets %+v, want trailing +Inf", h.Buckets)
	}
}

// TestScenarioOutcomeMetrics: the labeled session counters attribute runs to
// their scenario — "adhoc" for unnamed POSTed specs — and canceled runs land
// in outcome="failed".
func TestScenarioOutcomeMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	adhoc := testSpec(3)
	adhoc.Name = ""
	postRun(t, ts.URL, adhoc)

	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(longSpec())
		resp, err := http.Post(ts.URL+"/api/v1/run", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return
		}
		decodeStream(t, resp)
		resp.Body.Close()
	}()
	waitActive(t, s, 1)
	s.CancelSessions()
	<-done

	for name, want := range map[string]int64{
		`scream_serve_scenario_sessions_total{scenario="adhoc",outcome="completed"}`: 1,
		`scream_serve_scenario_sessions_total{scenario="long",outcome="failed"}`:     1,
	} {
		if got, _ := s.reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	h, ok := s.reg.HistogramValue("scream_serve_session_duration_seconds")
	if !ok || h.Count() != 2 {
		t.Errorf("duration histogram count %v (present %v), want 2", h, ok)
	}
}

// TestSessionListing: a running session shows up on /api/v1/sessions with
// its name and scheduler.
func TestSessionListing(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 2})
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(longSpec())
		resp, err := http.Post(ts.URL+"/api/v1/run", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return
		}
		decodeStream(t, resp)
		resp.Body.Close()
	}()
	waitActive(t, s, 1)
	resp, err := http.Get(ts.URL + "/api/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var infos []sessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "long" || infos[0].Scheduler != "greedy" {
		t.Fatalf("sessions listing %+v", infos)
	}
	s.CancelSessions()
	<-done
}
