package dynam

import (
	"math"
	"math/rand"
	"testing"

	"scream/internal/des"
	"scream/internal/geom"
	"scream/internal/route"
	"scream/internal/topo"
)

func testNetwork(t testing.TB) (*topo.Network, *route.Forest) {
	t.Helper()
	net, err := topo.NewGrid(topo.GridConfig{Rows: 4, Cols: 4, Step: 35, Params: topo.DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := route.BuildForest(net.Comm, []int{0, 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return net, f
}

func churnCfg(seed int64) Config {
	return Config{
		FailRate:     2.0,
		MeanDowntime: 200 * des.Millisecond,
		Horizon:      2 * des.Second,
		Seed:         seed,
	}
}

// TestTimelineDeterministic: identical seeds produce identical timelines;
// different seeds do not.
func TestTimelineDeterministic(t *testing.T) {
	net, f := testNetwork(t)
	a, err := NewWorld(net.Clone(), f, churnCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorld(net.Clone(), f, churnCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWorld(net.Clone(), f, churnCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.timeline) == 0 {
		t.Fatal("no churn events generated")
	}
	if len(a.timeline) != len(b.timeline) {
		t.Fatalf("same seed, different timeline lengths: %d vs %d", len(a.timeline), len(b.timeline))
	}
	for i := range a.timeline {
		if a.timeline[i] != b.timeline[i] {
			t.Fatalf("same seed, event %d differs: %+v vs %+v", i, a.timeline[i], b.timeline[i])
		}
	}
	diff := len(a.timeline) != len(c.timeline)
	for i := 0; !diff && i < len(a.timeline); i++ {
		diff = a.timeline[i] != c.timeline[i]
	}
	if !diff {
		t.Fatal("different seeds produced identical timelines")
	}
}

// TestChurnAlternates: per node, events alternate fail/recover in time order
// and respect the gateway exclusion.
func TestChurnAlternates(t *testing.T) {
	net, f := testNetwork(t)
	w, err := NewWorld(net.Clone(), f, churnCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[int]Kind)
	for _, e := range w.timeline {
		if e.Node == 0 || e.Node == 15 {
			t.Fatalf("gateway %d scheduled for churn without FailGateways", e.Node)
		}
		prev, ok := last[e.Node]
		if !ok && e.Kind != Fail {
			t.Fatalf("node %d starts with %v", e.Node, e.Kind)
		}
		if ok && prev == e.Kind {
			t.Fatalf("node %d has consecutive %v events", e.Node, e.Kind)
		}
		last[e.Node] = e.Kind
	}
}

// TestMobilityStaysInRegion: waypoint and drift trajectories never leave the
// deployment region and actually move.
func TestMobilityStaysInRegion(t *testing.T) {
	region := geom.Square(500)
	samples := make([]des.Time, 200)
	for i := range samples {
		samples[i] = des.Time(i+1) * 50 * des.Millisecond
	}
	start := geom.Point{X: 100, Y: 400}
	for name, m := range map[string]Mobility{
		"waypoint": RandomWaypoint{SpeedMps: 20, Pause: 100 * des.Millisecond},
		"drift":    Drift{SpeedMps: 20},
	} {
		rng := rand.New(rand.NewSource(5))
		traj := m.Trajectory(start, region, samples, rng)
		moved := false
		for i, p := range traj {
			if p.X < region.MinX-1e-9 || p.X > region.MaxX+1e-9 || p.Y < region.MinY-1e-9 || p.Y > region.MaxY+1e-9 {
				t.Fatalf("%s: sample %d at %v leaves region", name, i, p)
			}
			if p != start {
				moved = true
			}
		}
		if !moved {
			t.Fatalf("%s: node never moved", name)
		}
	}
}

// TestDriftReflects drives a drift trajectory long enough to hit the walls
// and checks the fold stays continuous (no jumps beyond speed*dt).
func TestDriftReflects(t *testing.T) {
	region := geom.Square(100)
	samples := make([]des.Time, 400)
	for i := range samples {
		samples[i] = des.Time(i+1) * 100 * des.Millisecond
	}
	rng := rand.New(rand.NewSource(2))
	traj := Drift{SpeedMps: 30}.Trajectory(geom.Point{X: 50, Y: 50}, region, samples, rng)
	prev := geom.Point{X: 50, Y: 50}
	maxStep := 30*0.1 + 1e-6
	for i, p := range traj {
		if d := p.Dist(prev); d > maxStep {
			t.Fatalf("sample %d jumps %.3f m (max %.3f)", i, d, maxStep)
		}
		prev = p
	}
}

// TestWorldMatchesFreshBuild applies a scripted mix of events through the
// world and asserts the resulting channel matrix is bit-identical to a
// freshly built network, and the forest bit-identical to the canonical full
// rebuild over the refreshed graphs.
func TestWorldMatchesFreshBuild(t *testing.T) {
	net, f := testNetwork(t)
	script := []Event{
		{At: 10, Kind: Fail, Node: 5},
		{At: 20, Kind: Move, Node: 9, Pos: geom.Point{X: 10, Y: 80}},
		{At: 30, Kind: Fail, Node: 6},
		{At: 40, Kind: Recover, Node: 5},
		{At: 50, Kind: Move, Node: 3, Pos: geom.Point{X: 60, Y: 10}},
		{At: 60, Kind: Fail, Node: 0}, // gateway outage
		{At: 70, Kind: Recover, Node: 0},
		{At: 75, Kind: Recover, Node: 6},
	}
	w, err := NewWorld(net.Clone(), f, Config{Script: script})
	if err != nil {
		t.Fatal(err)
	}
	for _, stop := range []des.Time{15, 35, 45, 55, 65, 80} {
		ch, err := w.AdvanceTo(stop)
		if err != nil {
			t.Fatal(err)
		}
		if ch == nil {
			t.Fatalf("no change at %v", stop)
		}
		// Channel must match a network built from scratch at current state.
		ref := w.Network().Clone()
		ref.RefreshGraphs()
		for u := 0; u < net.NumNodes(); u++ {
			for v := 0; v < net.NumNodes(); v++ {
				got := w.Channel().RxPowerMW(u, v)
				want := ref.Channel.RxPowerMW(u, v)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("t=%v: channel(%d,%d) drifted", stop, u, v)
				}
			}
		}
		// Forest must match the canonical rebuild.
		want, err := route.BuildForestPartial(w.Network().Comm, w.AliveGateways(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < net.NumNodes(); u++ {
			if w.Forest().Parent(u) != want.Parent(u) || w.Forest().Depth(u) != want.Depth(u) || w.Forest().Gateway(u) != want.Gateway(u) {
				t.Fatalf("t=%v: forest differs from rebuild at node %d", stop, u)
			}
		}
	}
	if _, ok := w.NextEventAt(); ok {
		t.Fatal("events left unapplied after final advance")
	}
	// All nodes recovered: the forest must be whole again.
	if w.Forest().NumDetached() != 0 {
		t.Fatalf("%d nodes still detached after full recovery", w.Forest().NumDetached())
	}
}

// TestWorldGatewayOutage: killing a gateway reroutes its tree to the
// survivor (rebuild fallback), and links never reference dead nodes.
func TestWorldGatewayOutage(t *testing.T) {
	net, f := testNetwork(t)
	w, err := NewWorld(net.Clone(), f, Config{Script: []Event{{At: 5, Kind: Fail, Node: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := w.AdvanceTo(10)
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Repair.Rebuilt {
		t.Fatal("gateway outage did not trigger the rebuild fallback")
	}
	if got := w.AliveGateways(); len(got) != 1 || got[0] != 15 {
		t.Fatalf("alive gateways = %v, want [15]", got)
	}
	for u := 1; u < 16; u++ {
		if !w.Forest().IsDetached(u) && w.Forest().Gateway(u) != 15 {
			t.Fatalf("node %d routes to gateway %d after outage", u, w.Forest().Gateway(u))
		}
	}
	for _, l := range w.Links() {
		if !w.IsAlive(l.From) || !w.IsAlive(l.To) {
			t.Fatalf("link %v references a dead node", l)
		}
	}
}

// TestWorldAdvanceBatching: advancing in two different step patterns over
// the same timeline yields identical final topology state.
func TestWorldAdvanceBatching(t *testing.T) {
	net, f := testNetwork(t)
	cfg := Config{FailRate: 3, MeanDowntime: 150 * des.Millisecond, Horizon: des.Second, Seed: 12,
		Mobility: RandomWaypoint{SpeedMps: 15, Pause: 50 * des.Millisecond}, MoveInterval: 40 * des.Millisecond}
	wa, err := NewWorld(net.Clone(), f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewWorld(net.Clone(), f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 30 * des.Millisecond; ; t0 += 30 * des.Millisecond {
		if t0 > des.Second {
			t0 = des.Second
		}
		if _, err := wa.AdvanceTo(t0); err != nil {
			t.Fatal(err)
		}
		if t0 == des.Second {
			break
		}
	}
	if _, err := wb.AdvanceTo(des.Second); err != nil { // one big batch
		t.Fatal(err)
	}
	for u := 0; u < 16; u++ {
		if wa.IsAlive(u) != wb.IsAlive(u) {
			t.Fatalf("aliveness of %d differs between step patterns", u)
		}
		if wa.Network().Nodes[u].Pos != wb.Network().Nodes[u].Pos {
			t.Fatalf("position of %d differs between step patterns", u)
		}
		for v := 0; v < 16; v++ {
			if math.Float64bits(wa.Channel().RxPowerMW(u, v)) != math.Float64bits(wb.Channel().RxPowerMW(u, v)) {
				t.Fatalf("channel(%d,%d) differs between step patterns", u, v)
			}
		}
	}
	// Forests may legitimately differ between batching patterns only through
	// tie-break history; with canonical (nil-rng) repair they must not.
	for u := 0; u < 16; u++ {
		if wa.Forest().Parent(u) != wb.Forest().Parent(u) {
			t.Fatalf("forest parent of %d differs between step patterns", u)
		}
	}
}
