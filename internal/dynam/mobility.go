package dynam

import (
	"math"
	"math/rand"

	"scream/internal/des"
	"scream/internal/geom"
)

// Mobility produces a node's trajectory. Implementations must be pure
// functions of their inputs (all randomness from rng) so that timelines are
// reproducible and worker-count independent.
type Mobility interface {
	// Trajectory returns the node's position at each sample time (samples
	// are strictly increasing). The node starts at start at time 0 and must
	// stay inside region.
	Trajectory(start geom.Point, region geom.Rect, samples []des.Time, rng *rand.Rand) []geom.Point
}

// RandomWaypoint is the classical mobility model: pick a uniform waypoint in
// the region, travel to it in a straight line at Speed, pause, repeat.
type RandomWaypoint struct {
	// SpeedMps is the travel speed in meters per second.
	SpeedMps float64
	// Pause is the dwell time at each waypoint.
	Pause des.Time
}

// Trajectory implements Mobility.
func (m RandomWaypoint) Trajectory(start geom.Point, region geom.Rect, samples []des.Time, rng *rand.Rand) []geom.Point {
	out := make([]geom.Point, len(samples))
	if m.SpeedMps <= 0 {
		for i := range out {
			out[i] = start
		}
		return out
	}
	pos := start
	legStart := des.Time(0) // current leg begins here...
	target := pos
	var legEnd des.Time // ...and arrives at the waypoint here
	pausedUntil := des.Time(0)

	newLeg := func(now des.Time) {
		target = geom.Point{
			X: region.MinX + rng.Float64()*region.Width(),
			Y: region.MinY + rng.Float64()*region.Height(),
		}
		legStart = now
		legEnd = now + des.FromSeconds(pos.Dist(target)/m.SpeedMps)
		if legEnd <= legStart {
			legEnd = legStart + 1 // zero-length leg: keep time advancing
		}
	}
	newLeg(0)
	for i, t := range samples {
		// Advance legs until t falls inside the current leg or pause.
		for t >= legEnd {
			pos = target
			pausedUntil = legEnd + m.Pause
			if t < pausedUntil {
				break
			}
			newLeg(pausedUntil)
		}
		if t < legEnd && t >= legStart {
			frac := float64(t-legStart) / float64(legEnd-legStart)
			out[i] = pos.Add(target.Sub(pos).Scale(frac))
		} else {
			out[i] = pos // pausing at the waypoint
		}
	}
	return out
}

// Drift moves each node with a constant per-node velocity (uniform random
// heading, fixed speed), reflecting off the region boundary — the fixed-
// drift model: slow, persistent topology deformation rather than the
// random-waypoint's mixing walk.
type Drift struct {
	// SpeedMps is the drift speed in meters per second.
	SpeedMps float64
}

// Trajectory implements Mobility.
func (m Drift) Trajectory(start geom.Point, region geom.Rect, samples []des.Time, rng *rand.Rand) []geom.Point {
	out := make([]geom.Point, len(samples))
	theta := rng.Float64() * 2 * math.Pi
	vx := m.SpeedMps * math.Cos(theta)
	vy := m.SpeedMps * math.Sin(theta)
	for i, t := range samples {
		s := t.Seconds()
		out[i] = geom.Point{
			X: reflect(start.X+vx*s, region.MinX, region.MaxX),
			Y: reflect(start.Y+vy*s, region.MinY, region.MaxY),
		}
	}
	return out
}

// reflect folds an unbounded coordinate into [lo, hi] as if the trajectory
// bounced elastically off the interval's walls.
func reflect(x, lo, hi float64) float64 {
	w := hi - lo
	if w <= 0 {
		return lo
	}
	// Position within a doubled period: [0, 2w) maps to lo..hi..lo.
	x = math.Mod(x-lo, 2*w)
	if x < 0 {
		x += 2 * w
	}
	if x > w {
		x = 2*w - x
	}
	return lo + x
}
