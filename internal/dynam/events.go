// Package dynam is the topology-dynamics subsystem: it drives node churn
// (failures and recoveries, including gateway outages) and node mobility
// (random-waypoint and fixed-drift models) against a live deployment on a
// deterministic per-seed event timeline.
//
// The static problem the rest of the repository reproduces assumes a frozen
// topology; SCREAM's distributed re-scheduling (Section IV of the paper) is
// precisely the machinery that should earn its keep when the topology is
// *not* frozen — the evaluation style of the related work (Vieira et al.,
// Halldórsson & Mitra). This package supplies the missing axis:
//
//   - a timeline of Fail/Recover/Move events, fully pre-generated from a
//     seed so that runs are reproducible and the experiment engine can fan
//     churn cells across workers with bit-identical output;
//   - a World that applies events to an exclusively-owned topo.Network —
//     targeted RX-power-matrix invalidation for moved or silenced nodes,
//     graph refresh, and incremental routing-forest repair
//     (route.Forest.Repair) with full-rebuild fallback on partition;
//   - a Change report per applied batch, which the flow-level simulator
//     consumes at epoch boundaries to drop dead queues, re-home routes and
//     account disruption metrics.
package dynam

import (
	"fmt"
	"math/rand"
	"sort"

	"scream/internal/des"
	"scream/internal/geom"
)

// Kind is the type of a topology event.
type Kind int

const (
	// Fail switches a node's radio off.
	Fail Kind = iota + 1
	// Recover switches it back on at its current position.
	Recover
	// Move relocates a node.
	Move
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fail:
		return "fail"
	case Recover:
		return "recover"
	case Move:
		return "move"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timeline entry.
type Event struct {
	At   des.Time
	Kind Kind
	Node int
	Pos  geom.Point // Move events only
}

// Config parameterizes a dynamics timeline.
type Config struct {
	// FailRate is the expected number of failures per node per simulated
	// second (exponential inter-failure times). 0 disables churn.
	FailRate float64
	// MeanDowntime is the mean exponential repair time after a failure.
	// 0 makes failures permanent.
	MeanDowntime des.Time
	// FailGateways includes the gateways in the churn process. Default
	// false: gateways are typically wired, powered infrastructure.
	FailGateways bool

	// Mobility moves the non-gateway nodes; nil keeps positions static.
	Mobility Mobility
	// MoveInterval is the position sampling period for mobility (default
	// 100 ms): each mobile node emits at most one Move event per interval.
	MoveInterval des.Time

	// Horizon bounds the timeline; no event is generated at or beyond it.
	Horizon des.Time
	// Seed drives every random draw of the timeline.
	Seed int64

	// Script, when non-nil, is used verbatim (sorted) instead of generating
	// a timeline — the hook for tests and scripted failure bursts. The
	// churn/mobility fields are ignored.
	Script []Event
}

// splitmix64 decorrelates derived per-node seeds from the user seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// deriveSeed uses a different mixing constant than flow.DeriveSeed so that
// dynamics streams never collide with a run's arrival-process streams even
// when both derive from the same user seed.
func deriveSeed(base int64, stream int64) int64 {
	return int64(splitmix64(uint64(base)*0xd1342543de82ef95 + uint64(stream)))
}

// sortEvents orders a timeline deterministically: by time, then node, then
// kind. Ties on (time, node) cannot occur in generated timelines (one churn
// process and one mobility sampler per node, offset sampling grids), but
// scripted timelines get a total order too.
func sortEvents(ev []Event) {
	sort.SliceStable(ev, func(i, j int) bool {
		if ev[i].At != ev[j].At {
			return ev[i].At < ev[j].At
		}
		if ev[i].Node != ev[j].Node {
			return ev[i].Node < ev[j].Node
		}
		return ev[i].Kind < ev[j].Kind
	})
}

// generateChurn draws node u's alternating up/down process.
func generateChurn(cfg Config, u int, out []Event) []Event {
	rng := rand.New(rand.NewSource(deriveSeed(cfg.Seed, int64(2*u))))
	t := des.Time(0)
	for {
		up := des.FromSeconds(rng.ExpFloat64() / cfg.FailRate)
		if up < 1 {
			up = 1
		}
		t += up
		if t >= cfg.Horizon {
			return out
		}
		out = append(out, Event{At: t, Kind: Fail, Node: u})
		if cfg.MeanDowntime <= 0 {
			return out // permanent failure
		}
		down := des.FromSeconds(rng.ExpFloat64() * cfg.MeanDowntime.Seconds())
		if down < 1 {
			down = 1
		}
		t += down
		if t >= cfg.Horizon {
			return out
		}
		out = append(out, Event{At: t, Kind: Recover, Node: u})
	}
}

// generateMoves samples node u's mobility trajectory every MoveInterval,
// emitting a Move event whenever the position actually changed (waypoint
// pauses stay silent).
func generateMoves(cfg Config, u int, start geom.Point, region geom.Rect, out []Event) []Event {
	interval := cfg.MoveInterval
	if interval <= 0 {
		interval = 100 * des.Millisecond
	}
	var samples []des.Time
	for t := interval; t < cfg.Horizon; t += interval {
		samples = append(samples, t)
	}
	if len(samples) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(deriveSeed(cfg.Seed, int64(2*u+1))))
	traj := cfg.Mobility.Trajectory(start, region, samples, rng)
	prev := start
	for i, p := range traj {
		if p != prev {
			out = append(out, Event{At: samples[i], Kind: Move, Node: u, Pos: p})
			prev = p
		}
	}
	return out
}
