package dynam

import (
	"fmt"

	"scream/internal/des"
	"scream/internal/graph"
	"scream/internal/obs"
	"scream/internal/phys"
	"scream/internal/phys/spatial"
	"scream/internal/route"
	"scream/internal/topo"
)

// World owns a mutable deployment and applies the dynamics timeline to it:
// channel invalidation for moved and silenced nodes, graph refresh, and
// incremental routing-forest repair. The consumer (the flow-level epoch
// driver) calls AdvanceTo at each epoch boundary and reacts to the returned
// Change.
//
// The World requires exclusive ownership of net — Clone a shared deployment
// before handing it over. The forests it returns use canonical (nil-rng)
// tie-breaking so that every run is reproducible.
type World struct {
	net      *topo.Network
	forest   *route.Forest
	links    []phys.Link
	alive    []bool
	gateways []int // the configured gateway set

	timeline []Event
	next     int

	// Optional instrumentation, attached via SetObs.
	obs   *worldObs
	trace *obs.Tracer

	// Optional spatial interference index kept in lockstep with the
	// timeline, attached via AttachSpatial.
	spatial *spatial.Index

	// scratch
	changed     []int
	changedSeen []bool
}

// Change reports one applied event batch.
type Change struct {
	// At is the timestamp of the last event applied in the batch.
	At des.Time
	// Failed, Recovered and Moved list the affected nodes (Moved may repeat
	// a node when the batch spans several sampling instants).
	Failed, Recovered, Moved []int
	// Repair describes what the forest repair had to do.
	Repair route.RepairStats
	// Detached is the number of nodes currently attached to no gateway tree
	// (dead nodes included).
	Detached int
}

// Events returns the total number of events in the batch.
func (c *Change) Events() int {
	return len(c.Failed) + len(c.Recovered) + len(c.Moved)
}

// NewWorld builds a world over an exclusively-owned network and its routing
// forest, pre-generating the full event timeline from cfg.
func NewWorld(net *topo.Network, forest *route.Forest, cfg Config) (*World, error) {
	n := net.NumNodes()
	if forest.NumNodes() != n {
		return nil, fmt.Errorf("dynam: forest has %d nodes, network %d", forest.NumNodes(), n)
	}
	if cfg.Script == nil && cfg.Horizon <= 0 {
		return nil, fmt.Errorf("dynam: horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.FailRate < 0 {
		return nil, fmt.Errorf("dynam: negative fail rate %v", cfg.FailRate)
	}
	w := &World{
		net:         net,
		forest:      forest,
		links:       forest.Links(),
		alive:       make([]bool, n),
		gateways:    forest.Gateways(),
		changedSeen: make([]bool, n),
	}
	for i := range w.alive {
		w.alive[i] = true
	}
	isGW := make([]bool, n)
	for _, g := range w.gateways {
		isGW[g] = true
	}

	if cfg.Script != nil {
		w.timeline = append([]Event(nil), cfg.Script...)
		sortEvents(w.timeline)
		for _, e := range w.timeline {
			if e.Node < 0 || e.Node >= n {
				return nil, fmt.Errorf("dynam: scripted event for node %d out of range", e.Node)
			}
			switch e.Kind {
			case Fail, Recover, Move:
			default:
				return nil, fmt.Errorf("dynam: scripted event for node %d has unknown kind %v", e.Node, e.Kind)
			}
		}
		return w, nil
	}

	var ev []Event
	for u := 0; u < n; u++ {
		if cfg.FailRate > 0 && (cfg.FailGateways || !isGW[u]) {
			ev = generateChurn(cfg, u, ev)
		}
		if cfg.Mobility != nil && !isGW[u] {
			ev = generateMoves(cfg, u, net.Nodes[u].Pos, net.Region, ev)
		}
	}
	sortEvents(ev)
	w.timeline = ev
	return w, nil
}

// AttachSpatial registers a spatial interference index the world keeps in
// lockstep with the deployment: every Fail, Recover and Move event is
// forwarded as the index's bucket-local RemoveNode/RestoreNode/MoveNode
// update, mirroring the channel's targeted row/column invalidation. The
// index must describe the same deployment state the world currently holds
// (topo.Network.SpatialEngine over the world's network does). Pass nil to
// detach.
func (w *World) AttachSpatial(idx *spatial.Index) { w.spatial = idx }

// Spatial returns the attached spatial index, or nil.
func (w *World) Spatial() *spatial.Index { return w.spatial }

// Alive returns the live aliveness view. The slice is owned by the world;
// callers must treat it as read-only and must not retain it across
// AdvanceTo calls they expect to be stale-proof.
func (w *World) Alive() []bool { return w.alive }

// IsAlive reports whether node u is currently up.
func (w *World) IsAlive(u int) bool { return w.alive[u] }

// Forest returns the current routing forest.
func (w *World) Forest() *route.Forest { return w.forest }

// Links returns the current forest's links (owner order).
func (w *World) Links() []phys.Link { return w.links }

// Channel returns the live channel (mutated in place by events).
func (w *World) Channel() *phys.Channel { return w.net.Channel }

// Sens returns the current sensitivity graph.
func (w *World) Sens() *graph.Graph { return w.net.Sens }

// Network returns the underlying (exclusively owned) network.
func (w *World) Network() *topo.Network { return w.net }

// AliveGateways returns the configured gateways that are currently up.
func (w *World) AliveGateways() []int {
	var out []int
	for _, g := range w.gateways {
		if w.alive[g] {
			out = append(out, g)
		}
	}
	return out
}

// EventsTotal returns the number of events on the timeline.
func (w *World) EventsTotal() int { return len(w.timeline) }

// NextEventAt returns the timestamp of the next unapplied event.
func (w *World) NextEventAt() (des.Time, bool) {
	if w.next >= len(w.timeline) {
		return 0, false
	}
	return w.timeline[w.next].At, true
}

// markChanged records u and its current comm neighbors as
// adjacency-affected for the pending repair.
func (w *World) markChanged(u int) {
	if !w.changedSeen[u] {
		w.changedSeen[u] = true
		w.changed = append(w.changed, u)
	}
	for _, v := range w.net.Comm.Neighbors(u) {
		if !w.changedSeen[v] {
			w.changedSeen[v] = true
			w.changed = append(w.changed, v)
		}
	}
}

// AdvanceTo applies every event with At <= t and returns the resulting
// Change, or nil when no event was due. Events mutate the channel with
// targeted row/column invalidation; the graphs are refreshed and the forest
// repaired once per batch.
func (w *World) AdvanceTo(t des.Time) (*Change, error) {
	if w.next >= len(w.timeline) || w.timeline[w.next].At > t {
		return nil, nil
	}
	ch := &Change{}
	w.changed = w.changed[:0]
	batch := make([]int, 0, 8) // event nodes; re-marked against the new graphs
	for w.next < len(w.timeline) && w.timeline[w.next].At <= t {
		e := w.timeline[w.next]
		w.next++
		switch e.Kind {
		case Fail:
			if !w.alive[e.Node] {
				continue
			}
			w.markChanged(e.Node) // old neighbors lose an edge
			if err := w.net.SetNodeDown(e.Node); err != nil {
				return nil, fmt.Errorf("dynam: %w", err)
			}
			if w.spatial != nil {
				if err := w.spatial.RemoveNode(e.Node); err != nil {
					return nil, fmt.Errorf("dynam: %w", err)
				}
			}
			w.alive[e.Node] = false
			ch.Failed = append(ch.Failed, e.Node)
		case Recover:
			if w.alive[e.Node] {
				continue
			}
			w.markChanged(e.Node)
			if err := w.net.SetNodeUp(e.Node); err != nil {
				return nil, fmt.Errorf("dynam: %w", err)
			}
			if w.spatial != nil {
				if err := w.spatial.RestoreNode(e.Node); err != nil {
					return nil, fmt.Errorf("dynam: %w", err)
				}
			}
			w.alive[e.Node] = true
			ch.Recovered = append(ch.Recovered, e.Node)
		case Move:
			if !w.alive[e.Node] {
				// A dead node keeps moving (it recovers wherever it is by
				// then) but its silent radio changes nothing observable: no
				// gain change, no repair, no Change entry.
				if err := w.net.MoveNode(e.Node, e.Pos); err != nil {
					return nil, fmt.Errorf("dynam: %w", err)
				}
				if w.spatial != nil {
					if err := w.spatial.MoveNode(e.Node, e.Pos); err != nil {
						return nil, fmt.Errorf("dynam: %w", err)
					}
				}
				continue
			}
			w.markChanged(e.Node) // neighbors at the old position
			if err := w.net.MoveNode(e.Node, e.Pos); err != nil {
				return nil, fmt.Errorf("dynam: %w", err)
			}
			if w.spatial != nil {
				if err := w.spatial.MoveNode(e.Node, e.Pos); err != nil {
					return nil, fmt.Errorf("dynam: %w", err)
				}
			}
			ch.Moved = append(ch.Moved, e.Node)
		default:
			return nil, fmt.Errorf("dynam: unknown event kind %v", e.Kind)
		}
		batch = append(batch, e.Node)
		ch.At = e.At
	}
	if ch.Events() == 0 {
		return nil, nil // every due event was a no-op
	}

	w.net.RefreshGraphs()
	for _, u := range batch {
		w.markChanged(u) // neighbors at the new position / after recovery
	}

	forest, stats, err := w.forest.Repair(w.net.Comm, w.AliveGateways(), w.alive, w.changed, nil)
	if err != nil {
		return nil, fmt.Errorf("dynam: route repair: %w", err)
	}
	for _, u := range w.changed {
		w.changedSeen[u] = false
	}
	w.forest = forest
	w.links = forest.Links()
	ch.Repair = stats
	ch.Detached = forest.NumDetached()
	w.publishChange(ch)
	return ch, nil
}
