package dynam

import (
	"scream/internal/obs"
)

// worldObs is the dynamics metric bundle; all handles are nil-safe no-ops
// when the world has no registry attached. Counters are write-only: the
// event timeline is pre-generated, so observation cannot perturb it.
type worldObs struct {
	fails    *obs.Counter
	recovers *obs.Counter
	moves    *obs.Counter
	repairs  *obs.Counter
	rebuilds *obs.Counter
}

// SetObs attaches metrics and tracing to the world: every applied event
// batch then publishes churn counters and emits churn/repair trace events.
// Call before the run starts; both arguments may be nil.
func (w *World) SetObs(r *obs.Registry, tr *obs.Tracer) {
	w.trace = tr
	if r == nil {
		w.obs = nil
		return
	}
	w.obs = &worldObs{
		fails:    r.Counter("scream_dynam_fail_events_total", "applied node-failure events"),
		recovers: r.Counter("scream_dynam_recover_events_total", "applied node-recovery events"),
		moves:    r.Counter("scream_dynam_move_events_total", "applied node-move events"),
		repairs:  r.Counter("scream_dynam_repairs_total", "applied event batches (each triggers one forest repair)"),
		rebuilds: r.Counter("scream_dynam_rebuilds_total", "repairs that fell back to a full forest rebuild"),
	}
}

// publishChange records one applied batch into the attached metrics and
// trace (no-op with nothing attached).
func (w *World) publishChange(ch *Change) {
	if m := w.obs; m != nil {
		m.fails.Add(int64(len(ch.Failed)))
		m.recovers.Add(int64(len(ch.Recovered)))
		m.moves.Add(int64(len(ch.Moved)))
		m.repairs.Inc()
		if ch.Repair.Rebuilt {
			m.rebuilds.Inc()
		}
	}
	if w.trace != nil {
		w.trace.Emit("churn",
			obs.I("t", int64(ch.At)),
			obs.N("failed", len(ch.Failed)), obs.N("recovered", len(ch.Recovered)),
			obs.N("moved", len(ch.Moved)))
		w.trace.Emit("repair",
			obs.I("t", int64(ch.At)),
			obs.B("rebuilt", ch.Repair.Rebuilt), obs.N("detached", ch.Detached))
	}
}
