// Package geom provides the planar geometry primitives used by the topology
// generators and by the interference-diameter analysis of the SCREAM paper
// (square-grid augmentation, lattice paths, region diameters).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the two-dimensional Euclidean plane. Coordinates are
// in meters unless a caller documents otherwise.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Rect is an axis-aligned closed rectangle [MinX, MaxX] x [MinY, MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns the axis-aligned square with lower-left corner at origin and
// the given side length.
func Square(side float64) Rect {
	return Rect{0, 0, side, side}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Diameter returns the Euclidean diameter of r (Definition 11 of the paper):
// the maximum distance between any two points of the region, i.e. the length
// of its diagonal.
func (r Rect) Diameter() float64 {
	return math.Hypot(r.Width(), r.Height())
}

// Contains reports whether p lies in the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// LatticePathHops returns the hop length of the upper/lower lattice paths
// associated with the segment from u to v on a square lattice of step s
// (Definition 8). Both paths have the same hop count,
// ceil(|dx|/s) + ceil(|dy|/s), which is what Theorem 2 bounds by
// sqrt(2) * |uv| / s when u and v are lattice points.
func LatticePathHops(u, v Point, s float64) int {
	if s <= 0 {
		return 0
	}
	dx := math.Abs(v.X - u.X)
	dy := math.Abs(v.Y - u.Y)
	return int(math.Ceil(dx/s-1e-9)) + int(math.Ceil(dy/s-1e-9))
}

// GridIndex maps a point to its cell (i, j) in a lattice of step s anchored at
// the origin. Points on boundaries map to the lower-index cell.
func GridIndex(p Point, s float64) (i, j int) {
	return int(math.Floor(p.X / s)), int(math.Floor(p.Y / s))
}
