package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Point{rng.Float64() * 100, rng.Float64() * 100}
		b := Point{rng.Float64() * 100, rng.Float64() * 100}
		c := Point{rng.Float64() * 100, rng.Float64() * 100}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestVectorOps(t *testing.T) {
	p, q := Point{1, 2}, Point{3, 5}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := Square(10)
	if r.Width() != 10 || r.Height() != 10 {
		t.Fatalf("Square(10) dims = %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 100 {
		t.Errorf("Area = %v, want 100", r.Area())
	}
	if want := 10 * math.Sqrt2; math.Abs(r.Diameter()-want) > 1e-12 {
		t.Errorf("Diameter = %v, want %v", r.Diameter(), want)
	}
	if c := r.Center(); c != (Point{5, 5}) {
		t.Errorf("Center = %v", c)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true}, // corner, closed region
		{Point{4, 2}, true}, // opposite corner
		{Point{2, 1}, true}, // interior
		{Point{-0.1, 1}, false},
		{Point{2, 2.1}, false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestLatticePathHops(t *testing.T) {
	// On a unit lattice, the path from (0,0) to (3,4) needs 3+4 hops,
	// matching (sin b + cos b) * len from Theorem 2's proof.
	if got := LatticePathHops(Point{0, 0}, Point{3, 4}, 1); got != 7 {
		t.Errorf("hops = %d, want 7", got)
	}
	// Axis-aligned segment: hop count equals length/step.
	if got := LatticePathHops(Point{0, 0}, Point{5, 0}, 1); got != 5 {
		t.Errorf("hops = %d, want 5", got)
	}
	// Degenerate step.
	if got := LatticePathHops(Point{0, 0}, Point{5, 0}, 0); got != 0 {
		t.Errorf("hops with zero step = %d, want 0", got)
	}
}

// TestLatticePathHopsTheorem2Bound checks the core inequality behind
// Theorem 2: hops <= sqrt(2) * dist / step for lattice-point endpoints.
func TestLatticePathHopsTheorem2Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		s := 1.0 + rng.Float64()*9
		u := Point{float64(rng.Intn(50)) * s, float64(rng.Intn(50)) * s}
		v := Point{float64(rng.Intn(50)) * s, float64(rng.Intn(50)) * s}
		hops := LatticePathHops(u, v, s)
		bound := math.Sqrt2 * u.Dist(v) / s
		if float64(hops) > bound+1e-6 {
			t.Fatalf("hops %d exceeds sqrt2 bound %.4f for u=%v v=%v s=%v", hops, bound, u, v, s)
		}
	}
}

func TestGridIndex(t *testing.T) {
	tests := []struct {
		p    Point
		s    float64
		i, j int
	}{
		{Point{0.5, 0.5}, 1, 0, 0},
		{Point{1.5, 2.5}, 1, 1, 2},
		{Point{10, 10}, 4, 2, 2},
		{Point{-0.5, 0.5}, 1, -1, 0},
	}
	for _, tt := range tests {
		i, j := GridIndex(tt.p, tt.s)
		if i != tt.i || j != tt.j {
			t.Errorf("GridIndex(%v, %v) = (%d,%d), want (%d,%d)", tt.p, tt.s, i, j, tt.i, tt.j)
		}
	}
}
