// Package radio is the packet-level wireless backend that replaces the
// paper's GTNetS simulation: transmissions are timed intervals on a
// discrete-event clock, every node's local clock is skewed within a bound,
// carrier sensing is aggregate-energy detection over the listener's slot
// window, and packet reception requires the worst-case SINR over the packet
// airtime to clear beta. It implements core.Backend, so the PDD/FDD
// protocols run unchanged on top of it.
package radio

import (
	"fmt"
	"math/rand"
	"sort"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/phys"
)

// Backend is a packet-level implementation of core.Backend.
type Backend struct {
	ch      *phys.Channel
	csMW    float64
	k       int
	timing  core.Timing
	offsets []des.Time // per-node clock offset, |offset| <= offset bound
	eng     *des.Engine

	screamSlots    int
	handshakeSlots int
}

var _ core.Backend = (*Backend)(nil)

// New builds a packet-level backend. offsetBound is the *actual* clock skew
// of the nodes (offsets are drawn uniformly from [-offsetBound, +offsetBound]
// using rng); timing.SkewBound is what the protocol *believes* and provisions
// guard time for. Setting offsetBound > timing.SkewBound under-provisions the
// guard and lets tests observe the resulting protocol failures.
func New(ch *phys.Channel, csThresholdMW float64, k int, timing core.Timing, offsetBound des.Time, rng *rand.Rand) (*Backend, error) {
	if k <= 0 {
		return nil, fmt.Errorf("radio: k must be positive, got %d", k)
	}
	if csThresholdMW <= 0 {
		return nil, fmt.Errorf("radio: carrier-sense threshold must be positive")
	}
	n := ch.NumNodes()
	offsets := make([]des.Time, n)
	if offsetBound > 0 {
		if rng == nil {
			return nil, fmt.Errorf("radio: non-zero offset bound requires an rng")
		}
		for i := range offsets {
			offsets[i] = des.Time(rng.Int63n(int64(2*offsetBound+1))) - offsetBound
		}
	}
	return &Backend{
		ch:      ch,
		csMW:    csThresholdMW,
		k:       k,
		timing:  timing,
		offsets: offsets,
		eng:     des.New(),
	}, nil
}

// SetOffsets overrides the per-node clock offsets (used by tests to build
// worst-case alignments).
func (b *Backend) SetOffsets(offsets []des.Time) error {
	if len(offsets) != len(b.offsets) {
		return fmt.Errorf("radio: %d offsets for %d nodes", len(offsets), len(b.offsets))
	}
	copy(b.offsets, offsets)
	return nil
}

// NumNodes implements core.Backend.
func (b *Backend) NumNodes() int { return b.ch.NumNodes() }

// Elapsed implements core.Backend.
func (b *Backend) Elapsed() des.Time { return b.eng.Now() }

// ScreamSlots returns how many SCREAM slots have been executed.
func (b *Backend) ScreamSlots() int { return b.screamSlots }

// HandshakeSlots returns how many handshake slots have been executed.
func (b *Backend) HandshakeSlots() int { return b.handshakeSlots }

// span is a transmission interval with the power it lands at one receiver.
type span struct {
	start, end des.Time
	power      float64
}

// maxAggregate returns the maximum total power of the spans over the probe
// window [a, b), treating spans as half-open intervals.
func maxAggregate(spans []span, a, b des.Time) float64 {
	type evt struct {
		t  des.Time
		dp float64
	}
	var events []evt
	for _, s := range spans {
		lo, hi := s.start, s.end
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi <= lo {
			continue
		}
		events = append(events, evt{lo, s.power}, evt{hi, -s.power})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].dp < events[j].dp // process departures first (half-open)
	})
	sum, max := 0.0, 0.0
	for _, e := range events {
		sum += e.dp
		if sum > max {
			max = sum
		}
	}
	return max
}

// Scream implements core.Backend: K slots of scream-and-relay with real
// energy detection over each listener's skewed window.
func (b *Backend) Scream(vars []bool) []bool {
	return core.RunScreamSlots(b.k, vars, b.screamSlot)
}

func (b *Backend) screamSlot(screamers []bool) []bool {
	b.screamSlots++
	t0 := b.eng.Now()
	slotDur := b.timing.ScreamSlot()
	payload := b.timing.TxTime(b.timing.SMBytes)
	delay := b.timing.TxDelay()

	n := b.NumNodes()
	det := make([]bool, n)
	var txs []int
	for u := 0; u < n; u++ {
		if screamers[u] {
			txs = append(txs, u)
		}
	}
	for v := 0; v < n; v++ {
		if screamers[v] {
			continue // transmitters do not listen in this slot
		}
		spans := make([]span, 0, len(txs))
		for _, u := range txs {
			start := t0 + b.offsets[u] + delay
			spans = append(spans, span{start: start, end: start + payload, power: b.ch.RxPowerMW(u, v)})
		}
		winStart := t0 + b.offsets[v]
		det[v] = maxAggregate(spans, winStart, winStart+slotDur) >= b.csMW
	}
	b.eng.RunUntil(t0 + slotDur)
	return det
}

// HandshakeSlot implements core.Backend: a data sub-slot followed by an ACK
// sub-slot, both with skewed per-node windows and worst-case SINR decoding.
func (b *Backend) HandshakeSlot(links []phys.Link) []bool {
	b.handshakeSlots++
	t0 := b.eng.Now()
	n := len(links)
	ok := make([]bool, n)

	conflicted := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if links[i].SharesEndpoint(links[j]) {
				conflicted[i] = true
				conflicted[j] = true
			}
		}
	}

	// Data sub-slot: every sender transmits (a conflicted sender still
	// radiates energy; it just cannot complete its own handshake).
	all := func(int) bool { return true }
	dataOK := b.decodeSubSlot(t0, links, b.timing.DataBytes, b.timing.DataSubSlot(), func(i int) (tx, rx int) {
		return links[i].From, links[i].To
	}, all, func(i int) bool { return !conflicted[i] })

	// ACK sub-slot: only receivers that decoded the data reply.
	ackStart := t0 + b.timing.DataSubSlot()
	acks := func(i int) bool { return dataOK[i] }
	ackOK := b.decodeSubSlot(ackStart, links, b.timing.AckBytes, b.timing.AckSubSlot(), func(i int) (tx, rx int) {
		return links[i].To, links[i].From
	}, acks, acks)

	for i := range links {
		ok[i] = dataOK[i] && ackOK[i]
	}
	b.eng.RunUntil(t0 + b.timing.HandshakeSlot())
	return ok
}

// decodeSubSlot runs one sub-slot in which, for each link i with
// transmits(i), endpoint tx(i) transmits `bytes` to rx(i), all concurrently.
// Links with decodes(i) attempt reception: a packet decodes iff it lies
// fully inside its receiver's window and its worst-case SINR over the packet
// airtime clears beta.
func (b *Backend) decodeSubSlot(t0 des.Time, links []phys.Link, bytes int, slotDur des.Time, dir func(i int) (tx, rx int), transmits, decodes func(i int) bool) []bool {
	payload := b.timing.TxTime(bytes)
	delay := b.timing.TxDelay()
	n := len(links)
	okOut := make([]bool, n)

	type tx struct {
		node       int
		start, end des.Time
	}
	var txs []tx
	for i := range links {
		if !transmits(i) {
			continue
		}
		u, _ := dir(i)
		start := t0 + b.offsets[u] + delay
		txs = append(txs, tx{node: u, start: start, end: start + payload})
	}
	for i := range links {
		if !transmits(i) || !decodes(i) {
			continue
		}
		u, v := dir(i)
		start := t0 + b.offsets[u] + delay
		end := start + payload
		winStart := t0 + b.offsets[v]
		winEnd := winStart + slotDur
		if start < winStart || end > winEnd {
			continue // packet not contained in the receiver's window
		}
		// Worst-case interference over the packet airtime.
		var spans []span
		for _, x := range txs {
			if x.node == u {
				continue
			}
			spans = append(spans, span{start: x.start, end: x.end, power: b.ch.RxPowerMW(x.node, v)})
		}
		interf := maxAggregate(spans, start, end)
		okOut[i] = b.ch.RxPowerMW(u, v) >= b.ch.Beta()*(b.ch.NoiseMW()+interf)
	}
	return okOut
}
