package radio

import (
	"math/rand"
	"testing"

	"scream/internal/core"
	"scream/internal/des"
	"scream/internal/phys"
	"scream/internal/route"
	"scream/internal/sched"
	"scream/internal/topo"
	"scream/internal/traffic"
)

func gridNet(t testing.TB, dim int) *topo.Network {
	t.Helper()
	net, err := topo.NewGrid(topo.GridConfig{Rows: dim, Cols: dim, Step: 30, Params: topo.DefaultParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func newBackend(t testing.TB, net *topo.Network, skew des.Time, seed int64) *Backend {
	t.Helper()
	tm := core.DefaultTiming()
	tm.SkewBound = skew
	b, err := New(net.Channel, net.Params.CSThresholdMW, net.InterferenceDiameter(), tm, skew, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	net := gridNet(t, 3)
	tm := core.DefaultTiming()
	if _, err := New(net.Channel, net.Params.CSThresholdMW, 0, tm, 0, nil); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(net.Channel, 0, 3, tm, 0, nil); err == nil {
		t.Error("zero CS threshold should fail")
	}
	if _, err := New(net.Channel, net.Params.CSThresholdMW, 3, tm, des.Microsecond, nil); err == nil {
		t.Error("offset bound without rng should fail")
	}
	if _, err := New(net.Channel, net.Params.CSThresholdMW, 3, tm, 0, nil); err != nil {
		t.Errorf("zero skew without rng should be fine: %v", err)
	}
}

func TestMaxAggregate(t *testing.T) {
	spans := []span{
		{start: 0, end: 10, power: 1},
		{start: 5, end: 15, power: 2},
		{start: 20, end: 30, power: 10},
	}
	if got := maxAggregate(spans, 0, 15); got != 3 {
		t.Errorf("overlap max = %v, want 3", got)
	}
	if got := maxAggregate(spans, 0, 4); got != 1 {
		t.Errorf("early window max = %v, want 1", got)
	}
	if got := maxAggregate(spans, 16, 19); got != 0 {
		t.Errorf("gap max = %v, want 0", got)
	}
	// Half-open semantics: a span ending exactly where another begins does
	// not stack with it.
	touch := []span{{start: 0, end: 10, power: 1}, {start: 10, end: 20, power: 1}}
	if got := maxAggregate(touch, 0, 20); got != 1 {
		t.Errorf("touching spans max = %v, want 1", got)
	}
	if got := maxAggregate(nil, 0, 100); got != 0 {
		t.Errorf("no spans max = %v, want 0", got)
	}
}

func TestScreamMatchesIdealNoSkew(t *testing.T) {
	net := gridNet(t, 4)
	rb := newBackend(t, net, 0, 1)
	ib, err := core.NewIdealBackend(net.Channel, net.Sens, net.InterferenceDiameter(), core.DefaultTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := net.NumNodes()
	for trial := 0; trial < 40; trial++ {
		vars := make([]bool, n)
		for i := range vars {
			vars[i] = rng.Intn(5) == 0
		}
		got := rb.Scream(vars)
		want := ib.Scream(vars)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d node %d: radio %v, ideal %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestScreamWorksWithProvisionedSkew(t *testing.T) {
	// Skew within the provisioned bound must not break the network-wide OR.
	net := gridNet(t, 4)
	rb := newBackend(t, net, 50*des.Microsecond, 7)
	n := net.NumNodes()
	vars := make([]bool, n)
	vars[5] = true
	got := rb.Scream(vars)
	for i, g := range got {
		if !g {
			t.Fatalf("node %d missed the scream despite guard provisioning", i)
		}
	}
}

func TestScreamFailsWhenGuardUnderProvisioned(t *testing.T) {
	// Actual skew 10x the provisioned bound: packets can fall outside
	// listener windows and the OR can under-propagate.
	net, err := topo.NewLine(8, 30, topo.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tm := core.DefaultTiming()
	tm.SkewBound = des.Microsecond // guard provisioned for 1 us
	actual := 400 * des.Microsecond
	b, err := New(net.Channel, net.Params.CSThresholdMW, net.InterferenceDiameter(), tm, actual, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// Worst case: alternate extreme offsets so adjacent nodes never align.
	offsets := make([]des.Time, net.NumNodes())
	for i := range offsets {
		if i%2 == 0 {
			offsets[i] = -actual
		} else {
			offsets[i] = actual
		}
	}
	if err := b.SetOffsets(offsets); err != nil {
		t.Fatal(err)
	}
	vars := make([]bool, net.NumNodes())
	vars[0] = true
	got := b.Scream(vars)
	reached := 0
	for _, g := range got {
		if g {
			reached++
		}
	}
	if reached == net.NumNodes() {
		t.Error("under-provisioned guard should lose at least one node")
	}
	t.Logf("under-provisioned guard reached %d/%d nodes", reached, net.NumNodes())
}

func TestHandshakeMatchesIdealNoSkew(t *testing.T) {
	net := gridNet(t, 5)
	rb := newBackend(t, net, 0, 1)
	rng := rand.New(rand.NewSource(11))
	f, err := route.BuildForest(net.Comm, []int{0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	links := f.Links()
	for trial := 0; trial < 50; trial++ {
		// Random subset of links.
		var set []phys.Link
		for _, l := range links {
			if rng.Intn(4) == 0 {
				set = append(set, l)
			}
		}
		got := rb.HandshakeSlot(set)
		want := net.Channel.HandshakeOutcome(set)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d link %v: radio %v, ideal %v", trial, set[i], got[i], want[i])
			}
		}
	}
}

func TestHandshakeWithSkewStillDecodes(t *testing.T) {
	net := gridNet(t, 4)
	rb := newBackend(t, net, 100*des.Microsecond, 13)
	f, err := route.BuildForest(net.Comm, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := f.EdgeOf(5)
	if !ok {
		t.Fatal("node 5 should own an edge")
	}
	got := rb.HandshakeSlot([]phys.Link{l})
	if !got[0] {
		t.Error("a lone handshake with provisioned skew must succeed")
	}
}

func TestElapsedAdvances(t *testing.T) {
	net := gridNet(t, 3)
	rb := newBackend(t, net, des.Microsecond, 17)
	if rb.Elapsed() != 0 {
		t.Fatal("fresh backend should be at time 0")
	}
	rb.Scream(make([]bool, net.NumNodes()))
	k := des.Time(net.InterferenceDiameter())
	tm := core.DefaultTiming()
	tm.SkewBound = des.Microsecond
	if got, want := rb.Elapsed(), k*tm.ScreamSlot(); got != want {
		t.Errorf("after one SCREAM elapsed = %v, want %v", got, want)
	}
	rb.HandshakeSlot(nil)
	if got, want := rb.Elapsed(), k*tm.ScreamSlot()+tm.HandshakeSlot(); got != want {
		t.Errorf("after handshake elapsed = %v, want %v", got, want)
	}
	if rb.ScreamSlots() != int(k) || rb.HandshakeSlots() != 1 {
		t.Errorf("slot counters wrong: %d screams, %d handshakes", rb.ScreamSlots(), rb.HandshakeSlots())
	}
}

func TestFullFDDOnRadioMatchesIdeal(t *testing.T) {
	// The flagship validation: the complete FDD protocol over the
	// packet-level radio (with real skew inside the provisioned bound)
	// produces exactly the schedule the ideal backend computes — and hence,
	// by Theorem 4, the centralized GreedyPhysical schedule.
	net := gridNet(t, 4)
	rng := rand.New(rand.NewSource(23))
	f, err := route.BuildForest(net.Comm, []int{0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nodeDemand, err := traffic.Uniform(net.NumNodes(), 1, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := f.AggregateDemand(nodeDemand)
	if err != nil {
		t.Fatal(err)
	}
	links := f.Links()
	demands := make([]int, len(links))
	for i, l := range links {
		demands[i] = agg[l.From]
	}

	tm := core.DefaultTiming()
	tm.SkewBound = 10 * des.Microsecond
	rb, err := New(net.Channel, net.Params.CSThresholdMW, net.InterferenceDiameter(), tm, tm.SkewBound, rand.New(rand.NewSource(29)))
	if err != nil {
		t.Fatal(err)
	}
	radioRes, err := core.Run(core.Config{Variant: core.FDD, Links: links, Demands: demands, Backend: rb})
	if err != nil {
		t.Fatal(err)
	}
	if err := radioRes.Schedule.Verify(net.Channel, links, demands); err != nil {
		t.Fatalf("radio-backend FDD schedule invalid: %v", err)
	}
	want, err := sched.GreedyPhysical(net.Channel, links, demands, sched.ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if !radioRes.Schedule.Equal(want) {
		t.Error("radio-backend FDD differs from centralized GreedyPhysical")
	}
	if radioRes.ExecTime <= 0 {
		t.Error("radio backend must accumulate execution time")
	}
	t.Logf("radio FDD: %d slots in simulated %v", radioRes.Schedule.Length(), radioRes.ExecTime)
}

func TestSetOffsetsValidation(t *testing.T) {
	net := gridNet(t, 3)
	rb := newBackend(t, net, 0, 1)
	if err := rb.SetOffsets(make([]des.Time, 2)); err == nil {
		t.Error("wrong offset count should fail")
	}
}
