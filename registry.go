package scream

// The public scheduler registry: one name-addressable table unifying every
// flow-scheduler variant. It replaces the parallel constant/constructor
// surfaces that had accumulated (FlowGreedy/FlowMaxWeight/..., per-CLI switch
// statements): CLIs, the screamd daemon and library callers all resolve
// schedulers by name through SchedulerByName, and enumerate them through
// Schedulers. The legacy FlowScheduler constants remain as thin aliases into
// this registry (see FlowOptions.Scheduler), so existing callers keep
// working unchanged.

import (
	"fmt"

	"scream/internal/flow"
)

// SchedulerInfo describes one registered flow scheduler. The JSON shape is
// served verbatim by screamd's /api/v1/schedulers endpoint.
type SchedulerInfo struct {
	// Name is the registry key: the value of flowsim -scheduler,
	// ScenarioSpec.Scheduler and SchedulerByName.
	Name string `json:"name"`
	// Display is the human label used for figure series ("Greedy", "FDD").
	Display string `json:"display"`
	// Doc is a one-line description of the scheduling discipline.
	Doc string `json:"doc"`
	// Distributed marks schedulers that pay real (non-genie) control cost
	// in simulated time (FDD, PDD).
	Distributed bool `json:"distributed"`
	// MultiChannel marks schedulers that accept FlowOptions.Channels > 1.
	MultiChannel bool `json:"multi_channel"`
}

// flowSchedulerIDs maps registry names onto the legacy FlowScheduler
// constants, which remain the internal representation of FlowOptions.
var flowSchedulerIDs = map[string]FlowScheduler{
	"greedy":    FlowGreedy,
	"maxweight": FlowMaxWeight,
	"fanzhang":  FlowFanZhang,
	"fdd":       FlowFDD,
	"pdd":       FlowPDD,
	"tdma":      FlowTDMA,
}

// registryName returns the registry key of a FlowScheduler constant (the
// zero value is FlowGreedy, matching RunFlow's historical default).
func (s FlowScheduler) registryName() (string, bool) {
	if s == 0 {
		return "greedy", true
	}
	for name, id := range flowSchedulerIDs {
		if id == s {
			return name, true
		}
	}
	return "", false
}

// String returns the scheduler's registry name ("greedy", "fdd", ...).
func (s FlowScheduler) String() string {
	if name, ok := s.registryName(); ok {
		return name
	}
	return fmt.Sprintf("FlowScheduler(%d)", int(s))
}

// Schedulers enumerates the registered flow schedulers in reporting order.
// The returned slice is freshly allocated on every call: mutating it (or its
// entries) never affects the registry.
func Schedulers() []SchedulerInfo {
	defs := flow.SchedulerDefs()
	infos := make([]SchedulerInfo, len(defs))
	for i, d := range defs {
		infos[i] = SchedulerInfo{
			Name:         d.Name,
			Display:      d.Display,
			Doc:          d.Doc,
			Distributed:  d.Distributed,
			MultiChannel: d.MultiChannel,
		}
	}
	return infos
}

// SchedulerByName resolves a registry name ("greedy", "maxweight",
// "fanzhang", "fdd", "pdd", "tdma") to the FlowScheduler selector used by
// FlowOptions and ScenarioSpec. Unknown names return an error listing every
// valid name.
func SchedulerByName(name string) (FlowScheduler, error) {
	if _, err := flow.SchedulerDefByName(name); err != nil {
		return 0, fmt.Errorf("scream: %w", err)
	}
	id, ok := flowSchedulerIDs[name]
	if !ok {
		// A scheduler registered in internal/flow but missing here is a
		// programming error: the registry and the legacy constants must
		// cover the same family.
		return 0, fmt.Errorf("scream: scheduler %q has no FlowScheduler constant", name)
	}
	return id, nil
}
