package main

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"scream"
)

// writeTrace runs a small scenario with tracing and returns the trace path.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/trace.jsonl"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := scream.NewObsTracer(f)
	spec := scream.ScenarioSpec{
		Topology:       scream.TopologySpec{Kind: "grid", Rows: 4, Cols: 4, StepMeters: 30},
		Traffic:        scream.TrafficSpec{Kind: "cbr", Load: 0.5},
		Scheduler:      "fdd",
		HorizonSec:     0.3,
		Seed:           1,
		FramesPerEpoch: 8,
		MaxService:     8,
	}
	if _, err := scream.RunWith(context.Background(), spec, scream.RunOptions{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateSummarizeChrome(t *testing.T) {
	path := writeTrace(t)
	if err := runValidate([]string{"-q", path}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if err := runSummarize([]string{path}); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	out := t.TempDir() + "/trace.chrome.json"
	if err := runChrome([]string{"-o", out, path}); err != nil {
		t.Fatalf("chrome: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome output not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome output has no events")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	path := writeTrace(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the final line (the run span_end): an unclosed run span and a
	// missing conservation ledger must fail validation.
	i := len(b) - 2
	for i > 0 && b[i] != '\n' {
		i--
	}
	if err := os.WriteFile(path, b[:i+1], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runValidate([]string{"-q", path}); err == nil {
		t.Fatal("validate accepted a truncated trace")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := load([]string{"/nonexistent/trace.jsonl"}); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := t.TempDir() + "/empty.jsonl"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load([]string{empty}); err == nil {
		t.Fatal("empty trace accepted")
	}
	if err := dispatch("transmogrify", nil); err == nil {
		t.Fatal("unknown command accepted")
	}
}
