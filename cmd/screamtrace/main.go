// Command screamtrace analyzes schema-v2 JSONL traces produced by flowsim
// -trace and the screamd per-session capture endpoint
// (/api/v1/sessions/{id}/trace).
//
// Subcommands:
//
//	screamtrace validate trace.jsonl
//	    Checks the schema and replays the run's invariants offline from the
//	    trace alone: span begin/end pairing and the run ▸ epoch ▸
//	    schedule_build ▸ slot hierarchy, packet conservation
//	    (offered == delivered + dropped + lost + backlog), monotone
//	    cumulative epoch counters, and the protocol timing identity
//	    (exec == screams_measured*k*scream_slot + handshakes_measured*hs_slot).
//	    Exits 1 listing every violation.
//
//	screamtrace summarize trace.jsonl
//	    Prints event counts, the run's packet ledger and delay percentiles,
//	    and a per-epoch table (demand, slots, control time, delivered,
//	    backlog, goodput).
//
//	screamtrace chrome [-o out.json] trace.jsonl
//	    Converts the trace to Chrome trace-event JSON. Open the output in
//	    Perfetto (https://ui.perfetto.dev) or chrome://tracing to see the
//	    run as a flame timeline: epochs and schedule builds as nested spans,
//	    handshakes and protocol summaries as instants.
//
// The input path "-" (or no path) reads stdin, so captured session traces
// pipe straight through:
//
//	curl -s localhost:8080/api/v1/sessions/3/trace | screamtrace validate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scream/internal/buildinfo"
	"scream/internal/tracecheck"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "-version", "--version", "version":
		fmt.Println(buildinfo.Version())
		return
	}
	if err := dispatch(args[0], args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "screamtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: screamtrace <command> [trace.jsonl]

commands:
  validate   check schema and replay run invariants; exit 1 on violations
  summarize  print event counts, packet ledger and per-epoch table
  chrome     convert to Chrome trace-event JSON for Perfetto ([-o out.json] before the path)
  version    print version and exit

The trace path "-" (or none) reads stdin.
`)
}

func dispatch(cmd string, args []string) error {
	switch cmd {
	case "validate":
		return runValidate(args)
	case "summarize":
		return runSummarize(args)
	case "chrome":
		return runChrome(args)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// load parses the trace named by the first non-flag argument ("-"/none =
// stdin).
func load(args []string) ([]tracecheck.Event, error) {
	var r io.Reader = os.Stdin
	name := "stdin"
	if len(args) > 0 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r, name = f, args[0]
	}
	events, err := tracecheck.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("%s: empty trace", name)
	}
	return events, nil
}

func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	quiet := fs.Bool("q", false, "suppress the OK line")
	fs.Parse(args)
	events, err := load(fs.Args())
	if err != nil {
		return err
	}
	if vs := tracecheck.Validate(events); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintln(os.Stderr, v)
		}
		return fmt.Errorf("%d invariant violation(s) in %d events", len(vs), len(events))
	}
	if !*quiet {
		fmt.Printf("ok: %d events, all invariants hold\n", len(events))
	}
	return nil
}

func runSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	fs.Parse(args)
	events, err := load(fs.Args())
	if err != nil {
		return err
	}
	return tracecheck.Summarize(events).WriteText(os.Stdout)
}

func runChrome(args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	events, err := load(fs.Args())
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return tracecheck.Chrome(events, w)
}
