package main

import "testing"

func TestRunGrid(t *testing.T) {
	if err := run("grid", 4, 4, 30, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunUniform(t *testing.T) {
	if err := run("uniform", 0, 0, 0, 25, 180, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("torus", 4, 4, 30, 0, 0, 1); err == nil {
		t.Error("unknown topology should fail")
	}
}
