// Command topoinspect builds a mesh topology and prints its structural
// properties: communication/sensitivity graph statistics, interference
// diameter, routing forest shape and demand aggregation.
package main

import (
	"flag"
	"fmt"
	"os"

	"scream"
	"scream/internal/buildinfo"
)

func main() {
	var (
		topology = flag.String("topology", "grid", "grid or uniform")
		rows     = flag.Int("rows", 8, "grid rows")
		cols     = flag.Int("cols", 8, "grid cols")
		step     = flag.Float64("step", 30, "grid step (m)")
		n        = flag.Int("n", 64, "uniform: node count")
		side     = flag.Float64("side", 250, "uniform: region side (m)")
		seed     = flag.Int64("seed", 1, "random seed")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	if err := run(*topology, *rows, *cols, *step, *n, *side, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "topoinspect:", err)
		os.Exit(1)
	}
}

func run(topology string, rows, cols int, step float64, n int, side float64, seed int64) error {
	var (
		mesh *scream.Mesh
		err  error
	)
	switch topology {
	case "grid":
		mesh, err = scream.NewGridMesh(scream.GridMeshConfig{Rows: rows, Cols: cols, StepMeters: step, Seed: seed})
	case "uniform":
		mesh, err = scream.NewUniformMesh(scream.UniformMeshConfig{N: n, SideMeters: side, MinTxDBm: 16, MaxTxDBm: 22, Seed: seed})
	default:
		return fmt.Errorf("unknown topology %q", topology)
	}
	if err != nil {
		return err
	}

	net := mesh.Network
	fmt.Printf("nodes:                  %d\n", mesh.NumNodes())
	fmt.Printf("region:                 %.0fm x %.0fm (%.0f nodes/km^2)\n",
		net.Region.Width(), net.Region.Height(), net.DensityNodesPerSqKm())
	fmt.Printf("communication edges:    %d (avg degree rho = %.2f)\n",
		net.Comm.NumEdges()/2, mesh.NeighborDensity())
	fmt.Printf("sensitivity edges:      %d\n", net.Sens.NumEdges())
	fmt.Printf("connected:              %v\n", net.Connected())
	fmt.Printf("interference diameter:  %d  (SCREAM needs K >= this)\n", mesh.InterferenceDiameter())
	fmt.Printf("gateways:               %v\n", mesh.Gateways())

	maxDepth, totalDemand, maxDemand := 0, 0, 0
	for _, l := range mesh.Links {
		if d := mesh.Forest.Depth(l.From); d > maxDepth {
			maxDepth = d
		}
	}
	for _, d := range mesh.Demands {
		totalDemand += d
		if d > maxDemand {
			maxDemand = d
		}
	}
	fmt.Printf("forest depth:           %d\n", maxDepth)
	fmt.Printf("links to schedule:      %d\n", len(mesh.Links))
	fmt.Printf("total demand TD:        %d (max per-edge %d)\n", totalDemand, maxDemand)
	return nil
}
