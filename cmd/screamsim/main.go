// Command screamsim runs one scheduling scenario end to end: it builds a
// mesh (planned grid or unplanned uniform), computes schedules with the
// requested algorithms, verifies them against the physical interference
// model and prints the comparison.
//
// Example:
//
//	screamsim -topology grid -rows 8 -cols 8 -step 30 -protocols greedy,fdd,pdd -p 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scream"
	"scream/internal/buildinfo"
)

func main() {
	var (
		topology = flag.String("topology", "grid", "grid or uniform")
		rows     = flag.Int("rows", 8, "grid rows")
		cols     = flag.Int("cols", 8, "grid cols")
		step     = flag.Float64("step", 30, "grid step (m)")
		n        = flag.Int("n", 64, "uniform: node count")
		side     = flag.Float64("side", 250, "uniform: region side (m)")
		minTx    = flag.Float64("mintx", 16, "uniform: min TX power (dBm)")
		maxTx    = flag.Float64("maxtx", 22, "uniform: max TX power (dBm)")
		txPower  = flag.Float64("tx", 0, "grid: TX power in dBm (0 = derive from step)")
		protos   = flag.String("protocols", "greedy,fdd,pdd", "comma-separated: greedy, fdd, pdd")
		p        = flag.Float64("p", 0.2, "PDD activation probability")
		seed     = flag.Int64("seed", 1, "random seed")
		packet   = flag.Bool("packet-level", false, "run protocols on the packet-level radio backend")
		k        = flag.Int("k", 0, "SCREAM length in slots (0 = interference diameter)")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	if err := run(*topology, *rows, *cols, *step, *n, *side, *minTx, *maxTx, *txPower, *protos, *p, *seed, *packet, *k); err != nil {
		fmt.Fprintln(os.Stderr, "screamsim:", err)
		os.Exit(1)
	}
}

func run(topology string, rows, cols int, step float64, n int, side, minTx, maxTx, txPower float64, protos string, p float64, seed int64, packet bool, k int) error {
	var (
		mesh *scream.Mesh
		err  error
	)
	switch topology {
	case "grid":
		mesh, err = scream.NewGridMesh(scream.GridMeshConfig{
			Rows: rows, Cols: cols, StepMeters: step, TxPowerDBm: txPower, Seed: seed,
		})
	case "uniform":
		mesh, err = scream.NewUniformMesh(scream.UniformMeshConfig{
			N: n, SideMeters: side, MinTxDBm: minTx, MaxTxDBm: maxTx, Seed: seed,
		})
	default:
		return fmt.Errorf("unknown topology %q", topology)
	}
	if err != nil {
		return err
	}

	fmt.Printf("mesh: %d nodes, %d links, gateways %v\n", mesh.NumNodes(), len(mesh.Links), mesh.Gateways())
	fmt.Printf("      interference diameter ID(G_S) = %d, neighbor density rho = %.1f\n",
		mesh.InterferenceDiameter(), mesh.NeighborDensity())
	fmt.Printf("      total demand TD = %d (linear schedule length)\n\n", mesh.TotalDemand())

	opts := scream.ProtocolOptions{Seed: seed, PacketLevel: packet, K: k}
	for _, proto := range strings.Split(protos, ",") {
		switch strings.TrimSpace(proto) {
		case "greedy":
			s, err := mesh.GreedySchedule(scream.ByHeadIDDesc)
			if err != nil {
				return err
			}
			if err := mesh.Verify(s); err != nil {
				return fmt.Errorf("greedy schedule failed verification: %w", err)
			}
			fmt.Printf("%-22s %4d slots  %5.1f%% improvement over linear  [verified]\n",
				"GreedyPhysical:", s.Length(), mesh.Improvement(s))
		case "fdd":
			res, err := mesh.RunFDD(opts)
			if err != nil {
				return err
			}
			if err := mesh.Verify(res.Schedule); err != nil {
				return fmt.Errorf("FDD schedule failed verification: %w", err)
			}
			fmt.Printf("%-22s %4d slots  %5.1f%% improvement  exec %.3fs  (%d elections, %d screams)  [verified]\n",
				"FDD:", res.Schedule.Length(), mesh.Improvement(res.Schedule),
				res.ExecTime.Seconds(), res.Elections, res.Screams)
		case "pdd":
			res, err := mesh.RunPDD(p, opts)
			if err != nil {
				return err
			}
			if err := mesh.Verify(res.Schedule); err != nil {
				return fmt.Errorf("PDD schedule failed verification: %w", err)
			}
			fmt.Printf("%-22s %4d slots  %5.1f%% improvement  exec %.3fs  (%d steps, %d screams)  [verified]\n",
				fmt.Sprintf("PDD (p=%.2f):", p), res.Schedule.Length(), mesh.Improvement(res.Schedule),
				res.ExecTime.Seconds(), res.Steps, res.Screams)
		default:
			return fmt.Errorf("unknown protocol %q", proto)
		}
	}
	return nil
}
