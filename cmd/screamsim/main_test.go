package main

import "testing"

func TestRunGridAllProtocols(t *testing.T) {
	if err := run("grid", 4, 4, 30, 0, 0, 0, 0, 0, "greedy,fdd,pdd", 0.3, 1, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunUniform(t *testing.T) {
	if err := run("uniform", 0, 0, 0, 25, 180, 14, 20, 0, "greedy", 0.2, 2, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunPacketLevel(t *testing.T) {
	if err := run("grid", 4, 4, 30, 0, 0, 0, 0, 0, "fdd", 0.2, 3, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("mobius", 4, 4, 30, 0, 0, 0, 0, 0, "greedy", 0.2, 1, false, 0); err == nil {
		t.Error("unknown topology should fail")
	}
	if err := run("grid", 4, 4, 30, 0, 0, 0, 0, 0, "quantum", 0.2, 1, false, 0); err == nil {
		t.Error("unknown protocol should fail")
	}
	if err := run("grid", 0, 0, 0, 0, 0, 0, 0, 0, "greedy", 0.2, 1, false, 0); err == nil {
		t.Error("invalid grid should fail")
	}
}
