package main

import (
	"bytes"
	"os"
	"testing"

	"scream"
	"scream/internal/tracecheck"
)

// Small meshes and short horizons: these exercise the full CLI path, not the
// physics (internal/flow owns those assertions).

func TestRunGreedyCBR(t *testing.T) {
	if err := run(4, 4, 30, 0, "greedy", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 1, 1, 1, "", "", false, nil, dynFlags{mobility: "none"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFDDPoisson(t *testing.T) {
	if err := run(4, 4, 30, 0, "fdd", 0.8, "poisson", 0.5, 0.5, 16, 8, 0, 1, 1, 2, "", "", false, nil, dynFlags{mobility: "none"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPDDBursty(t *testing.T) {
	if err := run(4, 4, 30, 0, "pdd", 0.6, "bursty", 0.5, 0.5, 16, 8, 0, 1, 1, 3, "", "", false, nil, dynFlags{mobility: "none"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTDMAZipf(t *testing.T) {
	if err := run(4, 4, 30, 0, "tdma", 0.8, "zipf", 0.5, 0.3, 8, 8, 16, 1, 1, 4, "", "", false, nil, dynFlags{mobility: "none"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpatialEngine(t *testing.T) {
	interf := &scream.InterferenceSpec{Engine: scream.EngineSpatial}
	if err := run(4, 4, 30, 0, "greedy", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 1, 1, 9, "", "", false, interf, dynFlags{mobility: "none"}); err != nil {
		t.Fatal(err)
	}
	if err := run(4, 4, 30, 0, "fdd", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 1, 1, 9, "", "", false, interf, dynFlags{mobility: "none"}); err == nil {
		t.Error("the distributed fdd scheduler requires the dense engine and should fail")
	}
}

func TestRunMultiChannel(t *testing.T) {
	// Every scheduler over 3 channels with 2 radios per node.
	for _, sched := range []string{"greedy", "fdd", "pdd", "tdma"} {
		if err := run(4, 4, 30, 0, sched, 0.8, "poisson", 1.5, 0.4, 16, 8, 0, 3, 2, 8, "", "", false, nil, dynFlags{mobility: "none"}); err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
	}
}

func TestRunChurn(t *testing.T) {
	d := dynFlags{failRate: 2, downtime: 0.1, mobility: "none"}
	if err := run(4, 4, 30, 0, "greedy", 0.8, "poisson", 0.5, 0.4, 8, 8, 0, 1, 1, 5, "", "", false, nil, d); err != nil {
		t.Fatal(err)
	}
}

func TestRunMobility(t *testing.T) {
	d := dynFlags{mobility: "waypoint", speed: 10, pause: 0.05, moveInt: 0.05}
	if err := run(4, 4, 30, 0, "tdma", 0.8, "cbr", 0.5, 0.4, 8, 8, 0, 1, 1, 6, "", "", false, nil, d); err != nil {
		t.Fatal(err)
	}
	d = dynFlags{mobility: "drift", speed: 5, moveInt: 0.05}
	if err := run(4, 4, 30, 0, "greedy", 0.8, "cbr", 0.5, 0.4, 8, 8, 0, 1, 1, 7, "", "", false, nil, d); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	out := t.TempDir() + "/trace.jsonl"
	if err := run(4, 4, 30, 0, "fdd", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 1, 1, 1, "", out, false, nil, dynFlags{mobility: "none"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, []byte(`{"v":2,"ev":"span_begin"`)) {
		t.Fatalf("trace does not start with a v2 run span: %.80s", b)
	}
	events, err := tracecheck.Parse(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if vs := tracecheck.Validate(events); len(vs) > 0 {
		t.Fatalf("trace violates invariants: %v", vs)
	}
}

// TestRunPerfTrace: -perf adds wall_ns sampling without breaking any trace
// invariant.
func TestRunPerfTrace(t *testing.T) {
	out := t.TempDir() + "/trace_perf.jsonl"
	if err := run(4, 4, 30, 0, "greedy", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 1, 1, 1, "", out, true, nil, dynFlags{mobility: "none"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"wall_ns":`)) {
		t.Fatal("perf-enabled trace has no wall_ns samples")
	}
	events, err := tracecheck.Parse(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if vs := tracecheck.Validate(events); len(vs) > 0 {
		t.Fatalf("perf trace violates invariants: %v", vs)
	}
}

// TestRunScenarioFile drives the -scenario path: a JSON spec loads and runs;
// a typoed knob fails loudly instead of silently running the default.
func TestRunScenarioFile(t *testing.T) {
	path := t.TempDir() + "/spec.json"
	doc := `{"topology":{"kind":"grid","rows":4,"cols":4,"step_m":30},` +
		`"traffic":{"kind":"poisson","load":0.5},"scheduler":"fdd",` +
		`"horizon_sec":0.3,"seed":1,"frames_per_epoch":8,"max_service":8}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := scream.LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := execute(spec, "", "", false); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"horizon_secs":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := scream.LoadScenario(path); err == nil {
		t.Error("typoed scenario field should fail to load")
	}
}

func TestRunErrors(t *testing.T) {
	none := dynFlags{mobility: "none"}
	if err := run(4, 4, 30, 0, "astrology", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 1, 1, 1, "", "", false, nil, none); err == nil {
		t.Error("unknown scheduler should fail")
	}
	if err := run(4, 4, 30, 0, "greedy", 0.8, "telepathy", 0.5, 0.3, 8, 8, 0, 1, 1, 1, "", "", false, nil, none); err == nil {
		t.Error("unknown arrival process should fail")
	}
	if err := run(0, 0, 30, 0, "greedy", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 1, 1, 1, "", "", false, nil, none); err == nil {
		t.Error("invalid grid should fail")
	}
	if err := run(4, 4, 30, 0, "greedy", 0.8, "cbr", 0.5, 0, 8, 8, 0, 1, 1, 1, "", "", false, nil, none); err == nil {
		t.Error("zero horizon should fail")
	}
	if err := run(4, 4, 30, 0, "greedy", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 0, 0, 1, "", "", false, nil, none); err == nil {
		t.Error("zero channel count should fail")
	}
	if err := run(4, 4, 30, 0, "greedy", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 1, 1, 1, "", "", false, nil, dynFlags{failRate: 1, mobility: "levitation"}); err == nil {
		t.Error("unknown mobility model should fail")
	}
	if err := run(4, 4, 30, 0, "greedy", 0.8, "cbr", 0.5, 0.3, 8, 8, 0, 1, 1, 1, "", "", false, nil, dynFlags{failRate: -2, mobility: "none"}); err == nil {
		t.Error("negative fail rate should fail, not silently disable churn")
	}
}
