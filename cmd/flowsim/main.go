// Command flowsim runs the flow-level dynamic traffic simulator on one mesh:
// packets arrive continuously at every router, queue on the routing forest's
// links, and are drained by epoch-based schedules from the selected
// scheduler. It reports delivered goodput, end-to-end delay percentiles,
// backlog and control-overhead fraction.
//
// The offered load is expressed relative to the mesh's static capacity (the
// greedy frame serving one packet per router): -load 0.8 offers 0.8x that.
//
// Topology dynamics run underneath when requested: -failrate drives node
// churn (with -downtime repairs and optionally -failgw gateway outages) and
// -mobility moves the routers (waypoint or drift at -speed). Adaptive
// schedulers (greedy, maxweight, fanzhang, fdd, pdd) re-plan on the
// incrementally repaired routing forest at epoch boundaries; tdma keeps its
// static frame.
//
// The queue-aware maxweight scheduler re-ranks links by backlog x rate each
// epoch (try it with -arrival zipf, the skewed-backlog regime it exists
// for); fanzhang is the length-class approximation scheduler. Both are
// single-channel only.
//
// Multi-channel meshes ride -channels orthogonal channels with -radios radio
// interfaces per node (every scheduler packs slots across the channel set;
// distributed control stays on channel 0).
//
// A whole experiment can also be described as one JSON document (see
// scream.ScenarioSpec) and run with -scenario file.json — the same documents
// the screamd daemon accepts on /api/v1/run; flag and scenario runs with the
// same parameters produce identical results.
//
// Examples:
//
//	flowsim -rows 8 -cols 8 -step 36 -tx 4 -scheduler fdd -arrival poisson -load 0.8 -horizon 5
//	flowsim -scheduler greedy -load 0.5 -failrate 0.5 -downtime 0.5 -horizon 5
//	flowsim -scheduler pdd -mobility waypoint -speed 10 -horizon 5
//	flowsim -scheduler maxweight -arrival zipf -load 2 -horizon 5
//	flowsim -scheduler greedy -channels 4 -radios 2 -load 2.5 -horizon 5
//	flowsim -scenario testdata/scenario_grid.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"scream"
	"scream/internal/buildinfo"
)

// schedulerNames enumerates the public scheduler registry for the -scheduler
// usage string: a scheduler added to the registry shows up here (and is
// accepted) automatically.
func schedulerNames() string {
	var names []string
	for _, s := range scream.Schedulers() {
		names = append(names, s.Name)
	}
	return strings.Join(names, ", ")
}

// engineNames enumerates the interference-engine registry for the -engine
// usage string, the same way schedulerNames tracks the scheduler registry.
func engineNames() string {
	var names []string
	for _, e := range scream.Engines() {
		names = append(names, e.Name)
	}
	return strings.Join(names, ", ")
}

// dynFlags collects the topology-dynamics command line.
type dynFlags struct {
	failRate float64
	downtime float64
	failGW   bool
	mobility string
	speed    float64
	pause    float64
	moveInt  float64
}

func main() {
	var (
		rows      = flag.Int("rows", 8, "grid rows")
		cols      = flag.Int("cols", 8, "grid cols")
		step      = flag.Float64("step", 36, "grid step (m)")
		tx        = flag.Float64("tx", 4, "TX power in dBm (0 = derive from step)")
		schedName = flag.String("scheduler", "greedy", "epoch scheduler: "+schedulerNames())
		scenario  = flag.String("scenario", "", "run a JSON scenario file (scream.ScenarioSpec); topology, traffic, scheduler and dynamics flags are ignored")
		p         = flag.Float64("p", 0.8, "PDD activation probability")
		arrival   = flag.String("arrival", "poisson", "arrival process: cbr, poisson, bursty, zipf")
		load      = flag.Float64("load", 0.8, "offered load as a fraction of static capacity")
		horizon   = flag.Float64("horizon", 5, "simulated duration (s)")
		frames    = flag.Int("frames", 64, "data frames per control epoch (schedule reuse)")
		quota     = flag.Int("quota", 8, "per-link service quota per epoch (0 = unbounded)")
		maxQueue  = flag.Int("maxqueue", 0, "per-link queue cap in packets (0 = unbounded)")
		seed      = flag.Int64("seed", 1, "random seed")
		channels  = flag.Int("channels", 1, "orthogonal data channels (1 = classic single-channel)")
		radios    = flag.Int("radios", 1, "radio interfaces per node (max channels a node uses per slot)")
		engine    = flag.String("engine", "dense", "interference engine for centralized schedulers: "+engineNames())
		cutoff    = flag.Float64("cutoff", 0, "spatial engine exact-evaluation radius in meters (0 = derived)")
		bucket    = flag.Float64("bucket", 0, "spatial engine grid bucket edge in meters (0 = cutoff/2)")
		obsAddr   = flag.String("obs", "", "serve /metrics and /debug/pprof on this address (e.g. :9090); the process stays up after the run until interrupted")
		traceFile = flag.String("trace", "", "write a JSONL event trace (schema v2 spans; analyze with screamtrace) to this file")
		perf      = flag.Bool("perf", false, "sample wall-clock durations of the schedule-build and epoch hot paths into scream_perf_* histograms (adds wall_ns to trace spans; results stay deterministic, trace bytes do not)")
		version   = flag.Bool("version", false, "print version and exit")
		dyn       dynFlags
	)
	flag.Float64Var(&dyn.failRate, "failrate", 0, "node failures per node per second (0 = no churn)")
	flag.Float64Var(&dyn.downtime, "downtime", 0, "mean node repair time (s); 0 = failures are permanent")
	flag.BoolVar(&dyn.failGW, "failgw", false, "let gateways fail too")
	flag.StringVar(&dyn.mobility, "mobility", "none", "mobility model: none, waypoint, drift")
	flag.Float64Var(&dyn.speed, "speed", 5, "mobility speed (m/s)")
	flag.Float64Var(&dyn.pause, "pause", 0.2, "waypoint pause time (s)")
	flag.Float64Var(&dyn.moveInt, "moveint", 0.1, "mobility position sampling interval (s)")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	var err error
	if *scenario != "" {
		var spec scream.ScenarioSpec
		if spec, err = scream.LoadScenario(*scenario); err == nil {
			err = execute(spec, *obsAddr, *traceFile, *perf)
		}
	} else {
		// The interference block is only attached when it says something
		// non-default, so flag runs keep emitting the exact specs they
		// always did.
		var interf *scream.InterferenceSpec
		if *engine != scream.EngineDense || *cutoff != 0 || *bucket != 0 {
			interf = &scream.InterferenceSpec{Engine: *engine, CutoffM: *cutoff, BucketM: *bucket}
		}
		err = run(*rows, *cols, *step, *tx, *schedName, *p, *arrival, *load, *horizon, *frames, *quota, *maxQueue, *channels, *radios, *seed, *obsAddr, *traceFile, *perf, interf, dyn)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowsim:", err)
		os.Exit(1)
	}
}

// run assembles a ScenarioSpec from the command line — the flag surface is a
// flat view of the same document -scenario loads whole.
func run(rows, cols int, step, tx float64, schedName string, p float64, arrival string, load, horizon float64, frames, quota, maxQueue, channels, radios int, seed int64, obsAddr, traceFile string, perf bool, interf *scream.InterferenceSpec, dyn dynFlags) error {
	if channels < 1 {
		return fmt.Errorf("need at least 1 channel, got %d", channels)
	}
	if radios < 1 {
		return fmt.Errorf("need at least 1 radio per node, got %d", radios)
	}
	spec := scream.ScenarioSpec{
		Topology:       scream.TopologySpec{Kind: "grid", Rows: rows, Cols: cols, StepMeters: step, TxPowerDBm: tx},
		Traffic:        scream.TrafficSpec{Kind: arrival, Load: load},
		Scheduler:      schedName,
		P:              p,
		HorizonSec:     horizon,
		Seed:           seed,
		FramesPerEpoch: frames,
		MaxService:     quota,
		MaxQueue:       maxQueue,
		Channels:       channels,
		Interference:   interf,
	}
	if radios > 1 {
		spec.Topology.Radio = &scream.RadioSpec{NumRadios: radios}
	}
	if dyn.failRate != 0 || dyn.mobility != "none" {
		spec.Dynamics = &scream.DynamicsSpec{
			FailRate:        dyn.failRate,
			MeanDowntimeSec: dyn.downtime,
			FailGateways:    dyn.failGW,
			Mobility:        dyn.mobility,
			SpeedMps:        dyn.speed,
			PauseSec:        dyn.pause,
			MoveIntervalSec: dyn.moveInt,
		}
	}
	return execute(spec, obsAddr, traceFile, perf)
}

// execute runs one scenario and reports it — the shared tail of the flag and
// -scenario paths. The simulation itself is exactly scream.RunWith, the same
// entrypoint the screamd daemon serves.
func execute(spec scream.ScenarioSpec, obsAddr, traceFile string, perf bool) error {
	if err := spec.Validate(); err != nil {
		return err
	}

	// Observability opt-ins. Metrics must be wired before the mesh and
	// frame-time computation below: FlowFrameTime runs the greedy scheduler,
	// whose construction counters should land in the registry too.
	var reg *scream.ObsRegistry
	if obsAddr != "" {
		reg = scream.NewObsRegistry()
		scream.EnableRuntimeMetrics(reg)
		srv, addr, err := scream.ServeObs(obsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("obs: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	var tracer *scream.ObsTracer
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = scream.NewObsTracer(f)
		defer tracer.Flush()
	}

	mesh, err := spec.Mesh()
	if err != nil {
		return err
	}
	frame, err := mesh.FlowFrameTime(scream.DefaultTiming())
	if err != nil {
		return err
	}
	rate := spec.Traffic.RatePps
	if spec.Traffic.Load > 0 {
		rate = spec.Traffic.Load / frame.Seconds()
	}

	fmt.Printf("mesh: %d nodes, %d links, gateways %v\n", mesh.NumNodes(), len(mesh.Links), mesh.Gateways())
	fmt.Printf("      static capacity frame %.4fs -> per-node rate %.1f pkt/s at load %.2fx\n",
		frame.Seconds(), rate, spec.Traffic.Load)
	if spec.Channels > 1 {
		fmt.Printf("      channels: %d orthogonal (control on channel 0), %d radios per node\n",
			spec.Channels, mesh.NumRadios())
	}
	if spec.Interference != nil {
		fmt.Printf("      interference engine: %s\n", mesh.EngineName())
	}
	if d := spec.Dynamics; d != nil {
		mob := d.Mobility
		if mob == "" {
			mob = "none"
		}
		fmt.Printf("      dynamics: failrate %.3g/node/s, mean downtime %.3gs, mobility %s (%.3g m/s)\n",
			d.FailRate, d.MeanDowntimeSec, mob, d.SpeedMps)
	}
	fmt.Println()

	if perf && reg == nil {
		// -perf without -obs: the scream_perf_* histograms still need a
		// registry to land in (and the run keeps its wall_ns trace samples);
		// a private one avoids touching process-global state.
		reg = scream.NewObsRegistry()
	}
	res, err := scream.RunWith(context.Background(), spec, scream.RunOptions{
		Mesh:    mesh,
		Metrics: reg,
		Trace:   tracer,
		Perf:    perf,
	})
	if err != nil {
		return err
	}

	frames := spec.FramesPerEpoch
	if frames == 0 {
		frames = 1
	}
	fmt.Printf("scheduler %s over %.2fs simulated (%d epochs, %d frames/epoch):\n",
		spec.SchedulerName(), res.Elapsed.Seconds(), res.Epochs, frames)
	fmt.Printf("  offered    %7d pkts   delivered %7d (%.1f%%)   dropped %d\n",
		res.Offered, res.Delivered, pct(res.Delivered, res.Offered), res.Dropped)
	fmt.Printf("  goodput    %9.1f pkt/s   %.2f Mb/s\n", res.GoodputPps, res.GoodputBps/1e6)
	fmt.Printf("  delay      mean %.4fs   p50 %.4fs   p95 %.4fs\n",
		res.DelayMean.Seconds(), res.DelayP50.Seconds(), res.DelayP95.Seconds())
	fmt.Printf("  backlog    peak %d   final %d\n", res.PeakBacklog, res.FinalBacklog)
	fmt.Printf("  time       control %.1f%%   data %.1f%%   idle %.1f%%\n",
		100*res.ControlFraction,
		100*res.DataTime.Seconds()/res.Elapsed.Seconds(),
		100*res.IdleTime.Seconds()/res.Elapsed.Seconds())
	if res.FailEvents+res.RecoverEvents+res.MoveEvents > 0 {
		fmt.Printf("  dynamics   %d fail / %d recover / %d move events   %d repairs (%d rebuilds)   repair time %.4fs\n",
			res.FailEvents, res.RecoverEvents, res.MoveEvents, res.Repairs, res.Rebuilds, res.RepairTime.Seconds())
		fmt.Printf("  disruption %d pkts lost on dead nodes   peak backlog in outage %d\n",
			res.LostOnFailure, res.PeakBacklogDuringOutage)
		if res.PreEventGoodputPps > 0 {
			if res.Recovered {
				fmt.Printf("  recovery   %.4fs back to %.1f pkt/s (90%% of pre-event %.1f)\n",
					res.RecoveryTime.Seconds(), 0.9*res.PreEventGoodputPps, res.PreEventGoodputPps)
			} else {
				fmt.Printf("  recovery   never reached 90%% of pre-event %.1f pkt/s\n", res.PreEventGoodputPps)
			}
		}
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("trace: %d events -> %s\n", tracer.Events(), traceFile)
	}
	if obsAddr != "" {
		// Keep the exposition surface up for post-run scraping and
		// profiling; Ctrl-C (or SIGTERM) exits.
		fmt.Println("obs: run complete; serving until interrupted (Ctrl-C to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
