// Command flowsim runs the flow-level dynamic traffic simulator on one mesh:
// packets arrive continuously at every router, queue on the routing forest's
// links, and are drained by epoch-based schedules from the selected
// scheduler. It reports delivered goodput, end-to-end delay percentiles,
// backlog and control-overhead fraction.
//
// The offered load is expressed relative to the mesh's static capacity (the
// greedy frame serving one packet per router): -load 0.8 offers 0.8x that.
//
// Topology dynamics run underneath when requested: -failrate drives node
// churn (with -downtime repairs and optionally -failgw gateway outages) and
// -mobility moves the routers (waypoint or drift at -speed). Adaptive
// schedulers (greedy, maxweight, fanzhang, fdd, pdd) re-plan on the
// incrementally repaired routing forest at epoch boundaries; tdma keeps its
// static frame.
//
// The queue-aware maxweight scheduler re-ranks links by backlog x rate each
// epoch (try it with -arrival zipf, the skewed-backlog regime it exists
// for); fanzhang is the length-class approximation scheduler. Both are
// single-channel only.
//
// Multi-channel meshes ride -channels orthogonal channels with -radios radio
// interfaces per node (every scheduler packs slots across the channel set;
// distributed control stays on channel 0).
//
// Examples:
//
//	flowsim -rows 8 -cols 8 -step 36 -tx 4 -scheduler fdd -arrival poisson -load 0.8 -horizon 5
//	flowsim -scheduler greedy -load 0.5 -failrate 0.5 -downtime 0.5 -horizon 5
//	flowsim -scheduler pdd -mobility waypoint -speed 10 -horizon 5
//	flowsim -scheduler maxweight -arrival zipf -load 2 -horizon 5
//	flowsim -scheduler greedy -channels 4 -radios 2 -load 2.5 -horizon 5
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"scream"
	"scream/internal/buildinfo"
)

// dynFlags collects the topology-dynamics command line.
type dynFlags struct {
	failRate float64
	downtime float64
	failGW   bool
	mobility string
	speed    float64
	pause    float64
	moveInt  float64
}

func main() {
	var (
		rows      = flag.Int("rows", 8, "grid rows")
		cols      = flag.Int("cols", 8, "grid cols")
		step      = flag.Float64("step", 36, "grid step (m)")
		tx        = flag.Float64("tx", 4, "TX power in dBm (0 = derive from step)")
		schedName = flag.String("scheduler", "greedy", "epoch scheduler: greedy, maxweight, fanzhang, fdd, pdd, tdma")
		p         = flag.Float64("p", 0.8, "PDD activation probability")
		arrival   = flag.String("arrival", "poisson", "arrival process: cbr, poisson, bursty, zipf")
		load      = flag.Float64("load", 0.8, "offered load as a fraction of static capacity")
		horizon   = flag.Float64("horizon", 5, "simulated duration (s)")
		frames    = flag.Int("frames", 64, "data frames per control epoch (schedule reuse)")
		quota     = flag.Int("quota", 8, "per-link service quota per epoch (0 = unbounded)")
		maxQueue  = flag.Int("maxqueue", 0, "per-link queue cap in packets (0 = unbounded)")
		seed      = flag.Int64("seed", 1, "random seed")
		channels  = flag.Int("channels", 1, "orthogonal data channels (1 = classic single-channel)")
		radios    = flag.Int("radios", 1, "radio interfaces per node (max channels a node uses per slot)")
		obsAddr   = flag.String("obs", "", "serve /metrics and /debug/pprof on this address (e.g. :9090); the process stays up after the run until interrupted")
		traceFile = flag.String("trace", "", "write a JSONL event trace (schema v1) to this file")
		version   = flag.Bool("version", false, "print version and exit")
		dyn       dynFlags
	)
	flag.Float64Var(&dyn.failRate, "failrate", 0, "node failures per node per second (0 = no churn)")
	flag.Float64Var(&dyn.downtime, "downtime", 0, "mean node repair time (s); 0 = failures are permanent")
	flag.BoolVar(&dyn.failGW, "failgw", false, "let gateways fail too")
	flag.StringVar(&dyn.mobility, "mobility", "none", "mobility model: none, waypoint, drift")
	flag.Float64Var(&dyn.speed, "speed", 5, "mobility speed (m/s)")
	flag.Float64Var(&dyn.pause, "pause", 0.2, "waypoint pause time (s)")
	flag.Float64Var(&dyn.moveInt, "moveint", 0.1, "mobility position sampling interval (s)")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	if err := run(*rows, *cols, *step, *tx, *schedName, *p, *arrival, *load, *horizon, *frames, *quota, *maxQueue, *channels, *radios, *seed, *obsAddr, *traceFile, dyn); err != nil {
		fmt.Fprintln(os.Stderr, "flowsim:", err)
		os.Exit(1)
	}
}

func run(rows, cols int, step, tx float64, schedName string, p float64, arrival string, load, horizon float64, frames, quota, maxQueue, channels, radios int, seed int64, obsAddr, traceFile string, dyn dynFlags) error {
	if channels < 1 {
		return fmt.Errorf("need at least 1 channel, got %d", channels)
	}
	if radios < 1 {
		return fmt.Errorf("need at least 1 radio per node, got %d", radios)
	}

	// Observability opt-ins. Metrics must be wired before the mesh and
	// frame-time computation below: FlowFrameTime runs the greedy scheduler,
	// whose construction counters should land in the registry too.
	var reg *scream.ObsRegistry
	if obsAddr != "" {
		reg = scream.NewObsRegistry()
		scream.EnableRuntimeMetrics(reg)
		srv, addr, err := scream.ServeObs(obsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("obs: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	var tracer *scream.ObsTracer
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = scream.NewObsTracer(f)
		defer tracer.Flush()
	}
	radio := scream.DefaultRadioParams()
	radio.NumRadios = radios
	mesh, err := scream.NewGridMesh(scream.GridMeshConfig{
		Rows: rows, Cols: cols, StepMeters: step, TxPowerDBm: tx, Seed: seed,
		Radio: radio,
	})
	if err != nil {
		return err
	}

	var scheduler scream.FlowScheduler
	switch schedName {
	case "greedy":
		scheduler = scream.FlowGreedy
	case "maxweight":
		scheduler = scream.FlowMaxWeight
	case "fanzhang":
		scheduler = scream.FlowFanZhang
	case "fdd":
		scheduler = scream.FlowFDD
	case "pdd":
		scheduler = scream.FlowPDD
	case "tdma":
		scheduler = scream.FlowTDMA
	default:
		return fmt.Errorf("unknown scheduler %q", schedName)
	}

	tm := scream.DefaultTiming()
	frame, err := mesh.FlowFrameTime(tm)
	if err != nil {
		return err
	}
	rate := load / frame.Seconds()

	n := mesh.NumNodes()
	isGW := make(map[int]bool)
	for _, g := range mesh.Gateways() {
		isGW[g] = true
	}
	hotspot := make([]float64, n)
	for i := range hotspot {
		hotspot[i] = 1
	}
	if arrival == "zipf" {
		// Draw multipliers for the source nodes only: normalizing over all
		// n and then skipping gateways would silently shed whatever Zipf
		// mass landed on them, offering less than -load promises.
		sources := n - len(mesh.Gateways())
		rates, err := scream.HotspotRates(sources, 1.5, 1, 32, seed)
		if err != nil {
			return err
		}
		next := 0
		for u := 0; u < n; u++ {
			if isGW[u] {
				hotspot[u] = 0
				continue
			}
			hotspot[u] = rates[next]
			next++
		}
	}
	arrivals := make([]scream.Arrival, n)
	for u := 0; u < n; u++ {
		if isGW[u] {
			continue
		}
		r := rate * hotspot[u]
		if r <= 0 {
			continue
		}
		var a scream.Arrival
		switch arrival {
		case "cbr":
			a, err = scream.NewCBR(r)
		case "poisson", "zipf":
			a, err = scream.NewPoisson(r)
		case "bursty":
			// 4x peak rate during ON, 1:3 duty cycle: same mean rate.
			a, err = scream.NewBursty(4*r, 50*scream.Millisecond, 150*scream.Millisecond)
		default:
			return fmt.Errorf("unknown arrival process %q", arrival)
		}
		if err != nil {
			return err
		}
		arrivals[u] = a
	}

	var dynOpts *scream.DynamicsOptions
	if dyn.failRate != 0 || dyn.mobility != "none" {
		dynOpts = &scream.DynamicsOptions{
			FailRate:     dyn.failRate,
			MeanDowntime: scream.SimTime(dyn.downtime * float64(scream.Second)),
			FailGateways: dyn.failGW,
			SpeedMps:     dyn.speed,
			Pause:        scream.SimTime(dyn.pause * float64(scream.Second)),
			MoveInterval: scream.SimTime(dyn.moveInt * float64(scream.Second)),
		}
		switch dyn.mobility {
		case "none":
		case "waypoint":
			dynOpts.Mobility = scream.MobilityWaypoint
		case "drift":
			dynOpts.Mobility = scream.MobilityDrift
		default:
			return fmt.Errorf("unknown mobility model %q", dyn.mobility)
		}
	}

	fmt.Printf("mesh: %d nodes, %d links, gateways %v\n", n, len(mesh.Links), mesh.Gateways())
	fmt.Printf("      static capacity frame %.4fs -> per-node rate %.1f pkt/s at load %.2fx\n",
		frame.Seconds(), rate, load)
	if channels > 1 {
		fmt.Printf("      channels: %d orthogonal (control on channel 0), %d radios per node\n", channels, radios)
	}
	if dynOpts != nil {
		fmt.Printf("      dynamics: failrate %.3g/node/s, mean downtime %.3gs, mobility %s (%.3g m/s)\n",
			dyn.failRate, dyn.downtime, dyn.mobility, dyn.speed)
	}
	fmt.Println()

	res, err := scream.RunFlow(mesh, scream.FlowOptions{
		Scheduler:      scheduler,
		P:              p,
		Arrivals:       arrivals,
		Horizon:        scream.SimTime(horizon * float64(scream.Second)),
		Seed:           seed,
		MaxQueue:       maxQueue,
		MaxService:     quota,
		FramesPerEpoch: frames,
		Dynamics:       dynOpts,
		Channels:       channels,
		Metrics:        reg,
		Trace:          tracer,
	})
	if err != nil {
		return err
	}

	fmt.Printf("scheduler %s over %.2fs simulated (%d epochs, %d frames/epoch):\n",
		schedName, res.Elapsed.Seconds(), res.Epochs, frames)
	fmt.Printf("  offered    %7d pkts   delivered %7d (%.1f%%)   dropped %d\n",
		res.Offered, res.Delivered, pct(res.Delivered, res.Offered), res.Dropped)
	fmt.Printf("  goodput    %9.1f pkt/s   %.2f Mb/s\n", res.GoodputPps, res.GoodputBps/1e6)
	fmt.Printf("  delay      mean %.4fs   p50 %.4fs   p95 %.4fs\n",
		res.DelayMean.Seconds(), res.DelayP50.Seconds(), res.DelayP95.Seconds())
	fmt.Printf("  backlog    peak %d   final %d\n", res.PeakBacklog, res.FinalBacklog)
	fmt.Printf("  time       control %.1f%%   data %.1f%%   idle %.1f%%\n",
		100*res.ControlFraction,
		100*res.DataTime.Seconds()/res.Elapsed.Seconds(),
		100*res.IdleTime.Seconds()/res.Elapsed.Seconds())
	if res.FailEvents+res.RecoverEvents+res.MoveEvents > 0 {
		fmt.Printf("  dynamics   %d fail / %d recover / %d move events   %d repairs (%d rebuilds)   repair time %.4fs\n",
			res.FailEvents, res.RecoverEvents, res.MoveEvents, res.Repairs, res.Rebuilds, res.RepairTime.Seconds())
		fmt.Printf("  disruption %d pkts lost on dead nodes   peak backlog in outage %d\n",
			res.LostOnFailure, res.PeakBacklogDuringOutage)
		if res.PreEventGoodputPps > 0 {
			if res.Recovered {
				fmt.Printf("  recovery   %.4fs back to %.1f pkt/s (90%% of pre-event %.1f)\n",
					res.RecoveryTime.Seconds(), 0.9*res.PreEventGoodputPps, res.PreEventGoodputPps)
			} else {
				fmt.Printf("  recovery   never reached 90%% of pre-event %.1f pkt/s\n", res.PreEventGoodputPps)
			}
		}
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("trace: %d events -> %s\n", tracer.Events(), traceFile)
	}
	if obsAddr != "" {
		// Keep the exposition surface up for post-run scraping and
		// profiling; Ctrl-C (or SIGTERM) exits.
		fmt.Println("obs: run complete; serving until interrupted (Ctrl-C to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
