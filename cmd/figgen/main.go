// Command figgen regenerates the data series behind every figure of the
// SCREAM paper's evaluation (Figures 4-9) and the design ablations.
//
// Usage:
//
//	figgen [-fig all|4|5|6|7|8|9|flow|churn|channels|sched|ablations|scale] [-quick] [-seeds n] [-workers n] [-ascii]
//
// -fig also accepts a comma-separated list (e.g. -fig 6,7,8). The "scale"
// figure (the interference-engine scalability sweep) carries wall-clock
// timing columns and is therefore not included in "all".
//
// Output is one TSV table per figure on stdout (optionally followed by an
// ASCII rendering of the curves).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scream"
	"scream/internal/buildinfo"
)

type runner struct {
	name string
	run  func(scream.ExperimentOptions) (*scream.Figure, error)
}

func main() {
	var (
		fig     = flag.String("fig", "all", "which figures to regenerate: all, 4, 5, 6, 7, 8, 9, flow, churn, channels, sched, ablations, scale, or a comma-separated list (scale is the engine-scalability sweep and is not part of all)")
		quick   = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		seeds   = flag.Int("seeds", 0, "independent runs per point (0 = default)")
		workers = flag.Int("workers", 0, "concurrent experiment workers (0 = GOMAXPROCS); output is identical for any value")
		ascii   = flag.Bool("ascii", true, "also render ASCII charts")
		obsAddr = flag.String("obs", "", "serve /metrics and /debug/pprof on this address while generating (e.g. :9090)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	if *obsAddr != "" {
		// Metrics are write-only and the TSV pipeline never reads them, so
		// the figures stay byte-identical with the registry wired in; the
		// exposition surface exists to watch long generations progress and
		// to profile them.
		reg := scream.NewObsRegistry()
		scream.EnableRuntimeMetrics(reg)
		srv, addr, err := scream.ServeObs(*obsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figgen:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	if err := run(*fig, *quick, *seeds, *workers, *ascii); err != nil {
		fmt.Fprintln(os.Stderr, "figgen:", err)
		os.Exit(1)
	}
}

func run(which string, quick bool, seeds, workers int, ascii bool) error {
	opts := scream.ExperimentOptions{Quick: quick, Seeds: seeds, Workers: workers}
	figures := map[string][]runner{
		"4":        {{"Fig4", scream.Fig4}},
		"5":        {{"Fig5", scream.Fig5}},
		"6":        {{"Fig6", scream.Fig6}},
		"7":        {{"Fig7", scream.Fig7}},
		"8":        {{"Fig8", scream.Fig8}},
		"9":        {{"Fig9", scream.Fig9}},
		"flow":     {{"FigFlowLoad", scream.FigFlowLoad}},
		"churn":    {{"FigChurn", scream.FigChurn}},
		"channels": {{"FigChannels", scream.FigChannels}},
		"sched":    {{"FigSched", scream.FigSched}},
		// "scale" is not part of "all": its timing columns are wall-clock
		// measurements, so including it would break the byte-identical
		// output discipline the other figures keep.
		"scale": {{"FigScale", scream.FigScale}},
		"ablations": {
			{"AblationPDDProbability", scream.AblationPDDProbability},
			{"AblationGreedyOrdering", scream.AblationGreedyOrdering},
			{"AblationScreamK", scream.AblationScreamK},
			{"AblationAckModel", scream.AblationAckModel},
			{"AblationFDDSeal", scream.AblationFDDSeal},
			{"AblationBalancedRouting", scream.AblationBalancedRouting},
			{"AblationMoteRelays", scream.AblationMoteRelays},
			{"AblationShadowing", scream.AblationShadowing},
		},
	}
	var selected []runner
	for _, key := range strings.Split(which, ",") {
		key = strings.TrimSpace(key)
		if key == "all" {
			// Newer figures deliberately come last so the output of every
			// older figure stays a byte-identical prefix of earlier builds'.
			for _, k := range []string{"4", "5", "6", "7", "8", "9", "flow", "churn", "ablations", "channels", "sched"} {
				selected = append(selected, figures[k]...)
			}
		} else if rs, ok := figures[key]; ok {
			selected = append(selected, rs...)
		} else {
			return fmt.Errorf("unknown -fig %q", key)
		}
	}

	for _, r := range selected {
		start := time.Now()
		f, err := r.run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Printf("## %s (generated in %v)\n", r.name, time.Since(start).Round(time.Millisecond))
		if err := f.WriteTSV(os.Stdout); err != nil {
			return err
		}
		if ascii {
			if err := f.RenderASCII(os.Stdout, 72, 16); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	return nil
}
