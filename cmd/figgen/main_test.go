package main

import "testing"

func TestRunSingleFigure(t *testing.T) {
	if err := run("5", true, 1, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithASCII(t *testing.T) {
	if err := run("6", true, 1, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelWorkers(t *testing.T) {
	if err := run("4", true, 1, 4, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("42", true, 1, 0, false); err == nil {
		t.Error("unknown figure should fail")
	}
}
