// Command screamd is the long-running mesh-controller daemon: an HTTP/JSON
// service that runs flow-level mesh simulations on demand and streams their
// progress. Clients POST a scenario document (see scream.ScenarioSpec) to
// /api/v1/run and receive per-epoch events as NDJSON (or server-sent events
// with Accept: text/event-stream), terminated by the full result. Preloaded
// scenarios (-scenarios) build their deployment once at startup; each run
// then gets a private clone, so concurrent sessions are fully isolated.
//
// Endpoints:
//
//	GET  /healthz                     liveness probe
//	GET  /version                     build version
//	GET  /metrics                     Prometheus text exposition (scream_serve_*,
//	                                  scream_flow_*, scream_core_*, ...)
//	GET  /api/v1/metrics              the same registry as a JSON snapshot
//	GET  /api/v1/schedulers           the scheduler registry
//	GET  /api/v1/scenarios            preloaded scenario specs
//	GET  /api/v1/sessions             currently running sessions
//	GET  /api/v1/sessions/{id}/trace  the session's captured schema-v2 trace
//	                                  (JSONL; pipe into screamtrace)
//	POST /api/v1/run                  run a scenario, streaming epochs
//
// Every session's event trace is captured in a bounded in-memory ring
// (-trace-bytes per session, default 1 MiB, -1 to disable) and stays
// fetchable for a while after the run ends:
//
//	curl -s localhost:8080/api/v1/sessions/3/trace | screamtrace validate
//
// Concurrency is admission-controlled: at most -max-sessions simulations run
// at once, and further requests are refused with 429. SIGINT/SIGTERM drains
// gracefully — the listener closes, running sessions finish within
// -drain-timeout, and only then are stragglers canceled.
//
// Examples:
//
//	screamd -addr :8080 -max-sessions 8
//	screamd -scenarios testdata/scenario_grid.json
//	curl -N -X POST --data-binary @spec.json localhost:8080/api/v1/run
//	curl -N -X POST 'localhost:8080/api/v1/run?scenario=grid-4x4-poisson'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scream"
	"scream/internal/buildinfo"
	"scream/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxSessions = flag.Int("max-sessions", serve.DefaultMaxSessions, "concurrent simulation sessions (further runs get 429)")
		scenarios   = flag.String("scenarios", "", "comma-separated scenario JSON files to preload (each run then clones the prebuilt mesh)")
		traceBytes  = flag.Int("trace-bytes", 0, "per-session trace capture budget in bytes for /api/v1/sessions/{id}/trace (0 = 1 MiB default, -1 disables capture)")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget before running sessions are canceled")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	if err := run(*addr, *maxSessions, *scenarios, *traceBytes, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "screamd:", err)
		os.Exit(1)
	}
}

func run(addr string, maxSessions int, scenarioFiles string, traceBytes int, drain time.Duration) error {
	// One registry for everything: the daemon's serve_* session metrics,
	// per-run flow counters, and the process-global phys/sched
	// instrumentation points.
	reg := scream.NewObsRegistry()
	scream.EnableRuntimeMetrics(reg)

	var specs []scream.ScenarioSpec
	if scenarioFiles != "" {
		for _, path := range strings.Split(scenarioFiles, ",") {
			spec, err := scream.LoadScenario(strings.TrimSpace(path))
			if err != nil {
				return err
			}
			if spec.Name == "" {
				return fmt.Errorf("scenario %s needs a name to be preloaded", path)
			}
			specs = append(specs, spec)
		}
	}

	srv, err := serve.New(serve.Config{
		Scenarios:   specs,
		MaxSessions: maxSessions,
		Metrics:     reg,
		TraceBytes:  traceBytes,
		Version:     buildinfo.Version(),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("screamd: listening on http://%s (max %d sessions)\n", ln.Addr(), maxSessions)
	for _, s := range specs {
		fmt.Printf("screamd: preloaded scenario %q (%s, %s)\n", s.Name, s.Topology.Kind, s.SchedulerName())
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("screamd: %v: draining (budget %v)\n", s, drain)
	}

	// Graceful half: stop accepting, let streaming sessions run to their
	// horizon within the budget.
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err == nil {
		fmt.Println("screamd: drained cleanly")
		return nil
	}

	// Forced half: the budget is spent — cancel every session's context
	// (their streams end with an error event) and give the handlers a
	// moment to unwind before closing the remaining connections.
	fmt.Println("screamd: drain budget exceeded; canceling sessions")
	srv.CancelSessions()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(ctx2); err != nil {
		return httpSrv.Close()
	}
	return nil
}
