// Command benchguard turns `go test -bench` output into a committed JSON
// baseline and guards CI against performance regressions.
//
// It reads benchmark output on stdin (or -in), extracts ns/op per benchmark,
// and writes them as JSON (-out). With -baseline it compares the fresh
// numbers against the committed file, prints a Markdown delta table (also
// appended to -summary, e.g. $GITHUB_STEP_SUMMARY), and exits non-zero when
// any baseline benchmark regressed by more than -max-regress or disappeared.
//
// Typical CI usage (the sweep is run a few times; benchguard keeps each
// benchmark's minimum, which tames single-iteration noise):
//
//	for i in 1 2 3; do \
//	    go test -run '^$' -bench 'GreedyPhysical|FDDRun|PDDRun|FlowEpoch|SlotState' \
//	        -benchtime 1x ./...; done | \
//	    go run ./scripts/benchguard -out BENCH_PR.json \
//	    -baseline BENCH_BASELINE.json -max-regress 0.30 -summary "$GITHUB_STEP_SUMMARY"
//
// Refreshing the committed baseline is the same command with
// -out BENCH_BASELINE.json and no -baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches e.g. "BenchmarkGreedyPhysical64-8   123   456789 ns/op ..."
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		// The input may hold several repetitions of the suite (CI runs the
		// -benchtime 1x sweep a few times to tame single-iteration noise);
		// keep the minimum, the least-disturbed measurement.
		if cur, ok := out[m[1]]; !ok || ns < cur {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func readJSON(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func writeJSON(path string, results map[string]float64) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare renders the delta table and returns the names of benchmarks that
// regressed beyond maxRegress (or vanished from the fresh results).
func compare(baseline, fresh map[string]float64, maxRegress float64) (table string, failures []string) {
	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark | baseline ns/op | current ns/op | delta |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|\n")
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := fresh[name]
		if !ok {
			fmt.Fprintf(&b, "| %s | %.0f | MISSING | — |\n", name, base)
			failures = append(failures, name+" (missing from results)")
			continue
		}
		delta := (cur - base) / base
		marker := ""
		if delta > maxRegress {
			marker = " ❌"
			failures = append(failures, fmt.Sprintf("%s (+%.1f%% > +%.0f%% allowed)", name, delta*100, maxRegress*100))
		}
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %+.1f%%%s |\n", name, base, cur, delta*100, marker)
	}
	var extras []string
	for name := range fresh {
		if _, ok := baseline[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		fmt.Fprintf(&b, "| %s | — | %.0f | new |\n", name, fresh[name])
	}
	return b.String(), failures
}

func run() error {
	var (
		in         = flag.String("in", "", "read benchmark output from this file instead of stdin")
		out        = flag.String("out", "", "write parsed results as JSON to this file")
		baseline   = flag.String("baseline", "", "compare against this committed JSON baseline")
		maxRegress = flag.Float64("max-regress", 0.30, "maximum allowed fractional ns/op regression per benchmark")
		summary    = flag.String("summary", "", "append the Markdown delta table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	fresh, err := parseBench(src)
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	if *out != "" {
		if err := writeJSON(*out, fresh); err != nil {
			return err
		}
		fmt.Printf("wrote %d benchmark results to %s\n", len(fresh), *out)
	}
	if *baseline == "" {
		return nil
	}
	base, err := readJSON(*baseline)
	if err != nil {
		return err
	}
	table, failures := compare(base, fresh, *maxRegress)
	fmt.Print(table)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(f, "## Benchmark regression check\n\n%s\n", table); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression: %s", strings.Join(failures, "; "))
	}
	fmt.Printf("all %d tracked benchmarks within +%.0f%% of baseline\n", len(base), *maxRegress*100)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}
