package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: scream
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFlowEpoch        	    3330	    659820 ns/op	       731.0 delivered_pkts
BenchmarkGreedyPhysical64 	    4713	    519689 ns/op
BenchmarkSlotStateVsNaive/grid64/incremental         	 2916570	       435.6 ns/op
PASS
`

func TestParseBenchKeepsMinimumAcrossRepeats(t *testing.T) {
	repeated := "BenchmarkX \t 1 \t 500 ns/op\nBenchmarkX \t 1 \t 300 ns/op\nBenchmarkX \t 1 \t 400 ns/op\n"
	got, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"] != 300 {
		t.Fatalf("BenchmarkX = %v, want the minimum 300", got["BenchmarkX"])
	}
}

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFlowEpoch":                           659820,
		"BenchmarkGreedyPhysical64":                    519689,
		"BenchmarkSlotStateVsNaive/grid64/incremental": 435.6,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 1000}
	// B injected with a 50% slowdown: must fail a 30% gate.
	fresh := map[string]float64{"BenchmarkA": 110, "BenchmarkB": 1500}
	table, failures := compare(base, fresh, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkB") {
		t.Fatalf("want exactly BenchmarkB to fail, got %v", failures)
	}
	if !strings.Contains(table, "BenchmarkA") || !strings.Contains(table, "+10.0%") {
		t.Errorf("table should show the passing delta:\n%s", table)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100}
	fresh := map[string]float64{"BenchmarkA": 129, "BenchmarkNew": 5}
	table, failures := compare(base, fresh, 0.30)
	if len(failures) != 0 {
		t.Fatalf("29%% within a 30%% gate must pass, got %v", failures)
	}
	if !strings.Contains(table, "BenchmarkNew") || !strings.Contains(table, "new") {
		t.Errorf("untracked benchmarks should be listed as new:\n%s", table)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := map[string]float64{"BenchmarkGone": 100}
	_, failures := compare(base, map[string]float64{"BenchmarkOther": 50}, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("a vanished tracked benchmark must fail, got %v", failures)
	}
}
