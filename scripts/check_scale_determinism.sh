#!/bin/sh
# check_scale_determinism.sh — assert the deterministic column prefix of
# figgen -fig scale is byte-identical across two runs. The scale figure
# deliberately mixes deterministic series (spatial slots, spatial index MB,
# dense matrix MB — the first three) with wall-clock series (build ms,
# ns/admission, B/admission), so unlike check_determinism.sh this compares
# only the stable prefix: the x column plus the first three series' (y, ci)
# column pairs — TSV fields 1-7.
#
# Usage: scripts/check_scale_determinism.sh [-quick]
#
# FIGGEN overrides the figgen invocation (default: go run ./cmd/figgen),
# letting CI reuse a prebuilt binary instead of a cold compile.
set -eu

: "${FIGGEN:=go run ./cmd/figgen}"

# The deterministic prefix: x + 3 series x (value, ci95) columns.
FIELDS=1-7

raw=$(mktemp) || exit 1
r1=$(mktemp) || exit 1
r2=$(mktemp) || exit 1
trap 'rm -f "$raw" "$r1" "$r2"' EXIT

# Capture before stripping so a figgen failure fails the script; drop the
# wall-clock annotation line-by-line, then cut each TSV row to the
# deterministic field prefix (comment/header lines pass through cut intact
# enough to compare — they carry no timing).
$FIGGEN -fig scale "$@" -ascii=false > "$raw"
sed 's/generated in [^)]*/generated in X/' "$raw" | cut -f "$FIELDS" > "$r1"
$FIGGEN -fig scale "$@" -ascii=false > "$raw"
sed 's/generated in [^)]*/generated in X/' "$raw" | cut -f "$FIELDS" > "$r2"

if ! diff -u "$r1" "$r2"; then
    echo "scale determinism check FAILED: deterministic columns (fields $FIELDS) diverged across runs" >&2
    exit 1
fi
echo "scale determinism OK (fields $FIELDS identical across two runs)"
