#!/bin/sh
# check_determinism.sh — assert figgen output is byte-identical for any
# worker count. Runs the requested figures with -workers 1 and -workers 8,
# strips only the wall-clock annotation, and diffs the two outputs.
#
# Usage: scripts/check_determinism.sh [figgen args...]
#   e.g. scripts/check_determinism.sh -fig all -quick
#        scripts/check_determinism.sh -fig flow
#        scripts/check_determinism.sh -fig churn   (topology dynamics)
#
# FIGGEN overrides the figgen invocation (default: go run ./cmd/figgen),
# letting CI reuse a prebuilt binary instead of a cold compile.
set -eu

: "${FIGGEN:=go run ./cmd/figgen}"

raw=$(mktemp) || exit 1
w1=$(mktemp) || exit 1
w8=$(mktemp) || exit 1
trap 'rm -f "$raw" "$w1" "$w8"' EXIT

# Capture figgen output before stripping the timestamp so a figgen failure
# fails the script (a pipeline would report only sed's exit status).
$FIGGEN "$@" -ascii=false -workers 1 > "$raw"
sed 's/generated in [^)]*/generated in X/' "$raw" > "$w1"
$FIGGEN "$@" -ascii=false -workers 8 > "$raw"
sed 's/generated in [^)]*/generated in X/' "$raw" > "$w8"

if ! diff "$w1" "$w8"; then
    echo "determinism check FAILED for: figgen $*" >&2
    exit 1
fi
echo "determinism OK for: figgen $*"
