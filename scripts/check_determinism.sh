#!/bin/sh
# check_determinism.sh — assert figgen output is byte-identical for any
# worker count. Runs the requested figures with -workers 1 and -workers 8,
# strips only the wall-clock annotation, splits the outputs into per-figure
# sections ("## Name" headers) and diffs each figure separately, so a failure
# names exactly which figures diverged instead of dumping the first raw diff.
#
# Usage: scripts/check_determinism.sh [figgen args...]
#   e.g. scripts/check_determinism.sh -fig all -quick
#        scripts/check_determinism.sh -fig flow
#        scripts/check_determinism.sh -fig churn      (topology dynamics)
#        scripts/check_determinism.sh -fig channels   (multi-channel)
#        scripts/check_determinism.sh -fig sched      (scheduler family)
#
# FIGGEN overrides the figgen invocation (default: go run ./cmd/figgen),
# letting CI reuse a prebuilt binary instead of a cold compile. KEEP_DIR,
# when set, receives one <Figure>.tsv per figure (the stripped -workers 1
# output) so CI can upload the generated series as build artifacts.
set -eu

: "${FIGGEN:=go run ./cmd/figgen}"

raw=$(mktemp) || exit 1
w1=$(mktemp) || exit 1
w8=$(mktemp) || exit 1
d1=$(mktemp -d) || exit 1
d8=$(mktemp -d) || exit 1
trap 'rm -rf "$raw" "$w1" "$w8" "$d1" "$d8"' EXIT

# Capture figgen output before stripping the timestamp so a figgen failure
# fails the script (a pipeline would report only sed's exit status).
$FIGGEN "$@" -ascii=false -workers 1 > "$raw"
sed 's/generated in [^)]*/generated in X/' "$raw" > "$w1"
$FIGGEN "$@" -ascii=false -workers 8 > "$raw"
sed 's/generated in [^)]*/generated in X/' "$raw" > "$w8"

# split_figures FILE DIR writes each "## Name ..." section of FILE to
# DIR/Name (figure names are shell-safe identifiers; sanitize regardless).
split_figures() {
    awk -v dir="$2" '
        /^## / { name = $2; gsub(/[^A-Za-z0-9_.-]/, "_", name); out = dir "/" name }
        out != "" { print > out }
    ' "$1"
}
split_figures "$w1" "$d1"
split_figures "$w8" "$d8"

if [ -n "${KEEP_DIR:-}" ]; then
    mkdir -p "$KEEP_DIR"
    for f in "$d1"/*; do
        [ -f "$f" ] && cp "$f" "$KEEP_DIR/$(basename "$f").tsv"
    done
fi

failed=""
for name in $( (ls "$d1"; ls "$d8") | sort -u ); do
    if ! diff -u "$d1/$name" "$d8/$name" >/dev/null 2>&1; then
        failed="$failed $name"
        echo "determinism DIFF in $name (-workers 1 vs -workers 8):" >&2
        diff -u "$d1/$name" "$d8/$name" 2>&1 | head -40 >&2 || true
    fi
done

if [ -n "$failed" ]; then
    echo "determinism check FAILED for: figgen $*" >&2
    echo "figures that diverged across worker counts:$failed" >&2
    exit 1
fi
echo "determinism OK for: figgen $*"
