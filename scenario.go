package scream

// The serializable scenario API: one JSON document describing a complete
// flow-level experiment — topology, radio environment, traffic, scheduler,
// dynamics — and one entrypoint, Run, that executes it. The screamd daemon,
// the flowsim CLI and library callers all consume the same ScenarioSpec, so
// a scenario POSTed to the daemon is bit-for-bit the run a local caller gets
// from Run with the same spec. Unknown JSON fields are rejected (strict
// decoding): a typoed knob fails loudly instead of silently running the
// default.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// TopologySpec describes the mesh deployment of a scenario.
type TopologySpec struct {
	// Kind selects the deployment generator: "grid" (planned, Rows x Cols at
	// StepMeters spacing), "uniform" (Nodes drawn uniformly in a SideMeters
	// square, redrawn until connected) or "line" (Nodes in a row at
	// StepMeters spacing).
	Kind string `json:"kind"`

	// Grid and line knobs.
	Rows       int     `json:"rows,omitempty"`
	Cols       int     `json:"cols,omitempty"`
	StepMeters float64 `json:"step_m,omitempty"`
	// TxPowerDBm is the common transmit power of a grid (0 derives it from
	// the grid step).
	TxPowerDBm float64 `json:"tx_dbm,omitempty"`
	// RangeSlack is the line deployment's communication range in grid steps
	// (0 = the 1.05 default).
	RangeSlack float64 `json:"range_slack,omitempty"`

	// Uniform and line knobs.
	Nodes      int     `json:"nodes,omitempty"`
	SideMeters float64 `json:"side_m,omitempty"`
	// MinTxDBm/MaxTxDBm bound the uniform deployment's heterogeneous
	// per-node transmit power.
	MinTxDBm float64 `json:"min_tx_dbm,omitempty"`
	MaxTxDBm float64 `json:"max_tx_dbm,omitempty"`

	// Gateways lists gateway node IDs; empty places the defaults (four
	// quadrant gateways; node 0 for a line).
	Gateways []int `json:"gateways,omitempty"`
	// DemandLo/DemandHi bound the per-node static demand draw (defaults 1
	// and 10); the flow simulator uses them only through routing.
	DemandLo int `json:"demand_lo,omitempty"`
	DemandHi int `json:"demand_hi,omitempty"`
	// BalancedRouting uses load-aware parent tie-breaking when building the
	// routing forest.
	BalancedRouting bool `json:"balanced_routing,omitempty"`
	// Radio overrides the radio environment (nil = DefaultRadioParams).
	Radio *RadioSpec `json:"radio,omitempty"`
}

// RadioSpec is the serializable radio environment. A nil RadioSpec — or one
// that sets only NumRadios — keeps the paper's default environment
// (DefaultRadioParams).
type RadioSpec struct {
	PathLossExponent float64 `json:"path_loss_exponent,omitempty"`
	RefLossDB        float64 `json:"ref_loss_db,omitempty"`
	NoiseDBm         float64 `json:"noise_dbm,omitempty"`
	BetaDB           float64 `json:"beta_db,omitempty"`
	// CSThresholdDBm is the carrier-sense threshold; nil derives it at
	// decode sensitivity (RadioParams' NaN sentinel, which JSON cannot
	// carry). A pointer is used so an explicit 0 dBm stays expressible.
	CSThresholdDBm *float64 `json:"cs_threshold_dbm,omitempty"`
	ShadowSigmaDB  float64  `json:"shadow_sigma_db,omitempty"`
	// NumRadios is the per-node radio interface count (0 = 1).
	NumRadios int `json:"num_radios,omitempty"`
}

// params converts the spec to RadioParams, mapping the nil threshold back to
// the NaN "derive" sentinel and preserving the all-zero-means-default
// convenience.
func (r *RadioSpec) params() RadioParams {
	if r == nil {
		return DefaultRadioParams()
	}
	p := RadioParams{
		PathLossExponent: r.PathLossExponent,
		RefLossDB:        r.RefLossDB,
		NoiseDBm:         r.NoiseDBm,
		BetaDB:           r.BetaDB,
		ShadowSigmaDB:    r.ShadowSigmaDB,
		NumRadios:        r.NumRadios,
	}
	if r.CSThresholdDBm == nil {
		// Leave the physics fields' zero-ness intact: withDefaults (inside
		// the mesh constructors) swaps in the default environment when every
		// physics field is zero, and NaN would defeat that check.
		if p.PathLossExponent == 0 && p.RefLossDB == 0 && p.NoiseDBm == 0 &&
			p.BetaDB == 0 && p.ShadowSigmaDB == 0 {
			d := DefaultRadioParams()
			d.NumRadios = r.NumRadios
			return d
		}
		p.CSThresholdDBm = math.NaN()
	} else {
		p.CSThresholdDBm = *r.CSThresholdDBm
	}
	return p
}

// TrafficSpec describes the offered load of a scenario.
type TrafficSpec struct {
	// Kind selects the arrival process: "cbr", "poisson", "bursty"
	// (on/off Poisson) or "zipf" (Poisson with Zipf-skewed per-node rates).
	Kind string `json:"kind"`
	// Load is the per-node offered load as a multiple of the mesh's static
	// capacity (see Mesh.FlowFrameTime); RatePps is an absolute per-node
	// rate in packets per second. Set exactly one.
	Load    float64 `json:"load,omitempty"`
	RatePps float64 `json:"rate_pps,omitempty"`
	// Bursty shape: PeakFactor x the mean rate during exponential ON periods
	// (defaults: 4x peak, 50 ms on, 150 ms off — same mean rate).
	PeakFactor float64 `json:"peak_factor,omitempty"`
	MeanOnSec  float64 `json:"mean_on_sec,omitempty"`
	MeanOffSec float64 `json:"mean_off_sec,omitempty"`
	// Zipf shape (defaults s=1.5, multipliers capped at 32).
	ZipfS   float64 `json:"zipf_s,omitempty"`
	ZipfMax uint64  `json:"zipf_max,omitempty"`
}

// DynamicsSpec describes topology dynamics. A spec with zero churn and no
// mobility is inert and equivalent to omitting dynamics entirely.
type DynamicsSpec struct {
	// FailRate is expected node failures per node per simulated second.
	FailRate float64 `json:"fail_rate,omitempty"`
	// MeanDowntimeSec is the mean repair time (0 = failures are permanent).
	MeanDowntimeSec float64 `json:"mean_downtime_sec,omitempty"`
	FailGateways    bool    `json:"fail_gateways,omitempty"`
	// Mobility is "", "none", "waypoint" or "drift".
	Mobility        string  `json:"mobility,omitempty"`
	SpeedMps        float64 `json:"speed_mps,omitempty"`
	PauseSec        float64 `json:"pause_sec,omitempty"`
	MoveIntervalSec float64 `json:"move_interval_sec,omitempty"`
}

// InterferenceSpec selects the interference engine the centralized
// schedulers build against. Omitting the block (or the engine name) keeps the
// exact dense engine, so existing scenarios run bit-identically.
type InterferenceSpec struct {
	// Engine is a registry name from Engines(): "dense" (exact n x n
	// RX-power matrix, the default) or "spatial" (grid-bucket index — exact
	// near-field, conservative far-field bound, O(n) memory).
	Engine string `json:"engine,omitempty"`
	// CutoffM is the spatial engine's exact-evaluation radius in meters
	// (0 derives it from the strongest transmitter: the distance at which
	// its received power falls to a tenth of the noise floor).
	CutoffM float64 `json:"cutoff_m,omitempty"`
	// BucketM is the spatial engine's grid bucket edge in meters (0 =
	// half the cutoff).
	BucketM float64 `json:"bucket_m,omitempty"`
}

// engineName returns the effective engine registry name ("" = dense).
func (i InterferenceSpec) engineName() string {
	if i.Engine == "" {
		return EngineDense
	}
	return i.Engine
}

// ScenarioSpec is a complete, serializable flow-simulation scenario: the JSON
// document screamd accepts on /api/v1/run and flowsim loads with -scenario.
// The zero values of the run knobs keep FlowOptions' defaults (FramesPerEpoch
// 0 = 1, MaxService 0 = unbounded, ...).
type ScenarioSpec struct {
	// Name is a free-form label echoed in daemon session listings.
	Name     string       `json:"name,omitempty"`
	Topology TopologySpec `json:"topology"`
	Traffic  TrafficSpec  `json:"traffic"`
	// Scheduler is a registry name from Schedulers() ("" = "greedy").
	Scheduler string `json:"scheduler,omitempty"`
	// P is PDD's activation probability (required for "pdd").
	P float64 `json:"p,omitempty"`
	// K is the SCREAM length for the distributed schedulers (0 = the mesh's
	// interference diameter).
	K int `json:"k,omitempty"`
	// HorizonSec is the simulated duration in seconds. Required.
	HorizonSec float64 `json:"horizon_sec"`
	// Seed drives all randomness: deployment draw, arrivals, protocol coins.
	Seed           int64   `json:"seed,omitempty"`
	FramesPerEpoch int     `json:"frames_per_epoch,omitempty"`
	MaxService     int     `json:"max_service,omitempty"`
	MaxQueue       int     `json:"max_queue,omitempty"`
	IdleWaitSec    float64 `json:"idle_wait_sec,omitempty"`
	// Channels is the orthogonal data channel count (0 or 1 =
	// single-channel).
	Channels int           `json:"channels,omitempty"`
	Dynamics *DynamicsSpec `json:"dynamics,omitempty"`
	// Interference selects the interference engine (nil = the exact dense
	// engine).
	Interference *InterferenceSpec `json:"interference,omitempty"`
}

// scenarioSpecJSON is the method-free shadow of ScenarioSpec used by the
// custom (un)marshalers to avoid recursion.
type scenarioSpecJSON ScenarioSpec

// UnmarshalJSON decodes strictly: unknown fields anywhere in the document
// (including nested specs) are an error.
func (s *ScenarioSpec) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var raw scenarioSpecJSON
	if err := dec.Decode(&raw); err != nil {
		return fmt.Errorf("scream: scenario spec: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("scream: scenario spec: trailing data after JSON document")
	}
	*s = ScenarioSpec(raw)
	return nil
}

// MarshalJSON is the inverse of UnmarshalJSON: Marshal then Unmarshal
// round-trips a spec exactly.
func (s ScenarioSpec) MarshalJSON() ([]byte, error) {
	return json.Marshal(scenarioSpecJSON(s))
}

// ParseScenario decodes and validates a JSON scenario document.
func ParseScenario(data []byte) (ScenarioSpec, error) {
	var spec ScenarioSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return ScenarioSpec{}, err
	}
	if err := spec.Validate(); err != nil {
		return ScenarioSpec{}, err
	}
	return spec, nil
}

// LoadScenario reads, decodes and validates a JSON scenario file.
func LoadScenario(path string) (ScenarioSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("scream: scenario: %w", err)
	}
	spec, err := ParseScenario(data)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("%w (%s)", err, path)
	}
	return spec, nil
}

// Clone returns a deep copy: mutating the copy (its gateway list, radio,
// dynamics, interference block) never affects the original. Specs cross the daemon's session
// boundary through this.
func (s ScenarioSpec) Clone() ScenarioSpec {
	c := s
	c.Topology.Gateways = append([]int(nil), s.Topology.Gateways...)
	if s.Topology.Radio != nil {
		r := *s.Topology.Radio
		if s.Topology.Radio.CSThresholdDBm != nil {
			v := *s.Topology.Radio.CSThresholdDBm
			r.CSThresholdDBm = &v
		}
		c.Topology.Radio = &r
	}
	if s.Dynamics != nil {
		d := *s.Dynamics
		c.Dynamics = &d
	}
	if s.Interference != nil {
		i := *s.Interference
		c.Interference = &i
	}
	return c
}

// SchedulerName resolves the spec's scheduler name, applying the registry
// default ("greedy") when unset.
func (s ScenarioSpec) SchedulerName() string {
	if s.Scheduler == "" {
		return "greedy"
	}
	return s.Scheduler
}

// Validate checks the spec for structural errors: unknown kinds, missing
// required knobs, contradictory load settings. Run validates implicitly.
func (s ScenarioSpec) Validate() error {
	t := s.Topology
	switch t.Kind {
	case "grid":
		if t.Rows <= 0 || t.Cols <= 0 {
			return fmt.Errorf("scream: scenario: grid topology needs rows and cols > 0")
		}
		if t.StepMeters <= 0 {
			return fmt.Errorf("scream: scenario: grid topology needs step_m > 0")
		}
	case "uniform":
		if t.Nodes <= 0 || t.SideMeters <= 0 {
			return fmt.Errorf("scream: scenario: uniform topology needs nodes and side_m > 0")
		}
	case "line":
		if t.Nodes <= 0 || t.StepMeters <= 0 {
			return fmt.Errorf("scream: scenario: line topology needs nodes and step_m > 0")
		}
	case "":
		return fmt.Errorf("scream: scenario: topology.kind is required (grid, uniform, line)")
	default:
		return fmt.Errorf("scream: scenario: unknown topology kind %q (valid: grid, uniform, line)", t.Kind)
	}
	switch s.Traffic.Kind {
	case "cbr", "poisson", "bursty", "zipf":
	case "":
		return fmt.Errorf("scream: scenario: traffic.kind is required (cbr, poisson, bursty, zipf)")
	default:
		return fmt.Errorf("scream: scenario: unknown traffic kind %q (valid: cbr, poisson, bursty, zipf)", s.Traffic.Kind)
	}
	if s.Traffic.Load < 0 || s.Traffic.RatePps < 0 {
		return fmt.Errorf("scream: scenario: traffic load and rate_pps must be non-negative")
	}
	if s.Traffic.Load > 0 && s.Traffic.RatePps > 0 {
		return fmt.Errorf("scream: scenario: set traffic.load or traffic.rate_pps, not both")
	}
	if s.Traffic.Load == 0 && s.Traffic.RatePps == 0 {
		return fmt.Errorf("scream: scenario: traffic needs load or rate_pps > 0")
	}
	name := s.SchedulerName()
	if _, err := SchedulerByName(name); err != nil {
		return err
	}
	if name == "pdd" && (s.P <= 0 || s.P > 1) {
		return fmt.Errorf("scream: scenario: pdd needs p in (0, 1], got %g", s.P)
	}
	if s.HorizonSec <= 0 {
		return fmt.Errorf("scream: scenario: horizon_sec must be > 0")
	}
	if s.Channels < 0 {
		return fmt.Errorf("scream: scenario: channels must be non-negative")
	}
	if s.Dynamics != nil {
		if _, err := s.Dynamics.options(); err != nil {
			return err
		}
	}
	if s.Interference != nil {
		i := s.Interference
		if i.Engine != "" {
			if _, err := EngineByName(i.Engine); err != nil {
				return fmt.Errorf("scream: scenario: unknown interference engine %q (valid: dense, spatial)", i.Engine)
			}
		}
		if i.CutoffM < 0 || i.BucketM < 0 {
			return fmt.Errorf("scream: scenario: interference cutoff_m and bucket_m must be non-negative")
		}
		if i.engineName() != EngineSpatial && (i.CutoffM != 0 || i.BucketM != 0) {
			return fmt.Errorf("scream: scenario: cutoff_m and bucket_m apply only to the spatial engine")
		}
		if i.engineName() == EngineSpatial {
			if s.Topology.Radio != nil && s.Topology.Radio.ShadowSigmaDB > 0 {
				return fmt.Errorf("scream: scenario: the spatial engine does not support shadowing; use the dense engine")
			}
			if def, err := flowSchedulerDistributed(name); err == nil && def {
				return fmt.Errorf("scream: scenario: scheduler %q requires the dense interference engine", name)
			}
		}
	}
	return nil
}

// flowSchedulerDistributed reports whether the named scheduler is one of the
// distributed protocols (which simulate real radios over the exact channel
// and therefore reject a non-dense engine).
func flowSchedulerDistributed(name string) (bool, error) {
	for _, s := range Schedulers() {
		if s.Name == name {
			return s.Distributed, nil
		}
	}
	return false, fmt.Errorf("scream: unknown scheduler %q", name)
}

// Mesh builds the scenario's deployment (topology, routing forest, demands).
// The returned mesh is exclusively the caller's: nothing in the spec aliases
// it.
func (s ScenarioSpec) Mesh() (*Mesh, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := s.Topology
	radio := t.Radio.params()
	gws := append([]int(nil), t.Gateways...)
	var (
		m   *Mesh
		err error
	)
	switch t.Kind {
	case "grid":
		m, err = NewGridMesh(GridMeshConfig{
			Rows: t.Rows, Cols: t.Cols, StepMeters: t.StepMeters,
			TxPowerDBm: t.TxPowerDBm, Gateways: gws,
			DemandLo: t.DemandLo, DemandHi: t.DemandHi,
			Radio: radio, Seed: s.Seed, BalancedRouting: t.BalancedRouting,
		})
	case "uniform":
		m, err = NewUniformMesh(UniformMeshConfig{
			N: t.Nodes, SideMeters: t.SideMeters,
			MinTxDBm: t.MinTxDBm, MaxTxDBm: t.MaxTxDBm, Gateways: gws,
			DemandLo: t.DemandLo, DemandHi: t.DemandHi,
			Radio: radio, Seed: s.Seed, BalancedRouting: t.BalancedRouting,
		})
	default: // "line" — Validate rejected everything else
		m, err = NewLineMesh(LineMeshConfig{
			N: t.Nodes, StepMeters: t.StepMeters, RangeSlack: t.RangeSlack,
			Gateways: gws, DemandLo: t.DemandLo, DemandHi: t.DemandHi,
			Radio: radio, Seed: s.Seed,
		})
	}
	if err != nil {
		return nil, err
	}
	if s.Interference != nil {
		if err := m.UseEngine(*s.Interference); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// arrivals builds the per-node arrival processes, replicating the flowsim
// semantics: Zipf multipliers are drawn for source nodes only (normalizing
// over gateways would shed their mass and under-offer the promised load).
func (s ScenarioSpec) arrivals(m *Mesh, tm Timing) ([]Arrival, error) {
	rate := s.Traffic.RatePps
	if s.Traffic.Load > 0 {
		frame, err := m.FlowFrameTime(tm)
		if err != nil {
			return nil, err
		}
		rate = s.Traffic.Load / frame.Seconds()
	}
	n := m.NumNodes()
	isGW := make(map[int]bool)
	gateways := m.Gateways()
	for _, g := range gateways {
		isGW[g] = true
	}
	mult := make([]float64, n)
	for i := range mult {
		mult[i] = 1
	}
	if s.Traffic.Kind == "zipf" {
		zs := s.Traffic.ZipfS
		if zs == 0 {
			zs = 1.5
		}
		zmax := s.Traffic.ZipfMax
		if zmax == 0 {
			zmax = 32
		}
		rates, err := HotspotRates(n-len(gateways), zs, 1, zmax, s.Seed)
		if err != nil {
			return nil, err
		}
		next := 0
		for u := 0; u < n; u++ {
			if isGW[u] {
				mult[u] = 0
				continue
			}
			mult[u] = rates[next]
			next++
		}
	}
	peak := s.Traffic.PeakFactor
	if peak == 0 {
		peak = 4
	}
	meanOn, meanOff := s.Traffic.MeanOnSec, s.Traffic.MeanOffSec
	if meanOn == 0 {
		meanOn = 0.05
	}
	if meanOff == 0 {
		meanOff = 0.15
	}
	arrivals := make([]Arrival, n)
	for u := 0; u < n; u++ {
		if isGW[u] {
			continue
		}
		r := rate * mult[u]
		if r <= 0 {
			continue
		}
		var a Arrival
		var err error
		switch s.Traffic.Kind {
		case "cbr":
			a, err = NewCBR(r)
		case "poisson", "zipf":
			a, err = NewPoisson(r)
		case "bursty":
			a, err = NewBursty(peak*r, secsToSim(meanOn), secsToSim(meanOff))
		}
		if err != nil {
			return nil, err
		}
		arrivals[u] = a
	}
	return arrivals, nil
}

// options converts a dynamics spec to DynamicsOptions, mapping an inert spec
// (no churn, no mobility) to nil so the run takes the identical static path.
func (d *DynamicsSpec) options() (*DynamicsOptions, error) {
	if d == nil {
		return nil, nil
	}
	mob := MobilityNone
	switch d.Mobility {
	case "", "none":
	case "waypoint":
		mob = MobilityWaypoint
	case "drift":
		mob = MobilityDrift
	default:
		return nil, fmt.Errorf("scream: scenario: unknown mobility model %q (valid: none, waypoint, drift)", d.Mobility)
	}
	if d.FailRate == 0 && mob == MobilityNone {
		return nil, nil
	}
	return &DynamicsOptions{
		FailRate:     d.FailRate,
		MeanDowntime: secsToSim(d.MeanDowntimeSec),
		FailGateways: d.FailGateways,
		Mobility:     mob,
		SpeedMps:     d.SpeedMps,
		Pause:        secsToSim(d.PauseSec),
		MoveInterval: secsToSim(d.MoveIntervalSec),
	}, nil
}

// secsToSim converts wall-clock-style seconds to simulated ticks.
func secsToSim(x float64) SimTime { return SimTime(x * float64(Second)) }

// RunOptions carries the non-serializable hooks of RunWith — everything a
// scenario run can take beyond the spec itself.
type RunOptions struct {
	// OnEpoch streams per-epoch progress (see FlowOptions.OnEpoch).
	OnEpoch func(EpochUpdate)
	// Metrics/Trace are the observability sinks (see FlowOptions).
	Metrics *ObsRegistry
	Trace   *ObsTracer
	// Perf opts into wall-clock sampling of the schedule-build and
	// epoch-drive hot paths (see FlowOptions.Perf).
	Perf bool
	// Mesh, when non-nil, skips building spec.Topology and runs on the given
	// mesh instead — the daemon's preloaded-scenario path, where each session
	// runs on its own clone of a shared deployment.
	Mesh *Mesh
}

// Run executes a scenario: build the deployment, offer the traffic, drain it
// with the named scheduler until the horizon. It is the single entrypoint
// behind flowsim and the screamd daemon; ctx cancellation aborts the run.
func Run(ctx context.Context, spec ScenarioSpec) (*FlowResult, error) {
	return RunWith(ctx, spec, RunOptions{})
}

// RunWith is Run with hooks: epoch streaming, observability sinks, and an
// optional pre-built mesh.
func RunWith(ctx context.Context, spec ScenarioSpec, o RunOptions) (*FlowResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := o.Mesh
	if m == nil {
		var err error
		m, err = spec.Mesh()
		if err != nil {
			return nil, err
		}
	}
	tm := DefaultTiming()
	arrivals, err := spec.arrivals(m, tm)
	if err != nil {
		return nil, err
	}
	scheduler, err := SchedulerByName(spec.SchedulerName())
	if err != nil {
		return nil, err
	}
	dyn, err := spec.Dynamics.options()
	if err != nil {
		return nil, err
	}
	return RunFlowContext(ctx, m, FlowOptions{
		Scheduler:      scheduler,
		P:              spec.P,
		K:              spec.K,
		Arrivals:       arrivals,
		Horizon:        secsToSim(spec.HorizonSec),
		Seed:           spec.Seed,
		MaxQueue:       spec.MaxQueue,
		MaxService:     spec.MaxService,
		FramesPerEpoch: spec.FramesPerEpoch,
		IdleWait:       secsToSim(spec.IdleWaitSec),
		Dynamics:       dyn,
		Channels:       spec.Channels,
		Metrics:        o.Metrics,
		Trace:          o.Trace,
		Perf:           o.Perf,
		OnEpoch:        o.OnEpoch,
	})
}
