package scream

// The flow-level dynamic traffic API: run a mesh's schedulers over simulated
// time under continuous packet arrivals — per-link FIFO queues, gateway
// forwarding along the routing forest, epoch-based re-scheduling against
// backlog snapshots, and goodput/delay/backlog metrics. See internal/flow
// and the "Dynamic traffic" section of DESIGN.md.

import (
	"context"
	"fmt"
	"math/rand"

	"scream/internal/dynam"
	"scream/internal/flow"
	"scream/internal/obs"
	"scream/internal/phys"
	"scream/internal/traffic"
)

// Flow-related aliases re-exported from internal packages.
type (
	// Arrival is a per-node packet arrival process (CBR, Poisson, bursty
	// on/off); see NewCBR, NewPoisson, NewBursty.
	Arrival = traffic.Arrival
	// FlowResult is the outcome of a dynamic traffic run: goodput, delay
	// percentiles, backlog and control-overhead accounting.
	FlowResult = flow.Result
	// EpochUpdate is the per-epoch progress snapshot handed to
	// FlowOptions.OnEpoch — the streaming hook of interactive callers (the
	// screamd daemon's epoch stream is exactly these, serialized).
	EpochUpdate = flow.EpochUpdate
)

// FlowScheduler selects the epoch scheduler of a dynamic traffic run.
type FlowScheduler int

const (
	// FlowGreedy re-runs the centralized GreedyPhysical baseline each
	// epoch with zero (genie) control cost.
	FlowGreedy FlowScheduler = iota + 1
	// FlowFDD re-runs the FDD protocol each epoch, paying its real
	// simulated execution time as control cost.
	FlowFDD
	// FlowPDD re-runs PDD (activation probability FlowOptions.P) each
	// epoch at real control cost.
	FlowPDD
	// FlowTDMA serves every backlogged link one singleton slot per frame:
	// the no-spatial-reuse baseline, zero control cost.
	FlowTDMA
	// FlowMaxWeight re-ranks links by backlog x Shannon-rate each epoch and
	// admits greedily in that order — the queue-aware centralized baseline,
	// zero control cost. Single-channel only.
	FlowMaxWeight
	// FlowFanZhang partitions links into geometric length classes and
	// first-fits each class on fresh slots, longest class first — the
	// approximation-guarantee scheduler, zero control cost. Single-channel
	// only.
	FlowFanZhang
)

// FlowOptions parameterizes RunFlow.
type FlowOptions struct {
	// Scheduler picks the epoch scheduler; the zero value is FlowGreedy.
	Scheduler FlowScheduler
	// P is PDD's activation probability (FlowPDD only).
	P float64
	// Ordering is the greedy edge ordering (FlowGreedy; 0 = ByHeadIDDesc).
	Ordering Ordering
	// Timing is the slot timing model; zero value uses DefaultTiming.
	Timing Timing
	// K is the SCREAM length for the distributed schedulers; 0 uses the
	// mesh's interference diameter.
	K int
	// Arrivals holds one arrival process per node (nil entries are silent
	// nodes; gateways must be nil). Required.
	Arrivals []Arrival
	// Horizon is the simulated duration. Required.
	Horizon SimTime
	// Seed drives all randomness of the run.
	Seed int64
	// MaxQueue caps each link queue in packets (0 = unbounded).
	MaxQueue int
	// MaxService caps per-link demand per epoch (0 = full backlog).
	MaxService int
	// FramesPerEpoch replays each epoch's schedule this many times before
	// re-scheduling, amortizing control cost (0 = 1).
	FramesPerEpoch int
	// IdleWait is the backlog re-check period when the network is empty
	// (0 = one handshake slot).
	IdleWait SimTime
	// Dynamics, when non-nil, drives node churn and mobility during the
	// run (the mesh itself is never mutated — the run operates on a clone).
	Dynamics *DynamicsOptions
	// Channels is the number of orthogonal data channels the epoch
	// schedules ride (0 or 1 = the single-channel simulator, unchanged).
	// With more channels every scheduler packs each slot across the channel
	// set — per-channel SINR feasibility, per-node radio budget from the
	// mesh's RadioParams.NumRadios — and the distributed schedulers pay
	// their control traffic on the designated control channel (channel 0).
	Channels int
	// Metrics, when non-nil, receives live counters from every layer the
	// run touches (core protocol, flow driver, dynamics). When nil, the
	// run falls back to the process-default registry installed by
	// EnableRuntimeMetrics — still nil by default, costing nothing.
	// Metrics are write-only; enabling them never changes a result.
	Metrics *ObsRegistry
	// Trace, when non-nil, receives structured JSONL events — the schema-v2
	// span hierarchy (run ▸ epoch ▸ schedule_build ▸ slot) plus point events
	// (protocol handshakes, churn and repair) — timestamped in simulated
	// ticks.
	Trace *ObsTracer
	// Perf opts into wall-clock sampling of the run's hot paths: each
	// schedule build and each epoch drive is timed into scream_perf_*
	// histograms in the effective registry, and span_end trace lines gain a
	// sampled wall_ns field. Samples are write-only — simulated results stay
	// bit-identical — but the trace bytes stop being deterministic, so
	// golden-trace comparisons must keep this off.
	Perf bool
	// OnEpoch, when non-nil, is called synchronously after every built
	// epoch's data phase with a progress snapshot — the streaming hook.
	// The callback must treat the update as read-only; it cannot change
	// any result.
	OnEpoch func(EpochUpdate)
}

// MobilityKind selects the node mobility model of a dynamics run.
type MobilityKind int

const (
	// MobilityNone keeps node positions static.
	MobilityNone MobilityKind = iota
	// MobilityWaypoint is the classical random-waypoint walk: travel to a
	// uniform waypoint at SpeedMps, pause, repeat.
	MobilityWaypoint
	// MobilityDrift gives each node a constant random-heading velocity,
	// reflecting off the deployment region boundary.
	MobilityDrift
)

// DynamicsOptions parameterizes topology dynamics for RunFlow: node churn
// (failures and repairs, optionally including gateways) and node mobility.
// Events take effect at epoch boundaries: queues on dead nodes are dropped,
// the routing forest is repaired incrementally (full rebuild on partition or
// gateway outage), adaptive schedulers re-plan on the repaired topology at a
// RepairCost of two SCREAM floods, and the static TDMA baseline keeps its
// frame structure with dead-endpoint transmissions suppressed. Disruption
// metrics land in FlowResult (LostOnFailure, Recovered, RecoveryTime, ...).
type DynamicsOptions struct {
	// FailRate is the expected number of failures per node per simulated
	// second; 0 disables churn.
	FailRate float64
	// MeanDowntime is the mean repair time after a failure; 0 makes
	// failures permanent.
	MeanDowntime SimTime
	// FailGateways includes gateways in the churn process.
	FailGateways bool
	// Mobility selects the mobility model (default MobilityNone).
	Mobility MobilityKind
	// SpeedMps is the mobility speed in meters per second.
	SpeedMps float64
	// Pause is the random-waypoint dwell time at each waypoint.
	Pause SimTime
	// MoveInterval is the position sampling period (0 = 100 ms).
	MoveInterval SimTime
	// Script, when non-nil, replaces the generated timeline with explicit
	// events (testing hook; see dynam.Event).
	Script []DynamicsEvent
}

// Dynamics-related aliases re-exported from internal/dynam.
type (
	// DynamicsEvent is one scripted topology event.
	DynamicsEvent = dynam.Event
	// DynamicsMobility is a custom mobility model implementation.
	DynamicsMobility = dynam.Mobility
)

// Scripted dynamics event kinds.
const (
	NodeFail    = dynam.Fail
	NodeRecover = dynam.Recover
	NodeMove    = dynam.Move
)

// NewCBR returns a constant-rate arrival process (packets per second).
func NewCBR(rate float64) (Arrival, error) { return traffic.NewCBR(rate) }

// NewPoisson returns a Poisson arrival process (mean packets per second).
func NewPoisson(rate float64) (Arrival, error) { return traffic.NewPoisson(rate) }

// NewBursty returns a two-state on/off arrival process: Poisson at peakRate
// during exponential ON periods (mean meanOn), silent during OFF periods
// (mean meanOff).
func NewBursty(peakRate float64, meanOn, meanOff SimTime) (Arrival, error) {
	return traffic.NewBursty(peakRate, meanOn, meanOff)
}

// HotspotRates draws Zipf-skewed per-node rate multipliers normalized to
// mean 1 — combine with NewPoisson to concentrate a mesh's offered load on a
// few hotspot routers.
func HotspotRates(n int, s, v float64, max uint64, seed int64) ([]float64, error) {
	return traffic.HotspotRates(n, s, v, max, rand.New(rand.NewSource(seed)))
}

// RunFlow runs a flow-level dynamic traffic simulation on the mesh: packets
// arrive at source nodes per opts.Arrivals, queue on forest links, and are
// drained by the selected scheduler's epoch-based schedules until the
// horizon. With opts.Dynamics set, node churn and mobility run underneath
// (on a private clone of the mesh's network — the Mesh is never mutated).
// See FlowResult for the metrics returned.
func RunFlow(m *Mesh, opts FlowOptions) (*FlowResult, error) {
	return RunFlowContext(context.Background(), m, opts)
}

// RunFlowContext is RunFlow with cancellation: the context is checked once
// per driver cycle, and cancellation aborts the run with an error wrapping
// ctx.Err(). This is the entrypoint of interactive callers (the screamd
// daemon cancels a session's run when its client disconnects or the server
// drains).
func RunFlowContext(ctx context.Context, m *Mesh, opts FlowOptions) (*FlowResult, error) {
	tm := opts.Timing
	if tm == (Timing{}) {
		tm = DefaultTiming()
	}
	// Effective observability sinks: an explicit per-run registry wins
	// (test isolation); otherwise the process default installed by
	// EnableRuntimeMetrics, which is nil unless a CLI opted in.
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.Default()
	}
	trace := opts.Trace
	// The network view the run operates on: the mesh's own for static runs,
	// an exclusively-owned clone when dynamics mutate it. Schedulers must be
	// built over the same view the dynamics world mutates.
	net := m.Network
	var (
		world      *dynam.World
		repairCost SimTime
		err        error
	)
	if opts.Dynamics != nil {
		d := opts.Dynamics
		dcfg := dynam.Config{
			FailRate:     d.FailRate,
			MeanDowntime: d.MeanDowntime,
			FailGateways: d.FailGateways,
			MoveInterval: d.MoveInterval,
			Horizon:      opts.Horizon,
			Seed:         opts.Seed,
			Script:       d.Script,
		}
		switch d.Mobility {
		case MobilityNone:
		case MobilityWaypoint:
			dcfg.Mobility = dynam.RandomWaypoint{SpeedMps: d.SpeedMps, Pause: d.Pause}
		case MobilityDrift:
			dcfg.Mobility = dynam.Drift{SpeedMps: d.SpeedMps}
		default:
			return nil, fmt.Errorf("scream: unknown mobility model %d", d.Mobility)
		}
		net = m.Network.Clone()
		world, err = dynam.NewWorld(net, m.Forest, dcfg)
		if err != nil {
			return nil, fmt.Errorf("scream: %w", err)
		}
		world.SetObs(metrics, trace)
		k := opts.K
		if k == 0 {
			k = net.InterferenceDiameter()
		}
		repairCost = tm.RepairCost(k)
	}
	// The interference engine the centralized schedulers build against: nil
	// keeps the dense channel (the default, bit-identical to every run before
	// engines existed). A spatial mesh gets a fresh index over the run's
	// network view; under dynamics the world keeps it in lockstep with churn
	// and mobility, and the epoch scheduler re-reads it on every build.
	var engine phys.Engine
	if m.EngineName() == EngineSpatial {
		idx, err := net.SpatialEngine(m.interf.CutoffM, m.interf.BucketM)
		if err != nil {
			return nil, fmt.Errorf("scream: %w", err)
		}
		if world != nil {
			world.AttachSpatial(idx)
		}
		engine = idx
	}
	channels := opts.Channels
	if channels <= 0 {
		channels = 1
	}
	// Scheduler construction goes through the registry (internal/flow
	// SchedulerDefs): the legacy FlowScheduler constants are resolved to
	// their registry names and built from the same table flowsim, figgen and
	// the screamd daemon enumerate.
	name, ok := opts.Scheduler.registryName()
	if !ok {
		return nil, fmt.Errorf("scream: unknown flow scheduler %d", opts.Scheduler)
	}
	def, err := flow.SchedulerDefByName(name)
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	scheduler, err := def.New(flow.SchedulerEnv{
		Channel:  net.Channel,
		Engine:   engine,
		Sens:     net.Sens,
		Links:    m.Links,
		Ordering: opts.Ordering,
		K:        opts.K,
		Timing:   tm,
		P:        opts.P,
		Seed:     opts.Seed,
		Channels: channels,
		Radios:   m.radios,
		Metrics:  metrics,
		Trace:    trace,
	})
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	cfg := flow.Config{
		Forest:         m.Forest,
		Links:          m.Links,
		Scheduler:      scheduler,
		Timing:         tm,
		Arrivals:       opts.Arrivals,
		Horizon:        opts.Horizon,
		Seed:           opts.Seed,
		MaxQueue:       opts.MaxQueue,
		MaxService:     opts.MaxService,
		FramesPerEpoch: opts.FramesPerEpoch,
		IdleWait:       opts.IdleWait,
		Dynamics:       world,
		RepairCost:     repairCost,
		Metrics:        metrics,
		Trace:          trace,
		OnEpoch:        opts.OnEpoch,
	}
	if opts.Perf {
		cfg.Perf = obs.NewPerf(metrics, scheduler.Name)
		trace.EnableWallClock(nil) // nil-safe; WallNow
	}
	if ctx != nil && ctx.Done() != nil {
		cfg.Ctx = ctx
	}
	res, err := flow.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("scream: %w", err)
	}
	return res, nil
}

// FlowFrameTime returns the mesh's capacity reference: the duration of one
// greedy frame delivering one end-to-end packet per non-gateway node. A
// per-node arrival rate of x/FlowFrameTime offers x times the static
// schedule's sustainable load (the x axis of FigFlowLoad).
func (m *Mesh) FlowFrameTime(tm Timing) (SimTime, error) {
	if tm == (Timing{}) {
		tm = DefaultTiming()
	}
	frame, err := flow.FrameTime(m.Network.Channel, m.Forest, m.Links, tm)
	if err != nil {
		return 0, fmt.Errorf("scream: %w", err)
	}
	return frame, nil
}
