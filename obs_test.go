package scream

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"scream/internal/tracecheck"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// obsFlowOptions is the pinned scenario shared by the conservation and
// golden-trace tests: 4x4 grid, FDD (so the analytic/measured protocol
// cross-check exercises real SCREAMs and handshakes), bounded queues so
// drops occur, CBR arrivals for an arrival count independent of RNG draws.
func obsFlowOptions(t *testing.T, m *Mesh) FlowOptions {
	t.Helper()
	frame, err := m.FlowFrameTime(Timing{})
	if err != nil {
		t.Fatal(err)
	}
	rate := 1.5 / frame.Seconds() // overloaded: exercises the queue cap
	isGW := make(map[int]bool)
	for _, g := range m.Gateways() {
		isGW[g] = true
	}
	arrivals := make([]Arrival, m.NumNodes())
	for u := range arrivals {
		if isGW[u] {
			continue
		}
		a, err := NewCBR(rate)
		if err != nil {
			t.Fatal(err)
		}
		arrivals[u] = a
	}
	return FlowOptions{
		Scheduler:      FlowFDD,
		Arrivals:       arrivals,
		Horizon:        300 * Millisecond,
		Seed:           7,
		MaxQueue:       8,
		MaxService:     8,
		FramesPerEpoch: 8,
	}
}

func counter(t *testing.T, r *ObsRegistry, name string) int64 {
	t.Helper()
	v, ok := r.CounterValue(name)
	if !ok {
		t.Fatalf("counter %q not registered", name)
	}
	return v
}

// TestObsConservation pins the packet-conservation identity against a live
// metrics snapshot: every packet an arrival process generated is either
// delivered, dropped at a full queue, or still queued at the horizon. All
// quantities are exact int64 event counts, so the assertions are equalities,
// not tolerances — any instrumentation drift (a counter bumped twice, a path
// not counted) breaks the identity immediately.
func TestObsConservation(t *testing.T) {
	m := flowTestMesh(t)
	reg := NewObsRegistry()
	opts := obsFlowOptions(t, m)
	opts.Metrics = reg
	res, err := RunFlow(m, opts)
	if err != nil {
		t.Fatal(err)
	}

	offered := counter(t, reg, "scream_flow_offered_total")
	delivered := counter(t, reg, "scream_flow_delivered_total")
	dropped := counter(t, reg, `scream_flow_dropped_total{reason="queue_full"}`)
	if offered == 0 || delivered == 0 || dropped == 0 {
		t.Fatalf("scenario must exercise all flows: offered=%d delivered=%d dropped=%d", offered, delivered, dropped)
	}

	// Metrics must agree exactly with the run's own accounting...
	if offered != int64(res.Offered) || delivered != int64(res.Delivered) || dropped != int64(res.Dropped) {
		t.Fatalf("metrics diverge from Result: offered %d/%d delivered %d/%d dropped %d/%d",
			offered, res.Offered, delivered, res.Delivered, dropped, res.Dropped)
	}
	// ...and packets must be conserved.
	if offered != delivered+dropped+int64(res.FinalBacklog) {
		t.Fatalf("conservation violated: offered %d != delivered %d + dropped %d + queued %d",
			offered, delivered, dropped, res.FinalBacklog)
	}

	// Backlog gauge was last sampled at the final epoch boundary.
	if v, ok := reg.GaugeValue("scream_flow_backlog_packets"); !ok || v != int64(res.FinalBacklog) {
		t.Fatalf("backlog gauge %d (ok=%v), want %d", v, ok, res.FinalBacklog)
	}
}

// TestObsTimingCrossCheck pins the measured-vs-analytic control-cost
// identity of the distributed protocol: the backend's elapsed simulated
// time must equal exactly what core.Timing charges for the SCREAMs and
// handshake slots it executed, and the backend-measured SCREAM count must
// equal the protocol layer's analytic accounting. This is the end-to-end
// check that the simulator bills control overhead at precisely the paper's
// cost model — measured in ticks, asserted with ==.
func TestObsTimingCrossCheck(t *testing.T) {
	m := flowTestMesh(t)
	reg := NewObsRegistry()
	opts := obsFlowOptions(t, m)
	opts.Metrics = reg
	if _, err := RunFlow(m, opts); err != nil {
		t.Fatal(err)
	}

	screamsMeasured := counter(t, reg, "scream_core_screams_measured_total")
	screamsAnalytic := counter(t, reg, "scream_core_screams_total")
	handshakes := counter(t, reg, "scream_core_handshake_slots_measured_total")
	execTicks := counter(t, reg, "scream_core_exec_ticks_total")
	k, ok := reg.GaugeValue("scream_core_scream_length_slots")
	if !ok || k <= 0 {
		t.Fatalf("SCREAM length gauge missing or non-positive: %d (ok=%v)", k, ok)
	}
	if screamsMeasured == 0 || handshakes == 0 {
		t.Fatalf("scenario ran no protocol primitives: screams=%d handshakes=%d", screamsMeasured, handshakes)
	}
	if screamsMeasured != screamsAnalytic {
		t.Fatalf("backend executed %d SCREAMs, protocol layer charged %d", screamsMeasured, screamsAnalytic)
	}

	tm := DefaultTiming()
	want := screamsMeasured*k*int64(tm.ScreamSlot()) + handshakes*int64(tm.HandshakeSlot())
	if execTicks != want {
		t.Fatalf("exec ticks %d != %d SCREAMs x K=%d x %d + %d handshakes x %d = %d",
			execTicks, screamsMeasured, k, int64(tm.ScreamSlot()), handshakes, int64(tm.HandshakeSlot()), want)
	}
}

// TestObsDisabledIdenticalResults is the zero-interference guarantee: the
// same scenario with and without a registry attached must produce an
// identical Result — metrics are write-only and can never feed back.
func TestObsDisabledIdenticalResults(t *testing.T) {
	m := flowTestMesh(t)
	base, err := RunFlow(m, obsFlowOptions(t, m))
	if err != nil {
		t.Fatal(err)
	}
	opts := obsFlowOptions(t, m)
	opts.Metrics = NewObsRegistry()
	var buf bytes.Buffer
	opts.Trace = NewObsTracer(&buf)
	instrumented, err := RunFlow(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if *base != *instrumented {
		t.Fatalf("observability changed the result:\nbase:         %+v\ninstrumented: %+v", *base, *instrumented)
	}
}

// TestObsTraceGolden pins the schema-v2 JSONL span trace of the pinned
// scenario byte-for-byte: same seed, single-threaded driver, simulated
// timestamps — the trace must be fully deterministic (wall-clock sampling
// stays off), and the golden file documents the schema in the repository.
// Regenerate with: go test -run TestObsTraceGolden -update
func TestObsTraceGolden(t *testing.T) {
	m := flowTestMesh(t)
	emit := func() []byte {
		var buf bytes.Buffer
		opts := obsFlowOptions(t, m)
		opts.Horizon = 60 * Millisecond // a few epochs; keeps the golden file small
		opts.Trace = NewObsTracer(&buf)
		if _, err := RunFlow(m, opts); err != nil {
			t.Fatal(err)
		}
		if err := opts.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := emit()
	if again := emit(); !bytes.Equal(got, again) {
		t.Fatal("identical runs produced different traces")
	}
	events, err := tracecheck.Parse(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if vs := tracecheck.Validate(events); len(vs) > 0 {
		t.Fatalf("golden scenario trace violates invariants: %v", vs)
	}

	golden := filepath.Join("testdata", "flow_trace_v2.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverges from %s (%d vs %d bytes); run with -update after intended schema changes",
			golden, len(got), len(want))
	}
}
