package scream

// The runtime observability API: an optional, dependency-free metrics
// registry plus a structured JSONL event tracer, surfaced over HTTP as
// Prometheus text exposition and net/http/pprof. Everything here is
// strictly write-only from the simulation's point of view — no scheduler,
// protocol or flow decision ever reads a metric — so enabling observability
// never changes a result: figure TSVs stay byte-identical with it on or
// off. See the "Observability" section of DESIGN.md.

import (
	"io"
	"net"
	"net/http"

	"scream/internal/obs"
	"scream/internal/phys"
	"scream/internal/sched"
)

// Observability aliases re-exported from internal/obs.
type (
	// ObsRegistry is a concurrency-safe registry of counters, gauges and
	// histograms. The zero pointer (nil) is valid everywhere one is
	// accepted and disables collection at zero cost.
	ObsRegistry = obs.Registry
	// ObsTracer writes structured JSONL events (schema "v":2: paired
	// span_begin/span_end lines plus instants — analyze with
	// cmd/screamtrace); nil disables tracing.
	ObsTracer = obs.Tracer
)

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsTracer returns a tracer emitting one JSON object per event to w.
// Call Flush before reading the output.
func NewObsTracer(w io.Writer) *ObsTracer { return obs.NewTracer(w) }

// EnableRuntimeMetrics wires the process-global instrumentation points into
// r: the phys slot-engine counters, the sched construction counters, and
// the process-default registry that RunFlow falls back to when
// FlowOptions.Metrics is unset. Pass nil to detach everything. Intended to
// be called once at startup by a CLI enabling observability; tests that
// need isolation pass a private registry via the per-run options instead.
func EnableRuntimeMetrics(r *ObsRegistry) {
	phys.SetObs(r)
	sched.SetObs(r)
	obs.SetDefault(r)
}

// ServeObs binds addr (e.g. ":9090" or "127.0.0.1:0") and serves /metrics
// (Prometheus text format) and /debug/pprof/ for r in the background. It
// returns the server and the bound address.
func ServeObs(addr string, r *ObsRegistry) (*http.Server, net.Addr, error) {
	return obs.Serve(addr, r)
}
