module scream

go 1.22
