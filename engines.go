package scream

// The public interference-engine registry: the name-addressable table of
// interference models the schedulers can build against. It mirrors the
// scheduler registry (Schedulers/SchedulerByName): CLIs (flowsim -engine,
// figgen), the screamd daemon's /api/v1/engines endpoint and scenario specs
// (ScenarioSpec.Interference) all enumerate and resolve engines through this
// one table, backed by phys.Engines.

import (
	"fmt"

	"scream/internal/phys"
)

// EngineInfo describes one registered interference engine. The JSON shape is
// served verbatim by screamd's /api/v1/engines endpoint.
type EngineInfo struct {
	// Name is the registry key: the value of flowsim -engine and
	// ScenarioSpec.Interference.Engine.
	Name string `json:"name"`
	// Doc is a one-line description of the engine's model and trade-off.
	Doc string `json:"doc"`
	// Exact reports whether the engine answers every interference query
	// exactly (true) or may conservatively over-estimate far-field
	// interference (false). Inexact engines never admit a schedule the exact
	// model would reject — they only reject more.
	Exact bool `json:"exact"`
}

// Engine registry names.
const (
	// EngineDense is the exact dense n x n RX-power matrix — the reference
	// model and the default everywhere an engine is not named.
	EngineDense = phys.EngineDense
	// EngineSpatial is the grid-bucket spatial index: exact near-field
	// queries within a cutoff radius, a conservative per-bucket far-field
	// bound beyond it, O(n) memory.
	EngineSpatial = phys.EngineSpatial
)

// Engines enumerates the registered interference engines in reporting order
// (the exact default first). The returned slice is freshly allocated on every
// call: mutating it never affects the registry.
func Engines() []EngineInfo {
	defs := phys.Engines()
	infos := make([]EngineInfo, len(defs))
	for i, d := range defs {
		infos[i] = EngineInfo{Name: d.Name, Doc: d.Doc, Exact: d.Exact}
	}
	return infos
}

// EngineByName resolves a registry name ("dense", "spatial") to its engine
// description. Unknown names return an error listing every valid name.
func EngineByName(name string) (EngineInfo, error) {
	d, err := phys.EngineByName(name)
	if err != nil {
		return EngineInfo{}, fmt.Errorf("scream: %w", err)
	}
	return EngineInfo{Name: d.Name, Doc: d.Doc, Exact: d.Exact}, nil
}
