package scream

// Cross-module integration tests exercising whole pipelines through the
// public API: topology -> forest -> demands -> protocols -> verification,
// across backends, topologies and failure modes.

import (
	"math/rand"
	"testing"
)

// TestEndToEndAllSchedulersAgreeOnQuality runs every scheduler on the same
// mesh and checks the quality ordering the paper establishes:
// optimal-ish centralized == FDD <= PDD(any p) <= linear.
func TestEndToEndAllSchedulersAgreeOnQuality(t *testing.T) {
	mesh, err := NewGridMesh(GridMeshConfig{Rows: 6, Cols: 6, StepMeters: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	td := mesh.TotalDemand()

	greedy, err := mesh.GreedySchedule(ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if err := mesh.Verify(greedy); err != nil {
		t.Fatal(err)
	}

	fdd, err := mesh.RunFDD(ProtocolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mesh.Verify(fdd.Schedule); err != nil {
		t.Fatal(err)
	}
	if !fdd.Schedule.Equal(greedy) {
		t.Error("FDD != GreedyPhysical")
	}

	worstPDD := 0
	for _, p := range []float64{0.2, 0.5, 0.8} {
		pdd, err := mesh.RunPDD(p, ProtocolOptions{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		if err := mesh.Verify(pdd.Schedule); err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if pdd.Schedule.Length() > worstPDD {
			worstPDD = pdd.Schedule.Length()
		}
	}
	if greedy.Length() > td {
		t.Errorf("greedy (%d) longer than linear (%d)", greedy.Length(), td)
	}
	if worstPDD > td {
		t.Errorf("PDD (%d) longer than linear (%d)", worstPDD, td)
	}
	t.Logf("TD=%d greedy=FDD=%d worstPDD=%d", td, greedy.Length(), worstPDD)
}

// TestEndToEndPacketLevelPDD runs PDD over the packet-level radio backend —
// randomized protocol + skewed clocks + energy detection, full stack.
func TestEndToEndPacketLevelPDD(t *testing.T) {
	mesh, err := NewGridMesh(GridMeshConfig{
		Rows: 4, Cols: 4, StepMeters: 30, Gateways: []int{0}, DemandHi: 3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mesh.RunPDD(0.5, ProtocolOptions{PacketLevel: true, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if err := mesh.Verify(res.Schedule); err != nil {
		t.Fatalf("packet-level PDD schedule invalid: %v", err)
	}
	if res.ExecTime <= 0 {
		t.Error("no time accounted")
	}
}

// TestEndToEndUniformMeshesAcrossSeeds fuzzes the whole pipeline over many
// random unplanned deployments: every run must verify, and FDD must equal
// greedy on every single one (Theorem 4 is not a statistical claim).
func TestEndToEndUniformMeshesAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		mesh, err := NewUniformMesh(UniformMeshConfig{
			N: 36, SideMeters: 200, MinTxDBm: 14, MaxTxDBm: 20, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fdd, err := mesh.RunFDD(ProtocolOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := mesh.Verify(fdd.Schedule); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		greedy, err := mesh.GreedySchedule(ByHeadIDDesc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !fdd.Schedule.Equal(greedy) {
			t.Fatalf("seed %d: Theorem 4 violated", seed)
		}
	}
}

// TestEndToEndProtocolModelComparison checks the protocol-model facade on a
// fat-margin mesh: physical schedules must verify; protocol-model schedules
// at moderate power must contain SINR-violating slots (the aggregation
// blindness the physical model fixes).
func TestEndToEndProtocolModelComparison(t *testing.T) {
	mesh, err := NewGridMesh(GridMeshConfig{Rows: 6, Cols: 6, StepMeters: 30, TxPowerDBm: 17, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	proto, err := mesh.GreedyProtocolSchedule(ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	physical, err := mesh.GreedySchedule(ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if err := mesh.Verify(physical); err != nil {
		t.Fatal(err)
	}
	if bad := mesh.CountInfeasibleSlots(physical); bad != 0 {
		t.Errorf("physical schedule has %d infeasible slots", bad)
	}
	t.Logf("protocol %d slots (%d SINR-violating), physical %d slots",
		proto.Length(), mesh.CountInfeasibleSlots(proto), physical.Length())
}

// TestEndToEndOptimalOnTinyMesh cross-checks greedy against the exact DP on
// a mesh small enough for exhaustive search.
func TestEndToEndOptimalOnTinyMesh(t *testing.T) {
	mesh, err := NewGridMesh(GridMeshConfig{
		Rows: 4, Cols: 4, StepMeters: 30, Gateways: []int{0}, DemandLo: 1, DemandHi: 1, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := mesh.OptimalLength()
	if err != nil {
		t.Fatal(err)
	}
	// OptimalLength scores unit demands; compare greedy on the same
	// unit-demand workload (the mesh's own demands are subtree-aggregated).
	unit := make([]int, len(mesh.Links))
	for i := range unit {
		unit[i] = 1
	}
	greedy, err := mesh.GreedyScheduleFor(mesh.Links, unit, ByHeadIDDesc)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Length() < opt {
		t.Fatalf("greedy %d < optimal %d: impossible", greedy.Length(), opt)
	}
	if greedy.Length() > 2*opt {
		t.Errorf("greedy %d more than 2x optimal %d on a tiny mesh", greedy.Length(), opt)
	}
	t.Logf("optimal %d, greedy %d", opt, greedy.Length())
}

// TestEndToEndSkewSweepMonotone runs the same mesh at rising skew and checks
// execution time strictly rises while the schedule stays identical — the
// protocols compensate for skew with time, never with quality.
func TestEndToEndSkewSweepMonotone(t *testing.T) {
	mesh, err := NewGridMesh(GridMeshConfig{Rows: 5, Cols: 5, StepMeters: 30, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var prevTime SimTime
	var first *Schedule
	for i, skew := range []SimTime{Microsecond, 100 * Microsecond, 10 * Millisecond} {
		tm := DefaultTiming()
		tm.SkewBound = skew
		res, err := mesh.RunFDD(ProtocolOptions{Timing: tm})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Schedule
		} else {
			if !res.Schedule.Equal(first) {
				t.Error("schedule changed with skew")
			}
			if res.ExecTime <= prevTime {
				t.Error("execution time must rise with skew")
			}
		}
		prevTime = res.ExecTime
	}
}

// TestEndToEndReproducibility: identical configs give bit-identical results
// across the whole stack.
func TestEndToEndReproducibility(t *testing.T) {
	build := func() (*Mesh, *Result) {
		mesh, err := NewUniformMesh(UniformMeshConfig{
			N: 30, SideMeters: 200, MinTxDBm: 14, MaxTxDBm: 20, Seed: 37,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mesh.RunPDD(0.4, ProtocolOptions{Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		return mesh, res
	}
	_, a := build()
	_, b := build()
	if !a.Schedule.Equal(b.Schedule) {
		t.Error("identical configs must reproduce identical schedules")
	}
	if a.ExecTime != b.ExecTime || a.Screams != b.Screams {
		t.Error("identical configs must reproduce identical accounting")
	}
}

// TestEndToEndCustomLinkSet drives the arbitrary-link-set escape hatch the
// paper mentions (scheduling a general link set, not a forest).
func TestEndToEndCustomLinkSet(t *testing.T) {
	mesh, err := NewGridMesh(GridMeshConfig{Rows: 5, Cols: 5, StepMeters: 30, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	var links []Link
	used := map[int]bool{}
	for len(links) < 6 {
		a := rng.Intn(24)
		if a%5 == 4 || used[a] || used[a+1] {
			continue // avoid row wrap: a and a+1 must be grid neighbors
		}
		links = append(links, Link{From: a, To: a + 1})
		used[a], used[a+1] = true, true
	}
	demands := make([]int, len(links))
	for i := range demands {
		demands[i] = 1 + rng.Intn(3)
	}
	s, err := mesh.GreedyScheduleFor(links, demands, ByDemandDesc)
	if err != nil {
		t.Fatal(err)
	}
	if err := mesh.VerifyFor(links, demands, s); err != nil {
		t.Fatal(err)
	}
}
